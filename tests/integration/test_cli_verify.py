"""The admission-control CLI surface: ``swgemm verify``,
``compile --explain-verify``, ``--no-verify``, ``--timeout`` and clean
cache-dir failure modes."""

import json

import pytest

from repro.cli import main


def read_tree(directory):
    return {p.name: p.read_text() for p in directory.iterdir() if p.is_file()}


# -- swgemm verify -----------------------------------------------------------


def test_verify_default_kernel_is_admitted(capsys):
    assert main(["verify"]) == 0
    out = capsys.readouterr().out
    assert "verdict: ADMITTED" in out
    for check in (
        "spm-budget",
        "dma-bounds",
        "double-buffer-hazards",
        "rma-discipline",
    ):
        assert check in out


def test_verify_json_output(capsys):
    assert main(["verify", "--json"]) == 0
    data = json.loads(capsys.readouterr().out)
    assert data["ok"] is True
    assert [c["name"] for c in data["checks"]] == [
        "spm-budget",
        "dma-bounds",
        "double-buffer-hazards",
        "rma-discipline",
    ]
    assert all(c["status"] == "passed" for c in data["checks"])


def test_verify_covers_ablation_variants(capsys):
    for flag in ("--no-use-asm", "--no-rma", "--no-hiding"):
        assert main(["verify", flag]) == 0, flag
        assert "ADMITTED" in capsys.readouterr().out


def test_compile_explain_verify(tmp_path, capsys):
    out = tmp_path / "out"
    assert main(["compile", "-o", str(out), "--explain-verify"]) == 0
    text = capsys.readouterr().out
    assert "verification (verifier v" in text
    assert "verdict: ADMITTED" in text


def test_compile_explain_verify_with_no_verify_notes_skip(tmp_path, capsys):
    out = tmp_path / "out"
    assert main(
        ["compile", "-o", str(out), "--no-verify", "--explain-verify"]
    ) == 0
    text = capsys.readouterr().out
    assert "ADMITTED" not in text
    assert "no-verify" in text or "no verification" in text


# -- --no-verify bit-exactness (§8.1 escape hatch) ---------------------------


def test_no_verify_compile_outputs_are_byte_identical(tmp_path):
    verified = tmp_path / "verified"
    unverified = tmp_path / "unverified"
    assert main(["compile", "-o", str(verified)]) == 0
    assert main(["compile", "-o", str(unverified), "--no-verify"]) == 0
    assert read_tree(verified) == read_tree(unverified)


def test_disable_verify_pass_matches_no_verify(tmp_path):
    a = tmp_path / "disabled"
    b = tmp_path / "flag"
    assert main(["compile", "-o", str(a), "--disable-pass", "verify"]) == 0
    assert main(["compile", "-o", str(b), "--no-verify"]) == 0
    assert read_tree(a) == read_tree(b)


# -- structured failure modes ------------------------------------------------


def test_timeout_zero_fails_cleanly(tmp_path, capsys):
    out = tmp_path / "out"
    assert main(["--no-cache", "--timeout", "0", "compile", "-o", str(out)]) == 1
    err = capsys.readouterr().err
    assert err.startswith("swgemm: error:")
    assert "deadline" in err
    assert "Traceback" not in err


def test_cache_stats_rejects_non_directory_cache_dir(tmp_path, capsys):
    bogus = tmp_path / "a-file"
    bogus.write_text("not a directory")
    assert main(["--cache-dir", str(bogus), "cache", "stats"]) == 1
    err = capsys.readouterr().err
    assert "swgemm: error:" in err
    assert "not a directory" in err
    assert "Traceback" not in err


def test_cache_clear_rejects_non_directory_cache_dir(tmp_path, capsys):
    bogus = tmp_path / "a-file"
    bogus.write_text("not a directory")
    assert main(["--cache-dir", str(bogus), "cache", "clear"]) == 1
    err = capsys.readouterr().err
    assert "swgemm: error:" in err and "Traceback" not in err


def test_cache_dir_under_a_file_parent_fails_cleanly(tmp_path, capsys):
    parent = tmp_path / "plain-file"
    parent.write_text("occupies the path")
    target = parent / "cache"
    assert main(["--cache-dir", str(target), "cache", "stats"]) == 1
    err = capsys.readouterr().err
    assert "swgemm: error:" in err and "Traceback" not in err


def test_cache_stats_reports_verify_counters(tmp_path, capsys):
    cache = tmp_path / "cache"
    assert main(["--cache-dir", str(cache), "cache", "stats"]) == 0
    out = capsys.readouterr().out
    assert "verified on load" in out
    assert "verify rejected" in out
