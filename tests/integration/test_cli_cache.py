"""CLI surface of the compilation service: cache subcommands, --version,
--no-cache, and exit-code discipline."""

import json

import pytest

from repro import __version__
from repro.cli import main


@pytest.fixture()
def cache_dir(tmp_path):
    return str(tmp_path / "kernel-cache")


def test_version_flag(capsys):
    with pytest.raises(SystemExit) as excinfo:
        main(["--version"])
    assert excinfo.value.code == 0
    assert __version__ in capsys.readouterr().out


def test_missing_source_exits_1(capsys, tmp_path):
    code = main(["compile", str(tmp_path / "nope.c"), "-o", str(tmp_path)])
    assert code == 1
    assert "swgemm: error:" in capsys.readouterr().err


def test_compiler_error_exits_1(capsys, tmp_path):
    bad = tmp_path / "bad.c"
    bad.write_text("void gemm(void) { }")
    code = main(["compile", str(bad), "-o", str(tmp_path / "out")])
    assert code == 1
    assert "swgemm: error:" in capsys.readouterr().err


def test_debug_flag_reraises(tmp_path):
    from repro.errors import SwGemmError

    bad = tmp_path / "bad.c"
    bad.write_text("void gemm(void) { }")
    with pytest.raises(SwGemmError):
        main(["--debug", "compile", str(bad), "-o", str(tmp_path / "out")])


def test_stats_on_empty_cache(capsys, cache_dir):
    assert main(["--cache-dir", cache_dir, "cache", "stats"]) == 0
    out = capsys.readouterr().out
    assert "artifacts : 0" in out


def test_perf_then_stats_reports_hits(capsys, cache_dir):
    """The acceptance flow: a perf run populates the cache; a separate
    `cache stats` invocation reports at least one hit."""
    assert main(["--cache-dir", cache_dir, "perf",
                 "-M", "512", "-N", "512", "-K", "1024"]) == 0
    capsys.readouterr()
    assert main(["--cache-dir", cache_dir, "cache", "stats", "--json"]) == 0
    report = json.loads(capsys.readouterr().out)
    persistent = report["persistent"]
    assert persistent["compiles"] >= 4  # the four §8.1 variants
    assert persistent["memory_hits"] >= 1
    assert report["disk"]["artifacts"] >= 4


def test_second_perf_run_serves_from_disk(capsys, cache_dir):
    args = ["-M", "512", "-N", "512", "-K", "1024"]
    assert main(["--cache-dir", cache_dir, "perf"] + args) == 0
    capsys.readouterr()
    assert main(["--cache-dir", cache_dir, "perf"] + args) == 0
    capsys.readouterr()
    assert main(["--cache-dir", cache_dir, "cache", "stats", "--json"]) == 0
    report = json.loads(capsys.readouterr().out)
    # The second run compiled nothing: same compile count, more hits.
    assert report["persistent"]["compiles"] == 4
    assert report["persistent"]["disk_hits"] >= 4


def test_warmup_then_clear(capsys, cache_dir):
    assert main(["--cache-dir", cache_dir, "cache", "warmup",
                 "--workers", "2"]) == 0
    out = capsys.readouterr().out
    assert "compiled" in out
    assert "warmed 7 kernel(s)" in out

    assert main(["--cache-dir", cache_dir, "cache", "clear"]) == 0
    assert "removed 7 cached artifact(s)" in capsys.readouterr().out

    assert main(["--cache-dir", cache_dir, "cache", "stats"]) == 0
    assert "artifacts : 0" in capsys.readouterr().out


def test_no_cache_writes_nothing(capsys, cache_dir, tmp_path):
    out = tmp_path / "out"
    assert main(["--no-cache", "--cache-dir", cache_dir,
                 "compile", "-o", str(out)]) == 0
    assert (out / "gemm_cpe.c").exists()
    capsys.readouterr()
    assert main(["--cache-dir", cache_dir, "cache", "stats"]) == 0
    assert "artifacts : 0" in capsys.readouterr().out


def test_compile_twice_hits_disk(capsys, cache_dir, tmp_path):
    for attempt in ("one", "two"):
        out = tmp_path / attempt
        assert main(["--cache-dir", cache_dir,
                     "compile", "-o", str(out)]) == 0
        assert (out / "gemm_cpe.c").exists()
    capsys.readouterr()
    assert main(["--cache-dir", cache_dir, "cache", "stats", "--json"]) == 0
    report = json.loads(capsys.readouterr().out)
    assert report["persistent"]["compiles"] == 1
    assert report["persistent"]["disk_hits"] == 1
    # Byte-identical output from the cached artifact.
    assert (tmp_path / "one" / "gemm_cpe.c").read_text() == (
        tmp_path / "two" / "gemm_cpe.c"
    ).read_text()


def test_stats_works_on_readonly_cache_dir(capsys, cache_dir):
    """`cache stats` is an inspection command: it must serve a read-only
    (e.g. shared/legacy) store instead of demanding writability."""
    import os
    from pathlib import Path

    if os.geteuid() == 0:
        pytest.skip("root ignores directory permissions")
    assert main(["--cache-dir", cache_dir, "compile",
                 "-o", str(Path(cache_dir).parent / "out")]) == 0
    capsys.readouterr()
    path = Path(cache_dir)
    path.chmod(0o500)
    try:
        assert main(["--cache-dir", cache_dir, "cache", "stats"]) == 0
    finally:
        path.chmod(0o700)
    assert "artifacts :" in capsys.readouterr().out


def test_warmup_still_requires_writable_cache_dir(capsys, cache_dir):
    import os
    from pathlib import Path

    if os.geteuid() == 0:
        pytest.skip("root ignores directory permissions")
    path = Path(cache_dir)
    path.mkdir()
    path.chmod(0o500)
    try:
        code = main(["--cache-dir", cache_dir, "cache", "warmup"])
    finally:
        path.chmod(0o700)
    assert code == 1
    assert "not writable" in capsys.readouterr().err
