"""CLI surface of the autotuner: `swgemm tune`, `tune --show`, the
tuning section of `cache stats`, record-steered `run`, and the shared
global flags that work on either side of the subcommand."""

import json

import pytest

from repro.cli import main

TOY_TUNE = ["tune", "--arch", "toy", "-M", "128", "-N", "128", "-K", "64",
            "--budget", "6", "--seed", "0"]


@pytest.fixture()
def cache_dir(tmp_path):
    return str(tmp_path / "kernel-cache")


def test_tune_searches_and_reports(capsys, cache_dir):
    assert main(["--cache-dir", cache_dir, *TOY_TUNE]) == 0
    out = capsys.readouterr().out
    assert "candidate(s)" in out
    assert "best config" in out


def test_tune_json_is_machine_readable(capsys, cache_dir):
    assert main(["--cache-dir", cache_dir, *TOY_TUNE, "--json"]) == 0
    row = json.loads(capsys.readouterr().out)
    assert row["best_gflops"] >= row["default_gflops"]
    assert row["measurements"] >= 1
    assert row["strategy"] in ("exhaustive", "hill-climb")


def test_tune_show_lists_records(capsys, cache_dir):
    assert main(["--cache-dir", cache_dir, *TOY_TUNE]) == 0
    capsys.readouterr()
    assert main(["--cache-dir", cache_dir, "tune", "--show"]) == 0
    out = capsys.readouterr().out
    assert "128x128x64" in out
    assert "toy" in out


def test_tune_show_on_empty_store(capsys, cache_dir):
    assert main(["--cache-dir", cache_dir, "tune", "--show"]) == 0
    assert "no tuning records" in capsys.readouterr().out


def test_cache_stats_reports_tuning_records(capsys, cache_dir):
    assert main(["--cache-dir", cache_dir, *TOY_TUNE]) == 0
    capsys.readouterr()
    assert main(["--cache-dir", cache_dir, "cache", "stats"]) == 0
    out = capsys.readouterr().out
    assert "tuning records:" in out
    assert "stored: 1" in out.replace("  ", " ").replace("  ", " ")


def test_run_is_steered_by_the_record(capsys, cache_dir):
    assert main(["--cache-dir", cache_dir, *TOY_TUNE]) == 0
    capsys.readouterr()
    assert main(["--cache-dir", cache_dir, "run", "--arch", "toy",
                 "-M", "128", "-N", "128", "-K", "64"]) == 0
    capsys.readouterr()
    assert main(["--cache-dir", cache_dir, "cache", "stats", "--json"]) == 0
    report = json.loads(capsys.readouterr().out)
    assert report["persistent"].get("tuning_hits", 0) >= 1


def test_cache_clear_drops_tuning_records(capsys, cache_dir):
    assert main(["--cache-dir", cache_dir, *TOY_TUNE]) == 0
    capsys.readouterr()
    assert main(["--cache-dir", cache_dir, "cache", "clear"]) == 0
    assert "1 tuning record(s)" in capsys.readouterr().out
    assert main(["--cache-dir", cache_dir, "tune", "--show"]) == 0
    assert "no tuning records" in capsys.readouterr().out


def test_global_flags_work_on_either_side(capsys, cache_dir):
    """--cache-dir/--no-cache before or after the subcommand are the
    same invocation; the subcommand spelling wins when both appear."""
    assert main(["tune", "--show", "--cache-dir", cache_dir]) == 0
    before = capsys.readouterr().out
    assert main(["--cache-dir", cache_dir, "tune", "--show"]) == 0
    assert capsys.readouterr().out == before

    assert main(["--no-cache", *TOY_TUNE]) == 0
    out = capsys.readouterr().out
    assert "not persisted" in out
    assert main([*TOY_TUNE, "--no-cache"]) == 0
    assert "not persisted" in capsys.readouterr().out


def test_determinism_across_invocations(capsys, cache_dir, tmp_path):
    assert main(["--cache-dir", str(tmp_path / "a"), *TOY_TUNE, "--json"]) == 0
    first = json.loads(capsys.readouterr().out)
    assert main(["--cache-dir", str(tmp_path / "b"), *TOY_TUNE, "--json"]) == 0
    second = json.loads(capsys.readouterr().out)
    assert first == second
