"""Crash recovery of the real daemon process: ``kill -9`` + restart.

The in-process suite (``tests/serve/test_crash_recovery.py``) drives the
journal and breaker directly; this one proves the property end-to-end
the way an operator would hit it: boot ``swgemm serve`` as a subprocess
with a journal, get one request acknowledged and one wedged in flight,
``SIGKILL`` the daemon, and restart it on the same directories.  The
acknowledged request must be served from cache after the restart (zero
lost acknowledged work) and the wedged one must be replayed from the
journal — with the pending record visible on disk in between, read
through the non-mutating ``scan_segments`` so the scan itself cannot
launder a broken journal into a passing test.
"""

import json
import os
import signal
import subprocess
import sys
import threading
import time
from pathlib import Path

from repro.serve.journal import scan_segments

REPO_SRC = str(Path(__file__).resolve().parents[2] / "src")

HANG_PARAMS = {
    "arch": "toy",
    "trans_a": True,
    "fault_policy": {
        "enabled": True,
        "seed": 7,
        "compile_hang_rate": 1.0,
        "compile_hang_s": 120.0,
    },
}


def _boot_daemon(tmp_path, ready_name, *extra_args):
    ready = tmp_path / ready_name
    env = dict(os.environ)
    env["PYTHONPATH"] = REPO_SRC + os.pathsep + env.get("PYTHONPATH", "")
    process = subprocess.Popen(
        [
            sys.executable, "-m", "repro.cli", "serve",
            "--cache-dir", str(tmp_path / "cache"),
            "--journal-dir", str(tmp_path / "journal"),
            "--isolation", "process",
            "--ready-file", str(ready),
            "--workers", "2",
            *extra_args,
        ],
        env=env,
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
    )
    deadline = time.monotonic() + 30.0
    while time.monotonic() < deadline:
        if ready.exists() and ready.read_text().strip():
            return process, json.loads(ready.read_text())
        if process.poll() is not None:
            raise AssertionError(
                f"daemon exited early:\n{process.stdout.read()}"
            )
        time.sleep(0.05)
    process.kill()
    raise AssertionError("daemon never wrote the ready file")


def _address(info):
    return info["socket"] if info["socket"] else (info["host"], info["port"])


def _wait_for_replay(client, timeout_s=60.0):
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        stats = client.stats()["server"]
        if stats["journal"]["replay_pending"] == 0:
            return stats
        time.sleep(0.1)
    raise AssertionError("journal replay never finished")


def test_kill9_daemon_replays_journal_and_keeps_acked_work(tmp_path):
    from repro import connect

    process, info = _boot_daemon(
        tmp_path, "ready-1.json", "--worker-deadline", "120"
    )
    try:
        with connect(_address(info), tenant="acked") as client:
            acked = client.compile({"arch": "toy"})
            assert acked["source"] == "compiled" and acked["key"]

        # Wedge one request in flight: the hang kernel sleeps inside its
        # isolated worker well past the moment we SIGKILL the daemon, so
        # its accepted record has no tombstone when the process dies.
        def wedge():
            try:
                with connect(_address(info), tenant="wedged") as victim:
                    victim.compile(HANG_PARAMS)
            except Exception:
                pass  # the SIGKILL below severs this connection

        hang = threading.Thread(target=wedge, daemon=True)
        hang.start()
        with connect(_address(info), tenant="probe") as probe:
            deadline = time.monotonic() + 30.0
            while time.monotonic() < deadline:
                counters = probe.stats()["server"]["counters"]
                if counters["journaled"] >= 2:
                    break
                time.sleep(0.05)
            else:
                raise AssertionError("hang request never reached the journal")

        os.kill(process.pid, signal.SIGKILL)
        process.wait(timeout=10.0)
        hang.join(timeout=10.0)

        # The wedge survived the crash on disk: exactly one accepted
        # record without a tombstone (the acked compile has one).
        pending, counters = scan_segments(tmp_path / "journal")
        assert len(pending) == 1
        assert [b["op"] for b in pending.values()] == ["compile"]
    finally:
        if process.poll() is None:
            process.kill()
            process.wait(timeout=10.0)

    # Restart on the same directories.  The tight worker deadline makes
    # the replayed hang fail fast instead of blocking the boot for the
    # full 120 s sleep; either way it must be tombstoned, not retried
    # forever.
    restarted, info = _boot_daemon(
        tmp_path, "ready-2.json", "--worker-deadline", "1"
    )
    try:
        with connect(_address(info), tenant="verify") as client:
            stats = _wait_for_replay(client)
            # The wedged request was re-dispatched; under the 1 s
            # deadline it fails (CompileTimeout) but is tombstoned —
            # at-least-once ends here, never in a retry storm.
            assert stats["counters"]["replayed"] == 1
            assert stats["journal"]["recovered_pending"] == 1
            # Zero lost acknowledged work: the pre-crash compile is
            # served from the cache, not recompiled.
            again = client.compile({"arch": "toy"})
            assert again["key"] == acked["key"]
            assert again["source"] != "compiled"
            client.shutdown(drain=True)
        restarted.wait(timeout=30.0)
        assert restarted.returncode == 0
        output = restarted.stdout.read()
        assert "replaying 1 journaled request(s)" in output
    finally:
        if restarted.poll() is None:
            restarted.kill()
            restarted.wait(timeout=10.0)

    # Nothing left to replay: a third boot would start clean.
    pending, _ = scan_segments(tmp_path / "journal")
    assert pending == {}
