"""The pass-pipeline introspection surface of the swgemm CLI:
``swgemm passes list``, ``--print-after``, ``--dump-ir``,
``--disable-pass``."""

import pytest

from repro.cli import main

BATCHED_GEMM_C = """\
void bgemm(int BS, int M, int N, int K, double A[BS][M][K],
           double B[BS][K][N], double C[BS][M][N]) {
  for (int b = 0; b < BS; b++)
    for (int i = 0; i < M; i++)
      for (int j = 0; j < N; j++)
        for (int k = 0; k < K; k++)
          C[b][i][j] += A[b][i][k] * B[b][k][j];
}
"""

DEFAULT_PIPELINE = [
    "dependence-analysis",
    "tile-selection",
    "compute-decomposition",
    "dma-derivation",
    "rma-derivation",
    "micro-kernel-mark",
    "latency-hiding",
    "ast-generation",
    "verify",
]


def read_tree(directory):
    return {p.name: p.read_text() for p in directory.iterdir() if p.is_file()}


def test_passes_list_default(capsys):
    assert main(["passes", "list"]) == 0
    out = capsys.readouterr().out
    assert "pass pipeline for variant '+hiding'" in out
    assert f"({len(DEFAULT_PIPELINE)} passes" in out
    for name in DEFAULT_PIPELINE:
        assert name in out
    assert "§6" in out  # paper sections are shown


def test_passes_list_variants(tmp_path, capsys):
    src = tmp_path / "bgemm.c"
    src.write_text(BATCHED_GEMM_C)
    assert main(["passes", "list", str(src)]) == 0
    out = capsys.readouterr().out
    assert "batch-isolation" in out
    assert "+batch" in out or "batch" in out
    assert main(["passes", "list", "--no-rma"]) == 0
    assert "rma-derivation" not in capsys.readouterr().out
    assert main(["passes", "list", "--disable-pass", "latency-hiding"]) == 0
    out = capsys.readouterr().out
    assert "latency-hiding" not in out
    assert "communication-schedule" in out


def test_print_after_all_emits_one_snapshot_per_pass(tmp_path, capsys):
    out = tmp_path / "out"
    assert main(["compile", "-o", str(out), "--print-after", "all"]) == 0
    text = capsys.readouterr().out
    for index, name in enumerate(DEFAULT_PIPELINE, start=1):
        marker = f";; ---- IR after {index}/{len(DEFAULT_PIPELINE)}: {name}"
        assert text.count(marker) == 1, marker
    assert text.count(";; ---- IR after") == len(DEFAULT_PIPELINE)
    # Introspection still produces the normal outputs.
    assert (out / "gemm_cpe.c").exists()
    assert "code generation took" in text
    # Per-pass timing table accompanies the total.
    for name in DEFAULT_PIPELINE:
        assert f"  {name}" in text


def test_print_after_single_pass(tmp_path, capsys):
    out = tmp_path / "out"
    assert main(
        ["compile", "-o", str(out), "--print-after", "tile-selection"]
    ) == 0
    text = capsys.readouterr().out
    assert text.count(";; ---- IR after") == 1
    assert "tile-selection" in text
    assert "--- schedule tree ---" in text


def test_print_after_unknown_pass_fails(tmp_path, capsys):
    out = tmp_path / "out"
    assert main(
        ["compile", "-o", str(out), "--print-after", "no-such-pass"]
    ) != 0


def test_dump_ir_writes_one_file_per_pass(tmp_path):
    out = tmp_path / "out"
    ir = tmp_path / "ir"
    assert main(["compile", "-o", str(out), "--dump-ir", str(ir)]) == 0
    files = sorted(p.name for p in ir.iterdir())
    # One snapshot per pass, plus the final communication timeline of
    # the double-buffered plan.
    expected = [
        f"{i:02d}-{name}.txt"
        for i, name in enumerate(DEFAULT_PIPELINE, start=1)
    ]
    expected.append(f"{len(DEFAULT_PIPELINE) + 1:02d}-schedule-timeline.txt")
    assert files == expected
    for path in ir.iterdir():
        if path.name.endswith("schedule-timeline.txt"):
            assert path.read_text().startswith("timeline:")
        else:
            assert "--- schedule tree ---" in path.read_text()


def test_disable_pass_matches_ablation_byte_exactly(tmp_path):
    """``--disable-pass latency-hiding`` and ``--no-hiding`` must write
    byte-identical outputs (§8.1 ablation equivalence)."""
    a = tmp_path / "disabled"
    b = tmp_path / "ablation"
    assert main(
        ["compile", "-o", str(a), "--disable-pass", "latency-hiding"]
    ) == 0
    assert main(["compile", "-o", str(b), "--no-hiding"]) == 0
    assert read_tree(a) == read_tree(b)


def test_disable_unknown_pass_fails(tmp_path):
    out = tmp_path / "out"
    assert main(
        ["compile", "-o", str(out), "--disable-pass", "dma-derivation"]
    ) != 0


def test_tree_supports_print_after(capsys):
    assert main(["tree", "--print-after", "dma-derivation"]) == 0
    out = capsys.readouterr().out
    assert ";; ---- IR after" in out
    assert "dma-derivation" in out
