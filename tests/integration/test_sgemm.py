"""Single-precision GEMM (SGEMM) — §2's "other GEMM variants"."""

import numpy as np
import pytest

from repro.core import CompilerOptions, GemmCompiler, GemmSpec
from repro.errors import ConfigurationError
from repro.runtime.executor import run_gemm
from repro.sunway.arch import SW26010PRO, TOY_ARCH


def sgemm_program(arch=TOY_ARCH, options=None):
    return GemmCompiler(arch, options or CompilerOptions.full()).compile(
        GemmSpec(dtype="float32")
    )


def test_sgemm_numerics(rng):
    program = sgemm_program()
    A = rng.standard_normal((32, 16)).astype(np.float32)
    B = rng.standard_normal((16, 32)).astype(np.float32)
    C0 = rng.standard_normal((32, 32)).astype(np.float32)
    C, _ = run_gemm(program, A, B, C0.astype(np.float64), alpha=1.5, beta=0.5)
    reference = 1.5 * A.astype(np.float64) @ B + 0.5 * C0
    # Single-precision accumulation: looser tolerance.
    assert np.allclose(C, reference, atol=1e-4)


def test_sgemm_spm_footprint_is_half():
    d = GemmCompiler(SW26010PRO, CompilerOptions.full()).compile(GemmSpec())
    s = GemmCompiler(SW26010PRO, CompilerOptions.full()).compile(
        GemmSpec(dtype="float32")
    )
    assert s.spm_bytes() == d.spm_bytes() // 2
    assert s.spm_bytes() == 80 * 1024


def test_sgemm_prints_float_buffers():
    program = GemmCompiler(SW26010PRO, CompilerOptions.full()).compile(
        GemmSpec(dtype="float32")
    )
    src = program.cpe_source()
    assert "__thread_local float local_C[64][64];" in src
    assert "__thread_local double" not in src


def test_sgemm_is_faster_than_dgemm(rng):
    """Twice the SIMD lanes and half the bytes: the simulated SGEMM must
    beat DGEMM on the same logical shape."""
    d_prog = GemmCompiler(TOY_ARCH, CompilerOptions.full()).compile(GemmSpec())
    s_prog = sgemm_program()
    A = rng.standard_normal((32, 32))
    B = rng.standard_normal((32, 32))
    _, d_rep = run_gemm(d_prog, A, B, np.zeros((32, 32)), beta=0.0)
    _, s_rep = run_gemm(s_prog, A, B, np.zeros((32, 32)), beta=0.0)
    assert s_rep.elapsed_seconds < d_rep.elapsed_seconds


def test_invalid_dtype_rejected():
    with pytest.raises(ConfigurationError):
        GemmSpec(dtype="float16")


def test_sgemm_with_fusion(rng):
    spec = GemmSpec(dtype="float32", epilogue_func="relu")
    program = GemmCompiler(
        TOY_ARCH, CompilerOptions.full().with_(fusion="epilogue", epilogue_func="relu")
    ).compile(spec)
    A = rng.standard_normal((16, 16)).astype(np.float32)
    B = rng.standard_normal((16, 16)).astype(np.float32)
    C, _ = run_gemm(program, A, B, None, beta=0.0)
    reference = np.maximum(A.astype(np.float64) @ B, 0.0)
    assert np.allclose(C, reference, atol=1e-4)
