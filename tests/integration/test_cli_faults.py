"""The chaos flags on the swgemm CLI."""

import json
import re

import pytest

from repro.cli import main


def test_run_with_injected_faults_still_verifies(tmp_path, capsys):
    code = main([
        "--cache-dir", str(tmp_path / "cache"),
        "--inject-faults", "--fault-seed", "2022",
        "run", "-M", "512", "-N", "512", "-K", "256",
    ])
    out = capsys.readouterr().out
    assert code == 0
    assert "max |C - reference|" in out
    assert "fault plane: seed 2022" in out
    assert "transfer retries" in out


def test_run_fault_report_shows_nonzero_retries(tmp_path, capsys):
    main([
        "--cache-dir", str(tmp_path / "cache"),
        "--inject-faults", "--fault-rate", "0.1",
        "run", "-M", "512", "-N", "512", "-K", "256",
    ])
    out = capsys.readouterr().out
    line = next(l for l in out.splitlines() if l.startswith("fault plane"))
    match = re.search(r"(\d+) transfer retries \((\d+) DMA, (\d+) RMA\)", line)
    assert match is not None
    assert int(match.group(1)) > 0
    assert int(match.group(1)) == int(match.group(2)) + int(match.group(3))


def test_exhausted_retries_exit_cleanly(tmp_path, capsys):
    """--max-retries 0 under heavy faults: a one-line diagnostic error,
    not a hang and not a traceback."""
    code = main([
        "--cache-dir", str(tmp_path / "cache"),
        "--inject-faults", "--fault-rate", "1.0", "--max-retries", "0",
        "run", "-M", "512", "-N", "512", "-K", "256",
    ])
    assert code == 1
    err = capsys.readouterr().err
    assert "swgemm: error:" in err
    assert "retry budget" in err


def test_cache_stats_reports_quarantine(tmp_path, capsys):
    cache = tmp_path / "cache"
    assert main(["--cache-dir", str(cache), "run",
                 "-M", "512", "-N", "512", "-K", "256"]) == 0
    # corrupt the artifact the run just cached (stores shard by key prefix)
    artifacts = [
        p
        for p in cache.glob("*/*.json")
        if p.parent.name != "quarantine"
    ]
    assert artifacts
    artifacts[0].write_text(artifacts[0].read_text()[:30])
    capsys.readouterr()
    # the next run quarantines + recompiles ...
    assert main(["--cache-dir", str(cache), "run",
                 "-M", "512", "-N", "512", "-K", "256"]) == 0
    capsys.readouterr()
    # ... and cache stats reports it
    assert main(["--cache-dir", str(cache), "cache", "stats"]) == 0
    out = capsys.readouterr().out
    assert "quarantined" in out
    assert any("quarantined" in l and ": 1" in l for l in out.splitlines())
    assert (cache / "quarantine").is_dir()


def test_cache_stats_json_includes_quarantine_fields(tmp_path, capsys):
    cache = tmp_path / "cache"
    assert main(["--cache-dir", str(cache), "cache", "stats", "--json"]) == 0
    report = json.loads(capsys.readouterr().out)
    assert "quarantined" in report["disk"]
    assert "quarantine_files" in report["disk"]


def test_perf_accepts_fault_flags(tmp_path, capsys):
    code = main([
        "--cache-dir", str(tmp_path / "cache"),
        "--inject-faults", "--fault-seed", "1",
        "perf", "-M", "1024", "-N", "1024", "-K", "512",
    ])
    out = capsys.readouterr().out
    assert code == 0
    assert "Gflops" in out
