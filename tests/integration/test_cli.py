"""The swgemm command-line interface."""

import pytest

from repro.cli import DEFAULT_GEMM_C, main


def test_compile_writes_sources(tmp_path, capsys):
    src = tmp_path / "gemm.c"
    src.write_text(DEFAULT_GEMM_C)
    out = tmp_path / "out"
    assert main(["compile", str(src), "-o", str(out)]) == 0
    cpe = (out / "gemm_cpe.c").read_text()
    mpe = (out / "gemm_mpe.c").read_text()
    assert "dma_iget" in cpe
    assert "athread_spawn" in mpe
    captured = capsys.readouterr().out
    assert "code generation took" in captured


def test_compile_default_input(tmp_path, capsys):
    out = tmp_path / "out"
    assert main(["compile", "-o", str(out)]) == 0
    assert (out / "gemm_cpe.c").exists()


def test_compile_no_use_asm(tmp_path):
    out = tmp_path / "out"
    assert main(["compile", "--no-use-asm", "-o", str(out)]) == 0
    text = (out / "gemm_cpe.c").read_text()
    assert "asm_dgemm" not in text


def test_tree_dump(capsys):
    assert main(["tree"]) == 0
    out = capsys.readouterr().out
    assert "DOMAIN" in out and "BAND" in out and "EXTENSION" in out


def test_run_verifies_numerics(capsys):
    assert main(["run", "-M", "512", "-N", "512", "-K", "256"]) == 0
    out = capsys.readouterr().out
    assert "max |C - reference|" in out


def test_perf_prints_variants(capsys):
    assert main(["perf", "-M", "512", "-N", "512", "-K", "1024"]) == 0
    out = capsys.readouterr().out
    for token in ("dma-only", "+asm", "+rma", "+hiding", "xMath"):
        assert token in out
