"""Paper-level claims at SW26010Pro scale.

These integration tests assert the *shape* of the paper's evaluation on
shrunken workloads (full benchmark sweeps live under ``benchmarks/``):
the Fig. 13 staircase, the small-K hiding penalty, the xMath win/loss
pattern, and the §8.5 engineering-cost claim.
"""

import time

import numpy as np
import pytest

from repro.core import CompilerOptions, GemmCompiler, GemmSpec
from repro.runtime.executor import run_gemm
from repro.runtime.simulator import PerformanceSimulator
from repro.sunway.arch import SW26010PRO
from repro.xmath.perfmodel import xmath_gflops


@pytest.fixture(scope="module")
def sim():
    return PerformanceSimulator(SW26010PRO)


def test_fig13_staircase(sim):
    """baseline < +asm < +rma < +hiding, with roughly the paper's steps
    (2.83× / 4.38× / 1.76×)."""
    results = sim.breakdown(1024, 1024, 4096)
    base = results["dma-only"].gflops
    asm = results["+asm"].gflops
    rma = results["+rma"].gflops
    full = results["+hiding"].gflops
    assert base < asm < rma < full
    assert 2.0 < asm / base < 4.5       # paper: 2.83×
    assert 2.3 < rma / asm < 5.5        # paper: 4.38×
    assert 1.3 < full / rma < 2.5       # paper: 1.76×
    assert full / base > 15             # paper: 23.72× overall


def test_baseline_is_flat_and_near_85gflops(sim):
    """Fig. 13: the DMA-only baseline sits at ~84.89 Gflops with almost
    no fluctuation across shapes."""
    values = [
        sim.simulate(512, 512, K, CompilerOptions.baseline()).gflops
        for K in (1024, 4096, 8192)
    ]
    assert all(abs(v - 84.89) / 84.89 < 0.08 for v in values)
    assert max(values) - min(values) < 5


def test_small_k_hurts_latency_hiding(sim):
    """§8.1: ⌈K/256⌉−1 overlaps — the leftmost shapes lose the DMA-hiding
    benefit."""
    small = sim.simulate(1024, 1024, 1024).gflops
    large = sim.simulate(1024, 1024, 12288).gflops
    assert small < 0.82 * large


def test_peak_fraction_approaches_90_percent(sim):
    """Fig. 13: the rightmost shape reaches 90.14% of peak — our
    simulation must land in the high-80s/low-90s."""
    perf = sim.simulate(512, 512, 15360)
    assert 0.84 <= perf.peak_fraction <= 0.93


def test_xmath_wins_small_squares_loses_non_pow2(sim):
    """§8.2: the library wins the small squares, collapses on large
    non-power-of-two K."""
    ours_small = sim.simulate(1024, 1024, 1024).gflops
    lib_small = xmath_gflops(1024, 1024, 1024)
    assert lib_small > ours_small

    ours_bad_k = sim.simulate(1024, 1024, 10240).gflops
    lib_bad_k = xmath_gflops(10240, 10240, 10240)
    assert ours_bad_k > 1.3 * lib_bad_k


def test_functional_run_at_real_scale():
    """One full 512×512×256 mesh pass with real data on the 8×8 mesh."""
    program = GemmCompiler(SW26010PRO, CompilerOptions.full()).compile(GemmSpec())
    rng = np.random.default_rng(7)
    A = rng.standard_normal((512, 256))
    B = rng.standard_normal((256, 512))
    C, report = run_gemm(program, A, B, np.zeros((512, 512)), beta=0.0)
    assert np.allclose(C, A @ B, atol=1e-10)
    assert report.stats["kernel_calls"] == 64 * 8
    # Each CPE issued one A and one B broadcast per chunk (8 slices
    # shared across 8 owners).
    assert report.stats["rma_messages"] == 64 * 2


def test_engineering_cost_is_seconds(sim):
    """§8.5: code generation takes seconds (vs months of manual work) —
    including the polyhedral analysis."""
    started = time.perf_counter()
    program = GemmCompiler(SW26010PRO, CompilerOptions.full()).compile(GemmSpec())
    elapsed = time.perf_counter() - started
    assert elapsed < 5.0
    assert program.codegen_seconds < 5.0


def test_batched_beats_looped_xmath(sim):
    """§8.3: single mesh start-up beats per-element library dispatch."""
    ours = sim.simulate(
        1024, 1024, 8192, CompilerOptions.full().with_(batch=True), batch=8
    ).gflops
    lib = xmath_gflops(1024, 1024, 8192, batch=8)
    assert ours > lib


def test_epilogue_fusion_beats_mpe_baseline(sim):
    """§8.4: fusing the activation on the CPEs roughly doubles the
    xMath+MPE pipeline."""
    from repro.bench.harness import _baseline_fused_gflops

    options = CompilerOptions.full().with_(fusion="epilogue",
                                           epilogue_func="sigmoid")
    ours = sim.simulate(2048, 2048, 4096, options).gflops
    base = _baseline_fused_gflops(2048, 2048, 4096, "epilogue", SW26010PRO,
                                  "sigmoid")
    assert ours > 1.5 * base
