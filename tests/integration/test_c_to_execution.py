"""C source → compiled program → simulated execution, end to end."""

import numpy as np
import pytest

from repro.codegen.elementwise import get_elementwise
from repro.frontend import compile_c, extract_spec
from repro.runtime.executor import run_gemm
from repro.sunway.arch import TOY_ARCH

GEMM_C = """
/* The paper's Fig. 2a input: a naive 3-deep loop nest. */
void gemm(int M, int N, int K, double alpha,
          double A[M][K], double B[K][N], double C[M][N]) {
  for (int i = 0; i < M; i++)
    for (int j = 0; j < N; j++)
      for (int k = 0; k < K; k++)
        C[i][j] = C[i][j] + alpha * A[i][k] * B[k][j];
}
"""

BATCHED_C = """
void bgemm(int BS, int M, int N, int K, double A[BS][M][K],
           double B[BS][K][N], double C[BS][M][N]) {
  for (int b = 0; b < BS; b++)
    for (int i = 0; i < M; i++)
      for (int j = 0; j < N; j++)
        for (int k = 0; k < K; k++)
          C[b][i][j] += A[b][i][k] * B[b][k][j];
}
"""

FUSED_PROLOGUE_C = """
void fused(int M, int N, int K, double A[M][K], double B[K][N], double C[M][N]) {
  for (int i = 0; i < M; i++)
    for (int k = 0; k < K; k++)
      A[i][k] = quant(A[i][k]);
  for (int i = 0; i < M; i++)
    for (int j = 0; j < N; j++)
      for (int k = 0; k < K; k++)
        C[i][j] += A[i][k] * B[k][j];
}
"""

FUSED_EPILOGUE_C = """
void fused(int M, int N, int K, double A[M][K], double B[K][N], double C[M][N]) {
  for (int i = 0; i < M; i++)
    for (int j = 0; j < N; j++)
      for (int k = 0; k < K; k++)
        C[i][j] += A[i][k] * B[k][j];
  for (int i = 0; i < M; i++)
    for (int j = 0; j < N; j++)
      C[i][j] = relu(C[i][j]);
}
"""


def test_gemm_c_end_to_end(rng):
    program = compile_c(GEMM_C, arch=TOY_ARCH)
    A = rng.standard_normal((24, 16))
    B = rng.standard_normal((16, 40))
    C0 = rng.standard_normal((24, 40))
    C, _ = run_gemm(program, A, B, C0.copy(), alpha=1.25, beta=2.0)
    assert np.allclose(C, 1.25 * A @ B + 2.0 * C0, atol=1e-12)


def test_batched_c_end_to_end(rng):
    program = compile_c(BATCHED_C, arch=TOY_ARCH)
    A = rng.standard_normal((2, 16, 8))
    B = rng.standard_normal((2, 8, 16))
    C, _ = run_gemm(program, A, B, None, beta=0.0)
    assert np.allclose(C, np.einsum("bik,bkj->bij", A, B), atol=1e-12)


def test_fused_prologue_c_end_to_end(rng):
    program = compile_c(FUSED_PROLOGUE_C, arch=TOY_ARCH)
    assert program.options.fusion == "prologue"
    A = rng.standard_normal((16, 16))
    B = rng.standard_normal((16, 16))
    C, _ = run_gemm(program, A, B, None, beta=0.0)
    quant = get_elementwise("quant").numpy_fn
    assert np.allclose(C, quant(A) @ B, atol=1e-12)


def test_fused_epilogue_c_end_to_end(rng):
    program = compile_c(FUSED_EPILOGUE_C, arch=TOY_ARCH)
    assert program.options.fusion == "epilogue"
    A = rng.standard_normal((16, 16)) * 0.2
    B = rng.standard_normal((16, 16)) * 0.2
    C, _ = run_gemm(program, A, B, None, beta=0.0)
    assert np.allclose(C, np.maximum(A @ B, 0.0), atol=1e-12)


def test_generated_source_reflects_input_names():
    src = compile_c(
        GEMM_C.replace("A[", "X[").replace("double A", "double X"),
        arch=TOY_ARCH,
    ).cpe_source()
    assert "&X[" in src


def test_spec_and_options_inferred():
    spec, options = extract_spec(BATCHED_C, return_options=True)
    assert spec.batch_param == "BS"
    assert options.batch
