"""CLI surface of the serving daemon: ``swgemm serve``.

The boot test runs the daemon as a real subprocess — the same shape as
the CI smoke job — using ``--ready-file`` as the rendezvous so the OS
can pick the port, then speaks the wire protocol through the public
client and shuts the daemon down over the socket.
"""

import json
import os
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.cli import main

REPO_SRC = str(Path(__file__).resolve().parents[2] / "src")


def test_serve_help(capsys):
    with pytest.raises(SystemExit) as excinfo:
        main(["serve", "--help"])
    assert excinfo.value.code == 0
    out = capsys.readouterr().out
    for flag in ("--socket", "--quota-capacity", "--no-quotas",
                 "--max-requests", "--ready-file", "--warmup"):
        assert flag in out


def test_serve_rejects_cache_dir_that_is_a_file(tmp_path, capsys):
    path = tmp_path / "not-a-dir"
    path.write_text("occupied")
    code = main(["serve", "--cache-dir", str(path)])
    assert code == 1
    err = capsys.readouterr().err
    assert "swgemm: error:" in err
    assert "not a directory" in err


def test_serve_rejects_unwritable_cache_dir(tmp_path, capsys):
    if os.geteuid() == 0:
        pytest.skip("root ignores directory permissions")
    path = tmp_path / "readonly"
    path.mkdir()
    path.chmod(0o500)
    try:
        code = main(["serve", "--cache-dir", str(path)])
    finally:
        path.chmod(0o700)
    assert code == 1
    assert "not writable" in capsys.readouterr().err


def _boot_daemon(tmp_path, *extra_args):
    ready = tmp_path / "ready.json"
    env = dict(os.environ)
    env["PYTHONPATH"] = REPO_SRC + os.pathsep + env.get("PYTHONPATH", "")
    process = subprocess.Popen(
        [
            sys.executable, "-m", "repro.cli", "serve",
            "--cache-dir", str(tmp_path / "cache"),
            "--ready-file", str(ready),
            "--workers", "2",
            *extra_args,
        ],
        env=env,
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
    )
    deadline = time.monotonic() + 30.0
    while time.monotonic() < deadline:
        if ready.exists() and ready.read_text().strip():
            return process, json.loads(ready.read_text())
        if process.poll() is not None:
            raise AssertionError(
                f"daemon exited early:\n{process.stdout.read()}"
            )
        time.sleep(0.05)
    process.kill()
    raise AssertionError("daemon never wrote the ready file")


def test_serve_subprocess_boot_ping_shutdown(tmp_path):
    from repro import connect

    process, info = _boot_daemon(tmp_path)
    try:
        assert info["pid"] == process.pid
        address = (
            info["socket"] if info["socket"] else (info["host"], info["port"])
        )
        with connect(address, tenant="smoke") as client:
            assert client.ping()["pong"]
            compiled = client.compile({"arch": "toy"})
            assert compiled["source"] == "compiled"
            stats = client.stats()
            assert stats["server"]["counters"]["requests"] >= 2
            client.shutdown(drain=True)
        process.wait(timeout=30.0)
        assert process.returncode == 0
        output = process.stdout.read()
        assert "listening on" in output
        assert "drained and stopped" in output
    finally:
        if process.poll() is None:
            process.kill()
            process.wait(timeout=10.0)


def test_serve_subprocess_unix_socket(tmp_path):
    from repro import connect

    sock = tmp_path / "swgemm.sock"
    process, info = _boot_daemon(tmp_path, "--socket", str(sock))
    try:
        assert info["socket"] == str(sock)
        with connect(str(sock), tenant="smoke") as client:
            assert client.ping()["pong"]
            client.shutdown(drain=True)
        process.wait(timeout=30.0)
        assert process.returncode == 0
        # The daemon removes its socket file on clean exit.
        assert not sock.exists()
    finally:
        if process.poll() is None:
            process.kill()
            process.wait(timeout=10.0)
