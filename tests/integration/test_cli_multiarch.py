"""The multi-arch CLI surface (PR 8): ``--arch`` and ``--micro-kernel``."""

import pytest

from repro.cli import main


@pytest.fixture()
def cache_dir(tmp_path):
    return str(tmp_path / "kernel-cache")


def test_compile_nondefault_arch_and_shape(tmp_path, cache_dir, capsys):
    """The acceptance-criterion invocation: a non-contract shape on the
    older chip compiles and names its shape in the kernel call."""
    out = tmp_path / "out"
    assert main([
        "--cache-dir", cache_dir, "compile",
        "--arch", "sw26010", "--micro-kernel", "32x32x16",
        "-o", str(out),
    ]) == 0
    cpe = (out / "gemm_cpe.c").read_text()
    assert "32x32x16" in cpe


def test_compile_parametric_backend_inlines_generated_kernel(
    tmp_path, cache_dir
):
    out = tmp_path / "out"
    assert main([
        "--cache-dir", cache_dir, "compile",
        "--arch", "sw26010", "--micro-kernel", "32x32x16@parametric",
        "-o", str(out),
    ]) == 0
    cpe = (out / "gemm_cpe.c").read_text()
    assert "gen_dgemm_32x32x16" in cpe
    assert "doublev8" in cpe


def test_run_on_nondefault_arch_verifies_numerics(cache_dir, capsys):
    assert main([
        "--cache-dir", cache_dir, "run",
        "--arch", "sw26010", "--micro-kernel", "32x32x16",
        "-M", "256", "-N", "256", "-K", "128",
    ]) == 0
    assert "max |C - reference|" in capsys.readouterr().out


def test_bad_micro_kernel_spec_exits_1(cache_dir, capsys):
    code = main([
        "--cache-dir", cache_dir, "compile",
        "--micro-kernel", "32by32by16",
    ])
    assert code == 1
    assert "expected MTxNTxKT" in capsys.readouterr().err


def test_unknown_arch_rejected_by_argparse(cache_dir, capsys):
    with pytest.raises(SystemExit) as excinfo:
        main(["--cache-dir", cache_dir, "compile", "--arch", "riscv"])
    assert excinfo.value.code == 2
    assert "invalid choice" in capsys.readouterr().err
