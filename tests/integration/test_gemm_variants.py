"""Transposed GEMM variants (§2: "other GEMM variants share the same
structure with DGEMM... no fundamental reasons impeding our approach").

``C = α·op(A)·op(B) + β·C`` with op ∈ {identity, transpose} on each
operand — the polyhedral footprint derivation, the buffer plan, the RMA
schedule and the kernel contract all adapt from the access relations
alone.
"""

import numpy as np
import pytest

from repro.core import CompilerOptions, GemmCompiler, GemmSpec
from repro.frontend import compile_c, extract_spec
from repro.runtime.executor import run_gemm
from repro.sunway.arch import SW26010PRO, TOY_ARCH


@pytest.mark.parametrize(
    "trans_a,trans_b",
    [(False, False), (True, False), (False, True), (True, True)],
    ids=["NN", "TN", "NT", "TT"],
)
def test_all_transpose_variants_exact(rng, trans_a, trans_b):
    spec = GemmSpec(trans_a=trans_a, trans_b=trans_b)
    program = GemmCompiler(TOY_ARCH, CompilerOptions.full()).compile(spec)
    M, N, K = 32, 24, 16
    A = rng.standard_normal((K, M) if trans_a else (M, K))
    B = rng.standard_normal((N, K) if trans_b else (K, N))
    C0 = rng.standard_normal((M, N))
    C, _ = run_gemm(program, A, B, C0.copy(), alpha=1.5, beta=0.5)
    opA = A.T if trans_a else A
    opB = B.T if trans_b else B
    assert np.allclose(C, 1.5 * opA @ opB + 0.5 * C0, atol=1e-12)


@pytest.mark.parametrize("variant", ["baseline", "rma"])
def test_transposes_work_without_hiding_and_without_asm(rng, variant):
    options = (
        CompilerOptions.baseline() if variant == "baseline"
        else CompilerOptions.with_rma()
    )
    spec = GemmSpec(trans_a=True, trans_b=True)
    program = GemmCompiler(TOY_ARCH, options).compile(spec)
    A = rng.standard_normal((8, 16))
    B = rng.standard_normal((16, 8))
    C, _ = run_gemm(program, A, B, None, beta=0.0)
    assert np.allclose(C, A.T @ B.T, atol=1e-12)


def test_buffer_plan_uses_storage_layouts():
    spec = GemmSpec(trans_a=True)
    program = GemmCompiler(SW26010PRO, CompilerOptions.full()).compile(spec)
    decls = {b.name: b.shape for b in program.cpe_program.buffers}
    # A tiles stored in A's own layout: kt x mt.
    assert decls["local_A_dma"] == (2, 32, 64)
    assert decls["local_B_dma"] == (2, 32, 64)
    assert program.spm_bytes() == 160 * 1024  # same budget as NN


def test_dma_arguments_follow_the_transposed_layout():
    from repro.core.decomposition import decompose
    from repro.core.dma import derive_dma_specs
    from repro.core.tile_model import plan_for_kernel

    spec = GemmSpec(trans_a=True)
    options = CompilerOptions.full()
    plan = plan_for_kernel(SW26010PRO, options, trans_a=True)
    dec = decompose(spec, plan, options)
    specs = derive_dma_specs(dec)
    a = specs["getA"]
    # A^T is stored K x M: rows walk k (the slice), columns walk i.
    assert (a.rows, a.cols) == (32, 64)
    assert a.ld_param == "M"
    env = {"ic": 1, "Rid": 2, "ko": 3, "Cid": 4}
    assert a.row_expr.evaluate(env) == 256 * 3 + 32 * 4
    assert a.col_expr.evaluate(env) == 512 * 1 + 64 * 2


def test_frontend_recognises_tn_and_nt():
    TN = """
    void f(int M, int N, int K, double A[K][M], double B[K][N], double C[M][N]) {
      for (int i = 0; i < M; i++)
        for (int j = 0; j < N; j++)
          for (int k = 0; k < K; k++)
            C[i][j] += A[k][i] * B[k][j];
    }
    """
    spec = extract_spec(TN)
    assert spec.trans_a and not spec.trans_b

    NT = """
    void f(int M, int N, int K, double A[M][K], double B[N][K], double C[M][N]) {
      for (int i = 0; i < M; i++)
        for (int j = 0; j < N; j++)
          for (int k = 0; k < K; k++)
            C[i][j] += A[i][k] * B[j][k];
    }
    """
    spec = extract_spec(NT)
    assert spec.trans_b and not spec.trans_a


def test_tn_compile_c_end_to_end(rng):
    TN = """
    void f(int M, int N, int K, double A[K][M], double B[K][N], double C[M][N]) {
      for (int i = 0; i < M; i++)
        for (int j = 0; j < N; j++)
          for (int k = 0; k < K; k++)
            C[i][j] += A[k][i] * B[k][j];
    }
    """
    program = compile_c(TN, arch=TOY_ARCH)
    A = rng.standard_normal((16, 32))
    B = rng.standard_normal((16, 24))
    C, _ = run_gemm(program, A, B, None, beta=0.0)
    assert np.allclose(C, A.T @ B, atol=1e-12)


def test_transposed_extent_mismatch_rejected():
    from repro.errors import PatternError

    BAD = """
    void f(int M, int N, int K, double A[M][K], double B[K][N], double C[M][N]) {
      for (int i = 0; i < M; i++)
        for (int j = 0; j < N; j++)
          for (int k = 0; k < K; k++)
            C[i][j] += A[k][i] * B[k][j];
    }
    """
    with pytest.raises(PatternError):
        extract_spec(BAD)


def test_generated_source_strips_follow_layout():
    spec = GemmSpec(trans_a=True)
    program = GemmCompiler(SW26010PRO, CompilerOptions.full()).compile(spec)
    src = program.cpe_source()
    # A^T has leading dimension M, so its DMA strip is (M - 64).
    assert "(M - 64), &get_replyA" in src


def test_padding_with_transposes(rng):
    spec = GemmSpec(trans_a=True, trans_b=True)
    program = GemmCompiler(TOY_ARCH, CompilerOptions.full()).compile(spec)
    M, N, K = 19, 21, 13  # nothing divides
    A = rng.standard_normal((K, M))
    B = rng.standard_normal((N, K))
    C, _ = run_gemm(program, A, B, None, beta=0.0)
    assert np.allclose(C, A.T @ B.T, atol=1e-12)
