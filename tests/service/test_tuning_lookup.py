"""Tuning-record steering inside the compilation service."""

import pytest

from repro.core import CompilerOptions, GemmSpec
from repro.core.options import TileConfig
from repro.service import CompileService, ServiceConfig
from repro.sunway.arch import TOY_ARCH
from repro.tune import TuneOptions, Tuner

SHAPE = (128, 128, 64)


@pytest.fixture()
def tuned_dir(tmp_path):
    """A cache dir holding one tuning record for SHAPE's class."""
    service = CompileService(ServiceConfig(cache_dir=tmp_path / "cache"))
    result = Tuner(TOY_ARCH, service=service).tune(
        M=SHAPE[0], N=SHAPE[1], K=SHAPE[2],
        tune_options=TuneOptions(seed=0, max_measurements=6),
    )
    return tmp_path / "cache", result.record


def test_shape_hint_steers_to_the_record(tuned_dir):
    cache_dir, record = tuned_dir
    service = CompileService(ServiceConfig(cache_dir=cache_dir))
    program = service.get_program(
        GemmSpec(), TOY_ARCH, CompilerOptions(), shape_hint=SHAPE
    )
    assert program.plan.kernel_shape == record.candidate.tile.shape()
    assert service.tuning_lookups == 1
    assert service.tuning_hits == 1


def test_no_hint_no_steering(tuned_dir):
    cache_dir, _ = tuned_dir
    service = CompileService(ServiceConfig(cache_dir=cache_dir))
    program = service.get_program(GemmSpec(), TOY_ARCH, CompilerOptions())
    assert program.plan.kernel_shape == TOY_ARCH.micro_kernel
    assert service.tuning_lookups == 0


def test_unmatched_shape_class_misses(tuned_dir):
    cache_dir, _ = tuned_dir
    service = CompileService(ServiceConfig(cache_dir=cache_dir))
    program = service.get_program(
        GemmSpec(), TOY_ARCH, CompilerOptions(), shape_hint=(2048, 2048, 2048)
    )
    assert program.plan.kernel_shape == TOY_ARCH.micro_kernel
    assert service.tuning_lookups == 1
    assert service.tuning_hits == 0


def test_explicit_tile_config_wins_over_the_record(tuned_dir):
    cache_dir, record = tuned_dir
    service = CompileService(ServiceConfig(cache_dir=cache_dir))
    pinned = TileConfig(4, 4, 4)
    program = service.get_program(
        GemmSpec(),
        TOY_ARCH,
        CompilerOptions(tile_config=pinned),
        shape_hint=SHAPE,
    )
    assert program.plan.kernel_shape == pinned.shape()
    assert service.tuning_lookups == 0


def test_non_default_knobs_are_not_steered(tuned_dir):
    cache_dir, _ = tuned_dir
    service = CompileService(ServiceConfig(cache_dir=cache_dir))
    program = service.get_program(
        GemmSpec(),
        TOY_ARCH,
        CompilerOptions(enable_rma=False),
        shape_hint=SHAPE,
    )
    assert program.plan.kernel_shape == TOY_ARCH.micro_kernel
    assert service.tuning_lookups == 0


def test_stats_report_tuning_section(tuned_dir):
    cache_dir, _ = tuned_dir
    service = CompileService(ServiceConfig(cache_dir=cache_dir))
    service.get_program(GemmSpec(), TOY_ARCH, CompilerOptions(), shape_hint=SHAPE)
    report = service.stats()
    assert report["tuning"]["lookups"] == 1
    assert report["tuning"]["hits"] == 1
    assert report["tuning"]["records"] >= 1


def test_memory_only_service_has_a_working_store():
    service = CompileService(ServiceConfig(enabled=False))
    assert service.tuning_store.root is None
    assert service.tuning_store.keys() == []
