"""Compile deadlines: ``timeout_s`` on the service and the compiler.

The deadline covers the whole request — including time spent blocked on
another request's in-flight compilation — and overruns surface as a
structured :class:`CompileTimeout`, never a hang.
"""

import threading
import time

import pytest

from repro.core import CompilerOptions, GemmCompiler, GemmSpec
from repro.errors import CompileTimeout
from repro.service import KernelService, ServiceConfig
from repro.sunway.arch import TOY_ARCH


def service(tmp_path=None, **kwargs):
    config = ServiceConfig(
        cache_dir=tmp_path / "cache" if tmp_path else None, **kwargs
    )
    return KernelService(config)


def test_exhausted_deadline_fails_before_compiling(tmp_path):
    svc = service(tmp_path)
    with pytest.raises(CompileTimeout) as err:
        svc.compile(GemmSpec(), TOY_ARCH, CompilerOptions.full(), timeout_s=0.0)
    assert "deadline" in str(err.value)
    assert err.value.timeout_s <= 0.0
    assert svc.compile_count == 0


def test_generous_deadline_compiles_normally(tmp_path):
    svc = service(tmp_path)
    program = svc.compile(
        GemmSpec(), TOY_ARCH, CompilerOptions.full(), timeout_s=120.0
    )
    assert program.verification is not None and program.verification.ok
    # A repeat under deadline is a cache hit, not a recompile.
    again = svc.compile(
        GemmSpec(), TOY_ARCH, CompilerOptions.full(), timeout_s=120.0
    )
    assert again is program or again.plan == program.plan
    assert svc.compile_count == 1


def test_compiler_deadline_raises_between_passes():
    compiler = GemmCompiler(TOY_ARCH, CompilerOptions.full())
    with pytest.raises(CompileTimeout):
        compiler.compile(GemmSpec(), timeout_s=0.0)


def test_waiter_timeout_is_counted_and_structured():
    release = threading.Event()
    entered = threading.Event()

    def slow_compile(spec, arch, options, timeout_s=None):
        entered.set()
        release.wait(timeout=10.0)
        return GemmCompiler(arch, options).compile(spec)

    svc = KernelService(ServiceConfig(), compile_fn=slow_compile)
    spec, options = GemmSpec(), CompilerOptions.full()

    owner_result = {}

    def owner():
        owner_result["program"] = svc.compile(spec, TOY_ARCH, options)

    thread = threading.Thread(target=owner)
    thread.start()
    try:
        assert entered.wait(timeout=5.0)
        # The second request joins the flight and must time out waiting,
        # not hang until the owner finishes.
        with pytest.raises(CompileTimeout) as err:
            svc.compile(spec, TOY_ARCH, options, timeout_s=0.05)
        assert "exceeded" in str(err.value)
        assert svc.flight_timeouts == 1
        assert svc.stats()["single_flight_timeouts"] == 1
    finally:
        release.set()
        thread.join(timeout=10.0)
    assert owner_result["program"] is not None
    # A timed-out waiter can re-attempt once the flight has landed.
    assert svc.compile(spec, TOY_ARCH, options, timeout_s=5.0) is not None


def test_legacy_compile_fn_without_timeout_kwarg():
    def legacy(spec, arch, options):
        time.sleep(0.05)
        return object()

    svc = KernelService(ServiceConfig(enabled=False), compile_fn=legacy)
    # No deadline: the stub result passes straight through the bypass.
    assert svc.compile(GemmSpec(), TOY_ARCH, CompilerOptions.full()) is not None
    # A deadline shorter than the compile is enforced post-hoc.
    with pytest.raises(CompileTimeout):
        svc.compile(
            GemmSpec(), TOY_ARCH, CompilerOptions.full(), timeout_s=0.01
        )


def test_cli_timeout_flag_maps_to_exit_code(tmp_path, capsys):
    from repro.cli import main

    out = tmp_path / "out"
    assert main(["--no-cache", "--timeout", "0", "compile", "-o", str(out)]) == 1
    err = capsys.readouterr().err
    assert "swgemm: error:" in err and "deadline" in err
