"""Warmup routed through the shared priority pool.

``CompileService.warmup()`` must submit its precompiles at the lowest
priority class on whatever pool the daemon attached — so a warmup fleet
can saturate idle workers but never delay interactive traffic — and the
service stats must expose the per-class execution counts that prove it.
"""

import threading

import pytest

from repro.core import CompilerOptions, GemmSpec
from repro.core.pipeline import GemmCompiler
from repro.serve.workers import WorkerPool
from repro.service import CompileService, ServiceConfig
from repro.service.service import standard_requests
from repro.sunway.arch import TOY_ARCH


def test_warmup_uses_attached_pool_at_warmup_priority():
    pool = WorkerPool(2, name="test-attached")
    service = CompileService(ServiceConfig())
    service.attach_worker_pool(pool)
    try:
        rows = service.warmup()
        assert len(rows) == len(standard_requests())
        assert all(row["source"] == "compiled" for row in rows)
        stats = pool.stats()
        assert stats["executed"]["warmup"] == len(rows)
        assert stats["executed"]["interactive"] == 0
    finally:
        service.close()
        pool.shutdown(drain=True)


def test_warmup_lazily_builds_private_pool():
    service = CompileService(ServiceConfig(workers=2))
    try:
        assert service.stats()["workers"] is None  # no pool yet
        rows = service.warmup(requests=standard_requests()[:2])
        assert len(rows) == 2
        workers = service.stats()["workers"]
        assert workers is not None
        assert workers["executed"]["warmup"] == 2
    finally:
        service.close()


def test_interactive_preempts_queued_warmup():
    """On a busy 1-worker pool, an interactive job queued *after* a pile
    of warmup jobs still runs before all but the already-started one."""
    order = []
    order_lock = threading.Lock()
    release = threading.Event()

    def gated_compile(spec, arch, options):
        # First warmup compile blocks the only worker so everything else
        # queues up behind it; later compiles run instantly.
        with order_lock:
            first = not order
        if first:
            release.wait(timeout=30.0)
        return GemmCompiler(arch, options).compile(spec)

    service = CompileService(ServiceConfig(), compile_fn=gated_compile)
    pool = WorkerPool(1, name="test-preempt")
    service.attach_worker_pool(pool)

    def record(tag):
        with order_lock:
            order.append(tag)

    try:
        warmup_thread = threading.Thread(
            target=lambda: [
                record(f"warmup:{row['key'][:6]}")
                for row in service.warmup(requests=standard_requests()[:4])
            ]
        )
        warmup_thread.start()
        # Wait until the worker is inside the first (gated) warmup job.
        assert _wait_for(lambda: pool.stats()["queue"]["size"] >= 3)
        interactive = pool.submit(
            lambda: record("interactive"),
            priority="interactive",
            tenant="user",
        )
        release.set()
        interactive.result(timeout=30.0)
        warmup_thread.join(timeout=60.0)
        # The interactive job ran ahead of every still-queued warmup job.
        started_after_gate = [t for t in order if t != "warmup:" + order[0][7:]]
        assert order.index("interactive") <= 1, order
        stats = pool.stats()
        assert stats["executed"]["interactive"] == 1
        assert stats["executed"]["warmup"] == 4
        assert started_after_gate  # warmups did complete afterwards
    finally:
        release.set()
        service.close()
        pool.shutdown(drain=True)


def test_stats_expose_priority_classes():
    pool = WorkerPool(1, name="test-stats")
    service = CompileService(ServiceConfig())
    service.attach_worker_pool(pool)
    try:
        pool.submit(lambda: None, priority="interactive", tenant="a").result(5)
        pool.submit(lambda: None, priority="batch", tenant="b").result(5)
        service.warmup(requests=standard_requests()[:1])
        workers = service.stats()["workers"]
        assert workers["executed"] == {
            "interactive": 1,
            "batch": 1,
            "warmup": 1,
        }
        assert set(workers["queue"]["enqueued"]) == {
            "interactive",
            "batch",
            "warmup",
        }
    finally:
        service.close()
        pool.shutdown(drain=True)


def test_attach_replaces_owned_pool():
    service = CompileService(ServiceConfig(workers=1))
    private = service.worker_pool()
    shared = WorkerPool(1, name="test-shared")
    try:
        service.attach_worker_pool(shared)
        assert service.worker_pool() is shared
        # The private pool was drained and shut down on replacement.
        with pytest.raises(Exception):
            private.submit(lambda: None)
        # close() must not shut down a pool the service does not own.
        service.close()
        shared.submit(lambda: None, priority="batch", tenant="t").result(5)
    finally:
        shared.shutdown(drain=True)


def _wait_for(predicate, timeout=30.0):
    import time

    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(0.01)
    return False
