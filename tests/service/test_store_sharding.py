"""FLAT -> sharded store migration: idempotence, conflicts, stats.

A store written before hash-prefix sharding keeps every artifact at the
cache root.  Opening such a store must move each artifact into its
``key[:2]`` shard exactly once, resolve flat/sharded duplicates in
favour of the sharded copy, and keep serving either layout — so a
half-migrated (e.g. read-only) store never loses data.
"""

import json

from repro.core import CompilerOptions, GemmSpec
from repro.core.pipeline import GemmCompiler
from repro.service.store import ArtifactStore, shard_for
from repro.sunway.arch import TOY_ARCH


def compiled_program(**options):
    return GemmCompiler(TOY_ARCH, CompilerOptions(**options)).compile(GemmSpec())


def flat_path(root, key):
    return root / f"{key}.json"


def build_flat_store(root, keys_programs):
    """Lay artifacts out the pre-sharding way: straight at the root."""
    root.mkdir(parents=True, exist_ok=True)
    for key, program in keys_programs:
        payload = {
            "key": key,
            "created": 0.0,
            "codegen_seconds": program.codegen_seconds,
            "variant": program.options.variant_name(),
            "program": program.to_dict(),
        }
        flat_path(root, key).write_text(json.dumps(payload))


def test_shard_for_uses_hex_prefix_with_fallback():
    assert shard_for("ca7382" + "0" * 58) == "ca"
    assert shard_for("AB" + "0" * 62) == "ab"
    # Degenerate keys (test doubles, hand-rolled names) share one shard.
    assert shard_for("not-a-hash") == "__"
    assert shard_for("f") == "__"


def test_open_migrates_flat_store_into_shards(tmp_path):
    program = compiled_program()
    keys = ["aa" + "0" * 62, "ab" + "1" * 62, "aa" + "2" * 62]
    build_flat_store(tmp_path, [(k, program) for k in keys])

    store = ArtifactStore(tmp_path)
    assert store.migrated == 3
    for key in keys:
        assert not flat_path(tmp_path, key).exists()
        assert (tmp_path / shard_for(key) / f"{key}.json").exists()
        assert store.get(key) is not None
    assert store.shard_counts() == {"aa": 2, "ab": 1}


def test_migration_is_idempotent(tmp_path):
    key = "cd" + "3" * 62
    build_flat_store(tmp_path, [(key, compiled_program())])
    first = ArtifactStore(tmp_path)
    assert first.migrated == 1
    # Re-opening the (now sharded) store finds nothing flat to move.
    second = ArtifactStore(tmp_path)
    assert second.migrated == 0
    assert second.get(key) is not None
    # The persistent counter records the one real migration only.
    assert second.load_persistent_stats().get("migrated") == 1


def test_flat_and_sharded_duplicate_resolves_to_sharded(tmp_path):
    key = "ef" + "4" * 62
    program = compiled_program()
    store = ArtifactStore(tmp_path)
    sharded = store.put(key, program)
    marker = json.loads(sharded.read_text())
    # A stale flat copy reappears (old binary raced the migration).
    build_flat_store(tmp_path, [(key, program)])
    reopened = ArtifactStore(tmp_path)
    # The duplicate is counted as handled, the flat copy is gone, and
    # the sharded artifact is untouched (same bytes, not re-written).
    assert reopened.migrated == 1
    assert not flat_path(tmp_path, key).exists()
    assert json.loads(sharded.read_text()) == marker
    assert reopened.get(key) is not None


def test_flat_straggler_still_served_and_listed(tmp_path):
    """If migration cannot move a file, get()/keys() still see it."""
    store = ArtifactStore(tmp_path)
    key = "0d" + "5" * 62
    build_flat_store(tmp_path, [(key, compiled_program())])
    # No re-open (no migration ran): the flat fallback path serves it.
    assert store.get(key) is not None
    assert key in store.keys()
    assert store.shard_counts() == {"(flat)": 1}


def test_stats_report_shard_layout(tmp_path):
    store = ArtifactStore(tmp_path)
    program = compiled_program()
    for key in ("11" + "a" * 62, "11" + "b" * 62, "22" + "c" * 62):
        store.put(key, program)
    stats = store.stats()
    assert stats["artifacts"] == 3
    assert stats["shards"] == 2
    assert stats["per_shard"] == {"11": 2, "22": 1}
    assert stats["migrated"] == 0


def test_clear_removes_artifacts_and_empty_shards(tmp_path):
    store = ArtifactStore(tmp_path)
    keys = ["33" + "d" * 62, "44" + "e" * 62]
    for key in keys:
        store.put(key, compiled_program())
    assert store.clear() == 2
    assert store.keys() == []
    for key in keys:
        assert not (tmp_path / shard_for(key)).exists()


def test_stats_json_never_migrated_as_artifact(tmp_path):
    store = ArtifactStore(tmp_path)
    store.bump_persistent_stats({"hits": 1})
    reopened = ArtifactStore(tmp_path)
    assert reopened.migrated == 0
    assert (tmp_path / "stats.json").exists()
