"""Per-arch attribution in the artifact store (PR 8).

Every artifact written since the multi-arch refactor carries a
top-level ``arch`` tag so ``swgemm cache stats`` can attribute disk
usage per target without decoding the programs; artifacts written
before the tag existed were all SW26010Pro compiles and must be
counted there.
"""

import json

from repro.core import CompilerOptions, GemmSpec
from repro.core.pipeline import GemmCompiler
from repro.service.store import ArtifactStore
from repro.sunway.arch import SW26010, TOY_ARCH


def compiled_program(arch):
    return GemmCompiler(arch, CompilerOptions.full()).compile(GemmSpec())


def test_arch_counts_split_by_registry_key(tmp_path):
    store = ArtifactStore(tmp_path)
    store.put("k-toy-1", compiled_program(TOY_ARCH))
    store.put("k-toy-2", compiled_program(TOY_ARCH))
    store.put("k-010", compiled_program(SW26010))
    assert store.arch_counts() == {"toy": 2, "sw26010": 1}
    assert store.stats()["archs"] == {"toy": 2, "sw26010": 1}


def test_untagged_legacy_artifact_counts_as_sw26010pro(tmp_path):
    store = ArtifactStore(tmp_path)
    path = store.put("k-legacy", compiled_program(TOY_ARCH))
    data = json.loads(path.read_text())
    del data["arch"]
    path.write_text(json.dumps(data))
    assert store.arch_counts() == {"sw26010pro": 1}
