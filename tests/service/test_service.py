"""CompileService behavior: tiers, single-flight, bypass, warmup."""

import threading
import time

import pytest

from repro.core import CompilerOptions, GemmSpec
from repro.service import CompileService, ServiceConfig
from repro.sunway.arch import TOY_ARCH


def counting_compiler(counter, result=None, before=None, gate=None):
    """A fake compile_fn that counts invocations.  ``before`` is set when
    a compile starts; ``gate`` (if given) blocks the compile until set."""

    def compile_fn(spec, arch, options):
        counter.append((spec, arch, options))
        if before is not None:
            before.set()
        if gate is not None:
            assert gate.wait(timeout=10.0)
        return result if result is not None else object()

    return compile_fn


def test_memory_tier_serves_repeats():
    calls = []
    service = CompileService(ServiceConfig(), counting_compiler(calls))
    first = service.get_program(GemmSpec(), TOY_ARCH)
    second = service.get_program(GemmSpec(), TOY_ARCH)
    assert first is second
    assert len(calls) == 1
    stats = service.stats()
    assert stats["memory"]["hits"] == 1
    assert stats["compiles"]["count"] == 1


def test_distinct_keys_compile_separately():
    calls = []
    service = CompileService(ServiceConfig(), counting_compiler(calls))
    service.get_program(GemmSpec(), TOY_ARCH, CompilerOptions.baseline())
    service.get_program(GemmSpec(), TOY_ARCH, CompilerOptions.full())
    assert len(calls) == 2


def test_single_flight_dedups_concurrent_requests():
    """Two threads asking for the same key while the compile is in flight
    must produce exactly one compile; the waiter gets the owner's result."""
    calls = []
    started = threading.Event()
    gate = threading.Event()
    sentinel = object()
    service = CompileService(
        ServiceConfig(),
        counting_compiler(calls, result=sentinel, before=started, gate=gate),
    )
    results = []

    def request():
        results.append(service.get_program(GemmSpec(), TOY_ARCH))

    owner = threading.Thread(target=request)
    owner.start()
    assert started.wait(timeout=10.0)  # the owner is inside compile_fn
    waiter = threading.Thread(target=request)
    waiter.start()
    deadline = time.monotonic() + 10.0
    while service.deduped < 1:  # the waiter has parked on the flight
        assert time.monotonic() < deadline
        time.sleep(0.001)
    gate.set()
    owner.join(timeout=10.0)
    waiter.join(timeout=10.0)
    assert len(calls) == 1
    assert results == [sentinel, sentinel]
    assert service.stats()["single_flight_deduped"] == 1


def test_single_flight_propagates_errors_to_waiters():
    started = threading.Event()
    gate = threading.Event()
    boom = RuntimeError("compile exploded")

    def failing_compile(spec, arch, options):
        started.set()
        assert gate.wait(timeout=10.0)
        raise boom

    service = CompileService(ServiceConfig(), failing_compile)
    errors = []

    def request():
        try:
            service.get_program(GemmSpec(), TOY_ARCH)
        except RuntimeError as exc:
            errors.append(exc)

    owner = threading.Thread(target=request)
    owner.start()
    assert started.wait(timeout=10.0)
    waiter = threading.Thread(target=request)
    waiter.start()
    deadline = time.monotonic() + 10.0
    while service.deduped < 1:
        assert time.monotonic() < deadline
        time.sleep(0.001)
    gate.set()
    owner.join(timeout=10.0)
    waiter.join(timeout=10.0)
    assert errors == [boom, boom]
    # The failed flight must not poison the key: a retry compiles again.
    ok = CompileService(ServiceConfig(), counting_compiler([]))
    assert ok.get_program(GemmSpec(), TOY_ARCH) is not None


def test_disabled_service_always_compiles():
    """--no-cache semantics: every request compiles, nothing is cached."""
    calls = []
    service = CompileService(
        ServiceConfig(enabled=False), counting_compiler(calls)
    )
    a = service.get_program(GemmSpec(), TOY_ARCH)
    b = service.get_program(GemmSpec(), TOY_ARCH)
    assert a is not b
    assert len(calls) == 2
    stats = service.stats()
    assert stats["enabled"] is False
    assert stats["bypassed"] == 2
    assert stats["memory"]["size"] == 0


def test_disk_tier_survives_service_restart(tmp_path):
    """A second service instance (a fresh process, morally) finds the
    artifact on disk and never invokes the compiler."""
    config = ServiceConfig(cache_dir=tmp_path / "cache")
    first = CompileService(config)
    program = first.get_program(GemmSpec(), TOY_ARCH, CompilerOptions.full())
    assert first.stats()["compiles"]["count"] == 1

    calls = []
    second = CompileService(config, counting_compiler(calls))
    reloaded = second.get_program(GemmSpec(), TOY_ARCH, CompilerOptions.full())
    assert calls == []  # served from disk, zero recompilation
    assert second.stats()["disk"]["hits"] == 1
    assert reloaded.tree_dump() == program.tree_dump()
    assert reloaded.cpe_source() == program.cpe_source()


def test_lru_eviction_falls_back_to_disk(tmp_path):
    """Evicted from memory but still on disk: the next request reloads
    the artifact instead of recompiling."""
    config = ServiceConfig(memory_capacity=1, cache_dir=tmp_path / "cache")
    service = CompileService(config)
    service.get_program(GemmSpec(), TOY_ARCH, CompilerOptions.baseline())
    service.get_program(GemmSpec(), TOY_ARCH, CompilerOptions.full())
    assert service.stats()["memory"]["evictions"] == 1
    # baseline was evicted; this must be a disk hit, not a third compile.
    service.get_program(GemmSpec(), TOY_ARCH, CompilerOptions.baseline())
    stats = service.stats()
    assert stats["compiles"]["count"] == 2
    assert stats["disk"]["hits"] == 1


def test_warmup_reports_sources(tmp_path):
    requests = [
        (GemmSpec(), TOY_ARCH, CompilerOptions.baseline()),
        (GemmSpec(), TOY_ARCH, CompilerOptions.full()),
    ]
    service = CompileService(ServiceConfig(cache_dir=tmp_path / "cache"))
    rows = service.warmup(requests, workers=2)
    assert sorted(r["source"] for r in rows) in (
        ["compiled", "compiled"],
        ["compiled", "deduped"],  # not possible here (distinct keys)...
    )
    assert all(len(r["key"]) == 64 for r in rows)
    # A second warmup is served entirely from memory.
    again = service.warmup(requests, workers=1)
    assert [r["source"] for r in again] == ["memory", "memory"]
    assert service.stats()["compiles"]["count"] == 2


def test_clear_drops_both_tiers(tmp_path):
    service = CompileService(ServiceConfig(cache_dir=tmp_path / "cache"))
    service.get_program(GemmSpec(), TOY_ARCH, CompilerOptions.full())
    removed = service.clear()
    assert removed == {"memory": 1, "disk": 1}
    assert service.store.keys() == []


def test_corrupt_artifact_recompiles(tmp_path):
    config = ServiceConfig(cache_dir=tmp_path / "cache")
    first = CompileService(config)
    key = first.key_for(GemmSpec(), TOY_ARCH, CompilerOptions.full())
    first.get_program(GemmSpec(), TOY_ARCH, CompilerOptions.full())
    first.store.path_for(key).write_text("{ not json")

    second = CompileService(config)
    second.get_program(GemmSpec(), TOY_ARCH, CompilerOptions.full())
    assert second.stats()["compiles"]["count"] == 1  # recompiled
    assert not first.store.path_for(key).read_text().startswith("{ not")


def test_stats_report_shape():
    service = CompileService(ServiceConfig())
    service.get_program(GemmSpec(), TOY_ARCH)
    stats = service.stats()
    assert set(stats) >= {
        "enabled", "requests", "bypassed", "single_flight_deduped",
        "memory", "compiles",
    }
    assert stats["requests"] == 1
    assert stats["compiles"]["count"] == 1
    assert stats["compiles"]["total_seconds"] > 0
    assert stats["compiles"]["mean_ms"] > 0
    assert stats["compiles"]["max_ms"] >= stats["compiles"]["mean_ms"]


def test_persistent_stats_accumulate_across_instances(tmp_path):
    """The acceptance flow: a warm `perf` run leaves hits that a later
    `cache stats` process can still see."""
    config = ServiceConfig(cache_dir=tmp_path / "cache")
    first = CompileService(config)
    first.get_program(GemmSpec(), TOY_ARCH)
    first.get_program(GemmSpec(), TOY_ARCH)  # memory hit

    second = CompileService(config)
    persistent = second.store.load_persistent_stats()
    assert persistent["requests"] == 2
    assert persistent["compiles"] == 1
    assert persistent["memory_hits"] == 1


def test_cache_hits_are_stamped_with_reconciled_options():
    """Regression: a memory hit must carry the options the compile would
    have reconciled to, not the caller's raw (inert-flagged) set."""
    service = CompileService(ServiceConfig())
    spec = GemmSpec()  # unbatched: the batch flag is inert
    first = service.get_program(spec, TOY_ARCH, CompilerOptions.full())
    hit = service.get_program(
        spec, TOY_ARCH, CompilerOptions.full().with_(batch=True)
    )
    assert hit.options == first.options
    assert hit.options.batch is False
    # Both requests address the same artifact.
    assert service.compile_count == 1


def test_reconciliation_preserves_runtime_policies_on_hits():
    from repro.faults import FaultPolicy

    service = CompileService(ServiceConfig())
    spec = GemmSpec()
    service.get_program(spec, TOY_ARCH, CompilerOptions.full())
    policy = FaultPolicy(enabled=True, seed=11)
    hit = service.get_program(
        spec, TOY_ARCH, CompilerOptions.full().with_(fault_policy=policy)
    )
    assert service.compile_count == 1
    assert hit.options.fault_policy == policy
