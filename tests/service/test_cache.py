"""Hot-tier LRU semantics."""

import pytest

from repro.errors import ConfigurationError
from repro.service.cache import LRUCache


def test_eviction_is_lru_ordered():
    cache = LRUCache(capacity=3)
    for k in "abc":
        cache.put(k, k.upper())
    # Touch "a": it becomes most-recent, so "b" is now the LRU victim.
    assert cache.get("a") == "A"
    cache.put("d", "D")
    assert cache.get("b") is None
    assert cache.get("a") == "A"
    assert cache.keys()[-1] == "a" or "d" in cache.keys()
    assert set(cache.keys()) == {"a", "c", "d"}


def test_counters():
    cache = LRUCache(capacity=2)
    cache.put("x", 1)
    assert cache.get("x") == 1
    assert cache.get("missing") is None
    cache.put("y", 2)
    cache.put("z", 3)  # evicts "x"
    stats = cache.stats()
    assert stats["hits"] == 1
    assert stats["misses"] == 1
    assert stats["evictions"] == 1
    assert stats["size"] == 2
    assert stats["capacity"] == 2


def test_put_refreshes_recency():
    cache = LRUCache(capacity=2)
    cache.put("x", 1)
    cache.put("y", 2)
    cache.put("x", 10)  # rewrite: "x" becomes most recent
    cache.put("z", 3)  # evicts "y", not "x"
    assert cache.get("x") == 10
    assert cache.get("y") is None


def test_clear_reports_dropped_count():
    cache = LRUCache(capacity=4)
    for k in "abc":
        cache.put(k, k)
    assert cache.clear() == 3
    assert cache.keys() == []


def test_capacity_must_be_positive():
    with pytest.raises(ConfigurationError):
        LRUCache(capacity=0)
