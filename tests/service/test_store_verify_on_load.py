"""Verify-on-load: report-less disk artifacts are re-proven or
quarantined before they are ever served as hits."""

import json

import pytest

from repro.core import CompilerOptions, GemmCompiler, GemmSpec
from repro.poly.astnodes import BufferDecl
from repro.service import ArtifactStore, KernelService, ServiceConfig, cache_key
from repro.sunway.arch import TOY_ARCH


def compile_toy(verify=True):
    options = CompilerOptions.full().with_(verify=verify)
    return GemmCompiler(TOY_ARCH, options).compile(GemmSpec()), options


def strip_report(store, key):
    """Rewrite an artifact in place without its verification report,
    simulating a pre-verifier (or --no-verify) artifact."""
    path = store.path_for(key)
    data = json.loads(path.read_text())
    program = store.get(key)
    program.verification = None
    data["program"] = program.to_dict()
    path.write_text(json.dumps(data))


def test_reportless_artifact_is_verified_and_healed(tmp_path):
    store = ArtifactStore(tmp_path / "cache")
    program, options = compile_toy()
    key = cache_key(GemmSpec(), TOY_ARCH, options)
    store.put(key, program)
    strip_report(store, key)

    fresh = ArtifactStore(tmp_path / "cache")
    loaded = fresh.get(key)
    assert loaded is not None
    assert loaded.verification is not None and loaded.verification.ok
    assert fresh.verified_on_load == 1
    assert fresh.stats()["verified_on_load"] == 1
    # The artifact was healed on disk: a third store sees the report
    # without re-running the verifier.
    healed = ArtifactStore(tmp_path / "cache")
    assert healed.get(key).verification is not None
    assert healed.verified_on_load == 0
    # The persistent counter survives for `swgemm cache stats`.
    assert healed.load_persistent_stats()["verified_on_load"] == 1


def test_unsafe_reportless_artifact_is_quarantined(tmp_path):
    store = ArtifactStore(tmp_path / "cache")
    program, options = compile_toy()
    key = cache_key(GemmSpec(), TOY_ARCH, options)
    # Tamper the program so re-verification must fail, then persist it
    # without a report — as a poisoned legacy artifact would look.
    program.verification = None
    program.cpe_program.buffers.append(
        BufferDecl("poison", (4096, 4096), "double")
    )
    store.put(key, program)

    fresh = ArtifactStore(tmp_path / "cache")
    assert fresh.get(key) is None  # refused, reported as a miss
    assert fresh.verify_rejected == 1
    assert fresh.quarantined == 1
    assert fresh.disk_misses == 1
    assert not store.path_for(key).exists()
    quarantined = list(fresh.quarantine_dir.glob("*.json"))
    assert len(quarantined) == 1
    assert fresh.load_persistent_stats()["verify_rejected"] == 1
    assert fresh.stats()["quarantine_files"] == 1


def test_verify_on_load_can_be_bypassed(tmp_path):
    store = ArtifactStore(tmp_path / "cache")
    program, options = compile_toy()
    key = cache_key(GemmSpec(), TOY_ARCH, options)
    store.put(key, program)
    strip_report(store, key)
    fresh = ArtifactStore(tmp_path / "cache")
    loaded = fresh.get(key, verify_on_load=False)
    assert loaded is not None and loaded.verification is None
    assert fresh.verified_on_load == 0


def test_service_recompiles_after_quarantine(tmp_path):
    config = ServiceConfig(cache_dir=tmp_path / "cache")
    svc = KernelService(config)
    spec, options = GemmSpec(), CompilerOptions.full()
    program = svc.compile(spec, TOY_ARCH, options)
    key = svc.key_for(spec, TOY_ARCH, options)

    # Poison the disk artifact behind the service's back.
    store = ArtifactStore(tmp_path / "cache")
    poisoned = store.get(key)
    poisoned.verification = None
    poisoned.cpe_program.buffers.append(
        BufferDecl("poison", (4096, 4096), "double")
    )
    store.put(key, poisoned)

    # A fresh service (cold memory tier) must refuse the poisoned
    # artifact and transparently recompile through the admission gate.
    svc2 = KernelService(config)
    recompiled = svc2.compile(spec, TOY_ARCH, options)
    assert recompiled.verification is not None and recompiled.verification.ok
    assert all(
        b.name != "poison" for b in recompiled.cpe_program.buffers
    )
    assert svc2.compile_count == 1
