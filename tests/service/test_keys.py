"""Content-addressed cache keys: stability and sensitivity."""

import subprocess
import sys
from pathlib import Path

from repro.core import CompilerOptions, GemmSpec
from repro.service.keys import cache_key
from repro.sunway.arch import SW26010, SW26010PRO, TOY_ARCH

SRC = str(Path(__file__).resolve().parents[2] / "src")


def test_key_is_hex_sha256():
    key = cache_key(GemmSpec())
    assert len(key) == 64
    assert int(key, 16) >= 0


def test_key_deterministic_in_process():
    a = cache_key(GemmSpec(), SW26010PRO, CompilerOptions.full())
    b = cache_key(GemmSpec(), SW26010PRO, CompilerOptions.full())
    assert a == b


def test_key_stable_across_processes():
    """The same triple hashed in a fresh interpreter yields the same key —
    no id()s, dict ordering, or per-process salt leak into the digest."""
    snippet = (
        "from repro.core import CompilerOptions, GemmSpec\n"
        "from repro.service.keys import cache_key\n"
        "from repro.sunway.arch import SW26010PRO\n"
        "print(cache_key(GemmSpec(), SW26010PRO, CompilerOptions.full()))\n"
    )
    out = subprocess.run(
        [sys.executable, "-c", snippet],
        capture_output=True,
        text=True,
        check=True,
        env={"PYTHONPATH": SRC, "PYTHONHASHSEED": "random"},
    )
    assert out.stdout.strip() == cache_key(
        GemmSpec(), SW26010PRO, CompilerOptions.full()
    )


def test_key_sensitive_to_each_input():
    base = cache_key(GemmSpec(), SW26010PRO, CompilerOptions.full())
    assert cache_key(GemmSpec(trans_a=True), SW26010PRO,
                     CompilerOptions.full()) != base
    assert cache_key(GemmSpec(), TOY_ARCH, CompilerOptions.full()) != base
    assert cache_key(GemmSpec(), SW26010, CompilerOptions.full()) != base
    assert cache_key(GemmSpec(), SW26010PRO,
                     CompilerOptions.baseline()) != base


def test_key_ignores_problem_shape():
    """Generated kernels are parametric in M/N/K (§8.5): specs that differ
    only in parameter *names* still differ, but there is no shape in the
    spec at all — the same spec covers every problem size."""
    assert cache_key(GemmSpec()) == cache_key(
        GemmSpec(m_param="M", n_param="N", k_param="K")
    )
    assert cache_key(GemmSpec(m_param="Rows")) != cache_key(GemmSpec())


def test_key_excludes_runtime_policies():
    from repro.faults import FaultPolicy

    base = cache_key(GemmSpec(), SW26010PRO, CompilerOptions.full())
    noisy = CompilerOptions.full().with_(
        fault_policy=FaultPolicy(enabled=True, seed=7)
    )
    assert cache_key(GemmSpec(), SW26010PRO, noisy) == base


def test_fused_and_unfused_specs_never_collide():
    """Regression for the old silent option rebinding: reconciliation
    must not make a fused spec alias the unfused one."""
    options = CompilerOptions.full()
    plain = cache_key(GemmSpec(), SW26010PRO, options)
    fused = cache_key(GemmSpec(epilogue_func="relu"), SW26010PRO, options)
    assert plain != fused


def test_implied_and_explicit_fusion_share_a_key():
    """A fused spec compiled with plain options is reconciled to the same
    kernel as one compiled with the explicit fusion options — one key."""
    spec = GemmSpec(epilogue_func="relu")
    implied = cache_key(spec, SW26010PRO, CompilerOptions.full())
    explicit = cache_key(
        spec,
        SW26010PRO,
        CompilerOptions.full().with_(fusion="epilogue", epilogue_func="relu"),
    )
    assert implied == explicit


def test_inert_knobs_do_not_fragment_the_cache():
    spec = GemmSpec()  # unbatched, unfused
    base = cache_key(spec, SW26010PRO, CompilerOptions.full())
    inert_batch = cache_key(
        spec, SW26010PRO, CompilerOptions.full().with_(batch=True)
    )
    inert_fusion_func = cache_key(
        spec, SW26010PRO, CompilerOptions.full().with_(epilogue_func="sigmoid")
    )
    assert inert_batch == base
    assert inert_fusion_func == base


def test_key_sensitive_to_pipeline():
    """Editing the pass pipeline invalidates exactly the affected keys."""
    from repro.core import GemmCompiler, build_pipeline
    from repro.core.passes import TileSelectionPass

    spec, options = GemmSpec(), CompilerOptions.full()
    base = cache_key(spec, SW26010PRO, options)
    default = build_pipeline(spec, SW26010PRO, options)
    assert cache_key(spec, SW26010PRO, options, pipeline=default) == base

    class CustomTileSelection(TileSelectionPass):
        pass

    custom = GemmCompiler(
        SW26010PRO,
        options,
        replacements={"tile-selection": CustomTileSelection()},
    ).pipeline_for(spec)
    assert cache_key(spec, SW26010PRO, options, pipeline=custom) != base
    # A precomputed identity string is accepted in place of the list.
    assert cache_key(spec, SW26010PRO, options, pipeline="deadbeef") != base
