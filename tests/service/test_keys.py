"""Content-addressed cache keys: stability and sensitivity."""

import subprocess
import sys
from pathlib import Path

from repro.core import CompilerOptions, GemmSpec
from repro.service.keys import cache_key
from repro.sunway.arch import SW26010, SW26010PRO, TOY_ARCH

SRC = str(Path(__file__).resolve().parents[2] / "src")


def test_key_is_hex_sha256():
    key = cache_key(GemmSpec())
    assert len(key) == 64
    assert int(key, 16) >= 0


def test_key_deterministic_in_process():
    a = cache_key(GemmSpec(), SW26010PRO, CompilerOptions.full())
    b = cache_key(GemmSpec(), SW26010PRO, CompilerOptions.full())
    assert a == b


def test_key_stable_across_processes():
    """The same triple hashed in a fresh interpreter yields the same key —
    no id()s, dict ordering, or per-process salt leak into the digest."""
    snippet = (
        "from repro.core import CompilerOptions, GemmSpec\n"
        "from repro.service.keys import cache_key\n"
        "from repro.sunway.arch import SW26010PRO\n"
        "print(cache_key(GemmSpec(), SW26010PRO, CompilerOptions.full()))\n"
    )
    out = subprocess.run(
        [sys.executable, "-c", snippet],
        capture_output=True,
        text=True,
        check=True,
        env={"PYTHONPATH": SRC, "PYTHONHASHSEED": "random"},
    )
    assert out.stdout.strip() == cache_key(
        GemmSpec(), SW26010PRO, CompilerOptions.full()
    )


def test_key_sensitive_to_each_input():
    base = cache_key(GemmSpec(), SW26010PRO, CompilerOptions.full())
    assert cache_key(GemmSpec(trans_a=True), SW26010PRO,
                     CompilerOptions.full()) != base
    assert cache_key(GemmSpec(), TOY_ARCH, CompilerOptions.full()) != base
    assert cache_key(GemmSpec(), SW26010, CompilerOptions.full()) != base
    assert cache_key(GemmSpec(), SW26010PRO,
                     CompilerOptions.baseline()) != base


def test_key_ignores_problem_shape():
    """Generated kernels are parametric in M/N/K (§8.5): specs that differ
    only in parameter *names* still differ, but there is no shape in the
    spec at all — the same spec covers every problem size."""
    assert cache_key(GemmSpec()) == cache_key(
        GemmSpec(m_param="M", n_param="N", k_param="K")
    )
    assert cache_key(GemmSpec(m_param="Rows")) != cache_key(GemmSpec())
