"""Serde round trips for the multi-arch surface (PR 8).

The arch became a request degree of freedom: every registered
:class:`~repro.sunway.arch.ArchSpec` (with its new register-file
fields), :class:`~repro.sunway.arch.MicroKernelShape`, and
``CompilerOptions.kernel_backend`` must survive the JSON round trip the
artifact store performs — and artifacts written *before* the refactor,
which carry no arch tag at all, must load with the paper's SW26010Pro
default rather than crash.
"""

import json

import numpy as np
import pytest

from repro.core import CompilerOptions, GemmCompiler, GemmSpec
from repro.runtime import serde
from repro.runtime.executor import run_gemm
from repro.runtime.program import CompiledProgram
from repro.sunway.arch import (
    SW26010PRO,
    TOY_ARCH,
    MicroKernelShape,
    all_archs,
)


def _round_trip(obj):
    return serde.decode(json.loads(json.dumps(serde.encode(obj))))


@pytest.mark.parametrize("name", sorted(all_archs()))
def test_every_registered_arch_round_trips(name):
    arch = all_archs()[name]
    copy = _round_trip(arch)
    assert copy == arch
    # The PR-8 register-file fields survive explicitly, not by default.
    assert copy.simd_doubles == arch.simd_doubles
    assert copy.vector_registers == arch.vector_registers
    assert copy.micro_kernel == arch.micro_kernel


def test_micro_kernel_shape_round_trips():
    shape = MicroKernelShape(32, 128, 16)
    assert _round_trip(shape) == shape


def test_options_with_kernel_backend_round_trip():
    options = CompilerOptions.full().with_(kernel_backend="parametric")
    copy = _round_trip(options)
    assert copy == options
    assert copy.kernel_backend == "parametric"


def test_pre_refactor_artifact_without_arch_tag_defaults_to_sw26010pro():
    """Artifacts compiled before arch became a degree of freedom carry no
    ``arch`` key; they were all SW26010Pro compiles, so loading must
    default there — not crash, not guess."""
    program = GemmCompiler(SW26010PRO, CompilerOptions.full()).compile(
        GemmSpec()
    )
    data = json.loads(json.dumps(program.to_dict()))
    del data["arch"]
    legacy = CompiledProgram.from_dict(data)
    assert legacy.arch == SW26010PRO
    assert legacy.decomposition.arch == SW26010PRO
    assert legacy.tree_dump() == program.tree_dump()


def test_pre_refactor_artifact_with_null_arch_tag_also_defaults():
    program = GemmCompiler(SW26010PRO, CompilerOptions.full()).compile(
        GemmSpec()
    )
    data = json.loads(json.dumps(program.to_dict()))
    data["arch"] = None
    legacy = CompiledProgram.from_dict(data)
    assert legacy.arch == SW26010PRO


def test_parametric_backend_program_round_trips_and_executes(rng):
    """A compile steered to the generated kernel reloads and runs
    numerically identical to the original."""
    options = CompilerOptions.full().with_(kernel_backend="parametric")
    original = GemmCompiler(TOY_ARCH, options).compile(GemmSpec())
    copy = CompiledProgram.from_dict(
        json.loads(json.dumps(original.to_dict()))
    )
    assert copy.options.kernel_backend == "parametric"
    assert copy.cpe_source() == original.cpe_source()
    assert "gen_dgemm_" in copy.cpe_source()
    M, N, K = copy.padded_shape(1, 1, 1)
    A = rng.random((M, K))
    B = rng.random((K, N))
    C = np.zeros((M, N))
    out_copy, _ = run_gemm(copy, A, B, C.copy(), beta=0.0)
    out_orig, _ = run_gemm(original, A, B, C.copy(), beta=0.0)
    np.testing.assert_array_equal(out_copy, out_orig)
    np.testing.assert_allclose(out_copy, A @ B, rtol=1e-12)
