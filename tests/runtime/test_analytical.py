"""Closed-form model vs event simulation."""

import pytest

from repro.core.options import CompilerOptions
from repro.runtime.analytical import predict, predict_gflops
from repro.runtime.simulator import PerformanceSimulator
from repro.sunway.arch import SW26010PRO


@pytest.fixture(scope="module")
def sim():
    return PerformanceSimulator(SW26010PRO)


@pytest.mark.parametrize(
    "options,tolerance",
    [
        (CompilerOptions.baseline(), 0.30),
        (CompilerOptions.with_asm(), 0.30),
        (CompilerOptions.with_rma(), 0.30),
        (CompilerOptions.full(), 0.30),
    ],
    ids=["baseline", "asm", "rma", "full"],
)
def test_model_tracks_simulation(sim, options, tolerance):
    """The closed-form prediction stays within tolerance of the event
    simulation for every variant — a mutual regression guard."""
    for K in (1024, 4096):
        simulated = sim.simulate(1024, 1024, K, options).gflops
        predicted = predict_gflops(1024, 1024, K, options)
        assert predicted == pytest.approx(simulated, rel=tolerance), (
            f"K={K}: model {predicted:.1f} vs sim {simulated:.1f}"
        )


def test_phase_breakdown_fields():
    b = predict(1024, 1024, 4096, CompilerOptions.full())
    assert b.kernel > 0
    assert b.total >= b.kernel
    assert b.spawn == pytest.approx(SW26010PRO.spawn_us * 1e-6)


def test_hiding_reduces_exposed_dma():
    hidden = predict(1024, 1024, 4096, CompilerOptions.full())
    exposed = predict(1024, 1024, 4096, CompilerOptions.with_rma())
    assert hidden.dma_exposed < exposed.dma_exposed
    assert hidden.rma_exposed < exposed.rma_exposed


def test_rma_reduces_dma_traffic_8x():
    with_rma = predict(1024, 1024, 4096, CompilerOptions.with_rma())
    without = predict(1024, 1024, 4096, CompilerOptions.with_asm())
    ratio = without.dma_exposed / max(with_rma.dma_exposed, 1e-12)
    assert ratio > 4  # nominal 8×, minus modelling slack


def test_kernel_time_dominates_at_large_k():
    b = predict(512, 512, 16384, CompilerOptions.full())
    assert b.kernel > 0.5 * b.total


def test_batch_scales_linearly():
    single = predict(512, 512, 1024, CompilerOptions.full(), batch=1)
    batched = predict(512, 512, 1024, CompilerOptions.full(), batch=4)
    assert batched.kernel == pytest.approx(4 * single.kernel)
