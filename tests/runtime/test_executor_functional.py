"""Functional correctness of compiled programs on the simulated mesh.

These are the reproduction's most important tests: the entire compiler —
tiling, mesh binding, Eq. 1 DMA addressing, RMA broadcast ownership, the
two-level software pipeline, double buffering — must conspire to produce
exactly ``α·A·B + β·C`` when the generated program runs on the simulated
hardware.  A bug anywhere (wrong footprint, wrong parity, missing wait)
shows up as a numeric mismatch or a simulator discipline error.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.codegen.elementwise import get_elementwise
from repro.core import CompilerOptions, GemmCompiler, GemmSpec
from repro.runtime.executor import run_gemm
from repro.sunway.arch import TOY_ARCH

from tests.conftest import reference_gemm


def run_case(program, rng, M, N, K, alpha=1.0, beta=1.0, batch=None, **kw):
    if batch:
        A = rng.standard_normal((batch, M, K))
        B = rng.standard_normal((batch, K, N))
        C0 = rng.standard_normal((batch, M, N))
    else:
        A = rng.standard_normal((M, K))
        B = rng.standard_normal((K, N))
        C0 = rng.standard_normal((M, N))
    C, report = run_gemm(program, A, B, C0.copy(), alpha=alpha, beta=beta, **kw)
    return A, B, C0, C, report


@pytest.mark.parametrize("variant", ["baseline", "asm", "rma", "full"])
def test_all_variants_numerically_exact(toy_programs, rng, variant):
    program = toy_programs[variant]
    A, B, C0, C, _ = run_case(program, rng, 32, 48, 24, alpha=1.5, beta=0.5)
    assert np.allclose(C, reference_gemm(A, B, C0, 1.5, 0.5), atol=1e-12)


@pytest.mark.parametrize(
    "alpha,beta",
    [(1.0, 1.0), (1.0, 0.0), (0.0, 1.0), (2.5, -0.75), (-1.0, 3.0)],
)
def test_alpha_beta_combinations(toy_full_program, rng, alpha, beta):
    A, B, C0, C, _ = run_case(toy_full_program, rng, 16, 16, 8,
                              alpha=alpha, beta=beta)
    assert np.allclose(C, reference_gemm(A, B, C0, alpha, beta), atol=1e-12)


def test_single_chunk_exact(toy_full_program, rng):
    A, B, C0, C, report = run_case(toy_full_program, rng, 16, 16, 8)
    assert np.allclose(C, reference_gemm(A, B, C0), atol=1e-12)
    # One chunk = mesh_m x mesh_n x k_step on the toy arch.
    assert report.stats["kernel_calls"] == 4 * 2  # 4 CPEs x 2 inner slices


def test_multi_chunk_grid(toy_full_program, rng):
    A, B, C0, C, _ = run_case(toy_full_program, rng, 48, 64, 40)
    assert np.allclose(C, reference_gemm(A, B, C0), atol=1e-12)


def test_padding_of_awkward_shapes(toy_full_program, rng):
    for shape in [(1, 1, 1), (17, 19, 13), (16, 16, 9), (15, 33, 8)]:
        A, B, C0, C, report = run_case(toy_full_program, rng, *shape)
        assert np.allclose(C, reference_gemm(A, B, C0), atol=1e-12), shape
        assert report.padded_flops >= report.useful_flops


def test_rectangular_extremes(toy_full_program, rng):
    A, B, C0, C, _ = run_case(toy_full_program, rng, 16, 80, 8)
    assert np.allclose(C, reference_gemm(A, B, C0), atol=1e-12)
    A, B, C0, C, _ = run_case(toy_full_program, rng, 80, 16, 64)
    assert np.allclose(C, reference_gemm(A, B, C0), atol=1e-12)


def test_batched_execution(rng):
    spec = GemmSpec(batch_param="BS")
    program = GemmCompiler(TOY_ARCH, CompilerOptions.full().with_(batch=True)).compile(spec)
    A, B, C0, C, report = run_case(program, rng, 16, 32, 16, batch=4)
    assert np.allclose(C, reference_gemm(A, B, C0), atol=1e-12)
    # The mesh is spawned exactly once for the whole batch (§8.3).
    assert report.stats["spawns"] == 1


def test_prologue_fusion_numerics(rng):
    spec = GemmSpec(prologue_func="quant")
    program = GemmCompiler(
        TOY_ARCH, CompilerOptions.full().with_(fusion="prologue")
    ).compile(spec)
    A, B, C0, C, _ = run_case(program, rng, 32, 32, 16)
    quant = get_elementwise("quant").numpy_fn
    assert np.allclose(C, quant(A) @ B + C0, atol=1e-12)


def test_prologue_does_not_modify_main_memory_A(rng):
    """Fusion recomputes the quantisation in SPM; the A matrix in main
    memory must stay untouched (the xMath baseline, by contrast, rewrites
    it on the MPE)."""
    spec = GemmSpec(prologue_func="quant")
    program = GemmCompiler(
        TOY_ARCH, CompilerOptions.full().with_(fusion="prologue")
    ).compile(spec)
    A = rng.standard_normal((16, 8))
    A_copy = A.copy()
    B = rng.standard_normal((8, 16))
    run_gemm(program, A, B, np.zeros((16, 16)), beta=0.0)
    assert (A == A_copy).all()


@pytest.mark.parametrize("func", ["relu", "sigmoid", "tanh"])
def test_epilogue_fusion_numerics(rng, func):
    spec = GemmSpec(epilogue_func=func)
    program = GemmCompiler(
        TOY_ARCH, CompilerOptions.full().with_(fusion="epilogue", epilogue_func=func)
    ).compile(spec)
    A, B, C0, C, _ = run_case(program, rng, 16, 16, 16, alpha=0.1)
    fn = get_elementwise(func).numpy_fn
    assert np.allclose(C, fn(0.1 * A @ B + C0), atol=1e-12)


def test_scalar_naive_interpreter_agrees_with_vectorised(toy_programs, rng):
    """The scalar Python interpretation of the --no-use-asm body is the
    oracle for the vectorised fast path."""
    program = toy_programs["baseline"]
    A = rng.standard_normal((16, 8))
    B = rng.standard_normal((8, 16))
    C_vec, _ = run_gemm(program, A, B, np.zeros((16, 16)), beta=0.0)
    C_scalar, _ = run_gemm(
        program, A, B, np.zeros((16, 16)), beta=0.0, scalar_naive=True
    )
    assert np.allclose(C_vec, C_scalar, atol=1e-12)


def test_timing_only_mode_runs_without_data(toy_full_program):
    from repro.runtime.executor import Executor
    from repro.sunway.mesh import Cluster

    cluster = Cluster(TOY_ARCH)
    cluster.memory.alloc("A", (16, 16))
    cluster.memory.alloc("B", (16, 16))
    cluster.memory.alloc("C", (16, 16))
    executor = Executor(toy_full_program, cluster, move_data=False)
    report = executor.run({"M": 16, "N": 16, "K": 16})
    assert report.elapsed_seconds > 0


def test_variant_timings_are_ordered(toy_programs, rng):
    """The fully optimised variant must be the fastest.

    At toy scale the 256-byte messages are startup-dominated, so the
    intermediate variants do not separate (RMA's barriers can even cost
    more than they save on a 2×2 mesh); the full Fig. 13 staircase is
    asserted at SW26010Pro scale in tests/integration/test_paper_claims.py."""
    times = {}
    for name, program in toy_programs.items():
        A = rng.standard_normal((32, 32))
        B = rng.standard_normal((32, 32))
        _, report = run_gemm(program, A, B, np.zeros((32, 32)), beta=0.0)
        times[name] = report.elapsed_seconds
    slowest_others = min(t for n, t in times.items() if n != "full")
    assert times["full"] < slowest_others


def test_report_gflops_accounting(toy_full_program, rng):
    A, B, C0, C, report = run_case(toy_full_program, rng, 16, 16, 8)
    expected = 2.0 * 16 * 16 * 8
    assert report.useful_flops == expected
    assert report.gflops == pytest.approx(
        expected / report.elapsed_seconds / 1e9
    )


def test_shape_mismatch_rejected(toy_full_program, rng):
    A = rng.standard_normal((16, 8))
    B = rng.standard_normal((9, 16))  # K mismatch
    with pytest.raises(Exception, match="mismatch"):
        run_gemm(toy_full_program, A, B, None)


def test_direct_executor_requires_padded_shape(toy_full_program):
    from repro.errors import ExecutionError
    from repro.runtime.executor import Executor

    executor = Executor(toy_full_program)
    with pytest.raises(ExecutionError, match="zero-pads"):
        executor.run({"M": 10, "N": 16, "K": 8})


@settings(max_examples=12, deadline=None)
@given(
    M=st.integers(1, 40),
    N=st.integers(1, 40),
    K=st.integers(1, 24),
    alpha=st.floats(-2, 2, allow_nan=False),
    beta=st.floats(-2, 2, allow_nan=False),
)
def test_prop_random_shapes_and_scalars(toy_full_program, M, N, K, alpha, beta):
    rng = np.random.default_rng(M * 10_007 + N * 101 + K)
    A = rng.standard_normal((M, K))
    B = rng.standard_normal((K, N))
    C0 = rng.standard_normal((M, N))
    C, _ = run_gemm(toy_full_program, A, B, C0.copy(), alpha=alpha, beta=beta)
    assert np.allclose(C, reference_gemm(A, B, C0, alpha, beta), atol=1e-10)
