"""CompiledProgram container utilities."""

import pytest

from repro.core import CompilerOptions, GemmCompiler, GemmSpec
from repro.sunway.arch import SW26010PRO, TOY_ARCH


@pytest.fixture(scope="module")
def program():
    return GemmCompiler(SW26010PRO, CompilerOptions.full()).compile(GemmSpec())


def test_padded_shape_rounds_up(program):
    assert program.padded_shape(1, 1, 1) == (512, 512, 256)
    assert program.padded_shape(512, 512, 256) == (512, 512, 256)
    assert program.padded_shape(513, 512, 256) == (1024, 512, 256)
    assert program.padded_shape(512, 512, 257) == (512, 512, 512)


def test_requires_padding(program):
    assert not program.requires_padding(1024, 1536, 768)
    assert program.requires_padding(1000, 1536, 768)


def test_tree_dump_nonempty(program):
    dump = program.tree_dump()
    assert dump.startswith("DOMAIN")
    assert "EXTENSION" in dump


def test_sources_render(program):
    assert "swgemm_cpe" in program.cpe_source()
    assert "int main" in program.mpe_source()


def test_describe_fields(program):
    info = program.describe()
    assert info["variant"] == "+hiding"
    assert info["spm_bytes"] == 160 * 1024
    assert info["codegen_seconds"] >= 0
    assert not info["batched"]


def test_spm_budget_by_arch():
    toy = GemmCompiler(TOY_ARCH, CompilerOptions.full()).compile(GemmSpec())
    assert toy.spm_bytes() == 2560


def test_cpe_program_metadata(program):
    cpe = program.cpe_program
    assert cpe.kernel_name == "asm_dgemm_64x64x32"
    assert cpe.spm_bytes() == 160 * 1024
    names = [b.name for b in cpe.buffers]
    assert names[0] == "local_C"
    for decl in cpe.buffers:
        assert decl.nbytes == decl.elements * 8
