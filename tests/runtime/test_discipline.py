"""The simulator as a verifier: broken schedules must fail loudly.

These tests mutate correct programs into incorrect ones (dropping waits,
oversizing buffers, desynchronising the mesh) and assert that the
simulator's discipline checks catch each class of bug — the property that
makes the functional tests meaningful evidence for the latency-hiding
pass's correctness.
"""

import copy

import numpy as np
import pytest

from repro.core import CompilerOptions, GemmCompiler, GemmSpec
from repro.errors import (
    ExecutionError,
    SPMOverflowError,
    SynchronizationError,
)
from repro.poly.astnodes import (
    Block,
    BufferDecl,
    CommStmt,
    ForLoop,
    IfStmt,
    KernelCall,
    Stmt,
)
from repro.runtime.executor import Executor, run_gemm
from repro.sunway.arch import TOY_ARCH
from repro.sunway.mesh import Cluster


def fresh_program(options=None):
    return GemmCompiler(
        TOY_ARCH, options or CompilerOptions.full()
    ).compile(GemmSpec())


def strip_statements(stmt: Stmt, predicate) -> None:
    """Remove matching statements in place throughout the AST."""
    if isinstance(stmt, Block):
        stmt.body = [s for s in stmt.body if not predicate(s)]
        for s in stmt.body:
            strip_statements(s, predicate)
    elif isinstance(stmt, ForLoop):
        strip_statements(stmt.body, predicate)
    elif isinstance(stmt, IfStmt):
        strip_statements(stmt.then, predicate)
        if stmt.els is not None:
            strip_statements(stmt.els, predicate)


def run(program, M=16, N=16, K=16):
    rng = np.random.default_rng(0)
    A = rng.standard_normal((M, K))
    B = rng.standard_normal((K, N))
    return run_gemm(program, A, B, np.zeros((M, N)), beta=0.0)


def test_missing_dma_wait_detected():
    program = fresh_program(CompilerOptions.with_rma())
    strip_statements(
        program.cpe_program.body,
        lambda s: isinstance(s, CommStmt)
        and s.kind == "dma_wait_value"
        and s.args.get("reply") == "get_replyA",
    )
    with pytest.raises(SynchronizationError, match="in flight"):
        run(program)


def test_missing_rma_wait_detected():
    program = fresh_program(CompilerOptions.with_rma())
    strip_statements(
        program.cpe_program.body,
        lambda s: isinstance(s, CommStmt)
        and s.kind == "rma_wait_value"
        and "replyr" in str(s.args.get("reply")),
    )
    with pytest.raises(SynchronizationError):
        run(program)


def test_missing_synch_detected():
    program = fresh_program(CompilerOptions.with_rma())
    strip_statements(
        program.cpe_program.body,
        lambda s: isinstance(s, CommStmt) and s.kind == "synch",
    )
    with pytest.raises((SynchronizationError, ExecutionError)):
        run(program)


def test_desynchronised_mesh_detected():
    """If only some CPEs execute the synch(), the others launch their
    broadcasts unarmed and the engine rejects the program — the mesh can
    never silently run with mismatched synchronisation."""
    program = fresh_program(CompilerOptions.with_rma())

    class Broken(Stmt):
        pass

    # Wrap every synch in a condition only some CPEs satisfy.
    def poison(stmt):
        if isinstance(stmt, Block):
            new = []
            for s in stmt.body:
                if isinstance(s, CommStmt) and s.kind == "synch":
                    from repro.poly.astnodes import BinExpr, IntLit, VarRef

                    new.append(
                        IfStmt(
                            BinExpr("==", VarRef("Rid"), IntLit(0)),
                            Block([s]),
                        )
                    )
                else:
                    poison(s)
                    new.append(s)
            stmt.body = new
        elif isinstance(stmt, ForLoop):
            poison(stmt.body)
        elif isinstance(stmt, IfStmt):
            poison(stmt.then)

    poison(program.cpe_program.body)
    with pytest.raises((SynchronizationError, ExecutionError)):
        run(program)


def test_spm_overflow_detected_at_allocation():
    program = fresh_program()
    program.cpe_program.buffers.append(
        BufferDecl("way_too_big", (4, 512, 512))
    )
    with pytest.raises(SPMOverflowError):
        run(program)


def test_kernel_shape_contract_enforced():
    program = fresh_program()
    # Lie about the C buffer's shape: same element count, wrong geometry,
    # so the DMA succeeds but the micro kernel must refuse its operand.
    for decl in program.cpe_program.buffers:
        if decl.name == "local_C":
            program.cpe_program.buffers.remove(decl)
            break
    program.cpe_program.buffers.append(BufferDecl("local_C", (16, 4)))
    with pytest.raises(ExecutionError, match="contract"):
        run(program)


def test_deadlock_reports_blocking_reasons():
    program = fresh_program(CompilerOptions.with_rma())
    strip_statements(
        program.cpe_program.body,
        lambda s: isinstance(s, CommStmt) and s.kind == "rma_row_ibcast",
    )
    with pytest.raises(ExecutionError) as excinfo:
        run(program)
    assert "rma_wait_value" in str(excinfo.value) or "deadlock" in str(excinfo.value)
