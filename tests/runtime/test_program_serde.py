"""CompiledProgram serialization round trips.

The compilation service's disk tier stores ``CompiledProgram.to_dict()``
as JSON; these tests lock the reload down to observable equality — the
schedule-tree dump (against the repo golden), the tile plan, the SPM
buffer declarations, the rendered sources, and a numeric execution on
the toy mesh.
"""

import json
from pathlib import Path

import numpy as np
import pytest

from repro.core import CompilerOptions, GemmCompiler, GemmSpec
from repro.runtime import serde
from repro.runtime.executor import run_gemm
from repro.runtime.program import CompiledProgram
from repro.sunway.arch import SW26010PRO, TOY_ARCH

GOLDEN = Path(__file__).parent.parent / "golden"


@pytest.fixture(scope="module")
def program():
    return GemmCompiler(SW26010PRO, CompilerOptions.full()).compile(GemmSpec())


@pytest.fixture(scope="module")
def reloaded(program):
    payload = json.dumps(program.to_dict())  # force a real JSON round trip
    return CompiledProgram.from_dict(json.loads(payload))


def test_round_trip_metadata(program, reloaded):
    assert reloaded.spec == program.spec
    assert reloaded.options == program.options
    assert reloaded.arch == program.arch
    assert reloaded.plan == program.plan
    assert reloaded.codegen_seconds == program.codegen_seconds


def test_round_trip_tree_dump(program, reloaded):
    assert reloaded.tree_dump() == program.tree_dump()


def test_reloaded_tree_matches_golden(reloaded):
    assert reloaded.tree_dump() + "\n" == (
        GOLDEN / "schedule_tree_full.txt"
    ).read_text()


def test_round_trip_buffer_decls(program, reloaded):
    original = program.cpe_program.buffers
    restored = reloaded.cpe_program.buffers
    assert [b.name for b in restored] == [b.name for b in original]
    assert [b.nbytes for b in restored] == [b.nbytes for b in original]
    assert restored == original
    assert reloaded.spm_bytes() == program.spm_bytes()


def test_round_trip_sources(program, reloaded):
    assert reloaded.cpe_source() == program.cpe_source()
    assert reloaded.mpe_source() == program.mpe_source()


def test_round_trip_band_aliasing(reloaded):
    """`Decomposition.bands` must alias nodes *inside* the reloaded tree,
    not hold detached copies — the lowering mutates through this dict."""
    tree_ids = {id(node) for node in reloaded.decomposition.root.walk()}
    for name, node in reloaded.decomposition.bands.items():
        assert id(node) in tree_ids, name


def test_round_trip_batched_and_fused_variants():
    cases = [
        (GemmSpec(batch_param="BS"), CompilerOptions.full().with_(batch=True)),
        (
            GemmSpec(epilogue_func="sigmoid"),
            CompilerOptions.full().with_(
                fusion="epilogue", epilogue_func="sigmoid"
            ),
        ),
    ]
    for spec, options in cases:
        original = GemmCompiler(TOY_ARCH, options).compile(spec)
        copy = CompiledProgram.from_dict(
            json.loads(json.dumps(original.to_dict()))
        )
        assert copy.tree_dump() == original.tree_dump()
        assert copy.cpe_source() == original.cpe_source()


def test_reloaded_program_executes(rng):
    """A program reloaded from its artifact runs on the toy mesh and
    matches the original numerically."""
    original = GemmCompiler(TOY_ARCH, CompilerOptions.full()).compile(
        GemmSpec()
    )
    copy = CompiledProgram.from_dict(original.to_dict())
    M, N, K = copy.padded_shape(1, 1, 1)
    A = rng.random((M, K))
    B = rng.random((K, N))
    C = np.zeros((M, N))
    out_orig, _ = run_gemm(original, A, B, C.copy(), beta=0.0)
    out_copy, _ = run_gemm(copy, A, B, C.copy(), beta=0.0)
    np.testing.assert_allclose(out_copy, A @ B, rtol=1e-12)
    np.testing.assert_array_equal(out_copy, out_orig)


def test_from_dict_rejects_wrong_serde_version(program):
    data = program.to_dict()
    data["serde_version"] = serde.SERDE_VERSION + 1
    with pytest.raises(serde.SerializationError, match="serde version"):
        CompiledProgram.from_dict(data)


def test_encode_rejects_unregistered_types():
    class NotRegistered:
        pass

    with pytest.raises(serde.SerializationError):
        serde.encode(NotRegistered())


def test_decode_rejects_unknown_tag():
    with pytest.raises(serde.SerializationError):
        serde.decode({"$": "no-such-tag", "v": {}})


def test_round_trip_pass_stats(program, reloaded):
    assert reloaded.pass_stats == program.pass_stats
    assert [s.name for s in reloaded.pass_stats] == [
        s.name for s in program.pass_stats
    ]
    assert any(s.diagnostics for s in reloaded.pass_stats)
    assert reloaded.codegen_seconds == sum(
        s.seconds for s in reloaded.pass_stats
    )


def test_round_trip_decomposition_arch(program, reloaded):
    assert reloaded.decomposition.arch == program.arch


def test_legacy_artifact_without_pass_stats_loads(program):
    """Pre-refactor artifacts predate ``pass_stats`` and the
    ``Decomposition.arch`` field; they must load (with empty stats), not
    quarantine."""
    data = json.loads(json.dumps(program.to_dict()))
    del data["pass_stats"]
    dec_payload = data["decomposition"]["v"]
    assert "arch" in dec_payload
    del dec_payload["arch"]
    legacy = CompiledProgram.from_dict(data)
    assert legacy.pass_stats == ()
    # from_dict restamps the program's arch onto the decomposition.
    assert legacy.decomposition.arch == program.arch
    assert legacy.tree_dump() == program.tree_dump()
    assert legacy.cpe_source() == program.cpe_source()
