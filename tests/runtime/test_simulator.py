"""The timed performance simulator and its chunk extrapolation."""

import pytest

from repro.core.options import CompilerOptions
from repro.errors import ConfigurationError
from repro.runtime.simulator import PerformanceSimulator
from repro.sunway.arch import SW26010PRO


@pytest.fixture(scope="module")
def sim():
    return PerformanceSimulator(SW26010PRO)


def test_chunk_cache_reused(sim):
    options = CompilerOptions.full()
    first = sim.chunk_seconds(1024, options)
    second = sim.chunk_seconds(1024, options)
    assert first == second
    assert (options, sim._default_spec(options), 1024) in sim._chunk_cache


def test_extrapolation_over_chunks(sim):
    """Gflops are chunk-count invariant up to spawn amortisation: a
    2048×2048 run is 16 chunks of the 512×512 pipeline."""
    options = CompilerOptions.full()
    small = sim.simulate(512, 512, 1024, options)
    large = sim.simulate(2048, 2048, 1024, options)
    assert large.n_chunks == 16 * small.n_chunks
    assert large.seconds == pytest.approx(
        SW26010PRO.spawn_us * 1e-6 + 16 * small.chunk_seconds, rel=1e-9
    )
    assert large.gflops >= small.gflops  # spawn amortises


def test_efficiency_grows_with_k(sim):
    """⌈K/256⌉−1 overlaps: the DMA hiding benefit grows with K (§8.1)."""
    options = CompilerOptions.full()
    g1 = sim.simulate(512, 512, 512, options).gflops
    g2 = sim.simulate(512, 512, 2048, options).gflops
    g3 = sim.simulate(512, 512, 8192, options).gflops
    assert g1 < g2 < g3


def test_breakdown_ordering(sim):
    results = sim.breakdown(1024, 1024, 2048)
    assert (
        results["dma-only"].gflops
        < results["+asm"].gflops
        < results["+rma"].gflops
        < results["+hiding"].gflops
    )


def test_batched_amortises_spawn(sim):
    options = CompilerOptions.full().with_(batch=True)
    single = sim.simulate(512, 512, 1024, options, batch=1)
    batched = sim.simulate(512, 512, 1024, options, batch=8)
    # One spawn either way; eight times the work.
    assert batched.seconds == pytest.approx(
        single.seconds + 7 * single.n_chunks * single.chunk_seconds, rel=1e-9
    )
    assert batched.gflops > single.gflops


def test_divisibility_enforced(sim):
    with pytest.raises(ConfigurationError, match="multiple"):
        sim.simulate(500, 512, 1024)
    with pytest.raises(ConfigurationError, match="multiple"):
        sim.simulate(512, 512, 1000)


def test_result_fields(sim):
    perf = sim.simulate(512, 512, 1024)
    assert perf.variant == "+hiding"
    assert perf.peak_fraction == pytest.approx(
        perf.gflops / SW26010PRO.peak_gflops
    )
    assert "512x512x1024" in str(perf)


def test_fusion_variants_simulate(sim):
    pro = sim.simulate(512, 512, 1024, CompilerOptions.full().with_(fusion="prologue"))
    epi = sim.simulate(512, 512, 1024, CompilerOptions.full().with_(fusion="epilogue"))
    plain = sim.simulate(512, 512, 1024, CompilerOptions.full())
    assert pro.gflops < plain.gflops  # recomputation costs something
    assert abs(epi.gflops - plain.gflops) / plain.gflops < 0.05
    assert "prologue" in pro.variant
