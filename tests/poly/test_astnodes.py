"""AST node utilities and expression evaluation."""

import pytest

from repro.errors import ExecutionError
from repro.poly.affine import aff_var
from repro.poly.astnodes import (
    AddrOf,
    AffRef,
    ArrayRef,
    BinExpr,
    Block,
    BufferDecl,
    CommentStmt,
    DoubleLit,
    ForLoop,
    IfStmt,
    IntLit,
    ReplyDecl,
    VarRef,
    walk_stmts,
)


def test_literals_evaluate():
    assert IntLit(3).evaluate({}) == 3
    assert DoubleLit(2.5).evaluate({}) == 2.5


def test_varref():
    assert VarRef("x").evaluate({"x": 9}) == 9
    with pytest.raises(ExecutionError):
        VarRef("missing").evaluate({})


def test_affref_filters_non_int_env():
    expr = AffRef(aff_var("ko") + 1)
    # alpha is a float in the env; the affine evaluation must ignore it.
    assert expr.evaluate({"ko": 3, "alpha": 1.5}) == 4


@pytest.mark.parametrize(
    "op,a,b,expected",
    [
        ("+", 2, 3, 5), ("-", 2, 3, -1), ("*", 2, 3, 6), ("/", 7, 2, 3),
        ("%", 7, 2, 1), ("<", 1, 2, True), ("<=", 2, 2, True),
        (">", 1, 2, False), (">=", 2, 2, True), ("==", 2, 2, True),
        ("!=", 2, 2, False), ("&&", 1, 0, False), ("||", 0, 1, True),
        ("min", 4, 7, 4), ("max", 4, 7, 7),
    ],
)
def test_binexpr_operators(op, a, b, expected):
    assert BinExpr(op, IntLit(a), IntLit(b)).evaluate({}) == expected


def test_binexpr_unknown_operator():
    with pytest.raises(ExecutionError):
        BinExpr("**", IntLit(2), IntLit(3)).evaluate({})


def test_arrayref_and_addrof_not_inline_evaluable():
    ref = ArrayRef("A", (IntLit(0),))
    with pytest.raises(ExecutionError):
        ref.evaluate({})
    with pytest.raises(ExecutionError):
        AddrOf(ref).evaluate({})


def test_walk_stmts_traverses_all_paths():
    inner = CommentStmt("inner")
    loop = ForLoop("i", IntLit(0), IntLit(4), Block([inner]))
    cond = IfStmt(IntLit(1), Block([CommentStmt("then")]),
                  Block([CommentStmt("else")]))
    block = Block([loop, cond])
    texts = [s.text for s in walk_stmts(block) if isinstance(s, CommentStmt)]
    assert texts == ["inner", "then", "else"]


def test_buffer_decl_sizes():
    double = BufferDecl("x", (2, 8, 4))
    assert double.elements == 64
    assert double.nbytes == 512
    single = BufferDecl("y", (8, 4), dtype="float")
    assert single.nbytes == 128


def test_reply_decl_defaults():
    assert ReplyDecl("r").count == 1
