"""Quasi-affine expression arithmetic."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import NonAffineError
from repro.poly.affine import AffExpr, FloorDiv, aff_const, aff_sum, aff_var


def test_var_and_const_construction():
    i = aff_var("i")
    assert i.is_single_var()
    assert i.single_var() == "i"
    assert aff_const(7).constant_value() == 7
    assert not aff_const(7).is_single_var()


def test_addition_combines_like_terms():
    i, j = aff_var("i"), aff_var("j")
    expr = i + j + i * 2 + 5
    assert expr.coefficient("i") == 3
    assert expr.coefficient("j") == 1
    assert expr.const == 5


def test_zero_coefficients_are_dropped():
    i = aff_var("i")
    expr = i - i
    assert expr.is_constant()
    assert expr == aff_const(0)
    assert not expr.coeffs


def test_subtraction_and_negation():
    i, j = aff_var("i"), aff_var("j")
    assert (i - j).evaluate({"i": 10, "j": 4}) == 6
    assert (-i).evaluate({"i": 3}) == -3
    assert (5 - i).evaluate({"i": 2}) == 3


def test_scalar_multiplication():
    i = aff_var("i")
    assert (i * 4).coefficient("i") == 4
    assert (4 * i) == (i * 4)
    with pytest.raises(NonAffineError):
        _ = i * aff_var("j")


def test_multiplication_by_constant_expression_is_allowed():
    i = aff_var("i")
    assert (i * aff_const(3)) == i * 3
    assert (aff_const(3) * i) == i * 3


def test_floordiv_basics():
    k = aff_var("k")
    e = k.floordiv(32)
    assert e.evaluate({"k": 95}) == 2
    assert e.evaluate({"k": 0}) == 0
    assert (k // 32) == e


def test_floordiv_by_one_is_identity():
    k = aff_var("k")
    assert k.floordiv(1) is k


def test_floordiv_distributes_over_exact_multiples():
    # floor((256*ko + r)/256) = ko + floor(r/256)
    ko = aff_var("ko")
    expr = (ko * 256).floordiv(256)
    assert expr == ko


def test_floordiv_rejects_bad_divisors():
    with pytest.raises(NonAffineError):
        aff_var("i").floordiv(0)
    with pytest.raises(NonAffineError):
        aff_var("i").floordiv(-4)


def test_mod_identity():
    k = aff_var("k")
    expr = k.mod(32)
    for value in (0, 1, 31, 32, 33, 255, 256, 1000):
        assert expr.evaluate({"k": value}) == value % 32


def test_stripmine_expression_matches_fig6():
    # floor(k/32) - 8*floor(k/256) enumerates the slice within a chunk.
    k = aff_var("k")
    expr = k.floordiv(32) - k.floordiv(256) * 8
    for value in range(0, 1024, 17):
        assert expr.evaluate({"k": value}) == (value // 32) % 8


def test_substitute_simple():
    i = aff_var("i")
    expr = i * 3 + 1
    assert expr.substitute({"i": aff_var("x") + 2}).evaluate({"x": 5}) == 22


def test_substitute_inside_floordiv():
    k = aff_var("k")
    expr = k.floordiv(32)
    replaced = expr.substitute({"k": aff_var("t") * 32})
    assert replaced == aff_var("t")


def test_rename():
    expr = aff_var("i") + aff_var("j") * 2
    renamed = expr.rename({"i": "x"})
    assert renamed.coefficient("x") == 1
    assert renamed.coefficient("j") == 2


def test_evaluate_unbound_raises():
    with pytest.raises(NonAffineError):
        aff_var("i").evaluate({})


def test_variables_include_floordiv_args():
    k = aff_var("k")
    expr = (k + aff_var("m")).floordiv(4) + aff_var("n")
    assert expr.variables() == frozenset({"k", "m", "n"})


def test_interval_linear_exact():
    i, j = aff_var("i"), aff_var("j")
    expr = 3 * i - 2 * j + 1
    lo, hi = expr.interval({"i": (0, 10), "j": (0, 5)})
    assert lo == 3 * 0 - 2 * 5 + 1
    assert hi == 3 * 10 - 2 * 0 + 1


def test_interval_floordiv():
    k = aff_var("k")
    lo, hi = k.floordiv(32).interval({"k": (0, 255)})
    assert (lo, hi) == (0, 7)


def test_interval_rejects_unbounded_var():
    with pytest.raises(NonAffineError):
        aff_var("i").interval({})


def test_aff_sum():
    total = aff_sum([aff_var("i"), 3, aff_var("i")])
    assert total.coefficient("i") == 2
    assert total.const == 3


def test_hash_and_equality_are_structural():
    a = aff_var("i") * 2 + 3
    b = aff_var("i") + aff_var("i") + 3
    assert a == b
    assert hash(a) == hash(b)
    assert a != aff_var("i") * 2


def test_floordiv_term_equality():
    t1 = FloorDiv(aff_var("k"), 32)
    t2 = FloorDiv(aff_var("k"), 32)
    assert t1 == t2 and hash(t1) == hash(t2)
    assert t1 != FloorDiv(aff_var("k"), 16)


# ---------------------------------------------------------------------------
# Property-based coverage
# ---------------------------------------------------------------------------

names = st.sampled_from(["i", "j", "k", "m"])
small_ints = st.integers(min_value=-50, max_value=50)


@st.composite
def affine_exprs(draw, depth=2):
    if depth == 0 or draw(st.booleans()):
        choice = draw(st.integers(0, 1))
        if choice == 0:
            return aff_const(draw(small_ints))
        return aff_var(draw(names)) * draw(st.integers(-4, 4))
    op = draw(st.integers(0, 3))
    lhs = draw(affine_exprs(depth=depth - 1))
    rhs = draw(affine_exprs(depth=depth - 1))
    if op == 0:
        return lhs + rhs
    if op == 1:
        return lhs - rhs
    if op == 2:
        return lhs.floordiv(draw(st.integers(1, 9)))
    return lhs.mod(draw(st.integers(1, 9)))


envs = st.fixed_dictionaries({n: st.integers(-100, 100) for n in ["i", "j", "k", "m"]})


@given(affine_exprs(), affine_exprs(), envs)
@settings(max_examples=150, deadline=None)
def test_prop_add_evaluates_pointwise(a, b, env):
    assert (a + b).evaluate(env) == a.evaluate(env) + b.evaluate(env)


@given(affine_exprs(), st.integers(1, 17), envs)
@settings(max_examples=150, deadline=None)
def test_prop_floordiv_matches_python(a, d, env):
    assert a.floordiv(d).evaluate(env) == a.evaluate(env) // d


@given(affine_exprs(), st.integers(1, 17), envs)
@settings(max_examples=150, deadline=None)
def test_prop_mod_matches_python(a, d, env):
    assert a.mod(d).evaluate(env) == a.evaluate(env) % d


@given(affine_exprs(), envs, envs)
@settings(max_examples=100, deadline=None)
def test_prop_interval_is_sound(a, lo_env, hi_env):
    box = {
        name: (min(lo_env[name], hi_env[name]), max(lo_env[name], hi_env[name]))
        for name in lo_env
    }
    lo, hi = a.interval(box)
    # Any point inside the box must evaluate within the interval.
    mid_env = {name: (b[0] + b[1]) // 2 for name, b in box.items()}
    for env in (
        {name: b[0] for name, b in box.items()},
        {name: b[1] for name, b in box.items()},
        mid_env,
    ):
        value = a.evaluate(env)
        assert lo <= value <= hi


@given(affine_exprs(), affine_exprs(), envs)
@settings(max_examples=100, deadline=None)
def test_prop_substitution_composes(a, b, env):
    composed = a.substitute({"i": b})
    inner = b.evaluate(env)
    direct = a.evaluate({**env, "i": inner})
    assert composed.evaluate(env) == direct
