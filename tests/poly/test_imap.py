"""Affine maps: application, composition, footprints."""

import pytest

from repro.errors import SpaceMismatchError
from repro.poly.affine import aff_var
from repro.poly.imap import AffineMap
from repro.poly.iset import box_set
from repro.poly.space import Space

S1 = Space("S1", ("i", "j", "k"))
A = Space("A", ("r", "c"))
i, j, k = aff_var("i"), aff_var("j"), aff_var("k")


def test_identity():
    m = AffineMap.identity(S1)
    assert m.apply({"i": 1, "j": 2, "k": 3}) == (1, 2, 3)


def test_access_map():
    m = AffineMap.access(S1, A, [i, k])
    assert m.apply({"i": 4, "j": 9, "k": 7}) == (4, 7)
    assert m.range_space == A


def test_range_rank_mismatch():
    with pytest.raises(SpaceMismatchError):
        AffineMap(S1, [i], A)


def test_apply_with_params():
    m = AffineMap(S1, [i + aff_var("M")])
    assert m.apply({"i": 1, "j": 0, "k": 0}, {"M": 10}) == (11,)


def test_compose():
    tile = AffineMap(S1, [i.floordiv(8), j.floordiv(8), k])
    # inner: point loops -> statement dims
    P = Space("P", ("it", "jt", "kp"))
    expand = AffineMap(
        P, [aff_var("it") * 8, aff_var("jt") * 8, aff_var("kp")], S1
    )
    composed = tile.compose(expand)
    assert composed.apply({"it": 3, "jt": 2, "kp": 5}) == (3, 2, 5)


def test_compose_rank_mismatch():
    other = AffineMap(Space("P", ("x",)), [aff_var("x")])
    with pytest.raises(SpaceMismatchError):
        AffineMap(S1, [i]).compose(other)


def test_substitute():
    m = AffineMap(S1, [i + k])
    m2 = m.substitute({"k": aff_var("k") * 2})
    assert m2.apply({"i": 1, "j": 0, "k": 3}) == (7,)


def test_box_image_is_footprint():
    # The DMA footprint computation of §4: A[i, k] over one CPE's tile.
    m = AffineMap.access(S1, A, [i, k])
    box = {"i": (64, 127), "j": (0, 63), "k": (32, 63)}
    image = m.box_image(box)
    assert image == [(64, 127), (32, 63)]
    assert m.image_extents(box) == [64, 32]


def test_box_image_with_params():
    m = AffineMap(S1, [i + aff_var("M")])
    image = m.box_image({"i": (0, 3), "j": (0, 0), "k": (0, 0)}, {"M": 100})
    assert image == [(100, 103)]


def test_injectivity_check():
    dom = box_set(S1, {"i": (0, 3), "j": (0, 3), "k": (0, 3)})
    assert AffineMap.identity(S1).is_injective_over(dom, {})
    proj = AffineMap(S1, [i, j])
    assert not proj.is_injective_over(dom, {})


def test_parameters():
    m = AffineMap(S1, [i + aff_var("M") * 2])
    assert m.parameters() == frozenset({"M"})
    assert m.variables() == frozenset({"i", "M"})


def test_structural_equality():
    m1 = AffineMap.access(S1, A, [i, k])
    m2 = AffineMap.access(S1, A, [i, k])
    assert m1 == m2 and hash(m1) == hash(m2)
    assert m1 != AffineMap.access(S1, A, [k, i])
