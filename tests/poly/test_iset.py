"""Integer sets: bounds, membership, enumeration."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import PolyhedralError, SpaceMismatchError
from repro.poly.affine import aff_const, aff_var
from repro.poly.iset import Constraint, IntegerSet, box_set, eq, ge, le, lt
from repro.poly.space import Space

S = Space("S", ("i", "j"))


def gemm_domain():
    space = Space("S1", ("i", "j", "k"))
    return box_set(
        space,
        {"i": (0, aff_var("M")), "j": (0, aff_var("N")), "k": (0, aff_var("K"))},
    )


def test_box_set_bounds():
    dom = gemm_domain()
    box = dom.bounding_box({"M": 4, "N": 6, "K": 2})
    assert box == {"i": (0, 3), "j": (0, 5), "k": (0, 1)}


def test_box_set_requires_all_dims():
    with pytest.raises(SpaceMismatchError):
        box_set(S, {"i": (0, 4)})


def test_contains():
    dom = gemm_domain()
    params = {"M": 4, "N": 4, "K": 4}
    assert dom.contains({"i": 0, "j": 3, "k": 3}, params)
    assert not dom.contains({"i": 4, "j": 0, "k": 0}, params)
    assert not dom.contains({"i": -1, "j": 0, "k": 0}, params)


def test_contains_requires_full_point():
    dom = gemm_domain()
    with pytest.raises(SpaceMismatchError):
        dom.contains({"i": 0}, {"M": 4, "N": 4, "K": 4})


def test_count_matches_volume():
    dom = gemm_domain()
    assert dom.count({"M": 3, "N": 2, "K": 5}) == 30


def test_points_enumerates_lexicographically_complete():
    dom = box_set(S, {"i": (0, 2), "j": (0, 3)})
    points = list(dom.points())
    assert len(points) == 6
    assert {"i": 1, "j": 2} in points


def test_equality_constraint():
    dom = box_set(S, {"i": (0, 4), "j": (0, 4)}).with_constraints(
        [eq(aff_var("i") - aff_var("j"))]
    )
    points = list(dom.points())
    assert all(p["i"] == p["j"] for p in points)
    assert len(points) == 4


def test_emptiness_detected():
    dom = box_set(S, {"i": (0, 4), "j": (0, 4)}).with_constraints(
        [ge(aff_var("i"), 10)]
    )
    assert dom.is_empty()


def test_nonempty():
    assert not gemm_domain().is_empty({"M": 1, "N": 1, "K": 1})


def test_empty_when_param_zero():
    assert gemm_domain().is_empty({"M": 0, "N": 4, "K": 4})


def test_unbounded_raises():
    dom = IntegerSet(S, [ge(aff_var("i"), 0)])
    with pytest.raises(PolyhedralError):
        dom.bounding_box()


def test_unbound_parameter_raises():
    dom = gemm_domain()
    with pytest.raises(PolyhedralError):
        dom.bounding_box({"M": 4})  # N, K missing


def test_intersect():
    a = box_set(S, {"i": (0, 10), "j": (0, 10)})
    b = IntegerSet(S, [le(aff_var("i"), 3)])
    inter = a.intersect(b)
    assert inter.bounding_box()["i"] == (0, 3)


def test_intersect_space_mismatch():
    a = box_set(S, {"i": (0, 10), "j": (0, 10)})
    b = IntegerSet(Space("T", ("x",)), [])
    with pytest.raises(SpaceMismatchError):
        a.intersect(b)


def test_substitute_params():
    dom = gemm_domain().substitute_params({"M": 4, "N": 4, "K": 4})
    assert dom.parameters() == frozenset()
    assert dom.count() == 64


def test_parameters_listed():
    assert gemm_domain().parameters() == frozenset({"M", "N", "K"})


def test_constraint_dedup():
    c = ge(aff_var("i"), 0)
    dom = IntegerSet(S, [c, c, lt(aff_var("i"), 5), ge(aff_var("j"), 0), lt(aff_var("j"), 5)])
    assert len(dom.constraints) == 4


def test_constraint_negation():
    c = ge(aff_var("i"), 3)
    (neg,) = c.negated()
    assert neg.holds({"i": 2})
    assert not neg.holds({"i": 3})


def test_floordiv_constraint_bounds():
    # { (i, j) : 0 <= i < 16, 0 <= j < 16, floor(i/8) == 1 }
    dom = box_set(S, {"i": (0, 16), "j": (0, 16)}).with_constraints(
        [eq(aff_var("i").floordiv(8), 1)]
    )
    points = list(dom.points())
    assert all(8 <= p["i"] < 16 for p in points)
    assert len(points) == 8 * 16


@given(
    st.integers(1, 6), st.integers(1, 6),
    st.integers(0, 5), st.integers(0, 5),
)
@settings(max_examples=60, deadline=None)
def test_prop_box_count(w, h, lo_i, lo_j):
    dom = box_set(S, {"i": (lo_i, lo_i + w), "j": (lo_j, lo_j + h)})
    assert dom.count() == w * h
    box = dom.bounding_box()
    assert box["i"] == (lo_i, lo_i + w - 1)
    assert box["j"] == (lo_j, lo_j + h - 1)


@given(st.integers(1, 8), st.integers(1, 8), st.integers(1, 4))
@settings(max_examples=60, deadline=None)
def test_prop_equality_slices(m, n, value):
    dom = box_set(S, {"i": (0, m), "j": (0, n)}).with_constraints(
        [eq(aff_var("i"), value)]
    )
    expected = n if value < m else 0
    assert dom.count() == expected
