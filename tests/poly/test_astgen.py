"""Schedule-tree → AST scanning, including peeling and guards."""

from typing import List

import pytest

from repro.errors import CodegenError
from repro.poly.affine import aff_const, aff_var
from repro.poly.astgen import AstGenerator, ScanContext
from repro.poly.astnodes import (
    Block,
    CommentStmt,
    ForLoop,
    IfStmt,
    Stmt,
    walk_stmts,
)
from repro.poly.iset import box_set, le
from repro.poly.schedule_tree import (
    BandMember,
    BandNode,
    DomainNode,
    ExtensionNode,
    ExtensionStmt,
    FilterNode,
    MarkNode,
    SequenceNode,
)
from repro.poly.space import Space
from repro.poly.transforms import peel_eq


class RecordingDelegate:
    """Lowers everything to comments carrying the statement name."""

    def lower_extension(self, stmt, ctx):
        return [CommentStmt(f"ext:{stmt.name}")]

    def lower_compute(self, name, ctx):
        return [CommentStmt(f"compute:{name}@depth{len(ctx.open_vars)}")]

    def lower_mark(self, mark, ctx):
        if mark.mark == "replace":
            return [CommentStmt("mark:replaced")]
        return None


def simple_domain():
    space = Space("S1", ("i",))
    return DomainNode({"S1": box_set(space, {"i": (0, aff_var("M"))})})


def band(var, hi, binding=None, children=None):
    return BandNode(
        [
            BandMember(
                var,
                {"S1": aff_var(var)},
                True,
                (aff_const(0), hi),
                binding=binding,
            )
        ],
        children=children,
    )


def comments(block: Block) -> List[str]:
    return [s.text for s in walk_stmts(block) if isinstance(s, CommentStmt)]


def generate(root, params=("M",)):
    return AstGenerator(RecordingDelegate()).generate(root, params)


def test_band_becomes_loop():
    root = simple_domain()
    root.set_child(band("i", aff_var("M")))
    ast = generate(root)
    loops = [s for s in walk_stmts(ast) if isinstance(s, ForLoop)]
    assert len(loops) == 1
    assert loops[0].var == "i"
    assert comments(ast) == ["compute:S1@depth1"]


def test_mesh_bound_member_emits_no_loop():
    root = simple_domain()
    root.set_child(band("Rid", aff_const(8), binding="mesh_row"))
    ast = generate(root)
    assert not [s for s in walk_stmts(ast) if isinstance(s, ForLoop)]
    assert comments(ast) == ["compute:S1@depth1"]


def test_missing_extent_raises():
    root = simple_domain()
    b = band("i", aff_var("M"))
    b.members[0].extent = None
    root.set_child(b)
    with pytest.raises(CodegenError):
        generate(root)


def test_sequence_preserves_order():
    root = simple_domain()
    ext = ExtensionNode(
        [ExtensionStmt("pre", "x"), ExtensionStmt("post", "x")],
        [
            SequenceNode(
                [
                    FilterNode(["pre"]),
                    FilterNode(["S1"], [band("i", aff_var("M"))]),
                    FilterNode(["post"]),
                ]
            )
        ],
    )
    root.set_child(ext)
    assert comments(generate(root)) == ["ext:pre", "compute:S1@depth1", "ext:post"]


def test_peeled_filter_restricts_loop_to_single_iteration():
    root = simple_domain()
    inner = band("i", aff_var("M"))
    filt = FilterNode(["S1"], [inner], constraints=[peel_eq("i", 0)])
    root.set_child(filt)
    ast = generate(root)
    loop = next(s for s in walk_stmts(ast) if isinstance(s, ForLoop))
    assert loop.lo.aff == aff_const(0)
    assert loop.hi.aff == aff_const(1)


def test_guard_on_open_variable_becomes_if():
    # FILTER{pre : i <= M-2} *below* the band -> if (...) inside the loop.
    root = simple_domain()
    guard = le(aff_var("i"), aff_var("M") - 2)
    seq = SequenceNode(
        [
            FilterNode(["pre"], constraints=[guard]),
            FilterNode(["S1"]),
        ]
    )
    ext = ExtensionNode([ExtensionStmt("pre", "x")], [seq])
    b = band("i", aff_var("M"), children=[ext])
    root.set_child(b)
    ast = generate(root)
    ifs = [s for s in walk_stmts(ast) if isinstance(s, IfStmt)]
    assert len(ifs) == 1
    assert comments(ast) == ["ext:pre", "compute:S1@depth1"]


def test_unconsumed_constraint_raises():
    root = simple_domain()
    filt = FilterNode(["S1"], constraints=[peel_eq("zz", 0)])
    root.set_child(filt)
    with pytest.raises(CodegenError):
        generate(root)


def test_mark_replacement_and_descent():
    root = simple_domain()
    replaced = MarkNode("replace", [band("i", aff_var("M"))])
    root.set_child(replaced)
    assert comments(generate(root)) == ["mark:replaced"]

    root2 = simple_domain()
    passthrough = MarkNode("other", [band("i", aff_var("M"))])
    root2.set_child(passthrough)
    assert comments(generate(root2)) == ["compute:S1@depth1"]


def test_extension_shadowing_rejected():
    root = simple_domain()
    inner_ext = ExtensionNode(
        [ExtensionStmt("pre", "x")], [SequenceNode([FilterNode(["pre"])])]
    )
    outer_ext = ExtensionNode([ExtensionStmt("pre", "x")], [inner_ext])
    root.set_child(outer_ext)
    with pytest.raises(CodegenError):
        generate(root)


def test_nested_bands_open_in_order():
    root = simple_domain()
    outer = band("a", aff_var("M"))
    inner = band("b", aff_const(4))
    outer.set_child(inner)
    root.set_child(outer)
    ast = generate(root)
    loops = [s for s in walk_stmts(ast) if isinstance(s, ForLoop)]
    assert [l.var for l in loops] == ["a", "b"]
    assert comments(ast) == ["compute:S1@depth2"]
