"""Schedule-tree transformations: tiling, strip-mining, isolation."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ScheduleTreeError
from repro.poly.affine import aff_const, aff_var
from repro.poly.iset import box_set
from repro.poly.schedule_tree import BandMember, BandNode, DomainNode, ExtensionStmt
from repro.poly.space import Space
from repro.poly.transforms import (
    attach_copies,
    insert_mark,
    isolate_member,
    peel_eq,
    peel_range,
    split_band,
    strip_mine,
    tile_band,
)


def gemm_band():
    i, j, k = aff_var("i"), aff_var("j"), aff_var("k")
    return BandNode(
        [
            BandMember("i", {"S1": i}, True, (aff_const(0), aff_var("M"))),
            BandMember("j", {"S1": j}, True, (aff_const(0), aff_var("N"))),
            BandMember("k", {"S1": k}, False, (aff_const(0), aff_var("K"))),
        ],
        permutable=True,
    )


def evaluate_band_chain(band, env):
    """Evaluate every member schedule down the band chain."""
    values = {}
    node = band
    while isinstance(node, BandNode):
        for member in node.members:
            values[member.var] = member.schedule_for("S1").evaluate(env)
        node = node.children[0] if node.children else None
    return values


def test_tile_band_structure():
    band = gemm_band()
    outer, inner = tile_band(band, [64, 64, 32], ["it", "jt", "kt"], ["ip", "jp", "kp"])
    assert outer is band
    assert outer.member_vars() == ["it", "jt", "kt"]
    assert inner.member_vars() == ["ip", "jp", "kp"]
    assert outer.child is inner


def test_tile_band_schedules_match_fig4a():
    band = gemm_band()
    outer, inner = tile_band(band, [64, 64, 32], ["it", "jt", "kt"], ["ip", "jp", "kp"])
    env = {"i": 200, "j": 70, "k": 45}
    assert outer.members[0].schedule_for("S1").evaluate(env) == 200 // 64
    assert inner.members[0].schedule_for("S1").evaluate(env) == 200 % 64
    assert outer.members[2].schedule_for("S1").evaluate(env) == 45 // 32
    assert inner.members[2].schedule_for("S1").evaluate(env) == 45 % 32


def test_tile_band_extents():
    band = gemm_band()
    outer, inner = tile_band(band, [64, 64, 32], ["it", "jt", "kt"], ["ip", "jp", "kp"])
    lo, hi = outer.members[0].extent
    assert lo == aff_const(0)
    assert hi.evaluate({"M": 1024}) == 16
    lo, hi = inner.members[2].extent
    assert (lo, hi) == (aff_const(0), aff_const(32))


def test_tile_band_coincidence_propagates():
    band = gemm_band()
    outer, inner = tile_band(band, [8, 8, 8], ["a", "b", "c"], ["d", "e", "f"])
    assert [m.coincident for m in outer.members] == [True, True, False]
    assert [m.coincident for m in inner.members] == [True, True, False]


def test_tile_band_argument_validation():
    with pytest.raises(ScheduleTreeError):
        tile_band(gemm_band(), [64, 64], ["a", "b"], ["c", "d"])
    with pytest.raises(ScheduleTreeError):
        tile_band(gemm_band(), [64, 64, 0], ["a", "b", "c"], ["d", "e", "f"])


def test_tile_band_requires_extents():
    band = gemm_band()
    band.members[0].extent = None
    with pytest.raises(ScheduleTreeError):
        tile_band(band, [8, 8, 8], ["a", "b", "c"], ["d", "e", "f"])


def test_isolate_member():
    band = gemm_band()
    iso, rest = isolate_member(band, 2)
    assert iso.member_vars() == ["k"]
    assert rest.member_vars() == ["i", "j"]
    assert iso.child is rest


def test_isolate_member_bounds_check():
    with pytest.raises(ScheduleTreeError):
        isolate_member(gemm_band(), 5)
    single = BandNode([gemm_band().members[0]])
    with pytest.raises(ScheduleTreeError):
        isolate_member(single, 0)


def test_split_band():
    band = gemm_band()
    upper, lower = split_band(band, 2)
    assert upper.member_vars() == ["i", "j"]
    assert lower.member_vars() == ["k"]
    with pytest.raises(ScheduleTreeError):
        split_band(lower, 1)


def test_strip_mine_matches_fig6():
    band = gemm_band()
    iso, _ = isolate_member(band, 2)
    # first tile k by 32 -> floor(k/32), then strip-mine by 8
    kt = BandNode(
        [BandMember("kt", {"S1": aff_var("k").floordiv(32)}, False,
                    (aff_const(0), aff_var("K").floordiv(32)))]
    )
    outer, inner = strip_mine(kt, 0, 8, "ko", "km")
    env = {"k": 300, "K": 1024}
    assert outer.members[0].schedule_for("S1").evaluate(env) == 300 // 256
    assert inner.members[0].schedule_for("S1").evaluate(env) == (300 // 32) % 8
    assert inner.members[0].extent[1] == aff_const(8)


def test_strip_mine_requires_rank_one():
    with pytest.raises(ScheduleTreeError):
        strip_mine(gemm_band(), 0, 8, "a", "b")


def test_attach_copies_builds_fig9_shape():
    band = gemm_band()
    root = DomainNode(
        {"S1": box_set(Space("S1", ("i", "j", "k")),
                       {"i": (0, aff_var("M")), "j": (0, aff_var("N")),
                        "k": (0, aff_var("K"))})},
        [band],
    )
    pre = [ExtensionStmt("getC", "dma_issue"), ExtensionStmt("waitC", "dma_wait")]
    post = [ExtensionStmt("putC", "dma_issue")]
    ext = attach_copies(root, band, ["S1"], [pre], [post])
    assert root.child is ext
    seq = ext.child
    assert [tuple(f.statements) for f in seq.children] == [
        ("getC", "waitC"),
        ("S1",),
        ("putC",),
    ]
    assert seq.children[1].child is band


def test_insert_mark():
    band = gemm_band()
    root = DomainNode({"S1": None.__class__ and box_set(
        Space("S1", ("i", "j", "k")),
        {"i": (0, aff_var("M")), "j": (0, aff_var("N")), "k": (0, aff_var("K"))},
    )}, [band])
    mark = insert_mark(root, band, "micro_kernel", {"x": 1})
    assert root.child is mark
    assert mark.child is band
    assert mark.payload == {"x": 1}


def test_peel_helpers():
    c = peel_eq("ko", 0)
    assert c.holds({"ko": 0}) and not c.holds({"ko": 1})
    lo, hi = peel_range("ko", 1, 4)
    assert lo.holds({"ko": 1}) and hi.holds({"ko": 3})
    assert not hi.holds({"ko": 4})


@given(st.integers(1, 64), st.integers(0, 4095))
@settings(max_examples=120, deadline=None)
def test_prop_tiling_roundtrip(tile, point):
    """tile*outer + inner == original for every point."""
    band = gemm_band()
    outer, inner = tile_band(
        band, [tile, tile, tile], ["it", "jt", "kt"], ["ip", "jp", "kp"]
    )
    env = {"i": point, "j": 0, "k": 0}
    t = outer.members[0].schedule_for("S1").evaluate(env)
    p = inner.members[0].schedule_for("S1").evaluate(env)
    assert tile * t + p == point
    assert 0 <= p < tile


@given(st.integers(2, 9), st.integers(1, 32), st.integers(0, 4095))
@settings(max_examples=120, deadline=None)
def test_prop_stripmine_roundtrip(factor, tile, k):
    band = BandNode(
        [BandMember("kt", {"S1": aff_var("k").floordiv(tile)}, False,
                    (aff_const(0), aff_var("K").floordiv(tile)))]
    )
    outer, inner = strip_mine(band, 0, factor, "ko", "km")
    env = {"k": k}
    ko = outer.members[0].schedule_for("S1").evaluate(env)
    km = inner.members[0].schedule_for("S1").evaluate(env)
    assert factor * ko + km == k // tile
    assert 0 <= km < factor
