"""Dependence analysis: the parallelism/tilability oracle of §2.2."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.poly.affine import aff_var
from repro.poly.dependences import (
    Access,
    analyze_statement,
    dependence_families,
    detect_reductions,
    enumerate_distances,
)
from repro.poly.imap import AffineMap
from repro.poly.iset import box_set
from repro.poly.space import Space

i, j, k = aff_var("i"), aff_var("j"), aff_var("k")
S = Space("S1", ("i", "j", "k"))
A2 = Space("A", ("r", "c"))


def gemm_accesses():
    c_map = AffineMap.access(S, Space("C", ("r", "c")), [i, j])
    return [
        Access("C", c_map, True),
        Access("C", c_map, False),
        Access("A", AffineMap.access(S, A2, [i, k]), False),
        Access("B", AffineMap.access(S, Space("B", ("r", "c")), [k, j]), False),
    ]


def small_domain(m=4, n=4, kk=4):
    return box_set(S, {"i": (0, m), "j": (0, n), "k": (0, kk)})


def test_gemm_outer_loops_coincident():
    summary = analyze_statement(small_domain(), gemm_accesses())
    assert summary.coincident == (True, True, False)


def test_gemm_band_permutable():
    summary = analyze_statement(small_domain(), gemm_accesses())
    assert summary.permutable


def test_gemm_reduction_detected():
    summary = analyze_statement(small_domain(), gemm_accesses())
    assert summary.reduction_dims == ("k",)


def test_gemm_matches_brute_force():
    dom = small_domain(3, 3, 3)
    brute = enumerate_distances(dom, gemm_accesses(), {})
    # All brute-force distances are along k only.
    assert brute
    assert all(d[0] == 0 and d[1] == 0 and d[2] > 0 for d in brute)


def test_stencil_is_not_parallel():
    # A[i] = A[i-1] + A[i]: distance 1 on the single loop.
    space = Space("S", ("i",))
    a1 = Space("V", ("x",))
    ii = aff_var("i")
    accesses = [
        Access("V", AffineMap.access(space, a1, [ii]), True),
        Access("V", AffineMap.access(space, a1, [ii - 1]), False),
    ]
    summary = analyze_statement(
        box_set(space, {"i": (1, 8)}), accesses, ("i",)
    )
    assert summary.coincident == (False,)


def test_constant_distance_is_permutable():
    # write A[i][j], read A[i-1][j-1]: distance (1,1) componentwise >= 0.
    space = Space("S", ("i", "j"))
    ii, jj = aff_var("i"), aff_var("j")
    accesses = [
        Access("A", AffineMap.access(space, A2, [ii, jj]), True),
        Access("A", AffineMap.access(space, A2, [ii - 1, jj - 1]), False),
    ]
    summary = analyze_statement(
        box_set(space, {"i": (1, 6), "j": (1, 6)}), accesses, ("i", "j")
    )
    assert summary.permutable
    assert summary.coincident == (False, False)


def test_antidiagonal_distance_blocks_permutability():
    # write A[i][j], read A[i-1][j+1]: distance (1,-1) — not permutable.
    space = Space("S", ("i", "j"))
    ii, jj = aff_var("i"), aff_var("j")
    accesses = [
        Access("A", AffineMap.access(space, A2, [ii, jj]), True),
        Access("A", AffineMap.access(space, A2, [ii - 1, jj + 1]), False),
    ]
    summary = analyze_statement(
        box_set(space, {"i": (1, 6), "j": (0, 6)}), accesses, ("i", "j")
    )
    assert not summary.permutable


def test_two_free_dims_not_permutable():
    # write A[i]: iterations with the same i but any (j, k) collide.
    space = Space("S", ("i", "j"))
    a1 = Space("V", ("x",))
    accesses = [
        Access("V", AffineMap.access(space, a1, [aff_var("i")]), True),
    ]
    summary = analyze_statement(
        box_set(space, {"i": (0, 4), "j": (0, 4)}), accesses, ("i", "j")
    )
    assert summary.coincident == (True, False)


def test_read_only_arrays_create_no_dependence():
    accesses = [
        Access("A", AffineMap.access(S, A2, [i, k]), False),
        Access("B", AffineMap.access(S, A2, [k, j]), False),
    ]
    families = dependence_families(accesses, ("i", "j", "k"))
    assert families == []


def test_nonuniform_pair_is_conservative():
    # write A[i][j], read A[j][i]: different linear parts.
    space = Space("S", ("i", "j"))
    ii, jj = aff_var("i"), aff_var("j")
    accesses = [
        Access("A", AffineMap.access(space, A2, [ii, jj]), True),
        Access("A", AffineMap.access(space, A2, [jj, ii]), False),
    ]
    summary = analyze_statement(
        box_set(space, {"i": (0, 4), "j": (0, 4)}), accesses, ("i", "j")
    )
    assert not summary.permutable
    assert summary.coincident == (False, False)


def test_reduction_requires_identical_maps():
    accesses = [
        Access("A", AffineMap.access(S, A2, [i, j]), True),
        Access("A", AffineMap.access(S, A2, [i, j - 1]), False),
    ]
    assert detect_reductions(accesses, ("i", "j", "k")) == ()


def test_batched_gemm_batch_dim_parallel():
    space = Space("S1", ("b", "i", "j", "k"))
    b = aff_var("b")
    c3 = Space("C", ("d0", "d1", "d2"))
    c_map = AffineMap.access(space, c3, [b, i, j])
    accesses = [
        Access("C", c_map, True),
        Access("C", c_map, False),
        Access("A", AffineMap.access(space, c3, [b, i, k]), False),
        Access("B", AffineMap.access(space, c3, [b, k, j]), False),
    ]
    dom = box_set(space, {"b": (0, 2), "i": (0, 3), "j": (0, 3), "k": (0, 3)})
    summary = analyze_statement(dom, accesses, ("b", "i", "j", "k"))
    assert summary.coincident == (True, True, True, False)
    assert summary.permutable


@given(
    st.integers(-2, 2), st.integers(-2, 2),
    st.integers(2, 5), st.integers(2, 5),
)
@settings(max_examples=60, deadline=None)
def test_prop_uniform_2d_families_match_brute_force(di, dj, m, n):
    """Random uniform write/read pair: analytic family vs enumeration."""
    space = Space("S", ("i", "j"))
    ii, jj = aff_var("i"), aff_var("j")
    accesses = [
        Access("A", AffineMap.access(space, A2, [ii, jj]), True),
        Access("A", AffineMap.access(space, A2, [ii - di, jj - dj]), False),
    ]
    # Extents must exceed the distances or the written and read cells
    # never overlap and no dependence exists at all.
    lo_i, lo_j = max(0, di), max(0, dj)
    m, n = m + abs(di), n + abs(dj)
    dom = box_set(space, {"i": (lo_i, lo_i + m), "j": (lo_j, lo_j + n)})
    brute = enumerate_distances(dom, accesses, {})
    summary = analyze_statement(dom, accesses, ("i", "j"))
    if (di, dj) == (0, 0):
        assert brute == set()
        return
    # The write->read direction alone yields distance (di, dj); the
    # reversed pairing gives its negation.  Whichever is lex-positive
    # must appear in the brute-force set.
    expected = (di, dj) if (di, dj) > (0, 0) else (-di, -dj)
    assert expected in brute
    assert any(f.touches_dim(0) or f.touches_dim(1) for f in summary.families)
