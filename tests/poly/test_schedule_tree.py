"""Schedule-tree node types and tree utilities."""

import pytest

from repro.errors import ScheduleTreeError
from repro.poly.affine import aff_const, aff_var
from repro.poly.iset import box_set, eq
from repro.poly.schedule_tree import (
    BandMember,
    BandNode,
    DomainNode,
    ExtensionNode,
    ExtensionStmt,
    FilterNode,
    MarkNode,
    SequenceNode,
    band_ancestors,
    clone_tree,
    parent_map,
)
from repro.poly.space import Space


def make_domain():
    space = Space("S1", ("i", "j", "k"))
    dom = box_set(
        space,
        {"i": (0, aff_var("M")), "j": (0, aff_var("N")), "k": (0, aff_var("K"))},
    )
    return DomainNode({"S1": dom})


def make_band():
    return BandNode(
        [
            BandMember("i", {"S1": aff_var("i")}, True, (aff_const(0), aff_var("M"))),
            BandMember("j", {"S1": aff_var("j")}, True, (aff_const(0), aff_var("N"))),
        ],
        permutable=True,
    )


def test_domain_statement_lookup():
    root = make_domain()
    assert root.statement_names() == ["S1"]
    assert root.domain_of("S1").space.name == "S1"
    with pytest.raises(ScheduleTreeError):
        root.domain_of("S9")


def test_band_queries():
    band = make_band()
    assert band.rank == 2
    assert band.member_vars() == ["i", "j"]
    assert band.statements() == ["S1"]
    assert band.members[0].schedule_for("S1") == aff_var("i")
    with pytest.raises(ScheduleTreeError):
        band.members[0].schedule_for("S9")


def test_single_child_accessor():
    root = make_domain()
    band = make_band()
    root.set_child(band)
    assert root.child is band
    empty = SequenceNode()
    with pytest.raises(ScheduleTreeError):
        _ = empty.child


def test_sequence_requires_filters():
    with pytest.raises(ScheduleTreeError):
        SequenceNode([make_band()])
    seq = SequenceNode([FilterNode(["S1"])])
    with pytest.raises(ScheduleTreeError):
        seq.append(make_band())


def test_extension_duplicate_names_rejected():
    s1 = ExtensionStmt("getA", "dma_issue")
    with pytest.raises(ScheduleTreeError):
        ExtensionNode([s1, ExtensionStmt("getA", "dma_issue")])


def test_extension_stmt_lookup():
    node = ExtensionNode([ExtensionStmt("getA", "dma_issue")])
    assert node.stmt("getA").role == "dma_issue"
    with pytest.raises(ScheduleTreeError):
        node.stmt("getZ")


def test_walk_and_find():
    root = make_domain()
    band = make_band()
    mark = MarkNode("micro_kernel", [BandNode([], children=[])])
    band.children = [mark]
    root.set_child(band)
    kinds = [n.kind for n in root.walk()]
    assert kinds == ["domain", "band", "mark", "band"]
    assert root.find_mark("micro_kernel") is mark
    assert root.find_mark("nope") is None
    assert len(root.find_all(BandNode)) == 2


def test_parent_map():
    root = make_domain()
    band = make_band()
    root.set_child(band)
    parents = parent_map(root)
    assert parents[id(band)] is root


def test_replace_child():
    root = make_domain()
    band = make_band()
    root.set_child(band)
    other = make_band()
    root.replace_child(band, other)
    assert root.child is other
    with pytest.raises(ScheduleTreeError):
        root.replace_child(band, other)


def test_clone_is_deep_for_mutable_parts():
    root = make_domain()
    band = make_band()
    root.set_child(band)
    copy = clone_tree(root)
    copy.child.members[0].var = "zz"
    assert band.members[0].var == "i"
    assert copy.dump() != root.dump()


def test_dump_contains_figure_vocabulary():
    root = make_domain()
    band = make_band()
    root.set_child(band)
    text = root.dump()
    assert "DOMAIN" in text
    assert "BAND(permutable)" in text
    assert "coincident" in text


def test_filter_constraints_in_dump():
    node = FilterNode(["S1"], constraints=[eq(aff_var("ko"), 0)])
    assert "ko" in node._label()


def test_band_ancestors():
    root = make_domain()
    outer = make_band()
    inner = BandNode(
        [BandMember("k", {"S1": aff_var("k")}, False, (aff_const(0), aff_var("K")))]
    )
    leaf = MarkNode("x")
    inner.set_child(leaf)
    outer.set_child(inner)
    root.set_child(outer)
    path = band_ancestors(root, leaf)
    # Root-to-target order: the outer band first.
    assert [b.member_vars()[0] for b in path] == ["i", "k"]
    with pytest.raises(ScheduleTreeError):
        band_ancestors(root, MarkNode("unattached"))
