"""The pre-facade entry points keep working, but warn with a migration
hint; the internal spellings they wrap stay silent."""

import warnings

import numpy as np
import pytest

import repro
from repro.service import CompileService, ServiceConfig
from repro.sunway.arch import TOY_ARCH


def test_top_level_gemm_compiler_warns_and_works():
    with pytest.warns(DeprecationWarning, match="repro.api.compile"):
        compiler = repro.GemmCompiler(TOY_ARCH)
    program = compiler.compile(repro.GemmSpec())
    assert program.verification is not None


def test_top_level_run_gemm_warns_and_returns_tuple():
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", DeprecationWarning)
        program = repro.GemmCompiler(TOY_ARCH).compile(repro.GemmSpec())
    a = np.ones((32, 16))
    b = np.ones((16, 32))
    with pytest.warns(DeprecationWarning, match="repro.api.run"):
        c, report = repro.run_gemm(program, a, b, beta=0.0)
    assert np.allclose(c, a @ b)


def test_kernel_service_warns_and_stays_a_compile_service():
    from repro.service import KernelService

    with pytest.warns(DeprecationWarning, match="CompileService"):
        svc = KernelService(ServiceConfig(enabled=False))
    assert isinstance(svc, CompileService)
    program = svc.get_program(
        repro.GemmSpec(), TOY_ARCH, repro.CompilerOptions()
    )
    assert program.verification is not None


def test_compat_get_kernel_warns_and_matches_backend():
    """The legacy kernel-selection helper routes through the backend
    registry, with the single-warning migration hint."""
    from repro.codegen.backend import get_backend
    from repro.compat import get_kernel

    with pytest.warns(DeprecationWarning, match="resolve_kernel"):
        kernel = get_kernel(TOY_ARCH, use_asm=True)
    reference = get_backend("vendor").generate(
        TOY_ARCH.micro_kernel, TOY_ARCH.simd_doubles, TOY_ARCH
    )
    assert kernel.name == reference.name
    assert kernel.seconds_per_call == reference.seconds_per_call

    with pytest.warns(DeprecationWarning, match="resolve_kernel"):
        naive = get_kernel(TOY_ARCH, use_asm=False)
    assert naive.name.startswith("naive_")


def test_internal_spellings_do_not_warn():
    from repro.codegen.backend import resolve_kernel
    from repro.core.pipeline import GemmCompiler
    from repro.runtime.executor import run_gemm

    with warnings.catch_warnings():
        warnings.simplefilter("error", DeprecationWarning)
        program = GemmCompiler(TOY_ARCH).compile(repro.GemmSpec())
        c, report = run_gemm(
            program, np.ones((32, 16)), np.ones((16, 32)), beta=0.0
        )
        CompileService(ServiceConfig(enabled=False))
        resolve_kernel(TOY_ARCH, repro.CompilerOptions())
    assert np.allclose(c, np.ones((32, 16)) @ np.ones((16, 32)))
