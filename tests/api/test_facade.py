"""The stable facade: compile / run / tune / verify round trips."""

import numpy as np
import pytest

from repro import api
from repro.core import CompilerOptions, GemmSpec
from repro.errors import ConfigurationError
from repro.runtime.program import CompiledProgram
from repro.service import CompileService, ServiceConfig
from repro.sunway.arch import TOY_ARCH


@pytest.fixture()
def service():
    return CompileService(ServiceConfig())


def test_compile_returns_verified_program(service):
    program = api.compile(GemmSpec(), arch=TOY_ARCH, service=service)
    assert isinstance(program, CompiledProgram)
    assert program.verification is not None and program.verification.ok


def test_compile_default_spec_is_plain_gemm(service):
    program = api.compile(arch=TOY_ARCH, service=service)
    assert not program.spec.is_batched


def test_option_overrides_apply(service):
    program = api.compile(
        arch=TOY_ARCH, service=service, enable_rma=False, use_asm=False
    )
    assert not program.options.enable_rma
    assert not program.options.use_asm


def test_unknown_option_is_a_configuration_error(service):
    with pytest.raises(ConfigurationError, match="unknown compiler option"):
        api.compile(arch=TOY_ARCH, service=service, enable_warp_drive=True)


def test_run_round_trip_matches_numpy(service):
    program = api.compile(arch=TOY_ARCH, service=service)
    rng = np.random.default_rng(0)
    a = rng.standard_normal((32, 16))
    b = rng.standard_normal((16, 32))
    result = api.run(program, a, b, beta=0.0)
    assert np.allclose(result.c, a @ b)
    assert result.gflops > 0
    assert result.seconds > 0


def test_result_unpacks_like_the_legacy_tuple(service):
    program = api.compile(arch=TOY_ARCH, service=service)
    a = np.ones((32, 16))
    b = np.ones((16, 32))
    c, report = api.run(program, a, b, beta=0.0)
    assert np.allclose(c, a @ b)
    assert report.gflops > 0


def test_run_compiles_spec_on_the_fly(service):
    a = np.ones((32, 16))
    b = np.ones((16, 32))
    result = api.run(
        GemmSpec(), a, b, beta=0.0, arch=TOY_ARCH, service=service
    )
    assert np.allclose(result.c, a @ b)


def test_run_rejects_overrides_with_compiled_program(service):
    program = api.compile(arch=TOY_ARCH, service=service)
    with pytest.raises(ConfigurationError, match="already-compiled"):
        api.run(program, np.ones((32, 16)), np.ones((16, 32)), use_asm=False)


def test_verify_reports_per_check(service):
    program = api.compile(arch=TOY_ARCH, service=service)
    report = api.verify(program)
    assert report.ok


def test_tune_returns_record_and_steers_compile(service):
    record = api.tune(
        shape=(128, 128, 64), arch=TOY_ARCH, seed=0, budget=6,
        service=service,
    )
    assert record.best_gflops >= record.default_gflops
    assert record.measurements >= 1

    # A later compile of the same shape class through the same service
    # reuses the record.
    program = api.compile(
        arch=TOY_ARCH, shape=(128, 128, 64), service=service
    )
    assert program.plan.kernel_shape == record.candidate.tile.shape()
    assert service.tuning_hits == 1


def test_tune_full_result_carries_search_trace(service):
    result = api.tune(
        shape=(128, 128, 64), arch=TOY_ARCH, seed=0, budget=6,
        service=service, full_result=True,
    )
    assert result.candidates_total > 0
    assert result.measured >= 1
    assert result.record.key in service.tuning_store.keys()


def test_tune_rejects_malformed_shape(service):
    with pytest.raises(ConfigurationError, match="shape must be"):
        api.tune(shape=(128, 128), arch=TOY_ARCH, service=service)
