"""Snapshot of the public API surface.

This test is the contract behind the facade redesign: it fails whenever
an exported symbol disappears or a facade function changes its
signature.  Widening the surface is fine — update the snapshot in the
same change that widens it; narrowing or reshaping it is a breaking
change and should be caught here, not by downstream users.
"""

import inspect

import repro
from repro import api

EXPECTED_EXPORTS = sorted(
    [
        # the stable facade
        "api",
        "GemmResult",
        # serving daemon client
        "Client",
        "connect",
        # problem + options
        "GemmSpec",
        "CompilerOptions",
        "TileConfig",
        "SchedulePolicy",
        # compilation service
        "CompileService",
        "ServiceConfig",
        "cache_key",
        "get_default_service",
        "set_default_service",
        # autotuner
        "Tuner",
        "TuneOptions",
        "TuningRecord",
        "TuningRecordStore",
        # frontend + runtime
        "compile_c",
        "extract_spec",
        "parse_c",
        "CompiledProgram",
        "Executor",
        "ExecutionReport",
        "PerformanceSimulator",
        # fault plane
        "FaultPolicy",
        "RetryPolicy",
        "FaultInjector",
        "tile_checksum",
        # architectures (the registry is how new targets become reachable)
        "ArchSpec",
        "Cluster",
        "SW26010PRO",
        "SW26010",
        "SW26010PRO_HBM",
        "SW26010PRO_LITE",
        "TOY_ARCH",
        "get_arch",
        "arch_names",
        "register_arch",
        # kernel backends
        "get_backend",
        "backend_names",
        "resolve_kernel",
        # deprecated shims (warn on use)
        "GemmCompiler",
        "run_gemm",
        "__version__",
    ]
)

EXPECTED_API = {
    "compile": ["spec", "arch", "shape", "options", "service", "timeout",
                "option_overrides"],
    "run": ["program_or_spec", "a", "b", "c", "alpha", "beta", "guarded",
            "arch", "service", "option_overrides"],
    "tune": ["spec", "shape", "arch", "seed", "budget", "options",
             "service", "full_result", "option_overrides"],
    "verify": ["program"],
    # **client_kw forwards the serve client's overload knobs
    # (deadline_ms, overload_retries, overload_retry_budget_s) without
    # re-declaring them on the facade.
    "connect": ["address", "tenant", "timeout", "client_kw"],
}


def test_top_level_exports_snapshot():
    assert sorted(repro.__all__) == EXPECTED_EXPORTS


def test_every_export_resolves():
    for name in repro.__all__:
        assert getattr(repro, name, None) is not None, name


def test_api_module_exports():
    assert sorted(api.__all__) == sorted(
        ["GemmResult", "Client", *EXPECTED_API]
    )


def test_facade_signatures_snapshot():
    for name, expected in EXPECTED_API.items():
        sig = inspect.signature(getattr(api, name))
        assert list(sig.parameters) == expected, name


def test_facade_defaults_are_stable():
    sig = inspect.signature(api.compile)
    assert sig.parameters["shape"].default is None
    assert sig.parameters["timeout"].default is None
    sig = inspect.signature(api.tune)
    assert sig.parameters["seed"].default == 0
    assert sig.parameters["budget"].default == 20
    sig = inspect.signature(api.run)
    assert sig.parameters["alpha"].default == 1.0
    assert sig.parameters["beta"].default == 1.0
    assert sig.parameters["guarded"].default is False
