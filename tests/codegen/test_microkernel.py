"""The micro-kernel contract (§7.2) and element-wise registry."""

import numpy as np
import pytest

from repro.codegen.elementwise import available_functions, get_elementwise
from repro.codegen.microkernel import AsmMicroKernel, NaiveKernel, get_kernel
from repro.errors import ConfigurationError, ExecutionError
from repro.sunway.arch import SW26010PRO, TOY_ARCH, MicroKernelShape


def test_asm_kernel_accumulates():
    kernel = AsmMicroKernel(TOY_ARCH)
    rng = np.random.default_rng(0)
    a = rng.standard_normal((8, 4))
    b = rng.standard_normal((4, 8))
    c = rng.standard_normal((8, 8))
    c0 = c.copy()
    kernel.execute(c, a, b, alpha=2.0)
    assert np.allclose(c, c0 + 2.0 * a @ b)


def test_shape_contract_enforced():
    kernel = AsmMicroKernel(TOY_ARCH)
    with pytest.raises(ExecutionError, match="contract"):
        kernel.execute(np.zeros((8, 8)), np.zeros((4, 8)), np.zeros((4, 8)), 1.0)


def test_kernel_names_embed_shape():
    assert AsmMicroKernel(SW26010PRO).name == "asm_dgemm_64x64x32"
    assert NaiveKernel(SW26010PRO).name == "naive_dgemm_64x64x32"


def test_naive_is_much_slower():
    asm = AsmMicroKernel(SW26010PRO).seconds_per_call
    naive = NaiveKernel(SW26010PRO).seconds_per_call
    assert naive > 20 * asm


def test_get_kernel_dispatch():
    assert isinstance(get_kernel(SW26010PRO, True), AsmMicroKernel)
    assert isinstance(get_kernel(SW26010PRO, False), NaiveKernel)


def test_profile():
    profile = AsmMicroKernel(SW26010PRO).profile()
    assert profile.shape == MicroKernelShape(64, 64, 32)
    assert profile.seconds_per_call > 0


# -- element-wise registry -------------------------------------------------------


def test_registry_contents():
    funcs = available_functions()
    assert {"quant", "relu", "sigmoid", "tanh", "identity"} <= set(funcs)


def test_unknown_function_raises():
    with pytest.raises(ConfigurationError):
        get_elementwise("frobnicate")


@pytest.mark.parametrize("name", ["quant", "relu", "sigmoid", "tanh", "identity"])
def test_functions_are_deterministic_and_shaped(name):
    fn = get_elementwise(name).numpy_fn
    x = np.linspace(-2, 2, 17)
    assert (fn(x) == fn(x)).all()
    assert fn(x).shape == x.shape


def test_quant_snaps_to_sixteenths():
    fn = get_elementwise("quant").numpy_fn
    y = fn(np.array([0.03, 0.97, -0.53]))
    assert np.allclose(y * 16, np.round(y * 16))


def test_relu_clamps():
    fn = get_elementwise("relu").numpy_fn
    assert (fn(np.array([-1.0, 2.0])) == [0.0, 2.0]).all()


def test_c_templates_format():
    for func in available_functions().values():
        rendered = func.c_template.format(x="C[i][j]")
        assert "C[i][j]" in rendered


def test_rates_positive():
    for func in available_functions().values():
        assert func.cpe_rate > 0 and func.mpe_rate > 0
