"""Per-pass golden IR snapshots for the four pipeline variants.

The pass manager captures a context snapshot (artifact summary + the
schedule tree) after every pass; these tests lock those snapshots down
byte-for-byte for the default, batched, fused and no-RMA pipelines.  Any
compiler change that alters an intermediate stage — not just the final
tree — shows up as a diff here.  Review it, then regenerate with::

    PYTHONPATH=src python -c \
      "from tests.codegen.test_pass_snapshots import regenerate; regenerate()"
"""

from pathlib import Path

import pytest

from repro.core import CompilerOptions, GemmCompiler, GemmSpec
from repro.sunway.arch import SW26010PRO

GOLDEN = Path(__file__).parent.parent / "golden" / "passes"

#: variant name -> (spec, options); each builds a distinct pipeline.
VARIANTS = {
    "default": (GemmSpec(), CompilerOptions.full()),
    "batched": (
        GemmSpec(batch_param="BS"),
        CompilerOptions.full().with_(batch=True),
    ),
    "fused": (GemmSpec(epilogue_func="relu"), CompilerOptions.full()),
    "no-rma": (GemmSpec(), CompilerOptions.full().with_(enable_rma=False)),
}


def _snapshots(variant):
    spec, options = VARIANTS[variant]
    compiler = GemmCompiler(SW26010PRO, options)
    _, ctx = compiler.compile_with_context(spec)
    return ctx.snapshots


def _golden_files(variant):
    return sorted((GOLDEN / variant).glob("*.txt"))


def regenerate() -> None:  # pragma: no cover - maintenance helper
    for variant in VARIANTS:
        outdir = GOLDEN / variant
        outdir.mkdir(parents=True, exist_ok=True)
        for stale in outdir.glob("*.txt"):
            stale.unlink()
        for index, (name, snapshot) in enumerate(
            _snapshots(variant).items(), start=1
        ):
            (outdir / f"{index:02d}-{name}.txt").write_text(snapshot)


@pytest.mark.parametrize("variant", sorted(VARIANTS))
def test_per_pass_snapshots_match_golden(variant):
    snapshots = _snapshots(variant)
    files = _golden_files(variant)
    expected_names = [f.stem.split("-", 1)[1] for f in files]
    assert list(snapshots) == expected_names, (
        "pipeline changed shape — regenerate the golden snapshots after "
        "reviewing the diff"
    )
    for file, (name, snapshot) in zip(files, snapshots.items()):
        assert snapshot == file.read_text(), (
            f"IR after pass {name!r} ({variant} pipeline) drifted from "
            f"{file}"
        )


def test_variant_pipelines_are_distinct():
    """Each variant is a genuine pipeline edit, not a hidden branch."""
    names = {v: list(_snapshots(v)) for v in VARIANTS}
    assert "batch-isolation" in names["batched"]
    assert "batch-isolation" not in names["default"]
    assert "epilogue-fusion" in names["fused"]
    assert "rma-derivation" not in names["no-rma"]
    assert "rma-derivation" in names["default"]


def test_final_snapshot_tree_matches_repo_golden():
    """The snapshot after the communication pass is the same tree the
    long-standing ``schedule_tree_full.txt`` golden locks down."""
    snapshots = _snapshots("default")
    tree = snapshots["latency-hiding"].split("--- schedule tree ---\n", 1)[1]
    golden = (GOLDEN.parent / "schedule_tree_full.txt").read_text()
    assert tree == golden
