"""Quasi-affine → C expression rendering."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.codegen.printer import aff_to_c
from repro.poly.affine import aff_const, aff_var


def test_constants_and_vars():
    assert aff_to_c(aff_const(0)) == "0"
    assert aff_to_c(aff_const(-3)) == "-3"
    assert aff_to_c(aff_var("ko")) == "ko"


def test_linear_combination():
    expr = aff_var("Rid") * 64 + aff_var("ic") * 512
    # Terms render in (ASCII) sorted variable order, deterministically.
    assert aff_to_c(expr) == "64 * Rid + 512 * ic"


def test_negative_coefficients():
    assert aff_to_c(aff_var("x") - aff_var("y")) == "x - y"
    assert aff_to_c(-aff_var("x")) == "-x"


def test_floordiv_rendering():
    assert aff_to_c(aff_var("K").floordiv(256)) == "((K) / 256)"


def test_mod_pattern_detected():
    assert aff_to_c(aff_var("ko").mod(2)) == "(ko) % 2"
    assert aff_to_c((aff_var("ko") + 1).mod(2)) == "(ko + 1) % 2"


def test_non_mod_floordiv_combination():
    expr = aff_var("k").floordiv(32) - aff_var("k").floordiv(256) * 8
    text = aff_to_c(expr)
    assert "/" in text and "%" not in text


def _c_eval(text: str, env: dict) -> int:
    """Evaluate the rendered C with C semantics (// for / on non-negatives)."""
    py = text.replace("/", "//")
    return eval(py, {}, env)  # noqa: S307 - test-only, on generated text


@given(
    a=st.integers(-5, 5), b=st.integers(-5, 5), c=st.integers(-20, 20),
    d=st.integers(1, 9), x=st.integers(0, 200), y=st.integers(0, 200),
)
@settings(max_examples=120, deadline=None)
def test_prop_rendered_c_evaluates_identically(a, b, c, d, x, y):
    expr = (aff_var("x") * a + aff_var("y") * b + c).floordiv(d) + (
        aff_var("x").mod(d)
    )
    env = {"x": x, "y": y}
    # Guard: C's / truncates toward zero, Python's // floors — they agree
    # on non-negative numerators, which is all the compiler ever emits.
    inner = a * x + b * y + c
    if inner < 0:
        return
    rendered = aff_to_c(expr)
    assert _c_eval(rendered, env) == expr.evaluate(env)
