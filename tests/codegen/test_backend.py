"""The kernel backend layer (:mod:`repro.codegen.backend`).

Covers the registry, the vendor backend's bit-exact equivalence with the
pre-refactor ``get_kernel`` path, the parametric generator's legality
checks and cost model, and ``resolve_kernel`` as the single entry point
the pipeline/lowering/executor share.
"""

import numpy as np
import pytest

from repro.codegen.backend import (
    DEFAULT_BACKEND,
    GeneratedMicroKernel,
    ParametricKernelBackend,
    VendorKernelBackend,
    backend_names,
    get_backend,
    resolve_kernel,
    select_register_block,
)
from repro.codegen.microkernel import AsmMicroKernel, NaiveKernel, get_kernel
from repro.core.options import CompilerOptions, TileConfig
from repro.errors import ConfigurationError
from repro.sunway.arch import SW26010, SW26010PRO, MicroKernelShape


class TestRegistry:
    def test_both_backends_registered(self):
        assert set(backend_names()) >= {"vendor", "parametric"}

    def test_default_is_vendor(self):
        assert DEFAULT_BACKEND == "vendor"
        assert get_backend(None).name == "vendor"
        assert get_backend().name == "vendor"

    def test_lookup_by_name(self):
        assert isinstance(get_backend("vendor"), VendorKernelBackend)
        assert isinstance(get_backend("parametric"), ParametricKernelBackend)

    def test_unknown_backend_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown kernel backend"):
            get_backend("no-such-backend")


class TestVendorBackend:
    def test_bit_exact_with_pre_refactor_get_kernel(self):
        """The default path must not change at all: same class, same
        name, same cost as the pre-backend ``get_kernel``."""
        shape = SW26010PRO.micro_kernel
        old = get_kernel(SW26010PRO, use_asm=True)
        new = get_backend("vendor").generate(
            shape, SW26010PRO.simd_doubles, SW26010PRO
        )
        assert type(new) is AsmMicroKernel
        assert new.name == old.name == "asm_dgemm_64x64x32"
        assert new.seconds_per_call == old.seconds_per_call

    def test_accepts_non_contract_shapes(self):
        """The tuner compiles non-default shapes under vendor names; the
        vendor backend must keep admitting them."""
        kernel = get_backend("vendor").generate(
            MicroKernelShape(32, 128, 16), SW26010PRO.simd_doubles, SW26010PRO
        )
        assert kernel.name == "asm_dgemm_32x128x16"


class TestParametricBackend:
    def test_generates_at_contract_shape(self):
        kernel = get_backend("parametric").generate(
            SW26010PRO.micro_kernel, SW26010PRO.simd_doubles, SW26010PRO
        )
        assert isinstance(kernel, GeneratedMicroKernel)
        assert kernel.name == "gen_dgemm_64x64x32"

    def test_generated_kernel_is_numerically_exact(self):
        shape = MicroKernelShape(16, 16, 8)
        kernel = get_backend("parametric").generate(
            shape, SW26010PRO.simd_doubles, SW26010PRO
        )
        rng = np.random.default_rng(0)
        a = rng.random((16, 8))
        b = rng.random((8, 16))
        c = rng.random((16, 16))
        expected = c + 0.5 * (a @ b)
        kernel.execute(c, a, b, 0.5)
        np.testing.assert_array_equal(c, expected)

    def test_generated_kernel_slower_than_vendor_at_contract(self):
        """The per-register-block overhead keeps the vendor object the
        measured optimum at its own shape (§7.2 survives)."""
        shape = SW26010PRO.micro_kernel
        vendor = get_backend("vendor").generate(
            shape, SW26010PRO.simd_doubles, SW26010PRO
        )
        generated = get_backend("parametric").generate(
            shape, SW26010PRO.simd_doubles, SW26010PRO
        )
        assert generated.seconds_per_call > vendor.seconds_per_call
        # ... but only by the modelled overhead, not grossly.
        assert generated.seconds_per_call < 1.10 * vendor.seconds_per_call

    def test_register_block_fits_register_file(self):
        rm, rn_vecs = select_register_block(
            SW26010PRO.micro_kernel, SW26010PRO
        )
        assert (rm, rn_vecs) == (8, 2)
        assert rm * rn_vecs + rn_vecs + 2 <= SW26010PRO.vector_registers

    def test_refuses_non_simd_multiple_nt(self):
        reason = get_backend("parametric").supports(
            MicroKernelShape(64, 36, 32), SW26010PRO
        )
        assert reason is not None and "SIMD" in reason

    def test_refuses_shallow_reduction(self):
        reason = get_backend("parametric").supports(
            MicroKernelShape(64, 64, 1), SW26010PRO
        )
        assert reason is not None

    def test_refuses_spm_overflow(self):
        reason = get_backend("parametric").supports(
            MicroKernelShape(64, 64, 32).__class__(256, 256, 128), SW26010
        )
        assert reason is not None and "SPM" in reason

    def test_generate_raises_configuration_error_on_refusal(self):
        with pytest.raises(ConfigurationError, match="cannot generate"):
            get_backend("parametric").generate(
                MicroKernelShape(64, 36, 32), SW26010PRO.simd_doubles,
                SW26010PRO,
            )

    def test_source_is_self_contained_simd_c(self):
        kernel = get_backend("parametric").generate(
            SW26010PRO.micro_kernel, SW26010PRO.simd_doubles, SW26010PRO
        )
        source = kernel.source()
        assert "gen_dgemm_64x64x32" in source
        assert "doublev8" in source


class TestResolveKernel:
    def test_default_options_yield_vendor_kernel(self):
        kernel = resolve_kernel(SW26010PRO, CompilerOptions())
        assert type(kernel) is AsmMicroKernel

    def test_no_asm_bypasses_backends(self):
        kernel = resolve_kernel(SW26010PRO, CompilerOptions.baseline())
        assert type(kernel) is NaiveKernel

    def test_backend_option_selects_generator(self):
        options = CompilerOptions(kernel_backend="parametric")
        kernel = resolve_kernel(SW26010PRO, options)
        assert isinstance(kernel, GeneratedMicroKernel)

    def test_tile_config_steers_shape(self):
        options = CompilerOptions(tile_config=TileConfig(32, 32, 16))
        kernel = resolve_kernel(SW26010PRO, options)
        assert kernel.shape == MicroKernelShape(32, 32, 16)

    def test_explicit_shape_wins(self):
        kernel = resolve_kernel(
            SW26010PRO, CompilerOptions(), MicroKernelShape(32, 64, 16)
        )
        assert kernel.shape == MicroKernelShape(32, 64, 16)

    def test_unknown_backend_name_rejected_at_option_construction(self):
        with pytest.raises(ConfigurationError, match="unknown kernel backend"):
            CompilerOptions(kernel_backend="bogus")
