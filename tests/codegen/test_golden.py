"""Golden-file tests: the generated artefacts are locked byte-for-byte.

Any change to the compiler that alters the emitted athread C or the final
schedule tree shows up as a diff here — review it, then regenerate with::

    python -c "from tests.codegen.test_golden import regenerate; regenerate()"
"""

from pathlib import Path

import pytest

from repro.core import CompilerOptions, GemmCompiler, GemmSpec
from repro.sunway.arch import SW26010PRO

GOLDEN = Path(__file__).parent.parent / "golden"


def _program():
    return GemmCompiler(SW26010PRO, CompilerOptions.full()).compile(GemmSpec())


def regenerate() -> None:  # pragma: no cover - maintenance helper
    program = _program()
    (GOLDEN / "gemm_cpe_full.c").write_text(program.cpe_source())
    (GOLDEN / "gemm_mpe_full.c").write_text(program.mpe_source())
    (GOLDEN / "schedule_tree_full.txt").write_text(program.tree_dump() + "\n")


@pytest.fixture(scope="module")
def program():
    return _program()


def test_cpe_source_matches_golden(program):
    assert program.cpe_source() == (GOLDEN / "gemm_cpe_full.c").read_text()


def test_mpe_source_matches_golden(program):
    assert program.mpe_source() == (GOLDEN / "gemm_mpe_full.c").read_text()


def test_schedule_tree_matches_golden(program):
    assert program.tree_dump() + "\n" == (
        GOLDEN / "schedule_tree_full.txt"
    ).read_text()


def test_golden_tree_contains_every_fig11_construct():
    text = (GOLDEN / "schedule_tree_full.txt").read_text()
    for token in (
        "DOMAIN", "BAND", "SEQUENCE", "FILTER", "EXTENSION",
        'MARK: "micro_kernel"', "mesh_row", "mesh_col",
        "getA_0", "getA_x1", "rbcastA_0", "cbcastB_l1", "synch",
    ):
        assert token in text, token
