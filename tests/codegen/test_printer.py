"""The athread C pretty-printer (§7)."""

import pytest

from repro.core import CompilerOptions, GemmCompiler, GemmSpec
from repro.sunway.arch import SW26010PRO


def program_for(options, spec=None):
    spec = spec or GemmSpec(batch_param="BS" if options.batch else None)
    return GemmCompiler(SW26010PRO, options).compile(spec)


@pytest.fixture(scope="module")
def full_src():
    return program_for(CompilerOptions.full()).cpe_source()


def test_buffer_declarations(full_src):
    assert "__thread_local double local_C[64][64];" in full_src
    assert "__thread_local double local_A_dma[2][64][32];" in full_src
    assert "__thread_local double local_B_bc[2][32][64];" in full_src


def test_reply_declarations(full_src):
    assert "__thread_local volatile int get_replyA[2];" in full_src
    assert "__thread_local volatile int get_replyC[1];" in full_src


def test_dma_iget_arguments_match_section4(full_src):
    """dma_iget(&local_..., &Matrix[r][c], size, len, Y-Y_tau, &reply)."""
    assert (
        "dma_iget(&local_C[0][0], &C[64 * Rid + 512 * ic][64 * Cid + 512 * jc], "
        "4096, 64, (N - 64), &get_replyC[0]);" in full_src
    )
    assert "2048, 32, (K - 32), &get_replyA[0]);" in full_src


def test_prefetch_uses_next_parity(full_src):
    assert "&local_A_dma[(ko + 1) % 2][0][0]" in full_src
    assert "&get_replyA[(ko + 1) % 2]" in full_src
    assert "256 * ko + 256" in full_src  # the k chunk of iteration ko+1


def test_rma_broadcast_syntax(full_src):
    assert "rma_row_ibcast(&local_A_bc[" in full_src
    assert "rma_col_ibcast(&local_B_bc[" in full_src
    assert "&rbcast_replysA[" in full_src and "&rbcast_replyrA[" in full_src


def test_owner_guards(full_src):
    assert "if ((Cid == km + 1))" in full_src or "if ((Cid == (km + 1)))" in full_src
    assert "if ((Rid == 0))" in full_src


def test_synch_before_broadcast(full_src):
    before, _, after = full_src.partition("rma_row_ibcast")
    assert "athread_ssync_array();" in before


def test_kernel_invocation(full_src):
    assert (
        "asm_dgemm_64x64x32(&local_C[0][0], &local_A_bc[(km) % 2][0][0], "
        "&local_B_bc[(km) % 2][0][0], alpha);" in full_src
    )
    assert "extern void asm_dgemm_64x64x32" in full_src


def test_beta_scaling_loop(full_src):
    assert "local_C[r][c] *= beta;" in full_src


def test_wait_guard_for_prefetch(full_src):
    # The ko <= Ko-2 issue guard of Fig. 11.
    assert "((K) / 256) - 2 >= 0" in full_src


def test_compile_commands_documented(full_src):
    assert "swgcc -mslave -msimd -O3" in full_src


def test_no_asm_variant_prints_scalar_loops():
    src = program_for(CompilerOptions.baseline()).cpe_source()
    assert "asm_dgemm" not in src
    assert "for (int ip = 0; ip < 64; ip++)" in src
    assert "local_C[0][ip][jp]" not in src  # single-slot C drops the slot
    assert "+=" in src


def test_fusion_prologue_prints_elementwise():
    options = CompilerOptions.full().with_(fusion="prologue")
    src = program_for(options, GemmSpec(prologue_func="quant")).cpe_source()
    assert "round(" in src
    assert "local_A_dma" in src


def test_fusion_epilogue_prints_activation():
    options = CompilerOptions.full().with_(fusion="epilogue", epilogue_func="relu")
    src = program_for(options, GemmSpec(epilogue_func="relu")).cpe_source()
    assert "fmax(" in src


def test_batched_indexing():
    options = CompilerOptions.full().with_(batch=True)
    src = program_for(options).cpe_source()
    assert "for (int b = 0; b < BS; b++)" in src
    assert "&A[b][" in src


def test_mpe_source_structure():
    program = program_for(CompilerOptions.full())
    src = program.mpe_source()
    assert "athread_init();" in src
    assert "athread_spawn(slave_swgemm_cpe, &args);" in src
    assert "athread_join();" in src
    assert "memalign(128," in src
    assert "-faddress_align=128" in src


def test_sources_are_deterministic():
    a = program_for(CompilerOptions.full()).cpe_source()
    b = program_for(CompilerOptions.full()).cpe_source()
    assert a == b


def test_rma_free_variant_has_no_broadcast_text():
    src = program_for(CompilerOptions.with_asm()).cpe_source()
    assert "rma_" not in src
    assert "athread_ssync_array" not in src
    assert "dma_iget" in src
