"""Stage 1 of the search: the analytical pruner."""

import pytest

from repro.core import CompilerOptions, GemmSpec
from repro.core.options import TileConfig
from repro.sunway.arch import SW26010PRO, TOY_ARCH
from repro.tune import (
    Candidate,
    analyze,
    default_candidate,
    enumerate_candidates,
    predict_gflops,
    prune,
)


@pytest.mark.parametrize(
    "shape",
    [(4096, 4096, 4096), (576, 1024, 512), (64, 64, 64), (192, 576, 384)],
)
def test_pruner_never_rejects_the_analytical_default(shape):
    """The 64x64x32 point is provably feasible on SW26010Pro (§3.1); a
    pruner that drops it would be rejecting the paper's own kernel."""
    base = CompilerOptions.full()
    candidates = enumerate_candidates(SW26010PRO, base)
    survivors, _ = prune(
        GemmSpec(), SW26010PRO, base, candidates, shape=shape
    )
    default = default_candidate(SW26010PRO, base)
    assert default.name() in {s.candidate.name() for s in survivors}


def test_default_candidate_is_feasible_on_both_arches():
    for arch in (SW26010PRO, TOY_ARCH):
        base = CompilerOptions.full()
        result = analyze(
            GemmSpec(), arch, base, default_candidate(arch, base)
        )
        assert result.feasible, result.reason
        assert result.predicted_gflops > 0
        assert result.spm_slack_bytes >= 0


def test_oversized_tile_is_infeasible():
    base = CompilerOptions.full()
    huge = Candidate(TileConfig(256, 256, 256))
    result = analyze(GemmSpec(), SW26010PRO, base, huge)
    assert not result.feasible
    assert result.reason


def test_prune_keeps_a_sorted_feasible_fraction():
    base = CompilerOptions.full()
    candidates = enumerate_candidates(SW26010PRO, base)
    survivors, rejected = prune(
        GemmSpec(), SW26010PRO, base, candidates, shape=(576, 1024, 512)
    )
    assert survivors
    assert len(survivors) < len(candidates)
    predicted = [s.predicted_gflops for s in survivors]
    assert predicted == sorted(predicted, reverse=True)
    assert all(s.feasible for s in survivors)
    assert len(survivors) + len(rejected) == len(candidates)


def test_prediction_penalises_padding_waste():
    """The useful-flops fraction is what makes small tiles win on ragged
    shapes: the same plan predicts lower when the shape pads badly."""
    base = CompilerOptions.full()
    default = default_candidate(SW26010PRO, base)
    aligned = analyze(
        GemmSpec(), SW26010PRO, base, default, shape=(4096, 4096, 4096)
    )
    ragged = analyze(
        GemmSpec(), SW26010PRO, base, default, shape=(192, 576, 384)
    )
    assert ragged.predicted_gflops < aligned.predicted_gflops


def test_enumeration_is_deterministic_and_contains_default():
    base = CompilerOptions.full()
    first = [c.name() for c in enumerate_candidates(SW26010PRO, base)]
    second = [c.name() for c in enumerate_candidates(SW26010PRO, base)]
    assert first == second
    assert default_candidate(SW26010PRO, base).name() in first


def test_enumeration_respects_disabled_knobs():
    no_rma = CompilerOptions.full().with_(enable_rma=False)
    candidates = enumerate_candidates(SW26010PRO, no_rma)
    assert candidates
    assert all(":dma" in c.name() for c in candidates)
    assert not any(c.enable_rma for c in candidates)


def test_predict_gflops_never_exceeds_machine_peak():
    base = CompilerOptions.full()
    for candidate in enumerate_candidates(SW26010PRO, base):
        result = analyze(GemmSpec(), SW26010PRO, base, candidate)
        if result.feasible:
            assert 0 < result.predicted_gflops <= SW26010PRO.peak_gflops
