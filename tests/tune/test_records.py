"""Shape-class bucketing, record keys, and the record store."""

import pytest

from repro.core import CompilerOptions, GemmSpec
from repro.core.options import TileConfig
from repro.sunway.arch import SW26010PRO, TOY_ARCH
from repro.tune import (
    Candidate,
    TuningRecord,
    TuningRecordStore,
    record_key,
    shape_bucket,
    shape_class,
    spec_class,
)
from repro.tune.space import SEARCH_SPACE_VERSION


def _record(key="k", seed=0, gflops=100.0):
    return TuningRecord(
        key=key,
        shape_class=(512, 1024, 512, 1),
        arch_name=SW26010PRO.name,
        space_version=SEARCH_SPACE_VERSION,
        candidate=Candidate(TileConfig(32, 128, 32)),
        best_gflops=gflops,
        default_gflops=80.0,
        measurements=7,
        seed=seed,
    )


# -- bucketing ---------------------------------------------------------------


def test_shape_bucket_snaps_to_nearest_power_of_two():
    assert shape_bucket(1) == 1
    assert shape_bucket(64) == 64
    assert shape_bucket(96) == 128   # 2*96 >= 3*64 -> round up
    assert shape_bucket(95) == 64
    assert shape_bucket(576) == 512
    assert shape_bucket(1500) == 1024  # 3000 < 3*1024: still "about 1024"
    assert shape_bucket(1536) == 2048


def test_shape_class_buckets_every_dimension():
    assert shape_class(576, 1024, 512) == (512, 1024, 512, 1)
    assert shape_class(32, 256, 256, batch=256) == (32, 256, 256, 256)


def test_nearby_shapes_share_a_class():
    assert shape_class(576, 1024, 512) == shape_class(600, 900, 480)
    assert shape_class(576, 1024, 512) != shape_class(2048, 1024, 512)


# -- keys --------------------------------------------------------------------


def test_record_key_is_deterministic():
    a = record_key(GemmSpec(), SW26010PRO, (512, 1024, 512, 1))
    b = record_key(GemmSpec(), SW26010PRO, (512, 1024, 512, 1))
    assert a == b


def test_record_key_separates_arch_shape_and_spec_kind():
    base = record_key(GemmSpec(), SW26010PRO, (512, 512, 512, 1))
    assert record_key(GemmSpec(), TOY_ARCH, (512, 512, 512, 1)) != base
    assert record_key(GemmSpec(), SW26010PRO, (512, 512, 512, 4)) != base
    batched = GemmSpec(batch_param="BS")
    assert record_key(batched, SW26010PRO, (512, 512, 512, 1)) != base


def test_spec_class_ignores_parameter_naming():
    assert spec_class(GemmSpec()) == spec_class(GemmSpec(m_param="MM"))
    assert spec_class(GemmSpec()) != spec_class(GemmSpec(trans_a=True))


# -- the store ---------------------------------------------------------------


def test_memory_store_round_trip():
    store = TuningRecordStore(None)
    record = _record()
    store.put(record)
    assert store.get("k") == record
    assert store.keys() == ["k"]
    assert store.get("missing") is None


def test_disk_store_round_trip(tmp_path):
    store = TuningRecordStore(tmp_path / "tuning")
    record = _record(key="abc123")
    store.put(record)
    # A fresh store over the same directory sees the record.
    again = TuningRecordStore(tmp_path / "tuning")
    assert again.get("abc123") == record
    assert again.records() == [record]


def test_clear_removes_records(tmp_path):
    store = TuningRecordStore(tmp_path / "tuning")
    store.put(_record(key="a"))
    store.put(_record(key="b"))
    assert store.clear() == 2
    assert store.keys() == []


def test_journal_round_trip(tmp_path):
    store = TuningRecordStore(tmp_path / "tuning")
    store.journal_save("k", {"64x64x32:rma+hide": 123.4})
    assert store.journal_load("k") == {"64x64x32:rma+hide": 123.4}
    store.journal_clear("k")
    assert store.journal_load("k") == {}


def test_journals_do_not_shadow_records(tmp_path):
    store = TuningRecordStore(tmp_path / "tuning")
    store.put(_record(key="a"))
    store.journal_save("b", {"x": 1.0})
    assert store.keys() == ["a"]


def test_stats_counts_hits_and_writes():
    store = TuningRecordStore(None)
    store.put(_record(key="a"))
    store.get("a")
    store.get("nope")
    stats = store.stats()
    assert stats["records"] == 1
    assert stats["hits"] == 1
    assert stats["misses"] == 1
    assert stats["writes"] == 1


def test_record_improvement_and_apply():
    record = _record(gflops=100.0)
    assert record.improvement == pytest.approx(0.25)
    opts = record.apply(CompilerOptions.full())
    assert opts.tile_config == TileConfig(32, 128, 32)
