"""Stage 2 of the search: the seeded, journal-resumable driver.

Everything runs on TOY_ARCH so a whole search takes well under a second.
"""

import pytest

from repro.core import CompilerOptions, GemmSpec
from repro.service import CompileService, ServiceConfig
from repro.sunway.arch import TOY_ARCH
from repro.tune import (
    TuneOptions,
    Tuner,
    TuningRecordStore,
    record_key,
    shape_class,
)

SHAPE = dict(M=128, N=128, K=64)


def _tuner(store=None):
    return Tuner(
        TOY_ARCH,
        service=CompileService(ServiceConfig()),
        store=store or TuningRecordStore(None),
    )


def test_same_seed_same_record():
    opts = TuneOptions(seed=42, max_measurements=6)
    first = _tuner().tune(tune_options=opts, **SHAPE)
    second = _tuner().tune(tune_options=opts, **SHAPE)
    assert first.record == second.record
    assert [t.candidate.name() for t in first.trials] == [
        t.candidate.name() for t in second.trials
    ]


def test_winner_never_loses_to_the_default():
    result = _tuner().tune(
        tune_options=TuneOptions(seed=3, max_measurements=6), **SHAPE
    )
    assert result.record.best_gflops >= result.record.default_gflops


def test_measurement_budget_is_respected():
    result = _tuner().tune(
        tune_options=TuneOptions(seed=0, max_measurements=4), **SHAPE
    )
    assert result.measured <= 4


def test_record_is_stored_and_journal_cleared():
    store = TuningRecordStore(None)
    result = _tuner(store).tune(
        tune_options=TuneOptions(seed=0, max_measurements=5), **SHAPE
    )
    assert store.get(result.record.key) == result.record
    assert store.journal_load(result.record.key) == {}


def test_journal_resume_skips_remeasurement():
    """A journal left by an interrupted search is trusted verbatim: its
    entries cost no measurement budget on the next run."""
    store = TuningRecordStore(None)
    key = record_key(
        GemmSpec(), TOY_ARCH, shape_class(SHAPE["M"], SHAPE["N"], SHAPE["K"])
    )
    complete = _tuner(TuningRecordStore(None)).tune(
        tune_options=TuneOptions(seed=9, max_measurements=6), **SHAPE
    )
    store.journal_save(
        key, {t.candidate.name(): t.gflops for t in complete.trials}
    )
    resumed = _tuner(store).tune(
        tune_options=TuneOptions(seed=9, max_measurements=6), **SHAPE
    )
    assert resumed.resumed == len(complete.trials)
    # Journal entries cost no budget, so the resumed search explores at
    # least as far and never ends up worse.
    assert resumed.record.best_gflops >= complete.record.best_gflops


def test_batched_shape_gets_a_batched_spec():
    result = _tuner().tune(
        M=32, N=64, K=32, batch=8,
        tune_options=TuneOptions(seed=0, max_measurements=4),
    )
    assert result.record.shape_class[3] == 8


def test_base_tile_config_is_a_search_origin_not_a_pin():
    from repro.core.options import TileConfig

    base = CompilerOptions.full().with_(tile_config=TileConfig(4, 4, 4))
    result = _tuner().tune(
        base_options=base,
        tune_options=TuneOptions(seed=0, max_measurements=4),
        **SHAPE,
    )
    # The search still explored the space instead of measuring one pin.
    assert result.candidates_total > 1


def test_hill_climb_and_exhaustive_strategies():
    small_budget = _tuner().tune(
        tune_options=TuneOptions(seed=0, max_measurements=4), **SHAPE
    )
    assert small_budget.strategy == "hill-climb"
    big_budget = _tuner().tune(
        tune_options=TuneOptions(seed=0, max_measurements=10_000), **SHAPE
    )
    assert big_budget.strategy == "exhaustive"
    # Exhaustive search is the ground truth the heuristic approximates.
    assert (
        big_budget.record.best_gflops >= small_budget.record.best_gflops
    )
