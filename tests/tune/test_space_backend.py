"""The kernel-backend axis of the search space (PR 8).

Micro-kernel shape was already searchable; PR 8 makes the *generator*
searchable too.  Vendor candidates must stay byte-identical with the v1
space (names, options, cache keys), parametric candidates must appear
exactly when the asm path is on, and shapes the parametric backend
refuses must come back infeasible from the pruner — not crash it.
"""

from repro.core.options import CompilerOptions, TileConfig
from repro.core.spec import GemmSpec
from repro.sunway.arch import SW26010PRO
from repro.tune.pruner import analyze
from repro.tune.space import (
    SEARCH_SPACE_VERSION,
    Candidate,
    default_candidate,
    enumerate_candidates,
    neighbors,
)


def test_space_version_bumped_for_backend_axis():
    assert SEARCH_SPACE_VERSION == 3


def test_vendor_candidate_names_unchanged_from_v1():
    """The default backend adds no suffix, so tuning-record config
    strings written before the backend axis existed still match."""
    c = Candidate(TileConfig(64, 64, 32, buffer_depth=2, k_strip=8))
    assert c.kernel_backend == "vendor"
    assert ":vendor" not in c.name()
    parametric = Candidate(
        TileConfig(64, 64, 32, buffer_depth=2, k_strip=8),
        kernel_backend="parametric",
    )
    assert parametric.name().endswith(":parametric")


def test_vendor_candidate_maps_to_none_backend():
    """``vendor`` normalises to ``kernel_backend=None`` so the steered
    options share cache keys with pre-backend compiles."""
    base = CompilerOptions.full()
    c = Candidate(TileConfig(64, 64, 32), kernel_backend="vendor")
    assert c.apply(base).kernel_backend is None
    p = Candidate(TileConfig(64, 64, 32), kernel_backend="parametric")
    assert p.apply(base).kernel_backend == "parametric"


def test_backend_axis_doubles_the_asm_space():
    base = CompilerOptions.full()
    candidates = enumerate_candidates(SW26010PRO, base)
    backends = {c.kernel_backend for c in candidates}
    assert backends == {"vendor", "parametric"}
    vendor = [c for c in candidates if c.kernel_backend == "vendor"]
    parametric = [c for c in candidates if c.kernel_backend == "parametric"]
    assert len(vendor) == len(parametric)


def test_no_asm_space_has_no_parametric_candidates():
    base = CompilerOptions.baseline()
    candidates = enumerate_candidates(SW26010PRO, base)
    assert {c.kernel_backend for c in candidates} == {"vendor"}


def test_default_candidate_is_vendor():
    assert (
        default_candidate(SW26010PRO, CompilerOptions.full()).kernel_backend
        == "vendor"
    )


def test_backend_is_one_knob_for_hill_climbing():
    pool = enumerate_candidates(SW26010PRO, CompilerOptions.full())
    start = default_candidate(SW26010PRO, CompilerOptions.full())
    anchor = next(c for c in pool if c.knobs() == start.knobs())
    steps = list(neighbors(anchor, pool))
    # The backend flip at the same tile/pipeline point is a neighbour.
    assert any(
        s.kernel_backend == "parametric" and s.tile == anchor.tile
        for s in steps
    )


def test_pruner_marks_backend_refused_shapes_infeasible():
    """nt=36 is not a multiple of the 8-double SIMD width, so the
    parametric backend refuses it; the pruner must turn that refusal
    into an infeasible verdict, not an exception."""
    spec = GemmSpec()
    base = CompilerOptions.full()
    refused = Candidate(
        TileConfig(64, 36, 32, buffer_depth=2, k_strip=8),
        kernel_backend="parametric",
    )
    verdict = analyze(spec, SW26010PRO, base, refused)
    assert not verdict.feasible
    assert "parametric" in verdict.reason

    accepted = Candidate(
        TileConfig(64, 64, 32, buffer_depth=2, k_strip=8),
        kernel_backend="parametric",
    )
    assert analyze(spec, SW26010PRO, base, accepted).feasible
