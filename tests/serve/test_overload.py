"""Overload protection: bounded queues, deadlines, brownout, health.

Three layers are pinned down here:

* the **queue** (admission watermarks, shed-below, expired-in-queue)
  and the **brownout controller** single-threadedly with fake clocks —
  the policies are deterministic functions of their inputs;
* the **budget arithmetic** (`deadline_at` / `remaining_s` /
  `is_expired` / `merge_timeout`) with Hypothesis, because every later
  layer (queue, dispatch, worker timeout) leans on these four
  functions being boringly correct;
* the **daemon end to end** over real sockets: a request whose
  deadline dies in the queue provably never reaches a worker, the
  `health` op reports the overload surface, brownout fast-fails cold
  compiles while serving warm ones, and an unconfigured daemon keeps
  the historical wire behaviour byte for byte.
"""

import threading
import time

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import (
    ConfigurationError,
    DeadlineExceededError,
    DegradedModeError,
    OverloadError,
    ProtocolError,
)
from repro.serve import Client, ServeConfig, start_in_thread
from repro.serve.overload import (
    BROWNOUT,
    HEALTHY,
    BrownoutController,
    OverloadConfig,
    class_caps,
    deadline_at,
    is_expired,
    merge_timeout,
    remaining_s,
)
from repro.serve.protocol import Request
from repro.serve.queue import (
    RETRY_AFTER_DEFAULT_S,
    RETRY_AFTER_MAX_S,
    RETRY_AFTER_MIN_S,
    FairPriorityQueue,
)
from repro.serve.quotas import DEFAULT_COSTS
from repro.service import CompileService, ServiceConfig


class FakeClock:
    def __init__(self, now=0.0):
        self.now = now

    def __call__(self):
        return self.now

    def advance(self, dt):
        self.now += dt


# ---------------------------------------------------------------------------
# class_caps / OverloadConfig
# ---------------------------------------------------------------------------


def test_class_caps_ordering_and_floor():
    caps = class_caps(12)
    assert caps == {"interactive": 12, "batch": 8, "warmup": 4}
    # Tiny depths: every class keeps at least one slot, ordering holds.
    for depth in range(1, 8):
        caps = class_caps(depth)
        assert caps["warmup"] >= 1
        assert caps["warmup"] <= caps["batch"] <= caps["interactive"] == depth
    with pytest.raises(ConfigurationError):
        class_caps(0)


def test_overload_config_off_by_default():
    config = OverloadConfig()
    assert not config.enabled
    assert config.caps() is None
    assert config.controller() is None


def test_overload_config_validation():
    with pytest.raises(ConfigurationError):
        OverloadConfig(max_queue_depth=0)
    with pytest.raises(ConfigurationError):
        OverloadConfig(deadline_default_ms=-5.0)
    with pytest.raises(ConfigurationError):
        OverloadConfig(brownout_exit_ms=10.0)  # exit without enter
    with pytest.raises(ConfigurationError):
        OverloadConfig(brownout_enter_ms=50.0, brownout_exit_ms=80.0)
    with pytest.raises(ConfigurationError):
        OverloadConfig(ewma_alpha=0.0)


# ---------------------------------------------------------------------------
# Bounded queue: admission, shedding, expiry
# ---------------------------------------------------------------------------


def test_arrival_over_watermark_is_rejected_when_nothing_lower():
    queue = FairPriorityQueue(caps=class_caps(2))
    queue.put("a", priority="interactive", tenant="t")
    queue.put("b", priority="interactive", tenant="t")
    with pytest.raises(OverloadError) as excinfo:
        queue.put("c", priority="interactive", tenant="t")
    exc = excinfo.value
    assert exc.priority == "interactive"
    assert not exc.shed
    assert exc.retry_after_s == RETRY_AFTER_DEFAULT_S  # no drain observed yet
    assert queue.rejected["interactive"] == 1
    assert len(queue) == 2  # the rejected arrival was never admitted


def test_interactive_arrival_sheds_youngest_lowest_class():
    dropped = []
    queue = FairPriorityQueue(caps=class_caps(3))  # i=3, b=2, w=1
    queue.drop_handler = lambda item, exc: dropped.append((item, exc))
    queue.put("w0", priority="warmup", tenant="t")
    queue.put("b0", priority="batch", tenant="t")
    queue.put("i0", priority="interactive", tenant="t")
    # Queue is at the interactive watermark (3); the next interactive
    # arrival evicts the warmup entry (lowest class) instead of failing.
    queue.put("i1", priority="interactive", tenant="t")
    assert len(dropped) == 1
    victim, exc = dropped[0]
    assert victim == "w0"
    assert isinstance(exc, OverloadError) and exc.shed
    assert exc.priority == "warmup"
    assert queue.shed["warmup"] == 1
    # Scheduling order is unharmed: interactive first, then batch.
    assert queue.get(timeout=0) == "i0"
    assert queue.get(timeout=0) == "i1"
    assert queue.get(timeout=0) == "b0"


def test_warmup_arrival_cannot_shed_higher_classes():
    queue = FairPriorityQueue(caps=class_caps(3))  # warmup watermark = 1
    queue.put("i0", priority="interactive", tenant="t")
    with pytest.raises(OverloadError):
        queue.put("w0", priority="warmup", tenant="t")
    assert queue.rejected["warmup"] == 1
    assert queue.shed == {p: 0 for p in queue.shed}


def test_expired_entry_is_shed_at_pop_never_dispatched():
    clock = FakeClock()
    dropped = []
    queue = FairPriorityQueue(clock=clock)
    queue.drop_handler = lambda item, exc: dropped.append((item, exc))
    queue.put("dying", priority="batch", tenant="t", deadline_at=1.0)
    queue.put("alive", priority="batch", tenant="t")
    clock.advance(2.0)  # the first entry's budget is gone
    assert queue.get(timeout=0) == "alive"
    assert queue.expired["batch"] == 1
    victim, exc = dropped[0]
    assert victim == "dying"
    assert isinstance(exc, DeadlineExceededError)
    assert exc.phase == "queue"


def test_retry_after_tracks_observed_drain_rate():
    clock = FakeClock()
    queue = FairPriorityQueue(clock=clock, drain_alpha=1.0)
    for n in range(4):
        queue.put(n, priority="batch", tenant="t")
    queue.get(timeout=0)
    clock.advance(0.5)
    queue.get(timeout=0)  # observed drain interval: 0.5 s/dequeue
    # Two items left, 0.5 s each: the hint is the drain estimate.
    assert queue.retry_after_s() == pytest.approx(2 * 0.5)
    # And it is clamped to sane bounds however extreme the estimate.
    assert RETRY_AFTER_MIN_S <= queue.retry_after_s() <= RETRY_AFTER_MAX_S


def test_stats_reports_caps_and_overload_counters():
    queue = FairPriorityQueue(caps=class_caps(2))
    stats = queue.stats()
    assert stats["caps"] == class_caps(2)
    for key in ("shed", "expired", "rejected"):
        assert set(stats[key]) == {"interactive", "batch", "warmup"}
    assert stats["retry_after_s"] == RETRY_AFTER_DEFAULT_S


def test_wait_observer_receives_queue_wait_seconds():
    clock = FakeClock()
    waits = []
    queue = FairPriorityQueue(clock=clock)
    queue.wait_observer = waits.append
    queue.put("x", priority="interactive", tenant="t")
    clock.advance(0.25)
    queue.get(timeout=0)
    assert waits == [pytest.approx(0.25)]


# ---------------------------------------------------------------------------
# Brownout hysteresis (injectable clock)
# ---------------------------------------------------------------------------


def brownout(dwell=2.0, alpha=1.0, clock=None):
    return BrownoutController(
        enter_ms=100.0,
        exit_ms=50.0,
        min_dwell_s=dwell,
        alpha=alpha,
        clock=clock if clock is not None else FakeClock(),
    )


def test_brownout_enters_at_threshold_and_dwells():
    clock = FakeClock()
    ctrl = brownout(dwell=2.0, clock=clock)
    assert ctrl.observe(99.0) == HEALTHY  # below the enter threshold
    assert ctrl.observe(150.0) == BROWNOUT
    assert ctrl.entered == 1
    # EWMA already below the exit threshold, but the dwell forbids an
    # exit until 2 s have elapsed in brownout — no flapping.
    assert ctrl.observe(0.0) == BROWNOUT
    clock.advance(1.9)
    assert ctrl.observe(0.0) == BROWNOUT
    clock.advance(0.2)
    assert ctrl.observe(0.0) == HEALTHY
    assert ctrl.exited == 1


def test_brownout_exit_requires_ewma_below_exit_threshold():
    clock = FakeClock()
    ctrl = brownout(dwell=0.0, clock=clock)
    ctrl.observe(200.0)
    assert ctrl.state == BROWNOUT
    # 60 ms is below enter (100) but above exit (50): still browned out.
    assert ctrl.observe(60.0) == BROWNOUT
    assert ctrl.observe(40.0) == HEALTHY


def test_idle_observations_decay_the_ewma():
    ctrl = brownout(dwell=0.0, alpha=0.5)
    ctrl.observe(400.0)
    assert ctrl.state == BROWNOUT
    for _ in range(10):
        ctrl.idle()
    assert ctrl.state == HEALTHY
    assert ctrl.ewma_ms < 1.0


def test_brownout_transitions_are_logged():
    clock = FakeClock()
    ctrl = brownout(dwell=0.0, clock=clock)
    ctrl.observe(500.0)
    clock.advance(3.0)
    ctrl.observe(0.0)
    stats = ctrl.stats()
    assert [t["state"] for t in stats["transitions"]] == [BROWNOUT, HEALTHY]
    assert stats["entered"] == 1 and stats["exited"] == 1


# ---------------------------------------------------------------------------
# Deadline-budget arithmetic (property-tested)
# ---------------------------------------------------------------------------

finite = st.floats(
    min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False
)
budget_ms = st.floats(
    min_value=1e-3, max_value=1e6, allow_nan=False, allow_infinity=False
)
maybe_timeout = st.one_of(
    st.none(),
    st.floats(
        min_value=0.0, max_value=1e6, allow_nan=False, allow_infinity=False
    ),
)


@settings(max_examples=200, deadline=None)
@given(received=finite, deadline_ms=budget_ms, now=finite)
def test_remaining_budget_is_never_negative(received, deadline_ms, now):
    at = deadline_at(received, deadline_ms)
    left = remaining_s(at, now)
    assert left is not None and left >= 0.0


@settings(max_examples=200, deadline=None)
@given(
    received=finite,
    deadline_ms=budget_ms,
    now=finite,
    dt=st.floats(
        min_value=0.0, max_value=1e6, allow_nan=False, allow_infinity=False
    ),
)
def test_remaining_budget_is_monotone_in_time(received, deadline_ms, now, dt):
    at = deadline_at(received, deadline_ms)
    # Time only moves forward; the budget only shrinks.
    assert remaining_s(at, now + dt) <= remaining_s(at, now)


@settings(max_examples=200, deadline=None)
@given(received=finite, deadline_ms=budget_ms, now=finite)
def test_expired_iff_budget_exhausted(received, deadline_ms, now):
    at = deadline_at(received, deadline_ms)
    assert is_expired(at, now) == (remaining_s(at, now) == 0.0)


@settings(max_examples=200, deadline=None)
@given(now=finite)
def test_unbounded_deadline_never_expires(now):
    assert remaining_s(None, now) is None
    assert not is_expired(None, now)


@settings(max_examples=200, deadline=None)
@given(timeout_s=maybe_timeout, budget_s=maybe_timeout)
def test_merge_timeout_takes_the_tighter_bound(timeout_s, budget_s):
    merged = merge_timeout(timeout_s, budget_s)
    if timeout_s is None and budget_s is None:
        assert merged is None  # nothing bounds the worker
    else:
        for bound in (timeout_s, budget_s):
            if bound is not None:
                assert merged <= bound
        assert merged in (timeout_s, budget_s)


@settings(max_examples=100, deadline=None)
@given(
    waits=st.lists(
        st.floats(
            min_value=0.0, max_value=99.0, allow_nan=False, allow_infinity=False
        ),
        max_size=50,
    )
)
def test_hysteresis_never_enters_below_threshold(waits):
    # The EWMA of samples all below enter_ms can never reach enter_ms,
    # so no observation sequence of them causes a brownout.
    ctrl = brownout(dwell=0.0, alpha=0.3)
    for wait in waits:
        assert ctrl.observe(wait) == HEALTHY
    assert ctrl.entered == 0


@settings(max_examples=100, deadline=None)
@given(
    waits=st.lists(
        st.floats(
            min_value=0.0,
            max_value=1e4,
            allow_nan=False,
            allow_infinity=False,
        ),
        max_size=50,
    )
)
def test_hysteresis_never_exits_before_dwell(waits):
    # A frozen clock means the dwell can never elapse: once in
    # brownout, no observation sequence whatsoever flips it back.
    ctrl = brownout(dwell=2.0, clock=FakeClock())
    ctrl.observe(1e6)
    assert ctrl.state == BROWNOUT
    for wait in waits:
        assert ctrl.observe(wait) == BROWNOUT
    assert ctrl.exited == 0


@settings(max_examples=50, deadline=None)
@given(
    waits=st.lists(
        st.floats(
            min_value=0.0,
            max_value=1e4,
            allow_nan=False,
            allow_infinity=False,
        ),
        max_size=30,
    )
)
def test_hysteresis_is_deterministic(waits):
    # The controller is a pure function of (observations, clock): two
    # replays agree on every state and counter.
    a, b = brownout(clock=FakeClock()), brownout(clock=FakeClock())
    for wait in waits:
        assert a.observe(wait) == b.observe(wait)
    assert (a.entered, a.exited, a.ewma_ms) == (b.entered, b.exited, b.ewma_ms)


# ---------------------------------------------------------------------------
# Wire behaviour
# ---------------------------------------------------------------------------


def test_request_without_deadline_is_byte_identical_on_the_wire():
    base = dict(id="abc", op="ping", tenant="t")
    assert "deadline_ms" not in Request(**base).to_dict()
    assert Request(**base, deadline_ms=250.0).to_dict()["deadline_ms"] == 250.0


def test_request_deadline_validation():
    frame = Request(id="abc", op="ping", tenant="t").to_dict()
    for bad in (0, -1, "soon", True, float("inf")):
        with pytest.raises(ProtocolError):
            Request.from_dict({**frame, "deadline_ms": bad})


def test_health_probe_is_quota_free():
    # A health probe must stay answerable under overload — the whole
    # point of the op — so it cannot be charged against a quota.
    assert DEFAULT_COSTS["health"] == 0.0


# ---------------------------------------------------------------------------
# Daemon end-to-end
# ---------------------------------------------------------------------------


def gated_service(calls, started, gate):
    """A service whose compile blocks on ``gate`` — one request can be
    parked inside a worker deterministically."""

    def slow_compile(spec, arch, options):
        from repro.core.pipeline import GemmCompiler

        calls.append(1)
        started.set()
        assert gate.wait(timeout=30.0)
        return GemmCompiler(arch, options).compile(spec)

    return CompileService(ServiceConfig(), compile_fn=slow_compile)


def test_health_op_on_unconfigured_daemon():
    handle = start_in_thread(
        CompileService(ServiceConfig()), ServeConfig(workers=1, quota=None)
    )
    try:
        with Client(handle.address, tenant="t") as client:
            health = client.health()
            assert health["state"] == "healthy" and health["ready"]
            assert health["brownout"] is None
            assert health["overload"]["overload_rejected"] == 0
            assert health["workers"]["configured"] == 1
            stats = client.stats()
            assert stats["server"]["overload"] is None
    finally:
        handle.stop()


def test_deadline_expired_in_queue_is_never_dispatched():
    calls, started, gate = [], threading.Event(), threading.Event()
    handle = start_in_thread(
        gated_service(calls, started, gate),
        ServeConfig(workers=1, quota=None, overload=OverloadConfig(
            max_queue_depth=8
        )),
    )
    try:
        blocker_done, doomed_outcome = [], []

        def blocker():
            with Client(handle.address, tenant="hog", timeout=60.0) as client:
                blocker_done.append(client.compile({"arch": "toy"}))

        def doomed():
            # 80 ms of budget, but the only worker is parked: the
            # deadline dies in the queue before dispatch is possible.
            try:
                with Client(
                    handle.address, tenant="t", timeout=60.0
                ) as client:
                    doomed_outcome.append(
                        client.request(
                            "compile",
                            {"arch": "toy", "trans_a": True},
                            deadline_ms=80.0,
                        )
                    )
            except Exception as exc:
                doomed_outcome.append(exc)

        thread_a = threading.Thread(target=blocker)
        thread_a.start()
        assert started.wait(timeout=30.0)  # the only worker is now busy
        thread_b = threading.Thread(target=doomed)
        thread_b.start()
        deadline = time.monotonic() + 30.0
        while len(handle.server.queue) < 1 and time.monotonic() < deadline:
            time.sleep(0.01)  # wait for the doomed request to be queued
        time.sleep(0.2)  # ...and now its 80 ms budget is provably gone
        gate.set()
        thread_a.join(timeout=30.0)
        thread_b.join(timeout=30.0)
        assert isinstance(doomed_outcome[0], DeadlineExceededError)
        assert doomed_outcome[0].phase == "queue"
        assert blocker_done and blocker_done[0]["source"] == "compiled"
        # The expired compile provably never reached a worker.
        assert len(calls) == 1
        with Client(handle.address, tenant="t") as probe:
            health = probe.health()
        assert health["overload"]["deadline_expired_queue"] == 1
        assert health["overload"]["deadline_expired_dispatch"] == 0
    finally:
        gate.set()
        handle.stop()


def test_full_queue_rejects_over_the_wire_with_retry_hint():
    calls, started, gate = [], threading.Event(), threading.Event()
    handle = start_in_thread(
        gated_service(calls, started, gate),
        ServeConfig(workers=1, quota=None, overload=OverloadConfig(
            max_queue_depth=1
        )),
    )
    try:
        def send(name, params, outcomes):
            try:
                with Client(handle.address, tenant=name, timeout=60.0) as c:
                    outcomes.append(c.compile(params))
            except Exception as exc:
                outcomes.append(exc)

        served, queued, refused = [], [], []
        thread_a = threading.Thread(
            target=send, args=("a", {"arch": "toy"}, served)
        )
        thread_a.start()
        assert started.wait(timeout=30.0)  # worker busy; queue empty
        thread_b = threading.Thread(
            target=send, args=("b", {"arch": "toy", "trans_a": True}, queued)
        )
        thread_b.start()
        deadline = time.monotonic() + 30.0
        while len(handle.server.queue) < 1 and time.monotonic() < deadline:
            time.sleep(0.01)  # wait for b to occupy the single queue slot
        send("c", {"arch": "toy", "trans_b": True}, refused)
        gate.set()
        thread_a.join(timeout=30.0)
        thread_b.join(timeout=30.0)
        assert isinstance(refused[0], OverloadError)
        assert refused[0].retry_after_s > 0.0
        assert served[0]["key"] and queued[0]["key"]
        with Client(handle.address, tenant="t") as probe:
            health = probe.health()
        assert health["overload"]["overload_rejected"] == 1
        assert health["queue"]["rejected"]["interactive"] == 1
    finally:
        gate.set()
        handle.stop()


@pytest.fixture()
def brownout_daemon():
    """A daemon whose brownout controller can be flipped synchronously
    (huge dwell-free thresholds fed by the test, not by real waits)."""
    handle = start_in_thread(
        CompileService(ServiceConfig()),
        ServeConfig(workers=2, quota=None, overload=OverloadConfig(
            max_queue_depth=16,
            brownout_enter_ms=100.0,
            brownout_exit_ms=50.0,
            brownout_dwell_s=0.0,
        )),
    )
    yield handle
    handle.stop()


def test_brownout_serves_warm_fast_fails_cold(brownout_daemon):
    handle = brownout_daemon
    with Client(handle.address, tenant="t") as client:
        warm = client.compile({"arch": "toy"})  # prime the cache
        handle.server.brownout.observe(1e6)  # force the brownout
        health = client.health()
        assert health["state"] == "brownout" and not health["ready"]
        # The cache is the degraded serving tier: the warm key flows...
        again = client.compile({"arch": "toy"})
        assert again["key"] == warm["key"]
        # ...while a cold compile fast-fails without touching a worker.
        with pytest.raises(DegradedModeError) as excinfo:
            client.compile({"arch": "toy", "trans_a": True})
        assert excinfo.value.retry_after_s > 0.0
        # Warmup is always refused in brownout, cached or not.
        with pytest.raises(DegradedModeError):
            client.warmup()
        health = client.health()
        assert health["overload"]["brownout_warm_served"] >= 1
        assert health["overload"]["brownout_rejected"] >= 2
        # Recovery: the EWMA decays (idle queue), state flips back.
        for _ in range(64):
            handle.server.brownout.idle()
        assert client.health()["state"] == "healthy"
        assert client.compile({"arch": "toy", "trans_a": True})["key"]


def test_client_retries_after_brownout_clears(brownout_daemon):
    handle = brownout_daemon
    handle.server.brownout.observe(1e6)
    with Client(
        handle.address,
        tenant="t",
        overload_retries=3,
        overload_retry_budget_s=30.0,
    ) as client:
        outcome = []

        def attempt():
            outcome.append(client.compile({"arch": "toy", "trans_b": True}))

        thread = threading.Thread(target=attempt)
        thread.start()
        # First attempt is rejected; the client sleeps the server's
        # retry_after_s hint.  Clear the brownout underneath it.
        deadline = time.monotonic() + 30.0
        while client.overload_retried == 0 and time.monotonic() < deadline:
            time.sleep(0.01)
        for _ in range(64):
            handle.server.brownout.idle()
        thread.join(timeout=30.0)
        assert not thread.is_alive()
        assert outcome and outcome[0]["key"]
        assert client.overload_retried >= 1


def test_overload_flood_plan_is_deterministic():
    from repro.bench.loadgen import OverloadScenario, overload_flood_plan

    scenario = OverloadScenario(seed=7, flood_requests=40, flood_window_s=2.0)
    plan = overload_flood_plan(scenario)
    assert plan == overload_flood_plan(scenario)  # pure in the seed
    assert len(plan) == 40
    offsets = [entry["offset_s"] for entry in plan]
    assert offsets == sorted(offsets)
    assert all(0.0 <= off <= 2.0 for off in offsets)
    classes = {entry["priority"] for entry in plan}
    # Bernoulli(warmup_fraction) per arrival: both classes appear, and
    # nothing outside the flood's two classes ever does.
    assert classes == {"warmup", "batch"}
    assert plan != overload_flood_plan(OverloadScenario(seed=8))


def test_deadline_budget_caps_worker_timeout(brownout_daemon):
    # A generous deadline flows through without effect; the response
    # meta echoes it so clients can audit what the server enforced.
    with Client(brownout_daemon.address, tenant="t") as client:
        response = client.request_response(
            "compile", {"arch": "toy"}, deadline_ms=60_000.0
        )
        assert response.ok
        assert response.meta["deadline_ms"] == 60_000.0
        # And an unstamped request carries no deadline meta at all.
        bare = client.request_response("compile", {"arch": "toy"})
        assert "deadline_ms" not in bare.meta
