"""Fair priority queue: class ordering, tenant fairness, drain.

The queue is the scheduling heart of the daemon: strict priority
between classes (interactive > batch > warmup) and round-robin across
tenants inside a class.  These tests pin both properties down
single-threadedly (the ordering contract is deterministic) plus the
blocking/close behaviour the worker pool depends on.
"""

import threading

import pytest

from repro.errors import ConfigurationError
from repro.serve.queue import (
    DEFAULT_PRIORITY,
    PRIORITIES,
    FairPriorityQueue,
    check_priority,
)


def drain_all(queue):
    items = []
    while True:
        item = queue.get(timeout=0)
        if item is None:
            return items
        items.append(item)


def test_priority_classes_are_strictly_ordered():
    queue = FairPriorityQueue()
    queue.put("w", priority="warmup", tenant="t")
    queue.put("b", priority="batch", tenant="t")
    queue.put("i", priority="interactive", tenant="t")
    queue.put("i2", priority="interactive", tenant="t")
    assert drain_all(queue) == ["i", "i2", "b", "w"]


def test_tenants_round_robin_within_a_class():
    queue = FairPriorityQueue()
    for n in range(3):
        queue.put(f"a{n}", priority="batch", tenant="alice")
    for n in range(2):
        queue.put(f"b{n}", priority="batch", tenant="bob")
    queue.put("c0", priority="batch", tenant="carol")
    # Interleaved by arrival order of tenants, not 3 alices first.
    assert drain_all(queue) == ["a0", "b0", "c0", "a1", "b1", "a2"]


def test_one_greedy_tenant_cannot_starve_another():
    queue = FairPriorityQueue()
    for n in range(100):
        queue.put(f"g{n}", priority="interactive", tenant="greedy")
    queue.put("x", priority="interactive", tenant="meek")
    order = drain_all(queue)
    # The meek tenant's single item is served second, not 101st.
    assert order.index("x") == 1


def test_unknown_priority_rejected():
    queue = FairPriorityQueue()
    with pytest.raises(ConfigurationError):
        queue.put("x", priority="urgent", tenant="t")
    with pytest.raises(ConfigurationError):
        check_priority("urgent")
    assert DEFAULT_PRIORITY in PRIORITIES


def test_get_blocks_until_put():
    queue = FairPriorityQueue()
    got = []

    def consumer():
        got.append(queue.get(timeout=5))

    thread = threading.Thread(target=consumer)
    thread.start()
    queue.put("late", priority="interactive", tenant="t")
    thread.join(timeout=5)
    assert got == ["late"]


def test_close_serves_queued_items_then_returns_none():
    queue = FairPriorityQueue()
    queue.put("pending", priority="batch", tenant="t")
    queue.close()
    # Graceful-drain contract: what was accepted is still served...
    assert queue.get(timeout=0) == "pending"
    # ...then the queue reports exhaustion instead of blocking.
    assert queue.get(timeout=5) is None
    # New work is refused after close.
    with pytest.raises(ConfigurationError):
        queue.put("rejected", priority="batch", tenant="t")


def test_close_wakes_blocked_getters():
    queue = FairPriorityQueue()
    results = []

    def consumer():
        results.append(queue.get(timeout=30))

    thread = threading.Thread(target=consumer)
    thread.start()
    queue.close()
    thread.join(timeout=5)
    assert not thread.is_alive()
    assert results == [None]


def test_stats_counts_per_class():
    queue = FairPriorityQueue()
    queue.put("a", priority="interactive", tenant="t1")
    queue.put("b", priority="warmup", tenant="t2")
    stats = queue.stats()
    assert stats["size"] == 2
    assert stats["enqueued"]["interactive"] == 1
    assert stats["enqueued"]["warmup"] == 1
    queue.get(timeout=0)
    stats = queue.stats()
    assert stats["dequeued"]["interactive"] == 1
    assert stats["depths"]["warmup"] == 1
