"""Wire-protocol tests: round-trips, malformed frames, size limits.

The NDJSON protocol is the daemon's entire public surface, so the
round-trip property — ``decode(encode(x)) == x`` for every well-formed
request/response — is tested generatively, and every class of garbage a
peer can send (bad UTF-8, bad JSON, non-object frames, unknown ops,
oversized frames, wrong field types) must map to a structured
:class:`~repro.errors.ProtocolError`, never a stray exception.
"""

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ProtocolError
from repro.serve.protocol import (
    MAX_FRAME_BYTES,
    OPS,
    Request,
    Response,
    arch_from_name,
    decode_frame,
    encode_frame,
    spec_and_options,
    shape_hint,
)
from repro.serve.queue import PRIORITIES

# JSON-representable params values (strings keep to a modest alphabet so
# frames stay far below the size limit; the limit has its own tests).
json_scalars = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(min_value=-(10**9), max_value=10**9),
    st.text(max_size=40),
)
json_values = st.recursive(
    json_scalars,
    lambda children: st.one_of(
        st.lists(children, max_size=4),
        st.dictionaries(st.text(max_size=10), children, max_size=4),
    ),
    max_leaves=12,
)
params_objects = st.dictionaries(st.text(min_size=1, max_size=16),
                                 json_values, max_size=6)
request_ids = st.one_of(st.integers(), st.text(min_size=1, max_size=32))
tenants = st.text(
    alphabet=st.characters(min_codepoint=33, max_codepoint=126),
    min_size=1,
    max_size=64,
)


# -- frame codec -------------------------------------------------------------


@given(params_objects)
def test_frame_round_trip(payload):
    assert decode_frame(encode_frame(payload)) == payload


def test_frame_is_one_line():
    data = encode_frame({"a": "multi\nline\nstring"})
    assert data.endswith(b"\n")
    assert data.count(b"\n") == 1  # embedded newlines are escaped


@pytest.mark.parametrize(
    "line",
    [
        b"\xff\xfe not utf8\n",
        b"{not json}\n",
        b"[1, 2, 3]\n",
        b'"just a string"\n',
        b"42\n",
        b"null\n",
    ],
)
def test_malformed_frames_raise_protocol_error(line):
    with pytest.raises(ProtocolError):
        decode_frame(line)


def test_oversized_frame_rejected_both_directions():
    huge = {"blob": "x" * MAX_FRAME_BYTES}
    with pytest.raises(ProtocolError, match="exceeds"):
        encode_frame(huge)
    raw = json.dumps(huge).encode() + b"\n"
    with pytest.raises(ProtocolError, match="exceeds"):
        decode_frame(raw)


def test_non_serialisable_payload_rejected():
    with pytest.raises(ProtocolError, match="serialisable"):
        encode_frame({"fn": object()})


# -- request round-trip ------------------------------------------------------


@settings(max_examples=60)
@given(
    rid=request_ids,
    op=st.sampled_from(OPS),
    tenant=tenants,
    priority=st.sampled_from(PRIORITIES),
    params=params_objects,
)
def test_request_round_trip(rid, op, tenant, priority, params):
    request = Request(
        id=rid, op=op, tenant=tenant, priority=priority, params=params
    )
    decoded = Request.decode(request.encode())
    assert decoded == request


@pytest.mark.parametrize(
    "payload",
    [
        {},  # no op
        {"op": "transmogrify"},  # unknown op
        {"op": "ping", "id": [1, 2]},  # bad id type
        {"op": "ping", "tenant": ""},  # empty tenant
        {"op": "ping", "tenant": "x" * 65},  # tenant too long
        {"op": "ping", "tenant": 7},  # bad tenant type
        {"op": "ping", "priority": "urgent"},  # unknown priority class
        {"op": "ping", "params": [1]},  # params not an object
    ],
)
def test_invalid_requests_raise_protocol_error(payload):
    with pytest.raises(ProtocolError):
        Request.from_dict(payload)


# -- response round-trip -----------------------------------------------------


@settings(max_examples=60)
@given(
    rid=st.one_of(st.none(), request_ids),
    ok=st.booleans(),
    result=st.one_of(st.none(), params_objects),
    meta=params_objects,
)
def test_response_round_trip(rid, ok, result, meta):
    response = Response(id=rid, ok=ok, result=result, meta=meta)
    assert Response.decode(response.encode()) == response


def test_response_failure_captures_exception_type():
    response = Response.failure("r1", ProtocolError("boom"))
    assert not response.ok
    assert response.error == {"type": "ProtocolError", "message": "boom"}


@pytest.mark.parametrize(
    "payload",
    [
        {},  # no ok
        {"ok": "yes"},  # non-bool ok
        {"ok": True, "error": "oops"},  # non-object error
        {"ok": True, "meta": 3},  # non-object meta
    ],
)
def test_invalid_responses_raise_protocol_error(payload):
    with pytest.raises(ProtocolError):
        Response.from_dict(payload)


# -- kernel descriptor codec -------------------------------------------------


def test_spec_and_options_default_descriptor():
    spec, options, arch = spec_and_options({"arch": "toy"})
    assert arch.name == "toy"
    assert not spec.is_batched
    assert options.use_asm


def test_spec_and_options_unknown_arch():
    with pytest.raises(ProtocolError, match="unknown arch"):
        spec_and_options({"arch": "riscv"})
    with pytest.raises(ProtocolError):
        arch_from_name("riscv")


def test_spec_and_options_rejects_unknown_option():
    with pytest.raises(ProtocolError, match="unknown param key"):
        spec_and_options({"arch": "toy", "turbo": True})


def test_spec_and_options_fusion_and_batch():
    spec, options, _ = spec_and_options(
        {"arch": "toy", "fusion": "epilogue", "epilogue_func": "sigmoid"}
    )
    assert spec.epilogue_func == "sigmoid"
    assert options.fusion == "epilogue"
    spec, options, _ = spec_and_options({"arch": "toy", "batch": True})
    assert spec.is_batched
    assert options.batch


def test_spec_and_options_registry_archs_resolve():
    """The wire resolves every registered arch, case-insensitively —
    including the PR-8 hypothetical variants."""
    for name in ("sw26010pro", "SW26010Pro-HBM", "sw26010pro-lite"):
        _, _, arch = spec_and_options({"arch": name})
        assert arch.name.lower() == name.lower()


def test_spec_and_options_micro_kernel_shorthand():
    _, options, _ = spec_and_options(
        {"arch": "toy", "micro_kernel": "8x8x4"}
    )
    assert options.tile_config is not None
    assert (options.tile_config.mt, options.tile_config.nt,
            options.tile_config.kt) == (8, 8, 4)


def test_spec_and_options_micro_kernel_composes_with_backend():
    _, options, _ = spec_and_options(
        {"arch": "toy", "micro_kernel": "8x8x4",
         "kernel_backend": "parametric"}
    )
    assert options.kernel_backend == "parametric"
    assert options.tile_config.kt == 4


def test_spec_and_options_micro_kernel_rejects_garbage():
    with pytest.raises(ProtocolError, match="invalid micro_kernel"):
        spec_and_options({"arch": "toy", "micro_kernel": "8by8by4"})


def test_spec_and_options_micro_kernel_and_tile_mutually_exclusive():
    with pytest.raises(ProtocolError, match="mutually exclusive"):
        spec_and_options(
            {
                "arch": "toy",
                "micro_kernel": "8x8x4",
                "tile": {"mt": 8, "nt": 8, "kt": 4},
            }
        )


def test_spec_and_options_unknown_kernel_backend_is_protocol_error():
    with pytest.raises(ProtocolError, match="kernel backend"):
        spec_and_options({"arch": "toy", "kernel_backend": "bogus"})


def test_spec_and_options_fault_shorthand():
    _, options, _ = spec_and_options(
        {"arch": "toy", "fault": {"seed": 2022, "rate": 0.05, "max_retries": 5}}
    )
    assert options.fault_policy is not None
    assert options.fault_policy.seed == 2022
    assert options.retry_policy.max_retries == 5


def test_spec_and_options_full_policy_round_trip():
    from repro.faults import FaultPolicy, RetryPolicy

    policy = FaultPolicy.chaos(seed=9, rate=0.1)
    retry = RetryPolicy(max_retries=7)
    _, options, _ = spec_and_options(
        {
            "arch": "toy",
            "fault_policy": policy.to_dict(),
            "retry_policy": retry.to_dict(),
        }
    )
    assert options.fault_policy == policy
    assert options.retry_policy == retry


def test_shape_hint_parsing():
    assert shape_hint({}) is None
    assert shape_hint({"M": 1, "N": 2}) is None
    assert shape_hint({"M": 64, "N": 32, "K": 16}) == (64, 32, 16)
    assert shape_hint(
        {"M": 64, "N": 32, "K": 16, "batch_count": 8}
    ) == (64, 32, 16, 8)
    with pytest.raises(ProtocolError):
        shape_hint({"M": "wide", "N": 32, "K": 16})
