"""Client retry: one resend of idempotent ops after a connection blip.

A worker recycle or daemon restart drops established connections; the
kernel verbs are content-addressed (resending is at worst a cache hit)
and the probes are read-only, so the client retries them exactly once
with jittered backoff.  ``shutdown`` is not idempotent — resending it
could kill a daemon that already restarted — so it must surface the
loss instead.
"""

import json
import socket
import threading

import pytest

from repro.errors import ServeError
from repro.serve.client import IDEMPOTENT_OPS, Client
from repro.serve.protocol import Response


class FlakyServer:
    """Accepts connections; drops the first N, answers afterwards."""

    def __init__(self, drop_first: int = 1) -> None:
        self.listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self.listener.bind(("127.0.0.1", 0))
        self.listener.listen(8)
        self.address = self.listener.getsockname()
        self.drop_first = drop_first
        self.connections = 0
        self.requests_seen = []
        self._thread = threading.Thread(target=self._serve, daemon=True)
        self._thread.start()

    def _serve(self) -> None:
        while True:
            try:
                conn, _ = self.listener.accept()
            except OSError:
                return
            self.connections += 1
            if self.connections <= self.drop_first:
                # Read the request, then vanish mid-exchange — the shape
                # of a worker-recycle / restart blip.
                try:
                    conn.recv(65536)
                finally:
                    conn.close()
                continue
            try:
                data = conn.makefile("rb").readline()
                request = json.loads(data)
                self.requests_seen.append(request["op"])
                conn.sendall(
                    Response(
                        id=request.get("id"), ok=True, result={"pong": True}
                    ).encode()
                )
            except OSError:
                pass
            finally:
                conn.close()

    def close(self) -> None:
        self.listener.close()


@pytest.fixture()
def flaky():
    server = FlakyServer(drop_first=1)
    yield server
    server.close()


def test_idempotent_op_retries_once_and_succeeds(flaky):
    sleeps = []
    client = Client(flaky.address, timeout=5.0, _sleep=sleeps.append)
    try:
        assert client.ping() == {"pong": True}
    finally:
        client.close()
    assert client.retries == 1
    assert flaky.connections == 2
    assert flaky.requests_seen == ["ping"]
    # Jittered backoff: one sleep in (0.5, 1.5) × the base interval.
    assert len(sleeps) == 1
    assert 0.5 * client.retry_backoff_s <= sleeps[0] <= 1.5 * client.retry_backoff_s


def test_shutdown_never_retries(flaky):
    client = Client(flaky.address, timeout=5.0, _sleep=lambda _s: None)
    try:
        with pytest.raises(ServeError, match="connection to daemon lost"):
            client.shutdown()
    finally:
        client.close()
    assert client.retries == 0
    assert flaky.connections == 1  # no second attempt ever went out


def test_retry_disabled_surfaces_the_first_loss(flaky):
    client = Client(flaky.address, timeout=5.0, retry=False,
                    _sleep=lambda _s: None)
    try:
        with pytest.raises(ServeError, match="connection to daemon lost"):
            client.ping()
    finally:
        client.close()
    assert client.retries == 0


def test_second_loss_in_a_row_surfaces():
    server = FlakyServer(drop_first=2)
    try:
        client = Client(server.address, timeout=5.0, _sleep=lambda _s: None)
        try:
            with pytest.raises(ServeError, match="connection to daemon lost"):
                client.ping()
        finally:
            client.close()
        assert client.retries == 1
        assert server.connections == 2
    finally:
        server.close()


def test_closed_client_does_not_reconnect(flaky):
    client = Client(flaky.address, timeout=5.0)
    client.close()
    with pytest.raises(ServeError, match="client is closed"):
        client.ping()


def test_shutdown_is_not_classified_idempotent():
    assert "shutdown" not in IDEMPOTENT_OPS
    for op in ("ping", "stats", "compile", "run", "verify", "tune", "warmup"):
        assert op in IDEMPOTENT_OPS
