"""Subprocess isolation: crash containment, deadlines, the breaker.

The circuit-breaker state machine is exercised deterministically with an
injected clock (the quotas convention); the worker-pool tests run real
subprocesses against the toy architecture, with crashes and hangs
injected through the seeded fault plane — the same streams the chaos
suite uses, so a 100 %-rate policy makes the failure deterministic.
"""

import json

import pytest

from repro.core.options import CompilerOptions
from repro.core.spec import GemmSpec
from repro.errors import (
    CompileTimeout,
    ConfigurationError,
    PoisonedKernelError,
    WorkerCrashError,
)
from repro.faults import FaultPolicy
from repro.serve.isolation import CircuitBreaker, ProcessIsolation
from repro.service.keys import cache_key
from repro.sunway import TOY_ARCH

CRASH = CompilerOptions(
    fault_policy=FaultPolicy(enabled=True, seed=1, compile_crash_rate=1.0)
)
HANG = CompilerOptions(
    fault_policy=FaultPolicy(
        enabled=True, seed=1, compile_hang_rate=1.0, compile_hang_s=30.0
    )
)


class FakeClock:
    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


# -- circuit breaker (deterministic, injected clock) --------------------------


def test_breaker_opens_at_threshold_and_half_opens_after_cooldown():
    clock = FakeClock()
    breaker = CircuitBreaker(threshold=2, cooldown_s=10.0, clock=clock)
    breaker.check("k")  # closed: no strikes yet
    assert breaker.record_failure("k") == 1
    breaker.check("k")  # one strike is still below the threshold
    assert breaker.record_failure("k") == 2
    with pytest.raises(PoisonedKernelError) as excinfo:
        breaker.check("k")
    assert excinfo.value.key == "k" and excinfo.value.strikes == 2
    assert breaker.quarantined() == ["k"]
    # Cooldown elapses: exactly one half-open trial is admitted,
    # concurrent attempts keep failing fast.
    clock.advance(10.0)
    breaker.check("k")
    with pytest.raises(PoisonedKernelError):
        breaker.check("k")
    # The trial fails: the key re-opens for a fresh cooldown.
    breaker.record_failure("k")
    with pytest.raises(PoisonedKernelError):
        breaker.check("k")
    clock.advance(10.0)
    breaker.check("k")  # next half-open trial
    breaker.record_success("k")  # trial compile lands: fully closed
    breaker.check("k")
    breaker.check("k")
    assert breaker.quarantined() == []
    assert breaker.stats()["strikes"] == {}
    assert breaker.stats()["trips"] == 2


def test_breaker_success_clears_partial_strikes():
    breaker = CircuitBreaker(threshold=3, clock=FakeClock())
    breaker.record_failure("k")
    breaker.record_failure("k")
    breaker.record_success("k")
    breaker.record_failure("k")
    breaker.record_failure("k")
    breaker.check("k")  # 2 strikes < 3: still closed


def test_breaker_keys_are_independent():
    breaker = CircuitBreaker(threshold=1, clock=FakeClock())
    breaker.record_failure("poisoned")
    with pytest.raises(PoisonedKernelError):
        breaker.check("poisoned")
    breaker.check("healthy")


def test_breaker_persists_and_reloads_quarantine(tmp_path):
    state = tmp_path / "poison-keys.json"
    clock = FakeClock()
    breaker = CircuitBreaker(threshold=1, cooldown_s=10.0, clock=clock,
                             state_path=state)
    breaker.record_failure("k")
    data = json.loads(state.read_text())
    assert data["quarantined"] == ["k"] and data["strikes"] == {"k": 1}
    # A restarted daemon reloads the quarantine; the cooldown restarts
    # from boot (monotonic stamps cannot survive the process).
    reloaded = CircuitBreaker(threshold=1, cooldown_s=10.0, clock=clock,
                              state_path=state)
    with pytest.raises(PoisonedKernelError):
        reloaded.check("k")
    clock.advance(10.0)
    reloaded.check("k")  # half-open trial after the fresh cooldown
    reloaded.record_success("k")
    assert json.loads(state.read_text())["quarantined"] == []


def test_breaker_persistence_is_best_effort(tmp_path):
    import os

    if os.geteuid() == 0:
        pytest.skip("root ignores directory permissions")
    tmp_path.chmod(0o500)
    try:
        breaker = CircuitBreaker(
            threshold=1, clock=FakeClock(),
            state_path=tmp_path / "poison-keys.json",
        )
        breaker.record_failure("k")  # must not raise on the RO dir
        assert breaker.stats()["persist_errors"] == 1
        with pytest.raises(PoisonedKernelError):
            breaker.check("k")
    finally:
        tmp_path.chmod(0o700)


def test_breaker_validates_configuration():
    with pytest.raises(ConfigurationError):
        CircuitBreaker(threshold=0)
    with pytest.raises(ConfigurationError):
        CircuitBreaker(cooldown_s=-1.0)


# -- process pool (real subprocesses, toy arch) -------------------------------


@pytest.fixture()
def pool():
    isolation = ProcessIsolation(workers=2, deadline_s=20.0,
                                 poison_threshold=2)
    yield isolation
    isolation.close()


def test_isolated_compile_is_bit_exact(pool):
    from repro.core.pipeline import GemmCompiler

    spec, options = GemmSpec(), CompilerOptions()
    isolated = pool.compile(spec, TOY_ARCH, options)
    direct = GemmCompiler(TOY_ARCH, options).compile(spec)
    a, b = isolated.to_dict(), direct.to_dict()
    for payload in (a, b):
        payload.pop("codegen_seconds")  # wall time differs, code must not
        payload.pop("pass_stats")
    assert a == b
    assert pool.stats()["jobs_ok"] == 1


def test_worker_crash_is_contained_and_striked(pool):
    spec = GemmSpec(trans_a=True)
    with pytest.raises(WorkerCrashError) as excinfo:
        pool.compile(spec, TOY_ARCH, CRASH)
    key = cache_key(spec, TOY_ARCH, CRASH)
    assert excinfo.value.key == key
    stats = pool.stats()
    assert stats["crashes"] == 1 and stats["restarts"] == 1
    assert stats["poison"]["strikes"] == {key: 1}
    # The daemon itself survived: a clean compile still works.
    pool.compile(GemmSpec(), TOY_ARCH, CompilerOptions())


def test_repeated_crashes_trip_the_poison_breaker(pool):
    spec = GemmSpec(trans_a=True)
    for _ in range(2):  # poison_threshold=2
        with pytest.raises(WorkerCrashError):
            pool.compile(spec, TOY_ARCH, CRASH)
    with pytest.raises(PoisonedKernelError):
        pool.compile(spec, TOY_ARCH, CRASH)
    # No third subprocess was sacrificed: the breaker fails fast.
    assert pool.stats()["crashes"] == 2
    # Other keys stay unaffected.
    pool.compile(GemmSpec(trans_b=True), TOY_ARCH, CompilerOptions())


def test_hung_worker_is_killed_at_the_deadline():
    with ProcessIsolation(workers=1, deadline_s=0.5) as pool:
        with pytest.raises(CompileTimeout) as excinfo:
            pool.compile(GemmSpec(), TOY_ARCH, HANG)
        assert excinfo.value.timeout_s == 0.5
        stats = pool.stats()
        assert stats["timeouts"] == 1 and stats["kills"] == 1
        # The replacement worker serves the next job.
        pool.compile(GemmSpec(), TOY_ARCH, CompilerOptions())


def test_per_request_timeout_tightens_the_deadline():
    with ProcessIsolation(workers=1, deadline_s=60.0) as pool:
        with pytest.raises(CompileTimeout) as excinfo:
            pool.compile(GemmSpec(), TOY_ARCH, HANG, timeout_s=0.5)
        assert excinfo.value.timeout_s == 0.5


def test_memory_budget_overrun_recycles_the_worker():
    # Any real compile peaks well above 1 MiB, so the budget trips
    # deterministically without needing an allocation bomb.
    with ProcessIsolation(workers=1, deadline_s=20.0,
                          memory_budget_mb=1.0) as pool:
        with pytest.raises(WorkerCrashError) as excinfo:
            pool.compile(GemmSpec(), TOY_ARCH, CompilerOptions())
        assert "budget" in str(excinfo.value)
        stats = pool.stats()
        assert stats["memory_overruns"] == 1 and stats["restarts"] == 1


def test_clean_compiler_failures_pass_through_without_strikes(pool):
    # A tile plan that overflows SPM fails deterministically *inside*
    # the worker; the original exception type crosses the process
    # boundary and the key is not struck (clean failures are not
    # poison — re-requesting them must stay allowed and cheap).
    from repro.core.options import TileConfig
    from repro.errors import SPMOverflowError

    options = CompilerOptions(tile_config=TileConfig(mt=512, nt=512, kt=512))
    with pytest.raises(SPMOverflowError, match="SPM"):
        pool.compile(GemmSpec(), TOY_ARCH, options)
    assert pool.stats()["poison"]["strikes"] == {}
    assert pool.stats()["crashes"] == 0


def test_workers_are_recycled_after_job_quota():
    with ProcessIsolation(workers=1, deadline_s=20.0,
                          recycle_after=1) as pool:
        pool.compile(GemmSpec(), TOY_ARCH, CompilerOptions())
        pool.compile(GemmSpec(trans_a=True), TOY_ARCH, CompilerOptions())
        stats = pool.stats()
        assert stats["spawned"] >= 2 and stats["restarts"] >= 1


def test_isolation_validates_configuration():
    with pytest.raises(ConfigurationError):
        ProcessIsolation(workers=0)
    with pytest.raises(ConfigurationError):
        ProcessIsolation(deadline_s=0)
    with pytest.raises(ConfigurationError):
        ProcessIsolation(memory_budget_mb=-1)
