"""Per-tenant token buckets: exhaustion, refill, isolation.

The clock is injectable, so every refill scenario is deterministic —
no sleeps, no flaky timing.
"""

import pytest

from repro.errors import ConfigurationError
from repro.serve.quotas import DEFAULT_COSTS, QuotaConfig, QuotaManager


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


@pytest.fixture()
def clock():
    return FakeClock()


def manager(clock, capacity=10.0, refill=1.0, initial=1.0):
    return QuotaManager(
        QuotaConfig(
            capacity=capacity, refill_per_s=refill, initial_fill=initial
        ),
        clock=clock,
    )


def test_bucket_exhausts_at_capacity(clock):
    quotas = manager(clock)
    granted = sum(quotas.try_acquire("t", 1.0) for _ in range(15))
    assert granted == 10
    assert not quotas.try_acquire("t", 1.0)


def test_refill_restores_tokens_over_time(clock):
    quotas = manager(clock, capacity=5.0, refill=2.0)
    for _ in range(5):
        assert quotas.try_acquire("t", 1.0)
    assert not quotas.try_acquire("t", 1.0)
    clock.advance(1.5)  # 3 tokens back at 2/s
    assert quotas.try_acquire("t", 1.0)
    assert quotas.try_acquire("t", 1.0)
    assert quotas.try_acquire("t", 1.0)
    assert not quotas.try_acquire("t", 1.0)


def test_refill_never_exceeds_capacity(clock):
    quotas = manager(clock, capacity=4.0, refill=100.0)
    clock.advance(3600.0)
    assert quotas.tokens("t") == pytest.approx(4.0)


def test_tenants_are_isolated(clock):
    quotas = manager(clock, capacity=2.0)
    assert quotas.try_acquire("hog", 2.0)
    assert not quotas.try_acquire("hog", 1.0)
    # The hog's exhaustion must not touch anyone else's bucket.
    assert quotas.try_acquire("other", 1.0)


def test_zero_cost_ops_always_admitted(clock):
    quotas = manager(clock, capacity=1.0)
    assert quotas.try_acquire("t", 1.0)
    for _ in range(100):
        assert quotas.try_acquire("t", 0.0)


def test_disabled_quotas_admit_everything(clock):
    quotas = QuotaManager(None, clock=clock)
    for _ in range(1000):
        assert quotas.try_acquire("t", 100.0)
    quotas = QuotaManager(QuotaConfig(capacity=None), clock=clock)
    assert quotas.try_acquire("t", 10**6)


def test_stats_report_grants_and_rejections(clock):
    quotas = manager(clock, capacity=2.0)
    quotas.try_acquire("t", 1.0)
    quotas.try_acquire("t", 1.0)
    quotas.try_acquire("t", 1.0)  # rejected
    stats = quotas.stats()
    assert stats["granted"]["t"] == 2
    assert stats["rejected"]["t"] == 1
    assert stats["granted_total"] == 2
    assert stats["rejected_total"] == 1
    assert "t" in stats["tenants"]


def test_costs_table_covers_every_op():
    from repro.serve.protocol import OPS

    assert set(DEFAULT_COSTS) == set(OPS)
    # Administrative ops are free; tune is the most expensive.
    assert DEFAULT_COSTS["ping"] == 0.0
    assert DEFAULT_COSTS["tune"] == max(DEFAULT_COSTS.values())


def test_config_validation():
    with pytest.raises(ConfigurationError):
        QuotaConfig(capacity=-1.0)
    with pytest.raises(ConfigurationError):
        QuotaConfig(refill_per_s=-0.1)
    with pytest.raises(ConfigurationError):
        QuotaConfig(initial_fill=2.0)
