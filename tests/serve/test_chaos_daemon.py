"""Chaos re-run through the live daemon.

The fault-injection suite (tests/faults/) proves the retry machinery
recovers bit-exactly in-process.  This file closes the loop end to end:
the same chaos profile (seed 2022, rate 5%) requested over the wire
must produce a correct result, report real retries in the response
stats, and be byte-for-byte reproducible across repeated requests.
"""

import pytest

from repro.serve import Client, ServeConfig, start_in_thread
from repro.service import CompileService, ServiceConfig

CHAOS_SEED = 2022
CHAOS_RATE = 0.05

CHAOS_PARAMS = {
    "arch": "toy",
    "fault": {"seed": CHAOS_SEED, "rate": CHAOS_RATE, "max_retries": 8},
    "M": 32,
    "N": 32,
    "K": 16,
    "seed": 7,
}


@pytest.fixture(scope="module")
def daemon():
    handle = start_in_thread(
        CompileService(ServiceConfig()),
        ServeConfig(workers=2, quota=None),
    )
    yield handle
    handle.stop()


def test_chaos_run_recovers_over_the_wire(daemon):
    with Client(daemon.address, tenant="chaos") as client:
        result = client.run(dict(CHAOS_PARAMS))
        assert result["ok"]
        assert result["max_error"] < 1e-8
        # The profile at 5% over a 32x32x16 toy run reliably injects
        # faults; a zero retry count would mean chaos never engaged.
        retries = (
            result["dma_retries"]
            + result["rma_retries"]
            + result["lost_replies"]
        )
        assert retries > 0


def test_chaos_run_is_reproducible_across_requests(daemon):
    with Client(daemon.address, tenant="chaos") as client:
        first = client.run(dict(CHAOS_PARAMS))
        second = client.run(dict(CHAOS_PARAMS))
    # Same seeds end to end: identical numerics AND identical fault
    # history, not merely "both succeeded".
    for field in (
        "key",
        "gflops",
        "max_error",
        "dma_retries",
        "rma_retries",
        "lost_replies",
    ):
        assert first[field] == second[field], field


def test_chaos_and_clean_runs_agree(daemon):
    clean = {k: v for k, v in CHAOS_PARAMS.items() if k != "fault"}
    with Client(daemon.address, tenant="chaos") as client:
        chaotic = client.run(dict(CHAOS_PARAMS))
        pristine = client.run(clean)
    # Retries must not perturb the numerics: the faulted run converges
    # to the same answer quality as the fault-free one.
    assert chaotic["ok"] and pristine["ok"]
    assert chaotic["max_error"] < 1e-8
    assert pristine["max_error"] < 1e-8
