"""Crash recovery, in process: journal replay and chaos containment.

These tests build the same daemon the CLI boots (via
``start_in_thread``) but drive the crash states directly: a journal
pre-loaded with accepted-but-never-completed requests stands in for a
killed predecessor, and the fault plane's 100 %-rate compile streams
make one tenant's kernel deterministically poisonous while other
tenants keep compiling.  The subprocess ``kill -9`` variant lives in
``tests/integration/test_cli_serve_recovery.py``.
"""

import threading
import time

import pytest

from repro.errors import PoisonedKernelError, WorkerCrashError
from repro.serve.client import Client, RemoteError
from repro.serve.journal import RequestJournal
from repro.serve.server import ServeConfig, start_in_thread
from repro.service import CompileService, ServiceConfig


def _wait_for_replay(client, timeout_s: float = 30.0):
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        stats = client.stats()["server"]
        if stats["journal"]["replay_pending"] == 0:
            return stats
        time.sleep(0.05)
    raise AssertionError("journal replay never finished")


def _accepted(op, params, tenant="t", rid="r"):
    return {
        "id": rid,
        "op": op,
        "tenant": tenant,
        "priority": "interactive",
        "params": params,
    }


# -- journal replay -----------------------------------------------------------


def test_pending_requests_replay_on_boot(tmp_path):
    journal = RequestJournal(tmp_path / "journal")
    journal.record_accepted(_accepted("compile", {"arch": "toy"}, rid="r1"))
    journal.record_accepted(
        _accepted("compile", {"arch": "toy", "trans_a": True}, rid="r2")
    )
    done = journal.record_accepted(
        _accepted("compile", {"arch": "toy", "trans_b": True}, rid="r3")
    )
    journal.record_completed(done)  # acknowledged before the "crash"
    journal.close()  # no tombstones for r1/r2: the daemon died mid-job

    service = CompileService(ServiceConfig(cache_dir=tmp_path / "cache"))
    handle = start_in_thread(
        service,
        ServeConfig(workers=2, quota=None,
                    journal_dir=str(tmp_path / "journal")),
    )
    try:
        with Client(handle.address, tenant="probe") as client:
            stats = _wait_for_replay(client)
            assert stats["counters"]["replayed"] == 2
            assert stats["counters"]["replay_failed"] == 0
            assert stats["journal"]["recovered_pending"] == 2
            # The replayed kernels are already cached for tenants.
            assert client.compile({"arch": "toy"})["source"] != "compiled"
            assert (
                client.compile({"arch": "toy", "trans_a": True})["source"]
                != "compiled"
            )
            # The completed one was NOT replayed: compiling it is fresh.
            assert (
                client.compile({"arch": "toy", "trans_b": True})["source"]
                == "compiled"
            )
    finally:
        handle.stop()
    # Every replayed entry was tombstoned: the next boot has nothing.
    reopened = RequestJournal(tmp_path / "journal")
    assert reopened.pending_count() == 0
    reopened.close()


def test_unparseable_journal_entry_is_tombstoned_not_fatal(tmp_path):
    journal = RequestJournal(tmp_path / "journal")
    journal.record_accepted({"op": "no-such-op", "params": {}})
    journal.record_accepted(_accepted("compile", {"arch": "toy"}))
    journal.close()
    handle = start_in_thread(
        None,
        ServeConfig(workers=1, quota=None,
                    journal_dir=str(tmp_path / "journal")),
    )
    try:
        with Client(handle.address, tenant="probe") as client:
            stats = _wait_for_replay(client)
            assert stats["counters"]["replayed"] == 1
            assert stats["counters"]["replay_failed"] == 1
    finally:
        handle.stop()
    reopened = RequestJournal(tmp_path / "journal")
    assert reopened.pending_count() == 0  # the garbage cannot wedge boots
    reopened.close()


def test_acknowledged_requests_are_tombstoned_live(tmp_path):
    handle = start_in_thread(
        None,
        ServeConfig(workers=1, quota=None,
                    journal_dir=str(tmp_path / "journal")),
    )
    try:
        with Client(handle.address, tenant="t") as client:
            client.compile({"arch": "toy"})
            client.ping()  # probes are not journaled
            stats = client.stats()["server"]
            assert stats["counters"]["journaled"] == 1
            assert stats["journal"]["pending"] == 0  # tombstoned pre-ack
    finally:
        handle.stop()


def test_journal_on_read_only_dir_degrades_and_daemon_serves(tmp_path):
    import os

    if os.geteuid() == 0:
        pytest.skip("root ignores directory permissions")
    jdir = tmp_path / "journal"
    jdir.mkdir()
    jdir.chmod(0o500)
    try:
        handle = start_in_thread(
            None,
            ServeConfig(workers=1, quota=None, journal_dir=str(jdir)),
        )
        try:
            with Client(handle.address, tenant="t") as client:
                result = client.compile({"arch": "toy"})
                assert result["source"] == "compiled"
                stats = client.stats()["server"]
                assert stats["journal"]["degraded"] is True
                assert stats["counters"]["journal_dropped"] == 1
        finally:
            handle.stop()
    finally:
        jdir.chmod(0o700)


# -- chaos containment (the acceptance scenario) ------------------------------


def test_poisoned_kernel_is_quarantined_while_other_tenants_succeed(tmp_path):
    """ISSUE 7 acceptance: a compile that kills its worker is contained
    and quarantined while concurrent tenants' requests complete."""
    service = CompileService(ServiceConfig(cache_dir=tmp_path / "cache"))
    handle = start_in_thread(
        service,
        ServeConfig(workers=2, quota=None, isolation="process",
                    poison_threshold=2, worker_deadline_s=30.0),
    )
    poison_params = {
        "arch": "toy",
        "trans_a": True,
        "fault_policy": {
            "enabled": True,
            "seed": 7,
            "compile_crash_rate": 1.0,
        },
    }
    clean_errors = []

    def clean_tenant(i):
        try:
            with Client(handle.address, tenant=f"clean-{i}") as client:
                result = client.compile({"arch": "toy", "trans_b": bool(i)})
                if result["key"] is None:
                    raise AssertionError("no key")
        except Exception as exc:  # collected, asserted on the main thread
            clean_errors.append(exc)

    try:
        with Client(handle.address, tenant="poison") as client:
            threads = [
                threading.Thread(target=clean_tenant, args=(i,))
                for i in range(2)
            ]
            for t in threads:
                t.start()
            for attempt in range(2):  # poison_threshold=2
                with pytest.raises(WorkerCrashError, match="worker died"):
                    client.compile(dict(poison_params))
            with pytest.raises(PoisonedKernelError, match="quarantined"):
                client.compile(dict(poison_params))
            for t in threads:
                t.join(timeout=30.0)
            assert not clean_errors, clean_errors
            stats = client.stats()["server"]
            assert stats["isolation"]["crashes"] == 2
            assert stats["isolation"]["restarts"] >= 2
            assert len(stats["isolation"]["poison"]["quarantined"]) == 1
    finally:
        handle.stop()
    # The quarantine survives the daemon: it landed in the cache dir
    # and `swgemm cache stats` reports it.
    from repro.service.store import ArtifactStore

    store = ArtifactStore(tmp_path / "cache")
    assert len(store.poison_keys()) == 1


def test_hung_compile_is_killed_while_other_tenants_succeed(tmp_path):
    handle = start_in_thread(
        CompileService(ServiceConfig(cache_dir=tmp_path / "cache")),
        ServeConfig(workers=2, quota=None, isolation="process",
                    worker_deadline_s=1.0),
    )
    hang_params = {
        "arch": "toy",
        "trans_a": True,
        "fault_policy": {
            "enabled": True,
            "seed": 7,
            "compile_hang_rate": 1.0,
            "compile_hang_s": 60.0,
        },
    }
    try:
        with Client(handle.address, tenant="hang", timeout=30.0) as client:
            started = time.monotonic()
            with pytest.raises(RemoteError) as excinfo:
                client.compile(hang_params)
            assert excinfo.value.remote_type == "CompileTimeout"
            assert time.monotonic() - started < 20.0  # killed, not waited
            # The daemon survived the kill; a clean compile succeeds.
            assert client.compile({"arch": "toy"})["source"] == "compiled"
            stats = client.stats()["server"]
            assert stats["isolation"]["timeouts"] == 1
            assert stats["isolation"]["kills"] == 1
    finally:
        handle.stop()


def test_process_isolation_serves_cache_hits_without_workers(tmp_path):
    # A poisoned *key* with a cached artifact still serves: quarantine
    # guards compilation, not the cache.
    service = CompileService(ServiceConfig(cache_dir=tmp_path / "cache"))
    handle = start_in_thread(
        service,
        ServeConfig(workers=1, quota=None, isolation="process"),
    )
    try:
        with Client(handle.address, tenant="t") as client:
            first = client.compile({"arch": "toy"})
            assert first["source"] == "compiled"
            again = client.compile({"arch": "toy"})
            assert again["source"] == "memory"
    finally:
        handle.stop()
