"""Write-ahead journal: round-trips, torn writes, rotation, degradation.

The journal is only useful if recovery is *paranoid*: a ``kill -9`` can
tear the final record mid-line, cosmic rays (or test suites) can flip a
byte under an intact line ending, and a segment can mix both with
perfectly healthy records.  Every damaged record must be skipped with a
counter — never crash recovery, never resurrect a wrong request — and
every intact record must survive bit-exactly, which the hypothesis
round-trip asserts generatively.
"""

import json
import os

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.serve.journal import (
    RequestJournal,
    encode_record,
    record_crc,
    scan_segments,
    segment_name,
)

# JSON-safe request bodies of the shape the server journals.
json_scalars = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(min_value=-(10**6), max_value=10**6),
    st.text(max_size=20),
)
bodies = st.dictionaries(
    st.text(min_size=1, max_size=12),
    st.one_of(
        json_scalars,
        st.dictionaries(st.text(max_size=8), json_scalars, max_size=3),
    ),
    max_size=5,
)


# -- round-trip ---------------------------------------------------------------


@settings(max_examples=30, deadline=None)
@given(
    accepted=st.lists(bodies, min_size=1, max_size=8),
    completed_mask=st.lists(st.booleans(), min_size=8, max_size=8),
)
def test_pending_set_round_trips_across_reopen(
    tmp_path_factory, accepted, completed_mask
):
    root = tmp_path_factory.mktemp("journal")
    journal = RequestJournal(root, fsync=False)
    lsns = [journal.record_accepted(body) for body in accepted]
    expect_pending = {}
    for lsn, body, done in zip(lsns, accepted, completed_mask):
        if done:
            journal.record_completed(lsn)
        else:
            expect_pending[lsn] = body
    journal.close()
    reopened = RequestJournal(root, fsync=False)
    assert dict(reopened.pending()) == expect_pending
    # Recovery-then-append keeps allocating unique, increasing lsns.
    fresh = reopened.record_accepted({"fresh": True})
    assert fresh > max(lsns)
    reopened.close()


def test_record_crc_is_stable_under_key_order():
    record = {"lsn": 1, "type": "accepted", "body": {"b": 2, "a": 1}}
    reordered = {"body": {"a": 1, "b": 2}, "type": "accepted", "lsn": 1}
    assert record_crc(record) == record_crc(reordered)


# -- torn writes and corruption ----------------------------------------------


def _active_segment(root):
    return sorted(root.glob("journal-*.ndjson"))[-1]


def test_torn_trailing_record_is_skipped_with_counter(tmp_path):
    journal = RequestJournal(tmp_path)
    keep = journal.record_accepted({"op": "compile", "params": {"keep": 1}})
    journal.close()
    # kill -9 mid-write: the last record loses its tail (and newline).
    path = _active_segment(tmp_path)
    frame = encode_record(99, "accepted", {"op": "compile"})
    with open(path, "ab") as handle:
        handle.write(frame[: len(frame) // 2])
    reopened = RequestJournal(tmp_path)
    assert reopened.stats()["skipped_torn"] == 1
    assert [lsn for lsn, _ in reopened.pending()] == [keep]
    reopened.close()


def test_flipped_crc_byte_skips_record_never_crashes(tmp_path):
    journal = RequestJournal(tmp_path)
    journal.record_accepted({"op": "compile", "params": {"x": 1}})
    good = journal.record_accepted({"op": "run", "params": {}})
    journal.close()
    path = _active_segment(tmp_path)
    data = path.read_bytes().replace(b'"x":1', b'"x":2', 1)  # stale CRC
    path.write_bytes(data)
    pending, counters = scan_segments(tmp_path)
    assert counters["skipped_crc"] == 1
    assert sorted(pending) == [good]
    # Full recovery (not just the scan) tolerates it identically.
    reopened = RequestJournal(tmp_path)
    assert reopened.stats()["skipped_crc"] == 1
    assert [lsn for lsn, _ in reopened.pending()] == [good]
    reopened.close()


def test_record_with_valid_crc_but_bad_shape_is_skipped(tmp_path):
    record = {"lsn": "not-an-int", "type": "accepted", "body": {}}
    record["crc"] = record_crc(record)
    (tmp_path / segment_name(0)).write_text(
        json.dumps(record, sort_keys=True, separators=(",", ":")) + "\n"
    )
    pending, counters = scan_segments(tmp_path)
    assert pending == {}
    assert counters["skipped_crc"] == 1


# -- rotation and compaction --------------------------------------------------


def test_rotation_compacts_completed_records_away(tmp_path):
    journal = RequestJournal(tmp_path, segment_max_records=4, fsync=False)
    lsns = [journal.record_accepted({"i": i}) for i in range(10)]
    for lsn in lsns[:-2]:
        journal.record_completed(lsn)
    journal.record_accepted({"i": "rotate"})  # forces one more rotation
    # Old segments are deleted; only the active one remains.
    segments = sorted(tmp_path.glob("journal-*.ndjson"))
    assert len(segments) == 1
    journal.close()
    reopened = RequestJournal(tmp_path)
    assert [body for _, body in reopened.pending()] == [
        {"i": 8},
        {"i": 9},
        {"i": "rotate"},
    ]
    reopened.close()


def test_open_compacts_history_into_fresh_segment(tmp_path):
    journal = RequestJournal(tmp_path, fsync=False)
    done = journal.record_accepted({"done": True})
    journal.record_accepted({"pending": True})
    journal.record_completed(done)
    journal.close()
    before = _active_segment(tmp_path).name
    reopened = RequestJournal(tmp_path)
    after = _active_segment(tmp_path).name
    assert after > before  # fresh segment; old one GC'd
    assert reopened.recovered_pending == 1
    # The compacted segment holds exactly the pending record.
    pending, counters = scan_segments(tmp_path)
    assert len(pending) == 1 and counters["records"] == 1
    reopened.close()


# -- degradation (read-only journal dir) --------------------------------------


def test_read_only_journal_dir_degrades_instead_of_crashing(tmp_path):
    if os.geteuid() == 0:
        pytest.skip("root ignores directory permissions")
    journal = RequestJournal(tmp_path)
    kept = journal.record_accepted({"op": "compile"})
    journal.close()
    tmp_path.chmod(0o500)
    try:
        degraded = RequestJournal(tmp_path)
        # Recovery still reads the pending set; writes become no-ops.
        assert [lsn for lsn, _ in degraded.pending()] == [kept]
        assert degraded.degraded
        assert degraded.record_accepted({"op": "run"}) is None
        degraded.record_completed(kept)  # must not raise
        stats = degraded.stats()
        assert stats["degraded"] and stats["dropped"] >= 1
        degraded.close()
    finally:
        tmp_path.chmod(0o700)


def test_mid_life_write_failure_degrades(tmp_path):
    journal = RequestJournal(tmp_path)
    assert journal.record_accepted({"op": "compile"}) is not None
    journal._file.close()  # simulate the descriptor dying under us
    assert journal.record_accepted({"op": "run"}) is None
    assert journal.degraded
    assert journal.stats()["dropped"] == 1
    journal.close()
