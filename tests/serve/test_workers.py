"""WorkerPool accounting: cancelled jobs must not pollute the
per-priority-class execution counters the fairness stats report."""

import threading

from repro.serve.workers import WorkerPool


def test_cancelled_job_not_counted_as_executed():
    gate = threading.Event()
    pool = WorkerPool(1, name="test-cancel")
    try:
        blocker = pool.submit(lambda: gate.wait(timeout=30.0), priority="interactive")
        victim = pool.submit(lambda: "never runs", priority="batch")
        assert victim.cancel()  # still queued behind the blocker
        gate.set()
        assert blocker.result(timeout=10.0)
        assert pool.drain(timeout=10.0)
        stats = pool.stats()
        assert stats["executed"]["interactive"] == 1
        assert stats["executed"]["batch"] == 0
        assert stats["cancelled"] == 1
        assert stats["failed"] == 0
    finally:
        gate.set()
        pool.shutdown(drain=False, timeout=10.0)


def test_executed_counts_only_jobs_that_ran():
    pool = WorkerPool(2, name="test-exec")
    try:
        futures = [pool.submit(lambda i=i: i, priority="warmup") for i in range(5)]
        assert [f.result(timeout=10.0) for f in futures] == list(range(5))
        assert pool.drain(timeout=10.0)
        stats = pool.stats()
        assert stats["executed"]["warmup"] == 5
        assert stats["cancelled"] == 0
    finally:
        pool.shutdown(drain=False, timeout=10.0)
