"""End-to-end daemon tests over real sockets.

The deterministic dedup test injects a *gated* compile function into
the service, so concurrent same-key requests provably collide on the
single-flight path regardless of machine speed.  Drain semantics,
quota rejection over the wire, oversized/malformed frames against a
live listener, and the ``max_requests`` self-stop are covered with the
in-thread server harness.
"""

import socket
import threading
import time

import pytest

from repro.errors import (
    ProtocolError,
    QuotaExceededError,
    ServeError,
    ServerDrainingError,
)
from repro.serve import (
    Client,
    MAX_FRAME_BYTES,
    QuotaConfig,
    ServeConfig,
    start_in_thread,
)
from repro.serve.client import RemoteError
from repro.service import CompileService, ServiceConfig


@pytest.fixture()
def daemon():
    """A quota-free daemon on an ephemeral TCP port, drained at exit."""
    handle = start_in_thread(
        CompileService(ServiceConfig()),
        ServeConfig(workers=2, quota=None),
    )
    yield handle
    handle.stop()


def test_ping_and_stats(daemon):
    with Client(daemon.address, tenant="t") as client:
        pong = client.ping()
        assert pong["pong"] and not pong["draining"]
        stats = client.stats()
        assert stats["server"]["counters"]["connections"] >= 1
        assert "service" in stats


def test_compile_run_verify_round_trip(daemon):
    with Client(daemon.address, tenant="t") as client:
        compiled = client.compile({"arch": "toy"})
        assert len(compiled["key"]) == 64
        assert compiled["source"] == "compiled"
        again = client.compile({"arch": "toy"})
        assert again["key"] == compiled["key"]
        assert again["source"] in ("memory", "disk")
        ran = client.run({"arch": "toy", "M": 32, "N": 32, "K": 16, "seed": 3})
        assert ran["ok"] and ran["max_error"] < 1e-8
        verified = client.verify({"arch": "toy"})
        assert verified["ok"]


def test_error_types_map_to_exceptions(daemon):
    with Client(daemon.address, tenant="t") as client:
        # Known remote error types come back as the matching local class.
        with pytest.raises(ProtocolError, match="tile"):
            client.compile({"arch": "toy", "tile": {"mt": -1}})
        # Unknown remote types degrade to RemoteError, never a silent pass.
        with pytest.raises((RemoteError, ServeError)):
            client.compile({"arch": "toy", "tile": {"mt": 0, "nt": 0, "kt": 0}})


def test_concurrent_tenants_single_flight_dedup():
    """N tenants requesting the same cold key concurrently: exactly one
    compile executes; everyone gets an answer.  The compile function is
    gated so the collision is deterministic, not a timing accident."""
    calls = []
    started = threading.Event()
    gate = threading.Event()

    def slow_compile(spec, arch, options):
        from repro.core.pipeline import GemmCompiler

        calls.append(1)
        started.set()
        assert gate.wait(timeout=30.0)
        return GemmCompiler(arch, options).compile(spec)

    service = CompileService(ServiceConfig(), compile_fn=slow_compile)
    handle = start_in_thread(service, ServeConfig(workers=4, quota=None))
    results = []
    errors = []

    def tenant_request(name):
        try:
            with Client(handle.address, tenant=name, timeout=60.0) as client:
                results.append(client.compile({"arch": "toy"}))
        except Exception as exc:  # pragma: no cover - failure detail
            errors.append(exc)

    try:
        threads = [
            threading.Thread(target=tenant_request, args=(f"tenant-{n}",))
            for n in range(4)
        ]
        threads[0].start()
        assert started.wait(timeout=30.0)  # owner is inside the compile
        for thread in threads[1:]:
            thread.start()
        # Wait until the stragglers have parked on the in-flight entry.
        deadline = time.monotonic() + 30.0
        while service.deduped < 3 and time.monotonic() < deadline:
            time.sleep(0.01)
        gate.set()
        for thread in threads:
            thread.join(timeout=30.0)
        assert not errors
        assert len(results) == 4
        assert len(calls) == 1  # the whole point
        assert len({r["key"] for r in results}) == 1
        sources = sorted(r["source"] for r in results)
        assert sources.count("compiled") == 1
        assert sources.count("deduped") == 3
        assert service.deduped >= 3
    finally:
        gate.set()
        handle.stop()


def test_quota_exhaustion_over_the_wire():
    handle = start_in_thread(
        CompileService(ServiceConfig()),
        ServeConfig(
            workers=2,
            quota=QuotaConfig(capacity=3.0, refill_per_s=0.0),
        ),
    )
    try:
        with Client(handle.address, tenant="greedy") as client:
            for _ in range(3):
                client.compile({"arch": "toy"})
            with pytest.raises(QuotaExceededError):
                client.compile({"arch": "toy"})
            # Zero-cost ops still answered for an exhausted tenant.
            assert client.ping()["pong"]
        # Another tenant's bucket is untouched.
        with Client(handle.address, tenant="frugal") as client:
            client.compile({"arch": "toy"})
    finally:
        handle.stop()


def test_oversized_frame_answered_then_disconnected(daemon):
    host, port = daemon.address
    with socket.create_connection((host, port), timeout=10) as sock:
        sock.sendall(b'{"op": "ping", "params": {"x": "'
                     + b"y" * MAX_FRAME_BYTES + b'"}}\n')
        reader = sock.makefile("rb")
        line = reader.readline(MAX_FRAME_BYTES + 1)
        assert b"ProtocolError" in line
        # The daemon then drops the unsyncable connection.
        assert reader.readline() == b""


def test_malformed_frame_gets_structured_error(daemon):
    host, port = daemon.address
    with socket.create_connection((host, port), timeout=10) as sock:
        sock.sendall(b"this is not json\n")
        line = sock.makefile("rb").readline()
        assert b'"ok":false' in line.replace(b" ", b"")
        assert b"ProtocolError" in line


def test_graceful_drain_finishes_queued_work():
    """Work accepted before the drain must be answered after it."""
    gate = threading.Event()

    def gated_compile(spec, arch, options):
        from repro.core.pipeline import GemmCompiler

        assert gate.wait(timeout=30.0)
        return GemmCompiler(arch, options).compile(spec)

    service = CompileService(ServiceConfig(), compile_fn=gated_compile)
    handle = start_in_thread(service, ServeConfig(workers=1, quota=None))
    results = []

    def slow_request():
        with Client(handle.address, tenant="t", timeout=60.0) as client:
            results.append(client.compile({"arch": "toy"}))

    worker = threading.Thread(target=slow_request)
    worker.start()
    # Wait until the request is in flight, then start draining.
    deadline = time.monotonic() + 30.0
    while not handle.server.counters["requests"] and time.monotonic() < deadline:
        time.sleep(0.01)
    stopper = threading.Thread(target=lambda: handle.stop(drain=True))
    stopper.start()
    time.sleep(0.1)
    gate.set()
    worker.join(timeout=30.0)
    stopper.join(timeout=30.0)
    assert results and results[0]["source"] == "compiled"


def test_draining_server_rejects_new_requests():
    gate = threading.Event()

    def gated_compile(spec, arch, options):
        from repro.core.pipeline import GemmCompiler

        assert gate.wait(timeout=30.0)
        return GemmCompiler(arch, options).compile(spec)

    service = CompileService(ServiceConfig(), compile_fn=gated_compile)
    handle = start_in_thread(service, ServeConfig(workers=1, quota=None))
    try:
        blocker = Client(handle.address, tenant="a", timeout=60.0)
        late = Client(handle.address, tenant="b", timeout=60.0)
        hold = threading.Thread(
            target=lambda: blocker.request_response("compile", {"arch": "toy"})
        )
        hold.start()
        deadline = time.monotonic() + 30.0
        while not handle.server.counters["requests"] and time.monotonic() < deadline:
            time.sleep(0.01)
        # Drain starts; the in-flight compile is still gated.
        stopper = threading.Thread(target=lambda: handle.stop(drain=True))
        stopper.start()
        deadline = time.monotonic() + 30.0
        while not handle.server._draining and time.monotonic() < deadline:
            time.sleep(0.01)
        with pytest.raises(ServerDrainingError):
            late.compile({"arch": "toy"})
        gate.set()
        hold.join(timeout=30.0)
        stopper.join(timeout=30.0)
        blocker.close()
        late.close()
    finally:
        gate.set()
        handle.stop()


def test_max_requests_self_stop():
    handle = start_in_thread(
        CompileService(ServiceConfig()),
        ServeConfig(workers=1, quota=None, max_requests=2),
    )
    with Client(handle.address, tenant="t") as client:
        client.ping()
        client.ping()
    deadline = time.monotonic() + 30.0
    while not handle.server._stopped.is_set() and time.monotonic() < deadline:
        time.sleep(0.05)
    assert handle.server._stopped.is_set()
    handle.stop()


def test_unix_socket_transport(tmp_path):
    path = str(tmp_path / "swgemm.sock")
    handle = start_in_thread(
        CompileService(ServiceConfig()),
        ServeConfig(socket_path=path, workers=1, quota=None),
    )
    try:
        assert handle.address == path
        with Client(path, tenant="t") as client:
            assert client.ping()["pong"]
            assert client.compile({"arch": "toy"})["source"] == "compiled"
    finally:
        handle.stop()


def test_connect_refused_raises_serve_error():
    with pytest.raises(ServeError, match="cannot connect"):
        Client(("127.0.0.1", 1))  # port 1: nothing listens there


def test_warmup_op_reports_kernel_set(daemon):
    with Client(daemon.address, tenant="t") as client:
        result = client.warmup()
        assert result["kernels"] == 7
        assert result["compiled"] + result["cached"] == 7


def test_stale_unix_socket_is_cleared(tmp_path):
    """A socket file left by a SIGKILLed daemon must not block restart."""
    path = str(tmp_path / "swgemm.sock")
    stale = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
    stale.bind(path)  # bound but never listening — exactly what a crash leaves
    stale.close()
    assert (tmp_path / "swgemm.sock").exists()
    handle = start_in_thread(
        CompileService(ServiceConfig()),
        ServeConfig(socket_path=path, workers=1, quota=None),
    )
    try:
        with Client(path, tenant="t") as client:
            assert client.ping()["pong"]
    finally:
        handle.stop()


def test_live_unix_socket_is_a_conflict(tmp_path):
    """A second daemon on a socket owned by a live one fails cleanly."""
    from repro.errors import ConfigurationError

    path = str(tmp_path / "swgemm.sock")
    handle = start_in_thread(
        CompileService(ServiceConfig()),
        ServeConfig(socket_path=path, workers=1, quota=None),
    )
    try:
        with pytest.raises(ConfigurationError, match="live daemon"):
            start_in_thread(
                CompileService(ServiceConfig()),
                ServeConfig(socket_path=path, workers=1, quota=None),
            )
    finally:
        handle.stop()


def test_socket_path_occupied_by_regular_file(tmp_path):
    from repro.errors import ConfigurationError

    path = tmp_path / "swgemm.sock"
    path.write_text("occupied")
    with pytest.raises(ConfigurationError, match="not a socket"):
        start_in_thread(
            CompileService(ServiceConfig()),
            ServeConfig(socket_path=str(path), workers=1, quota=None),
        )
    assert path.read_text() == "occupied"  # never clobbered


def test_read_timeout_raises_client_timeout_not_deadlock():
    """A server that accepts but never answers must produce a
    ClientTimeout — *not* a connection-loss retry (the request may still
    be executing server-side; a blind resend would double the work) and
    not a deadlock (the error path runs under the client lock, and
    closing there used to re-take the non-reentrant lock and hang)."""
    from repro.errors import ClientTimeout

    listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
    listener.bind(("127.0.0.1", 0))
    listener.listen(1)
    accepted = []

    def accept_and_hold():
        conn, _ = listener.accept()
        accepted.append(conn)  # keep it open; never write a byte

    acceptor = threading.Thread(target=accept_and_hold, daemon=True)
    acceptor.start()
    outcome = {}

    def do_request():
        client = Client(listener.getsockname(), tenant="t", timeout=0.5)
        try:
            client.ping()
        except ServeError as exc:
            outcome["error"] = exc
        finally:
            client.close()  # idempotent even after the error-path close
            outcome["retries"] = client.retries

    worker = threading.Thread(target=do_request, daemon=True)
    worker.start()
    worker.join(timeout=10.0)
    try:
        assert not worker.is_alive(), "client deadlocked on timeout"
        assert isinstance(outcome["error"], ClientTimeout)
        assert outcome["error"].timeout_s == 0.5
        assert "not retried" in str(outcome["error"])
        # The request was never resent — even though ping is idempotent.
        assert outcome["retries"] == 0
    finally:
        for conn in accepted:
            conn.close()
        listener.close()
