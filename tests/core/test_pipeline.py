"""The end-to-end compiler driver and the final schedule tree."""

import pytest

from repro.core import CompilerOptions, GemmCompiler, GemmSpec
from repro.errors import CompilationError, ConfigurationError
from repro.poly.astnodes import CommStmt, ForLoop, IfStmt, KernelCall, NaiveComputeStmt, walk_stmts
from repro.poly.schedule_tree import ExtensionNode, FilterNode, MarkNode
from repro.sunway.arch import SW26010PRO, TOY_ARCH


def compile_with(options, spec=None, arch=SW26010PRO):
    spec = spec or GemmSpec(batch_param="BS" if options.batch else None)
    return GemmCompiler(arch, options).compile(spec)


def comm_kinds(program):
    return [
        s.kind for s in walk_stmts(program.cpe_program.body)
        if isinstance(s, CommStmt)
    ]


def test_full_variant_tree_has_fig11_elements():
    program = compile_with(CompilerOptions.full())
    tree = program.tree
    assert tree.find_mark("micro_kernel") is not None
    extensions = tree.find_all(ExtensionNode)
    assert len(extensions) >= 4  # C level, DMA peel, DMA loop, RMA peel, RMA loop
    # Peeling guards exist: a filter with constraints on ko and on km.
    guarded = [f for f in tree.find_all(FilterNode) if f.constraints]
    assert len(guarded) >= 2


def test_full_variant_ast_statement_mix():
    program = compile_with(CompilerOptions.full())
    kinds = comm_kinds(program)
    assert "dma_iget" in kinds
    assert "dma_iput" in kinds
    assert "rma_row_ibcast" in kinds
    assert "rma_col_ibcast" in kinds
    assert "synch" in kinds
    kernel_calls = [
        s for s in walk_stmts(program.cpe_program.body)
        if isinstance(s, KernelCall)
    ]
    assert kernel_calls and kernel_calls[0].name == "asm_dgemm_64x64x32"


def test_no_rma_variant_has_no_broadcasts():
    program = compile_with(CompilerOptions.with_asm())
    kinds = comm_kinds(program)
    assert "rma_row_ibcast" not in kinds
    assert "synch" not in kinds
    assert "dma_iget" in kinds


def test_baseline_uses_naive_compute():
    program = compile_with(CompilerOptions.baseline())
    naive = [
        s for s in walk_stmts(program.cpe_program.body)
        if isinstance(s, NaiveComputeStmt)
    ]
    assert naive
    assert naive[0].extents == (64, 64, 32)
    assert not [
        s for s in walk_stmts(program.cpe_program.body)
        if isinstance(s, KernelCall)
    ]


def test_issue_ahead_guard_present_only_with_hiding():
    with_hiding = compile_with(CompilerOptions.full())
    without = compile_with(CompilerOptions.with_rma())
    ifs_with = [
        s for s in walk_stmts(with_hiding.cpe_program.body) if isinstance(s, IfStmt)
    ]
    ifs_without = [
        s for s in walk_stmts(without.cpe_program.body) if isinstance(s, IfStmt)
    ]
    # Hiding adds the x <= bound-2 prefetch guards on top of the RMA
    # owner guards present in both.
    assert len(ifs_with) > len(ifs_without)


def test_reply_declarations_cover_all_counters():
    program = compile_with(CompilerOptions.full())
    names = {r.name for r in program.cpe_program.replies}
    assert {"get_replyA", "get_replyB", "get_replyC", "put_replyC",
            "rbcast_replysA", "rbcast_replyrA",
            "cbcast_replysB", "cbcast_replyrB"} <= names


def test_buffer_declarations_match_plan():
    program = compile_with(CompilerOptions.full())
    decls = {b.name: b.shape for b in program.cpe_program.buffers}
    assert decls["local_C"] == (64, 64)
    assert decls["local_A_dma"] == (2, 64, 32)
    assert decls["local_B_bc"] == (2, 32, 64)


def test_spm_budget_reported():
    program = compile_with(CompilerOptions.full())
    assert program.spm_bytes() == 160 * 1024


def test_codegen_takes_milliseconds():
    """§8.5: generating the code takes seconds, not months — our
    reproduction compiles in well under a second."""
    program = compile_with(CompilerOptions.full())
    assert program.codegen_seconds < 1.0


def test_padding_queries():
    program = compile_with(CompilerOptions.full())
    assert program.padded_shape(1000, 1000, 1000) == (1024, 1024, 1024)
    assert not program.requires_padding(512, 512, 256)
    assert program.requires_padding(512, 512, 200)


def test_fusion_mismatch_rejected():
    spec = GemmSpec()  # no prologue
    with pytest.raises(CompilationError):
        GemmCompiler(SW26010PRO, CompilerOptions.full().with_(fusion="prologue")).compile(spec)


def test_spec_fusion_reconciles_options():
    spec = GemmSpec(epilogue_func="relu")
    program = GemmCompiler(SW26010PRO, CompilerOptions.full()).compile(spec)
    assert program.options.fusion == "epilogue"
    assert program.options.epilogue_func == "relu"


def test_batched_requires_flag():
    with pytest.raises(CompilationError):
        GemmCompiler(SW26010PRO, CompilerOptions.full()).compile(
            GemmSpec(batch_param="BS")
        )


def test_batch_loop_in_ast():
    program = compile_with(CompilerOptions.full().with_(batch=True))
    loops = [
        s.var for s in walk_stmts(program.cpe_program.body)
        if isinstance(s, ForLoop)
    ]
    assert loops[0] == "b"  # batch loop outermost, started once (§8.3)


def test_invalid_option_combination():
    with pytest.raises(ConfigurationError):
        CompilerOptions(use_asm=False, enable_latency_hiding=True)


def test_describe():
    program = compile_with(CompilerOptions.full())
    info = program.describe()
    assert info["variant"] == "+hiding"
    assert info["arch"]["mesh"] == "8x8"


def test_toy_arch_compiles_all_variants():
    for options in (
        CompilerOptions.baseline(),
        CompilerOptions.with_asm(),
        CompilerOptions.with_rma(),
        CompilerOptions.full(),
    ):
        program = compile_with(options, arch=TOY_ARCH)
        assert program.plan.mt == 8
