"""The instrumented pass pipeline: composition, hooks, stats, snapshots."""

import pytest

from repro.core import (
    CompilerOptions,
    GemmCompiler,
    GemmSpec,
    PassManager,
    build_pipeline,
    pipeline_identity,
    reconcile_options,
)
from repro.core.passes import (
    DISABLE_REWRITES,
    TileSelectionPass,
    apply_disabled_passes,
)
from repro.errors import CompilationError, ConfigurationError
from repro.runtime import serde
from repro.sunway.arch import SW26010PRO, TOY_ARCH


def names(passes):
    return [p.name for p in passes]


def pipeline_names(spec=None, options=None, arch=SW26010PRO):
    spec = spec or GemmSpec()
    options = reconcile_options(spec, options or CompilerOptions.full())
    return names(build_pipeline(spec, arch, options))


# -- pipeline composition ----------------------------------------------------


def test_default_pipeline_order():
    assert pipeline_names() == [
        "dependence-analysis",
        "tile-selection",
        "compute-decomposition",
        "dma-derivation",
        "rma-derivation",
        "micro-kernel-mark",
        "latency-hiding",
        "ast-generation",
        "verify",
    ]


def test_variants_are_pipeline_edits():
    batched = pipeline_names(
        GemmSpec(batch_param="BS"), CompilerOptions.full().with_(batch=True)
    )
    assert "batch-isolation" in batched
    assert batched.index("batch-isolation") == batched.index(
        "compute-decomposition"
    ) + 1

    fused = pipeline_names(GemmSpec(prologue_func="quant"))
    assert "prologue-fusion" in fused

    no_rma = pipeline_names(options=CompilerOptions.full().with_(enable_rma=False))
    assert "rma-derivation" not in no_rma

    no_hiding = pipeline_names(options=CompilerOptions.with_rma())
    assert "latency-hiding" not in no_hiding
    assert "communication-schedule" in no_hiding


def test_pipeline_identity_is_stable_and_shape_sensitive():
    spec, options = GemmSpec(), CompilerOptions.full()
    a = pipeline_identity(build_pipeline(spec, SW26010PRO, options))
    b = pipeline_identity(build_pipeline(spec, SW26010PRO, options))
    assert a == b
    no_rma = reconcile_options(spec, options.with_(enable_rma=False))
    c = pipeline_identity(build_pipeline(spec, SW26010PRO, no_rma))
    assert a != c


# -- disable / replace hooks -------------------------------------------------


def test_disable_unknown_pass_rejected():
    with pytest.raises(ConfigurationError):
        apply_disabled_passes(CompilerOptions.full(), ("dma-derivation",))


def test_disable_rewrites_cover_expected_passes():
    assert set(DISABLE_REWRITES) == {"latency-hiding", "rma-derivation", "verify"}


def test_disable_latency_hiding_matches_ablation_bit_exactly():
    """``--disable-pass latency-hiding`` must reproduce the §8.1
    no-hiding ablation: identical plan, identical AST, identical
    effective options."""
    disabled = GemmCompiler(
        SW26010PRO, CompilerOptions.full(), disable_passes=("latency-hiding",)
    ).compile(GemmSpec())
    ablation = GemmCompiler(SW26010PRO, CompilerOptions.with_rma()).compile(
        GemmSpec()
    )
    assert disabled.options == ablation.options
    assert serde.encode(disabled.plan) == serde.encode(ablation.plan)
    assert serde.encode(disabled.cpe_program) == serde.encode(
        ablation.cpe_program
    )


def test_replacement_swaps_named_pass():
    class LoudTileSelection(TileSelectionPass):
        def run(self, ctx):
            super().run(ctx)
            ctx.info("custom tile selection ran")

    compiler = GemmCompiler(
        SW26010PRO,
        CompilerOptions.full(),
        replacements={"tile-selection": LoudTileSelection()},
    )
    program, ctx = compiler.compile_with_context(GemmSpec())
    assert any(
        d.message == "custom tile selection ran" for d in ctx.diagnostics
    )
    # A replaced pass changes the pipeline identity (and so the cache key).
    default_id = GemmCompiler(
        SW26010PRO, CompilerOptions.full()
    ).pipeline_identity_for(GemmSpec())
    assert compiler.pipeline_identity_for(GemmSpec()) != default_id
    assert program.cpe_program is not None


def test_replacement_of_unknown_pass_rejected():
    with pytest.raises(ConfigurationError):
        build_pipeline(
            GemmSpec(),
            SW26010PRO,
            CompilerOptions.full(),
            {"no-such-pass": TileSelectionPass()},
        )


# -- stats, snapshots, diagnostics ------------------------------------------


def test_pass_stats_match_pipeline_and_sum_to_codegen_seconds():
    compiler = GemmCompiler(SW26010PRO, CompilerOptions.full())
    program = compiler.compile(GemmSpec())
    assert [s.name for s in program.pass_stats] == names(
        compiler.pipeline_for(GemmSpec())
    )
    assert program.codegen_seconds == sum(s.seconds for s in program.pass_stats)
    assert all(s.seconds >= 0.0 for s in program.pass_stats)
    assert all(s.section.startswith("§") for s in program.pass_stats)


def test_one_snapshot_per_pass_and_diagnostics_sliced():
    compiler = GemmCompiler(SW26010PRO, CompilerOptions.full())
    _, ctx = compiler.compile_with_context(GemmSpec())
    assert list(ctx.snapshots) == [s.name for s in ctx.stats]
    # Every diagnostic belongs to exactly one pass's stat slice.
    sliced = [d for s in ctx.stats for d in s.diagnostics]
    assert sliced == list(ctx.diagnostics)
    assert any(d.category == "decision" for d in ctx.diagnostics)


def test_print_after_sink_receives_headers():
    seen = []
    manager_sink = lambda pass_, header, snapshot: seen.append(
        (pass_.name, header, snapshot)
    )
    compiler = GemmCompiler(SW26010PRO, CompilerOptions.full())
    compiler.compile_with_context(
        GemmSpec(), print_after=["tile-selection"], sink=manager_sink
    )
    assert [name for name, _, _ in seen] == ["tile-selection"]
    assert "IR after" in seen[0][1] and "tile-selection" in seen[0][1]
    assert "--- schedule tree ---" in seen[0][2]


def test_print_after_unknown_pass_rejected():
    with pytest.raises(ConfigurationError):
        PassManager(
            build_pipeline(GemmSpec(), SW26010PRO, CompilerOptions.full()),
            print_after=["nonexistent-pass"],
        )


# -- context and option plumbing --------------------------------------------


def test_decomposition_carries_arch():
    for arch in (SW26010PRO, TOY_ARCH):
        program = GemmCompiler(arch, CompilerOptions.full()).compile(GemmSpec())
        assert program.decomposition.arch is arch


def test_reconciled_options_land_on_program():
    # Spec-implied fusion, inert batch flag and unused fusion funcs are
    # all normalised before compilation and stamped on the program.
    program = GemmCompiler(
        SW26010PRO,
        CompilerOptions.full().with_(prologue_func="sigmoid"),
    ).compile(GemmSpec(epilogue_func="relu"))
    assert program.options.fusion == "epilogue"
    assert program.options.epilogue_func == "relu"
    # The unused prologue slot is inert and snaps back to the default.
    assert program.options.prologue_func == CompilerOptions().prologue_func


def test_reconcile_rejects_mismatches():
    with pytest.raises(CompilationError):
        reconcile_options(GemmSpec(batch_param="BS"), CompilerOptions.full())
    with pytest.raises(CompilationError):
        reconcile_options(
            GemmSpec(), CompilerOptions.full().with_(fusion="prologue")
        )
