"""GemmSpec validation and polyhedral views."""

import pytest

from repro.core.options import ELEMENTWISE_FUNCS, CompilerOptions
from repro.core.spec import GemmSpec
from repro.errors import ConfigurationError


def test_defaults():
    spec = GemmSpec()
    assert spec.param_names() == ("M", "N", "K")
    assert spec.loop_dims() == ("i", "j", "k")
    assert not spec.is_batched


def test_batched_views():
    spec = GemmSpec(batch_param="BS")
    assert spec.loop_dims() == ("b", "i", "j", "k")
    assert spec.param_names() == ("BS", "M", "N", "K")
    assert spec.statement_space().rank == 4


def test_distinct_names_enforced():
    with pytest.raises(ConfigurationError):
        GemmSpec(a_name="X", b_name="X")
    with pytest.raises(ConfigurationError):
        GemmSpec(m_param="P", n_param="P")
    with pytest.raises(ConfigurationError):
        GemmSpec(batch_param="M")


def test_both_fusions_rejected():
    with pytest.raises(ConfigurationError):
        GemmSpec(prologue_func="quant", epilogue_func="relu")


def test_domain_counts():
    spec = GemmSpec()
    assert spec.domain().count({"M": 3, "N": 2, "K": 2}) == 12
    batched = GemmSpec(batch_param="BS")
    assert batched.domain().count({"BS": 2, "M": 2, "N": 2, "K": 2}) == 16


def test_accesses_roles():
    accesses = GemmSpec().accesses()
    writes = [a for a in accesses if a.is_write]
    assert len(writes) == 1 and writes[0].array == "C"
    names = sorted({a.array for a in accesses})
    assert names == ["A", "B", "C"]


def test_transposed_dims():
    spec = GemmSpec(trans_a=True, trans_b=True)
    assert spec.a_dims() == ("K", "M")
    assert spec.b_dims() == ("N", "K")
    assert spec.c_dims() == ("M", "N")
    # Subscripts follow the storage layout.
    a_access = next(a for a in spec.accesses() if a.array == "A")
    assert [str(e) for e in a_access.map.exprs] == ["k", "i"]


def test_bind_params_validation():
    spec = GemmSpec()
    env = spec.bind_params(4, 5, 6)
    assert env == {"M": 4, "N": 5, "K": 6}
    with pytest.raises(ConfigurationError):
        spec.bind_params(0, 5, 6)
    with pytest.raises(ConfigurationError):
        spec.bind_params(4, 5, 6, batch=2)  # not batched
    batched = GemmSpec(batch_param="BS")
    with pytest.raises(ConfigurationError):
        batched.bind_params(4, 5, 6)  # batch missing


def test_flops():
    assert GemmSpec().flops(2, 3, 4) == 48.0
    assert GemmSpec().flops(2, 3, 4, batch=2) == 96.0


def test_options_variant_names():
    assert CompilerOptions.baseline().variant_name() == "dma-only"
    assert CompilerOptions.with_asm().variant_name() == "+asm"
    assert CompilerOptions.with_rma().variant_name() == "+rma"
    assert CompilerOptions.full().variant_name() == "+hiding"


def test_options_validation():
    with pytest.raises(ConfigurationError):
        CompilerOptions(fusion="sideways")
    with pytest.raises(ConfigurationError):
        CompilerOptions(prologue_func="nope")
    assert "quant" in ELEMENTWISE_FUNCS


def test_options_with_override():
    options = CompilerOptions.full().with_(batch=True)
    assert options.batch and options.use_asm
