"""DMA argument derivation (§4, Eq. 1) and RMA specs (§5)."""

import pytest

from repro.core.decomposition import decompose
from repro.core.dma import derive_dma_specs
from repro.core.options import CompilerOptions
from repro.core.rma import derive_rma_specs
from repro.core.spec import GemmSpec
from repro.core.tile_model import plan_for_kernel
from repro.errors import CompilationError
from repro.sunway.arch import SW26010PRO


def make(options=None, spec=None):
    options = options or CompilerOptions.full()
    spec = spec or GemmSpec(batch_param="BS" if options.batch else None)
    plan = plan_for_kernel(SW26010PRO, options)
    dec = decompose(spec, plan, options)
    return dec


def test_tile_shapes_match_plan():
    specs = derive_dma_specs(make())
    assert (specs["getA"].rows, specs["getA"].cols) == (64, 32)
    assert (specs["getB"].rows, specs["getB"].cols) == (32, 64)
    assert (specs["getC"].rows, specs["getC"].cols) == (64, 64)
    assert specs["getA"].size == 2048
    assert specs["putC"].direction == "put"


def test_eq1_start_coordinates_for_A():
    """r = 512·ic + 64·Rid, c = 256·ko + 32·Cid — Eq. (1) instantiated."""
    specs = derive_dma_specs(make())
    a = specs["getA"]
    env = {"ic": 2, "Rid": 3, "ko": 1, "Cid": 5}
    assert a.row_expr.evaluate(env) == 512 * 2 + 64 * 3
    assert a.col_expr.evaluate(env) == 256 * 1 + 32 * 5
    assert a.ld_param == "K"


def test_eq1_start_coordinates_for_B():
    specs = derive_dma_specs(make())
    b = specs["getB"]
    env = {"jc": 1, "Cid": 2, "ko": 3, "Rid": 4}
    assert b.row_expr.evaluate(env) == 256 * 3 + 32 * 4
    assert b.col_expr.evaluate(env) == 512 * 1 + 64 * 2
    assert b.ld_param == "N"


def test_eq1_start_coordinates_for_C():
    specs = derive_dma_specs(make())
    c = specs["getC"]
    env = {"ic": 1, "Rid": 2, "jc": 3, "Cid": 4}
    assert c.row_expr.evaluate(env) == 512 + 128
    assert c.col_expr.evaluate(env) == 512 * 3 + 64 * 4


def test_double_buffer_parity():
    specs = derive_dma_specs(make())
    assert specs["getA"].slot_expr.evaluate({"ko": 3}) == 1
    assert specs["getA"].slot_expr.evaluate({"ko": 4}) == 0
    # C is reused across the k loop: single slot.
    assert specs["getC"].slot_expr.evaluate({}) == 0


def test_no_hiding_uses_single_slots():
    specs = derive_dma_specs(make(CompilerOptions.with_rma()))
    assert specs["getA"].slot_expr.evaluate({"ko": 3}) == 0


def test_no_rma_slices_by_ktile():
    specs = derive_dma_specs(make(CompilerOptions.with_asm()))
    a = specs["getA"]
    env = {"ic": 0, "Rid": 0, "ktile": 5}
    assert a.col_expr.evaluate(env) == 5 * 32
    # Without RMA there is no Cid term in A's k coordinate.
    assert "Cid" not in a.col_expr.variables()


def test_batched_leading_coordinate():
    options = CompilerOptions.full().with_(batch=True)
    specs = derive_dma_specs(make(options))
    a = specs["getA"]
    assert a.batch_expr is not None
    assert a.batch_expr.evaluate({"b": 7}) == 7


def test_substituted_for_issue_ahead():
    from repro.poly.affine import aff_var

    specs = derive_dma_specs(make())
    ahead = specs["getA"].substituted({"ko": aff_var("ko") + 1})
    assert ahead.col_expr.evaluate({"ko": 1, "Cid": 0}) == 512
    assert ahead.slot_expr.evaluate({"ko": 1}) == 0  # (1+1) % 2


# -- RMA ----------------------------------------------------------------------


def test_rma_specs_roles():
    dec = make()
    specs = derive_rma_specs(dec)
    a = specs["rbcastA"]
    b = specs["cbcastB"]
    assert (a.kind, a.owner_var) == ("row", "Cid")
    assert (b.kind, b.owner_var) == ("col", "Rid")
    assert a.size == 64 * 32
    assert b.size == 32 * 64


def test_rma_parity_levels():
    """A/B broadcasts double-buffer on the inner loop, their DMA sources
    on the outer loop (§6.3's two pipeline levels)."""
    specs = derive_rma_specs(make())
    a = specs["rbcastA"]
    assert a.src_slot_expr.evaluate({"ko": 3}) == 1
    assert a.dst_slot_expr.evaluate({"km": 3}) == 1
    assert a.dst_slot_expr.evaluate({"km": 4}) == 0


def test_rma_requires_rma_plan():
    dec = make(CompilerOptions.with_asm())
    with pytest.raises(CompilationError):
        derive_rma_specs(dec)


def test_buffers_distinct_between_levels():
    specs = derive_rma_specs(make())
    assert specs["rbcastA"].src_buffer == "local_A_dma"
    assert specs["rbcastA"].dst_buffer == "local_A_bc"
