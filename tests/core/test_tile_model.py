"""The analytical tile-size model (§3.1)."""

import pytest

from repro.errors import ConfigurationError, SPMOverflowError
from repro.core.options import CompilerOptions
from repro.core.tile_model import (
    dma_burst_efficiency,
    kernel_efficiency_model,
    plan_for_kernel,
    score_shape,
    search_optimal_shape,
    spm_reserve_bytes,
)
from repro.sunway.arch import SW26010, SW26010PRO, TOY_ARCH, MicroKernelShape


def test_full_plan_has_nine_buffers():
    """§6.3: 1×C + (2 DMA + 2 RMA) × (A + B) = nine local buffers."""
    plan = plan_for_kernel(SW26010PRO, CompilerOptions.full())
    total_slots = sum(b.slots for b in plan.buffers)
    assert total_slots == 9
    assert plan.spm_bytes() == 160 * 1024


def test_plan_fits_256kb_spm():
    plan = plan_for_kernel(SW26010PRO, CompilerOptions.full())
    assert plan.spm_bytes() <= SW26010PRO.spm_bytes - spm_reserve_bytes(SW26010PRO)


def test_chunk_geometry_matches_paper():
    """Each mesh pass executes a 512×512×256 GEMM (§4)."""
    plan = plan_for_kernel(SW26010PRO, CompilerOptions.full())
    assert (plan.chunk_m, plan.chunk_n, plan.k_step) == (512, 512, 256)
    assert plan.strip_factor == 8


def test_no_rma_plan_has_no_broadcast_buffers():
    plan = plan_for_kernel(SW26010PRO, CompilerOptions.with_asm())
    assert not plan.has_buffer("A_bc")
    assert plan.k_step == 32
    assert plan.strip_factor == 1


def test_no_hiding_plan_single_buffers():
    plan = plan_for_kernel(SW26010PRO, CompilerOptions.with_rma())
    assert all(b.slots == 1 for b in plan.buffers)
    assert sum(b.slots for b in plan.buffers) == 5


def test_plan_rejects_oversized_kernel():
    with pytest.raises(SPMOverflowError):
        plan_for_kernel(
            SW26010PRO, CompilerOptions.full(), MicroKernelShape(128, 128, 64)
        )


def test_rma_on_sw26010_rejected():
    with pytest.raises(ConfigurationError, match="RMA"):
        plan_for_kernel(SW26010, CompilerOptions.full())


def test_sw26010_plan_works_without_rma():
    options = CompilerOptions(use_asm=True, enable_rma=False,
                              enable_latency_hiding=True)
    plan = plan_for_kernel(SW26010, options)
    assert plan.spm_bytes() <= SW26010.spm_bytes


def test_toy_plan():
    plan = plan_for_kernel(TOY_ARCH, CompilerOptions.full())
    assert (plan.mt, plan.nt, plan.kt) == (8, 8, 4)
    assert (plan.chunk_m, plan.chunk_n, plan.k_step) == (16, 16, 8)


def test_buffer_lookup():
    plan = plan_for_kernel(SW26010PRO, CompilerOptions.full())
    assert plan.buffer("C").shape == (64, 64)
    assert plan.buffer("A_dma").shape == (2, 64, 32)
    with pytest.raises(ConfigurationError):
        plan.buffer("nonsense")


# -- the analytical search ------------------------------------------------------


def test_model_selects_the_papers_kernel_shape():
    """§3.1/§7.2: 64×64×32 is the best-performing shape, and the model
    agrees without any tuning."""
    best, _scores = search_optimal_shape(SW26010PRO)
    assert (best.mt, best.nt, best.kt) == (64, 64, 32)


def test_model_scores_are_populated():
    _best, scores = search_optimal_shape(SW26010PRO)
    feasible = [s for s in scores if s.feasible]
    assert len(feasible) >= 5
    assert all(s.gflops_per_cpe > 0 for s in feasible)
    # The winner must be kernel-limited — a communication-bound optimum
    # would mean the SPM was being wasted.
    best = max(feasible, key=lambda s: s.gflops_per_cpe)
    assert best.limiter == "kernel"


def test_infeasible_shapes_flagged():
    score = score_shape(SW26010PRO, 256, 256, 64)
    assert not score.feasible


def test_kernel_efficiency_model_shape():
    assert kernel_efficiency_model(32) > kernel_efficiency_model(8)
    assert kernel_efficiency_model(10_000) == pytest.approx(1.0, abs=1e-3)


def test_dma_burst_efficiency():
    assert dma_burst_efficiency(256) == 1.0
    assert dma_burst_efficiency(64) == 0.5


def test_search_fails_on_tiny_spm():
    tiny = SW26010PRO.scaled(spm_bytes=1024)
    with pytest.raises(ConfigurationError):
        search_optimal_shape(tiny)
