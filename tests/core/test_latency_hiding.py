"""Structure of the communication/pipelining trees (Figs. 9 and 11)."""

import pytest

from repro.core import CompilerOptions, GemmCompiler, GemmSpec
from repro.poly.schedule_tree import (
    BandNode,
    ExtensionNode,
    FilterNode,
    SequenceNode,
)
from repro.sunway.arch import SW26010PRO


def tree_for(options):
    return GemmCompiler(SW26010PRO, options).compile(GemmSpec()).tree


def ext_stmt_names(tree):
    names = []
    for node in tree.find_all(ExtensionNode):
        names.extend(s.name for s in node.stmts)
    return names


def test_fig9_tree_without_hiding():
    """No peeling: every communication is scheduled ⊗ with its wait."""
    tree = tree_for(CompilerOptions.with_rma())
    names = ext_stmt_names(tree)
    assert "getA" in names and "get_replyA" in names
    assert "rbcastA" in names and "rbcast_replyA" in names
    # No issue-ahead statements.
    assert not any(n.endswith("_x1") or n.endswith("_l1") for n in names)
    # And no filter carries peeling constraints.
    assert all(not f.constraints for f in tree.find_all(FilterNode))


def test_fig11_tree_with_hiding():
    """Peeled first issues + guarded next-iteration issues at both levels."""
    tree = tree_for(CompilerOptions.full())
    names = ext_stmt_names(tree)
    for expected in (
        "getA_0", "getB_0",          # peeled DMA issue (outer level)
        "getA_x1", "getB_x1",        # issue-ahead for iteration x+1
        "rbcastA_0", "cbcastB_0",    # peeled RMA issue (inner level)
        "rbcastA_l1", "cbcastB_l1",  # issue-ahead for slice l+1
        "synch_0", "synch_l",
    ):
        assert expected in names, expected
    guarded = [f for f in tree.find_all(FilterNode) if f.constraints]
    labels = {f.label for f in guarded}
    assert "outer k dimension" in labels
    assert "inner k dimension" in labels


def test_c_extension_wraps_everything():
    """getC/putC sit at the mesh level, outside the whole k loop nest —
    'the extension nodes for output matrix tile C are introduced outside
    the reduced dimension' (§5)."""
    tree = tree_for(CompilerOptions.full())
    mesh_band = next(
        b for b in tree.find_all(BandNode)
        if b.members and b.members[0].binding == "mesh_row"
    )
    ext = mesh_band.child
    assert isinstance(ext, ExtensionNode)
    names = [s.name for s in ext.stmts]
    assert names[0] == "getC"
    assert "putC" in names
    seq = ext.child
    assert isinstance(seq, SequenceNode)
    assert tuple(seq.children[0].statements) == ("getC", "get_replyC")
    assert tuple(seq.children[-1].statements) == ("putC", "put_replyC")


def test_scale_c_between_get_and_compute():
    tree = tree_for(CompilerOptions.full())
    mesh_band = next(
        b for b in tree.find_all(BandNode)
        if b.members and b.members[0].binding == "mesh_row"
    )
    seq = mesh_band.child.child
    order = [tuple(f.statements) for f in seq.children]
    assert order[1] == ("scaleC",)


def test_epilogue_filter_before_putc():
    options = CompilerOptions.full().with_(fusion="epilogue")
    spec = GemmSpec(epilogue_func="relu")
    tree = GemmCompiler(SW26010PRO, options).compile(spec).tree
    mesh_band = next(
        b for b in tree.find_all(BandNode)
        if b.members and b.members[0].binding == "mesh_row"
    )
    seq = mesh_band.child.child
    order = [tuple(f.statements) for f in seq.children]
    assert ("epilogueC",) in order
    assert order.index(("epilogueC",)) == len(order) - 2  # just before putC


def test_prologue_filter_inside_outer_k_loop():
    options = CompilerOptions.full().with_(fusion="prologue")
    spec = GemmSpec(prologue_func="quant")
    tree = GemmCompiler(SW26010PRO, options).compile(spec).tree
    names = ext_stmt_names(tree)
    assert "prologueA" in names
    # The prologue statement's filter lives under the outer k band.
    kouter = next(
        b for b in tree.find_all(BandNode)
        if b.members and b.members[0].var == "ko"
    )
    under = [
        tuple(f.statements)
        for f in kouter.child.walk()
        if isinstance(f, FilterNode)
    ]
    assert ("prologueA",) in under


def test_no_rma_tree_has_single_dma_level():
    tree = tree_for(CompilerOptions.with_asm())
    names = ext_stmt_names(tree)
    assert not any("bcast" in n for n in names)
    assert not any(n.startswith("synch") for n in names)
    bands = [b.member_vars() for b in tree.find_all(BandNode)]
    assert ["ktile"] in bands
    assert ["ko"] not in bands
