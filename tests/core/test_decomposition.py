"""Compute decomposition (§3): tiling, mesh binding, strip-mining."""

import pytest

from repro.errors import CompilationError
from repro.core.decomposition import decompose, verify_reconstruction
from repro.core.options import CompilerOptions
from repro.core.spec import GemmSpec
from repro.core.tile_model import plan_for_kernel
from repro.poly.schedule_tree import BandNode
from repro.sunway.arch import SW26010PRO, TOY_ARCH


def make(options=None, spec=None, arch=SW26010PRO):
    options = options or CompilerOptions.full()
    spec = spec or GemmSpec(batch_param="BS" if options.batch else None)
    plan = plan_for_kernel(arch, options)
    return decompose(spec, plan, options)


def test_band_chain_structure_rma():
    dec = make()
    assert set(dec.bands) == {"chunk", "mesh", "kouter", "kmid", "point"}
    assert dec.bands["chunk"].member_vars() == ["ic", "jc"]
    assert dec.bands["mesh"].member_vars() == ["Rid", "Cid"]
    assert dec.bands["kouter"].member_vars() == ["ko"]
    assert dec.bands["kmid"].member_vars() == ["km"]
    assert dec.bands["point"].member_vars() == ["ip", "jp", "kp"]


def test_mesh_members_are_spatial():
    dec = make()
    bindings = [m.binding for m in dec.bands["mesh"].members]
    assert bindings == ["mesh_row", "mesh_col"]


def test_no_rma_uses_single_k_tile_loop():
    dec = make(CompilerOptions.with_asm())
    assert "ktile" in dec.bands
    assert "kmid" not in dec.bands


def test_batched_band_isolated_first():
    dec = make(CompilerOptions.full().with_(batch=True))
    assert dec.bands["batch"].members[0].binding == "batch"
    # The batch band must be the domain's direct child (Fig. 3).
    assert dec.root.child is dec.bands["batch"]


def test_batch_requires_option():
    spec = GemmSpec(batch_param="BS")
    plan = plan_for_kernel(SW26010PRO, CompilerOptions.full())
    with pytest.raises(CompilationError, match="--batch"):
        decompose(spec, plan, CompilerOptions.full())


def test_extents_evaluate():
    dec = make()
    env = {"M": 1024, "N": 2048, "K": 512}
    ic_hi = dec.bands["chunk"].members[0].extent[1]
    jc_hi = dec.bands["chunk"].members[1].extent[1]
    ko_hi = dec.bands["kouter"].members[0].extent[1]
    assert ic_hi.evaluate(env) == 2
    assert jc_hi.evaluate(env) == 4
    assert ko_hi.evaluate(env) == 2


def test_schedules_match_fig4b():
    """Rid = floor(i/64) mod 8, Cid = floor(j/64) mod 8."""
    dec = make()
    rid = dec.bands["mesh"].members[0].schedule_for("S1")
    for i in (0, 63, 64, 511, 512, 1000):
        assert rid.evaluate({"i": i}) == (i // 64) % 8


def test_stripmine_schedule_matches_fig6():
    dec = make()
    km = dec.bands["kmid"].members[0].schedule_for("S1")
    for k in (0, 31, 32, 255, 256, 300):
        assert km.evaluate({"k": k}) == (k // 32) % 8


def test_reconstruction_roundtrip():
    dec = make()
    verify_reconstruction(dec, {"M": 1024, "N": 1024, "K": 512}, samples=64)


def test_reconstruction_roundtrip_no_rma():
    dec = make(CompilerOptions.with_asm())
    verify_reconstruction(dec, {"M": 1024, "N": 1024, "K": 512}, samples=64)


def test_reconstruction_roundtrip_batched():
    dec = make(CompilerOptions.full().with_(batch=True))
    verify_reconstruction(
        dec, {"M": 1024, "N": 512, "K": 512, "BS": 3}, samples=64
    )


def test_reconstruction_roundtrip_toy():
    dec = make(arch=TOY_ARCH)
    verify_reconstruction(dec, {"M": 64, "N": 48, "K": 32}, samples=64)


def test_coincidence_flags_propagate():
    dec = make()
    assert all(m.coincident for m in dec.bands["chunk"].members)
    assert all(m.coincident for m in dec.bands["mesh"].members)
    assert not dec.bands["kouter"].members[0].coincident
    ips = dec.bands["point"].members
    assert [m.coincident for m in ips] == [True, True, False]


def test_tree_is_linked_chain():
    dec = make()
    node = dec.root
    kinds = []
    while node.children:
        node = node.child
        kinds.append(type(node).__name__)
    assert all(k == "BandNode" for k in kinds)
    assert len(kinds) == 5
