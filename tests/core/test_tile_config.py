"""TileConfig: validation, normalisation in reconcile_options, and its
effect on plans, variant names and cache keys."""

import pytest

from repro.core import CompilerOptions, GemmSpec
from repro.core.options import TILE_ALIGN, TileConfig
from repro.core.passes import reconcile_options
from repro.core.tile_model import plan_for_kernel
from repro.errors import ConfigurationError
from repro.service import cache_key
from repro.sunway.arch import SW26010PRO, TOY_ARCH


# -- validation --------------------------------------------------------------


@pytest.mark.parametrize("bad", [(0, 64, 32), (64, -4, 32), (64, 64, 30)])
def test_tiles_must_be_positive_multiples_of_align(bad):
    with pytest.raises(ConfigurationError, match=f"multiple of {TILE_ALIGN}"):
        TileConfig(*bad)


def test_buffer_depth_must_be_none_1_or_2():
    with pytest.raises(ConfigurationError, match="buffer_depth"):
        TileConfig(64, 64, 32, buffer_depth=3)


def test_k_strip_must_be_positive():
    with pytest.raises(ConfigurationError, match="k_strip"):
        TileConfig(64, 64, 32, k_strip=0)


def test_name_encodes_all_pins():
    assert TileConfig(32, 128, 32).name() == "32x128x32"
    assert (
        TileConfig(32, 128, 32, buffer_depth=2, k_strip=8).name()
        == "32x128x32-d2-s8"
    )


def test_default_for_round_trips():
    cfg = TileConfig.default_for(SW26010PRO)
    assert cfg.shape() == SW26010PRO.micro_kernel
    assert cfg.is_default_for(SW26010PRO)
    assert not cfg.is_default_for(TOY_ARCH)


# -- normalisation in reconcile_options --------------------------------------


def test_default_config_collapses_to_none():
    options = CompilerOptions.full().with_(
        tile_config=TileConfig.default_for(SW26010PRO)
    )
    out = reconcile_options(GemmSpec(), options, SW26010PRO)
    assert out.tile_config is None


def test_explicit_single_buffer_disables_hiding():
    options = CompilerOptions.full().with_(
        tile_config=TileConfig(32, 128, 32, buffer_depth=1)
    )
    out = reconcile_options(GemmSpec(), options, SW26010PRO)
    assert not out.enable_latency_hiding
    assert out.tile_config.buffer_depth is None


def test_redundant_pins_are_cleared():
    options = CompilerOptions.full().with_(
        tile_config=TileConfig(
            32, 128, 32, buffer_depth=2, k_strip=SW26010PRO.mesh_rows
        )
    )
    out = reconcile_options(GemmSpec(), options, SW26010PRO)
    assert out.enable_latency_hiding
    assert out.tile_config == TileConfig(32, 128, 32)


def test_without_arch_tiles_pass_through():
    options = CompilerOptions.full().with_(
        tile_config=TileConfig.default_for(SW26010PRO)
    )
    out = reconcile_options(GemmSpec(), options)
    assert out.tile_config is not None


# -- effect on the plan and the artifact identity ----------------------------


def test_plan_follows_the_tile_config():
    options = CompilerOptions.full().with_(
        tile_config=TileConfig(32, 128, 32)
    )
    plan = plan_for_kernel(SW26010PRO, options)
    assert (plan.mt, plan.nt, plan.kt) == (32, 128, 32)


def test_mismatched_buffer_depth_is_rejected():
    no_hiding = CompilerOptions.full().with_(enable_latency_hiding=False)
    with pytest.raises(ConfigurationError, match="buffer_depth"):
        plan_for_kernel(
            SW26010PRO,
            no_hiding.with_(tile_config=TileConfig(64, 64, 32, buffer_depth=2)),
        )


def test_variant_name_carries_the_tile_suffix():
    options = CompilerOptions.full().with_(
        tile_config=TileConfig(32, 128, 32)
    )
    assert options.variant_name().endswith("@32x128x32")
    assert "@" not in CompilerOptions.full().variant_name()


def test_cache_key_ignores_a_restated_default():
    plain = cache_key(GemmSpec(), SW26010PRO, CompilerOptions.full())
    restated = cache_key(
        GemmSpec(),
        SW26010PRO,
        CompilerOptions.full().with_(
            tile_config=TileConfig.default_for(SW26010PRO)
        ),
    )
    assert plain == restated


def test_cache_key_separates_real_tile_configs():
    plain = cache_key(GemmSpec(), SW26010PRO, CompilerOptions.full())
    tuned = cache_key(
        GemmSpec(),
        SW26010PRO,
        CompilerOptions.full().with_(tile_config=TileConfig(32, 128, 32)),
    )
    assert plain != tuned
