"""Pattern recognition: C source → GemmSpec."""

import pytest

from repro.errors import PatternError
from repro.frontend.patterns import extract_spec

GEMM = """
void gemm(int M, int N, int K, double alpha,
          double A[M][K], double B[K][N], double C[M][N]) {
  for (int i = 0; i < M; i++)
    for (int j = 0; j < N; j++)
      for (int k = 0; k < K; k++)
        C[i][j] = C[i][j] + alpha * A[i][k] * B[k][j];
}
"""


def test_canonical_gemm():
    spec, options = extract_spec(GEMM, return_options=True)
    assert (spec.m_param, spec.n_param, spec.k_param) == ("M", "N", "K")
    assert (spec.a_name, spec.b_name, spec.c_name) == ("A", "B", "C")
    assert not spec.is_batched
    assert options.fusion == "none"


def test_gemm_without_alpha():
    src = GEMM.replace("double alpha,", "").replace("alpha * ", "")
    spec = extract_spec(src)
    assert spec.a_name == "A"


def test_plus_equals_spelling():
    src = GEMM.replace(
        "C[i][j] = C[i][j] + alpha * A[i][k] * B[k][j];",
        "C[i][j] += alpha * A[i][k] * B[k][j];",
    )
    assert extract_spec(src).c_name == "C"


def test_commuted_product():
    src = GEMM.replace("alpha * A[i][k] * B[k][j]", "B[k][j] * A[i][k] * alpha")
    spec = extract_spec(src)
    assert spec.a_name == "A" and spec.b_name == "B"


def test_loop_order_does_not_matter():
    src = """
    void gemm(int M, int N, int K, double A[M][K], double B[K][N], double C[M][N]) {
      for (int k = 0; k < K; k++)
        for (int i = 0; i < M; i++)
          for (int j = 0; j < N; j++)
            C[i][j] += A[i][k] * B[k][j];
    }
    """
    spec = extract_spec(src)
    assert (spec.m_param, spec.n_param, spec.k_param) == ("M", "N", "K")


def test_renamed_everything():
    src = """
    void mm(int rows, int cols, int depth, double X[rows][depth],
            double Y[depth][cols], double Z[rows][cols]) {
      for (int a = 0; a < rows; a++)
        for (int b = 0; b < cols; b++)
          for (int c = 0; c < depth; c++)
            Z[a][b] += X[a][c] * Y[c][b];
    }
    """
    spec = extract_spec(src)
    assert spec.m_param == "rows"
    assert spec.k_param == "depth"
    assert spec.a_name == "X"


def test_batched_gemm():
    src = """
    void bgemm(int BS, int M, int N, int K, double A[BS][M][K],
               double B[BS][K][N], double C[BS][M][N]) {
      for (int b = 0; b < BS; b++)
        for (int i = 0; i < M; i++)
          for (int j = 0; j < N; j++)
            for (int k = 0; k < K; k++)
              C[b][i][j] += A[b][i][k] * B[b][k][j];
    }
    """
    spec, options = extract_spec(src, return_options=True)
    assert spec.batch_param == "BS"
    assert options.batch


def test_prologue_pattern():
    src = """
    void fused(int M, int N, int K, double A[M][K], double B[K][N], double C[M][N]) {
      for (int i = 0; i < M; i++)
        for (int k = 0; k < K; k++)
          A[i][k] = quant(A[i][k]);
      for (int i = 0; i < M; i++)
        for (int j = 0; j < N; j++)
          for (int k = 0; k < K; k++)
            C[i][j] += A[i][k] * B[k][j];
    }
    """
    spec, options = extract_spec(src, return_options=True)
    assert spec.prologue_func == "quant"
    assert options.fusion == "prologue"


def test_epilogue_pattern():
    src = """
    void fused(int M, int N, int K, double A[M][K], double B[K][N], double C[M][N]) {
      for (int i = 0; i < M; i++)
        for (int j = 0; j < N; j++)
          for (int k = 0; k < K; k++)
            C[i][j] += A[i][k] * B[k][j];
      for (int i = 0; i < M; i++)
        for (int j = 0; j < N; j++)
          C[i][j] = relu(C[i][j]);
    }
    """
    spec, options = extract_spec(src, return_options=True)
    assert spec.epilogue_func == "relu"
    assert options.fusion == "epilogue"
    assert options.epilogue_func == "relu"


def test_prologue_on_wrong_array_rejected():
    src = """
    void fused(int M, int N, int K, double A[M][K], double B[K][N], double C[M][N]) {
      for (int k = 0; k < K; k++)
        for (int j = 0; j < N; j++)
          B[k][j] = quant(B[k][j]);
      for (int i = 0; i < M; i++)
        for (int j = 0; j < N; j++)
          for (int k = 0; k < K; k++)
            C[i][j] += A[i][k] * B[k][j];
    }
    """
    with pytest.raises(PatternError, match="A input"):
        extract_spec(src)


def test_both_fusions_rejected():
    src = """
    void fused(int M, int N, int K, double A[M][K], double B[K][N], double C[M][N]) {
      for (int i = 0; i < M; i++)
        for (int k = 0; k < K; k++)
          A[i][k] = quant(A[i][k]);
      for (int i = 0; i < M; i++)
        for (int j = 0; j < N; j++)
          for (int k = 0; k < K; k++)
            C[i][j] += A[i][k] * B[k][j];
      for (int i = 0; i < M; i++)
        for (int j = 0; j < N; j++)
          C[i][j] = relu(C[i][j]);
    }
    """
    with pytest.raises(PatternError, match="smaller"):
        extract_spec(src)


def test_no_gemm_rejected():
    src = """
    void notgemm(int M, double A[M][M]) {
      for (int i = 0; i < M; i++)
        for (int j = 0; j < M; j++)
          A[i][j] = relu(A[i][j]);
    }
    """
    with pytest.raises(PatternError, match="no GEMM"):
        extract_spec(src)


def test_wrong_subscripts_rejected():
    src = GEMM.replace("A[i][k] * B[k][j]", "A[k][i] * B[k][j]")
    with pytest.raises(PatternError):
        extract_spec(src)


def test_mismatched_array_extent_rejected():
    src = GEMM.replace("double A[M][K]", "double A[K][M]")
    with pytest.raises(PatternError, match="extent|implies"):
        extract_spec(src)


def test_three_array_product_rejected():
    src = GEMM.replace("alpha * A[i][k] * B[k][j]",
                       "A[i][k] * B[k][j] * C[i][j]")
    with pytest.raises(PatternError):
        extract_spec(src)


def test_named_function_selection():
    src = "void other(int M, double X[M][M]) { X[0][0] = 1; }\n" + GEMM
    spec = extract_spec(src, function="gemm")
    assert spec.c_name == "C"
