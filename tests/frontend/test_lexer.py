"""Tokeniser."""

import pytest

from repro.errors import LexError
from repro.frontend.lexer import tokenize


def kinds(source):
    return [(t.kind, t.text) for t in tokenize(source) if t.kind != "eof"]


def test_keywords_vs_identifiers():
    assert kinds("for fort int intx") == [
        ("keyword", "for"),
        ("ident", "fort"),
        ("keyword", "int"),
        ("ident", "intx"),
    ]


def test_numbers():
    assert kinds("42 3.14 1e3 2.5e-2") == [
        ("int", "42"),
        ("float", "3.14"),
        ("float", "1e3"),
        ("float", "2.5e-2"),
    ]


def test_malformed_exponent():
    with pytest.raises(LexError):
        tokenize("1e+")


def test_operators_maximal_munch():
    assert kinds("++ + += <= < == =") == [
        ("op", "++"),
        ("op", "+"),
        ("op", "+="),
        ("op", "<="),
        ("op", "<"),
        ("op", "=="),
        ("op", "="),
    ]


def test_punctuation_and_subscripts():
    assert kinds("A[i][j]") == [
        ("ident", "A"),
        ("punct", "["),
        ("ident", "i"),
        ("punct", "]"),
        ("punct", "["),
        ("ident", "j"),
        ("punct", "]"),
    ]


def test_comments_are_skipped():
    source = """
    // line comment
    x /* block
    comment */ y
    #include <stdio.h>
    z
    """
    assert kinds(source) == [("ident", "x"), ("ident", "y"), ("ident", "z")]


def test_unterminated_block_comment():
    with pytest.raises(LexError):
        tokenize("/* never closed")


def test_unknown_character():
    with pytest.raises(LexError):
        tokenize("a @ b")


def test_positions_tracked():
    tokens = tokenize("a\n  b")
    assert tokens[0].line == 1 and tokens[0].column == 1
    assert tokens[1].line == 2 and tokens[1].column == 3


def test_eof_token_present():
    tokens = tokenize("")
    assert len(tokens) == 1 and tokens[0].kind == "eof"
