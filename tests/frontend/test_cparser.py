"""Recursive-descent parser for the C subset."""

import pytest

from repro.errors import ParseError
from repro.frontend.cast import (
    CArrayRef,
    CAssign,
    CBinary,
    CCall,
    CFor,
    CIdent,
    CIntLit,
)
from repro.frontend.cparser import parse_c

GEMM = """
void gemm(int M, int N, int K, double alpha,
          double A[M][K], double B[K][N], double C[M][N]) {
  for (int i = 0; i < M; i++)
    for (int j = 0; j < N; j++)
      for (int k = 0; k < K; k++)
        C[i][j] = C[i][j] + alpha * A[i][k] * B[k][j];
}
"""


def test_parse_gemm_function_signature():
    unit = parse_c(GEMM)
    fn = unit.function("gemm")
    assert fn.return_type == "void"
    assert [p.name for p in fn.scalar_params()] == ["M", "N", "K", "alpha"]
    arrays = fn.array_params()
    assert [p.name for p in arrays] == ["A", "B", "C"]
    assert arrays[0].rank == 2


def test_parse_gemm_loop_nest():
    fn = parse_c(GEMM).function("gemm")
    loop_i = fn.body[0]
    assert isinstance(loop_i, CFor) and loop_i.var == "i"
    loop_j = loop_i.body[0]
    loop_k = loop_j.body[0]
    assert loop_k.var == "k"
    stmt = loop_k.body[0]
    assert isinstance(stmt, CAssign)
    assert stmt.op == "="
    assert isinstance(stmt.target, CArrayRef)
    assert stmt.target.array == "C"


def test_plus_equals_form():
    src = GEMM.replace("C[i][j] = C[i][j] + alpha * A[i][k] * B[k][j];",
                       "C[i][j] += A[i][k] * B[k][j];")
    fn = parse_c(src).function("gemm")
    stmt = fn.body[0].body[0].body[0].body[0]
    assert stmt.op == "+="


def test_precedence():
    src = "void f(int M, double A[M][M]) { A[0][0] = 1 + 2 * 3; }"
    stmt = parse_c(src).functions[0].body[0]
    value = stmt.value
    assert isinstance(value, CBinary) and value.op == "+"
    assert isinstance(value.rhs, CBinary) and value.rhs.op == "*"


def test_parenthesised_expression():
    src = "void f(int M, double A[M][M]) { A[0][0] = (1 + 2) * 3; }"
    value = parse_c(src).functions[0].body[0].value
    assert value.op == "*"
    assert value.lhs.op == "+"


def test_call_expression():
    src = "void f(int M, double A[M][M]) { A[0][0] = quant(A[0][0]); }"
    value = parse_c(src).functions[0].body[0].value
    assert isinstance(value, CCall)
    assert value.func == "quant"
    assert isinstance(value.args[0], CArrayRef)


def test_loop_increment_variants():
    for increment in ("i++", "++i", "i += 1", "i = i + 1"):
        src = f"void f(int M, double A[M][M]) {{ for (int i = 0; i < M; {increment}) A[i][0] = 0; }}"
        fn = parse_c(src).functions[0]
        assert isinstance(fn.body[0], CFor)


def test_le_condition_normalised():
    src = "void f(int M, double A[M][M]) { for (int i = 0; i <= M; i++) A[i][0] = 0; }"
    loop = parse_c(src).functions[0].body[0]
    # i <= M becomes upper bound M + 1 (exclusive).
    assert isinstance(loop.upper, CBinary) and loop.upper.op == "+"


def test_non_unit_stride_rejected():
    src = "void f(int M, double A[M][M]) { for (int i = 0; i < M; i += 2) A[i][0] = 0; }"
    with pytest.raises(ParseError, match="unit-stride"):
        parse_c(src)


def test_wrong_condition_variable_rejected():
    src = "void f(int M, double A[M][M]) { for (int i = 0; M < i; i++) A[i][0] = 0; }"
    with pytest.raises(ParseError):
        parse_c(src)


def test_unterminated_block_rejected():
    with pytest.raises(ParseError):
        parse_c("void f(int M) { ")


def test_empty_source_rejected():
    with pytest.raises(ParseError):
        parse_c("")


def test_unsupported_assignment_operator():
    src = "void f(int M, double A[M][M]) { A[0][0] /= 2; }"
    with pytest.raises(ParseError):
        parse_c(src)


def test_multiple_functions():
    src = """
    void a(int M, double X[M][M]) { X[0][0] = 1; }
    void b(int N, double Y[N][N]) { Y[0][0] = 2; }
    """
    unit = parse_c(src)
    assert [f.name for f in unit.functions] == ["a", "b"]
    assert unit.function("b").params[0].name == "N"


def test_batched_vla_params():
    src = """
    void g(int BS, int M, double A[BS][M][M]) {
      for (int b = 0; b < BS; b++)
        A[b][0][0] = 0;
    }
    """
    fn = parse_c(src).functions[0]
    assert fn.array_params()[0].rank == 3
