"""Semantic analysis and SCoP extraction."""

import pytest

from repro.errors import SemanticError
from repro.frontend.cparser import parse_c
from repro.frontend.scop import extract_scop
from repro.frontend.semantic import analyze_function

GEMM = """
void gemm(int M, int N, int K, double alpha,
          double A[M][K], double B[K][N], double C[M][N]) {
  for (int i = 0; i < M; i++)
    for (int j = 0; j < N; j++)
      for (int k = 0; k < K; k++)
        C[i][j] = C[i][j] + alpha * A[i][k] * B[k][j];
}
"""


def analyze(src, name=None):
    unit = parse_c(src)
    fn = unit.function(name) if name else unit.functions[0]
    return analyze_function(fn)


def test_symbol_tables():
    info = analyze(GEMM)
    assert info.int_params() == ["M", "N", "K"]
    assert info.double_params() == ["alpha"]
    assert set(info.arrays) == {"A", "B", "C"}
    assert info.arrays["A"].rank == 2


def test_statement_collected_with_loops():
    info = analyze(GEMM)
    (stmt,) = info.statements
    assert stmt.loop_vars == ("i", "j", "k")
    assert [l.depth for l in stmt.loops] == [0, 1, 2]


def test_affine_subscripts_extracted():
    info = analyze(GEMM)
    (stmt,) = info.statements
    assert [str(s) for s in stmt.target_subscripts] == ["i", "j"]


def test_affine_bound_with_arithmetic():
    src = """
    void f(int M, double A[M][M]) {
      for (int i = 0; i < M - 1; i++)
        A[i][i + 1] = 0;
    }
    """
    info = analyze(src)
    (stmt,) = info.statements
    assert stmt.loops[0].upper.evaluate({"M": 10}) == 9
    assert stmt.target_subscripts[1].evaluate({"i": 3}) == 4


def test_division_and_modulo_in_subscripts():
    src = """
    void f(int M, double A[M][M]) {
      for (int i = 0; i < M; i++)
        A[i / 4][i % 4] = 0;
    }
    """
    info = analyze(src)
    (stmt,) = info.statements
    assert stmt.target_subscripts[0].evaluate({"i": 9}) == 2
    assert stmt.target_subscripts[1].evaluate({"i": 9}) == 1


def test_nonaffine_subscript_rejected():
    src = """
    void f(int M, double A[M][M]) {
      for (int i = 0; i < M; i++)
        for (int j = 0; j < M; j++)
          A[i * j][0] = 0;
    }
    """
    with pytest.raises(SemanticError, match="non-affine"):
        analyze(src)


def test_unknown_identifier_rejected():
    src = "void f(int M, double A[M][M]) { A[0][0] = unknown_thing; }"
    with pytest.raises(SemanticError):
        analyze(src)


def test_unknown_function_rejected():
    src = "void f(int M, double A[M][M]) { A[0][0] = frobnicate(A[0][0]); }"
    with pytest.raises(SemanticError, match="frobnicate"):
        analyze(src)


def test_rank_mismatch_rejected():
    src = "void f(int M, double A[M][M]) { A[0] = 1; }"
    with pytest.raises(SemanticError, match="rank"):
        analyze(src)


def test_loop_variable_shadowing_rejected():
    src = """
    void f(int M, double A[M][M]) {
      for (int i = 0; i < M; i++)
        for (int i = 0; i < M; i++)
          A[i][i] = 0;
    }
    """
    with pytest.raises(SemanticError, match="shadow"):
        analyze(src)


def test_scalar_assignment_target_rejected():
    src = "void f(int M, double x, double A[M][M]) { x = 1; }"
    with pytest.raises(SemanticError):
        analyze(src)


# -- SCoP extraction -------------------------------------------------------------


def test_scop_domain_and_accesses():
    scop = extract_scop(analyze(GEMM))
    (stmt,) = scop.statements
    assert stmt.domain.count({"M": 2, "N": 3, "K": 4}) == 24
    arrays = sorted({a.array for a in stmt.accesses})
    assert arrays == ["A", "B", "C"]
    writes = [a for a in stmt.accesses if a.is_write]
    assert len(writes) == 1 and writes[0].array == "C"


def test_scop_dependence_summary_matches_paper():
    scop = extract_scop(analyze(GEMM))
    summary = scop.statements[0].summary()
    assert summary.coincident == (True, True, False)
    assert summary.permutable
    assert summary.reduction_dims == ("k",)


def test_scop_multiple_statements_ordered():
    src = """
    void f(int M, int N, int K, double A[M][K], double B[K][N], double C[M][N]) {
      for (int i = 0; i < M; i++)
        for (int k = 0; k < K; k++)
          A[i][k] = quant(A[i][k]);
      for (int i = 0; i < M; i++)
        for (int j = 0; j < N; j++)
          for (int k = 0; k < K; k++)
            C[i][j] += A[i][k] * B[k][j];
    }
    """
    scop = extract_scop(analyze(src))
    assert [s.name for s in scop.statements] == ["S0", "S1"]
    assert scop.statement("S0").domain.space.rank == 2
    with pytest.raises(KeyError):
        scop.statement("S7")


def test_compound_assignment_reads_target():
    src = """
    void f(int M, double A[M][M], double B[M][M]) {
      for (int i = 0; i < M; i++)
        A[i][i] += B[i][i];
    }
    """
    scop = extract_scop(analyze(src))
    accesses = scop.statements[0].accesses
    a_reads = [a for a in accesses if a.array == "A" and not a.is_write]
    assert len(a_reads) == 1
