"""Benchmark shape lists and report rendering."""

import pytest

from repro.bench.harness import FigureResult
from repro.bench.report import PAPER_AGGREGATES, format_aggregates, format_table
from repro.bench.shapes import (
    FIG13_SQUARE_SHAPES,
    FIG14_DEGRADED,
    FIG14_NONSQUARE_SHAPES,
    FIG15_BATCHED,
    FIG15_SHAPES,
    FIG16_FUSION_SHAPES,
    validate_shape,
)


def test_fig13_list_properties():
    assert len(FIG13_SQUARE_SHAPES) == 12
    assert all(m == n == k for m, n, k in FIG13_SQUARE_SHAPES)
    assert FIG13_SQUARE_SHAPES[-1] == (15360, 15360, 15360)  # the 90.14% shape
    # §8.2 names these sizes explicitly.
    ks = {k for _, _, k in FIG13_SQUARE_SHAPES}
    assert {6144, 7680, 10240, 15360} <= ks


def test_fig14_list_properties():
    assert len(FIG14_NONSQUARE_SHAPES) == 36
    assert (4096, 16384, 16384) in FIG14_NONSQUARE_SHAPES  # both peaks
    assert (8192, 8192, 15360) in FIG14_NONSQUARE_SHAPES  # the 42.25% case
    assert len(FIG14_DEGRADED) == 9  # "observed for nine times"
    assert all(k in (10240, 12288, 15360) for _, _, k in FIG14_DEGRADED)


def test_fig15_list_properties():
    assert len(FIG15_SHAPES) == 6
    assert len(FIG15_BATCHED) == 24  # 4 batch sizes x 6 shapes
    batches = sorted({b for b, _ in FIG15_BATCHED})
    assert batches == [2, 4, 8, 16]
    assert (4096, 4096, 16384) in FIG15_SHAPES  # the 90.43% best point


def test_fig16_list_properties():
    assert len(FIG16_FUSION_SHAPES) == 12
    assert (10752, 10752, 10752) in FIG16_FUSION_SHAPES
    assert (8192, 16384, 8192) in FIG16_FUSION_SHAPES


def test_all_shapes_satisfy_section81():
    for shape in (
        FIG13_SQUARE_SHAPES
        + FIG14_NONSQUARE_SHAPES
        + FIG15_SHAPES
        + FIG16_FUSION_SHAPES
    ):
        validate_shape(shape)  # raises on violation


def test_validate_shape_rejects_bad():
    with pytest.raises(AssertionError):
        validate_shape((511, 512, 256))
    with pytest.raises(AssertionError):
        validate_shape((512, 512, 255))


# -- report rendering ------------------------------------------------------------


def test_format_table():
    rows = [
        {"shape": "1024x1024x1024", "ours": 1234.5, "xmath": 1500.0},
        {"shape": "2048x2048x2048", "ours": 1600.0, "xmath": 1400.2},
    ]
    text = format_table(rows, ["shape", "ours", "xmath"])
    assert "1024x1024x1024" in text
    assert "1234.5" in text
    assert text.splitlines()[0].strip().startswith("shape")


def test_format_aggregates_shows_paper_reference():
    result = FigureResult("fig13")
    result.aggregate = {"mean_dma-only": 84.2, "made_up_metric": 1.0}
    text = format_aggregates(result)
    assert "84.890" in text  # the paper value
    assert "n/a" in text  # the unknown metric has no reference


def test_paper_aggregates_complete():
    for figure in ("fig13", "fig14", "fig15", "fig16"):
        assert figure in PAPER_AGGREGATES
        assert PAPER_AGGREGATES[figure]
    assert PAPER_AGGREGATES["fig13"]["best_peak_fraction"] == pytest.approx(0.9014)
