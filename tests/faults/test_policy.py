"""Fault policy / injector plumbing: validation, determinism, streams."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.faults import FaultInjector, FaultPolicy, RetryPolicy, tile_checksum


def test_default_policy_is_inert():
    policy = FaultPolicy()
    assert not policy.enabled
    assert policy.dma_fault_rate == 0.0
    assert policy.dead_ranks == ()


def test_chaos_preset():
    policy = FaultPolicy.chaos(seed=7, rate=0.1)
    assert policy.enabled
    assert policy.seed == 7
    assert policy.dma_fault_rate == 0.1
    assert policy.rma_fault_rate == 0.1
    assert policy.checksums  # corruption is only survivable with checksums


@pytest.mark.parametrize("field,value", [
    ("dma_fault_rate", -0.1),
    ("rma_fault_rate", 1.5),
    ("corruption_rate", 2.0),
    ("latency_spike_factor", 0.5),
    ("straggler_factor", 0.0),
])
def test_policy_validation(field, value):
    with pytest.raises(ConfigurationError):
        FaultPolicy(**{field: value})


def test_list_ranks_become_tuples():
    policy = FaultPolicy(dead_ranks=[3, 1], straggler_ranks=[2])
    assert policy.dead_ranks == (3, 1)
    assert policy.straggler_ranks == (2,)
    assert hash(policy)  # must stay usable as a dict key


def test_with_helper_keeps_frozen_semantics():
    a = FaultPolicy.chaos(seed=1)
    b = a.with_(dma_fault_rate=0.5)
    assert a.dma_fault_rate != 0.5
    assert b.dma_fault_rate == 0.5
    assert b.seed == a.seed


def test_same_seed_same_fault_sequence():
    policy = FaultPolicy.chaos(seed=42, rate=0.3)
    one = FaultInjector(policy)
    two = FaultInjector(policy)
    seq_one = [one.transfer_fault("dma") for _ in range(200)]
    seq_two = [two.transfer_fault("dma") for _ in range(200)]
    assert seq_one == seq_two
    assert any(seq_one) and not all(seq_one)


def test_different_seeds_differ():
    a = FaultInjector(FaultPolicy.chaos(seed=1, rate=0.3))
    b = FaultInjector(FaultPolicy.chaos(seed=2, rate=0.3))
    assert [a.transfer_fault("dma") for _ in range(200)] != \
        [b.transfer_fault("dma") for _ in range(200)]


def test_forked_streams_are_independent():
    """Draws on one subsystem's stream must not perturb another's."""
    policy = FaultPolicy.chaos(seed=9, rate=0.3)
    root_a = FaultInjector(policy)
    dma_a = root_a.fork("dma")
    rma_a = root_a.fork("rma")
    # interleave heavily
    inter = [(dma_a.transfer_fault("dma"), rma_a.transfer_fault("rma"))
             for _ in range(100)]

    root_b = FaultInjector(policy)
    dma_b = root_b.fork("dma")
    dma_only = [dma_b.transfer_fault("dma") for _ in range(100)]
    assert [d for d, _ in inter] == dma_only


def test_injector_counts_sites():
    injector = FaultInjector(
        FaultPolicy(enabled=True, seed=0, dma_fault_rate=1.0)
    )
    injector.transfer_fault("dma")
    injector.transfer_fault("dma")
    assert injector.counts["dma_fault"] == 2


def test_retry_backoff_is_exponential_and_capped():
    retry = RetryPolicy(max_retries=5, backoff_base_s=1e-6,
                        backoff_factor=2.0, backoff_max_s=3e-6)
    assert retry.backoff(0) == 1e-6
    assert retry.backoff(1) == 2e-6
    assert retry.backoff(2) == 3e-6  # capped
    assert retry.backoff(10) == 3e-6


def test_corrupt_tile_changes_and_checksum_detects():
    injector = FaultInjector(FaultPolicy.chaos(seed=0, rate=0.5))
    tile = np.arange(16.0)
    before = tile_checksum(tile)
    injector.corrupt_tile(tile)
    assert tile_checksum(tile) != before


def test_tile_checksum_views_and_copies_agree():
    matrix = np.arange(64.0).reshape(8, 8)
    view = matrix[2:6, 1:5]
    assert tile_checksum(view) == tile_checksum(view.copy())


def test_corrupt_artifact_truncates(tmp_path):
    injector = FaultInjector(
        FaultPolicy(enabled=True, seed=0, artifact_corruption_rate=1.0)
    )
    path = tmp_path / "artifact.json"
    path.write_text("x" * 100)
    assert injector.corrupt_artifact(path)
    assert len(path.read_text()) < 100
