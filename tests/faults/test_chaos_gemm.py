"""The chaos suite's headline guarantee (ISSUE 2 acceptance bar):

a full GEMM under ≥5 % DMA/RMA fault rates, latency spikes and payload
corruption — with a pinned seed — produces a result **bit-exact** to the
fault-free run, purely through the recovery layer (bounded retries and
checksum-verified copies), and the whole degraded schedule is
reproducible across invocations.
"""

import numpy as np
import pytest

from repro.core import CompilerOptions, GemmCompiler, GemmSpec
from repro.faults import FaultPolicy, RetryPolicy
from repro.runtime.executor import run_gemm
from repro.sunway.arch import TOY_ARCH

#: the pinned chaos profile the CI job runs under
CHAOS_SEED = 2022
CHAOS_RATE = 0.05


def compile_chaos(policy, retry=None, base=None):
    options = (base or CompilerOptions.full()).with_(
        fault_policy=policy, retry_policy=retry or RetryPolicy()
    )
    return GemmCompiler(TOY_ARCH, options).compile(GemmSpec())


def run_once(program, rng_seed=0, M=32, N=32, K=16):
    rng = np.random.default_rng(rng_seed)
    A = rng.standard_normal((M, K))
    B = rng.standard_normal((K, N))
    C0 = rng.standard_normal((M, N))
    C, report = run_gemm(program, A, B, C0.copy(), alpha=1.5, beta=0.5)
    return A, B, C0, C, report


def test_chaos_run_is_bit_exact_vs_fault_free():
    policy = FaultPolicy.chaos(seed=CHAOS_SEED, rate=CHAOS_RATE)
    clean_program = GemmCompiler(TOY_ARCH, CompilerOptions.full()).compile(
        GemmSpec()
    )
    _, _, _, clean, _ = run_once(clean_program)
    _, _, _, chaotic, report = run_once(compile_chaos(policy))
    assert np.array_equal(chaotic, clean)  # bit-exact, not just close
    # NumPy agreement within accumulation-order tolerance too.
    A, B, C0, C, _ = run_once(compile_chaos(policy), rng_seed=1)
    assert np.allclose(C, 1.5 * A @ B + 0.5 * C0, atol=1e-11)


def test_chaos_run_actually_injects():
    """At 5 % the run must exercise the retry path, or the suite proves
    nothing — guard against a silently disabled injector."""
    policy = FaultPolicy.chaos(seed=CHAOS_SEED, rate=CHAOS_RATE)
    _, _, _, _, report = run_once(compile_chaos(policy))
    retries = report.stats["dma_retries"] + report.stats["rma_retries"]
    assert retries > 0


def test_chaos_run_reproducible_across_invocations():
    """Same seed → identical result, identical retry counts, identical
    simulated schedule — the determinism the fault streams promise."""
    policy = FaultPolicy.chaos(seed=CHAOS_SEED, rate=CHAOS_RATE)
    _, _, _, c1, r1 = run_once(compile_chaos(policy))
    _, _, _, c2, r2 = run_once(compile_chaos(policy))
    assert np.array_equal(c1, c2)
    assert r1.stats["dma_retries"] == r2.stats["dma_retries"]
    assert r1.stats["rma_retries"] == r2.stats["rma_retries"]
    assert r1.elapsed_seconds == r2.elapsed_seconds


def test_different_fault_seeds_change_the_schedule_not_the_result():
    p1 = FaultPolicy.chaos(seed=1, rate=0.1)
    p2 = FaultPolicy.chaos(seed=2, rate=0.1)
    _, _, _, c1, r1 = run_once(compile_chaos(p1))
    _, _, _, c2, r2 = run_once(compile_chaos(p2))
    assert np.array_equal(c1, c2)
    assert (r1.elapsed_seconds != r2.elapsed_seconds
            or r1.stats["dma_retries"] != r2.stats["dma_retries"])


def test_faults_cost_simulated_time():
    """Retries and latency spikes must show up in the schedule: the
    degraded run is slower than the clean one."""
    clean_program = GemmCompiler(TOY_ARCH, CompilerOptions.full()).compile(
        GemmSpec()
    )
    _, _, _, _, clean = run_once(clean_program)
    policy = FaultPolicy.chaos(seed=CHAOS_SEED, rate=0.2)
    _, _, _, _, chaotic = run_once(compile_chaos(policy))
    assert chaotic.elapsed_seconds > clean.elapsed_seconds


@pytest.mark.parametrize("variant", [
    CompilerOptions.baseline(),
    CompilerOptions.with_asm(),
    CompilerOptions.with_rma(),
    CompilerOptions.full(),
])
def test_every_variant_survives_chaos(variant):
    policy = FaultPolicy.chaos(seed=CHAOS_SEED, rate=CHAOS_RATE)
    program = compile_chaos(policy, base=variant)
    A, B, C0, C, _ = run_once(program, rng_seed=3)
    assert np.allclose(C, 1.5 * A @ B + 0.5 * C0, atol=1e-11)


def test_corruption_without_checksums_is_silent():
    """The counter-factual the checksum layer exists for: corrupting
    payloads with verification off lands wrong data without any error."""
    policy = FaultPolicy(
        enabled=True, seed=CHAOS_SEED, corruption_rate=0.3, checksums=False
    )
    A, B, C0, C, _ = run_once(compile_chaos(policy))
    assert not np.allclose(C, 1.5 * A @ B + 0.5 * C0, atol=1e-11)


def test_corruption_with_checksums_is_repaired():
    # 20 % corruption with an 8-deep budget: the chance of 9 consecutive
    # corrupted copies of one delivery is 0.2^9 ≈ 5e-7 — the run repairs
    # everything instead of exhausting a retry budget.
    policy = FaultPolicy(
        enabled=True, seed=CHAOS_SEED, corruption_rate=0.2, checksums=True
    )
    A, B, C0, C, report = run_once(
        compile_chaos(policy, retry=RetryPolicy(max_retries=8))
    )
    assert np.allclose(C, 1.5 * A @ B + 0.5 * C0, atol=1e-11)
    assert report.stats["dma_retries"] + report.stats["rma_retries"] > 0


def test_fault_policy_does_not_change_cache_key():
    """Fault/retry policies are runtime-only: the compilation service
    must serve the same artifact for a chaotic and a clean request."""
    from repro.service.keys import cache_key

    spec = GemmSpec()
    clean = cache_key(spec, TOY_ARCH, CompilerOptions.full())
    chaotic = cache_key(
        spec,
        TOY_ARCH,
        CompilerOptions.full().with_(
            fault_policy=FaultPolicy.chaos(seed=5),
            retry_policy=RetryPolicy(max_retries=9),
        ),
    )
    assert clean == chaotic
