"""Chaos suite re-run in guarded mode.

The certificate guard must be transparent to the recovery layer: DMA
retries re-issue the *same* admitted footprints, latency spikes reorder
nothing the certificate speaks about, and checksum-repaired payloads
keep their admitted sizes.  A guarded chaos run therefore completes
with zero divergences and a result bit-exact to the fault-free run —
while a certificate the run genuinely contradicts still fails loudly,
faults or no faults.
"""

import copy

import numpy as np
import pytest

from repro.core import CompilerOptions, GemmCompiler, GemmSpec
from repro.errors import CertificateDivergenceError
from repro.faults import FaultPolicy, RetryPolicy
from repro.runtime.executor import run_gemm
from repro.sunway.arch import TOY_ARCH

from tests.faults.test_chaos_gemm import CHAOS_RATE, CHAOS_SEED, compile_chaos


def run_once(program, guarded, rng_seed=0, M=32, N=32, K=16):
    rng = np.random.default_rng(rng_seed)
    A = rng.standard_normal((M, K))
    B = rng.standard_normal((K, N))
    C0 = rng.standard_normal((M, N))
    C, report = run_gemm(
        program, A, B, C0.copy(), alpha=1.5, beta=0.5, guarded=guarded
    )
    return C, report


def test_guarded_chaos_run_has_zero_divergences():
    policy = FaultPolicy.chaos(seed=CHAOS_SEED, rate=CHAOS_RATE)
    program = compile_chaos(policy)
    clean_program = GemmCompiler(TOY_ARCH, CompilerOptions.full()).compile(
        GemmSpec()
    )
    clean, _ = run_once(clean_program, guarded=False)
    chaotic, report = run_once(program, guarded=True)
    assert np.array_equal(chaotic, clean)
    assert report.stats["guard_divergences"] == 0
    assert report.stats["guard_events"] > 0
    # The run still exercised the recovery layer under guard.
    assert report.stats["dma_retries"] + report.stats["rma_retries"] > 0


def test_guard_events_scale_with_retries():
    """Retried transfers re-announce themselves to the guard; the
    guarded fault-free and guarded chaotic runs agree on results while
    the chaotic one observes at least as many events."""
    policy = FaultPolicy.chaos(seed=CHAOS_SEED, rate=CHAOS_RATE)
    clean_program = GemmCompiler(TOY_ARCH, CompilerOptions.full()).compile(
        GemmSpec()
    )
    _, clean_report = run_once(clean_program, guarded=True)
    _, chaos_report = run_once(compile_chaos(policy), guarded=True)
    assert chaos_report.stats["guard_divergences"] == 0
    assert (
        chaos_report.stats["guard_events"]
        >= clean_report.stats["guard_events"]
    )


def test_divergence_still_fires_under_chaos():
    policy = FaultPolicy.chaos(seed=CHAOS_SEED, rate=CHAOS_RATE)
    program = copy.deepcopy(compile_chaos(policy))
    key = next(iter(program.verification.certificate["dma"]))
    program.verification.certificate["dma"][key]["len"] += 1
    with pytest.raises(CertificateDivergenceError):
        run_once(program, guarded=True)
