"""Artifact-store hardening and the single-flight poisoning fix."""

import json
import threading

import pytest

from repro.core import CompilerOptions, GemmSpec
from repro.faults import FaultPolicy, RetryPolicy
from repro.service import CompileService, ServiceConfig
from repro.sunway.arch import TOY_ARCH


def fresh_service(tmp_path, **config_kw):
    return CompileService(ServiceConfig(cache_dir=tmp_path / "cache", **config_kw))


# -- quarantine ------------------------------------------------------------


def test_truncated_artifact_is_quarantined_and_recompiled(tmp_path):
    service = fresh_service(tmp_path)
    spec = GemmSpec()
    service.get_program(spec, TOY_ARCH)
    key = service.key_for(spec, TOY_ARCH)
    path = service.store.path_for(key)
    path.write_text(path.read_text()[:40])  # truncate mid-JSON

    again = fresh_service(tmp_path)
    program = again.get_program(spec, TOY_ARCH)
    assert program is not None
    stats = again.store.stats()
    assert stats["quarantined"] == 1
    assert stats["quarantine_files"] == 1
    # the corrupt bytes moved aside, and a fresh artifact replaced them
    assert path.exists()
    assert json.loads(path.read_text())["key"] == key
    quarantined = list(again.store.quarantine_dir.glob("*.json"))
    assert len(quarantined) == 1
    assert quarantined[0].read_text() == path.read_text()[:40] \
        or len(quarantined[0].read_text()) == 40


def test_garbage_json_is_quarantined(tmp_path):
    service = fresh_service(tmp_path)
    spec = GemmSpec()
    service.get_program(spec, TOY_ARCH)
    path = service.store.path_for(service.key_for(spec, TOY_ARCH))
    path.write_text('{"key": "valid json, wrong schema"}')
    again = fresh_service(tmp_path)
    assert again.get_program(spec, TOY_ARCH) is not None
    assert again.store.stats()["quarantined"] == 1


def test_quarantine_names_collide_safely(tmp_path):
    service = fresh_service(tmp_path)
    spec = GemmSpec()
    for _ in range(3):
        service.get_program(spec, TOY_ARCH)
        path = service.store.path_for(service.key_for(spec, TOY_ARCH))
        path.write_text("garbage")
        # a fresh service re-reads from disk (memory tier is per-instance)
        service = fresh_service(tmp_path)
        service.get_program(spec, TOY_ARCH)
    files = list(service.store.quarantine_dir.glob("*.json"))
    assert len(files) == 3  # none overwrote another


def test_quarantine_counter_is_persistent(tmp_path):
    service = fresh_service(tmp_path)
    spec = GemmSpec()
    service.get_program(spec, TOY_ARCH)
    path = service.store.path_for(service.key_for(spec, TOY_ARCH))
    path.write_text("garbage")
    again = fresh_service(tmp_path)
    again.get_program(spec, TOY_ARCH)
    # a later `swgemm cache stats` process sees the cumulative count
    later = fresh_service(tmp_path)
    assert later.store.load_persistent_stats().get("quarantined") == 1


def test_injected_artifact_corruption_round_trips(tmp_path):
    """With the artifact fault plane on, every write lands truncated;
    the next read must quarantine it and recompile — the store's own
    chaos loop."""
    chaos = FaultPolicy(enabled=True, seed=0, artifact_corruption_rate=1.0)
    writer = fresh_service(tmp_path, fault_policy=chaos)
    spec = GemmSpec()
    writer.get_program(spec, TOY_ARCH)

    reader = fresh_service(tmp_path)
    program = reader.get_program(spec, TOY_ARCH)
    assert program is not None
    assert reader.store.stats()["quarantined"] == 1


# -- single-flight poisoning fix -------------------------------------------


def test_waiters_reattempt_after_owner_failure():
    """A transiently failing compile must not poison every concurrent
    waiter: they wake, re-attempt as the new owner, and succeed."""
    started = threading.Event()
    gate = threading.Event()
    calls = []
    lock = threading.Lock()

    def flaky_compile(spec, arch, options):
        with lock:
            calls.append(1)
            first = len(calls) == 1
        if first:
            started.set()
            assert gate.wait(timeout=10.0)
            raise RuntimeError("transient compile failure")
        from repro.core.pipeline import GemmCompiler

        return GemmCompiler(arch, options).compile(spec)

    service = CompileService(ServiceConfig(), flaky_compile)
    results, errors = [], []

    def request():
        try:
            results.append(service.get_program(GemmSpec(), TOY_ARCH))
        except RuntimeError as exc:
            errors.append(exc)

    owner = threading.Thread(target=request)
    owner.start()
    assert started.wait(timeout=10.0)
    waiters = [threading.Thread(target=request) for _ in range(2)]
    for t in waiters:
        t.start()
    import time

    deadline = time.monotonic() + 10.0
    while service.deduped < 2:
        assert time.monotonic() < deadline
        time.sleep(0.001)
    gate.set()
    owner.join(timeout=10.0)
    for t in waiters:
        t.join(timeout=10.0)

    assert len(errors) == 1      # only the owner sees its own failure
    assert len(results) == 2     # both waiters recovered
    assert service.flight_retries >= 1
    assert service.stats()["single_flight_retries"] >= 1


def test_options_restamped_on_cache_hit():
    """Policies are excluded from cache keys, so a hit for a *chaotic*
    request must come back stamped with the requested policies — not
    whatever the first caller compiled with."""
    service = CompileService(ServiceConfig())
    spec = GemmSpec()
    clean = service.get_program(spec, TOY_ARCH, CompilerOptions.full())
    assert clean.options.fault_policy is None

    chaos = CompilerOptions.full().with_(
        fault_policy=FaultPolicy.chaos(seed=4),
        retry_policy=RetryPolicy(max_retries=7),
    )
    chaotic = service.get_program(spec, TOY_ARCH, chaos)
    assert chaotic.options.fault_policy == FaultPolicy.chaos(seed=4)
    assert chaotic.options.retry_policy.max_retries == 7
    assert service.compile_count == 1  # same artifact served both

    # and back again: a clean request after a chaotic one stays clean
    clean_again = service.get_program(spec, TOY_ARCH, CompilerOptions.full())
    assert clean_again.options.fault_policy is None
    assert service.compile_count == 1
