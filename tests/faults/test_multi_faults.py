"""Rank-level failures in the multi-cluster driver: dead ranks are
routed around (correct result + degraded-mode report), stragglers and
link faults cost simulated time, and total failure raises."""

import numpy as np
import pytest

from repro.core.options import CompilerOptions
from repro.errors import RankFailureError, TransientFaultError
from repro.faults import FaultPolicy, RetryPolicy
from repro.multi.comm import SimComm
from repro.multi.driver import MultiClusterGemm
from repro.sunway.arch import TOY_ARCH


def make(grid=(2, 2), policy=None, retry=None):
    return MultiClusterGemm(
        grid, arch=TOY_ARCH, fault_policy=policy, retry_policy=retry
    )


def run_gemm_case(mc, rng_seed=2, M=48, N=48, K=16):
    rng = np.random.default_rng(rng_seed)
    A = rng.standard_normal((M, K))
    B = rng.standard_normal((K, N))
    C, report = mc.run(A, B, None, beta=0.0)
    return A, B, C, report


def test_dead_rank_yields_correct_result_and_degraded_report():
    policy = FaultPolicy(enabled=True, seed=0, dead_ranks=(1,))
    A, B, C, report = run_gemm_case(make((2, 2), policy))
    assert np.allclose(C, A @ B, atol=1e-11)
    assert report.degraded
    assert report.failed_ranks == (1,)
    assert 1 in report.reassigned
    assert report.reassigned[1] not in report.failed_ranks
    assert "degraded" in report.degraded_summary()
    assert "rank 1" in report.degraded_summary()


def test_healthy_run_reports_no_degradation():
    A, B, C, report = run_gemm_case(make((2, 2)))
    assert not report.degraded
    assert report.failed_ranks == ()
    assert report.degraded_summary() == "all ranks healthy"


def test_multiple_dead_ranks_round_robin_over_healthy():
    policy = FaultPolicy(enabled=True, seed=0, dead_ranks=(0, 2))
    A, B, C, report = run_gemm_case(make((2, 2), policy))
    assert np.allclose(C, A @ B, atol=1e-11)
    assert report.failed_ranks == (0, 2)
    assert set(report.reassigned) == {0, 2}
    assert set(report.reassigned.values()) <= {1, 3}


def test_dead_rank_slows_the_run():
    """The replacement computes two blocks serially, so the degraded run
    must take longer than the healthy one."""
    _, _, _, healthy = run_gemm_case(make((2, 2)))
    policy = FaultPolicy(enabled=True, seed=0, dead_ranks=(3,))
    _, _, _, degraded = run_gemm_case(make((2, 2), policy))
    assert degraded.seconds > healthy.seconds


def test_all_ranks_dead_raises():
    policy = FaultPolicy(enabled=True, seed=0, dead_ranks=(0, 1, 2, 3))
    mc = make((2, 2), policy)
    rng = np.random.default_rng(0)
    with pytest.raises(RankFailureError):
        mc.run(rng.standard_normal((48, 16)), rng.standard_normal((16, 48)))


def test_straggler_rank_extends_elapsed_time():
    _, _, _, fast = run_gemm_case(make((2, 2)))
    policy = FaultPolicy(
        enabled=True, seed=0, straggler_ranks=(2,), straggler_factor=8.0
    )
    A, B, C, slow = run_gemm_case(make((2, 2), policy))
    assert np.allclose(C, A @ B, atol=1e-11)  # slow, never wrong
    assert slow.seconds > fast.seconds
    assert not slow.degraded  # stragglers are not failures


def test_comm_faults_retry_and_stay_correct():
    policy = FaultPolicy(enabled=True, seed=1, comm_fault_rate=0.3)
    mc = make((2, 2), policy)
    A, B, C, report = run_gemm_case(mc)
    assert np.allclose(C, A @ B, atol=1e-11)
    assert mc.comm.stats["retries"] > 0


def test_comm_retry_exhaustion_raises():
    comm = SimComm(
        2,
        fault_policy=FaultPolicy(enabled=True, seed=0, comm_fault_rate=1.0),
        retry_policy=RetryPolicy(max_retries=1),
    )
    with pytest.raises(TransientFaultError) as exc_info:
        comm._charge(0, 1, 4096)
    assert "retry budget of 1" in str(exc_info.value)


def test_dead_endpoint_transfers_are_skipped():
    comm = SimComm(3)
    comm.mark_dead(1)
    comm._charge(0, 1, 1 << 20)
    assert comm.stats["messages"] == 0
    assert comm.clocks[0] == 0.0
    comm._charge(0, 2, 1 << 20)
    assert comm.stats["messages"] == 1


def test_barrier_ignores_dead_ranks():
    comm = SimComm(3)
    comm.advance(0, 5.0)
    comm.mark_dead(2)
    comm.barrier()
    assert comm.clocks[0] == comm.clocks[1] == 5.0
    assert comm.clocks[2] == 0.0  # frozen, not dragged to the release


def test_policy_rides_on_options():
    """The driver picks the fault plane off CompilerOptions when no
    explicit policy is given — the path the CLI uses."""
    policy = FaultPolicy(enabled=True, seed=0, dead_ranks=(1,))
    options = CompilerOptions.full().with_(
        fault_policy=policy, retry_policy=RetryPolicy()
    )
    mc = MultiClusterGemm((2, 2), arch=TOY_ARCH, options=options)
    A, B, C, report = run_gemm_case(mc)
    assert np.allclose(C, A @ B, atol=1e-11)
    assert report.failed_ranks == (1,)
