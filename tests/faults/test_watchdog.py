"""Recovery diagnostics: the executor watchdog and retry exhaustion.

A dropped reply counter used to be the worst failure mode the simulator
could have — an infinite spin in ``dma_wait_value`` with zero context.
The watchdog turns it into a :class:`SynchronizationError` naming the
stalled CPE, the reply counter, and the poisoned SPM buffer.
"""

import numpy as np
import pytest

from repro.core import CompilerOptions, GemmCompiler, GemmSpec
from repro.errors import SynchronizationError, TransientFaultError
from repro.faults import FaultPolicy, RetryPolicy
from repro.runtime.executor import run_gemm
from repro.sunway.arch import TOY_ARCH


def run_with(policy, retry=None):
    options = CompilerOptions.full().with_(
        fault_policy=policy, retry_policy=retry or RetryPolicy()
    )
    program = GemmCompiler(TOY_ARCH, options).compile(GemmSpec())
    rng = np.random.default_rng(0)
    A = rng.standard_normal((32, 16))
    B = rng.standard_normal((16, 32))
    return run_gemm(program, A, B, np.zeros((32, 32)), beta=0.0)


def test_dropped_reply_raises_instead_of_hanging():
    policy = FaultPolicy(enabled=True, seed=3, reply_drop_rate=1.0)
    with pytest.raises(SynchronizationError):
        run_with(policy)


def test_watchdog_error_names_cpe_and_buffer():
    policy = FaultPolicy(enabled=True, seed=3, reply_drop_rate=1.0)
    with pytest.raises(SynchronizationError) as exc_info:
        run_with(policy)
    message = str(exc_info.value)
    assert "CPE(" in message                      # which core stalled
    assert "reply" in message                     # which counter
    assert "dropped" in message or "stalled" in message
    # the poisoned buffer is named with its slot index
    assert "[" in message and "]" in message


def test_occasional_reply_drops_also_caught():
    """A 30 % drop rate (not every reply) still must not hang: whichever
    CPE first waits on a lost counter gets the diagnostic."""
    policy = FaultPolicy(enabled=True, seed=11, reply_drop_rate=0.3)
    with pytest.raises(SynchronizationError):
        run_with(policy)


def test_retry_exhaustion_names_transfer_and_budget():
    policy = FaultPolicy(enabled=True, seed=3, dma_fault_rate=1.0)
    retry = RetryPolicy(max_retries=2)
    with pytest.raises(TransientFaultError) as exc_info:
        run_with(policy, retry)
    message = str(exc_info.value)
    assert "CPE(" in message
    assert "retry budget of 2" in message
    assert "seed 3" in message


def test_rma_retry_exhaustion():
    policy = FaultPolicy(enabled=True, seed=3, rma_fault_rate=1.0)
    with pytest.raises(TransientFaultError) as exc_info:
        run_with(policy)
    assert "rma" in str(exc_info.value).lower()


def test_generous_retry_budget_survives_high_fault_rate():
    """30 % transient faults with a 10-deep retry budget: still exact.

    (11 consecutive faults on one message ≈ 0.3^11 ≈ 2e-6 — far below
    one expected exhaustion over the few hundred transfers of this run.)
    """
    policy = FaultPolicy(
        enabled=True, seed=3, dma_fault_rate=0.3, rma_fault_rate=0.3,
        checksums=True,
    )
    retry = RetryPolicy(max_retries=10)
    C, report = run_with(policy, retry)
    rng = np.random.default_rng(0)
    A = rng.standard_normal((32, 16))
    B = rng.standard_normal((16, 32))
    assert np.allclose(C, A @ B, atol=1e-11)
    assert report.stats["dma_retries"] + report.stats["rma_retries"] > 10
