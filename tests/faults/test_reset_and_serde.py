"""Engine reset hygiene and policy serialization.

``DMAEngine.reset()`` / ``RMAEngine.reset()`` must clear an attached
trace recorder so back-to-back runs on one cluster never interleave
spans, and the fault/retry policies must survive the artifact-store
JSON round trip (they ride on ``CompilerOptions``).
"""

import numpy as np

from repro.core import CompilerOptions, GemmCompiler, GemmSpec
from repro.faults import FaultPolicy, RetryPolicy
from repro.runtime import serde
from repro.runtime.executor import run_gemm
from repro.runtime.program import CompiledProgram
from repro.sunway.arch import TOY_ARCH
from repro.sunway.mesh import Cluster


def test_engine_reset_clears_attached_trace():
    cluster = Cluster(TOY_ARCH)
    trace = cluster.enable_tracing()
    trace.record("dma", 0.0, 1.0, "channel")
    trace.record("rma", 0.0, 1.0, "row0")
    assert trace.events
    cluster.dma.reset()
    assert not trace.events
    trace.record("rma", 0.0, 1.0, "row0")
    cluster.rma.reset()
    assert not trace.events


def test_back_to_back_runs_do_not_interleave_traces(toy_full_program, rng):
    """Two runs on one cluster: the second trace must only contain the
    second run's spans (previously they accumulated)."""
    cluster = Cluster(TOY_ARCH)
    trace = cluster.enable_tracing()
    A = rng.standard_normal((16, 8))
    B = rng.standard_normal((8, 16))
    run_gemm(toy_full_program, A, B, np.zeros((16, 16)), beta=0.0,
             cluster=cluster)
    first_count = len(trace.events)
    run_gemm(toy_full_program, A, B, np.zeros((16, 16)), beta=0.0,
             cluster=cluster)
    assert len(trace.events) <= first_count + 8  # not ~2x the first run


def test_cluster_reset_clears_lost_replies():
    cluster = Cluster(TOY_ARCH)
    cpe = cluster.cpe(0, 0)
    cpe.lost_replies["r"] = (("tile", 0), 1.0)
    cluster.reset_mesh()
    assert not cpe.lost_replies


def test_policies_round_trip_through_serde():
    policy = FaultPolicy.chaos(seed=17, rate=0.25).with_(
        dead_ranks=(1, 3), straggler_ranks=(2,)
    )
    retry = RetryPolicy(max_retries=5, backoff_base_s=2e-6)
    encoded = serde.encode(policy)
    assert serde.decode(encoded) == policy
    assert serde.decode(serde.encode(retry)) == retry


def test_program_with_policies_round_trips():
    options = CompilerOptions.full().with_(
        fault_policy=FaultPolicy.chaos(seed=5),
        retry_policy=RetryPolicy(max_retries=2),
    )
    program = GemmCompiler(TOY_ARCH, options).compile(GemmSpec())
    restored = CompiledProgram.from_dict(program.to_dict())
    assert restored.options.fault_policy == options.fault_policy
    assert restored.options.retry_policy == options.retry_policy
