"""Each of the four safety checks rejects a deliberately broken
schedule at admission time with a structured diagnostic.

The breakage is injected through the pass-replacement hook: a tampering
subclass of a real pass runs the genuine lowering and then corrupts one
specific invariant — an oversized buffer plan (SPM §6.3), a shifted DMA
start coordinate (bounds §4, Eq. 1), a dropped reply-counter wait
(double-buffer hazard §6), and a dropped ``synch()`` (RMA discipline
§5).  Admission must refuse each one with ``KernelAdmissionError``
carrying the failing :class:`VerificationReport` and a witness naming
the offending buffer / tile / counter.
"""

import dataclasses

import pytest

from repro.core import CompilerOptions, GemmCompiler, GemmSpec
from repro.core.passes import AstGenerationPass, DmaDerivationPass
from repro.errors import KernelAdmissionError
from repro.poly.astnodes import Block, BufferDecl, CommStmt, ForLoop, IfStmt
from repro.sunway.arch import TOY_ARCH
from repro.verify import FAILED


def compile_tampered(replacements, options=None):
    compiler = GemmCompiler(
        TOY_ARCH, options or CompilerOptions.full(), replacements=replacements
    )
    return compiler.compile(GemmSpec())


def rejection(replacements, options=None):
    with pytest.raises(KernelAdmissionError) as err:
        compile_tampered(replacements, options)
    report = err.value.report
    assert report is not None and not report.ok
    return err.value, report


def strip_first(block, kind):
    """Remove the first CommStmt of ``kind`` anywhere in the AST."""

    def walk(node):
        if isinstance(node, Block):
            for i, inner in enumerate(node.body):
                if isinstance(inner, CommStmt) and inner.kind == kind:
                    del node.body[i]
                    return True
                if walk(inner):
                    return True
            return False
        if isinstance(node, ForLoop):
            return walk(node.body)
        if isinstance(node, IfStmt):
            if walk(node.then):
                return True
            return node.els is not None and walk(node.els)
        return False

    assert walk(block), f"no {kind!r} statement to strip"


# -- check 1: SPM budget (§6.3) ---------------------------------------------


class OversizedAstPass(AstGenerationPass):
    """Declares one buffer that alone exceeds the scratch pad."""

    def run(self, ctx):
        super().run(ctx)
        ctx.cpe_program.buffers.append(
            BufferDecl("runaway_scratch", (4096, 4096), "double")
        )


def test_spm_budget_rejects_oversized_buffer_plan():
    err, report = rejection({"ast-generation": OversizedAstPass()})
    check = report.check("spm-budget")
    assert check.status == FAILED
    assert "runaway_scratch" in check.witness["buffers"]
    assert check.witness["spm_bytes"] > check.witness["usable_bytes"]
    assert "spm-budget" in str(err)
    assert "runaway_scratch" in str(err)


def test_no_verify_escape_hatch_skips_the_gate():
    # The same broken plan sails through with verification disabled —
    # the escape hatch exists so §8.1 ablation studies stay possible.
    program = compile_tampered(
        {"ast-generation": OversizedAstPass()},
        CompilerOptions.full().with_(verify=False),
    )
    assert program.verification is None
    assert any(b.name == "runaway_scratch" for b in program.cpe_program.buffers)


# -- check 2: DMA bounds (§4, Eq. 1) ----------------------------------------


class ShiftedDmaPass(DmaDerivationPass):
    """Shifts getA's row start by one chunk — off the end of A for the
    ragged last row chunk."""

    def run(self, ctx):
        super().run(ctx)
        spec = ctx.dma_specs["getA"]
        ctx.dma_specs["getA"] = dataclasses.replace(
            spec, row_expr=spec.row_expr + ctx.plan.chunk_m
        )


def test_dma_bounds_rejects_shifted_start_coordinate():
    err, report = rejection({"dma-derivation": ShiftedDmaPass()})
    check = report.check("dma-bounds")
    assert check.status == FAILED
    witness = check.witness
    assert witness["transfer"] == "getA"
    assert witness["array"] == "A"
    assert witness["axis"] == "row"
    assert witness["overflow"] > 0
    # The witness pins down a concrete out-of-bounds edge tile.
    assert witness["tile_index"], "expected a concrete tile assignment"
    assert "dma-bounds" in str(err) and "getA" in str(err)


# -- check 3: double-buffer hazards (§6) ------------------------------------


class DroppedWaitAstPass(AstGenerationPass):
    """Removes the first ``dma_wait_value`` — a buffer is then read
    while its transfer is still in flight."""

    def run(self, ctx):
        super().run(ctx)
        strip_first(ctx.cpe_program.body, "dma_wait_value")


def test_hazard_check_rejects_missing_dma_wait():
    err, report = rejection({"ast-generation": DroppedWaitAstPass()})
    check = report.check("double-buffer-hazards")
    assert check.status == FAILED
    witness = check.witness
    assert witness["violation"] in (
        "read-while-in-flight",
        "unbalanced-reply-counter",
        "in-flight-at-exit",
    )
    # The witness names the CPE and the buffer or counter involved.
    assert "cpe" in witness
    assert "buffer" in witness or "counter" in witness
    assert "double-buffer-hazards" in str(err)


# -- check 4: RMA discipline (§5) -------------------------------------------


class DroppedSynchAstPass(AstGenerationPass):
    """Removes the first ``synch()`` — a broadcast then launches on an
    unarmed mesh, violating the §5 re-arm discipline."""

    def run(self, ctx):
        super().run(ctx)
        strip_first(ctx.cpe_program.body, "synch")


def test_rma_discipline_rejects_missing_synch():
    err, report = rejection({"ast-generation": DroppedSynchAstPass()})
    check = report.check("rma-discipline")
    assert check.status == FAILED
    witness = check.witness
    assert witness["violation"] == "rma-without-synch"
    assert "cpe" in witness and "src" in witness
    # The rejection names a failed check with its witness either way
    # (dropping the synch also perturbs the pipelined DMA ledger, so the
    # hazards check may fire first in the message).
    assert "rejected at admission" in str(err)


class DroppedRmaWaitAstPass(AstGenerationPass):
    """Removes the first ``rma_wait_value`` — the receive-side reply
    ledger is then unbalanced at the end of the schedule."""

    def run(self, ctx):
        super().run(ctx)
        strip_first(ctx.cpe_program.body, "rma_wait_value")


def test_rma_discipline_rejects_unbalanced_reply_counter():
    _, report = rejection({"ast-generation": DroppedRmaWaitAstPass()})
    check = report.check("rma-discipline")
    assert check.status == FAILED
    witness = check.witness
    assert witness["violation"] in (
        "unbalanced-reply-counter",
        "in-flight-at-exit",
    )
    assert "counter" in witness or "buffer" in witness
