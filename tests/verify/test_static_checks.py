"""Property tests for the closed-form checks.

The DMA-bounds check proves safety for *all* chunk counts from a finite
certificate (base point + slack gradients).  Here hypothesis perturbs
the Eq. 1 start coordinates of real toy-arch specs and cross-validates
the verdict against brute-force enumeration of small problems, plus a
soundness check that every FAILED witness is a genuine violation.
"""

import dataclasses
from functools import lru_cache
from itertools import product

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import CompilerOptions, GemmCompiler, GemmSpec
from repro.core.dma import derive_dma_specs
from repro.poly.astnodes import BufferDecl
from repro.sunway.arch import TOY_ARCH
from repro.verify import FAILED, PASSED
from repro.verify.static_checks import (
    DMA_COUNT_VARS,
    axis_checks,
    axis_slack,
    check_dma_bounds,
    check_spm_budget,
)


@lru_cache(maxsize=None)
def compiled():
    program = GemmCompiler(TOY_ARCH, CompilerOptions.full()).compile(GemmSpec())
    return program, derive_dma_specs(program.decomposition)


# -- SPM budget --------------------------------------------------------------


def test_spm_budget_passes_for_admitted_plan():
    program, _ = compiled()
    result = check_spm_budget(TOY_ARCH, program.plan, program.cpe_program)
    assert result.status == PASSED


def test_spm_budget_fails_on_capacity_overflow():
    program, _ = compiled()
    bloated = dataclasses.replace(
        program.cpe_program,
        buffers=list(program.cpe_program.buffers)
        + [BufferDecl("bloat", (4096, 4096), "double")],
    )
    result = check_spm_budget(TOY_ARCH, program.plan, bloated)
    assert result.status == FAILED
    assert "bloat" in result.witness["buffers"]


def test_spm_budget_fails_on_plan_divergence():
    # A buffer small enough to fit but absent from the tile plan: the
    # cost model and the generated code disagree about SPM usage.
    program, _ = compiled()
    tweaked = dataclasses.replace(
        program.cpe_program,
        buffers=list(program.cpe_program.buffers) + [BufferDecl("extra", (4,))],
    )
    result = check_spm_budget(TOY_ARCH, program.plan, tweaked)
    assert result.status == FAILED
    assert "diverge" in result.detail


# -- DMA bounds: brute-force cross-validation --------------------------------


def violated_at(spec, plan, dma_specs, counts):
    """Direct evaluation: does any obligation break at this problem?"""
    for _, dspec in sorted(dma_specs.items()):
        for axis_check in axis_checks(spec, dspec):
            lo_slack, hi_slack, _, _ = axis_slack(spec, plan, axis_check, counts)
            if lo_slack < 0 or hi_slack < 0:
                return True
    return False


def brute_force_safe(spec, plan, dma_specs, max_count=3):
    for values in product(range(1, max_count + 1), repeat=len(DMA_COUNT_VARS)):
        counts = dict(zip(DMA_COUNT_VARS, values))
        if violated_at(spec, plan, dma_specs, counts):
            return False
    return True


@st.composite
def tampering(draw):
    name = draw(st.sampled_from(["getA", "getB", "getC", "putC"]))
    axis = draw(st.sampled_from(["row_expr", "col_expr"]))
    shift = draw(st.integers(min_value=-3, max_value=3))
    return name, axis, shift


@settings(max_examples=40, deadline=None)
@given(tampering())
def test_bounds_verdict_matches_brute_force(tamper):
    name, axis, shift = tamper
    program, specs = compiled()
    spec, plan = program.spec, program.plan
    dspec = specs[name]
    specs = dict(specs)
    specs[name] = dataclasses.replace(
        dspec, **{axis: getattr(dspec, axis) + shift}
    )
    result = check_dma_bounds(spec, plan, specs)
    if result.status == PASSED:
        # Completeness of the certificate: a PASSED verdict covers every
        # concrete problem, in particular all the small ones.
        assert brute_force_safe(spec, plan, specs)
    else:
        # Soundness of the witness: the reported chunk counts genuinely
        # violate the reported obligation.
        witness = result.witness
        counts = {v: 1 for v in DMA_COUNT_VARS}
        counts.update(witness["chunk_counts"])
        assert violated_at(spec, plan, specs, counts)
        assert witness["transfer"] in specs


@settings(max_examples=20, deadline=None)
@given(st.integers(min_value=1, max_value=4), st.integers(min_value=1, max_value=4))
def test_untampered_specs_pass_for_ragged_counts(nm, nk):
    """The genuine specs are safe at every count vector (spot-checked
    here; the gradient certificate proves the general case)."""
    program, specs = compiled()
    counts = {"nm": nm, "nn": 1, "nk": nk, "nb": 1}
    assert not violated_at(program.spec, program.plan, specs, counts)
    assert check_dma_bounds(program.spec, program.plan, specs).status == PASSED


def test_bounds_witness_names_edge_tile():
    program, specs = compiled()
    dspec = specs["getA"]
    specs = dict(specs)
    specs["getA"] = dataclasses.replace(dspec, row_expr=dspec.row_expr + 1)
    result = check_dma_bounds(program.spec, program.plan, specs)
    assert result.status == FAILED
    witness = result.witness
    # The witness edge tile attains the interval maximum: re-evaluating
    # the tampered start expression there reproduces the overflow.
    env = dict(witness["tile_index"])
    start = specs["getA"].row_expr.evaluate(env)
    assert start + witness["tile_extent"] > witness["array_extent"]
