"""Guarded execution: the certificate guard against real runs.

Guarded functional runs of every §8.1 variant must report zero
divergences; a tampered certificate must fail loudly with
``CertificateDivergenceError``; report-less programs are refused.
"""

import copy

import numpy as np
import pytest

from repro.core import CompilerOptions, GemmCompiler, GemmSpec
from repro.errors import CertificateDivergenceError, KernelAdmissionError
from repro.runtime.executor import run_gemm
from repro.sunway.arch import TOY_ARCH
from repro.verify import CertificateGuard

from tests.conftest import reference_gemm


def run_guarded(program, rng, m=8, n=8, k=8):
    A = rng.standard_normal((m, k))
    B = rng.standard_normal((k, n))
    C = rng.standard_normal((m, n))
    expected = reference_gemm(A, B, C.copy())
    out, report = run_gemm(program, A, B, C, guarded=True)
    np.testing.assert_allclose(out, expected, rtol=1e-12)
    return report


def test_all_variants_run_guarded_without_divergence(toy_programs, rng):
    for name, program in toy_programs.items():
        report = run_guarded(program, rng)
        assert report.stats["guard_divergences"] == 0, name
        assert report.stats["guard_events"] > 0, name


def test_ragged_shapes_stay_within_certificate(toy_full_program, rng):
    # Multi-chunk, non-square problems reuse the same shape-invariant
    # certificate: per-message footprints do not depend on the shape.
    report = run_guarded(toy_full_program, rng, m=24, n=16, k=16)
    assert report.stats["guard_divergences"] == 0


def test_unguarded_run_reports_no_guard_stats(toy_full_program, rng):
    A = rng.standard_normal((8, 8))
    B = rng.standard_normal((8, 8))
    C = np.zeros((8, 8))
    _, report = run_gemm(toy_full_program, A, B, C)
    assert "guard_events" not in report.stats


def test_tampered_dma_certificate_diverges(toy_full_program, rng):
    program = copy.deepcopy(toy_full_program)
    cert = program.verification.certificate
    key = next(iter(cert["dma"]))
    cert["dma"][key]["size"] += 1
    with pytest.raises(CertificateDivergenceError) as err:
        run_guarded(program, rng)
    assert "certificate divergence" in str(err.value)


def test_tampered_spm_certificate_diverges(toy_full_program, rng):
    program = copy.deepcopy(toy_full_program)
    program.verification.certificate["spm_bytes"] += 8
    with pytest.raises(CertificateDivergenceError) as err:
        run_guarded(program, rng)
    assert "SPM allocation" in str(err.value)


def test_unknown_transfer_diverges():
    guard = CertificateGuard({"dma": {}, "rma": {}, "spm_bytes": 0})
    with pytest.raises(CertificateDivergenceError) as err:
        guard.on_dma("get", "mystery", 64, 8)
    assert "mystery" in str(err.value)
    assert guard.divergences


def test_non_strict_guard_collects_instead_of_raising():
    guard = CertificateGuard({"dma": {}, "rma": {}}, strict=False)
    guard.on_dma("get", "mystery", 64, 8)
    guard.on_rma("row", "a", "b", 32)
    assert len(guard.divergences) == 2
    assert guard.events == 2


def test_guard_refuses_unverified_program():
    program = GemmCompiler(
        TOY_ARCH, CompilerOptions.full().with_(verify=False)
    ).compile(GemmSpec())
    with pytest.raises(KernelAdmissionError, match="no VerificationReport"):
        CertificateGuard.from_program(program)
    A = B = C = np.zeros((8, 8))
    with pytest.raises(KernelAdmissionError):
        run_gemm(program, A, B, C, guarded=True)
