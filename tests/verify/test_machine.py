"""ScheduleMachine semantics on handcrafted CPE programs.

Tiny programs built statement-by-statement pin down the machine's
mirrored runtime semantics: in-flight marking, reply-counter ledgers,
synch arming, deadlock detection and the end-of-program sweeps.
"""

from repro.poly.astnodes import (
    ArrayRef,
    Block,
    BlockOpStmt,
    BufferDecl,
    CommStmt,
    CpeProgram,
    IntLit,
    ReplyDecl,
)
from repro.verify.machine import ScheduleMachine


def dma_get(buffer, slot=0, reply="r", reply_slot=0):
    return CommStmt(
        "dma_iget",
        {
            "buffer": buffer,
            "slot": IntLit(slot),
            "reply": reply,
            "reply_slot": IntLit(reply_slot),
        },
    )


def dma_wait(reply="r", reply_slot=0, value=1):
    return CommStmt(
        "dma_wait_value",
        {"reply": reply, "reply_slot": IntLit(reply_slot), "value": value},
    )


def rma_wait(reply="rma_rr", reply_slot=0, value=1):
    return CommStmt(
        "rma_wait_value",
        {"reply": reply, "reply_slot": IntLit(reply_slot), "value": value},
    )


def read(buffer, slot=0):
    return BlockOpStmt(
        op="scale",
        dst=ArrayRef(buffer, (IntLit(slot),), memory="spm"),
        shape=(1, 1),
    )


def row_bcast(src="s", dst="d"):
    return CommStmt(
        "rma_row_ibcast",
        {
            "src_buffer": src,
            "src_slot": IntLit(0),
            "dst_buffer": dst,
            "dst_slot": IntLit(0),
            "replys": "rma_rs",
            "replyr": "rma_rr",
            "reply_slot": IntLit(0),
        },
    )


def program(*stmts):
    return CpeProgram(
        buffers=[BufferDecl("buf", (2, 4)), BufferDecl("s", (4,)), BufferDecl("d", (4,))],
        replies=[ReplyDecl("r", 2), ReplyDecl("rma_rs"), ReplyDecl("rma_rr")],
        body=Block(list(stmts)),
    )


def run(mesh, *stmts):
    return ScheduleMachine(program(*stmts), mesh, {}).run()


def test_waited_transfer_is_clean():
    result = run(2, dma_get("buf"), dma_wait(), read("buf"))
    assert result.completed and result.deadlock is None
    assert result.hazards == [] and result.discipline == []
    assert result.stats["dma_issues"] == 4  # one per CPE on the 2×2 mesh
    assert result.stats["waits"] == 4


def test_read_while_in_flight_is_a_hazard():
    result = run(2, dma_get("buf"), read("buf"), dma_wait())
    assert result.hazards
    first = result.hazards[0]
    assert first["violation"] == "read-while-in-flight"
    assert first["buffer"] == "buf" and first["slot"] == 0
    assert "dma_iget" in first["in_flight_cause"]


def test_unwaited_transfer_flagged_at_exit():
    result = run(1, dma_get("buf"))
    violations = {h["violation"] for h in result.hazards}
    assert "unbalanced-reply-counter" in violations
    assert "in-flight-at-exit" in violations
    unbalanced = next(
        h for h in result.hazards if h["violation"] == "unbalanced-reply-counter"
    )
    assert unbalanced["counter"] == "r#0"
    assert unbalanced["issued"] == 1 and unbalanced["waited"] == 0


def test_distinct_slots_do_not_alias():
    # Waiting slot 0 does not clear slot 1's in-flight mark.
    result = run(
        1,
        dma_get("buf", slot=0, reply_slot=0),
        dma_get("buf", slot=1, reply_slot=1),
        dma_wait(reply_slot=0),
        read("buf", slot=1),
        dma_wait(reply_slot=1),
    )
    assert [h["violation"] for h in result.hazards] == ["read-while-in-flight"]
    assert result.hazards[0]["slot"] == 1


def test_synch_then_broadcast_is_clean():
    result = run(
        1,
        CommStmt("synch", {}),
        row_bcast(),
        rma_wait("rma_rr"),
        rma_wait("rma_rs"),
        read("d"),
    )
    assert result.hazards == [] and result.discipline == []
    assert result.stats["rma_issues"] == 1
    assert result.stats["barriers"] == 1


def test_broadcast_without_synch_is_a_violation():
    result = run(1, row_bcast(), rma_wait("rma_rr"), rma_wait("rma_rs"))
    assert result.discipline
    assert result.discipline[0]["violation"] == "rma-without-synch"
    assert result.discipline[0]["src"] == ("s", 0)


def test_wait_disarms_until_next_synch():
    # §5: every launch needs a fresh synch(); reusing the arming of the
    # first barrier after an RMA wait is a violation.
    result = run(
        1,
        CommStmt("synch", {}),
        row_bcast(),
        rma_wait("rma_rr"),
        row_bcast(),
        rma_wait("rma_rr", value=2),
        rma_wait("rma_rs", value=2),
    )
    assert any(
        d["violation"] == "rma-without-synch" for d in result.discipline
    )


def test_wait_on_absent_reply_deadlocks():
    result = run(2, dma_wait("never"))
    assert not result.completed
    assert result.deadlock is not None and "never" in result.deadlock


def test_barrier_counts_whole_mesh():
    result = run(2, CommStmt("synch", {}))
    assert result.completed
    assert result.stats["barriers"] == 4
