"""Property tests for the SPM allocator's accounting invariants.

Hypothesis drives randomized alloc/free/in-flight traces against a
shadow model: used bytes always equal the sum of live buffers, capacity
is never exceeded, and the in-flight discipline (no free while a slot
is in flight, no double free) is enforced on every path.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import HardwareError, SynchronizationError
from repro.sunway.spm import ScratchPadMemory, SPMOverflowError

CAPACITY = 4096

NAMES = ("a", "b", "c", "d")

ops = st.lists(
    st.one_of(
        st.tuples(
            st.just("alloc"),
            st.sampled_from(NAMES),
            st.integers(min_value=1, max_value=80),
        ),
        st.tuples(st.just("free"), st.sampled_from(NAMES), st.just(0)),
        st.tuples(
            st.just("mark"),
            st.sampled_from(NAMES),
            st.integers(min_value=0, max_value=1),
        ),
        st.tuples(
            st.just("clear"),
            st.sampled_from(NAMES),
            st.integers(min_value=0, max_value=1),
        ),
    ),
    max_size=40,
)


@settings(max_examples=120, deadline=None)
@given(ops)
def test_accounting_matches_shadow_model(trace):
    spm = ScratchPadMemory(CAPACITY, owner="prop")
    live = {}  # name -> nbytes
    inflight = set()  # (name, slot)
    for op, name, arg in trace:
        if op == "alloc":
            nbytes = arg * 8
            if name in live:
                with pytest.raises(HardwareError):
                    spm.alloc(name, (arg,))
            elif sum(live.values()) + nbytes > CAPACITY:
                with pytest.raises(SPMOverflowError):
                    spm.alloc(name, (arg,))
            else:
                buffer = spm.alloc(name, (arg,))
                assert buffer.shape == (arg,)
                live[name] = nbytes
        elif op == "free":
            if name not in live:
                with pytest.raises(HardwareError):
                    spm.free(name)
            elif any(key[0] == name for key in inflight):
                with pytest.raises(SynchronizationError):
                    spm.free(name)
            else:
                spm.free(name)
                del live[name]
        elif op == "mark":
            if name in live:
                spm.mark_inflight(name, arg, "dma/test")
                inflight.add((name, arg))
        elif op == "clear":
            if name in live:
                spm.clear_inflight(name, arg)
                inflight.discard((name, arg))
        # Invariants after every step.
        assert spm.used_bytes == sum(live.values())
        assert spm.used_bytes <= CAPACITY
        assert set(spm.names()) == set(live)
    # Full teardown always restores a pristine allocator.
    spm.free_all()
    assert spm.used_bytes == 0 and not list(spm.names())


@settings(max_examples=60, deadline=None)
@given(
    st.integers(min_value=1, max_value=64),
    st.integers(min_value=1, max_value=64),
)
def test_alloc_free_cycle_is_exact(rows, cols):
    spm = ScratchPadMemory(CAPACITY * 8, owner="prop")
    spm.alloc("tile", (rows, cols))
    assert spm.used_bytes == rows * cols * 8
    spm.free("tile")
    assert spm.used_bytes == 0
    # The name is reusable after free.
    spm.alloc("tile", (1,))
    assert spm.used_bytes == 8


def test_free_while_in_flight_names_slot_and_cause():
    spm = ScratchPadMemory(CAPACITY, owner="CPE(0,0)")
    spm.alloc("buf", (2, 4))
    spm.mark_inflight("buf", 1, "dma_iget/get_replyA#1")
    with pytest.raises(SynchronizationError) as err:
        spm.free("buf")
    message = str(err.value)
    assert "buf" in message and "[1]" in message
    assert "dma_iget/get_replyA#1" in message
    # Clearing the slot unblocks the free.
    spm.clear_inflight("buf", 1)
    spm.free("buf")
    assert "buf" not in spm


def test_free_drops_checksums_with_buffer():
    spm = ScratchPadMemory(CAPACITY)
    spm.alloc("buf", (4,))
    spm.record_checksum("buf", 0, 0xDEAD, 4)
    assert spm.stored_checksum("buf", 0) is not None
    spm.free("buf")
    spm.alloc("buf", (4,))
    assert spm.stored_checksum("buf", 0) is None
