"""VerificationReport: attachment, summaries, serde round-trips, and
the ``--no-verify`` bit-exactness guarantee (§8.1 ablations)."""

import pytest

from repro.core import CompilerOptions, GemmCompiler, GemmSpec
from repro.runtime import serde
from repro.sunway.arch import TOY_ARCH
from repro.verify import (
    FAILED,
    PASSED,
    VERIFIER_VERSION,
    CheckResult,
    VerificationReport,
)

from tests.conftest import VARIANTS


def test_every_variant_is_admitted_with_a_passing_report(toy_programs):
    for name, program in toy_programs.items():
        report = program.verification
        assert report is not None, name
        assert report.ok, name
        assert report.verifier_version == VERIFIER_VERSION
        assert [c.name for c in report.checks] == [
            "spm-budget",
            "dma-bounds",
            "double-buffer-hazards",
            "rma-discipline",
        ]
        assert all(c.status == PASSED for c in report.checks), name
        assert report.certificate is not None
        assert report.certificate["spm_bytes"] == program.cpe_program.spm_bytes()


def test_pro_mesh_program_is_admitted(pro_full_program):
    assert pro_full_program.verification is not None
    assert pro_full_program.verification.ok


def test_certificate_covers_every_dma_direction(toy_full_program):
    cert = toy_full_program.verification.certificate
    directions = {key.split(":", 1)[0] for key in cert["dma"]}
    assert directions == {"get", "put"}
    # The RMA variant's certificate names both broadcast kinds.
    kinds = {key.split(":", 1)[0] for key in cert["rma"]}
    assert kinds == {"row", "col"}


def test_report_serde_round_trip(toy_full_program):
    report = toy_full_program.verification
    blob = serde.encode(report)
    back = serde.decode(blob)
    assert back == report
    assert back.ok and back.certificate == report.certificate


def test_program_serde_preserves_report(toy_full_program):
    from repro.runtime.program import CompiledProgram

    back = CompiledProgram.from_dict(toy_full_program.to_dict())
    assert back.verification == toy_full_program.verification


def test_failing_report_survives_serde():
    report = VerificationReport(
        checks=(
            CheckResult(
                name="spm-budget",
                section="§6.3",
                status=FAILED,
                detail="too big",
                witness={"spm_bytes": 999, "buffers": {"a": 999}},
            ),
        ),
    )
    back = serde.decode(serde.encode(report))
    assert not back.ok
    assert back.check("spm-budget").witness["buffers"] == {"a": 999}
    assert "REJECTED" in back.render()
    assert back.summary().startswith("FAILED spm-budget")


def test_report_render_and_describe(toy_full_program):
    report = toy_full_program.verification
    text = report.render()
    assert "ADMITTED" in text
    for check in report.checks:
        assert check.name in text
    described = report.describe()
    assert described["ok"] is True
    assert len(described["checks"]) == 4
    assert report.check("dma-bounds").section == "§4"
    with pytest.raises(KeyError):
        report.check("no-such-check")


def test_no_verify_output_is_bit_exact(toy_full_program):
    """Disabling the gate must not change the generated kernel at all —
    only the attached report may differ (§8.1 ablation equivalence)."""
    unverified = GemmCompiler(
        TOY_ARCH, CompilerOptions.full().with_(verify=False)
    ).compile(GemmSpec())
    assert unverified.verification is None
    assert serde.encode(unverified.plan) == serde.encode(toy_full_program.plan)
    assert serde.encode(unverified.cpe_program) == serde.encode(
        toy_full_program.cpe_program
    )


def test_verify_pass_is_terminal_for_all_variants():
    for name, options in VARIANTS.items():
        compiler = GemmCompiler(TOY_ARCH, options)
        passes = [p.name for p in compiler.pipeline_for(GemmSpec())]
        assert passes[-1] == "verify", name
