"""The timeline IR and its extract/materialize round trip.

The rewrite machinery is only sound if lifting a schedule tree into a
timeline and writing it straight back is the identity — otherwise a
"rewrite" could change the program without any pass having fired.
"""

import pytest

from repro.core import CompilerOptions, GemmSpec
from repro.schedule import (
    ROLE_TO_KIND,
    STEP_KINDS,
    ScheduleStep,
    extract_timeline,
    materialize,
)
from repro.errors import CompilationError
from repro.sunway.arch import SW26010, SW26010PRO

from tests.schedule.conftest import fresh_context

VARIANTS = {
    "default": (SW26010PRO, CompilerOptions.full(), GemmSpec()),
    "no-rma": (
        SW26010PRO,
        CompilerOptions.full().with_(enable_rma=False),
        GemmSpec(),
    ),
    "fused": (SW26010PRO, CompilerOptions.full(), GemmSpec(epilogue_func="relu")),
    "batched": (
        SW26010PRO,
        CompilerOptions.full().with_(batch=True),
        GemmSpec(batch_param="BS"),
    ),
    "sw26010": (SW26010, CompilerOptions.full(), GemmSpec()),
}


@pytest.mark.parametrize("variant", sorted(VARIANTS))
def test_extract_materialize_is_identity(variant):
    arch, options, spec = VARIANTS[variant]
    dec, _, _, _ = fresh_context(arch, options, spec)
    before = dec.root.dump()
    timeline = extract_timeline(dec.root)
    materialize(timeline)
    assert dec.root.dump() == before


@pytest.mark.parametrize("variant", sorted(VARIANTS))
def test_dump_is_deterministic(variant):
    arch, options, spec = VARIANTS[variant]
    dec, _, _, _ = fresh_context(arch, options, spec)
    first = extract_timeline(dec.root).dump()
    second = extract_timeline(dec.root).dump()
    assert first == second


def test_every_step_kind_is_canonical(toy_context):
    dec, _, _, _ = toy_context
    timeline = extract_timeline(dec.root)
    seen = set()
    for lvl in timeline.levels.values():
        for seg in lvl.all_segments():
            for step in seg.steps:
                assert step.kind in STEP_KINDS
                seen.add(step.kind)
    # The full recipe exercises the whole stage alphabet except the
    # explicit compute steps (scale/prologue/epilogue are chunk-level).
    assert {"dma_issue", "dma_wait", "rma_put", "rma_wait",
            "buffer_swap"} <= seen


def test_levels_are_outermost_first(toy_context):
    dec, _, _, _ = toy_context
    timeline = extract_timeline(dec.root)
    assert list(timeline.levels) == ["chunk", "kouter", "kmid"]


def test_no_rma_variant_has_no_kmid_level():
    dec, _, _, _ = fresh_context(
        SW26010PRO, CompilerOptions.full().with_(enable_rma=False)
    )
    timeline = extract_timeline(dec.root)
    assert "kmid" not in timeline.levels
    assert "kouter" in timeline.levels


def test_unknown_role_is_rejected():
    class FakeStmt:
        name = "mystery"
        role = "quantum_teleport"

    with pytest.raises(CompilationError, match="quantum_teleport"):
        ScheduleStep.of(FakeStmt())


def test_role_map_covers_only_known_stages():
    assert set(ROLE_TO_KIND.values()) <= set(STEP_KINDS)
