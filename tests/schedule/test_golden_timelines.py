"""Golden before/after timelines for four pipeline variants.

``before`` is the §6 recipe's timeline; ``after`` is what the full
rewrite stack (``--schedule=optimize``) admits for the same variant.
Any change to the extractor, the rewrites or the admission protocol
shows up as a diff here.  Review it, then regenerate with::

    PYTHONPATH=src python -c \
      "from tests.schedule.test_golden_timelines import regenerate; regenerate()"
"""

from pathlib import Path

import pytest

from repro.core import CompilerOptions, GemmSpec
from repro.core.options import SchedulePolicy
from repro.core.pipeline import GemmCompiler
from repro.schedule import extract_timeline
from repro.sunway.arch import SW26010PRO

GOLDEN = Path(__file__).parent.parent / "golden" / "schedule"

#: variant name -> (spec, options); each builds a distinct timeline.
VARIANTS = {
    "default": (GemmSpec(), CompilerOptions.full()),
    "no-rma": (GemmSpec(), CompilerOptions.full().with_(enable_rma=False)),
    "fused": (GemmSpec(epilogue_func="relu"), CompilerOptions.full()),
    "batched": (
        GemmSpec(batch_param="BS"),
        CompilerOptions.full().with_(batch=True),
    ),
}


def _timeline(variant, optimize):
    spec, options = VARIANTS[variant]
    if optimize:
        options = options.with_(schedule=SchedulePolicy(mode="optimize"))
    program = GemmCompiler(SW26010PRO, options).compile(spec)
    return extract_timeline(program.tree).dump()


def regenerate() -> None:  # pragma: no cover - maintenance helper
    GOLDEN.mkdir(parents=True, exist_ok=True)
    for variant in VARIANTS:
        for phase, optimize in (("before", False), ("after", True)):
            (GOLDEN / f"{variant}-{phase}.txt").write_text(
                _timeline(variant, optimize)
            )


@pytest.mark.parametrize("variant", sorted(VARIANTS))
@pytest.mark.parametrize("phase", ["before", "after"])
def test_timeline_matches_golden(variant, phase):
    golden = GOLDEN / f"{variant}-{phase}.txt"
    assert golden.exists(), f"missing golden {golden}; run regenerate()"
    assert _timeline(variant, phase == "after") == golden.read_text()


@pytest.mark.parametrize("variant", sorted(VARIANTS))
def test_optimize_actually_rewrites(variant):
    before = (GOLDEN / f"{variant}-before.txt").read_text()
    after = (GOLDEN / f"{variant}-after.txt").read_text()
    assert before != after
