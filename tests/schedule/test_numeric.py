"""Optimized schedules must be numerically invisible.

The rewrites reorder transfers and waits, never arithmetic: for every
variant the optimize pipeline's result must be *bit-identical* to the
recipe's, not merely close.
"""

import numpy as np
import pytest

from repro.core import CompilerOptions, GemmSpec
from repro.core.options import SchedulePolicy
from repro.core.pipeline import GemmCompiler
from repro.runtime.executor import run_gemm
from repro.sunway.arch import TOY_ARCH

VARIANTS = {
    "default": (GemmSpec(), CompilerOptions.full(), {}),
    "no-rma": (GemmSpec(), CompilerOptions.full().with_(enable_rma=False), {}),
    "fused": (GemmSpec(epilogue_func="relu"), CompilerOptions.full(), {}),
    "batched": (
        GemmSpec(batch_param="BS"),
        CompilerOptions.full().with_(batch=True),
        {"batch": 3},
    ),
}


@pytest.mark.parametrize("variant", sorted(VARIANTS))
def test_optimize_is_bit_identical_to_recipe(variant, rng):
    spec, options, extra = VARIANTS[variant]
    recipe = GemmCompiler(TOY_ARCH, options).compile(spec)
    optimized = GemmCompiler(
        TOY_ARCH, options.with_(schedule=SchedulePolicy(mode="optimize"))
    ).compile(spec)
    assert any(
        s.name.startswith("schedule:") for s in optimized.pass_stats
    )
    M, N, K = 32, 48, 24
    batch = extra.get("batch")
    if batch:
        A = rng.standard_normal((batch, M, K))
        B = rng.standard_normal((batch, K, N))
        C0 = rng.standard_normal((batch, M, N))
    else:
        A = rng.standard_normal((M, K))
        B = rng.standard_normal((K, N))
        C0 = rng.standard_normal((M, N))
    c_recipe, _ = run_gemm(recipe, A, B, C0.copy(), alpha=1.5, beta=0.5)
    c_opt, _ = run_gemm(optimized, A, B, C0.copy(), alpha=1.5, beta=0.5)
    assert np.array_equal(c_recipe, c_opt)
