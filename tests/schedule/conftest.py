"""Shared helpers for the schedule-IR test suite.

``fresh_context`` compiles one recipe pipeline and hands back the live
compile context (decomposition + DMA/RMA specs + arch) — the raw
material :func:`repro.schedule.apply_rewrite` operates on.  Rewrites
mutate the decomposition in place, so every test that rewrites asks for
a fresh one.
"""

import pytest

from repro.core import CompilerOptions, GemmSpec
from repro.core.pipeline import GemmCompiler
from repro.sunway.arch import SW26010PRO, TOY_ARCH


def fresh_context(arch=TOY_ARCH, options=None, spec=None):
    """(decomposition, dma_specs, rma_specs, arch) of a recipe compile."""
    options = options or CompilerOptions.full()
    spec = spec or GemmSpec()
    # The admission protocol replays every candidate itself; skipping
    # the pipeline's terminal verify keeps the fixtures fast.
    compiler = GemmCompiler(arch, options.with_(verify=False))
    _, ctx = compiler.compile_with_context(spec)
    return ctx.decomposition, ctx.dma_specs, ctx.rma_specs, ctx.arch


@pytest.fixture
def toy_context():
    return fresh_context(TOY_ARCH)


@pytest.fixture
def pro_context():
    return fresh_context(SW26010PRO)
