"""SchedulePolicy: parsing, reconciliation, serde, cache keys and the
pipeline it selects."""

import pytest

from repro.core import CompilerOptions, GemmSpec
from repro.core.options import SCHEDULE_PASS_NAMES, SchedulePolicy
from repro.core.passes import build_pipeline, reconcile_options
from repro.core.pipeline import GemmCompiler
from repro.errors import ConfigurationError
from repro.runtime import serde
from repro.service.keys import cache_key
from repro.sunway.arch import SW26010PRO


# -- parsing ---------------------------------------------------------------


def test_parse_accepts_mode_strings_and_dicts():
    assert SchedulePolicy.parse("optimize").mode == "optimize"
    assert SchedulePolicy.parse(None) is None
    policy = SchedulePolicy.parse(
        {"mode": "optimize", "allow": ["reorder-issues"]}
    )
    assert policy.allow == ("reorder-issues",)
    same = SchedulePolicy(mode="off")
    assert SchedulePolicy.parse(same) is same


@pytest.mark.parametrize(
    "bad",
    ["turbo", 42, {"mode": "optimize", "allo": []}, ["optimize"]],
)
def test_parse_rejects_malformed_values(bad):
    with pytest.raises(ConfigurationError):
        SchedulePolicy.parse(bad)


def test_policy_validates_pass_names():
    with pytest.raises(ConfigurationError, match="unknown schedule pass"):
        SchedulePolicy(mode="optimize", allow=("defrag",))
    with pytest.raises(ConfigurationError, match="unknown schedule mode"):
        SchedulePolicy(mode="sideways")


def test_pass_names_honours_allow_and_deny():
    assert SchedulePolicy().pass_names() == SCHEDULE_PASS_NAMES
    assert SchedulePolicy(
        mode="optimize", allow=("retire-waits", "split-waits")
    ).pass_names() == ("retire-waits", "split-waits")
    assert SchedulePolicy(
        mode="optimize", deny=("reorder-issues",)
    ).pass_names() == tuple(
        n for n in SCHEDULE_PASS_NAMES if n != "reorder-issues"
    )


# -- reconciliation --------------------------------------------------------


def test_reconcile_canonicalises_recipe_to_none():
    spec = GemmSpec()
    options = CompilerOptions.full().with_(
        schedule=SchedulePolicy(mode="recipe")
    )
    assert reconcile_options(spec, options, SW26010PRO).schedule is None


def test_reconcile_off_disables_hiding():
    spec = GemmSpec()
    options = CompilerOptions.full().with_(schedule=SchedulePolicy(mode="off"))
    reconciled = reconcile_options(spec, options, SW26010PRO)
    assert reconciled.schedule is None
    assert not reconciled.enable_latency_hiding


def test_reconcile_drops_optimize_without_hiding():
    spec = GemmSpec()
    options = CompilerOptions.full().with_(
        enable_latency_hiding=False,
        schedule=SchedulePolicy(mode="optimize"),
    )
    assert reconcile_options(spec, options, SW26010PRO).schedule is None


def test_reconcile_normalises_optimize_to_resolved_allow_list():
    spec = GemmSpec()
    options = CompilerOptions.full().with_(
        schedule=SchedulePolicy(mode="optimize", deny=("retire-waits",))
    )
    reconciled = reconcile_options(spec, options, SW26010PRO)
    assert reconciled.schedule == SchedulePolicy(
        mode="optimize",
        allow=tuple(n for n in SCHEDULE_PASS_NAMES if n != "retire-waits"),
    )


def test_equivalent_policies_share_a_cache_key():
    spec = GemmSpec()
    base = cache_key(spec, options=CompilerOptions.full())
    recipe = cache_key(
        spec,
        options=CompilerOptions.full().with_(
            schedule=SchedulePolicy(mode="recipe")
        ),
    )
    assert recipe == base
    allow_all = cache_key(
        spec,
        options=CompilerOptions.full().with_(
            schedule=SchedulePolicy(mode="optimize")
        ),
    )
    spelled_out = cache_key(
        spec,
        options=CompilerOptions.full().with_(
            schedule=SchedulePolicy(
                mode="optimize", allow=SCHEDULE_PASS_NAMES
            )
        ),
    )
    assert allow_all == spelled_out
    assert allow_all != base  # rewritten timelines address separately


# -- serde -----------------------------------------------------------------


def test_policy_round_trips_through_serde():
    options = CompilerOptions.full().with_(
        schedule=SchedulePolicy(
            mode="optimize", allow=("split-waits",), deny=()
        )
    )
    decoded = serde.decode(serde.encode(options))
    assert decoded == options
    assert isinstance(decoded.schedule.allow, tuple)


# -- pipeline selection ----------------------------------------------------


def test_optimize_pipeline_contains_schedule_passes_in_policy_order():
    spec = GemmSpec()
    options = reconcile_options(
        spec,
        CompilerOptions.full().with_(
            schedule=SchedulePolicy(
                mode="optimize",
                allow=("merge-transfers", "split-waits"),
            )
        ),
        SW26010PRO,
    )
    names = [p.name for p in build_pipeline(spec, SW26010PRO, options)]
    assert names.index("schedule:merge-transfers") < names.index(
        "schedule:split-waits"
    )
    assert names.index("latency-hiding") < names.index(
        "schedule:merge-transfers"
    )
    assert "schedule:reorder-issues" not in names


def test_recipe_pipeline_has_no_schedule_passes():
    spec = GemmSpec()
    options = reconcile_options(spec, CompilerOptions.full(), SW26010PRO)
    names = [p.name for p in build_pipeline(spec, SW26010PRO, options)]
    assert not any(n.startswith("schedule:") for n in names)


def test_disable_pass_maps_into_policy_deny():
    compiler = GemmCompiler(
        SW26010PRO,
        CompilerOptions.full().with_(
            schedule=SchedulePolicy(mode="optimize")
        ),
        disable_passes=("schedule:retire-waits",),
    )
    names = [p.name for p in compiler.pipeline_for(GemmSpec())]
    assert "schedule:retire-waits" not in names
    assert "schedule:split-waits" in names


def test_variant_name_reflects_the_policy():
    full = CompilerOptions.full()
    assert "+sched" not in full.variant_name()
    opt = full.with_(schedule=SchedulePolicy(mode="optimize"))
    assert "+sched" in opt.variant_name()
    subset = full.with_(
        schedule=SchedulePolicy(mode="optimize", allow=("split-waits",))
    )
    assert "+sched[split-waits]" in subset.variant_name()
