"""The schedule policy across the public surfaces: facade, wire
protocol, CLI and the deprecation shim."""

import numpy as np
import pytest

import repro
from repro import api
from repro.cli import main
from repro.core import CompilerOptions, GemmSpec
from repro.core.options import SchedulePolicy
from repro.errors import ConfigurationError
from repro.serve.protocol import ProtocolError, spec_and_options
from repro.service import CompileService, ServiceConfig
from repro.sunway.arch import TOY_ARCH


@pytest.fixture
def toy_service():
    return CompileService(ServiceConfig(cache_dir=None))


# -- facade ----------------------------------------------------------------


def test_api_compile_accepts_schedule_strings(toy_service):
    program = api.compile(
        GemmSpec(), arch=TOY_ARCH, schedule="optimize", service=toy_service
    )
    assert program.options.schedule is not None
    assert program.options.schedule.mode == "optimize"
    assert any(
        s.name.startswith("schedule:") for s in program.pass_stats
    )


def test_api_compile_accepts_schedule_dicts(toy_service):
    program = api.compile(
        GemmSpec(),
        arch=TOY_ARCH,
        schedule={"mode": "optimize", "allow": ["reorder-issues"]},
        service=toy_service,
    )
    names = [s.name for s in program.pass_stats]
    assert "schedule:reorder-issues" in names
    assert "schedule:split-waits" not in names


def test_api_compile_rejects_bad_schedule(toy_service):
    with pytest.raises(ConfigurationError):
        api.compile(GemmSpec(), arch=TOY_ARCH, schedule="warp-speed",
                    service=toy_service)


def test_schedule_policy_is_a_top_level_export():
    assert repro.SchedulePolicy is SchedulePolicy


def test_api_run_matches_recipe_numerically(toy_service):
    rng = np.random.default_rng(3)
    a = rng.standard_normal((32, 24))
    b = rng.standard_normal((24, 48))
    recipe = api.run(GemmSpec(), a, b, arch=TOY_ARCH, service=toy_service)
    optimized = api.run(
        GemmSpec(), a, b, arch=TOY_ARCH, schedule="optimize",
        service=toy_service,
    )
    assert np.array_equal(recipe.c, optimized.c)


# -- wire protocol ---------------------------------------------------------


def test_wire_schedule_mode_string():
    _, options, _ = spec_and_options({"arch": "toy", "schedule": "optimize"})
    assert options.schedule == SchedulePolicy(mode="optimize")


def test_wire_schedule_structured_object():
    _, options, _ = spec_and_options(
        {"arch": "toy",
         "schedule": {"mode": "optimize", "deny": ["retire-waits"]}}
    )
    assert options.schedule.deny == ("retire-waits",)


@pytest.mark.parametrize(
    "bad",
    [
        "hyperspeed",
        {"mode": "optimize", "allow": ["defrag"]},
        {"mode": "optimize", "bogus_key": 1},
        7,
    ],
)
def test_wire_rejects_bad_schedule_as_protocol_error(bad):
    with pytest.raises(ProtocolError):
        spec_and_options({"arch": "toy", "schedule": bad})


# -- deprecation shim ------------------------------------------------------


def test_hiding_options_shim_warns_and_maps_bit_exactly():
    from repro.compat import hiding_options
    from repro.service.keys import cache_key

    spec = GemmSpec()
    with pytest.deprecated_call():
        on = hiding_options(True)
    with pytest.deprecated_call():
        off = hiding_options(False)
    assert cache_key(spec, options=on) == cache_key(
        spec, options=CompilerOptions.full()
    )
    assert cache_key(spec, options=off) == cache_key(
        spec,
        options=CompilerOptions.full().with_(enable_latency_hiding=False),
    )


# -- CLI -------------------------------------------------------------------


def test_cli_passes_list_covers_schedule_namespace(capsys):
    assert main(["passes", "list", "--schedule=optimize"]) == 0
    out = capsys.readouterr().out
    assert "+sched" in out
    for name in ("schedule:split-waits", "schedule:reorder-issues",
                 "schedule:merge-transfers", "schedule:retire-waits"):
        assert name in out


def test_cli_schedule_off_drops_hiding(capsys):
    assert main(["passes", "list", "--schedule=off"]) == 0
    out = capsys.readouterr().out
    assert "latency-hiding" not in out
    assert "communication-schedule" in out


def test_cli_schedule_passes_filters_the_stack(capsys):
    assert main([
        "passes", "list", "--schedule=optimize",
        "--schedule-passes", "reorder-issues",
    ]) == 0
    out = capsys.readouterr().out
    assert "schedule:reorder-issues" in out
    assert "schedule:split-waits" not in out


def test_cli_rejects_optimize_with_no_hiding(capsys):
    assert main(["passes", "list", "--schedule=optimize", "--no-hiding"]) == 1
    err = capsys.readouterr().err
    assert "--schedule=optimize" in err


def test_cli_rejects_schedule_passes_without_optimize(capsys):
    assert main(["passes", "list", "--schedule-passes", "split-waits"]) == 1
    err = capsys.readouterr().err
    assert "--schedule=optimize" in err


def test_cli_tree_appends_the_timeline(capsys):
    assert main(["tree", "--no-cache"]) == 0
    out = capsys.readouterr().out
    assert "--- schedule timeline ---" in out
    assert "timeline:" in out


def test_cli_dump_ir_includes_timeline_artifact(tmp_path, capsys):
    outdir = tmp_path / "ir"
    assert main(["tree", "--dump-ir", str(outdir), "--no-cache"]) == 0
    files = sorted(p.name for p in outdir.iterdir())
    assert any(name.endswith("schedule-timeline.txt") for name in files)
    timeline = next(
        p for p in outdir.iterdir() if p.name.endswith("schedule-timeline.txt")
    )
    assert timeline.read_text().startswith("timeline:")
