"""The greedy seeded pass-ordering search."""

from repro.core.options import SCHEDULE_PASS_NAMES, SchedulePolicy
from repro.schedule import greedy_pass_order


def synthetic(weights):
    """Evaluator scoring a policy by summed per-pass weights."""

    def evaluate(policy):
        if policy is None:
            return 100.0
        return 100.0 + sum(weights.get(n, 0.0) for n in policy.pass_names())

    return evaluate


def test_recipe_best_returns_none():
    assert greedy_pass_order(synthetic({})) is None
    assert greedy_pass_order(
        synthetic({n: -1.0 for n in SCHEDULE_PASS_NAMES})
    ) is None


def test_greedy_picks_best_first_and_stops_at_no_gain():
    policy = greedy_pass_order(
        synthetic({"reorder-issues": 2.0, "split-waits": 0.5})
    )
    assert policy == SchedulePolicy(
        mode="optimize", allow=("reorder-issues", "split-waits")
    )


def test_search_is_a_pure_function_of_the_seed():
    # All passes tie: the seeded salt decides, deterministically.
    ties = {n: 1.0 for n in SCHEDULE_PASS_NAMES}
    a = greedy_pass_order(synthetic(ties), seed=7)
    b = greedy_pass_order(synthetic(ties), seed=7)
    assert a == b
    assert a is not None
    assert set(a.allow) == set(SCHEDULE_PASS_NAMES)


def test_different_seeds_may_break_ties_differently():
    ties = {n: 1.0 for n in SCHEDULE_PASS_NAMES}
    orders = {
        greedy_pass_order(synthetic(ties), seed=s).allow for s in range(16)
    }
    assert len(orders) > 1


def test_negative_pass_is_never_selected():
    policy = greedy_pass_order(
        synthetic({"reorder-issues": 1.0, "retire-waits": -5.0})
    )
    assert policy is not None
    assert "retire-waits" not in policy.allow
