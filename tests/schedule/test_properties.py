"""Property tests for schedule-rewrite legality and confluence.

Two properties hold the whole subsystem together:

* **legality is preserved by every pass composition** — whatever subset
  of rewrites is applied in whatever order, the installed tree lowers to
  a program the verifier's ``ScheduleMachine`` replays clean and that
  still fits the SPM budget;
* **commuting rewrites are confluent** — the timeline the full stack
  produces is independent of application order, so the pass-ordering
  search only ever explores *which* rewrites run, never fights
  ordering-dependent outcomes of the same set.
"""

import itertools

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.options import SCHEDULE_PASS_NAMES
from repro.poly.schedule_tree import clone_tree
from repro.schedule import (
    REWRITES,
    apply_rewrite,
    check_legal,
    extract_timeline,
    lower_root,
    materialize,
)
from repro.sunway.arch import TOY_ARCH

from tests.schedule.conftest import fresh_context

pass_sequences = st.lists(
    st.sampled_from(SCHEDULE_PASS_NAMES),
    unique=True,
    min_size=1,
    max_size=len(SCHEDULE_PASS_NAMES),
)


@settings(max_examples=10, deadline=None)
@given(sequence=pass_sequences)
def test_every_composition_preserves_machine_acceptance_and_spm_slack(
    sequence,
):
    dec, dma, rma, arch = fresh_context(TOY_ARCH)
    for name in sequence:
        outcome = apply_rewrite(dec, name, dma, rma, arch)
        # An admitted rewrite is always replay-proven; a refused one
        # must leave a reason and never silently half-apply.
        assert outcome.applied == outcome.proven
        if not outcome.applied:
            assert outcome.reason
    # The final installed tree — whatever was admitted — lowers to a
    # machine-accepted, SPM-feasible program.
    candidate = lower_root(dec, dec.root, dma, rma, arch)
    assert check_legal(dec, candidate, arch) is None


def test_full_stack_is_confluent_across_all_orders(toy_context):
    """All 24 orderings of the four rewrites produce byte-identical
    timelines (pure tree-level application; legality is covered by the
    composition property above)."""
    dec, _, _, _ = toy_context
    dumps = set()
    for order in itertools.permutations(SCHEDULE_PASS_NAMES):
        clone = clone_tree(dec.root)
        timeline = extract_timeline(clone)
        for name in order:
            REWRITES[name].fn(timeline)
        materialize(timeline)
        dumps.add(extract_timeline(clone).dump())
    assert len(dumps) == 1


@settings(max_examples=10, deadline=None)
@given(sequence=pass_sequences)
def test_admitted_sequences_are_idempotent(sequence):
    """Re-running an already-applied rewrite finds no opportunity —
    every rewrite drives the timeline to its own fixed point."""
    dec, dma, rma, arch = fresh_context(TOY_ARCH)
    applied = [
        name
        for name in sequence
        if apply_rewrite(dec, name, dma, rma, arch).applied
    ]
    for name in applied:
        again = apply_rewrite(dec, name, dma, rma, arch)
        assert not again.applied, name
        assert again.reason == "no opportunity"
