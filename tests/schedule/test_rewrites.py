"""The four schedule rewrites and the clone→replay→admit protocol."""

import pytest

from repro.core import CompilerOptions, GemmSpec
from repro.core.options import SCHEDULE_PASS_NAMES
from repro.errors import CompilationError
from repro.schedule import (
    REWRITES,
    apply_rewrite,
    check_legal,
    extract_timeline,
    lower_root,
)
from repro.sunway.arch import SW26010PRO

from tests.schedule.conftest import fresh_context


def test_registry_matches_the_canonical_pass_names():
    assert tuple(REWRITES) == SCHEDULE_PASS_NAMES
    for name, rewrite in REWRITES.items():
        assert rewrite.name == name
        assert rewrite.summary


def test_unknown_rewrite_is_an_error(toy_context):
    dec, dma, rma, arch = toy_context
    with pytest.raises(CompilationError, match="unknown schedule rewrite"):
        apply_rewrite(dec, "defragment-universe", dma, rma, arch)


@pytest.mark.parametrize(
    "name", ["split-waits", "reorder-issues", "merge-transfers"]
)
def test_rewrite_applies_and_is_proven_on_the_recipe(toy_context, name):
    dec, dma, rma, arch = toy_context
    before = dec.root.dump()
    outcome = apply_rewrite(dec, name, dma, rma, arch)
    assert outcome.applied and outcome.proven
    assert outcome.cpe_program is not None
    assert dec.root.dump() != before
    # The installed tree lowers and replays clean on its own.
    candidate = lower_root(dec, dec.root, dma, rma, arch)
    assert check_legal(dec, candidate, arch) is None


def test_retire_waits_is_identity_on_the_recipe(toy_context):
    """The recipe never waits twice on an un-rearmed counter, so the
    dead-wait eliminator must report no opportunity rather than
    inventing one."""
    dec, dma, rma, arch = toy_context
    before = dec.root.dump()
    outcome = apply_rewrite(dec, "retire-waits", dma, rma, arch)
    assert not outcome.applied
    assert outcome.reason == "no opportunity"
    assert dec.root.dump() == before


def test_rejected_candidate_leaves_the_tree_untouched(toy_context):
    """Force the legality check to refuse and confirm the admission
    protocol rolls back (the clone is dropped, dec.root survives)."""
    from repro.schedule import passes as schedule_passes

    dec, dma, rma, arch = toy_context
    before = dec.root.dump()
    bands_before = dict(dec.bands)
    original = schedule_passes.check_legal
    try:
        schedule_passes.check_legal = lambda *a: "synthetic refusal"
        outcome = schedule_passes.apply_rewrite(
            dec, "split-waits", dma, rma, arch
        )
    finally:
        schedule_passes.check_legal = original
    assert not outcome.applied
    assert outcome.reason == "synthetic refusal"
    assert dec.root.dump() == before
    assert dec.bands == bands_before


def test_band_handles_repointed_into_admitted_clone(toy_context):
    dec, dma, rma, arch = toy_context
    assert apply_rewrite(dec, "reorder-issues", dma, rma, arch).applied
    live = {id(node) for node in dec.root.walk()}
    for key, band in dec.bands.items():
        assert id(band) in live, key


def test_merge_transfers_moves_peel_into_chunk_burst():
    dec, dma, rma, arch = fresh_context(SW26010PRO)
    before = extract_timeline(dec.root)
    assert any(seg.steps for seg in before.level("kouter").peel)
    assert apply_rewrite(dec, "merge-transfers", dma, rma, arch).applied
    after = extract_timeline(dec.root)
    # The peeled A0/B0 issues now ride in the chunk's first burst...
    kouter = after.level("kouter")
    assert not any(seg.steps for seg in kouter.peel)
    first = after.level("chunk").body[0]
    names = first.step_names()
    assert "getA_0" in names and "getB_0" in names


def test_split_waits_separates_the_wait_pair():
    dec, dma, rma, arch = fresh_context(SW26010PRO)
    before = extract_timeline(dec.root).level("kouter")
    paired = [
        seg for seg in before.body
        if len(seg.steps) >= 2 and all(s.kind == "dma_wait" for s in seg.steps)
    ]
    assert paired, "recipe should group the A/B waits"
    assert apply_rewrite(dec, "split-waits", dma, rma, arch).applied
    after = extract_timeline(dec.root).level("kouter")
    still_paired = [
        seg for seg in after.body
        if len(seg.steps) >= 2 and all(s.kind == "dma_wait" for s in seg.steps)
    ]
    assert len(still_paired) < len(paired)


def test_reorder_issues_hoists_swap_and_front_loads_issues():
    dec, dma, rma, arch = fresh_context(SW26010PRO)
    assert apply_rewrite(dec, "reorder-issues", dma, rma, arch).applied
    after = extract_timeline(dec.root)
    kouter = after.level("kouter")
    # The decollectivized buffer swap leads the outer body...
    assert all(s.kind == "buffer_swap" for s in kouter.body[0].steps)
    # ...and unguarded pure-issue segments precede the first wait.
    kinds = [
        {s.kind for s in seg.steps}
        for seg in kouter.body
    ]
    first_wait = next(
        i for i, ks in enumerate(kinds) if "dma_wait" in ks
    )
    assert not any(
        ks == {"dma_issue"} for ks in kinds[first_wait:]
    )
