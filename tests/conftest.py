"""Shared fixtures.

Functional tests run on the down-scaled TOY_ARCH (2×2 mesh, 8×8×4 micro
kernel) so whole-mesh executions take milliseconds; a handful of
integration tests exercise the real SW26010Pro geometry.
"""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.core import CompilerOptions, GemmCompiler, GemmSpec
from repro.sunway.arch import SW26010PRO, TOY_ARCH


@pytest.fixture(scope="session", autouse=True)
def _isolated_kernel_cache(tmp_path_factory):
    """Point the compilation service's disk tier at a temp dir so the
    suite never touches ~/.cache, and start from a fresh default service."""
    from repro.service import set_default_service
    from repro.service.store import CACHE_DIR_ENV

    previous = os.environ.get(CACHE_DIR_ENV)
    os.environ[CACHE_DIR_ENV] = str(tmp_path_factory.mktemp("swgemm-cache"))
    set_default_service(None)
    yield
    set_default_service(None)
    if previous is None:
        os.environ.pop(CACHE_DIR_ENV, None)
    else:
        os.environ[CACHE_DIR_ENV] = previous


VARIANTS = {
    "baseline": CompilerOptions.baseline(),
    "asm": CompilerOptions.with_asm(),
    "rma": CompilerOptions.with_rma(),
    "full": CompilerOptions.full(),
}


@pytest.fixture(scope="session")
def toy_programs():
    """One compiled toy-arch program per §8.1 variant."""
    spec = GemmSpec()
    return {
        name: GemmCompiler(TOY_ARCH, options).compile(spec)
        for name, options in VARIANTS.items()
    }


@pytest.fixture(scope="session")
def toy_full_program(toy_programs):
    return toy_programs["full"]


@pytest.fixture(scope="session")
def pro_full_program():
    return GemmCompiler(SW26010PRO, CompilerOptions.full()).compile(GemmSpec())


@pytest.fixture()
def rng():
    return np.random.default_rng(0xC0FFEE)


def reference_gemm(A, B, C, alpha=1.0, beta=1.0):
    """NumPy oracle for C = alpha*A@B + beta*C (2-D or batched 3-D)."""
    if A.ndim == 3:
        return alpha * np.einsum("bik,bkj->bij", A, B) + beta * C
    return alpha * (A @ B) + beta * C
