"""The athread runtime facade."""

import numpy as np
import pytest

from repro.sunway.arch import TOY_ARCH
from repro.sunway.athread import AthreadRuntime
from repro.sunway.mesh import Cluster


@pytest.fixture()
def runtime():
    cluster = Cluster(TOY_ARCH)
    cluster.memory.alloc("A", (16, 16))
    for cpe in cluster.all_cpes():
        cpe.spm.alloc("tile", (2, 4, 4))
    return AthreadRuntime(cluster)


def test_dma_roundtrip_via_facade(runtime):
    cpe = runtime.cluster.cpe(0, 0)
    A = runtime.main_array("A")
    A[...] = np.arange(256.0).reshape(16, 16)
    runtime.dma_iget(cpe, ("tile", 0), "A", offset=0, size=16, length=4,
                     strip=12, reply="r")
    assert runtime.reply_satisfied(cpe, "r", 1)
    runtime.finish_wait(cpe, "r", 1)
    tile = cpe.spm.slot("tile", 0)
    assert (tile == A[:4, :4]).all()
    tile += 1
    runtime.dma_iput(cpe, "A", 0, ("tile", 0), size=16, length=4,
                     strip=12, reply="w")
    runtime.finish_wait(cpe, "w", 1)
    assert (A[:4, :4] == tile).all()


def test_finish_wait_advances_clock_and_unpoisons(runtime):
    cpe = runtime.cluster.cpe(0, 0)
    runtime.dma_iget(cpe, ("tile", 0), "A", 0, 16, 4, 12, "r")
    before = cpe.clock
    runtime.finish_wait(cpe, "r", 1)
    assert cpe.clock > before
    cpe.spm.check_readable("tile", 0)  # no raise


def test_rma_facade_row_and_col(runtime):
    cluster = runtime.cluster
    for cpe in cluster.all_cpes():
        cpe.rma_armed = True
    sender = cluster.cpe(0, 1)
    sender.spm.slot("tile", 0)[...] = 5.0
    runtime.rma_row_ibcast(
        sender, ("tile", 0), ("tile", 1), 16, "rbcast_replys", "rbcast_replyr"
    )
    receiver = cluster.cpe(0, 0)
    assert runtime.reply_satisfied(receiver, "rbcast_replyr", 1)
    runtime.finish_wait(receiver, "rbcast_replyr", 1)
    assert (receiver.spm.slot("tile", 1) == 5.0).all()
    # An RMA wait disarms the launch window (§5).
    assert not receiver.rma_armed


def test_reply_reset(runtime):
    cpe = runtime.cluster.cpe(1, 1)
    runtime.dma_iget(cpe, ("tile", 0), "A", 0, 16, 4, 12, "r")
    runtime.reply_reset(cpe, "r")
    assert not runtime.reply_satisfied(cpe, "r", 1)


def test_barrier_facade(runtime):
    tokens = [
        runtime.barrier_arrive(cpe) for cpe in runtime.cluster.all_cpes()
    ]
    assert all(runtime.barrier_passed(t) for t in tokens)


def test_charge_compute_accumulates(runtime):
    cpe = runtime.cluster.cpe(0, 0)
    runtime.charge_compute(cpe, 1e-6)
    runtime.charge_compute(cpe, 2e-6)
    assert cpe.stats["compute_seconds"] == pytest.approx(3e-6)
    assert cpe.clock == pytest.approx(3e-6)


def test_elem_bytes_scales_timing():
    """Half-width elements halve the channel occupancy (for runs longer
    than the DDR burst, where no stride penalty interferes)."""
    cluster = Cluster(TOY_ARCH)
    cluster.memory.alloc("A", (16, 16))
    for cpe in cluster.all_cpes():
        cpe.spm.alloc("tile", (2, 8, 8))
    wide = AthreadRuntime(cluster, elem_bytes=8)
    t8 = wide.dma_iget(
        cluster.cpe(0, 0), ("tile", 0), "A", 0, size=64, length=32,
        strip=0, reply="a",
    )
    narrow = AthreadRuntime(cluster, elem_bytes=4)
    t4_start = cluster.dma.channel_free
    t4 = narrow.dma_iget(
        cluster.cpe(0, 1), ("tile", 0), "A", 0, size=64, length=32,
        strip=0, reply="b",
    )
    assert (t4 - t4_start) < t8
