"""Property tests for the trace interval math.

``_merge`` / ``_intersection_length`` back every overlap number the
Fig. 10 reproduction reports; these tests pin their algebra down on an
integer grid (where a brute-force point count is an exact oracle) and on
the edge shapes that historically break interval code: touching spans,
zero-length spans, and covers that straddle gap boundaries.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sunway.trace import (
    TraceRecorder,
    _intersection_length,
    _merge,
    _union_length,
)

# Small integer endpoints: unit cells make brute-force counting exact and
# shrink to readable counterexamples.
span = st.tuples(
    st.integers(min_value=0, max_value=30),
    st.integers(min_value=0, max_value=30),
).map(lambda t: (float(min(t)), float(max(t))))
spans = st.lists(span, max_size=12)


def covered_cells(span_list):
    """The set of unit cells [i, i+1) inside the union of ``span_list``."""
    cells = set()
    for start, end in span_list:
        cells.update(range(int(start), int(end)))
    return cells


# -- _merge ------------------------------------------------------------------


@given(spans)
@settings(max_examples=200)
def test_merge_is_sorted_disjoint_and_length_preserving(span_list):
    merged = _merge(span_list)
    # Strictly increasing, non-touching, well-formed intervals.
    for start, end in merged:
        assert start <= end
    for (_, prev_end), (next_start, _) in zip(merged, merged[1:]):
        assert prev_end < next_start
    # Union is preserved exactly (integer grid ⇒ exact comparison).
    assert covered_cells(merged) == covered_cells(span_list)
    assert _union_length(merged) == _union_length(span_list)


@given(spans)
@settings(max_examples=100)
def test_merge_is_idempotent_and_order_insensitive(span_list):
    merged = _merge(span_list)
    assert _merge(merged) == merged
    assert _merge(list(reversed(span_list))) == merged


def test_merge_touching_spans_coalesce():
    assert _merge([(0.0, 1.0), (1.0, 2.0)]) == [(0.0, 2.0)]


def test_merge_zero_length_spans():
    # A zero-length span adds no length and must not split a merge.
    assert _union_length([(1.0, 1.0)]) == 0.0
    assert _merge([(0.0, 2.0), (1.0, 1.0), (2.0, 2.0)]) == [(0.0, 2.0)]


# -- _intersection_length ----------------------------------------------------


@given(spans, spans)
@settings(max_examples=200)
def test_intersection_matches_brute_force(span_list, cover):
    expected = len(covered_cells(span_list) & covered_cells(cover))
    assert _intersection_length(span_list, cover) == float(expected)


@given(spans, spans)
@settings(max_examples=100)
def test_intersection_is_bounded_and_symmetric(span_list, cover):
    length = _intersection_length(span_list, cover)
    assert 0.0 <= length <= min(
        _union_length(span_list), _union_length(cover)
    )
    assert length == _intersection_length(cover, span_list)


@given(spans)
@settings(max_examples=100)
def test_self_intersection_is_union_length(span_list):
    assert _intersection_length(span_list, span_list) == _union_length(
        span_list
    )


def test_intersection_empty_cover():
    assert _intersection_length([(0.0, 5.0)], []) == 0.0
    assert _intersection_length([], [(0.0, 5.0)]) == 0.0


def test_intersection_cover_straddles_gap():
    # One cover interval bridging the gap between two spans: only the
    # in-span parts count.
    spans_ = [(0.0, 2.0), (4.0, 6.0)]
    cover = [(1.0, 5.0)]
    assert _intersection_length(spans_, cover) == 2.0
    # Cover that starts exactly at a span's end contributes nothing to it.
    assert _intersection_length([(0.0, 2.0)], [(2.0, 4.0)]) == 0.0


# -- TraceRecorder -----------------------------------------------------------


def test_recorder_drops_empty_and_inverted_spans():
    recorder = TraceRecorder()
    recorder.record("dma", 1.0, 1.0, "ch0")  # zero-length
    recorder.record("dma", 3.0, 2.0, "ch0")  # inverted
    recorder.record("dma", 2.0, 3.0, "ch0")  # valid
    assert recorder.spans("dma") == [(2.0, 3.0)]
    assert recorder.busy_time("dma") == 1.0


@given(st.lists(span, max_size=20))
@settings(max_examples=100)
def test_recorder_busy_time_matches_union(span_list):
    recorder = TraceRecorder()
    for start, end in span_list:
        recorder.record("kernel", start, end, "CPE(0,0)")
    kept = [(s, e) for s, e in span_list if e > s]
    assert recorder.busy_time("kernel") == _union_length(kept)
    assert recorder.busy_time("dma") == 0.0
