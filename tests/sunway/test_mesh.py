"""Cluster topology, barrier, MPE and reply counters."""

import numpy as np
import pytest

from repro.errors import HardwareError, MeshError, SynchronizationError
from repro.sunway.arch import TOY_ARCH
from repro.sunway.cpe import CPE, ReplyCounter, ReplyRecord
from repro.sunway.mesh import Barrier, Cluster


def test_cluster_topology():
    cluster = Cluster(TOY_ARCH)
    assert len(cluster.all_cpes()) == 4
    assert cluster.cpe(1, 1).rid == 1
    with pytest.raises(MeshError):
        cluster.cpe(2, 0)


def test_barrier_releases_after_all_arrive():
    cluster = Cluster(TOY_ARCH)
    barrier = cluster.barrier
    cpes = cluster.all_cpes()
    cpes[0].clock = 5e-6
    tokens = [barrier.arrive(cpe) for cpe in cpes]
    assert all(barrier.passed(t) for t in tokens)
    # Everyone synced to the slowest clock plus the barrier cost.
    release = 5e-6 + TOY_ARCH.sync_us * 1e-6
    for cpe in cpes:
        assert cpe.clock == pytest.approx(release)
        assert cpe.rma_armed


def test_barrier_not_passed_early():
    cluster = Cluster(TOY_ARCH)
    token = cluster.barrier.arrive(cluster.cpe(0, 0))
    assert not cluster.barrier.passed(token)


def test_barrier_double_arrival_rejected():
    cluster = Cluster(TOY_ARCH)
    cpe = cluster.cpe(0, 0)
    cluster.barrier.arrive(cpe)
    with pytest.raises(MeshError):
        cluster.barrier.arrive(cpe)


def test_spawn_charges_every_cpe():
    cluster = Cluster(TOY_ARCH)
    cluster.begin_spawn()
    for cpe in cluster.all_cpes():
        assert cpe.clock == pytest.approx(TOY_ARCH.spawn_us * 1e-6)
    assert cluster.spawn_count == 1


def test_reset_mesh():
    cluster = Cluster(TOY_ARCH)
    cpe = cluster.cpe(0, 0)
    cpe.clock = 1.0
    cpe.spm.alloc("x", (2, 2))
    cpe.reply("r").add(ReplyRecord(1.0))
    cluster.reset_mesh()
    assert cpe.clock == 0.0
    assert "x" not in cpe.spm
    assert not cpe.replies


def test_elapsed_is_slowest_cpe():
    cluster = Cluster(TOY_ARCH)
    cluster.cpe(1, 0).clock = 3.0
    assert cluster.elapsed() == 3.0


def test_total_stats_aggregates():
    cluster = Cluster(TOY_ARCH)
    cluster.cpe(0, 0).stats["kernel_calls"] = 3
    cluster.cpe(1, 1).stats["kernel_calls"] = 4
    assert cluster.total_stats()["kernel_calls"] == 7


def test_mpe_elementwise():
    cluster = Cluster(TOY_ARCH)
    data = np.array([-1.0, 2.0])
    seconds = cluster.mpe.elementwise(data, lambda x: np.maximum(x, 0))
    assert (data == [0.0, 2.0]).all()
    assert seconds == pytest.approx(2 / TOY_ARCH.mpe_elementwise_rate)


# -- reply counters ------------------------------------------------------------


def test_reply_counter_lifecycle():
    counter = ReplyCounter("r")
    counter.add(ReplyRecord(1.0, ("buf", 0)))
    counter.add(ReplyRecord(2.0, ("buf", 1)))
    assert counter.satisfied(2)
    assert counter.completion_time(2) == 2.0
    assert counter.completion_time(1) == 1.0
    counter.reset()
    assert counter.value == 0
    assert not counter.satisfied(1)


def test_reply_counter_wait_beyond_completions():
    counter = ReplyCounter("r")
    counter.add(ReplyRecord(1.0))
    with pytest.raises(SynchronizationError):
        counter.completion_time(2)


def test_cpe_clock_cannot_go_backwards():
    cpe = CPE(0, 0, 1024)
    cpe.advance(1.0)
    with pytest.raises(HardwareError):
        cpe.advance(-0.5)
    cpe.sync_to(0.5)  # no-op
    assert cpe.clock == 1.0
