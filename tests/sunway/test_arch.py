"""Architecture specifications and derived quantities."""

import pytest

from repro.errors import ConfigurationError
from repro.sunway.arch import SW26010, SW26010PRO, TOY_ARCH, ArchSpec, MicroKernelShape


def test_sw26010pro_defaults_match_paper():
    arch = SW26010PRO
    assert arch.mesh_rows == arch.mesh_cols == 8
    assert arch.spm_bytes == 256 * 1024
    assert str(arch.micro_kernel) == "64x64x32"
    assert arch.rma_supported


def test_peak_reconstruction():
    # 64 CPEs x 2.25 GHz x 16 flops/cycle = 2304 Gflops; the paper's
    # reported percentages are consistent with this value.
    assert SW26010PRO.peak_gflops == pytest.approx(2304.0)
    assert 0.9014 * SW26010PRO.peak_gflops == pytest.approx(2076.8, rel=1e-3)


def test_micro_kernel_shape_quantities():
    shape = MicroKernelShape(64, 64, 32)
    assert shape.flops == 2 * 64 * 64 * 32
    assert shape.a_bytes == 64 * 32 * 8
    assert shape.b_bytes == 32 * 64 * 8
    assert shape.c_bytes == 64 * 64 * 8


def test_kernel_time_scales_with_shape():
    t1 = SW26010PRO.kernel_time_s(64, 64, 32)
    t2 = SW26010PRO.kernel_time_s(64, 64, 64)
    assert t2 == pytest.approx(2 * t1)
    assert SW26010PRO.naive_time_s(64, 64, 32) > 10 * t1


def test_dma_and_rma_time_monotone():
    assert SW26010PRO.dma_time_s(32768) > SW26010PRO.dma_time_s(16384)
    assert SW26010PRO.rma_time_s(32768) > SW26010PRO.rma_time_s(16384)
    # Startup means even empty-ish messages cost something.
    assert SW26010PRO.dma_time_s(8) > 0


def test_sw26010_preset_has_no_rma():
    assert not SW26010.rma_supported
    assert SW26010.spm_bytes == 64 * 1024


def test_toy_arch_small():
    assert TOY_ARCH.num_cpes == 4
    assert str(TOY_ARCH.micro_kernel) == "8x8x4"


def test_validation_rejects_nonsquare_mesh():
    with pytest.raises(ConfigurationError):
        ArchSpec(mesh_rows=8, mesh_cols=4)


def test_validation_rejects_bad_efficiency():
    with pytest.raises(ConfigurationError):
        ArchSpec(kernel_efficiency=1.5)
    with pytest.raises(ConfigurationError):
        ArchSpec(kernel_efficiency=0.0)


def test_scaled_override():
    faster = SW26010PRO.scaled(dma_bandwidth_gbs=100.0)
    assert faster.dma_bandwidth_gbs == 100.0
    assert faster.mesh_rows == 8
    assert SW26010PRO.dma_bandwidth_gbs != 100.0


def test_describe():
    info = SW26010PRO.describe()
    assert info["mesh"] == "8x8"
    assert info["spm_kb"] == 256
