"""Main memory and scratch-pad memory."""

import numpy as np
import pytest

from repro.errors import HardwareError, SPMOverflowError, SynchronizationError
from repro.sunway.memory import MainMemory
from repro.sunway.spm import ScratchPadMemory


# -- main memory ------------------------------------------------------------


def test_alloc_and_access():
    mem = MainMemory()
    a = mem.alloc("A", (4, 8))
    assert a.shape == (4, 8)
    assert (mem["A"] == 0).all()
    assert "A" in mem


def test_alignment_is_128_bytes():
    mem = MainMemory()
    for index in range(8):
        mem.alloc(f"X{index}", (3, 5))
        assert mem.is_aligned(f"X{index}")


def test_double_alloc_rejected():
    mem = MainMemory()
    mem.alloc("A", (4, 4))
    with pytest.raises(HardwareError):
        mem.alloc("A", (4, 4))


def test_capacity_enforced():
    mem = MainMemory(capacity_bytes=1024)
    with pytest.raises(HardwareError):
        mem.alloc("A", (1024, 1024))


def test_free_returns_capacity():
    mem = MainMemory(capacity_bytes=8 * 64)
    mem.alloc("A", (8, 8))
    mem.free("A")
    mem.alloc("B", (8, 8))  # fits again
    with pytest.raises(HardwareError):
        mem.free("A")


def test_bind_copies():
    mem = MainMemory()
    src = np.arange(12.0).reshape(3, 4)
    view = mem.bind("A", src)
    assert (view == src).all()
    src[0, 0] = 99
    assert view[0, 0] == 0.0


def test_missing_array_raises():
    with pytest.raises(HardwareError):
        MainMemory()["nope"]


# -- SPM ------------------------------------------------------------------------


def test_spm_alloc_and_capacity():
    spm = ScratchPadMemory(1024, "CPE(0,0)")
    spm.alloc("buf", (8, 8))  # 512 B
    assert spm.used_bytes == 512
    with pytest.raises(SPMOverflowError):
        spm.alloc("big", (16, 8))  # another 1024 B won't fit


def test_spm_overflow_message_names_owner():
    spm = ScratchPadMemory(64, "CPE(3,4)")
    with pytest.raises(SPMOverflowError, match="CPE\\(3,4\\)"):
        spm.alloc("x", (8, 8))


def test_spm_slots():
    spm = ScratchPadMemory(4096)
    spm.alloc("db", (2, 4, 4))
    s0 = spm.slot("db", 0)
    s1 = spm.slot("db", 1)
    s0[...] = 1.0
    assert (s1 == 0).all()
    with pytest.raises(HardwareError):
        spm.slot("db", 2)


def test_spm_single_slot_index_checked():
    spm = ScratchPadMemory(4096)
    spm.alloc("c", (4, 4))
    assert spm.slot("c", 0).shape == (4, 4)
    with pytest.raises(HardwareError):
        spm.slot("c", 1)


def test_inflight_poisoning():
    spm = ScratchPadMemory(4096, "CPE(0,0)")
    spm.alloc("db", (2, 4, 4))
    spm.mark_inflight("db", 0, "dma_iget/reply")
    with pytest.raises(SynchronizationError, match="in flight"):
        spm.check_readable("db", 0)
    spm.check_readable("db", 1)  # other slot unaffected
    spm.clear_inflight("db", 0)
    spm.check_readable("db", 0)


def test_free_all():
    spm = ScratchPadMemory(4096)
    spm.alloc("a", (4, 4))
    spm.mark_inflight("a", 0, "x")
    spm.free_all()
    assert spm.used_bytes == 0
    assert "a" not in spm
