"""The architecture registry (PR 8).

``--arch`` on the CLI and ``arch`` on the serve wire resolve through
this table, so it is the single place a new target plugs in.  These
tests lock down the lookup semantics (case-insensitive, loud on
unknowns), the idempotent-but-not-aliasing registration rule, and the
contract shapes of the two hypothetical variants.
"""

import pytest

from repro.core.options import CompilerOptions, TileConfig
from repro.core.tile_model import plan_for_kernel
from repro.errors import ConfigurationError, SPMOverflowError
from repro.sunway.arch import (
    SW26010,
    SW26010PRO,
    SW26010PRO_HBM,
    SW26010PRO_LITE,
    TOY_ARCH,
    MicroKernelShape,
    all_archs,
    arch_names,
    get_arch,
    register_arch,
)


def test_builtin_archs_registered():
    assert set(arch_names()) >= {
        "sw26010pro", "sw26010", "toy", "sw26010pro-hbm", "sw26010pro-lite",
    }


def test_lookup_is_case_insensitive():
    assert get_arch("SW26010Pro") is SW26010PRO
    assert get_arch("sw26010pro") is SW26010PRO
    assert get_arch("SW26010PRO-LITE") is SW26010PRO_LITE


def test_unknown_arch_lists_known_names():
    with pytest.raises(ConfigurationError, match="sw26010pro"):
        get_arch("sw9999")


def test_reregistering_same_spec_is_idempotent():
    assert register_arch(SW26010PRO) is SW26010PRO
    assert get_arch("sw26010pro") is SW26010PRO


def test_reregistering_different_spec_under_same_name_rejected():
    impostor = SW26010PRO.scaled(spm_bytes=512 * 1024)
    with pytest.raises(ConfigurationError, match="already registered"):
        register_arch(impostor)
    # The registry still serves the original.
    assert get_arch("sw26010pro") is SW26010PRO


def test_all_archs_is_a_snapshot():
    snapshot = all_archs()
    snapshot["sw26010pro"] = TOY_ARCH
    assert get_arch("sw26010pro") is SW26010PRO


def test_hbm_variant_shares_the_compute_side():
    assert SW26010PRO_HBM.micro_kernel == SW26010PRO.micro_kernel
    assert SW26010PRO_HBM.peak_gflops == SW26010PRO.peak_gflops
    assert SW26010PRO_HBM.dma_bandwidth_gbs > SW26010PRO.dma_bandwidth_gbs


def test_lite_variant_contract_fits_its_spm():
    """The Lite part's shallower 64×64×16 contract must plan inside its
    128 KB SPM with the full pipeline — that is why its contract differs
    from SW26010Pro's in the first place."""
    assert SW26010PRO_LITE.micro_kernel == MicroKernelShape(64, 64, 16)
    plan = plan_for_kernel(SW26010PRO_LITE, CompilerOptions.full())
    assert plan.spm_bytes() <= SW26010PRO_LITE.spm_bytes


def test_pro_contract_does_not_fit_lite_spm():
    with pytest.raises(SPMOverflowError):
        plan_for_kernel(
            SW26010PRO_LITE,
            CompilerOptions.full().with_(tile_config=TileConfig(64, 64, 32)),
        )


def test_describe_carries_register_file_fields():
    for arch in (SW26010PRO, SW26010, TOY_ARCH):
        info = arch.describe()
        assert info["simd_doubles"] == arch.simd_doubles
        assert info["vector_registers"] == arch.vector_registers
        assert info["micro_kernel"] == str(arch.micro_kernel)
