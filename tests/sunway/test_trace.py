"""Tracing + overlap analysis: Fig. 10, measured.

The central mechanism of §6 — DMA/RMA hidden behind the micro kernels —
is asserted quantitatively here: with the software pipeline on, nearly
all communication channel time is covered by concurrently executing
kernels; with it off, most of it is exposed.
"""

import pytest

from repro.core import CompilerOptions, GemmCompiler, GemmSpec
from repro.runtime.executor import Executor
from repro.sunway.arch import SW26010PRO
from repro.sunway.mesh import Cluster
from repro.sunway.trace import (
    OverlapReport,
    TraceRecorder,
    _intersection_length,
    _merge,
    _union_length,
    analyze_overlap,
)


# -- interval utilities --------------------------------------------------------


def test_merge_intervals():
    assert _merge([(0, 1), (2, 3)]) == [(0, 1), (2, 3)]
    assert _merge([(0, 2), (1, 3)]) == [(0, 3)]
    assert _merge([(1, 3), (0, 2), (2.5, 4)]) == [(0, 4)]
    assert _merge([]) == []


def test_union_length():
    assert _union_length([(0, 1), (0.5, 2)]) == 2
    assert _union_length([(0, 1), (3, 4)]) == 2


def test_intersection_length():
    spans = [(0, 4)]
    cover = [(1, 2), (3, 5)]
    assert _intersection_length(spans, cover) == pytest.approx(2.0)
    assert _intersection_length(spans, []) == 0.0
    assert _intersection_length([(0, 1)], [(2, 3)]) == 0.0


def test_recorder_collects_and_filters():
    rec = TraceRecorder()
    rec.record("kernel", 0.0, 1.0, "CPE(0,0)")
    rec.record("dma", 0.5, 2.0, "channel")
    rec.record("dma", 2.0, 2.0, "channel")  # empty span dropped
    assert len(rec.events) == 2
    assert rec.busy_time("dma") == pytest.approx(1.5)
    rec.clear()
    assert not rec.events


# -- the paper's mechanism --------------------------------------------------------


def run_traced(options, K=4096):
    program = GemmCompiler(SW26010PRO, options).compile(GemmSpec())
    cluster = Cluster(SW26010PRO)
    recorder = cluster.enable_tracing()
    cluster.memory.alloc("A", (512, K))
    cluster.memory.alloc("B", (K, 512))
    cluster.memory.alloc("C", (512, 512))
    Executor(program, cluster, move_data=False).run(
        {"M": 512, "N": 512, "K": K}
    )
    return analyze_overlap(recorder)


@pytest.fixture(scope="module")
def hidden_report():
    return run_traced(CompilerOptions.full())


@pytest.fixture(scope="module")
def exposed_report():
    return run_traced(CompilerOptions.with_rma())


def test_latency_hiding_actually_hides_dma(hidden_report):
    """With the §6 schedule, ≥85% of the DMA channel's busy time runs
    under cover of executing kernels (Fig. 10b)."""
    assert hidden_report.dma_hidden_fraction > 0.85


def test_latency_hiding_actually_hides_rma(hidden_report):
    """And the broadcasts of slice l+1 hide behind kernel l (Fig. 10c)."""
    assert hidden_report.rma_hidden_fraction > 0.85


def test_without_pipelining_dma_is_exposed(hidden_report, exposed_report):
    """Disabling the pipeline leaves most of the DMA in the open — the
    contrast that produces the 1.76× step of Fig. 13."""
    assert exposed_report.dma_hidden_fraction < 0.5
    assert (
        hidden_report.dma_hidden_fraction
        > exposed_report.dma_hidden_fraction + 0.3
    )


def test_busy_times_consistent(hidden_report):
    assert hidden_report.kernel_busy > 0
    assert hidden_report.dma_busy > 0
    assert hidden_report.rma_busy > 0
    assert isinstance(str(hidden_report), str)


def test_tracing_off_by_default():
    cluster = Cluster(SW26010PRO)
    assert cluster.trace is None
