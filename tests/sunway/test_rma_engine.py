"""RMA engine: the three communication manners of Fig. 8."""

import numpy as np
import pytest

from repro.errors import InvalidRMAError, SynchronizationError
from repro.sunway.arch import SW26010, TOY_ARCH
from repro.sunway.mesh import Cluster


def armed_cluster():
    cluster = Cluster(TOY_ARCH)
    for cpe in cluster.all_cpes():
        cpe.spm.alloc("src", (4, 4))
        cpe.spm.alloc("dst", (4, 4))
        cpe.rma_armed = True
    return cluster


def test_row_broadcast_reaches_whole_row():
    cluster = armed_cluster()
    sender = cluster.cpe(0, 1)
    sender.spm.slot("src", 0)[...] = 7.0
    cluster.rma.row_ibcast(sender, ("src", 0), ("dst", 0), 16, "rs", "rr")
    for cid in range(TOY_ARCH.mesh_cols):
        receiver = cluster.cpe(0, cid)
        receiver.spm.clear_inflight("dst", 0)
        assert (receiver.spm.slot("dst", 0) == 7.0).all()
        assert receiver.reply("rr").value == 1
    # The other row is untouched.
    assert (cluster.cpe(1, 0).spm.slot("dst", 0) == 0).all()
    assert sender.reply("rs").value == 1


def test_col_broadcast_reaches_whole_column():
    cluster = armed_cluster()
    sender = cluster.cpe(1, 0)
    sender.spm.slot("src", 0)[...] = 3.0
    cluster.rma.col_ibcast(sender, ("src", 0), ("dst", 0), 16, "cs", "cr")
    for rid in range(TOY_ARCH.mesh_rows):
        receiver = cluster.cpe(rid, 0)
        receiver.spm.clear_inflight("dst", 0)
        assert (receiver.spm.slot("dst", 0) == 3.0).all()


def test_receivers_poisoned_until_wait():
    cluster = armed_cluster()
    sender = cluster.cpe(0, 0)
    cluster.rma.row_ibcast(sender, ("src", 0), ("dst", 0), 16, "rs", "rr")
    with pytest.raises(SynchronizationError):
        cluster.cpe(0, 1).spm.check_readable("dst", 0)


def test_rma_requires_synch():
    cluster = Cluster(TOY_ARCH)
    for cpe in cluster.all_cpes():
        cpe.spm.alloc("src", (4, 4))
        cpe.spm.alloc("dst", (4, 4))
    sender = cluster.cpe(0, 0)
    with pytest.raises(SynchronizationError, match="synch"):
        cluster.rma.row_ibcast(sender, ("src", 0), ("dst", 0), 16, "rs", "rr")


def test_rma_rejected_on_sw26010():
    cluster = Cluster(SW26010)
    sender = cluster.cpe(0, 0)
    sender.spm.alloc("src", (4, 4))
    sender.spm.alloc("dst", (4, 4))
    sender.rma_armed = True
    with pytest.raises(InvalidRMAError, match="SW26010"):
        cluster.rma.row_ibcast(sender, ("src", 0), ("dst", 0), 16, "rs", "rr")


def test_sender_source_must_be_ready():
    cluster = armed_cluster()
    sender = cluster.cpe(0, 0)
    sender.spm.mark_inflight("src", 0, "dma pending")
    with pytest.raises(SynchronizationError):
        cluster.rma.row_ibcast(sender, ("src", 0), ("dst", 0), 16, "rs", "rr")


def test_size_validation():
    cluster = armed_cluster()
    sender = cluster.cpe(0, 0)
    with pytest.raises(InvalidRMAError):
        cluster.rma.row_ibcast(sender, ("src", 0), ("dst", 0), 999, "rs", "rr")
    with pytest.raises(InvalidRMAError):
        cluster.rma.row_ibcast(sender, ("src", 0), ("dst", 0), 0, "rs", "rr")


def test_p2p_same_row_and_transit():
    cluster = armed_cluster()
    sender = cluster.cpe(0, 0)
    sender.spm.slot("src", 0)[...] = 5.0
    same_row = cluster.cpe(0, 1)
    t_same = cluster.rma.p2p(sender, same_row, ("src", 0), ("dst", 0), 16, "s", "r")
    same_row.spm.clear_inflight("dst", 0)
    assert (same_row.spm.slot("dst", 0) == 5.0).all()

    sender.rma_armed = True
    other = cluster.cpe(1, 1)
    t_cross = cluster.rma.p2p(sender, other, ("src", 0), ("dst", 0), 16, "s", "r")
    other.spm.clear_inflight("dst", 0)
    assert (other.spm.slot("dst", 0) == 5.0).all()
    # The transit hop makes the cross-mesh path strictly slower.
    assert t_cross > t_same


def test_all_broadcast_reaches_everyone():
    cluster = armed_cluster()
    sender = cluster.cpe(0, 0)
    sender.spm.slot("src", 0)[...] = 9.0
    cluster.rma.all_bcast(sender, ("src", 0), ("dst", 0), 16, "s", "r")
    for cpe in cluster.all_cpes():
        cpe.spm.clear_inflight("dst", 0)
        assert (cpe.spm.slot("dst", 0) == 9.0).all()


def test_row_and_col_channels_are_independent():
    """A row broadcast and a column broadcast issued together do not
    contend (§6.1: the A and B broadcasts are launched together)."""
    cluster = armed_cluster()
    row_sender = cluster.cpe(0, 0)
    col_sender = cluster.cpe(0, 1)
    t_row = cluster.rma.row_ibcast(row_sender, ("src", 0), ("dst", 0), 16, "a", "b")
    t_col = cluster.rma.col_ibcast(col_sender, ("src", 0), ("dst", 0), 16, "c", "d")
    # Both finish after one broadcast latency, not two.
    assert t_row == pytest.approx(TOY_ARCH.rma_time_s(16 * 8))
    assert t_col == pytest.approx(TOY_ARCH.rma_time_s(16 * 8))
