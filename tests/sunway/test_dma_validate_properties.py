"""Property-based tests for ``DMAEngine._validate`` (§4 argument rules).

Hypothesis sweeps the size/len/strip/offset lattice: every accepted
combination must describe an in-bounds strided footprint, every rejected
one must raise :class:`InvalidDMAError` with a message carrying the
actionable coordinates (the offending values and the array extent), and
acceptance must agree with a brute-force footprint check.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import InvalidDMAError
from repro.sunway.arch import TOY_ARCH
from repro.sunway.cpe import CPE
from repro.sunway.dma_engine import DMAEngine


ENGINE = DMAEngine(TOY_ARCH)

SRC_ELEMS = 256
SPM_ELEMS = 64


def brute_force_ok(src_elems, offset, size, length, strip, spm_elems):
    """Reference semantics: enumerate the strided footprint."""
    if size <= 0 or length <= 0 or strip < 0:
        return False
    if size % length != 0 or size > spm_elems or offset < 0:
        return False
    rows = size // length
    last = offset + (rows - 1) * (length + strip) + length
    return last <= src_elems


@given(
    offset=st.integers(min_value=-8, max_value=SRC_ELEMS + 8),
    size=st.integers(min_value=-4, max_value=SPM_ELEMS + 16),
    length=st.integers(min_value=-4, max_value=SPM_ELEMS + 16),
    strip=st.integers(min_value=-4, max_value=64),
)
@settings(max_examples=300, deadline=None)
def test_validate_agrees_with_brute_force(offset, size, length, strip):
    expected_ok = brute_force_ok(
        SRC_ELEMS, offset, size, length, strip, SPM_ELEMS
    )
    if expected_ok:
        rows = ENGINE._validate(
            SRC_ELEMS, offset, size, length, strip, SPM_ELEMS
        )
        assert rows == size // length
    else:
        with pytest.raises(InvalidDMAError):
            ENGINE._validate(SRC_ELEMS, offset, size, length, strip, SPM_ELEMS)


@given(
    size=st.integers(min_value=1, max_value=SPM_ELEMS),
    length=st.integers(min_value=1, max_value=SPM_ELEMS),
)
@settings(max_examples=200, deadline=None)
def test_nonmultiple_size_message_names_both_values(size, length):
    if size % length == 0:
        return
    with pytest.raises(InvalidDMAError) as exc_info:
        ENGINE._validate(SRC_ELEMS, 0, size, length, 0, SPM_ELEMS)
    message = str(exc_info.value)
    assert str(size) in message
    assert str(length) in message


@given(
    offset=st.integers(min_value=0, max_value=SRC_ELEMS),
    strip=st.integers(min_value=0, max_value=64),
)
@settings(max_examples=200, deadline=None)
def test_out_of_bounds_message_carries_coordinates(offset, strip):
    """Force an overflow with a fixed 32-element transfer; the error must
    name the offset, the run geometry and the array extent so the CPE
    codegen bug it exposes is locatable without a debugger."""
    size, length = 32, 8
    rows = size // length
    if offset + (rows - 1) * (length + strip) + length <= SRC_ELEMS:
        return  # in bounds: nothing to assert
    with pytest.raises(InvalidDMAError) as exc_info:
        ENGINE._validate(SRC_ELEMS, offset, size, length, strip, SPM_ELEMS)
    message = str(exc_info.value)
    assert str(offset) in message
    assert str(length) in message
    assert str(strip) in message
    assert str(SRC_ELEMS) in message


@given(size=st.integers(min_value=SPM_ELEMS + 1, max_value=4 * SPM_ELEMS))
@settings(max_examples=100, deadline=None)
def test_spm_overflow_message_names_tile_size(size):
    with pytest.raises(InvalidDMAError) as exc_info:
        ENGINE._validate(4 * SPM_ELEMS + size, 0, size, size, 0, SPM_ELEMS)
    message = str(exc_info.value)
    assert str(size) in message
    assert str(SPM_ELEMS) in message


@given(
    offset=st.integers(min_value=0, max_value=64),
    rows=st.integers(min_value=1, max_value=8),
    length=st.integers(min_value=1, max_value=8),
    strip=st.integers(min_value=0, max_value=16),
)
@settings(max_examples=200, deadline=None)
def test_accepted_transfers_move_exactly_the_footprint(
    offset, rows, length, strip
):
    """End-to-end: anything _validate accepts must copy precisely the
    strided footprint — no element more, no element fewer."""
    size = rows * length
    if size > SPM_ELEMS:
        return
    last = offset + (rows - 1) * (length + strip) + length
    if last > SRC_ELEMS:
        return
    engine = DMAEngine(TOY_ARCH)
    cpe = CPE(0, 0, 64 * 1024)
    cpe.spm.alloc("tile", (8, SPM_ELEMS // 8))  # 2-D: one 64-element slot
    dst = cpe.spm.slot("tile", 0)
    src = np.arange(float(SRC_ELEMS))
    engine.iget(
        cpe, dst, ("tile", 0), src, src.size, offset,
        size=size, length=length, strip=strip, reply_name="r",
    )
    starts = offset + np.arange(rows) * (length + strip)
    expected = (starts[:, None] + np.arange(length)[None, :]).ravel()
    assert (dst.reshape(-1)[:size] == src[expected]).all()
