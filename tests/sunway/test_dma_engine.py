"""DMA engine: size/len/strip semantics of §4 (Fig. 7)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import InvalidDMAError, SynchronizationError
from repro.sunway.arch import TOY_ARCH
from repro.sunway.cpe import CPE
from repro.sunway.dma_engine import DMAEngine


def make_cpe(spm_bytes=64 * 1024):
    cpe = CPE(0, 0, spm_bytes)
    cpe.spm.alloc("tile", (4, 8))
    return cpe


def make_engine():
    return DMAEngine(TOY_ARCH)


def test_iget_strided_tile():
    """Fetch a 4x8 tile out of a 16x32 matrix: len=8, strip=32-8."""
    engine = make_engine()
    cpe = make_cpe()
    matrix = np.arange(16 * 32, dtype=float).reshape(16, 32)
    dst = cpe.spm.slot("tile", 0)
    offset = 2 * 32 + 4  # start at row 2, column 4
    engine.iget(
        cpe, dst, ("tile", 0), matrix, matrix.size, offset,
        size=32, length=8, strip=24, reply_name="r",
    )
    expected = matrix[2:6, 4:12]
    assert (dst == expected).all()


def test_iput_roundtrip():
    engine = make_engine()
    cpe = make_cpe()
    matrix = np.zeros((16, 32))
    tile = cpe.spm.slot("tile", 0)
    tile[...] = np.arange(32.0).reshape(4, 8)
    cpe.spm.clear_inflight("tile", 0)
    engine.iput(
        cpe, matrix, matrix.size, 5 * 32 + 8, tile, ("tile", 0),
        size=32, length=8, strip=24, reply_name="w",
    )
    assert (matrix[5:9, 8:16] == tile).all()
    assert matrix.sum() == tile.sum()


def test_reply_counter_increments():
    engine = make_engine()
    cpe = make_cpe()
    matrix = np.zeros((16, 32))
    dst = cpe.spm.slot("tile", 0)
    for expected in (1, 2):
        engine.iget(cpe, dst, ("tile", 0), matrix, matrix.size, 0,
                    32, 8, 24, "r")
        assert cpe.reply("r").value == expected


def test_inflight_until_wait():
    engine = make_engine()
    cpe = make_cpe()
    matrix = np.zeros((16, 32))
    dst = cpe.spm.slot("tile", 0)
    engine.iget(cpe, dst, ("tile", 0), matrix, matrix.size, 0, 32, 8, 24, "r")
    with pytest.raises(SynchronizationError):
        cpe.spm.check_readable("tile", 0)


def test_iput_requires_ready_source():
    engine = make_engine()
    cpe = make_cpe()
    matrix = np.zeros((16, 32))
    tile = cpe.spm.slot("tile", 0)
    cpe.spm.mark_inflight("tile", 0, "pending get")
    with pytest.raises(SynchronizationError):
        engine.iput(cpe, matrix, matrix.size, 0, tile, ("tile", 0),
                    32, 8, 24, "w")


@pytest.mark.parametrize(
    "size,length,strip",
    [
        (0, 8, 24),      # empty transfer
        (32, 0, 24),     # zero run
        (33, 8, 24),     # size not a multiple of len
        (32, 8, -1),     # negative strip
        (4096, 8, 24),   # larger than the SPM tile
    ],
)
def test_argument_validation(size, length, strip):
    engine = make_engine()
    cpe = make_cpe()
    matrix = np.zeros((16, 32))
    dst = cpe.spm.slot("tile", 0)
    with pytest.raises(InvalidDMAError):
        engine.iget(cpe, dst, ("tile", 0), matrix, matrix.size, 0,
                    size, length, strip, "r")


def test_out_of_bounds_rejected():
    engine = make_engine()
    cpe = make_cpe()
    matrix = np.zeros((4, 8))
    dst = cpe.spm.slot("tile", 0)
    with pytest.raises(InvalidDMAError):
        engine.iget(cpe, dst, ("tile", 0), matrix, matrix.size,
                    offset=8, size=32, length=8, strip=24, reply_name="r")


def test_channel_serialises_messages():
    """Two messages issued at the same instant occupy the channel back to
    back: the second completes strictly later."""
    engine = make_engine()
    cpe_a, cpe_b = make_cpe(), CPE(0, 1, 64 * 1024)
    cpe_b.spm.alloc("tile", (4, 8))
    matrix = np.zeros((16, 32))
    t1 = engine.iget(cpe_a, cpe_a.spm.slot("tile", 0), ("tile", 0),
                     matrix, matrix.size, 0, 32, 8, 24, "r")
    t2 = engine.iget(cpe_b, cpe_b.spm.slot("tile", 0), ("tile", 0),
                     matrix, matrix.size, 0, 32, 8, 24, "r")
    assert t2 > t1
    # len = 8 doubles = 64 B: shorter than the DDR burst, so the message
    # pays the stride penalty.
    assert t2 - t1 == pytest.approx(TOY_ARCH.dma_time_s(32 * 8, run_bytes=8 * 8))
    assert TOY_ARCH.dma_time_s(32 * 8, run_bytes=64) > TOY_ARCH.dma_time_s(32 * 8, run_bytes=256)


def test_timing_only_mode_skips_data():
    engine = make_engine()
    cpe = make_cpe()
    matrix = np.arange(16.0 * 32).reshape(16, 32)
    dst = cpe.spm.slot("tile", 0)
    engine.iget(cpe, None, ("tile", 0), None, matrix.size, 0, 32, 8, 24,
                "r", move_data=False)
    assert (dst == 0).all()
    assert cpe.reply("r").value == 1


@given(
    rows=st.integers(1, 6),
    cols=st.integers(1, 8),
    row0=st.integers(0, 6),
    col0=st.integers(0, 8),
)
@settings(max_examples=80, deadline=None)
def test_prop_strided_gather_matches_slicing(rows, cols, row0, col0):
    """The size/len/strip encoding reproduces arbitrary subtile fetches."""
    engine = make_engine()
    cpe = CPE(0, 0, 64 * 1024)
    cpe.spm.alloc("t", (rows, cols))
    matrix = np.arange(12.0 * 16).reshape(12, 16)
    if row0 + rows > 12 or col0 + cols > 16:
        return
    dst = cpe.spm.slot("t", 0)
    engine.iget(
        cpe, dst, ("t", 0), matrix, matrix.size,
        offset=row0 * 16 + col0,
        size=rows * cols, length=cols, strip=16 - cols, reply_name="r",
    )
    assert (dst == matrix[row0 : row0 + rows, col0 : col0 + cols]).all()
