"""The xMath baseline: numerics and the empirical performance model."""

import numpy as np
import pytest

from repro.codegen.elementwise import get_elementwise
from repro.sunway.arch import SW26010PRO
from repro.xmath.library import XMathLibrary
from repro.xmath.perfmodel import (
    XMATH_DISPATCH_US,
    xmath_efficiency,
    xmath_gflops,
    xmath_seconds,
)


# -- functional -------------------------------------------------------------


def test_dgemm_numerics():
    rng = np.random.default_rng(0)
    lib = XMathLibrary()
    A = rng.standard_normal((8, 6))
    B = rng.standard_normal((6, 10))
    C = rng.standard_normal((8, 10))
    C0 = C.copy()
    lib.dgemm(A, B, C, alpha=1.5, beta=-0.5)
    assert np.allclose(C, 1.5 * A @ B - 0.5 * C0)
    assert lib.calls[0].kind == "dgemm"
    assert lib.elapsed > 0


def test_dgemm_shape_check():
    lib = XMathLibrary()
    with pytest.raises(ValueError):
        lib.dgemm(np.zeros((4, 4)), np.zeros((5, 4)), np.zeros((4, 4)))


def test_batched_loops_per_element():
    rng = np.random.default_rng(1)
    lib = XMathLibrary()
    A = rng.standard_normal((3, 4, 4))
    B = rng.standard_normal((3, 4, 4))
    C = np.zeros((3, 4, 4))
    lib.batched_dgemm(A, B, C, beta=0.0)
    assert np.allclose(C, np.einsum("bik,bkj->bij", A, B))
    # One library call (one mesh start-up) per batch element — §8.3.
    assert len([c for c in lib.calls if c.kind == "dgemm"]) == 3


def test_fusion_baselines_numerics():
    rng = np.random.default_rng(2)
    A = rng.standard_normal((8, 8))
    B = rng.standard_normal((8, 8))
    quant = get_elementwise("quant").numpy_fn
    relu = get_elementwise("relu").numpy_fn

    lib = XMathLibrary()
    C = np.zeros((8, 8))
    lib.gemm_with_prologue(A, B, C, "quant", beta=0.0)
    assert np.allclose(C, quant(A) @ B)

    lib2 = XMathLibrary()
    C2 = np.zeros((8, 8))
    lib2.gemm_with_epilogue(A, B, C2, "relu", beta=0.0)
    assert np.allclose(C2, relu(A @ B))
    # The MPE stage was logged and charged.
    assert any(c.kind == "mpe_relu" for c in lib2.calls)


def test_prologue_baseline_does_not_clobber_A():
    rng = np.random.default_rng(3)
    A = rng.standard_normal((8, 8))
    A0 = A.copy()
    lib = XMathLibrary()
    lib.gemm_with_prologue(A, np.eye(8), np.zeros((8, 8)), "quant", beta=0.0)
    assert (A == A0).all()


# -- performance model -----------------------------------------------------------


def test_pow2_k_is_fast():
    assert xmath_efficiency(8192, 8192, 8192) > 0.8
    assert xmath_efficiency(4096, 16384, 16384) > 0.9


def test_best_point_caps_at_9353():
    """§8.2: xMath's best is 93.53% of peak at 4096×16384×16384."""
    assert xmath_efficiency(4096, 16384, 16384) <= 0.9353 + 1e-9


def test_non_pow2_k_degrades():
    """§8.2: under 1500 Gflops for 7680³/10240³/15360³; 42.25% at
    8192×8192×15360."""
    for n in (7680, 10240, 15360):
        assert xmath_gflops(n, n, n) < 1500
    worst = xmath_gflops(8192, 8192, 15360) / SW26010PRO.peak_gflops
    assert worst == pytest.approx(0.4225, abs=0.05)


def test_small_squares_stay_strong():
    """§8.2: xMath wins the four leftmost square shapes."""
    for n in (1024, 2048, 4096):
        assert xmath_efficiency(n, n, n) >= 0.79


def test_mild_non_pow2_is_only_mildly_slower():
    assert 0.7 < xmath_efficiency(6144, 6144, 6144) < 0.82


def test_batched_dispatch_penalty():
    one = xmath_gflops(1024, 1024, 8192, batch=1)
    many = xmath_gflops(1024, 1024, 8192, batch=16)
    assert many < one
    # Per-call overhead: batch seconds exceed batch × single seconds.
    assert xmath_seconds(1024, 1024, 8192, batch=16) > 16 * xmath_seconds(
        1024, 1024, 8192
    )


def test_jitter_is_deterministic():
    assert xmath_efficiency(5120, 5120, 5120) == xmath_efficiency(5120, 5120, 5120)


def test_dispatch_constant_positive():
    assert XMATH_DISPATCH_US > 0
