"""Distributed GEMM over simulated core groups."""

import numpy as np
import pytest

from repro.core.options import CompilerOptions
from repro.errors import ConfigurationError
from repro.multi.driver import MultiClusterGemm
from repro.sunway.arch import TOY_ARCH


def make(grid=(2, 3)):
    return MultiClusterGemm(grid, arch=TOY_ARCH)


def test_functional_2x3_grid(rng):
    mc = make((2, 3))
    M, N, K = 48, 48, 16
    A = rng.standard_normal((M, K))
    B = rng.standard_normal((K, N))
    C0 = rng.standard_normal((M, N))
    C, report = mc.run(A, B, C0.copy(), alpha=1.5, beta=0.5)
    assert np.allclose(C, 1.5 * A @ B + 0.5 * C0, atol=1e-11)
    assert report.grid == (2, 3)
    assert len(report.per_rank_gflops) == 6
    assert report.seconds > 0


def test_uneven_split_still_exact(rng):
    mc = make((2, 2))
    M, N, K = 37, 29, 11  # nothing divides anything
    A = rng.standard_normal((M, K))
    B = rng.standard_normal((K, N))
    C, _ = mc.run(A, B, None, beta=0.0)
    assert np.allclose(C, A @ B, atol=1e-11)


def test_single_rank_matches_plain(rng):
    mc = make((1, 1))
    A = rng.standard_normal((16, 8))
    B = rng.standard_normal((8, 16))
    C, report = mc.run(A, B, None, beta=0.0)
    assert np.allclose(C, A @ B, atol=1e-12)
    assert report.comm_fraction < 1e-6  # no panels move on one rank


def test_block_bounds_cover_extent():
    mc = make((1, 1))
    bounds = mc._block_bounds(10, 3)
    assert bounds == [(0, 4), (4, 7), (7, 10)]
    assert mc._block_bounds(9, 3) == [(0, 3), (3, 6), (6, 9)]


def test_bad_grid_rejected():
    with pytest.raises(ConfigurationError):
        MultiClusterGemm((0, 2), arch=TOY_ARCH)


def test_estimate_scales_with_grid():
    """Distributing over the six core groups of one SW26010Pro must beat
    one core group on throughput."""
    from repro.sunway.arch import SW26010PRO

    single = MultiClusterGemm((1, 1)).estimate(3072, 3072, 4096)
    six = MultiClusterGemm((2, 3)).estimate(3072, 3072, 4096)
    # Speedup is real but sublinear: the root serialises the panel
    # scatters over the NoC (K-sized panels are 50-100 MB here).
    assert 1.5 * single.gflops < six.gflops < 6.0 * single.gflops
    assert six.comm_seconds > 0
    # A K-heavy shape amortises the panels better.
    six_deep = MultiClusterGemm((2, 3)).estimate(3072, 3072, 16384)
    single_deep = MultiClusterGemm((1, 1)).estimate(3072, 3072, 16384)
    assert six_deep.gflops / single_deep.gflops > six.gflops / single.gflops * 0.9


def test_estimate_divisibility_checked():
    mc = MultiClusterGemm((2, 2))
    with pytest.raises(ConfigurationError):
        mc.estimate(1025, 1024, 1024)


def test_estimate_report_consistency():
    report = MultiClusterGemm((2, 3)).estimate(3072, 3072, 1024)
    assert report.seconds == pytest.approx(
        report.compute_seconds + report.comm_seconds
    )
    assert 0 < report.comm_fraction < 1
