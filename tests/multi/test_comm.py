"""The simulated inter-cluster communicator."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.multi.comm import NetworkSpec, SimComm


def test_bcast_copies_and_charges():
    comm = SimComm(4)
    data = np.arange(8.0)
    copies = comm.bcast(data, root=0)
    assert len(copies) == 4
    for rank, copy in enumerate(copies):
        assert (copy == data).all()
        if rank != 0:
            assert copy is not data
    assert comm.stats["messages"] == 3
    assert comm.elapsed() > 0


def test_scatter_gather_roundtrip():
    comm = SimComm(3)
    chunks = [np.full(4, float(i)) for i in range(3)]
    received = comm.scatter(chunks, root=0)
    assert all((received[i] == i).all() for i in range(3))
    gathered = comm.gather(received, root=0)
    assert all((gathered[i] == i).all() for i in range(3))


def test_scatter_size_check():
    comm = SimComm(3)
    with pytest.raises(ConfigurationError):
        comm.scatter([np.zeros(1)], root=0)


def test_rank_validation():
    comm = SimComm(2)
    with pytest.raises(ConfigurationError):
        comm.bcast(np.zeros(1), root=5)
    with pytest.raises(ConfigurationError):
        comm.advance(2, 1.0)
    with pytest.raises(ConfigurationError):
        SimComm(0)


def test_same_chip_is_cheaper():
    network = NetworkSpec(groups_per_processor=2)
    nbytes = 10**7
    assert network.link_time_s(nbytes, True) < network.link_time_s(nbytes, False)


def test_processor_mapping():
    comm = SimComm(12, NetworkSpec(groups_per_processor=6))
    assert comm.processor_of(0) == 0
    assert comm.processor_of(5) == 0
    assert comm.processor_of(6) == 1


def test_cross_chip_costs_more():
    nbytes = 8 * 1024 * 1024
    # Two ranks on one chip.
    on_chip = SimComm(2, NetworkSpec(groups_per_processor=6))
    on_chip._charge(0, 1, nbytes)
    # Two ranks across chips.
    across = SimComm(7, NetworkSpec(groups_per_processor=6))
    across._charge(0, 6, nbytes)
    assert across.elapsed() > on_chip.elapsed()


def test_barrier_aligns_clocks():
    comm = SimComm(3)
    comm.advance(1, 5.0)
    comm.barrier()
    assert comm.clocks == [5.0, 5.0, 5.0]


def test_advance_and_elapsed():
    comm = SimComm(2)
    comm.advance(0, 1.0)
    comm.advance(1, 3.0)
    assert comm.elapsed() == 3.0


def test_allgather():
    comm = SimComm(2)
    pieces = [np.array([1.0]), np.array([2.0])]
    everything = comm.allgather(pieces)
    assert len(everything) == 2
    assert (everything[0][1] == [2.0]).all()
