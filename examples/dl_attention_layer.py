#!/usr/bin/env python3
"""A DL workload: batched projection GEMMs with fused element-wise ops.

The paper motivates batched GEMM and the fusion patterns with deep
learning (§1, §3, §7.3).  This example models one transformer-style
block's matrix work on a single SW26010Pro core group:

* the Q/K/V projections as a **batched GEMM** (one mesh launch for the
  whole batch, §8.3);
* a weight matrix with a **fused quantisation prologue** (Fig. 12a);
* an output projection with a **fused activation epilogue** (Fig. 12b);

and cross-checks every result against NumPy while comparing the
simulated time with the xMath-based alternative.

Run:  python examples/dl_attention_layer.py
"""

import numpy as np

from repro import CompilerOptions, GemmCompiler, GemmSpec, SW26010PRO, run_gemm
from repro.codegen.elementwise import get_elementwise
from repro.xmath.library import XMathLibrary

SEQ, MODEL = 512, 512  # padded to the 512-multiple the mesh wants
HEADS = 4


def batched_projections(rng) -> float:
    """Q/K/V/O projections for every head as one batched launch."""
    spec = GemmSpec(batch_param="BS")
    program = GemmCompiler(
        SW26010PRO, CompilerOptions.full().with_(batch=True)
    ).compile(spec)
    X = rng.standard_normal((HEADS, SEQ, MODEL)) * 0.1
    W = rng.standard_normal((HEADS, MODEL, MODEL)) * 0.1
    out, report = run_gemm(program, X, W, None, beta=0.0)
    assert np.allclose(out, np.einsum("bik,bkj->bij", X, W), atol=1e-10)
    print(f"batched projections ({HEADS} heads of {SEQ}x{MODEL}x{MODEL}):")
    print(f"  functional run: {report.elapsed_seconds * 1e3:.3f} ms, "
          f"results verified against NumPy")

    # Headline timing comparison at a production-scale batched shape
    # (fig. 15 territory) via the timed simulator.
    from repro import PerformanceSimulator
    from repro.xmath.perfmodel import xmath_gflops

    sim = PerformanceSimulator(SW26010PRO)
    ours = sim.simulate(
        1024, 1024, 8192, CompilerOptions.full().with_(batch=True), batch=8
    )
    lib_gf = xmath_gflops(1024, 1024, 8192, SW26010PRO, batch=8)
    print(f"  at batch 8 of 1024x1024x8192:")
    print(f"    swgemm (one mesh launch) : {ours.gflops:7.1f} Gflops")
    print(f"    xMath  (looped calls)    : {lib_gf:7.1f} Gflops "
          f"({ours.gflops / lib_gf:.2f}x slower)")
    return report.elapsed_seconds


def quantised_weights(rng) -> None:
    """W is quantised on the fly while feeding the GEMM (prologue fusion)."""
    spec = GemmSpec(prologue_func="quant")
    program = GemmCompiler(
        SW26010PRO, CompilerOptions.full().with_(fusion="prologue")
    ).compile(spec)
    X = rng.standard_normal((SEQ, MODEL)) * 0.1
    W = rng.standard_normal((MODEL, MODEL)) * 0.1
    out, report = run_gemm(program, X, W, None, beta=0.0)
    quant = get_elementwise("quant").numpy_fn
    assert np.allclose(out, quant(X) @ W, atol=1e-10)
    print(f"\nfused quantisation prologue: {report.elapsed_seconds * 1e3:8.3f} ms "
          f"({report.gflops:.0f} Gflops)")
    # The fused version never materialises the quantised matrix in main
    # memory — X is untouched:
    assert not np.allclose(X, quant(X))


def activated_output(rng) -> None:
    """The output projection with its activation fused on the CPEs."""
    spec = GemmSpec(epilogue_func="sigmoid")
    program = GemmCompiler(
        SW26010PRO,
        CompilerOptions.full().with_(fusion="epilogue", epilogue_func="sigmoid"),
    ).compile(spec)
    X = rng.standard_normal((SEQ, MODEL)) * 0.1
    W = rng.standard_normal((MODEL, MODEL)) * 0.1
    out, report = run_gemm(program, X, W, None, beta=0.0)
    sigmoid = get_elementwise("sigmoid").numpy_fn
    assert np.allclose(out, sigmoid(X @ W), atol=1e-10)

    lib = XMathLibrary(SW26010PRO)
    lib.gemm_with_epilogue(X, W, np.zeros_like(out), "sigmoid", beta=0.0)
    print(f"\nfused activation epilogue  : {report.elapsed_seconds * 1e3:8.3f} ms")
    print(f"xMath + activation on MPE  : {lib.elapsed * 1e3:8.3f} ms "
          f"({lib.elapsed / report.elapsed_seconds:.2f}x slower)")


def main() -> None:
    rng = np.random.default_rng(2022)
    batched_projections(rng)
    quantised_weights(rng)
    activated_output(rng)
    print("\nall results match the NumPy reference.")


if __name__ == "__main__":
    main()
