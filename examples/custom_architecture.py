#!/usr/bin/env python3
"""Retargeting: the same pipeline on different Sunway-style core groups.

§9 argues the techniques generalise beyond SW26010Pro; this example
compiles and validates the identical GEMM on:

* the default SW26010Pro core group (8×8 mesh, 256 KB SPM, RMA);
* the SW26010 predecessor (64 KB SPM, **no** SPM RMA — the compiler
  falls back to per-CPE DMA, like the manual approaches had to);
* a hypothetical wide-SPM future part, where the analytical tile model
  picks a different micro-kernel shape on its own.

Run:  python examples/custom_architecture.py
"""

import numpy as np

from repro import CompilerOptions, GemmCompiler, GemmSpec, run_gemm
from repro.core.tile_model import search_optimal_shape
from repro.sunway.arch import SW26010, SW26010PRO, ArchSpec, MicroKernelShape


def validate(arch, options, M=None, N=None, K=None) -> None:
    program = GemmCompiler(arch, options).compile(GemmSpec())
    plan = program.plan
    M = M or plan.chunk_m
    N = N or plan.chunk_n
    K = K or plan.k_step * 2
    rng = np.random.default_rng(5)
    A = rng.standard_normal((M, K))
    B = rng.standard_normal((K, N))
    C, report = run_gemm(program, A, B, np.zeros((M, N)), beta=0.0)
    error = np.abs(C - A @ B).max()
    print(f"{arch.name:>12s}: tile {plan.mt}x{plan.nt}x{plan.kt}, "
          f"chunk {plan.chunk_m}x{plan.chunk_n}x{plan.k_step}, "
          f"SPM {plan.spm_bytes() // 1024:3d} KB, rma={plan.use_rma}, "
          f"err={error:.1e}, {report.gflops:7.1f} Gflops")
    assert error < 1e-9


def main() -> None:
    print("one compiler, three core groups:\n")

    # The paper's target.
    validate(SW26010PRO, CompilerOptions.full(), M=512, N=512, K=512)

    # The predecessor: no SPM RMA (register communication only on the
    # real chip), 64 KB SPM -> smaller kernel, DMA-only plan.
    validate(
        SW26010,
        CompilerOptions(use_asm=True, enable_rma=False, enable_latency_hiding=True),
        M=256, N=256, K=256,
    )

    # A hypothetical next part: 1 MB SPM and a fatter mesh link.  The
    # analytical model (Sec. 3.1) picks the kernel shape by itself.
    future = ArchSpec(
        name="SW-future",
        spm_bytes=1024 * 1024,
        rma_bandwidth_gbs=24.0,
        micro_kernel=MicroKernelShape(64, 64, 32),  # placeholder, see below
    )
    best, _ = search_optimal_shape(future)
    future = future.scaled(micro_kernel=best)
    print(f"\nanalytical model picks {best} for {future.name} "
          f"({future.spm_bytes // 1024} KB SPM)")
    validate(future, CompilerOptions.full(), M=best.mt * 8, N=best.nt * 8,
             K=best.kt * 16)


if __name__ == "__main__":
    main()
