#!/usr/bin/env python3
"""Quickstart: compile the paper's naive GEMM and run it on the
simulated SW26010Pro core group.

The workflow is exactly §2.3's: write a plain 3-deep C loop nest, let the
compiler discover the structure, decompose it for the 8×8 CPE mesh,
automate the DMA/RMA communication and hide the memory latency — then
execute the generated program and check it against NumPy.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import api, compile_c

NAIVE_GEMM_C = """
void gemm(int M, int N, int K, double alpha,
          double A[M][K], double B[K][N], double C[M][N]) {
  for (int i = 0; i < M; i++)
    for (int j = 0; j < N; j++)
      for (int k = 0; k < K; k++)
        C[i][j] = C[i][j] + alpha * A[i][k] * B[k][j];
}
"""


def main() -> None:
    # 1. Compile: C in, athread program out (milliseconds, §8.5).
    program = compile_c(NAIVE_GEMM_C)
    print(f"compiled in {program.codegen_seconds * 1e3:.2f} ms")
    print(f"tile plan : {program.plan.describe()['tile']} "
          f"(chunk {program.plan.describe()['chunk']}, "
          f"{program.spm_bytes() // 1024} KB of SPM per CPE)")

    # 2. Inspect the generated athread C if you like.
    cpe_source = program.cpe_source()
    first_dma = next(l for l in cpe_source.splitlines() if "dma_iget" in l)
    print(f"a generated DMA call:\n  {first_dma.strip()}")

    # 3. Execute on the simulated core group.  Shapes are zero-padded to
    #    multiples of 512x512x256 automatically (§8.1).
    rng = np.random.default_rng(42)
    M, N, K = 700, 600, 500
    A = rng.standard_normal((M, K))
    B = rng.standard_normal((K, N))
    C = np.zeros((M, N))
    C, report = api.run(program, A, B, c=C, alpha=2.0, beta=0.0)

    # 4. Verify and report.
    error = np.abs(C - 2.0 * A @ B).max()
    print(f"max |C - reference| = {error:.2e}")
    print(f"simulated kernel time: {report.elapsed_seconds * 1e3:.3f} ms")
    print(f"useful throughput    : {report.gflops:.1f} Gflops "
          f"(padded shape runs at {report.padded_gflops:.1f})")
    assert error < 1e-9


if __name__ == "__main__":
    main()
