#!/usr/bin/env python3
"""Reproduce the paper's §8.1 performance breakdown for one shape.

Compiles the same GEMM four times — automatic DMA only (the red bars of
Fig. 13), + inline assembly kernel (orange), + RMA broadcasts (green),
+ two-level memory latency hiding (cyan) — and reports the simulated
Gflops of each variant next to the xMath library model.

Run:  python examples/breakdown_study.py [M N K]
"""

import sys

from repro import CompilerOptions, PerformanceSimulator
from repro.runtime.analytical import predict
from repro.xmath.perfmodel import xmath_gflops


def main() -> None:
    M, N, K = (int(a) for a in sys.argv[1:4]) if len(sys.argv) > 3 else (4096, 4096, 4096)
    sim = PerformanceSimulator()
    peak = sim.arch.peak_gflops
    print(f"shape {M}x{N}x{K} on {sim.arch.name} "
          f"(theoretical peak {peak:.0f} Gflops)\n")

    print(f"{'variant':>10s} {'Gflops':>10s} {'% peak':>8s} {'step':>7s}")
    previous = None
    for name, perf in sim.breakdown(M, N, K).items():
        step = f"{perf.gflops / previous:5.2f}x" if previous else "      "
        print(f"{name:>10s} {perf.gflops:10.1f} {100 * perf.peak_fraction:7.1f}% {step:>7s}")
        previous = perf.gflops

    lib = xmath_gflops(M, N, K, sim.arch)
    print(f"{'xMath':>10s} {lib:10.1f} {100 * lib / peak:7.1f}%")

    # Where does the time go?  The closed-form model's phase breakdown.
    phases = predict(M, N, K, CompilerOptions.full())
    print("\nanalytical phase breakdown of the fully optimised variant:")
    for phase in ("kernel", "rma_exposed", "dma_exposed", "c_traffic", "sync"):
        seconds = getattr(phases, phase)
        print(f"  {phase:>12s}: {seconds * 1e3:9.3f} ms "
              f"({100 * seconds / phases.total:5.1f}%)")


if __name__ == "__main__":
    main()
