#!/usr/bin/env python3
"""Walk through the compiler's intermediate representations.

Shows what each pass of §§3-7 does to the schedule tree — the figures of
the paper, live:

1. the initial domain + band (Fig. 2b) with the dependence analysis'
   parallelism/tilability verdict;
2. after tiling and mesh binding (Fig. 4);
3. after strip-mining the reduced dimension (Fig. 6);
4. the final tree with DMA/RMA extension nodes and peeling (Figs. 9/11);
5. the generated athread C (§7).

Run:  python examples/inspect_compilation.py [--no-hiding]
"""

import sys

from repro import CompilerOptions, GemmCompiler, GemmSpec
from repro.core.decomposition import decompose
from repro.core.tile_model import plan_for_kernel, search_optimal_shape
from repro.poly.dependences import analyze_statement
from repro.sunway.arch import SW26010PRO


def headline(text: str) -> None:
    print(f"\n=== {text} " + "=" * max(0, 60 - len(text)))


def main() -> None:
    hiding = "--no-hiding" not in sys.argv
    options = CompilerOptions.full() if hiding else CompilerOptions.with_rma()
    spec = GemmSpec()

    headline("dependence analysis (what isl annotates, Sec. 2.2)")
    summary = analyze_statement(spec.domain(), spec.accesses(), spec.loop_dims())
    print(f"coincident (parallel) dims : "
          f"{[d for d, c in zip(summary.loop_dims, summary.coincident) if c]}")
    print(f"band permutable (tilable)  : {summary.permutable}")
    print(f"reduction dims             : {list(summary.reduction_dims)}")

    headline("analytical tile-size model (Sec. 3.1)")
    best, scores = search_optimal_shape(SW26010PRO)
    print(f"modelled optimum: {best} "
          f"(matches the vendor kernel: {best == SW26010PRO.micro_kernel})")

    headline("decomposition: tiling + mesh binding + strip-mining (Sec. 3)")
    plan = plan_for_kernel(SW26010PRO, options)
    dec = decompose(spec, plan, options)
    print(dec.root.dump())

    headline("final schedule tree with DMA/RMA and peeling (Figs. 9/11)")
    program = GemmCompiler(SW26010PRO, options).compile(spec)
    dump = program.tree_dump()
    print(dump[:3500])
    if len(dump) > 3500:
        print(f"... ({len(dump) - 3500} more characters)")

    headline("generated CPE athread C (Sec. 7)")
    source = program.cpe_source()
    print(source[:3000])
    print(f"... ({len(source.splitlines())} lines total; "
          f"MPE side has {len(program.mpe_source().splitlines())})")


if __name__ == "__main__":
    main()
