#!/usr/bin/env python3
"""Scale out: GEMM over the whole SW26010Pro processor and beyond.

§2.1 of the paper: "one can gradually break down a GEMM routine into
independent smaller ones until each piece can be handled by a cluster",
with MPI between core groups — left as future work in §10 and implemented
here in :mod:`repro.multi`.

The example (1) validates a block-decomposed run functionally on a grid
of simulated core groups, then (2) estimates throughput for one full
six-core-group SW26010Pro processor and a four-processor super-node slice.

Run:  python examples/whole_processor.py
"""

import numpy as np

from repro.multi import MultiClusterGemm, NetworkSpec
from repro.sunway.arch import SW26010PRO, TOY_ARCH


def functional_check() -> None:
    rng = np.random.default_rng(11)
    mc = MultiClusterGemm((2, 3), arch=TOY_ARCH)
    M, N, K = 48, 48, 16
    A = rng.standard_normal((M, K))
    B = rng.standard_normal((K, N))
    C, report = mc.run(A, B, None, beta=0.0)
    assert np.allclose(C, A @ B, atol=1e-11)
    print(f"functional 2x3-grid run: exact; "
          f"{report.comm_fraction * 100:.1f}% of time in panel traffic")


def estimate(grid, M, N, K, label) -> None:
    mc = MultiClusterGemm(grid, arch=SW26010PRO)
    report = mc.estimate(M, N, K)
    clusters = grid[0] * grid[1]
    peak = clusters * SW26010PRO.peak_gflops
    print(f"{label:>28s}: {report.gflops:9.1f} Gflops "
          f"({100 * report.gflops / peak:5.1f}% of the {clusters}-cluster peak, "
          f"{100 * report.comm_fraction:4.1f}% comm)")


def main() -> None:
    functional_check()
    print()
    shape = (6144, 6144, 8192)
    print(f"estimated throughput for {shape[0]}x{shape[1]}x{shape[2]}:")
    estimate((1, 1), *shape, label="one core group")
    estimate((2, 3), *shape, label="one SW26010Pro (6 CGs)")
    estimate((4, 6), *shape, label="four processors (24 CGs)")
    print("\nthe panel scatters serialise at the root (flat tree), so the "
          "large-grid\nefficiency drops — the NoC/system-interface cost "
          "model makes the paper's\n'not too much engineering cost' claim "
          "quantitative.")


if __name__ == "__main__":
    main()
