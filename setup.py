"""Classic setuptools entry point.

The reproduction environment has no network access and no ``wheel``
package, so PEP-517 editable installs cannot build; this setup.py lets
``pip install -e .`` fall back to the legacy ``setup.py develop`` path.
"""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    description=(
        "swgemm: automatic generation of high-performance GEMM kernels for "
        "the SW26010Pro Sunway processor (ICPP'22 reproduction)"
    ),
    license="MIT",
    python_requires=">=3.9",
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    install_requires=["numpy>=1.21", "scipy>=1.7"],
    extras_require={"test": ["pytest", "pytest-benchmark", "hypothesis"]},
    entry_points={"console_scripts": ["swgemm=repro.cli:main"]},
)
