"""Schedule rewrite stack — ``--schedule=optimize`` vs the §6 recipe.

PR 10 made the per-CPE DMA/RMA/compute timeline a first-class,
rewritable IR: ``optimize`` mode runs composable rewrites (split waits,
issue reordering, transfer merging, dead-wait retirement), each admitted
only after a replay on the verifier's ``ScheduleMachine`` plus an SPM
re-check.  This bench sweeps aligned and ragged shapes, re-replays every
optimized program, and commits the result as ``BENCH_schedule.json``.
The acceptance bar it enforces:

* the stack beats the recipe on >= 2 ragged shapes,
* it is never worse than 1% on aligned shapes,
* zero ScheduleMachine violations across the sweep,
* every ragged shape's pipeline bubble actually shrinks (the CI
  ``schedule`` job's bubble-reduction floor).
"""

import json

import pytest

from repro.bench.harness import (
    SCHEDULE_SWEEP_CASES,
    repo_root,
    schedule_bench_payload,
    schedule_sweep,
    write_bench_file,
)
from repro.bench.report import print_figure

#: Minimum absolute bubble-fraction shrink per ragged shape.  The
#: measured reductions sit at 5e-4..6e-3; the floor catches a rewrite
#: stack that silently stopped doing anything without flaking on
#: cost-model noise.
BUBBLE_REDUCTION_FLOOR = 2e-4


@pytest.fixture(scope="module")
def result():
    return schedule_sweep(seed=0)


def test_sweep_covers_all_cases(result, benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    print_figure(
        result,
        ["case", "tile", "recipe_gflops", "optimize_gflops", "ratio",
         "bubble_reduction"],
    )
    assert len(result.rows) == len(SCHEDULE_SWEEP_CASES)
    assert any(r["ragged"] for r in result.rows)
    assert any(not r["ragged"] for r in result.rows)


def test_optimize_beats_recipe_on_ragged_shapes(result, benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    assert result.aggregate["ragged_improved"] >= 2.0, result.aggregate


def test_aligned_shapes_never_regress_past_one_percent(result, benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    assert result.aggregate["min_aligned_ratio"] >= 0.99, result.aggregate


def test_zero_schedule_machine_violations(result, benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    assert result.aggregate["total_machine_violations"] == 0.0


def test_ragged_bubble_reduction_floor(result, benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    assert (
        result.aggregate["min_ragged_bubble_reduction"]
        >= BUBBLE_REDUCTION_FLOOR
    ), result.aggregate


def test_seeded_search_finds_a_non_empty_order(result, benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    assert result.meta["searched_order"], (
        "greedy search should beat the recipe on the first ragged case"
    )


def test_snapshot_written_to_repo_root(result, benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    payload = schedule_bench_payload(result)
    path = write_bench_file("BENCH_schedule.json", payload)
    assert path.parent == repo_root()
    reread = json.loads(path.read_text())
    assert reread["figure"] == "schedule"
    assert len(reread["rows"]) == len(result.rows)
    assert reread["aggregate"]["total_machine_violations"] == 0.0
    assert reread["searched_order"] == result.meta["searched_order"]
