"""Shared state for the benchmark suite.

One :class:`PerformanceSimulator` is shared across all benchmark files so
chunk simulations are computed once per (variant, K) and reused — the
same caching a user sweeping shapes would rely on.
"""

import pytest

from repro.runtime.simulator import PerformanceSimulator
from repro.sunway.arch import SW26010PRO


@pytest.fixture(scope="session")
def sim():
    return PerformanceSimulator(SW26010PRO)
