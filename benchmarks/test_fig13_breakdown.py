"""Fig. 13 — performance breakdown + square-shape GEMM vs xMath.

Regenerates both halves of the paper's Fig. 13: the four compiler
variants (automatic DMA baseline, + inline assembly kernel, + RMA
broadcasts, + memory latency hiding) over twelve square shapes, plus the
xMath comparison.  The assertions pin the qualitative claims of §8.1-8.2;
EXPERIMENTS.md records the quantitative paper-vs-measured deltas.
"""

import pytest

from repro.bench.harness import fig13_breakdown
from repro.bench.report import print_figure
from repro.sunway.arch import SW26010PRO


@pytest.fixture(scope="module")
def result(sim):
    return fig13_breakdown(sim)


def test_fig13_breakdown(benchmark, sim, result):
    benchmark.pedantic(
        lambda: sim.breakdown(1024, 1024, 1024), rounds=1, iterations=1
    )
    print_figure(result, ["shape", "dma-only", "+asm", "+rma", "+hiding", "xmath"])
    agg = result.aggregate

    # The staircase (paper: 84.89 → 240.39 → 1052.94 → 1849.06 Gflops).
    assert agg["mean_dma-only"] == pytest.approx(84.89, rel=0.08)
    assert agg["mean_+hiding"] == pytest.approx(1849.06, rel=0.10)
    assert 2.0 < agg["speedup_asm_over_baseline"] < 4.5   # paper 2.83x
    assert 2.3 < agg["speedup_rma_over_asm"] < 5.5        # paper 4.38x
    assert 1.3 < agg["speedup_hiding_over_rma"] < 2.5     # paper 1.76x
    assert agg["speedup_total"] > 15                      # paper 23.72x

    # Peak fraction (paper: 90.14% at the rightmost shape).
    assert 0.84 < agg["best_peak_fraction"] < 0.93

    # vs xMath (paper: +9.62% mean on squares; wins leftmost four).
    assert 1.0 < agg["ours_vs_xmath"] < 1.35
    assert agg["xmath_wins_small"] >= 3

    # Small-K shapes underperform (paper: leftmost bars < 1800 Gflops).
    smallest = result.rows[0]["+hiding"]
    largest = result.rows[-1]["+hiding"]
    assert smallest < 1800 < largest


def test_fig13_baseline_is_flat(result, benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    values = [row["dma-only"] for row in result.rows]
    assert max(values) - min(values) < 0.06 * max(values)


def test_fig13_xmath_degrades_on_non_pow2(result, benchmark):
    """§8.2: xMath under 1500 Gflops for the large non-pow2 squares."""
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    by_shape = {row["K"]: row["xmath"] for row in result.rows}
    for K in (7680, 10240, 15360):
        assert by_shape[K] < 1500
        row = next(r for r in result.rows if r["K"] == K)
        assert row["+hiding"] > row["xmath"]
