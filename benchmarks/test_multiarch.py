"""Multi-arch kernel matrix — arch × micro kernel × shape.

PR 8 made the kernel and the chip degrees of freedom: the arch registry
(:mod:`repro.sunway.arch`) carries multiple targets and the kernel
backend layer (:mod:`repro.codegen.backend`) generates register-tiled
kernels for shapes no vendor object was ever built for.  This bench
crosses two registered archs with three kernel points each (the vendor
contract, the parametric generator at the contract shape, and the
parametric generator at half reduction depth) over Fig. 13 shapes, and
commits the matrix as ``BENCH_multiarch.json``.  The payload is a pure
function of the cost model, so reruns on an unchanged tree are
byte-identical.
"""

import json

import pytest

from repro.bench.harness import (
    MULTIARCH_ARCHS,
    MULTIARCH_SHAPES,
    multiarch_bench_payload,
    multiarch_matrix,
    repo_root,
    write_bench_file,
)
from repro.bench.report import print_figure


@pytest.fixture(scope="module")
def result():
    return multiarch_matrix()


def test_matrix_covers_archs_and_kernels(result, benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    print_figure(
        result, ["arch", "config", "shape", "gflops", "peak_fraction"]
    )
    archs = {r["arch"] for r in result.rows}
    assert archs == set(MULTIARCH_ARCHS)
    # >= 2 kernel shapes per arch (the acceptance floor): the contract
    # shape plus the shallow parametric shape.
    for arch in archs:
        kernels = {r["kernel"] for r in result.rows if r["arch"] == arch}
        assert len(kernels) >= 2, f"{arch} covers only {kernels}"
    assert len(result.rows) == len(MULTIARCH_ARCHS) * 3 * len(MULTIARCH_SHAPES)


def test_vendor_kernel_wins_at_its_own_shape(result, benchmark):
    """The generated kernel pays a per-register-block overhead, so the
    vendor object must stay the measured optimum at the contract shape —
    the paper's §7.2 claim survives the backend refactor."""
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    for arch in MULTIARCH_ARCHS:
        ratio = result.aggregate[f"parametric_vs_vendor_{arch}"]
        assert 0.80 <= ratio <= 1.0, (
            f"{arch}: parametric/vendor ratio {ratio} out of range"
        )


def test_snapshot_written_to_repo_root(result, benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    payload = multiarch_bench_payload(result)
    path = write_bench_file("BENCH_multiarch.json", payload)
    assert path.parent == repo_root()
    reread = json.loads(path.read_text())
    assert reread["figure"] == "multiarch"
    assert reread["arch"] == sorted(MULTIARCH_ARCHS)
    assert len(reread["rows"]) == len(result.rows)
