"""Fig. 14 — GEMM with 36 non-square shapes vs xMath (§8.2)."""

import pytest

from repro.bench.harness import fig14_nonsquare
from repro.bench.report import print_figure
from repro.sunway.arch import SW26010PRO


@pytest.fixture(scope="module")
def result(sim):
    return fig14_nonsquare(sim)


def test_fig14_nonsquare(benchmark, sim, result):
    benchmark.pedantic(
        lambda: sim.simulate(2048, 4096, 8192), rounds=1, iterations=1
    )
    print_figure(result, ["shape", "ours", "xmath"])
    agg = result.aggregate

    # Means (paper: ours 1911.22 vs xMath 1846.96, +9.25%).
    assert agg["mean_ours"] == pytest.approx(1911.22, rel=0.08)
    assert 0.95 < agg["ours_vs_xmath"] < 1.25

    # Both peak near the same shape class (paper: 90.03% vs 93.53% at
    # 4096×16384×16384).
    assert 0.85 < agg["best_ours_peak"] < 0.93
    assert agg["best_xmath_peak"] == pytest.approx(0.9353, abs=0.01)

    # Exactly nine degradation shapes, all with non-pow2 K (paper:
    # "observed for nine times").
    assert agg["xmath_degradations"] == 9
    for row in result.rows:
        if row["degraded"]:
            assert not row["k_pow2"]

    # Ours beats xMath strongly on the degraded set (paper: +58.95%)...
    assert agg["ours_on_degraded_vs_xmath"] > 1.35
    # ...and concedes a little on pow2 K (paper: −7.32%).
    assert 0.85 < agg["ours_on_pow2_vs_xmath"] < 1.02


def test_fig14_peak_shape_is_wide_k(result, benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    best = max(result.rows, key=lambda r: r["ours"])
    assert best["K"] >= 8192


def test_fig14_ours_stable_vs_xmath_fluctuating(result, benchmark):
    """§8.2: our method exhibits a more stable trend than the library."""
    import statistics

    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    ours_cv = statistics.pstdev([r["ours"] for r in result.rows]) / statistics.mean(
        [r["ours"] for r in result.rows]
    )
    lib_cv = statistics.pstdev([r["xmath"] for r in result.rows]) / statistics.mean(
        [r["xmath"] for r in result.rows]
    )
    assert ours_cv < lib_cv
