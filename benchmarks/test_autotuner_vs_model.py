"""Auto-tuning vs analytical modelling (§3.1 / §9).

The paper argues that "analytical modeling is sufficient for GEMM code
generation" and skips the auto-tuners (ATLAS/PHiPAC-style) other systems
need.  This bench *runs the auto-tuner anyway*: it sweeps every feasible
power-of-two kernel shape through the timed simulator (the expensive path
a tuner would measure on hardware) and checks that the analytical model's
pick is on the empirical Pareto front — the strongest evidence the
reproduction can offer for the paper's no-tuning claim.
"""

import pytest

from repro.core.options import CompilerOptions
from repro.core.pipeline import GemmCompiler
from repro.core.spec import GemmSpec
from repro.core.tile_model import (
    candidate_shapes,
    plan_for_kernel,
    search_optimal_shape,
    score_shape,
)
from repro.errors import SPMOverflowError
from repro.runtime.executor import Executor
from repro.sunway.arch import SW26010PRO, MicroKernelShape
from repro.sunway.mesh import Cluster


def _simulate_shape(shape: MicroKernelShape, K: int = 2048) -> float:
    """Measured Gflops of one mesh chunk with a hypothetical kernel shape."""
    arch = SW26010PRO.scaled(micro_kernel=shape)
    options = CompilerOptions.full()
    program = GemmCompiler(arch, options).compile(GemmSpec())
    plan = program.plan
    cm, cn = plan.chunk_m, plan.chunk_n
    Kp = -(-K // plan.k_step) * plan.k_step
    cluster = Cluster(arch)
    cluster.memory.alloc("A", (cm, Kp))
    cluster.memory.alloc("B", (Kp, cn))
    cluster.memory.alloc("C", (cm, cn))
    report = Executor(program, cluster, move_data=False).run(
        {"M": cm, "N": cn, "K": Kp}
    )
    return 2.0 * cm * cn * Kp / report.elapsed_seconds / 1e9


@pytest.fixture(scope="module")
def tuning_sweep():
    """The 'auto-tuner': measure every feasible candidate."""
    results = {}
    for mt, nt, kt in candidate_shapes(SW26010PRO):
        shape = MicroKernelShape(mt, nt, kt)
        try:
            plan_for_kernel(
                SW26010PRO.scaled(micro_kernel=shape), CompilerOptions.full()
            )
        except SPMOverflowError:
            continue
        if mt * 8 > 1024 or kt * 8 > 2048:
            continue  # keep the sweep's chunk sizes simulable
        results[shape] = _simulate_shape(shape)
    return results


def test_analytical_pick_wins_the_tuning_sweep(benchmark, tuning_sweep):
    modelled_best, _ = search_optimal_shape(SW26010PRO)
    measured = benchmark.pedantic(
        lambda: _simulate_shape(modelled_best), rounds=1, iterations=1
    )
    print("\nauto-tuning sweep (measured Gflops per shape):")
    for shape, gflops in sorted(tuning_sweep.items(), key=lambda kv: -kv[1]):
        marker = "  <- analytical pick" if shape == modelled_best else ""
        print(f"  {str(shape):>12s}: {gflops:8.1f}{marker}")
    best_measured = max(tuning_sweep.values())
    assert measured >= 0.97 * best_measured, (
        "the analytical model's shape must match the empirical optimum "
        "within noise — otherwise the paper's no-tuning claim would fail"
    )


def test_model_ranking_correlates_with_measurement(benchmark, tuning_sweep):
    """Spearman-ish sanity: the model's top choice is measured top-3 and
    its bottom choice is not measured best."""
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    modelled = {
        shape: score_shape(SW26010PRO, shape.mt, shape.nt, shape.kt).gflops_per_cpe
        for shape in tuning_sweep
    }
    by_model = sorted(tuning_sweep, key=lambda s: -modelled[s])
    by_measure = sorted(tuning_sweep, key=lambda s: -tuning_sweep[s])
    assert by_model[0] in by_measure[:3]
    assert by_model[-1] != by_measure[0]
