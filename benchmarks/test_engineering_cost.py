"""§8.5 — engineering cost: code generation in (milli)seconds.

The paper contrasts months of manual development (xMath: "a couple of
months to finish the implementation and another several months to tune")
with seconds of compiler time, including the integer solver of the
polyhedral model.  These benchmarks time the actual pipeline stages.
"""

import pytest

from repro.core import CompilerOptions, GemmCompiler, GemmSpec
from repro.core.decomposition import decompose
from repro.core.dma import derive_dma_specs
from repro.core.tile_model import plan_for_kernel, search_optimal_shape
from repro.frontend import compile_c, extract_spec
from repro.frontend.cparser import parse_c
from repro.sunway.arch import SW26010PRO

GEMM_C = """
void gemm(int M, int N, int K, double alpha,
          double A[M][K], double B[K][N], double C[M][N]) {
  for (int i = 0; i < M; i++)
    for (int j = 0; j < N; j++)
      for (int k = 0; k < K; k++)
        C[i][j] = C[i][j] + alpha * A[i][k] * B[k][j];
}
"""


def test_full_compilation_seconds(benchmark):
    program = benchmark(lambda: compile_c(GEMM_C))
    assert program.codegen_seconds < 1.0  # §8.5: "only takes several seconds"


def test_frontend_parse(benchmark):
    unit = benchmark(lambda: parse_c(GEMM_C))
    assert unit.functions[0].name == "gemm"


def test_pattern_recognition(benchmark):
    spec = benchmark(lambda: extract_spec(GEMM_C))
    assert spec.c_name == "C"


def test_analytical_tile_search(benchmark):
    """The paper's 'integer linear solver' analogue: the analytical shape
    search over the full candidate space."""
    best, _ = benchmark(lambda: search_optimal_shape(SW26010PRO))
    assert (best.mt, best.nt, best.kt) == (64, 64, 32)


def test_polyhedral_passes(benchmark):
    options = CompilerOptions.full()
    plan = plan_for_kernel(SW26010PRO, options)

    def passes():
        dec = decompose(GemmSpec(), plan, options)
        return derive_dma_specs(dec)

    specs = benchmark(passes)
    assert set(specs) == {"getA", "getB", "getC", "putC"}


def test_backend_ast_and_print(benchmark):
    program = GemmCompiler(SW26010PRO, CompilerOptions.full()).compile(GemmSpec())
    source = benchmark(program.cpe_source)
    assert "dma_iget" in source


def test_all_variants_compile_quickly(benchmark):
    variants = [
        CompilerOptions.baseline(),
        CompilerOptions.with_asm(),
        CompilerOptions.with_rma(),
        CompilerOptions.full(),
    ]

    def compile_all():
        return [
            GemmCompiler(SW26010PRO, options).compile(GemmSpec())
            for options in variants
        ]

    programs = benchmark(compile_all)
    assert len(programs) == 4


def test_per_pass_breakdown(benchmark):
    """The §8.5 number decomposed by paper stage: every compile carries a
    per-pass wall-time block, and the stage timings sum to the total."""

    def compile_once():
        return GemmCompiler(SW26010PRO, CompilerOptions.full()).compile(
            GemmSpec()
        )

    program = benchmark(compile_once)
    stats = program.pass_stats
    assert stats, "compiled programs must carry per-pass timings"
    assert sum(s.seconds for s in stats) == program.codegen_seconds
    breakdown = {s.name: s.seconds for s in stats}
    assert "tile-selection" in breakdown
    assert "ast-generation" in breakdown
    # Every stage is sub-second on its own — the paper's point, made
    # per paper section rather than in aggregate.
    assert all(seconds < 1.0 for seconds in breakdown.values())
