"""Autotuner ablation — model-guided search vs the fixed 64×64×32 point.

The paper fixes its kernel at the analytically-optimal 64×64×32
configuration (§3.1) and argues tuning is unnecessary.  The
``benchmarks/test_autotuner_vs_model.py`` sweep confirms that for large
aligned shapes; this bench runs :mod:`repro.tune`'s model-guided search
on the shapes where the single point is *not* optimal — ragged and
batched problems whose zero-padding waste dominates (§8.1) — and commits
the results as the ``BENCH_tune.json`` / ``BENCH_baseline.json``
snapshots at the repo root.  Both snapshots are pure functions of the
search seed, so reruns on an unchanged tree are byte-identical.
"""

import json

import pytest

from repro.bench.harness import (
    TUNE_ABLATION_CASES,
    repo_root,
    tune_ablation,
    tune_bench_payloads,
    write_bench_file,
)
from repro.bench.report import print_figure


@pytest.fixture(scope="module")
def result():
    return tune_ablation()


def test_tuner_beats_default_on_ragged_shapes(result, benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    print_figure(
        result, ["shape", "config", "default", "tuned", "improvement_pct"]
    )
    agg = result.aggregate

    # The acceptance bar: at least three shape classes improve by >= 5%.
    assert agg["wins_over_5pct"] >= 3
    assert agg["tuned_vs_default"] > 1.05

    # The tuner never regresses: the default is always measured and wins
    # ties, so "tuned" is at worst the default itself.
    for row in result.rows:
        assert row["tuned"] >= row["default"]

    # The padding-waste mechanism: the ragged small shape and the batched
    # shape gain the most, and their winners use sub-default tiles.
    by_shape = {row["shape"]: row for row in result.rows}
    assert by_shape["192x576x384"]["improvement_pct"] > 50
    assert by_shape["b256:32x256x256"]["improvement_pct"] > 50
    assert "64x64x32" not in by_shape["b256:32x256x256"]["config"]


def test_snapshots_written_to_repo_root(result, benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    tuned, baseline = tune_bench_payloads(result)
    tune_path = write_bench_file("BENCH_tune.json", tuned)
    base_path = write_bench_file("BENCH_baseline.json", baseline)

    assert tune_path.parent == repo_root()
    reread = json.loads(tune_path.read_text())
    assert reread["figure"] == "tune"
    assert len(reread["rows"]) == len(TUNE_ABLATION_CASES)
    base = json.loads(base_path.read_text())
    assert base["figure"] == "tune-baseline"
    assert all(r["config"].startswith("64x64x32") for r in base["rows"])
