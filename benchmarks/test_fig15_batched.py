"""Fig. 15 — batched GEMM vs looped xMath (§8.3)."""

import pytest

from repro.bench.harness import fig15_batched
from repro.bench.report import print_figure
from repro.core.options import CompilerOptions


@pytest.fixture(scope="module")
def result(sim):
    return fig15_batched(sim)


def test_fig15_batched(benchmark, sim, result):
    benchmark.pedantic(
        lambda: sim.simulate(
            1024, 1024, 8192, CompilerOptions.full().with_(batch=True), batch=2
        ),
        rounds=1,
        iterations=1,
    )
    print_figure(result, ["shape", "ours", "xmath"])
    agg = result.aggregate

    # Means (paper: 1949.92 vs 1603.26, 1.30× header / 1.216× by values).
    assert agg["mean_ours"] == pytest.approx(1949.92, rel=0.08)
    assert 1.05 < agg["ours_vs_xmath"] < 1.40

    # Best point (paper: 90.43% at batch 2, 4096×4096×16384).  In our
    # model every batch size of that shape is within noise of the top
    # (the mesh is started once either way, so larger batches amortise
    # the spawn marginally better); the shape itself must win.
    assert 0.85 < agg["best_ours_peak"] < 0.93
    best = max(result.rows, key=lambda r: r["ours"])
    assert (best["M"], best["N"], best["K"]) == (4096, 4096, 16384)
    batch2 = next(
        r["ours"] for r in result.rows
        if (r["batch"], r["M"], r["N"], r["K"]) == (2, 4096, 4096, 16384)
    )
    assert batch2 > 0.995 * best["ours"]


def test_fig15_gap_grows_with_batch_size(result, benchmark):
    """The per-call dispatch penalty compounds: ours/xMath grows with the
    batch size."""
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)

    def ratio(batch):
        rows = [r for r in result.rows if r["batch"] == batch]
        return sum(r["ours"] for r in rows) / sum(r["xmath"] for r in rows)

    assert ratio(16) > ratio(2)


def test_fig15_ours_batch_invariant(result, benchmark):
    """Our compiler starts the mesh once regardless of batch size, so its
    Gflops barely move with the batch count."""
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    for shape_key in {(r["M"], r["N"], r["K"]) for r in result.rows}:
        values = [
            r["ours"] for r in result.rows
            if (r["M"], r["N"], r["K"]) == shape_key
        ]
        assert max(values) / min(values) < 1.05
