"""Serving-path benchmark — the multi-tenant daemon under load.

Boots an in-process ``KernelServer``, replays a seeded mixed trace from
four concurrent tenants through real sockets, and asserts the serving
properties the daemon exists for:

* single-flight dedup — compiles executed < unique kernels requested
  <= requests sent (the prewarmed hot pool makes the first inequality
  strict, and the ``verify:false`` descriptor collapsing onto the
  default key makes unique-keys < descriptors);
* cache hit rate above the floor the CI ``serve`` job also enforces;
* per-tenant token-bucket quotas actually rejecting a burst;
* a sane latency distribution (p99 bounded, nothing hung).

The committed ``BENCH_serve.json`` at the repo root is the full
1200-request run of the same generator (``python -m repro.bench.loadgen``);
this bench uses a smaller trace so the suite stays fast.  The trace is a
pure function of its seed — the digest assertion proves reruns replay
the identical workload even though measured latencies vary.
"""

import pytest

from repro.bench.loadgen import (
    TraceConfig,
    generate_trace,
    run_serve_bench,
    trace_digest,
    unique_kernel_keys,
)

SEED = 2022


@pytest.fixture(scope="module")
def payload():
    return run_serve_bench(
        TraceConfig(seed=SEED, requests=240, tunes=1), workers=4
    )


def test_trace_is_deterministic(benchmark):
    config = TraceConfig(seed=SEED, requests=240)
    first = generate_trace(config)
    second = benchmark(lambda: generate_trace(config))
    assert first == second
    assert trace_digest(first) == trace_digest(second)
    # A different seed is a different workload.
    assert trace_digest(generate_trace(TraceConfig(seed=7, requests=240))) \
        != trace_digest(first)


def test_single_flight_dedup_proof(payload, benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    dedup = payload["dedup"]
    assert dedup["proof_strict"]
    assert (
        dedup["compiles_executed_window"]
        < dedup["unique_keys_window"]
        <= dedup["requests_window"]
    )
    # The verify:false descriptor must collapse onto the default key:
    # 11 descriptors, at most 10 distinct kernels.
    config = TraceConfig(seed=SEED, requests=240)
    assert len(unique_kernel_keys(generate_trace(config))) <= 10


def test_cache_hit_rate_and_latency(payload, benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    assert payload["cache"]["hit_rate"] >= 0.5
    assert payload["errors"] == 0
    lat = payload["latency_ms"]
    assert 0 < lat["p50"] <= lat["p99"] <= lat["max"]
    # Generous sanity ceiling — toy-arch ops are milliseconds; a p99 in
    # the tens of seconds means the queue or the pool wedged.
    assert lat["p99"] < 30_000


def test_quotas_enforced_under_burst(payload, benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    quota = payload["quota"]
    assert quota["enforced"]
    assert quota["burst_rejected"] > 0
    assert quota["burst_rejected"] < quota["burst_requests"]


def test_tune_ops_served(payload, benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    assert payload["tune"], "tune phase produced no outcomes"
    assert all(outcome["ok"] for outcome in payload["tune"])
