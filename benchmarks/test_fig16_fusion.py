"""Fig. 16 — fusion with a prologue/epilogue vs xMath+MPE baselines (§8.4)."""

import pytest

from repro.bench.harness import fig16_fusion
from repro.bench.report import print_figure
from repro.core.options import CompilerOptions


@pytest.fixture(scope="module")
def result(sim):
    return fig16_fusion(sim)


def test_fig16_fusion(benchmark, sim, result):
    benchmark.pedantic(
        lambda: sim.simulate(
            2048, 2048, 2048, CompilerOptions.full().with_(fusion="epilogue")
        ),
        rounds=1,
        iterations=1,
    )
    print_figure(result, ["pattern", "shape", "ours", "baseline"])
    agg = result.aggregate

    # Prologue (paper: 1709.81 vs 1436.46, 1.26×).
    assert agg["mean_ours_prologue"] == pytest.approx(1709.81, rel=0.10)
    assert agg["mean_baseline_prologue"] == pytest.approx(1436.46, rel=0.10)
    assert 1.1 < agg["speedup_prologue"] < 1.5

    # Epilogue (paper: 1818.24 vs 919.56, 2.11×).
    assert agg["mean_ours_epilogue"] == pytest.approx(1818.24, rel=0.10)
    assert agg["mean_baseline_epilogue"] == pytest.approx(919.56, rel=0.12)
    assert 1.7 < agg["speedup_epilogue"] < 2.6

    # Combined (paper: 1.67×).
    assert 1.4 < agg["speedup_combined"] < 2.1


def test_fig16_epilogue_never_loses(result, benchmark):
    """§8.4: fusion with the epilogue introduces no recomputation and
    steadily outperforms the library baseline on every shape."""
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    for row in result.rows:
        if row["pattern"] == "epilogue":
            assert row["ours"] > row["baseline"], row["shape"]


def test_fig16_prologue_costs_more_than_epilogue(result, benchmark):
    """The quantisation recomputation makes fused-prologue slower than
    fused-epilogue on the same shapes (paper: 1709.81 vs 1818.24)."""
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    agg = result.aggregate
    assert agg["mean_ours_prologue"] < agg["mean_ours_epilogue"]
