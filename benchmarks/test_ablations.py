"""Ablations beyond the paper's own breakdown.

DESIGN.md calls out the design choices worth isolating:

* the analytical tile-size model (is 64×64×32 really the modelled
  optimum, and by how much does an off-model shape lose?);
* the strip-mine factor (mesh-width slices are what make the RMA scheme
  work);
* single vs double buffering at each pipeline level (already covered by
  the +rma variant) and the SW26010 predecessor configuration;
* simulator-vs-analytical-model agreement across the variant matrix.
"""

import pytest

from repro.bench.harness import cache_ablation
from repro.bench.report import print_figure
from repro.core.options import CompilerOptions
from repro.core.tile_model import plan_for_kernel, score_shape, search_optimal_shape
from repro.errors import SPMOverflowError
from repro.runtime.analytical import predict_gflops
from repro.sunway.arch import SW26010, SW26010PRO, MicroKernelShape


def test_tile_model_margin(benchmark):
    """The chosen shape must beat the runner-up on the model's score."""
    best, scores = benchmark(lambda: search_optimal_shape(SW26010PRO))
    feasible = sorted(
        (s for s in scores if s.feasible),
        key=lambda s: -s.gflops_per_cpe,
    )
    assert (best.mt, best.nt, best.kt) == (64, 64, 32)
    margin = feasible[0].gflops_per_cpe / feasible[1].gflops_per_cpe
    print(f"\ntile-model top-5:")
    for s in feasible[:5]:
        print(f"  {s.shape}: {s.gflops_per_cpe:6.2f} Gflops/CPE ({s.limiter})")
    assert margin > 1.05


def test_off_model_shapes_lose(benchmark):
    """Halving or doubling the kernel depth costs modelled throughput."""
    scores = benchmark(
        lambda: {
            kt: score_shape(SW26010PRO, 64, 64, kt).gflops_per_cpe
            for kt in (8, 16, 32, 64)
        }
    )
    assert scores[32] > scores[16] > scores[8]
    # kt=64 does not even fit the SPM with nine buffers.
    with pytest.raises(SPMOverflowError):
        plan_for_kernel(
            SW26010PRO, CompilerOptions.full(), MicroKernelShape(64, 64, 64)
        )


def test_strip_factor_must_match_mesh(benchmark):
    """The k tile loop is strip-mined by exactly the mesh width: each CPE
    owns one slice per chunk, so the broadcast schedule covers all eight
    slices (§3.2)."""
    plan = benchmark(lambda: plan_for_kernel(SW26010PRO, CompilerOptions.full()))
    assert plan.strip_factor == SW26010PRO.mesh_rows == 8
    assert plan.k_step == plan.kt * plan.strip_factor


def test_sw26010_configuration(benchmark):
    """The predecessor (64 KB SPM, no RMA): the same pipeline compiles
    with a smaller kernel and DMA-only communication — the portability
    §9 claims over the manual approaches."""
    options = CompilerOptions(use_asm=True, enable_rma=False,
                              enable_latency_hiding=True)
    plan = benchmark(lambda: plan_for_kernel(SW26010, options))
    assert plan.spm_bytes() <= SW26010.spm_bytes
    assert not plan.use_rma


def test_double_buffering_value(benchmark):
    """Analytical ablation: switching off the second buffer set exposes
    the full DMA latency (the 1.76× step of Fig. 13)."""
    ratio = benchmark(
        lambda: predict_gflops(4096, 4096, 4096, CompilerOptions.full())
        / predict_gflops(4096, 4096, 4096, CompilerOptions.with_rma())
    )
    assert 1.3 < ratio < 2.6


def test_compile_cache_speedup():
    """Service ablation: the same kernel sweep with the compilation cache
    on vs off.  With the cache, each distinct key compiles exactly once
    and every warm pass is served from memory — the wall-clock table goes
    to the CI log so the speedup stays visible."""
    result = cache_ablation(passes=3)
    print_figure(
        result, ["pass", "kernels", "cache_off_ms", "cache_on_ms", "speedup"]
    )
    kernels = result.aggregate["kernels"]
    # cache off recompiles the whole sweep every pass...
    assert result.aggregate["compiles_off"] == kernels * 3
    # ...the service compiles each distinct key exactly once...
    assert result.aggregate["compiles_on"] == kernels
    # ...and warm passes beat recompilation by a wide margin.
    assert result.aggregate["speedup_warm"] > 2.0


def test_rma_value_grows_with_mesh_bandwidth_pressure(benchmark):
    """Analytical ablation: the RMA step is exactly the 8× DMA-traffic
    reduction, so its value collapses if main-memory bandwidth were 8×
    higher."""

    def ratios():
        normal = predict_gflops(
            2048, 2048, 4096, CompilerOptions.with_rma()
        ) / predict_gflops(2048, 2048, 4096, CompilerOptions.with_asm())
        fat_memory = SW26010PRO.scaled(dma_bandwidth_gbs=8 * 48.0)
        fat = predict_gflops(
            2048, 2048, 4096, CompilerOptions.with_rma(), arch=fat_memory
        ) / predict_gflops(
            2048, 2048, 4096, CompilerOptions.with_asm(), arch=fat_memory
        )
        return normal, fat

    normal, fat = benchmark(ratios)
    assert normal > 2.0
    assert fat < normal * 0.7
