"""Empirical xMath performance model.

Every rule below encodes an observation the paper states explicitly:

* §8.2: xMath reaches 93.53% of peak at 4096×16384×16384 and "exceeds
  93.00% multiple times when the size of the k dimension is 16384";
* §8.2: it beats the compiler on the four leftmost (small) square
  shapes — "custom optimizations to adapt to these shape configurations",
  e.g. smaller per-CPE tiles that increase the overlap count;
* §8.2: it "sometimes suffers from performance degradation when given
  sizes that are not powers of two": below 1500 Gflops for 7680³, 10240³
  and 15360³, and down to 42.25% for 8192×8192×15360 — nine non-pow2-K
  shapes degrade in Fig. 14;
* §8.3: the batch dimension "cannot be embedded into xMath", so batched
  GEMM pays one mesh start-up + dispatch per batch element;
* §8.4: the fusion baselines run the element-wise prologue/epilogue on
  the MPE.

A small deterministic jitter (hash of the shape) models the run-to-run
spread visible in the paper's bars without introducing randomness.
"""

from __future__ import annotations

import hashlib
from typing import Optional

from repro.sunway.arch import SW26010PRO, ArchSpec


def _is_pow2(x: int) -> bool:
    return x > 0 and (x & (x - 1)) == 0


def _jitter(M: int, N: int, K: int, scale: float) -> float:
    """Deterministic pseudo-noise in [-scale, +scale]."""
    digest = hashlib.sha256(f"{M}x{N}x{K}".encode()).digest()
    unit = int.from_bytes(digest[:4], "little") / 2**32  # [0, 1)
    return (2.0 * unit - 1.0) * scale


#: K values whose non-power-of-two panel path is "not mature" — the
#: shapes the paper names as collapsing (7680³/10240³/15360³ under 1500
#: Gflops, 8192×8192×15360 at 42.25%, nine Fig. 14 degradations).
_IMMATURE_K = frozenset({7680, 10240, 12288, 15360})


def xmath_efficiency(M: int, N: int, K: int) -> float:
    """Fraction of theoretical peak xMath sustains for one DGEMM."""
    if _is_pow2(K):
        if K >= 16384:
            eff = 0.925
        elif K >= 8192:
            eff = 0.845
        elif K >= 2048:
            eff = 0.835
        else:
            eff = 0.805
        # Small squares: the hand-tuned small-shape path (smaller per-CPE
        # tiles buy more pipeline overlaps) keeps efficiency up where the
        # compiler's fixed 64×64×32 kernel loses pipeline depth.
        if M == N == K and K <= 4096:
            eff = max(eff, 0.825)
    else:
        # Non-power-of-two K: the manual optimisations "might not be
        # mature for such data sizes".
        if K == 15360:
            eff = 0.44
        elif K in _IMMATURE_K:
            eff = 0.57
        else:
            eff = 0.78
    if not _is_pow2(M) or not _is_pow2(N):
        eff *= 0.985
    eff += _jitter(M, N, K, 0.015)
    return max(0.05, min(eff, 0.9353))


def xmath_seconds(
    M: int,
    N: int,
    K: int,
    arch: ArchSpec = SW26010PRO,
    batch: int = 1,
) -> float:
    """Wall time of (looped) xMath DGEMM calls.

    Batched workloads pay the per-call dispatch: mesh spawn/join plus the
    MPE-side argument marshalling — §8.3's "multiple startups of the CPE
    mesh ... redundant coarser-grained synchronizations"."""
    per_call = 2.0 * M * N * K / (xmath_efficiency(M, N, K) * arch.peak_gflops * 1e9)
    spawn = arch.spawn_us * 1e-6
    # Every call pays a mesh spawn; repeated calls additionally pay the
    # MPE-side re-dispatch the fused/batched compiler path avoids.
    return batch * (per_call + spawn) + (batch - 1) * XMATH_DISPATCH_US * 1e-6


def xmath_gflops(
    M: int,
    N: int,
    K: int,
    arch: ArchSpec = SW26010PRO,
    batch: int = 1,
) -> float:
    return 2.0 * M * N * K * batch / xmath_seconds(M, N, K, arch, batch) / 1e9


#: MPE-side per-call overhead of *repeated* calls: argument checking,
#: panel setup, mesh re-launch and the "redundant coarser-grained
#: synchronizations" of §8.3 — calibrated against the batched gap of
#: Fig. 15 (xMath 1603 vs 1950 Gflops).
XMATH_DISPATCH_US = 2200.0
