"""Functional xMath substitute.

Provides the call surface the paper's baselines use.  Numerics are exact
(NumPy); time comes from :mod:`repro.xmath.perfmodel`.  The fusion
baselines mirror §8.4's setup: xMath for the GEMM, the element-wise
prologue/epilogue executed on the MPE (whose modelled scalar rate is what
makes the unfused pipeline slow).

The library enforces xMath's interface limitations faithfully:

* there is **no batched entry point** — :meth:`batched_dgemm` is the loop
  the paper's baseline has to write, paying per-call dispatch;
* operands must be column-major from Fortran's point of view; this
  wrapper accepts row-major arrays and performs the layout conversion the
  paper describes ("the row-major accesses have been converted into
  column-major required by the Fortran language").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional

import numpy as np

from repro.codegen.elementwise import get_elementwise
from repro.sunway.arch import SW26010PRO, ArchSpec
from repro.xmath.perfmodel import XMATH_DISPATCH_US, xmath_seconds


@dataclass
class XMathCall:
    """A log entry for one library invocation (tests assert on these)."""

    kind: str
    M: int
    N: int
    K: int
    seconds: float


@dataclass
class XMathLibrary:
    """Simulated xMath v2.0 for one core group."""

    arch: ArchSpec = SW26010PRO
    calls: List[XMathCall] = field(default_factory=list)
    elapsed: float = 0.0

    def reset(self) -> None:
        self.calls.clear()
        self.elapsed = 0.0

    # -- BLAS surface ------------------------------------------------------

    def dgemm(
        self,
        A: np.ndarray,
        B: np.ndarray,
        C: np.ndarray,
        alpha: float = 1.0,
        beta: float = 1.0,
    ) -> np.ndarray:
        """``C = α·A·B + β·C`` (row-major in, converted internally)."""
        M, K = A.shape
        K2, N = B.shape
        if K != K2 or C.shape != (M, N):
            raise ValueError(f"dgemm shape mismatch: {A.shape} {B.shape} {C.shape}")
        # Column-major conversion: C^T = α·B^T·A^T + β·C^T — free for the
        # simulation, but it is the call convention the paper describes.
        ct = C.T
        ct[...] = alpha * (B.T @ A.T) + beta * ct
        seconds = xmath_seconds(M, N, K, self.arch)
        self.elapsed += seconds
        self.calls.append(XMathCall("dgemm", M, N, K, seconds))
        return C

    def batched_dgemm(
        self,
        A: np.ndarray,
        B: np.ndarray,
        C: np.ndarray,
        alpha: float = 1.0,
        beta: float = 1.0,
    ) -> np.ndarray:
        """The baseline loop: one dgemm (and one mesh start-up) per batch
        element — the batch dimension cannot be embedded into xMath."""
        if A.ndim != 3:
            raise ValueError("batched_dgemm expects 3-D operands")
        for b in range(A.shape[0]):
            self.dgemm(A[b], B[b], C[b], alpha, beta)
        return C

    # -- MPE-side element-wise stages of the fusion baselines ------------------

    def mpe_elementwise(self, array: np.ndarray, func: str) -> float:
        """Run an element-wise op on the MPE; returns modelled seconds."""
        fn = get_elementwise(func).numpy_fn
        array[...] = fn(array)
        seconds = array.size / self.arch.mpe_elementwise_rate
        self.elapsed += seconds
        self.calls.append(XMathCall(f"mpe_{func}", array.shape[-2], array.shape[-1], 0, seconds))
        return seconds

    # -- the two unfused baselines of §8.4 ---------------------------------------

    def gemm_with_prologue(
        self,
        A: np.ndarray,
        B: np.ndarray,
        C: np.ndarray,
        func: str = "quant",
        alpha: float = 1.0,
        beta: float = 1.0,
    ) -> np.ndarray:
        """Quantise A on the MPE, then call xMath."""
        work = A.copy()
        self.mpe_elementwise(work, func)
        return self.dgemm(work, B, C, alpha, beta)

    def gemm_with_epilogue(
        self,
        A: np.ndarray,
        B: np.ndarray,
        C: np.ndarray,
        func: str = "relu",
        alpha: float = 1.0,
        beta: float = 1.0,
    ) -> np.ndarray:
        """Call xMath, then run the activation over C on the MPE."""
        self.dgemm(A, B, C, alpha, beta)
        self.mpe_elementwise(C, func)
        return C
