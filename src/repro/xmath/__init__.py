"""The xMath baseline (§8.2).

xMath v2.0 is the vendor's highly tuned, closed-source BLAS library for
SW26010Pro — the paper itself treats it as a black box, measures it, and
*guesses* at its internals (§8.2).  This package substitutes:

* :mod:`repro.xmath.library` — a functionally correct implementation of
  the xMath entry points the paper uses (``dgemm``, looped batched dgemm,
  and the MPE-side prologue/epilogue paths of the fusion baselines);
* :mod:`repro.xmath.perfmodel` — an empirical performance model encoding
  exactly the behaviours the paper reports: strong on power-of-two K
  (93.53% peak best), custom small-shape tuning that beats the compiler
  on the four leftmost square sizes, heavy degradation on large
  non-power-of-two K (down to 42.25%), no batched entry point (one mesh
  start-up per batch element), and element-wise pre/post processing
  executed on the slow MPE.
"""

from repro.xmath.library import XMathLibrary
from repro.xmath.perfmodel import xmath_efficiency, xmath_gflops, xmath_seconds

__all__ = ["XMathLibrary", "xmath_efficiency", "xmath_gflops", "xmath_seconds"]
