"""Per-figure experiment drivers.

Each driver returns a list of row dictionaries (one per shape/bar group)
with the simulated swgemm numbers and the xMath model's numbers, plus an
``aggregate`` summary mirroring the statistics the paper quotes in prose
(means, speedups, win counts).  The pytest-benchmark files under
``benchmarks/`` call these drivers and print the tables.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

from repro.bench.shapes import (
    FIG13_SQUARE_SHAPES,
    FIG14_DEGRADED,
    FIG14_NONSQUARE_SHAPES,
    FIG15_BATCHED,
    FIG16_FUSION_SHAPES,
    Shape,
)
from repro.core.options import CompilerOptions
from repro.runtime.simulator import PerformanceSimulator
from repro.sunway.arch import SW26010PRO, ArchSpec
from repro.xmath.perfmodel import xmath_gflops, xmath_seconds


@dataclass
class FigureResult:
    """Rows + aggregates for one figure."""

    figure: str
    rows: List[Dict[str, object]] = field(default_factory=list)
    aggregate: Dict[str, float] = field(default_factory=dict)
    # Non-numeric results (e.g. a searched pass order) that don't fit
    # the float-only aggregate table.
    meta: Dict[str, object] = field(default_factory=dict)


def _mean(values: Sequence[float]) -> float:
    return sum(values) / len(values)


def repo_root() -> Path:
    """The checkout root (the nearest ancestor with ``pytest.ini`` or a
    ``.git`` directory), falling back to the current directory."""
    here = Path(__file__).resolve()
    for parent in here.parents:
        if (parent / "pytest.ini").exists() or (parent / ".git").exists():
            return parent
    return Path.cwd()


def write_bench_file(name: str, payload: Dict[str, object]) -> Path:
    """Write one ``BENCH_*.json`` snapshot to the repo root.

    The payload is deterministic (no wall-clock fields), so reruns of an
    unchanged tree produce byte-identical files and the snapshots can be
    committed and diffed.
    """
    path = repo_root() / name
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return path


# ---------------------------------------------------------------------------
# Fig. 13: performance breakdown + square-shape comparison with xMath
# ---------------------------------------------------------------------------


def fig13_breakdown(
    simulator: Optional[PerformanceSimulator] = None,
    shapes: Sequence[Shape] = tuple(FIG13_SQUARE_SHAPES),
) -> FigureResult:
    sim = simulator or PerformanceSimulator()
    result = FigureResult("fig13")
    for M, N, K in shapes:
        breakdown = sim.breakdown(M, N, K)
        row: Dict[str, object] = {"shape": f"{M}x{N}x{K}", "M": M, "N": N, "K": K}
        for variant, perf in breakdown.items():
            row[variant] = perf.gflops
        row["xmath"] = xmath_gflops(M, N, K, sim.arch)
        result.rows.append(row)
    variants = ("dma-only", "+asm", "+rma", "+hiding")
    means = {v: _mean([r[v] for r in result.rows]) for v in variants}
    means["xmath"] = _mean([r["xmath"] for r in result.rows])
    result.aggregate = {
        **{f"mean_{k}": v for k, v in means.items()},
        "speedup_asm_over_baseline": means["+asm"] / means["dma-only"],
        "speedup_rma_over_asm": means["+rma"] / means["+asm"],
        "speedup_hiding_over_rma": means["+hiding"] / means["+rma"],
        "speedup_total": means["+hiding"] / means["dma-only"],
        "ours_vs_xmath": means["+hiding"] / means["xmath"],
        "best_peak_fraction": max(
            r["+hiding"] for r in result.rows
        ) / sim.arch.peak_gflops,
        "xmath_wins_small": sum(
            1 for r in result.rows[:4] if r["xmath"] > r["+hiding"]
        ),
    }
    return result


# ---------------------------------------------------------------------------
# Fig. 14: non-square shapes
# ---------------------------------------------------------------------------


def fig14_nonsquare(
    simulator: Optional[PerformanceSimulator] = None,
    shapes: Sequence[Shape] = tuple(FIG14_NONSQUARE_SHAPES),
) -> FigureResult:
    sim = simulator or PerformanceSimulator()
    result = FigureResult("fig14")
    degraded = set(FIG14_DEGRADED)
    for M, N, K in shapes:
        ours = sim.simulate(M, N, K, CompilerOptions.full()).gflops
        lib = xmath_gflops(M, N, K, sim.arch)
        result.rows.append(
            {
                "shape": f"{M}x{N}x{K}",
                "M": M,
                "N": N,
                "K": K,
                "ours": ours,
                "xmath": lib,
                "k_pow2": (K & (K - 1)) == 0,
                "degraded": (M, N, K) in degraded,
            }
        )
    ours_all = [r["ours"] for r in result.rows]
    lib_all = [r["xmath"] for r in result.rows]
    deg_rows = [r for r in result.rows if r["degraded"]]
    pow2_rows = [r for r in result.rows if r["k_pow2"]]
    result.aggregate = {
        "mean_ours": _mean(ours_all),
        "mean_xmath": _mean(lib_all),
        "ours_vs_xmath": _mean(ours_all) / _mean(lib_all),
        "ours_on_degraded_vs_xmath": _mean([r["ours"] for r in deg_rows])
        / _mean([r["xmath"] for r in deg_rows]),
        "ours_on_pow2_vs_xmath": _mean([r["ours"] for r in pow2_rows])
        / _mean([r["xmath"] for r in pow2_rows]),
        "best_ours_peak": max(ours_all) / sim.arch.peak_gflops,
        "best_xmath_peak": max(lib_all) / sim.arch.peak_gflops,
        "xmath_degradations": sum(
            1 for r in result.rows if r["xmath"] < 0.62 * sim.arch.peak_gflops
        ),
    }
    return result


# ---------------------------------------------------------------------------
# Fig. 15: batched GEMM
# ---------------------------------------------------------------------------


def fig15_batched(
    simulator: Optional[PerformanceSimulator] = None,
    cases: Sequence[Tuple[int, Shape]] = tuple(FIG15_BATCHED),
) -> FigureResult:
    sim = simulator or PerformanceSimulator()
    result = FigureResult("fig15")
    options = CompilerOptions.full().with_(batch=True)
    for batch, (M, N, K) in cases:
        ours = sim.simulate(M, N, K, options, batch=batch)
        lib = xmath_gflops(M, N, K, sim.arch, batch=batch)
        result.rows.append(
            {
                "shape": f"b{batch}:{M}x{N}x{K}",
                "batch": batch,
                "M": M,
                "N": N,
                "K": K,
                "ours": ours.gflops,
                "xmath": lib,
            }
        )
    ours_all = [r["ours"] for r in result.rows]
    lib_all = [r["xmath"] for r in result.rows]
    result.aggregate = {
        "mean_ours": _mean(ours_all),
        "mean_xmath": _mean(lib_all),
        "ours_vs_xmath": _mean(ours_all) / _mean(lib_all),
        "best_ours_peak": max(ours_all) / sim.arch.peak_gflops,
    }
    return result


# ---------------------------------------------------------------------------
# Compilation-service ablation: cache on vs cache off
# ---------------------------------------------------------------------------


def cache_ablation(
    arch: ArchSpec = SW26010PRO,
    requests=None,
    passes: int = 2,
) -> FigureResult:
    """Wall-clock of the standard kernel sweep with and without the cache.

    Runs the same compile sweep ``passes`` times against a caching
    :class:`~repro.service.CompileService` and against a disabled one.
    With the cache, every pass after the first is served entirely from
    the in-process tier — the engineering-cost claim of §8.5 turned into
    a serving-path property.
    """
    from repro.service import CompileService, ServiceConfig, standard_requests

    requests = list(requests if requests is not None else standard_requests(arch))

    def sweep(service: CompileService) -> List[float]:
        times: List[float] = []
        for _ in range(passes):
            started = time.perf_counter()
            for spec, request_arch, options in requests:
                service.get_program(spec, request_arch, options)
            times.append(time.perf_counter() - started)
        return times

    cache_off = CompileService(ServiceConfig(enabled=False))
    off_times = sweep(cache_off)
    cache_on = CompileService()
    on_times = sweep(cache_on)

    result = FigureResult("cache")
    for index, (off_s, on_s) in enumerate(zip(off_times, on_times)):
        result.rows.append(
            {
                "pass": "cold" if index == 0 else f"warm{index}",
                "kernels": len(requests),
                "cache_off_ms": off_s * 1e3,
                "cache_on_ms": on_s * 1e3,
                "speedup": off_s / on_s if on_s else float("inf"),
            }
        )
    warm_off = sum(off_times[1:])
    warm_on = sum(on_times[1:])
    result.aggregate = {
        "kernels": float(len(requests)),
        "total_off_s": sum(off_times),
        "total_on_s": sum(on_times),
        "speedup_total": sum(off_times) / sum(on_times),
        "speedup_warm": (warm_off / warm_on) if warm_on else float("inf"),
        "compiles_off": float(cache_off.compile_count),
        "compiles_on": float(cache_on.compile_count),
    }
    return result


# ---------------------------------------------------------------------------
# Fig. 16: fusion patterns
# ---------------------------------------------------------------------------


def _baseline_fused_gflops(
    M: int, N: int, K: int, pattern: str, arch: ArchSpec, func: str
) -> float:
    """xMath + element-wise stage on the MPE (§8.4's baseline)."""
    from repro.codegen.elementwise import get_elementwise

    gemm = xmath_seconds(M, N, K, arch)
    elementwise_elems = M * K if pattern == "prologue" else M * N
    mpe = elementwise_elems / get_elementwise(func).mpe_rate
    return 2.0 * M * N * K / (gemm + mpe) / 1e9


def fig16_fusion(
    simulator: Optional[PerformanceSimulator] = None,
    shapes: Sequence[Shape] = tuple(FIG16_FUSION_SHAPES),
) -> FigureResult:
    sim = simulator or PerformanceSimulator()
    result = FigureResult("fig16")
    # The paper's patterns: a quantisation prologue over A and an
    # activation epilogue over C (§8.4); the activation's exp is what the
    # MPE executes so slowly in the unfused baseline.
    funcs = {"prologue": "quant", "epilogue": "sigmoid"}
    for pattern in ("prologue", "epilogue"):
        options = CompilerOptions.full().with_(
            fusion=pattern, **{f"{pattern}_func": funcs[pattern]}
        )
        for M, N, K in shapes:
            ours = sim.simulate(M, N, K, options).gflops
            base = _baseline_fused_gflops(M, N, K, pattern, sim.arch, funcs[pattern])
            result.rows.append(
                {
                    "pattern": pattern,
                    "shape": f"{M}x{N}x{K}",
                    "M": M,
                    "N": N,
                    "K": K,
                    "ours": ours,
                    "baseline": base,
                }
            )
    for pattern in ("prologue", "epilogue"):
        rows = [r for r in result.rows if r["pattern"] == pattern]
        result.aggregate[f"mean_ours_{pattern}"] = _mean([r["ours"] for r in rows])
        result.aggregate[f"mean_baseline_{pattern}"] = _mean(
            [r["baseline"] for r in rows]
        )
        result.aggregate[f"speedup_{pattern}"] = (
            result.aggregate[f"mean_ours_{pattern}"]
            / result.aggregate[f"mean_baseline_{pattern}"]
        )
        result.aggregate[f"baseline_wins_{pattern}"] = sum(
            1 for r in rows if r["baseline"] > r["ours"]
        )
    result.aggregate["speedup_combined"] = _mean(
        [result.aggregate["speedup_prologue"], result.aggregate["speedup_epilogue"]]
    )
    return result


# ---------------------------------------------------------------------------
# Autotuner ablation: model-guided search vs the fixed 64x64x32 point
# ---------------------------------------------------------------------------

#: (batch, (M, N, K)) cases where the paper's single analytical point is
#: *not* optimal: ragged shapes whose padding waste dominates, and a
#: batched shape far below the kernel's native tile.
TUNE_ABLATION_CASES: Tuple[Tuple[int, Shape], ...] = (
    (1, (576, 1024, 512)),
    (1, (1280, 768, 512)),
    (1, (192, 576, 384)),
    (256, (32, 256, 256)),
)


def tune_ablation(
    arch: ArchSpec = SW26010PRO,
    cases: Sequence[Tuple[int, Shape]] = TUNE_ABLATION_CASES,
    seed: int = 7,
    budget: int = 12,
    service=None,
) -> FigureResult:
    """Run the model-guided autotuner per shape class and compare the
    winner against the default 64×64×32 configuration.

    The search is a pure function of ``seed`` (no wall clock, no
    ``random``), so the resulting rows — and the ``BENCH_tune.json``
    snapshot built from them — are reproducible bit for bit.
    """
    from repro.service import CompileService, ServiceConfig
    from repro.tune import TuneOptions, Tuner

    service = service or CompileService(ServiceConfig())
    result = FigureResult("tune")
    for batch, (M, N, K) in cases:
        tuner = Tuner(arch, service=service)
        res = tuner.tune(
            M=M,
            N=N,
            K=K,
            batch=batch,
            tune_options=TuneOptions(seed=seed, max_measurements=budget),
        )
        rec = res.record
        result.rows.append(
            {
                "shape": (f"b{batch}:" if batch > 1 else "") + f"{M}x{N}x{K}",
                "batch": batch,
                "M": M,
                "N": N,
                "K": K,
                "default": rec.default_gflops,
                "tuned": rec.best_gflops,
                "improvement_pct": round(100 * rec.improvement, 2),
                "config": rec.candidate.name(),
                "strategy": res.strategy,
                "candidates": res.candidates_total,
                "pruned": res.pruned,
                "measured": res.measured,
                "seed": rec.seed,
            }
        )
    defaults = [r["default"] for r in result.rows]
    tuned = [r["tuned"] for r in result.rows]
    result.aggregate = {
        "cases": float(len(result.rows)),
        "mean_default": _mean(defaults),
        "mean_tuned": _mean(tuned),
        "mean_improvement_pct": _mean(
            [r["improvement_pct"] for r in result.rows]
        ),
        "wins_over_5pct": float(
            sum(1 for r in result.rows if r["improvement_pct"] >= 5.0)
        ),
        "tuned_vs_default": _mean(tuned) / _mean(defaults),
    }
    return result


def tune_bench_payloads(
    result: FigureResult,
    arch: ArchSpec = SW26010PRO,
) -> Tuple[Dict[str, object], Dict[str, object]]:
    """Split one :func:`tune_ablation` result into the two committed
    snapshots: the tuned numbers and the fixed-configuration baseline.

    ``arch`` is the architecture the ablation ran on; it lands in each
    payload as a machine-readable top-level field."""
    arch_key = arch.name.lower()
    mk = arch.micro_kernel
    tuned = {
        "figure": "tune",
        "arch": arch_key,
        "rows": result.rows,
        "aggregate": result.aggregate,
    }
    baseline = {
        "figure": "tune-baseline",
        "arch": arch_key,
        "rows": [
            {
                "shape": r["shape"],
                "batch": r["batch"],
                "M": r["M"],
                "N": r["N"],
                "K": r["K"],
                "config": f"{mk.mt}x{mk.nt}x{mk.kt} (analytical default)",
                "gflops": r["default"],
            }
            for r in result.rows
        ],
        "aggregate": {
            "cases": result.aggregate["cases"],
            "mean_gflops": result.aggregate["mean_default"],
        },
    }
    return tuned, baseline


# ---------------------------------------------------------------------------
# Multi-arch kernel matrix: arch × micro kernel × shape
# ---------------------------------------------------------------------------

#: Fig. 13 shapes reused for the arch × kernel matrix (a subset — the
#: matrix multiplies them by every arch and kernel point).
MULTIARCH_SHAPES: Tuple[Shape, ...] = (
    (1024, 1024, 1024),
    (2048, 2048, 2048),
    (4096, 4096, 4096),
    (8192, 8192, 8192),
)

#: Default registry names for the matrix: the paper's target and its
#: predecessor (smaller SPM, no RMA, 32×32×32 contract).
MULTIARCH_ARCHS: Tuple[str, ...] = ("sw26010pro", "sw26010")


def _multiarch_kernel_points(arch: ArchSpec):
    """``(label, kernel, options)`` triples for one arch: the vendor
    contract kernel, the parametric generator at the same shape, and the
    parametric generator at a shallower reduction (kt/2) — a shape no
    vendor object was ever built for."""
    from repro.core.options import TileConfig

    mk = arch.micro_kernel
    full = CompilerOptions.full()
    shallow = TileConfig(mk.mt, mk.nt, max(2, mk.kt // 2))
    shallow_name = f"{shallow.mt}x{shallow.nt}x{shallow.kt}"
    return (
        (f"vendor@{mk}", str(mk), "vendor", full),
        (
            f"parametric@{mk}",
            str(mk),
            "parametric",
            full.with_(kernel_backend="parametric"),
        ),
        (
            f"parametric@{shallow_name}",
            shallow_name,
            "parametric",
            full.with_(kernel_backend="parametric", tile_config=shallow),
        ),
    )


def multiarch_matrix(
    archs: Sequence[str] = MULTIARCH_ARCHS,
    shapes: Sequence[Shape] = MULTIARCH_SHAPES,
) -> FigureResult:
    """Simulated Gflops for every (arch, micro kernel, shape) point.

    Each arch contributes three kernel points (vendor contract,
    parametric at the contract shape, parametric at half reduction
    depth); non-RMA archs are handled by option reconciliation, so the
    same ``CompilerOptions.full()`` base works everywhere.  Results are
    deterministic — the payload can be committed and diffed."""
    from repro.sunway.arch import get_arch

    result = FigureResult("multiarch")
    for name in archs:
        arch = get_arch(name)
        key = arch.name.lower()
        sim = PerformanceSimulator(arch)
        for label, kernel, backend, options in _multiarch_kernel_points(arch):
            for M, N, K in shapes:
                perf = sim.simulate(M, N, K, options)
                result.rows.append(
                    {
                        "arch": key,
                        "config": label,
                        "kernel": kernel,
                        "backend": backend,
                        "shape": f"{M}x{N}x{K}",
                        "M": M,
                        "N": N,
                        "K": K,
                        "gflops": perf.gflops,
                        "peak_fraction": perf.gflops / arch.peak_gflops,
                    }
                )
    for name in archs:
        arch = get_arch(name)
        key = arch.name.lower()
        rows = [r for r in result.rows if r["arch"] == key]
        vendor = [r["gflops"] for r in rows if r["backend"] == "vendor"]
        contract = str(arch.micro_kernel)
        generated = [
            r["gflops"]
            for r in rows
            if r["backend"] == "parametric" and r["kernel"] == contract
        ]
        result.aggregate[f"best_{key}"] = max(r["gflops"] for r in rows)
        result.aggregate[f"parametric_vs_vendor_{key}"] = (
            _mean(generated) / _mean(vendor)
        )
    result.aggregate["archs"] = float(len(archs))
    result.aggregate["kernel_points_per_arch"] = 3.0
    return result


def multiarch_bench_payload(result: FigureResult) -> Dict[str, object]:
    """The committed ``BENCH_multiarch.json`` snapshot."""
    return {
        "figure": "multiarch",
        "arch": sorted({r["arch"] for r in result.rows}),
        "rows": result.rows,
        "aggregate": result.aggregate,
    }


# ---------------------------------------------------------------------------
# Schedule rewrite stack: --schedule=optimize vs the fixed --hiding recipe
# ---------------------------------------------------------------------------

#: ``(label, batch, (M, N, K), tile-or-None, ragged?)`` sweep points.
#: Aligned shapes use the analytical 64x64x32 default (512-chunk
#: multiples); ragged shapes pin per-shape tiles whose chunks divide the
#: problem exactly — the same class of configurations the autotuner
#: selects for them (see TUNE_ABLATION_CASES).  Small chunks start and
#: drain the pipeline often, which is precisely where the rewrites'
#: per-chunk startup saving shows up.
SCHEDULE_SWEEP_CASES: Tuple[
    Tuple[str, int, Shape, Optional[Tuple[int, int, int]], bool], ...
] = (
    ("aligned-4096", 1, (4096, 4096, 4096), None, False),
    ("aligned-1024", 1, (1024, 1024, 1024), None, False),
    ("ragged-576x1024x512", 1, (576, 1024, 512), (24, 64, 32), True),
    ("ragged-1280x768x512", 1, (1280, 768, 512), (32, 32, 32), True),
    ("ragged-192x576x384", 1, (192, 576, 384), (24, 24, 16), True),
    ("ragged-batched-32x256x256", 256, (32, 256, 256), (4, 32, 16), True),
)


def schedule_sweep(
    arch: ArchSpec = SW26010PRO,
    cases=SCHEDULE_SWEEP_CASES,
    seed: int = 0,
    service=None,
) -> FigureResult:
    """Recipe vs rewrite-stack Gflops for every sweep point.

    Every optimized program is additionally replayed on the verifier's
    ``ScheduleMachine`` here — not just at admission time — so the
    committed snapshot carries an explicit zero-violation proof for the
    exact programs the numbers came from.  A seeded greedy
    pass-ordering search runs on the first ragged case to document the
    order the search selects.
    """
    from repro.core.options import SchedulePolicy, TileConfig
    from repro.schedule import greedy_pass_order, simulated_evaluator
    from repro.verify import replay_schedule

    sim = PerformanceSimulator(arch, service=service)
    result = FigureResult("schedule")
    for label, batch, (M, N, K), tile, ragged in cases:
        base = CompilerOptions.full()
        if batch > 1:
            base = base.with_(batch=True)
        if tile is not None:
            mt, nt, kt = tile
            base = base.with_(
                tile_config=TileConfig(
                    mt, nt, kt, buffer_depth=2, k_strip=arch.mesh_rows
                )
            )
        optimized = base.with_(schedule=SchedulePolicy(mode="optimize"))
        recipe_perf = sim.simulate(M, N, K, base, batch=batch)
        opt_perf = sim.simulate(M, N, K, optimized, batch=batch)
        program = sim.program_for(optimized, None)
        replay = replay_schedule(
            program.cpe_program, program.plan, program.spec
        )
        violations = len(replay.hazards) + len(replay.discipline)
        if replay.deadlock or not replay.completed:
            violations += 1
        result.rows.append(
            {
                "case": label,
                "shape": (f"b{batch}:" if batch > 1 else "") + f"{M}x{N}x{K}",
                "batch": batch,
                "M": M,
                "N": N,
                "K": K,
                "ragged": ragged,
                "tile": "64x64x32 (default)"
                if tile is None
                else f"{tile[0]}x{tile[1]}x{tile[2]}",
                "recipe_gflops": recipe_perf.gflops,
                "optimize_gflops": opt_perf.gflops,
                "ratio": opt_perf.gflops / recipe_perf.gflops,
                "bubble_recipe": recipe_perf.bubble_fraction,
                "bubble_optimize": opt_perf.bubble_fraction,
                "bubble_reduction": recipe_perf.bubble_fraction
                - opt_perf.bubble_fraction,
                "machine_violations": violations,
            }
        )
    ragged_rows = [r for r in result.rows if r["ragged"]]
    aligned_rows = [r for r in result.rows if not r["ragged"]]
    first_ragged = next(
        c for c in cases if c[4]
    )
    _, batch, shape, tile, _ = first_ragged
    search_base = CompilerOptions.full()
    if tile is not None:
        mt, nt, kt = tile
        search_base = search_base.with_(
            tile_config=TileConfig(
                mt, nt, kt, buffer_depth=2, k_strip=arch.mesh_rows
            )
        )
    searched = greedy_pass_order(
        simulated_evaluator(shape, search_base, arch=arch, service=service),
        seed=seed,
    )
    result.aggregate = {
        "cases": float(len(result.rows)),
        "ragged_improved": float(
            sum(1 for r in ragged_rows if r["ratio"] > 1.0)
        ),
        "min_aligned_ratio": min(r["ratio"] for r in aligned_rows),
        "mean_ragged_ratio": _mean([r["ratio"] for r in ragged_rows]),
        "min_ragged_bubble_reduction": min(
            r["bubble_reduction"] for r in ragged_rows
        ),
        "total_machine_violations": float(
            sum(r["machine_violations"] for r in result.rows)
        ),
        "search_seed": float(seed),
    }
    result.meta["searched_order"] = (
        list(searched.pass_names()) if searched is not None else []
    )
    return result


def schedule_bench_payload(
    result: FigureResult, arch: ArchSpec = SW26010PRO
) -> Dict[str, object]:
    """The committed ``BENCH_schedule.json`` snapshot."""
    return {
        "figure": "schedule",
        "arch": arch.name.lower(),
        "rows": result.rows,
        "aggregate": result.aggregate,
        "searched_order": result.meta.get("searched_order", []),
    }
