"""Seeded load generator for the compilation daemon.

Replays a deterministic multi-tenant request trace against a live
``swgemm serve`` daemon and reports serving-path metrics: p50/p99
latency, throughput, cache hit rate, per-tenant quota rejections, and
the single-flight dedup proof the daemon's whole design rests on::

    compiles executed  <  unique kernels requested  <=  requests sent

The trace is a pure function of its seed (``random.Random``, no wall
clock): identical seeds produce identical traces — the committed
``BENCH_serve.json`` records the trace digest so a rerun can prove it
replayed the same workload.  The measured latencies are of course not
deterministic; the trace section is.

Run it standalone against a self-hosted daemon::

    python -m repro.bench.loadgen --requests 1200 --tenants 4 --seed 2022

or against an already-running one with ``--host``/``--port`` or
``--socket-path``.  ``--assert-p99-ms`` / ``--assert-hit-rate`` turn it
into a CI gate.
"""

from __future__ import annotations

import argparse
import hashlib
import json
import random
import sys
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.serve.client import Client
from repro.serve.protocol import spec_and_options

#: Kernel descriptors of the mixed window.  ``hot`` descriptors are
#: prewarmed before the measured window (so the window serves them from
#: cache — that is what makes the dedup inequality *strict*); ``cold``
#: ones first appear inside the window and cost one compile each.
HOT_KERNELS: Tuple[Dict[str, Any], ...] = (
    {},
    {"use_asm": False},
    {"enable_rma": False},
    {"fusion": "epilogue", "epilogue_func": "sigmoid"},
    {"fusion": "prologue", "prologue_func": "quant"},
    {"batch": True},
)

COLD_KERNELS: Tuple[Dict[str, Any], ...] = (
    {"enable_latency_hiding": False},
    {"trans_a": True},
    {"trans_b": True},
    {"trans_a": True, "trans_b": True},
    # Same reconciled key as the default descriptor: --no-verify is
    # normalised out of cache keys, so this "distinct" descriptor must
    # NOT cost a compile — the key-collapse path in the proof.
    {"verify": False},
)

#: Small problem sizes for ``run`` ops (the toy arch executes these in
#: tens of milliseconds).
RUN_SHAPES: Tuple[Tuple[int, int, int], ...] = (
    (32, 32, 16),
    (48, 32, 16),
    (32, 48, 32),
)

_OPS = ("compile", "run", "verify", "stats", "ping")
_OP_WEIGHTS = (58, 22, 10, 7, 3)
_PRIORITIES = ("interactive", "batch")
_PRIORITY_WEIGHTS = (70, 30)


@dataclass(frozen=True)
class TraceConfig:
    """Shape of one seeded workload."""

    seed: int = 2022
    requests: int = 1200
    tenants: Tuple[str, ...] = ("alpha", "beta", "gamma", "delta")
    arch: str = "toy"
    #: fraction of kernel-descriptor picks drawn from the hot pool
    hot_fraction: float = 0.8
    #: tune ops replayed *after* the measured window (their candidate
    #: compiles must not pollute the dedup inequality)
    tunes: int = 2
    tune_budget: int = 2

    def __post_init__(self) -> None:
        if self.requests < 1:
            raise ValueError("requests must be >= 1")
        if not self.tenants:
            raise ValueError("at least one tenant is required")
        if not 0.0 <= self.hot_fraction <= 1.0:
            raise ValueError("hot_fraction must be in [0, 1]")


def generate_trace(config: TraceConfig) -> List[Dict[str, Any]]:
    """The mixed-window trace: a pure function of ``config``."""
    rng = random.Random(config.seed)
    trace: List[Dict[str, Any]] = []
    for index in range(config.requests):
        op = rng.choices(_OPS, weights=_OP_WEIGHTS)[0]
        entry: Dict[str, Any] = {
            "index": index,
            "tenant": rng.choice(config.tenants),
            "op": op,
            "priority": rng.choices(_PRIORITIES, weights=_PRIORITY_WEIGHTS)[0],
            "params": {},
        }
        if op in ("compile", "run", "verify"):
            pool = (
                HOT_KERNELS
                if rng.random() < config.hot_fraction
                else COLD_KERNELS
            )
            params: Dict[str, Any] = {"arch": config.arch, **rng.choice(pool)}
            if op == "run":
                M, N, K = rng.choice(RUN_SHAPES)
                params.update(M=M, N=N, K=K, seed=rng.randrange(1 << 16))
            entry["params"] = params
        trace.append(entry)
    return trace


def tune_trace(config: TraceConfig) -> List[Dict[str, Any]]:
    """The post-window tune ops (deterministic like the main trace)."""
    rng = random.Random(config.seed + 1)
    shapes = ((576, 1024, 512), (192, 576, 384), (1280, 768, 512))
    return [
        {
            "tenant": config.tenants[i % len(config.tenants)],
            "op": "tune",
            "priority": "batch",
            "params": {
                "arch": config.arch,
                "M": shape[0],
                "N": shape[1],
                "K": shape[2],
                "seed": rng.randrange(1 << 16),
                "budget": config.tune_budget,
            },
        }
        for i, shape in enumerate(shapes[: config.tunes])
    ]


def trace_digest(trace: Sequence[Dict[str, Any]]) -> str:
    """SHA-256 over the canonical trace JSON (the reproducibility proof)."""
    blob = json.dumps(list(trace), sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


def unique_kernel_keys(trace: Sequence[Dict[str, Any]]) -> List[str]:
    """Reconciled cache keys the trace's kernel ops will be served under.

    Runs the same wire codec and option reconciliation the daemon runs,
    so descriptors that normalise identically (``verify: false``) count
    as one kernel — exactly what the dedup inequality compares against.
    """
    from repro.core.passes import reconcile_options
    from repro.service import cache_key

    keys = set()
    for entry in trace:
        if entry["op"] not in ("compile", "run", "verify"):
            continue
        spec, options, arch = spec_and_options(entry["params"])
        keys.add(cache_key(spec, arch, reconcile_options(spec, options, arch)))
    return sorted(keys)


# ---------------------------------------------------------------------------
# Replay
# ---------------------------------------------------------------------------


@dataclass
class ReplayResult:
    """Everything one replay of a trace produced."""

    outcomes: List[Dict[str, Any]] = field(default_factory=list)
    wall_seconds: float = 0.0

    @property
    def ok(self) -> List[Dict[str, Any]]:
        return [o for o in self.outcomes if o["ok"]]

    def latencies_ms(self) -> List[float]:
        return sorted(o["latency_ms"] for o in self.outcomes)


def percentile(sorted_values: Sequence[float], q: float) -> float:
    """Nearest-rank percentile over pre-sorted values (0 when empty)."""
    if not sorted_values:
        return 0.0
    rank = max(1, int(-(-q * len(sorted_values) // 1)))  # ceil without math
    return float(sorted_values[min(rank, len(sorted_values)) - 1])


def replay(
    address, trace: Sequence[Dict[str, Any]], timeout: float = 120.0
) -> ReplayResult:
    """Replay a trace with one client thread per tenant.

    Each tenant's requests keep their trace order (a tenant is one
    synchronous caller); tenants run concurrently — which is what makes
    concurrent same-key requests actually collide on the daemon's
    single-flight path."""
    by_tenant: Dict[str, List[Dict[str, Any]]] = {}
    for entry in trace:
        by_tenant.setdefault(entry["tenant"], []).append(entry)
    result = ReplayResult()
    lock = threading.Lock()

    def worker(tenant: str, entries: List[Dict[str, Any]]) -> None:
        outcomes: List[Dict[str, Any]] = []
        with Client(address, tenant=tenant, timeout=timeout) as client:
            for entry in entries:
                started = time.perf_counter()
                response = client.request_response(
                    entry["op"], entry["params"], priority=entry["priority"]
                )
                latency_ms = 1e3 * (time.perf_counter() - started)
                outcome = {
                    "tenant": tenant,
                    "op": entry["op"],
                    "priority": entry["priority"],
                    "ok": response.ok,
                    "latency_ms": latency_ms,
                    "source": (response.meta or {}).get("source"),
                    "error": (response.error or {}).get("type"),
                }
                outcomes.append(outcome)
        with lock:
            result.outcomes.extend(outcomes)

    threads = [
        threading.Thread(target=worker, args=item, daemon=True)
        for item in by_tenant.items()
    ]
    started = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    result.wall_seconds = time.perf_counter() - started
    return result


# ---------------------------------------------------------------------------
# The benchmark
# ---------------------------------------------------------------------------


def run_serve_bench(
    config: Optional[TraceConfig] = None,
    address=None,
    workers: int = 4,
    quota_capacity: Optional[float] = 60.0,
    quota_refill: float = 30.0,
) -> Dict[str, Any]:
    """The full benchmark: warmup → snapshot → mixed window → snapshot
    → tune phase → quota burst probe, against ``address`` or a
    self-hosted in-process daemon.

    Returns the ``BENCH_serve.json`` payload.  The default quota sizing
    is the daemon's own default (60 tokens @ 30/s per tenant): generous
    enough that the paced mixed window is admitted in full, tight enough
    that the burst probe — one tenant firing cached compiles as fast as
    the socket allows — provably hits rejections.  Pass
    ``quota_capacity=None`` to disable quotas."""
    config = config or TraceConfig()
    handle = None
    if address is None:
        from repro.serve import QuotaConfig, ServeConfig, start_in_thread
        from repro.service import CompileService, ServiceConfig

        quota = (
            QuotaConfig(capacity=quota_capacity, refill_per_s=quota_refill)
            if quota_capacity is not None
            else None
        )
        service = CompileService(ServiceConfig(admission_threshold=2))
        handle = start_in_thread(
            service, ServeConfig(workers=workers, quota=quota)
        )
        address = handle.address
    try:
        return _run_phases(config, address)
    finally:
        if handle is not None:
            try:
                Client(address, tenant="loadgen-admin").shutdown()
            except Exception:
                pass
            handle.stop()


def _service_snapshot(client: Client) -> Dict[str, Any]:
    stats = client.stats()
    service = stats.get("service") or {}
    compiles = service.get("compiles") or {}
    return {
        "compiles": int(compiles.get("count", 0)),
        "deduped": int(service.get("single_flight_deduped", 0)),
        "requests": int(service.get("requests", 0)),
        "server": stats.get("server") or {},
    }


def _run_phases(config: TraceConfig, address) -> Dict[str, Any]:
    trace = generate_trace(config)
    digest = trace_digest(trace)
    unique_keys = unique_kernel_keys(trace)
    hot_keys = unique_kernel_keys(
        [
            {"op": "compile", "params": {"arch": config.arch, **kernel}}
            for kernel in HOT_KERNELS
        ]
    )

    admin = Client(address, tenant="loadgen-admin", timeout=300.0)
    with admin:
        # Phase 1 — prewarm the hot pool (and the daemon's standard set)
        # so the measured window serves them from cache.
        for kernel in HOT_KERNELS:
            admin.compile({"arch": config.arch, **kernel})
        before = _service_snapshot(admin)

        # Phase 2 — the measured mixed window.
        result = replay(address, trace)
        after = _service_snapshot(admin)

        # Phase 3 — tune ops, after the dedup snapshot on purpose: each
        # tune compiles candidate configs, which would otherwise drown
        # the inequality.
        tune_outcomes = []
        for entry in tune_trace(config):
            started = time.perf_counter()
            response = admin.request_response(
                entry["op"], entry["params"], priority=entry["priority"]
            )
            tune_outcomes.append(
                {
                    "ok": response.ok,
                    "latency_ms": 1e3 * (time.perf_counter() - started),
                    "shape": "{M}x{N}x{K}".format(**entry["params"]),
                    "error": (response.error or {}).get("type"),
                }
            )

    # Phase 4 — quota burst probe: one tenant fires cached compiles as
    # fast as the socket allows.  Under the default token bucket the
    # burst outruns the refill, so rejections here prove per-tenant
    # quotas are enforced without touching the measured window.
    burst_requests = 120
    burst_rejected = 0
    with Client(address, tenant="burst", timeout=300.0) as burst:
        for _ in range(burst_requests):
            response = burst.request_response(
                "compile", {"arch": config.arch}
            )
            if (
                not response.ok
                and (response.error or {}).get("type") == "QuotaExceededError"
            ):
                burst_rejected += 1

    compiles_window = after["compiles"] - before["compiles"]
    kernel_ops = [
        o for o in result.outcomes if o["op"] in ("compile", "run", "verify")
    ]
    kernel_ok = [o for o in kernel_ops if o["ok"]]
    sources: Dict[str, int] = {}
    for outcome in kernel_ok:
        source = outcome["source"] or "unknown"
        sources[source] = sources.get(source, 0) + 1
    hits = sum(
        count
        for source, count in sources.items()
        if source in ("memory", "disk", "deduped")
    )
    hit_rate = hits / len(kernel_ok) if kernel_ok else 0.0

    latencies = result.latencies_ms()
    by_op: Dict[str, Dict[str, float]] = {}
    for op in sorted({o["op"] for o in result.outcomes}):
        op_lat = sorted(
            o["latency_ms"] for o in result.outcomes if o["op"] == op
        )
        by_op[op] = {
            "count": len(op_lat),
            "p50_ms": round(percentile(op_lat, 0.50), 3),
            "p99_ms": round(percentile(op_lat, 0.99), 3),
        }
    quota_by_tenant: Dict[str, int] = {}
    for outcome in result.outcomes:
        if outcome["error"] == "QuotaExceededError":
            quota_by_tenant[outcome["tenant"]] = (
                quota_by_tenant.get(outcome["tenant"], 0) + 1
            )
    quota_rejected = sum(quota_by_tenant.values())
    errors = sum(
        1
        for o in result.outcomes
        if not o["ok"] and o["error"] != "QuotaExceededError"
    )

    return {
        "figure": "serve",
        "arch": config.arch,
        "trace": {
            "seed": config.seed,
            "requests": config.requests,
            "tenants": list(config.tenants),
            "arch": config.arch,
            "digest": digest,
            "unique_kernel_keys": len(unique_keys),
            "hot_kernel_keys": len(hot_keys),
            "ops": {
                op: sum(1 for e in trace if e["op"] == op)
                for op in sorted({e["op"] for e in trace})
            },
            "priorities": {
                p: sum(1 for e in trace if e["priority"] == p)
                for p in _PRIORITIES
            },
        },
        "dedup": {
            "requests_window": len(trace),
            "unique_keys_window": len(unique_keys),
            "compiles_executed_window": compiles_window,
            "single_flight_deduped_total": after["deduped"],
            "proof_strict": compiles_window < len(unique_keys) <= len(trace),
        },
        "latency_ms": {
            "count": len(latencies),
            "p50": round(percentile(latencies, 0.50), 3),
            "p90": round(percentile(latencies, 0.90), 3),
            "p99": round(percentile(latencies, 0.99), 3),
            "max": round(latencies[-1], 3) if latencies else 0.0,
            "by_op": by_op,
        },
        "throughput_rps": round(
            len(result.outcomes) / result.wall_seconds, 1
        )
        if result.wall_seconds
        else 0.0,
        "wall_seconds": round(result.wall_seconds, 3),
        "cache": {"hit_rate": round(hit_rate, 4), "sources": sources},
        "quota": {
            "rejected_window": quota_rejected,
            "by_tenant": quota_by_tenant,
            "burst_requests": burst_requests,
            "burst_rejected": burst_rejected,
            "enforced": burst_rejected > 0,
        },
        "errors": errors,
        "tune": tune_outcomes,
    }


# ---------------------------------------------------------------------------
# The overload scenario
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class OverloadScenario:
    """Shape of the seeded open-loop overload spike.

    Unlike the mixed window (closed-loop: each tenant waits for its
    previous response), the spike is **open-loop**: every flood request
    gets its own connection and fires at a seeded arrival offset whether
    or not earlier requests have been answered — which is what real
    overload looks like, and what a closed-loop generator can never
    produce (it self-throttles exactly when the server slows down)."""

    seed: int = 2022
    #: flood requests (batch/warmup-priority ``run`` ops) in the spike
    flood_requests: int = 60
    #: seconds over which the seeded arrival offsets are spread
    flood_window_s: float = 1.0
    #: fraction of flood requests sent at ``warmup`` priority — queued
    #: warmup work is what batch arrivals shed when the queue fills
    warmup_fraction: float = 0.25
    #: end-to-end budget each flood request carries; ``None``
    #: self-calibrates to ~2.5 measured service times, so the
    #: expiry proof holds on fast and slow machines alike (a fixed
    #: budget is either never or always exceeded depending on host speed)
    flood_deadline_ms: Optional[float] = None
    #: interactive cached-compile probes fired during and after the spike
    probes: int = 25
    #: spacing of the interactive probes
    probe_interval_s: float = 0.08
    #: daemon knobs under test
    workers: int = 1
    max_queue_depth: int = 8
    brownout_enter_ms: float = 150.0
    brownout_exit_ms: float = 75.0
    brownout_dwell_s: float = 0.75
    #: problem size of one flood ``run`` (~100 ms on the toy arch — the
    #: spike outruns a one-worker daemon roughly 6x)
    flood_shape: Tuple[int, int, int] = (64, 64, 32)
    arch: str = "toy"
    #: seconds to wait for the daemon to report healthy again
    recovery_timeout_s: float = 15.0

    def __post_init__(self) -> None:
        if self.flood_requests < 1:
            raise ValueError("flood_requests must be >= 1")
        if self.flood_window_s <= 0:
            raise ValueError("flood_window_s must be > 0")
        if not 0.0 <= self.warmup_fraction <= 1.0:
            raise ValueError("warmup_fraction must be in [0, 1]")


#: Kernel descriptors used only by the brownout cold-probe — they must
#: not be prewarmed anywhere in the overload scenario.
_BROWNOUT_COLD_KERNELS: Tuple[Dict[str, Any], ...] = (
    {"trans_a": True},
    {"trans_b": True},
    {"trans_a": True, "trans_b": True},
)


def overload_flood_plan(config: OverloadScenario) -> List[Dict[str, Any]]:
    """The seeded open-loop spike: arrival offsets (seconds, sorted
    ascending) and the priority class of each arrival — a pure function
    of the scenario, like :func:`generate_trace`."""
    rng = random.Random(config.seed)
    offsets = sorted(
        rng.uniform(0.0, config.flood_window_s)
        for _ in range(config.flood_requests)
    )
    return [
        {
            "offset_s": offset,
            "priority": (
                "warmup"
                if rng.random() < config.warmup_fraction
                else "batch"
            ),
        }
        for offset in offsets
    ]


def run_overload_bench(config: Optional[OverloadScenario] = None) -> Dict[str, Any]:
    """Drive a seeded arrival spike into an overload-protected daemon.

    Self-hosts a deliberately undersized daemon (``workers=1``, bounded
    queue, brownout enabled, quotas off so only overload mechanisms
    answer) and produces the ``BENCH_serve_overload.json`` payload with
    three structural proofs:

    * **zero expired dispatches** — every request whose deadline died
      carries no ``exec_ms`` in its response meta, i.e. no worker ever
      executed it;
    * **interactive latency bounded** — cached interactive probes keep
      a bounded p99 while the batch flood is shed around them;
    * **brownout entry and exit** — the hysteresis controller entered
      under the spike and recovered to healthy after it.
    """
    from repro.serve import (
        OverloadConfig as ServeOverloadConfig,
        ServeConfig,
        start_in_thread,
    )
    from repro.service import CompileService, ServiceConfig

    config = config or OverloadScenario()
    overload = ServeOverloadConfig(
        max_queue_depth=config.max_queue_depth,
        brownout_enter_ms=config.brownout_enter_ms,
        brownout_exit_ms=config.brownout_exit_ms,
        brownout_dwell_s=config.brownout_dwell_s,
    )
    service = CompileService(ServiceConfig(admission_threshold=2))
    handle = start_in_thread(
        service,
        ServeConfig(workers=config.workers, quota=None, overload=overload),
    )
    address = handle.address
    try:
        return _run_overload_phases(config, address, overload)
    finally:
        try:
            Client(address, tenant="overload-admin").shutdown()
        except Exception:
            pass
        handle.stop()


def _outcome(response, latency_ms: float) -> Dict[str, Any]:
    meta = response.meta or {}
    return {
        "ok": response.ok,
        "latency_ms": round(latency_ms, 3),
        "error": (response.error or {}).get("type"),
        "retry_after_s": (response.error or {}).get("retry_after_s"),
        # Present only when a worker actually executed the handler —
        # the signal behind the zero-expired-dispatches proof.
        "executed": "exec_ms" in meta,
    }


def _run_overload_phases(
    config: OverloadScenario, address, overload
) -> Dict[str, Any]:
    warm_kernel = {"arch": config.arch}
    plan = overload_flood_plan(config)

    admin = Client(address, tenant="overload-admin", timeout=120.0)
    with admin:
        # Phase 1 — prewarm the one kernel the flood and the probes use,
        # so flood slowness is pure execution (not compilation) and the
        # interactive probes are cache hits brownout keeps serving.
        # Measure the service time of one flood op while we are at it:
        # the deadline calibrates to it, so the expiry proof holds on
        # fast and slow hosts alike.
        admin.compile(warm_kernel)
        M, N, K = config.flood_shape
        service_samples = []
        for _ in range(3):
            started = time.perf_counter()
            admin.request(
                "run", {"arch": config.arch, "M": M, "N": N, "K": K}
            )
            service_samples.append(1e3 * (time.perf_counter() - started))
        service_ms = sorted(service_samples)[1]  # median of three
        deadline_ms = config.flood_deadline_ms
        if deadline_ms is None:
            deadline_ms = max(50.0, 2.5 * service_ms)
        health_before = admin.health()

        flood_outcomes: List[Optional[Dict[str, Any]]] = [None] * len(plan)
        # Flood threads + the probe thread + this coordinator all
        # release together, so offset 0.0 means "the moment the spike
        # starts", not "whenever thread i got scheduled".
        barrier = threading.Barrier(len(plan) + 2)
        spike_clock: Dict[str, float] = {}

        def flood_one(i: int, entry: Dict[str, Any]) -> None:
            # Open loop: every request owns a connection and a thread,
            # and fires at its seeded offset regardless of how the
            # daemon is coping — a blocked request never delays the next
            # arrival (the self-throttling a closed-loop generator
            # cannot avoid).  Connections are opened before the barrier
            # so connect() cost cannot skew arrivals.
            with Client(
                address, tenant="flood", timeout=60.0, retry=False
            ) as client:
                barrier.wait()
                delay = entry["offset_s"] - (
                    time.perf_counter() - spike_clock["start"]
                )
                if delay > 0:
                    time.sleep(delay)
                started = time.perf_counter()
                response = client.request_response(
                    "run",
                    {"arch": config.arch, "M": M, "N": N, "K": K},
                    priority=entry["priority"],
                    deadline_ms=deadline_ms,
                )
                outcome = _outcome(
                    response, 1e3 * (time.perf_counter() - started)
                )
                outcome["priority"] = entry["priority"]
                flood_outcomes[i] = outcome

        probe_outcomes: List[Dict[str, Any]] = []

        def probe() -> None:
            # Interactive cached compiles, evenly spaced across the
            # spike and its tail — the latency the flood must not hurt.
            with Client(
                address, tenant="probe", timeout=60.0, retry=False
            ) as client:
                barrier.wait()
                for _ in range(config.probes):
                    started = time.perf_counter()
                    response = client.request_response(
                        "compile", warm_kernel, priority="interactive"
                    )
                    probe_outcomes.append(
                        _outcome(
                            response, 1e3 * (time.perf_counter() - started)
                        )
                    )
                    time.sleep(config.probe_interval_s)

        # Phase 2 — the spike.
        flood_threads = [
            threading.Thread(target=flood_one, args=(i, entry), daemon=True)
            for i, entry in enumerate(plan)
        ]
        probe_thread = threading.Thread(target=probe, daemon=True)
        for thread in flood_threads:
            thread.start()
        probe_thread.start()
        spike_clock["start"] = time.perf_counter()
        barrier.wait()

        # Phase 3 — watch the health surface flip to brownout, then
        # probe the degraded tier: a warm compile must still be served,
        # a cold one must fast-fail with DegradedModeError.
        states_seen: List[str] = []
        brownout_warm: Optional[Dict[str, Any]] = None
        brownout_cold: List[Dict[str, Any]] = []
        watch_deadline = time.perf_counter() + config.flood_window_s + 10.0
        while time.perf_counter() < watch_deadline:
            state = admin.health()["state"]
            if not states_seen or states_seen[-1] != state:
                states_seen.append(state)
            if state == "brownout" and brownout_warm is None:
                started = time.perf_counter()
                response = admin.request_response(
                    "compile", warm_kernel, priority="interactive"
                )
                brownout_warm = _outcome(
                    response, 1e3 * (time.perf_counter() - started)
                )
                for kernel in _BROWNOUT_COLD_KERNELS:
                    response = admin.request_response(
                        "compile",
                        {"arch": config.arch, **kernel},
                        priority="interactive",
                    )
                    brownout_cold.append(_outcome(response, 0.0))
            if brownout_warm is not None and not any(
                thread.is_alive() for thread in flood_threads
            ):
                break
            time.sleep(0.05)
        for thread in flood_threads:
            thread.join(timeout=60.0)
        probe_thread.join(timeout=60.0)

        # Phase 4 — recovery: with the spike gone, idle observations
        # decay the EWMA below the exit threshold; wait for healthy.
        recovery_started = time.perf_counter()
        recovered = False
        while time.perf_counter() - recovery_started < config.recovery_timeout_s:
            if admin.health()["state"] == "healthy":
                recovered = True
                break
            time.sleep(0.05)
        recovery_s = time.perf_counter() - recovery_started

        health_after = admin.health()
        stats = admin.stats()["server"]

    flood_done = [o for o in flood_outcomes if o is not None]
    counters = stats["counters"]
    queue_stats = stats["pool"]["queue"]
    brownout_stats = (stats["overload"] or {}).get("brownout") or {}

    def error_counts(outcomes: Sequence[Dict[str, Any]]) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for outcome in outcomes:
            if not outcome["ok"]:
                name = outcome["error"] or "unknown"
                counts[name] = counts.get(name, 0) + 1
        return counts

    expired_total = (
        counters["deadline_expired_queue"]
        + counters["deadline_expired_dispatch"]
    )
    expired_executed = sum(
        1
        for o in flood_done
        if o["error"] == "DeadlineExceededError" and o["executed"]
    )
    probe_latencies = sorted(
        o["latency_ms"] for o in probe_outcomes if o["ok"]
    )
    cold_rejected = sum(
        1 for o in brownout_cold if o["error"] == "DegradedModeError"
    )
    retry_hints = [
        o["retry_after_s"]
        for o in flood_done
        if o["retry_after_s"] is not None
    ]

    return {
        "figure": "serve_overload",
        "arch": config.arch,
        "scenario": {
            "seed": config.seed,
            "flood_requests": config.flood_requests,
            "flood_window_s": config.flood_window_s,
            "warmup_fraction": config.warmup_fraction,
            "flood_deadline_ms": round(deadline_ms, 3),
            "deadline_calibrated": config.flood_deadline_ms is None,
            "service_time_ms": round(service_ms, 3),
            "flood_shape": list(config.flood_shape),
            "probes": config.probes,
            "workers": config.workers,
            "max_queue_depth": config.max_queue_depth,
            "brownout_enter_ms": config.brownout_enter_ms,
            "brownout_exit_ms": config.brownout_exit_ms,
            "brownout_dwell_s": config.brownout_dwell_s,
            "arrival_digest": trace_digest(
                [
                    {
                        "offset_us": int(1e6 * e["offset_s"]),
                        "priority": e["priority"],
                    }
                    for e in plan
                ]
            ),
        },
        "flood": {
            "sent": len(flood_done),
            "ok": sum(1 for o in flood_done if o["ok"]),
            "errors": error_counts(flood_done),
            "priorities": {
                p: sum(1 for e in plan if e["priority"] == p)
                for p in ("batch", "warmup")
            },
        },
        "interactive": {
            "probes": len(probe_outcomes),
            "ok": len(probe_latencies),
            "errors": error_counts(probe_outcomes),
            "p50_ms": round(percentile(probe_latencies, 0.50), 3),
            "p99_ms": round(percentile(probe_latencies, 0.99), 3),
            "max_ms": round(probe_latencies[-1], 3) if probe_latencies else 0.0,
        },
        "deadlines": {
            "expired_in_queue": counters["deadline_expired_queue"],
            "expired_at_dispatch": counters["deadline_expired_dispatch"],
            "expired_total": expired_total,
            "expired_executed": expired_executed,
            "proof_zero_expired_dispatched": (
                expired_total > 0 and expired_executed == 0
            ),
        },
        "shedding": {
            "rejected": counters["overload_rejected"],
            "shed": counters["overload_shed"],
            "queue": {
                "caps": queue_stats["caps"],
                "high_water": queue_stats["high_water"],
                "rejected": queue_stats["rejected"],
                "shed": queue_stats["shed"],
                "expired": queue_stats["expired"],
            },
            "retry_after_s": {
                "hints": len(retry_hints),
                "min": round(min(retry_hints), 3) if retry_hints else None,
                "max": round(max(retry_hints), 3) if retry_hints else None,
            },
        },
        "brownout": {
            "entered": brownout_stats.get("entered", 0),
            "exited": brownout_stats.get("exited", 0),
            "states_seen": states_seen,
            "state_before": health_before["state"],
            "state_after": health_after["state"],
            "recovered": recovered,
            "recovery_s": round(recovery_s, 3),
            "warm_served": brownout_warm,
            "cold_probes": len(brownout_cold),
            "cold_rejected": cold_rejected,
            "warm_served_counter": counters["brownout_warm_served"],
            "rejected_counter": counters["brownout_rejected"],
            "transitions": brownout_stats.get("transitions", []),
        },
        "proofs": {
            "zero_expired_dispatched": (
                expired_total > 0 and expired_executed == 0
            ),
            "interactive_p99_bounded": bool(probe_latencies),
            "brownout_entered": brownout_stats.get("entered", 0) >= 1,
            "brownout_recovered": recovered,
        },
    }


# ---------------------------------------------------------------------------
# CLI
# ---------------------------------------------------------------------------


def _main_overload(args) -> int:
    """The ``--scenario overload`` leg of :func:`main`."""
    scenario = OverloadScenario(
        seed=args.seed,
        flood_requests=args.flood_requests,
        flood_window_s=args.flood_window,
        flood_deadline_ms=args.flood_deadline_ms,
        max_queue_depth=args.max_queue_depth,
        brownout_enter_ms=args.brownout_enter_ms,
        brownout_exit_ms=args.brownout_exit_ms,
        arch=args.arch,
    )
    payload = run_overload_bench(scenario)

    flood = payload["flood"]
    deadlines = payload["deadlines"]
    interactive = payload["interactive"]
    brownout = payload["brownout"]
    print(
        f"spike: {flood['sent']} open-loop requests over "
        f"{payload['scenario']['flood_window_s']}s against "
        f"{payload['scenario']['workers']} worker(s); "
        f"{flood['ok']} served, errors {flood['errors']}"
    )
    print(
        f"deadlines: {deadlines['expired_in_queue']} expired in queue, "
        f"{deadlines['expired_at_dispatch']} at dispatch, "
        f"{deadlines['expired_executed']} executed by a worker "
        f"({'OK' if deadlines['proof_zero_expired_dispatched'] else 'VIOLATED'})"
    )
    print(
        f"interactive probes: {interactive['ok']}/{interactive['probes']} ok, "
        f"p50 {interactive['p50_ms']} ms, p99 {interactive['p99_ms']} ms"
    )
    print(
        f"brownout: entered {brownout['entered']}x, exited "
        f"{brownout['exited']}x, states {'>'.join(brownout['states_seen'])}, "
        f"recovery {brownout['recovery_s']}s, warm served "
        f"{brownout['warm_served_counter']}, cold rejected "
        f"{brownout['rejected_counter']}"
    )
    print(
        f"shedding: {payload['shedding']['rejected']} rejected, "
        f"{payload['shedding']['shed']} shed, queue high-water "
        f"{payload['shedding']['queue']['high_water']} "
        f"(caps {payload['shedding']['queue']['caps']})"
    )
    print(
        f"arrival digest {payload['scenario']['arrival_digest'][:16]} "
        f"(seed {args.seed})"
    )

    output = args.output
    if output == "BENCH_serve.json":  # scenario-specific default
        output = "BENCH_serve_overload.json"
    if output != "-":
        from repro.bench.harness import write_bench_file

        path = write_bench_file(output, payload)
        print(f"wrote {path}")

    failed = False
    if args.assert_proofs:
        for name, held in payload["proofs"].items():
            if not held:
                print(f"FAIL: proof {name} violated", file=sys.stderr)
                failed = True
    if (
        args.assert_interactive_p99_ms is not None
        and interactive["p99_ms"] > args.assert_interactive_p99_ms
    ):
        print(
            f"FAIL: interactive p99 {interactive['p99_ms']} ms exceeds "
            f"{args.assert_interactive_p99_ms} ms",
            file=sys.stderr,
        )
        failed = True
    return 1 if failed else 0


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench.loadgen",
        description="Replay a seeded multi-tenant trace against the "
        "compilation daemon and report serving metrics.",
    )
    parser.add_argument(
        "--scenario", choices=("mixed", "overload"), default="mixed",
        help="'mixed': closed-loop multi-tenant window (BENCH_serve); "
        "'overload': open-loop arrival spike against a bounded, "
        "brownout-enabled daemon (BENCH_serve_overload)",
    )
    parser.add_argument("--seed", type=int, default=2022)
    parser.add_argument("--requests", type=int, default=1200)
    parser.add_argument(
        "--tenants", type=int, default=4,
        help="number of concurrent tenants (default: 4)",
    )
    parser.add_argument("--arch", default="toy",
                        choices=("toy", "sw26010", "sw26010pro"))
    parser.add_argument("--tunes", type=int, default=2)
    parser.add_argument(
        "--host", default=None,
        help="replay against a running daemon instead of self-hosting",
    )
    parser.add_argument("--port", type=int, default=None)
    parser.add_argument("--socket-path", default=None, metavar="PATH")
    parser.add_argument(
        "--workers", type=int, default=4,
        help="worker threads of the self-hosted daemon (default: 4)",
    )
    parser.add_argument(
        "--output", default="BENCH_serve.json", metavar="FILE",
        help="payload destination at the repo root ('-' prints only)",
    )
    parser.add_argument(
        "--assert-p99-ms", type=float, default=None, metavar="MS",
        help="fail (exit 1) if overall p99 latency exceeds MS",
    )
    parser.add_argument(
        "--assert-hit-rate", type=float, default=None, metavar="FRACTION",
        help="fail (exit 1) if the cache hit rate is below FRACTION",
    )
    parser.add_argument(
        "--flood-requests", type=int, default=60,
        help="[overload] spike size (default: 60)",
    )
    parser.add_argument(
        "--flood-window", type=float, default=1.0, metavar="SECONDS",
        help="[overload] spike arrival window (default: 1.0)",
    )
    parser.add_argument(
        "--flood-deadline-ms", type=float, default=None, metavar="MS",
        help="[overload] per-request end-to-end budget (default: "
        "self-calibrated to ~2.5 measured service times)",
    )
    parser.add_argument(
        "--max-queue-depth", type=int, default=8, metavar="N",
        help="[overload] daemon queue bound under test (default: 8)",
    )
    parser.add_argument(
        "--brownout-enter-ms", type=float, default=150.0, metavar="MS",
        help="[overload] brownout entry threshold (default: 150)",
    )
    parser.add_argument(
        "--brownout-exit-ms", type=float, default=75.0, metavar="MS",
        help="[overload] brownout exit threshold (default: 75)",
    )
    parser.add_argument(
        "--assert-interactive-p99-ms", type=float, default=None, metavar="MS",
        help="[overload] fail (exit 1) if interactive-probe p99 exceeds MS",
    )
    parser.add_argument(
        "--assert-proofs", action="store_true",
        help="[overload] fail (exit 1) unless every structural proof "
        "holds: >0 deadline expirations, 0 expired dispatches, brownout "
        "entered and recovered",
    )
    args = parser.parse_args(argv)

    if args.scenario == "overload":
        return _main_overload(args)

    tenant_names = ("alpha", "beta", "gamma", "delta", "epsilon", "zeta",
                    "eta", "theta")
    config = TraceConfig(
        seed=args.seed,
        requests=args.requests,
        tenants=tenant_names[: max(1, min(args.tenants, len(tenant_names)))],
        arch=args.arch,
        tunes=args.tunes,
    )
    address = None
    if args.socket_path:
        address = args.socket_path
    elif args.host or args.port:
        address = (args.host or "127.0.0.1", args.port or 7070)
    payload = run_serve_bench(config, address=address, workers=args.workers)

    lat = payload["latency_ms"]
    print(
        f"replayed {payload['trace']['requests']} requests from "
        f"{len(payload['trace']['tenants'])} tenant(s) in "
        f"{payload['wall_seconds']}s ({payload['throughput_rps']} req/s)"
    )
    print(
        f"latency p50 {lat['p50']} ms, p90 {lat['p90']} ms, "
        f"p99 {lat['p99']} ms, max {lat['max']} ms"
    )
    dedup = payload["dedup"]
    print(
        f"dedup proof: {dedup['compiles_executed_window']} compiles < "
        f"{dedup['unique_keys_window']} unique kernels <= "
        f"{dedup['requests_window']} requests "
        f"({'OK' if dedup['proof_strict'] else 'VIOLATED'})"
    )
    print(
        f"cache hit rate {payload['cache']['hit_rate']:.1%} "
        f"{payload['cache']['sources']}; "
        f"quota window/burst rejected "
        f"{payload['quota']['rejected_window']}/"
        f"{payload['quota']['burst_rejected']}; "
        f"errors {payload['errors']}"
    )
    print(f"trace digest {payload['trace']['digest'][:16]} (seed {args.seed})")

    if args.output != "-":
        from repro.bench.harness import write_bench_file

        path = write_bench_file(args.output, payload)
        print(f"wrote {path}")

    failed = False
    if not dedup["proof_strict"]:
        print("FAIL: single-flight dedup inequality violated", file=sys.stderr)
        failed = True
    if args.assert_p99_ms is not None and lat["p99"] > args.assert_p99_ms:
        print(
            f"FAIL: p99 {lat['p99']} ms exceeds {args.assert_p99_ms} ms",
            file=sys.stderr,
        )
        failed = True
    if (
        args.assert_hit_rate is not None
        and payload["cache"]["hit_rate"] < args.assert_hit_rate
    ):
        print(
            f"FAIL: hit rate {payload['cache']['hit_rate']:.3f} below "
            f"{args.assert_hit_rate}",
            file=sys.stderr,
        )
        failed = True
    return 1 if failed else 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
