"""Benchmark harness: regenerates every evaluation figure of the paper.

* :mod:`repro.bench.shapes` — the shape lists of Figs. 13-16;
* :mod:`repro.bench.harness` — per-figure drivers returning structured
  rows (simulated swgemm variants vs the xMath model);
* :mod:`repro.bench.report` — table rendering and paper-vs-measured
  summaries (what EXPERIMENTS.md records).
"""

from repro.bench.harness import (
    fig13_breakdown,
    fig14_nonsquare,
    fig15_batched,
    fig16_fusion,
    multiarch_bench_payload,
    multiarch_matrix,
)
from repro.bench.shapes import (
    FIG13_SQUARE_SHAPES,
    FIG14_NONSQUARE_SHAPES,
    FIG15_BATCHED,
    FIG16_FUSION_SHAPES,
)

__all__ = [
    "fig13_breakdown",
    "fig14_nonsquare",
    "fig15_batched",
    "fig16_fusion",
    "multiarch_bench_payload",
    "multiarch_matrix",
    "FIG13_SQUARE_SHAPES",
    "FIG14_NONSQUARE_SHAPES",
    "FIG15_BATCHED",
    "FIG16_FUSION_SHAPES",
]
