"""The evaluation shapes (§8).

The paper does not tabulate its shape lists; they are reconstructed from
the constraints and callouts in the text:

* §8.1: square shapes with M, N multiples of 512 and K multiples of 256,
  twelve bars per variant in Fig. 13, the rightmost being 15360³; §8.2
  names 6144³, 7680³, 10240³ and 15360³ explicitly;
* §8.2/Fig. 14: 36 non-square shapes; both systems peak at
  4096×16384×16384; xMath exceeds 93% "multiple times when the size of
  the k dimension is 16384"; degradation is "observed for nine times,
  each with the k dimension not being a power of two", worst at
  8192×8192×15360 (42.25%);
* §8.3/Fig. 15: four batch sizes (2, 4, 8, 16), six shapes each, "the
  sizes of the k dimension are selected as powers of two or not evenly";
  the best point is batch 2 with 4096×4096×16384;
* §8.4/Fig. 16: twelve shapes per fusion pattern; 10752³ and
  8192×16384×8192 are named as cases where the unfused baseline wins the
  prologue comparison.
"""

from __future__ import annotations

from typing import List, Tuple

Shape = Tuple[int, int, int]

#: Fig. 13 — twelve square shapes (K non-powers-of-two included so the
#: xMath degradation cases 6144/7680/10240/15360 appear, as §8.2 reports).
FIG13_SQUARE_SHAPES: List[Shape] = [
    (n, n, n)
    for n in (
        1024, 2048, 3072, 4096, 5120, 6144,
        7680, 8192, 10240, 12288, 14336, 15360,
    )
]

#: Fig. 14 — 36 non-square shapes.  27 have power-of-two K; the nine
#: shapes with large non-power-of-two K are the degradation cases.
FIG14_NONSQUARE_SHAPES: List[Shape] = [
    # K = 16384 block: where xMath repeatedly exceeds 93% of peak.
    (4096, 16384, 16384),
    (8192, 8192, 16384),
    (16384, 4096, 16384),
    (2048, 8192, 16384),
    (8192, 16384, 16384),
    (16384, 16384, 16384),
    (16384, 2048, 16384),
    # K = 8192.
    (4096, 8192, 8192),
    (8192, 4096, 8192),
    (16384, 8192, 8192),
    (2048, 4096, 8192),
    (8192, 2048, 8192),
    (4096, 16384, 8192),
    # K = 4096.
    (8192, 8192, 4096),
    (16384, 8192, 4096),
    (4096, 2048, 4096),
    (2048, 16384, 4096),
    (16384, 16384, 4096),
    # K = 2048.
    (8192, 4096, 2048),
    (16384, 16384, 2048),
    (4096, 8192, 2048),
    # K = 1024.
    (8192, 8192, 1024),
    (16384, 8192, 1024),
    (4096, 4096, 1024),
    # K = 5120 (non-pow2, moderate size: mild degradation only).
    (8192, 8192, 5120),
    (4096, 4096, 5120),
    (2048, 8192, 5120),
    # --- the nine heavy-degradation shapes: large non-pow2 K ------------
    (8192, 8192, 15360),  # the paper's 42.25% case
    (4096, 8192, 15360),
    (16384, 4096, 15360),
    (8192, 4096, 10240),
    (4096, 4096, 10240),
    (16384, 8192, 10240),
    (8192, 16384, 10240),
    (8192, 8192, 12288),
    (4096, 16384, 12288),
]

#: Shapes whose K is a large non-power-of-two (the Fig. 14 degradation set).
FIG14_DEGRADED = [s for s in FIG14_NONSQUARE_SHAPES if s[2] in (10240, 12288, 15360)]

#: Fig. 15 — batched GEMM: four batch sizes × six shapes.
FIG15_BATCH_SIZES: List[int] = [2, 4, 8, 16]
FIG15_SHAPES: List[Shape] = [
    (1024, 1024, 8192),
    (2048, 2048, 4096),
    (4096, 4096, 16384),  # the 90.43%-of-peak best point at batch 2
    (1024, 1024, 5120),
    (2048, 2048, 10240),
    (4096, 4096, 8192),
]
FIG15_BATCHED: List[Tuple[int, Shape]] = [
    (batch, shape) for batch in FIG15_BATCH_SIZES for shape in FIG15_SHAPES
]

#: Fig. 16 — fusion patterns: twelve shapes, evaluated once with the
#: quantisation prologue and once with the activation epilogue.
FIG16_FUSION_SHAPES: List[Shape] = [
    (2048, 2048, 2048),
    (4096, 4096, 4096),
    (6144, 6144, 6144),
    (8192, 8192, 8192),
    (10752, 10752, 10752),  # recomputation along j makes the baseline win
    (12288, 12288, 12288),
    (4096, 8192, 4096),
    (8192, 16384, 8192),  # named baseline win for the prologue pattern
    (8192, 4096, 8192),
    (4096, 16384, 16384),
    (8192, 8192, 5120),
    (16384, 8192, 8192),
]


def validate_shape(shape: Shape) -> None:
    """Every evaluation shape obeys §8.1's divisibility constraints."""
    M, N, K = shape
    assert M % 512 == 0 and N % 512 == 0, f"{shape}: M,N must be multiples of 512"
    assert K % 256 == 0, f"{shape}: K must be a multiple of 256"


for _shape in (
    FIG13_SQUARE_SHAPES + FIG14_NONSQUARE_SHAPES + FIG15_SHAPES + FIG16_FUSION_SHAPES
):
    validate_shape(_shape)
