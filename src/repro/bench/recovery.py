"""Crash-recovery benchmark for the serving daemon.

Two questions, one payload (``BENCH_serve_recovery.json``):

1. **What does subprocess isolation cost?**  The same seeded trace is
   replayed against two self-hosted daemons — one with the in-thread
   compile path, one with ``--isolation process`` — and the p50/p99
   windows are reported side by side.  The overhead is dominated by the
   pipe round-trip per *miss*; hits never touch a worker, so a warm
   daemon pays close to nothing.

2. **How fast does a killed daemon recover, and does it lose work?**
   A real ``swgemm serve`` subprocess is booted with a journal, a set
   of compiles is acknowledged, one request is wedged in flight on a
   hang kernel, and the daemon is ``SIGKILL``ed.  The journal is then
   scanned non-mutatingly (the evidence), the daemon is restarted on
   the same directories, and the payload records the boot-to-replayed
   window plus the zero-lost-acknowledged-work check: every key acked
   before the kill must be served from cache after it.

Run it standalone::

    python -m repro.bench.recovery --requests 300 --seed 2022

``--assert-recovery-s`` and ``--assert-zero-lost`` turn it into the CI
chaos gate; ``--work-dir`` pins the crash phase's directories somewhere
inspectable (CI uploads the journal from there on failure).
"""

from __future__ import annotations

import argparse
import json
import os
import signal
import subprocess
import sys
import tempfile
import threading
import time
from pathlib import Path
from typing import Any, Dict, List, Optional

from repro.bench.loadgen import (
    TraceConfig,
    generate_trace,
    percentile,
    replay,
    trace_digest,
)
from repro.serve.client import Client
from repro.serve.journal import scan_segments

#: The wedge kernel: hangs its isolated worker far past the SIGKILL.
HANG_PARAMS: Dict[str, Any] = {
    "arch": "toy",
    "trans_a": True,
    "fault_policy": {
        "enabled": True,
        "seed": 7,
        "compile_hang_rate": 1.0,
        "compile_hang_s": 120.0,
    },
}

#: Distinct kernels acknowledged before the kill (each key must survive).
ACKED_KERNELS = (
    {"arch": "toy"},
    {"arch": "toy", "trans_b": True},
    {"arch": "toy", "use_asm": False},
    {"arch": "toy", "enable_rma": False},
)


# ---------------------------------------------------------------------------
# Phase 1 — isolation overhead (thread vs process)
# ---------------------------------------------------------------------------


def _measure_isolation(
    config: TraceConfig, isolation: str, workers: int
) -> Dict[str, Any]:
    from repro.serve import ServeConfig, start_in_thread
    from repro.service import CompileService, ServiceConfig

    service = CompileService(ServiceConfig(admission_threshold=2))
    handle = start_in_thread(
        service,
        ServeConfig(workers=workers, quota=None, isolation=isolation),
    )
    try:
        result = replay(handle.address, generate_trace(config))
    finally:
        handle.stop()
    latencies = result.latencies_ms()
    compile_lat = sorted(
        o["latency_ms"]
        for o in result.outcomes
        if o["op"] == "compile" and o["ok"]
    )
    return {
        "isolation": isolation,
        "requests": len(result.outcomes),
        "errors": sum(1 for o in result.outcomes if not o["ok"]),
        "wall_seconds": round(result.wall_seconds, 3),
        "p50_ms": round(percentile(latencies, 0.50), 3),
        "p99_ms": round(percentile(latencies, 0.99), 3),
        "compile_p50_ms": round(percentile(compile_lat, 0.50), 3),
        "compile_p99_ms": round(percentile(compile_lat, 0.99), 3),
    }


# ---------------------------------------------------------------------------
# Phase 2 — kill -9 / restart
# ---------------------------------------------------------------------------


def _boot_daemon(
    work_dir: Path, ready_name: str, deadline_s: float
) -> subprocess.Popen:
    env = dict(os.environ)
    src = str(Path(__file__).resolve().parents[2])
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    return subprocess.Popen(
        [
            sys.executable, "-m", "repro.cli", "serve",
            "--cache-dir", str(work_dir / "cache"),
            "--journal-dir", str(work_dir / "journal"),
            "--isolation", "process",
            "--worker-deadline", str(deadline_s),
            "--ready-file", str(work_dir / ready_name),
            "--workers", "2",
        ],
        env=env,
        stdout=subprocess.DEVNULL,
        stderr=subprocess.STDOUT,
    )


def _await_ready(
    process: subprocess.Popen, ready: Path, timeout_s: float = 30.0
):
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        if ready.exists() and ready.read_text().strip():
            return json.loads(ready.read_text())
        if process.poll() is not None:
            raise RuntimeError("daemon exited before becoming ready")
        time.sleep(0.05)
    process.kill()
    raise RuntimeError("daemon never wrote the ready file")


def _addr(info: Dict[str, Any]):
    return info["socket"] if info["socket"] else (info["host"], info["port"])


def _crash_phase(work_dir: Path) -> Dict[str, Any]:
    work_dir.mkdir(parents=True, exist_ok=True)
    process = _boot_daemon(work_dir, "ready-1.json", deadline_s=120.0)
    info = _await_ready(process, work_dir / "ready-1.json")
    acked: List[Dict[str, Any]] = []
    try:
        with Client(_addr(info), tenant="acked", timeout=60.0) as client:
            for params in ACKED_KERNELS:
                result = client.compile(dict(params))
                acked.append({"params": dict(params), "key": result["key"]})

        def wedge() -> None:
            try:
                with Client(_addr(info), tenant="wedged",
                            timeout=300.0) as victim:
                    victim.compile(dict(HANG_PARAMS))
            except Exception:
                pass  # severed by the SIGKILL — the point of the phase

        hang = threading.Thread(target=wedge, daemon=True)
        hang.start()
        with Client(_addr(info), tenant="probe", timeout=60.0) as probe:
            deadline = time.monotonic() + 30.0
            while time.monotonic() < deadline:
                counters = probe.stats()["server"]["counters"]
                if counters["journaled"] >= len(acked) + 1:
                    break
                time.sleep(0.05)
            else:
                raise RuntimeError("wedge request never reached the journal")

        os.kill(process.pid, signal.SIGKILL)
        process.wait(timeout=10.0)
        hang.join(timeout=10.0)
    finally:
        if process.poll() is None:
            process.kill()
            process.wait(timeout=10.0)

    pending, scan_counters = scan_segments(work_dir / "journal")

    # Restart on the same directories; the tight deadline makes the
    # replayed hang fail fast instead of sleeping out its 120 s.
    restart_started = time.perf_counter()
    restarted = _boot_daemon(work_dir, "ready-2.json", deadline_s=2.0)
    lost: List[str] = []
    try:
        info = _await_ready(restarted, work_dir / "ready-2.json")
        ready_seconds = time.perf_counter() - restart_started
        with Client(_addr(info), tenant="verify", timeout=60.0) as client:
            deadline = time.monotonic() + 60.0
            while time.monotonic() < deadline:
                stats = client.stats()["server"]
                if stats["journal"]["replay_pending"] == 0:
                    break
                time.sleep(0.05)
            else:
                raise RuntimeError("journal replay never finished")
            recovery_seconds = time.perf_counter() - restart_started
            for entry in acked:
                again = client.compile(dict(entry["params"]))
                if (
                    again["key"] != entry["key"]
                    or again["source"] == "compiled"
                ):
                    lost.append(entry["key"])
            final = client.stats()["server"]
            client.shutdown(drain=True)
        restarted.wait(timeout=30.0)
    finally:
        if restarted.poll() is None:
            restarted.kill()
            restarted.wait(timeout=10.0)

    return {
        "acknowledged_before_kill": len(acked),
        "journal_pending_after_kill": len(pending),
        "journal_records_scanned": scan_counters["records"],
        "ready_seconds": round(ready_seconds, 3),
        "recovery_seconds": round(recovery_seconds, 3),
        "replayed": final["counters"]["replayed"],
        "replay_failed": final["counters"]["replay_failed"],
        "recovered_pending": final["journal"]["recovered_pending"],
        "lost_acknowledged": lost,
        "worker_restarts": final["isolation"]["restarts"],
    }


# ---------------------------------------------------------------------------
# The benchmark
# ---------------------------------------------------------------------------


def run_recovery_bench(
    config: Optional[TraceConfig] = None,
    workers: int = 4,
    work_dir: Optional[Path] = None,
) -> Dict[str, Any]:
    """The full benchmark: overhead windows, then the crash phase."""
    config = config or TraceConfig(requests=300)
    trace = generate_trace(config)
    thread_window = _measure_isolation(config, "thread", workers)
    process_window = _measure_isolation(config, "process", workers)
    crash = _crash_phase(
        Path(work_dir)
        if work_dir is not None
        else Path(tempfile.mkdtemp(prefix="swgemm-recovery-"))
    )
    overhead = (
        round(process_window["p99_ms"] / thread_window["p99_ms"], 3)
        if thread_window["p99_ms"]
        else 0.0
    )
    return {
        "figure": "serve_recovery",
        # Machine-readable: every kernel in this benchmark targets the
        # down-scaled functional-test arch.
        "arch": "toy",
        "trace": {
            "seed": config.seed,
            "requests": config.requests,
            "tenants": list(config.tenants),
            "digest": trace_digest(trace),
        },
        "isolation_overhead": {
            "thread": thread_window,
            "process": process_window,
            "p99_overhead_x": overhead,
        },
        "crash": crash,
        "zero_lost_acknowledged": not crash["lost_acknowledged"],
    }


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench.recovery",
        description="Measure isolation overhead and kill -9 recovery of "
        "the compilation daemon.",
    )
    parser.add_argument("--seed", type=int, default=2022)
    parser.add_argument(
        "--requests", type=int, default=300,
        help="trace length of the overhead windows (default: 300)",
    )
    parser.add_argument("--workers", type=int, default=4)
    parser.add_argument(
        "--work-dir", default=None, metavar="DIR",
        help="crash-phase cache/journal location (default: a temp dir)",
    )
    parser.add_argument(
        "--output", default="BENCH_serve_recovery.json", metavar="FILE",
        help="payload destination at the repo root ('-' prints only)",
    )
    parser.add_argument(
        "--assert-recovery-s", type=float, default=None, metavar="S",
        help="fail (exit 1) if boot-to-replayed exceeds S seconds",
    )
    parser.add_argument(
        "--assert-zero-lost", action="store_true",
        help="fail (exit 1) if any acknowledged request was lost",
    )
    args = parser.parse_args(argv)

    config = TraceConfig(seed=args.seed, requests=args.requests)
    payload = run_recovery_bench(
        config,
        workers=args.workers,
        work_dir=Path(args.work_dir) if args.work_dir else None,
    )

    overhead = payload["isolation_overhead"]
    crash = payload["crash"]
    print(
        "isolation overhead: thread p50/p99 "
        f"{overhead['thread']['p50_ms']}/{overhead['thread']['p99_ms']} ms, "
        "process p50/p99 "
        f"{overhead['process']['p50_ms']}/{overhead['process']['p99_ms']} ms "
        f"({overhead['p99_overhead_x']}x p99)"
    )
    print(
        f"crash phase: {crash['acknowledged_before_kill']} acked, "
        f"{crash['journal_pending_after_kill']} pending after kill -9, "
        f"recovered in {crash['recovery_seconds']} s "
        f"({crash['replayed']} replayed, "
        f"{crash['replay_failed']} replay failure(s))"
    )
    print(
        "zero lost acknowledged work: "
        f"{'OK' if payload['zero_lost_acknowledged'] else 'VIOLATED'}"
    )

    if args.output != "-":
        from repro.bench.harness import write_bench_file

        path = write_bench_file(args.output, payload)
        print(f"wrote {path}")

    failed = False
    if args.assert_zero_lost and not payload["zero_lost_acknowledged"]:
        print(
            f"FAIL: lost acknowledged keys {crash['lost_acknowledged']}",
            file=sys.stderr,
        )
        failed = True
    if (
        args.assert_recovery_s is not None
        and crash["recovery_seconds"] > args.assert_recovery_s
    ):
        print(
            f"FAIL: recovery took {crash['recovery_seconds']} s, "
            f"budget {args.assert_recovery_s} s",
            file=sys.stderr,
        )
        failed = True
    if crash["journal_pending_after_kill"] < 1:
        print(
            "FAIL: the kill left no pending journal record — the wedge "
            "never made it to disk",
            file=sys.stderr,
        )
        failed = True
    return 1 if failed else 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
