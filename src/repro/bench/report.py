"""Table rendering for the benchmark harness.

Prints the rows the paper's figures plot, plus a paper-vs-measured
aggregate block — the same content EXPERIMENTS.md records.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.bench.harness import FigureResult

#: The aggregate numbers the paper states in prose, keyed like our
#: harness aggregates.  Used for the side-by-side report.
PAPER_AGGREGATES: Dict[str, Dict[str, float]] = {
    "fig13": {
        "mean_dma-only": 84.89,
        "mean_+asm": 240.39,
        "mean_+rma": 1052.94,
        "mean_+hiding": 1849.06,
        "mean_xmath": 1746.97,
        "speedup_asm_over_baseline": 2.83,
        "speedup_rma_over_asm": 4.38,
        "speedup_hiding_over_rma": 1.76,
        "speedup_total": 23.72,
        "ours_vs_xmath": 1.0962,
        "best_peak_fraction": 0.9014,
        "xmath_wins_small": 4,
    },
    "fig14": {
        "mean_ours": 1911.22,
        "mean_xmath": 1846.96,
        "ours_vs_xmath": 1.0925,
        "ours_on_degraded_vs_xmath": 1.5895,
        "ours_on_pow2_vs_xmath": 0.9268,
        "best_ours_peak": 0.9003,
        "best_xmath_peak": 0.9353,
        "xmath_degradations": 9,
    },
    "fig15": {
        "mean_ours": 1949.92,
        "mean_xmath": 1603.26,
        "ours_vs_xmath": 1.216,
        "best_ours_peak": 0.9043,
    },
    "fig16": {
        "mean_ours_prologue": 1709.81,
        "mean_baseline_prologue": 1436.46,
        "speedup_prologue": 1.26,
        "mean_ours_epilogue": 1818.24,
        "mean_baseline_epilogue": 919.56,
        "speedup_epilogue": 2.11,
        "speedup_combined": 1.67,
        "baseline_wins_prologue": 2,
        "baseline_wins_epilogue": 0,
    },
}


def format_table(
    rows: Sequence[Dict[str, object]],
    columns: Sequence[str],
    floats: str = "{:10.1f}",
) -> str:
    header = "  ".join(f"{c:>17s}" if i == 0 else f"{c:>10s}"
                       for i, c in enumerate(columns))
    lines = [header, "-" * len(header)]
    for row in rows:
        cells: List[str] = []
        for i, column in enumerate(columns):
            value = row.get(column, "")
            if isinstance(value, float):
                cells.append(floats.format(value))
            elif i == 0:
                cells.append(f"{str(value):>17s}")
            else:
                cells.append(f"{str(value):>10s}")
        lines.append("  ".join(cells))
    return "\n".join(lines)


def format_aggregates(result: FigureResult) -> str:
    paper = PAPER_AGGREGATES.get(result.figure, {})
    lines = [f"== {result.figure} aggregates (measured vs paper) =="]
    for key, value in result.aggregate.items():
        reference = paper.get(key)
        ref_text = f"{reference:10.3f}" if reference is not None else "       n/a"
        lines.append(f"{key:>32s}: {value:10.3f}   paper: {ref_text}")
    return "\n".join(lines)


def print_figure(result: FigureResult, columns: Sequence[str]) -> None:
    print()
    print(format_table(result.rows, columns))
    print()
    print(format_aggregates(result))
