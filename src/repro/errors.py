"""Shared exception hierarchy for the swgemm reproduction.

Every subsystem raises subclasses of :class:`SwGemmError` so callers can
catch reproduction-wide failures with a single ``except`` clause while still
being able to distinguish the subsystem that failed.  The hierarchy mirrors
the pipeline stages described in DESIGN.md:

* frontend errors (:class:`FrontendError` and friends) are raised while
  parsing or recognising the user's C input;
* polyhedral errors (:class:`PolyhedralError`) are raised by the mini-isl
  layer when a transformation is applied to an incompatible tree;
* hardware errors (:class:`HardwareError`) are raised by the simulated
  SW26010Pro core group — notably :class:`SPMOverflowError` and
  :class:`SynchronizationError`, which are the simulator's way of proving
  that the compiler's buffer plan and pipelining discipline are sound;
* compilation errors (:class:`CompilationError`) cover the driver itself.
"""

from __future__ import annotations


class SwGemmError(Exception):
    """Base class for every error raised by this package."""


# ---------------------------------------------------------------------------
# Frontend
# ---------------------------------------------------------------------------


class FrontendError(SwGemmError):
    """Base class for errors raised while processing the C input."""


class LexError(FrontendError):
    """Raised when the lexer meets a character it cannot tokenise."""

    def __init__(self, message: str, line: int, column: int) -> None:
        super().__init__(f"{message} (line {line}, column {column})")
        self.line = line
        self.column = column


class ParseError(FrontendError):
    """Raised when the recursive-descent parser cannot continue."""

    def __init__(self, message: str, line: int = 0, column: int = 0) -> None:
        location = f" (line {line}, column {column})" if line else ""
        super().__init__(f"{message}{location}")
        self.line = line
        self.column = column


class SemanticError(FrontendError):
    """Raised when the input parses but violates the supported C subset."""


class PatternError(FrontendError):
    """Raised when no supported GEMM/batched/fusion pattern is recognised."""


# ---------------------------------------------------------------------------
# Polyhedral layer
# ---------------------------------------------------------------------------


class PolyhedralError(SwGemmError):
    """Base class for the mini-isl layer."""


class SpaceMismatchError(PolyhedralError):
    """Raised when two polyhedral objects live in incompatible spaces."""


class NonAffineError(PolyhedralError):
    """Raised when an expression leaves the supported quasi-affine subset."""


class EmptySetError(PolyhedralError):
    """Raised when an operation requires a non-empty set but got none."""


class ScheduleTreeError(PolyhedralError):
    """Raised when a schedule-tree transformation is applied incorrectly."""


class CodegenError(PolyhedralError):
    """Raised while scanning a schedule tree to an AST."""


# ---------------------------------------------------------------------------
# Simulated hardware
# ---------------------------------------------------------------------------


class HardwareError(SwGemmError):
    """Base class for simulated SW26010Pro failures."""


class SPMOverflowError(HardwareError):
    """Raised when a buffer plan exceeds a CPE's scratch-pad capacity."""


class InvalidDMAError(HardwareError):
    """Raised for malformed DMA requests (bad size/len/strip, bounds)."""


class InvalidRMAError(HardwareError):
    """Raised for malformed RMA requests (bad root, size, buffers)."""


class SynchronizationError(HardwareError):
    """Raised when data is consumed before its reply counter was waited on,
    or an RMA is issued without the mandatory ``synch()``."""


class MeshError(HardwareError):
    """Raised for invalid CPE-mesh coordinates or spawn misuse."""


class TransientFaultError(HardwareError):
    """Raised when an injected transient transfer fault survives every
    retry the :class:`repro.faults.RetryPolicy` allows."""


class DataIntegrityError(HardwareError):
    """Raised when an end-to-end tile checksum mismatch cannot be
    repaired by re-copying (see :mod:`repro.faults`)."""


class RankFailureError(SwGemmError):
    """Raised by the multi-cluster driver when rank failures cannot be
    recovered from (e.g. every rank of the grid is dead)."""


# ---------------------------------------------------------------------------
# Compiler driver / runtime
# ---------------------------------------------------------------------------


class CompilationError(SwGemmError):
    """Raised by the end-to-end :class:`repro.core.pipeline.GemmCompiler`."""


class KernelAdmissionError(CompilationError):
    """Raised when the static safety verifier refuses to admit a kernel.

    Carries the full :class:`repro.verify.VerificationReport` on
    ``report`` so callers (CLI, service, tests) can show the failing
    check and its witness instead of a bare message."""

    def __init__(self, message: str, report: object = None) -> None:
        super().__init__(message)
        self.report = report


class CompileTimeout(SwGemmError):
    """Raised when a compilation exceeds its wall-clock deadline."""

    def __init__(self, message: str, timeout_s: float = 0.0) -> None:
        super().__init__(message)
        self.timeout_s = timeout_s


class ExecutionError(SwGemmError):
    """Raised by the AST interpreter while running a compiled program."""


class CertificateDivergenceError(HardwareError):
    """Raised in guarded execution when an observed DMA/RMA/SPM event
    diverges from the static safety certificate the verifier issued."""


class ConfigurationError(SwGemmError):
    """Raised for invalid compiler options or architecture specifications."""


# ---------------------------------------------------------------------------
# Compilation server (repro.serve)
# ---------------------------------------------------------------------------


class ServeError(SwGemmError):
    """Base class for the multi-tenant compilation daemon."""


class ProtocolError(ServeError):
    """Raised for malformed, oversized or semantically invalid frames of
    the newline-delimited-JSON serving protocol."""


class QuotaExceededError(ServeError):
    """Raised (client side) / reported (server side) when a tenant's
    token bucket cannot cover a request's cost."""


class ServerDrainingError(ServeError):
    """Raised when a request arrives while the daemon is gracefully
    draining: queued work still completes, but no new work is accepted."""


class OverloadError(ServeError):
    """Raised when a bounded :class:`repro.serve.queue.FairPriorityQueue`
    cannot admit a request: its priority class is at capacity and no
    lower-priority queued work exists to shed.  Carries the retry hint
    the admission layer computed from the observed queue-drain rate so
    clients can back off intelligently instead of hammering."""

    def __init__(
        self,
        message: str,
        retry_after_s: float = 1.0,
        priority: str = "",
        shed: bool = False,
    ) -> None:
        super().__init__(message)
        self.retry_after_s = retry_after_s
        self.priority = priority
        #: ``True`` when the request *was* queued but got evicted to make
        #: room for a higher-priority arrival (priority-aware shedding).
        self.shed = shed


class DeadlineExceededError(ServeError):
    """Raised when a request's end-to-end ``deadline_ms`` budget runs
    out while the request is still inside the daemon.  ``phase`` records
    where the budget died: ``"queue"`` (shed before dispatch — no worker
    was ever wasted on it) or ``"dispatch"`` (the rare race where the
    budget expired between dequeue and execution start)."""

    def __init__(
        self, message: str, deadline_ms: float = 0.0, phase: str = "queue"
    ) -> None:
        super().__init__(message)
        self.deadline_ms = deadline_ms
        self.phase = phase


class DegradedModeError(ServeError):
    """Raised while the daemon is in brownout: sustained queue-wait
    pressure tripped the hysteresis controller, so compile *misses* (and
    other cold, expensive ops) are fast-failed while cache hits and
    read-only ops keep being served — the content-addressed cache is the
    degraded tier.  Carries a ``retry_after_s`` drain-rate hint."""

    def __init__(self, message: str, retry_after_s: float = 1.0) -> None:
        super().__init__(message)
        self.retry_after_s = retry_after_s


class ClientTimeout(ServeError):
    """Raised client-side when the daemon accepted the connection but no
    response arrived within the socket timeout.  Distinct from a dropped
    connection on purpose: the request may still be executing server-side
    (a slow compile), so blindly resending would double the work — the
    client surfaces this instead of retrying."""

    def __init__(self, message: str, timeout_s: float = 0.0) -> None:
        super().__init__(message)
        self.timeout_s = timeout_s


class WorkerCrashError(ServeError):
    """Raised when an isolated compile worker dies (or is killed) before
    delivering a result: a hard crash (``SystemExit``/signal), a hung
    job past its wall-clock deadline, or a memory-budget overrun.  The
    worker subprocess is reaped and replaced; the offending cache key
    collects a strike toward quarantine."""

    def __init__(self, message: str, key: str = "") -> None:
        super().__init__(message)
        self.key = key


class PoisonedKernelError(ServeError):
    """Raised when a cache key has crashed its isolated worker often
    enough to trip the poison-key circuit breaker.  Callers get this
    structured refusal instead of feeding a retry storm; after the
    cooldown one half-open trial compile may clear the quarantine."""

    def __init__(self, message: str, key: str = "", strikes: int = 0) -> None:
        super().__init__(message)
        self.key = key
        self.strikes = strikes
