"""Block-decomposed GEMM over multiple core groups.

The classic owner-computes 2-D decomposition the paper sketches in §2.1:
C is split over a ``pr × pc`` grid of core groups; the rank owning block
``(p, q)`` receives the A row-panel ``A[p·Mb : (p+1)·Mb, :]`` and the B
column-panel ``B[:, q·Nb : (q+1)·Nb]`` and runs the *single-cluster*
swgemm program on them — no inter-cluster traffic during the compute, so
each piece is exactly the workload §§3-7 optimise.

Functional mode executes every rank's block on its own simulated cluster
and verifies against NumPy; timed mode rolls up the per-rank compute
times (from the chunk-extrapolating simulator) with the scatter/gather
costs from :class:`~repro.multi.comm.SimComm`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.errors import ConfigurationError, RankFailureError
from repro.core.options import CompilerOptions
from repro.core.pipeline import GemmCompiler
from repro.core.spec import GemmSpec
from repro.faults import FaultPolicy, RetryPolicy
from repro.multi.comm import NetworkSpec, SimComm
from repro.runtime.executor import run_gemm
from repro.runtime.simulator import PerformanceSimulator
from repro.sunway.arch import SW26010PRO, ArchSpec


@dataclass
class MultiGemmReport:
    """Result of one distributed run."""

    grid: Tuple[int, int]
    seconds: float
    gflops: float
    compute_seconds: float
    comm_seconds: float
    per_rank_gflops: List[float] = field(default_factory=list)
    #: ranks that failed before/during the run (fault plane's dead ranks)
    failed_ranks: Tuple[int, ...] = ()
    #: block reassignments performed: failed rank -> healthy replacement
    reassigned: Dict[int, int] = field(default_factory=dict)

    @property
    def comm_fraction(self) -> float:
        return self.comm_seconds / self.seconds if self.seconds else 0.0

    @property
    def degraded(self) -> bool:
        """True when the run completed by routing around failed ranks."""
        return bool(self.failed_ranks)

    def degraded_summary(self) -> str:
        if not self.degraded:
            return "all ranks healthy"
        moves = ", ".join(
            f"rank {dead}->rank {repl}" for dead, repl in sorted(self.reassigned.items())
        )
        return (
            f"degraded: {len(self.failed_ranks)} of "
            f"{self.grid[0] * self.grid[1]} ranks failed "
            f"({sorted(self.failed_ranks)}); blocks reassigned {moves}"
        )


class MultiClusterGemm:
    """Distribute one DGEMM over a grid of simulated core groups."""

    def __init__(
        self,
        grid: Tuple[int, int],
        arch: ArchSpec = SW26010PRO,
        options: Optional[CompilerOptions] = None,
        network: Optional[NetworkSpec] = None,
        fault_policy: Optional[FaultPolicy] = None,
        retry_policy: Optional[RetryPolicy] = None,
    ) -> None:
        pr, pc = grid
        if pr <= 0 or pc <= 0:
            raise ConfigurationError("process grid dimensions must be positive")
        self.grid = (pr, pc)
        self.arch = arch
        self.options = options or CompilerOptions.full()
        #: the fault plane rides on the options unless given explicitly
        self.fault_policy = (
            fault_policy if fault_policy is not None
            else (self.options.fault_policy or FaultPolicy())
        )
        self.retry_policy = (
            retry_policy if retry_policy is not None
            else (self.options.retry_policy or RetryPolicy())
        )
        self.comm = SimComm(
            pr * pc, network,
            fault_policy=self.fault_policy, retry_policy=self.retry_policy,
        )
        self.program = GemmCompiler(arch, self.options).compile(GemmSpec())
        self._simulator = PerformanceSimulator(arch)

    def _straggler_factor(self, rank: int) -> float:
        if (self.fault_policy.enabled
                and rank in self.fault_policy.straggler_ranks):
            return self.fault_policy.straggler_factor
        return 1.0

    def _replacements(self) -> Dict[int, int]:
        """Round-robin each dead rank's block onto a healthy rank."""
        healthy = self.comm.alive_ranks()
        if not healthy:
            raise RankFailureError(
                f"all {self.comm.size} ranks are dead "
                f"(dead_ranks={sorted(self.comm.dead)}); no healthy rank "
                "left to take over any C block"
            )
        return {
            dead: healthy[i % len(healthy)]
            for i, dead in enumerate(sorted(self.comm.dead))
        }

    # -- decomposition -----------------------------------------------------

    def _block_bounds(self, extent: int, parts: int) -> List[Tuple[int, int]]:
        """Contiguous near-even split (first blocks one larger)."""
        base, extra = divmod(extent, parts)
        bounds = []
        start = 0
        for index in range(parts):
            size = base + (1 if index < extra else 0)
            bounds.append((start, start + size))
            start += size
        return bounds

    def rank_of(self, p: int, q: int) -> int:
        return p * self.grid[1] + q

    # -- functional execution -----------------------------------------------------

    def run(
        self,
        A: np.ndarray,
        B: np.ndarray,
        C: Optional[np.ndarray] = None,
        alpha: float = 1.0,
        beta: float = 1.0,
    ) -> Tuple[np.ndarray, MultiGemmReport]:
        """Execute functionally: every rank's block on its own cluster."""
        M, K = A.shape
        K2, N = B.shape
        if K != K2:
            raise ConfigurationError(f"shape mismatch: {A.shape} vs {B.shape}")
        if C is None:
            C = np.zeros((M, N))
        pr, pc = self.grid
        row_bounds = self._block_bounds(M, pr)
        col_bounds = self._block_bounds(N, pc)

        # Rank failure handling: each dead rank's C block is reassigned to
        # a healthy rank (round-robin), which re-fetches the panels from
        # the root and computes the extra block after its own.
        replacements = self._replacements() if self.comm.dead else {}

        # Root (rank 0) scatters the A row-panels along grid rows and the
        # B column-panels along grid columns; with a flat communicator we
        # charge one panel transfer per receiving rank.
        a_chunks = [
            A[row_bounds[p][0] : row_bounds[p][1]].copy()
            for p in range(pr)
            for _ in range(pc)
        ]
        b_chunks = [
            B[:, col_bounds[q][0] : col_bounds[q][1]].copy()
            for _ in range(pr)
            for q in range(pc)
        ]
        self.comm.scatter(a_chunks, root=0)
        self.comm.scatter(b_chunks, root=0)
        # The replacement ranks fetch the failed ranks' panels too.
        for dead, repl in replacements.items():
            if repl != 0:
                self.comm._charge(0, repl, a_chunks[dead].nbytes)
                self.comm._charge(0, repl, b_chunks[dead].nbytes)

        per_rank_gflops: List[float] = []
        compute_times: List[float] = []
        for p in range(pr):
            for q in range(pc):
                rank = self.rank_of(p, q)
                executing = replacements.get(rank, rank)
                r0, r1 = row_bounds[p]
                c0, c1 = col_bounds[q]
                block = C[r0:r1, c0:c1].copy()
                result, report = run_gemm(
                    self.program,
                    a_chunks[rank],
                    b_chunks[rank],
                    block,
                    alpha=alpha,
                    beta=beta,
                )
                C[r0:r1, c0:c1] = result
                elapsed = report.elapsed_seconds * self._straggler_factor(executing)
                # Reassigned blocks serialise behind the replacement's own
                # work — its clock simply accumulates both computations.
                self.comm.advance(executing, elapsed)
                per_rank_gflops.append(report.gflops)
                compute_times.append(elapsed)

        self.comm.barrier()
        c_pieces = [
            C[row_bounds[p][0] : row_bounds[p][1],
              col_bounds[q][0] : col_bounds[q][1]]
            for p in range(pr)
            for q in range(pc)
        ]
        self.comm.gather(c_pieces, root=0)
        # Reassigned blocks travel home from their replacement rank.
        for dead, repl in replacements.items():
            if repl != 0:
                self.comm._charge(repl, 0, c_pieces[dead].nbytes)

        total = self.comm.elapsed()
        comm_seconds = total - max(compute_times) if compute_times else total
        report = MultiGemmReport(
            grid=self.grid,
            seconds=total,
            gflops=2.0 * M * N * K / total / 1e9,
            compute_seconds=max(compute_times) if compute_times else 0.0,
            comm_seconds=max(0.0, comm_seconds),
            per_rank_gflops=per_rank_gflops,
            failed_ranks=tuple(sorted(self.comm.dead)),
            reassigned=replacements,
        )
        return C, report

    # -- timed-only estimation ------------------------------------------------------

    def estimate(self, M: int, N: int, K: int) -> MultiGemmReport:
        """Timed roll-up for large shapes (no data movement).

        Every rank computes an (M/pr)×(N/pc)×K block — the per-rank time
        comes from the chunk-extrapolating simulator — and the panels
        move through the communicator's cost model.
        """
        pr, pc = self.grid
        plan = self.program.plan
        if M % pr or N % pc:
            raise ConfigurationError(
                f"M={M}, N={N} must divide evenly over the {pr}x{pc} grid"
            )
        Mb, Nb = M // pr, N // pc
        for value, step, name in ((Mb, plan.chunk_m, "M/pr"),
                                  (Nb, plan.chunk_n, "N/pc"),
                                  (K, plan.k_step, "K")):
            if value % step:
                raise ConfigurationError(
                    f"{name}={value} is not a multiple of {step}"
                )
        comm = SimComm(pr * pc, self.comm.network)
        a_panel = Mb * K * 8
        b_panel = K * Nb * 8
        c_block = Mb * Nb * 8
        for rank in range(1, pr * pc):
            comm._charge(0, rank, a_panel)
            comm._charge(0, rank, b_panel)
        block_perf = self._simulator.simulate(Mb, Nb, K, self.options)
        for rank in range(pr * pc):
            comm.advance(rank, block_perf.seconds)
        comm.barrier()
        for rank in range(1, pr * pc):
            comm._charge(rank, 0, c_block)
        total = comm.elapsed()
        return MultiGemmReport(
            grid=self.grid,
            seconds=total,
            gflops=2.0 * M * N * K / total / 1e9,
            compute_seconds=block_perf.seconds,
            comm_seconds=total - block_perf.seconds,
            per_rank_gflops=[block_perf.gflops] * (pr * pc),
        )
