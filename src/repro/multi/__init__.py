"""Multi-cluster GEMM: the paper's stated future work, implemented.

§2.1 observes that "one can gradually break down a GEMM routine into
independent smaller ones until each piece can be handled by a cluster",
with MPI carrying the inter-cluster traffic, and §10 leaves automatic MPI
generation as future work.  This package provides that layer for the
simulated machine:

* :mod:`repro.multi.comm` — a simulated MPI-style communicator over core
  groups (mpi4py-flavoured API: ``bcast``/``scatter``/``gather``/
  ``barrier``) with a network-on-chip cost model (SW26010Pro has six
  core groups per processor; multiple processors connect through the
  system interface);
* :mod:`repro.multi.driver` — 2-D block decomposition of C over a
  process grid, one compiled swgemm program per rank, scatter/broadcast
  of the A row-panels and B column-panels, gather of C, and a timing
  roll-up (max over ranks + communication).

The per-rank compute is the *same* compiled program the single-cluster
path validates — the decomposition is purely additive, exactly as the
paper argues ("writing MPI messages will thus not incur too much
engineering cost").
"""

from repro.multi.comm import NetworkSpec, SimComm
from repro.multi.driver import MultiClusterGemm, MultiGemmReport

__all__ = ["SimComm", "NetworkSpec", "MultiClusterGemm", "MultiGemmReport"]
