"""A simulated MPI-style communicator over core groups.

The API follows mpi4py's lower-case object methods (``bcast``,
``scatter``, ``gather``, ``allgather``, ``barrier``) so the driver code
reads like an MPI program.  Instead of real processes there is one
virtual clock per rank; each collective moves NumPy arrays immediately
and advances the participating clocks by a linear latency+bandwidth cost
model:

* ranks on the *same processor* talk through the network on chip
  (SW26010Pro: six core groups per chip);
* ranks on *different processors* pay the system-interface cost.

Collectives are modelled with the usual flat-tree bounds — good enough
for the block-decomposed GEMM whose messages are large panels.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence

import numpy as np

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class NetworkSpec:
    """Inter-cluster network parameters."""

    #: core groups per processor (SW26010Pro: six, §2.1)
    groups_per_processor: int = 6
    #: network-on-chip link between core groups of one processor
    noc_bandwidth_gbs: float = 30.0
    noc_latency_us: float = 1.0
    #: system interface between processors (super-node level)
    sys_bandwidth_gbs: float = 12.0
    sys_latency_us: float = 4.0

    def link_time_s(self, nbytes: int, same_chip: bool) -> float:
        if same_chip:
            return self.noc_latency_us * 1e-6 + nbytes / (
                self.noc_bandwidth_gbs * 1e9
            )
        return self.sys_latency_us * 1e-6 + nbytes / (
            self.sys_bandwidth_gbs * 1e9
        )


class SimComm:
    """An MPI_COMM_WORLD over ``size`` simulated core groups."""

    def __init__(self, size: int, network: Optional[NetworkSpec] = None) -> None:
        if size <= 0:
            raise ConfigurationError("communicator size must be positive")
        self.size = size
        self.network = network or NetworkSpec()
        self.clocks = [0.0] * size
        self.stats: Dict[str, float] = {"messages": 0, "bytes": 0}

    # -- helpers -----------------------------------------------------------

    def processor_of(self, rank: int) -> int:
        return rank // self.network.groups_per_processor

    def _same_chip(self, a: int, b: int) -> bool:
        return self.processor_of(a) == self.processor_of(b)

    def _check_rank(self, rank: int) -> None:
        if not 0 <= rank < self.size:
            raise ConfigurationError(f"rank {rank} outside communicator of {self.size}")

    def _charge(self, src: int, dst: int, nbytes: int) -> None:
        cost = self.network.link_time_s(nbytes, self._same_chip(src, dst))
        ready = max(self.clocks[src], self.clocks[dst]) + cost
        self.clocks[src] = ready
        self.clocks[dst] = ready
        self.stats["messages"] += 1
        self.stats["bytes"] += nbytes

    def advance(self, rank: int, seconds: float) -> None:
        """Local computation on one rank."""
        self._check_rank(rank)
        self.clocks[rank] += seconds

    def elapsed(self) -> float:
        return max(self.clocks)

    # -- collectives (mpi4py-style lower-case object API) ----------------------

    def bcast(self, array: np.ndarray, root: int = 0) -> List[np.ndarray]:
        """Broadcast ``array`` from ``root``; returns per-rank copies."""
        self._check_rank(root)
        copies: List[np.ndarray] = []
        for rank in range(self.size):
            if rank != root:
                self._charge(root, rank, array.nbytes)
            copies.append(array.copy() if rank != root else array)
        return copies

    def scatter(self, chunks: Sequence[np.ndarray], root: int = 0) -> List[np.ndarray]:
        """Rank ``i`` receives ``chunks[i]``."""
        self._check_rank(root)
        if len(chunks) != self.size:
            raise ConfigurationError(
                f"scatter needs {self.size} chunks, got {len(chunks)}"
            )
        out: List[np.ndarray] = []
        for rank, chunk in enumerate(chunks):
            if rank != root:
                self._charge(root, rank, chunk.nbytes)
            out.append(chunk)
        return out

    def gather(self, pieces: Sequence[np.ndarray], root: int = 0) -> List[np.ndarray]:
        """Rank ``root`` collects every rank's piece."""
        self._check_rank(root)
        if len(pieces) != self.size:
            raise ConfigurationError(
                f"gather needs {self.size} pieces, got {len(pieces)}"
            )
        for rank, piece in enumerate(pieces):
            if rank != root:
                self._charge(rank, root, piece.nbytes)
        return list(pieces)

    def allgather(self, pieces: Sequence[np.ndarray]) -> List[List[np.ndarray]]:
        """Everyone collects everything (flat model: gather + bcast)."""
        gathered = self.gather(pieces, root=0)
        for piece in gathered:
            self.bcast(piece, root=0)
        return [list(gathered) for _ in range(self.size)]

    def barrier(self) -> None:
        release = max(self.clocks)
        self.clocks = [release] * self.size
