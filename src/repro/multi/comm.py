"""A simulated MPI-style communicator over core groups.

The API follows mpi4py's lower-case object methods (``bcast``,
``scatter``, ``gather``, ``allgather``, ``barrier``) so the driver code
reads like an MPI program.  Instead of real processes there is one
virtual clock per rank; each collective moves NumPy arrays immediately
and advances the participating clocks by a linear latency+bandwidth cost
model:

* ranks on the *same processor* talk through the network on chip
  (SW26010Pro: six core groups per chip);
* ranks on *different processors* pay the system-interface cost.

Collectives are modelled with the usual flat-tree bounds — good enough
for the block-decomposed GEMM whose messages are large panels.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Set

import numpy as np

from repro.errors import ConfigurationError, TransientFaultError
from repro.faults import FaultInjector, FaultPolicy, RetryPolicy


@dataclass(frozen=True)
class NetworkSpec:
    """Inter-cluster network parameters."""

    #: core groups per processor (SW26010Pro: six, §2.1)
    groups_per_processor: int = 6
    #: network-on-chip link between core groups of one processor
    noc_bandwidth_gbs: float = 30.0
    noc_latency_us: float = 1.0
    #: system interface between processors (super-node level)
    sys_bandwidth_gbs: float = 12.0
    sys_latency_us: float = 4.0

    def link_time_s(self, nbytes: int, same_chip: bool) -> float:
        if same_chip:
            return self.noc_latency_us * 1e-6 + nbytes / (
                self.noc_bandwidth_gbs * 1e9
            )
        return self.sys_latency_us * 1e-6 + nbytes / (
            self.sys_bandwidth_gbs * 1e9
        )


class SimComm:
    """An MPI_COMM_WORLD over ``size`` simulated core groups."""

    def __init__(
        self,
        size: int,
        network: Optional[NetworkSpec] = None,
        fault_policy: Optional[FaultPolicy] = None,
        retry_policy: Optional[RetryPolicy] = None,
    ) -> None:
        if size <= 0:
            raise ConfigurationError("communicator size must be positive")
        self.size = size
        self.network = network or NetworkSpec()
        self.clocks = [0.0] * size
        self.stats: Dict[str, float] = {"messages": 0, "bytes": 0, "retries": 0}
        self.fault_policy = fault_policy or FaultPolicy()
        self.retry_policy = retry_policy or RetryPolicy()
        self.injector: Optional[FaultInjector] = None
        #: ranks that have failed permanently; collectives skip them and
        #: the driver reassigns their work (degraded mode)
        self.dead: Set[int] = set()
        if self.fault_policy.enabled:
            self.injector = FaultInjector(self.fault_policy).fork("comm")
            for rank in self.fault_policy.dead_ranks:
                if 0 <= rank < size:
                    self.dead.add(rank)

    # -- helpers -----------------------------------------------------------

    def processor_of(self, rank: int) -> int:
        return rank // self.network.groups_per_processor

    def _same_chip(self, a: int, b: int) -> bool:
        return self.processor_of(a) == self.processor_of(b)

    def _check_rank(self, rank: int) -> None:
        if not 0 <= rank < self.size:
            raise ConfigurationError(f"rank {rank} outside communicator of {self.size}")

    def mark_dead(self, rank: int) -> None:
        """Declare a rank permanently failed; its clock stops advancing."""
        self._check_rank(rank)
        self.dead.add(rank)

    def alive_ranks(self) -> List[int]:
        return [rank for rank in range(self.size) if rank not in self.dead]

    def _charge(self, src: int, dst: int, nbytes: int) -> None:
        if src in self.dead or dst in self.dead:
            # A transfer with a failed endpoint never happens: the driver
            # is responsible for routing around dead ranks.
            return
        cost = self.network.link_time_s(nbytes, self._same_chip(src, dst))
        attempts = 0
        while True:
            if self.injector is not None:
                cost_this = cost * self.injector.latency_factor("comm")
            else:
                cost_this = cost
            ready = max(self.clocks[src], self.clocks[dst]) + cost_this
            self.clocks[src] = ready
            self.clocks[dst] = ready
            if not (self.injector is not None
                    and self.injector.transfer_fault("comm")):
                break
            # Transient link fault: the attempt's time is already spent on
            # both clocks; add backoff and resend.
            attempts += 1
            self.stats["retries"] += 1
            if attempts > self.retry_policy.max_retries:
                raise TransientFaultError(
                    f"inter-cluster transfer {src}->{dst} ({nbytes} bytes) "
                    f"failed {attempts} attempt(s); retry budget of "
                    f"{self.retry_policy.max_retries} exhausted (injected "
                    f"comm faults, seed {self.fault_policy.seed})"
                )
            backoff = self.retry_policy.backoff(attempts - 1)
            self.clocks[src] += backoff
            self.clocks[dst] += backoff
        self.stats["messages"] += 1
        self.stats["bytes"] += nbytes

    def advance(self, rank: int, seconds: float) -> None:
        """Local computation on one rank."""
        self._check_rank(rank)
        self.clocks[rank] += seconds

    def elapsed(self) -> float:
        alive = self.alive_ranks()
        return max(self.clocks[r] for r in alive) if alive else max(self.clocks)

    # -- collectives (mpi4py-style lower-case object API) ----------------------

    def bcast(self, array: np.ndarray, root: int = 0) -> List[np.ndarray]:
        """Broadcast ``array`` from ``root``; returns per-rank copies."""
        self._check_rank(root)
        copies: List[np.ndarray] = []
        for rank in range(self.size):
            if rank != root:
                self._charge(root, rank, array.nbytes)
            copies.append(array.copy() if rank != root else array)
        return copies

    def scatter(self, chunks: Sequence[np.ndarray], root: int = 0) -> List[np.ndarray]:
        """Rank ``i`` receives ``chunks[i]``."""
        self._check_rank(root)
        if len(chunks) != self.size:
            raise ConfigurationError(
                f"scatter needs {self.size} chunks, got {len(chunks)}"
            )
        out: List[np.ndarray] = []
        for rank, chunk in enumerate(chunks):
            if rank != root:
                self._charge(root, rank, chunk.nbytes)
            out.append(chunk)
        return out

    def gather(self, pieces: Sequence[np.ndarray], root: int = 0) -> List[np.ndarray]:
        """Rank ``root`` collects every rank's piece."""
        self._check_rank(root)
        if len(pieces) != self.size:
            raise ConfigurationError(
                f"gather needs {self.size} pieces, got {len(pieces)}"
            )
        for rank, piece in enumerate(pieces):
            if rank != root:
                self._charge(rank, root, piece.nbytes)
        return list(pieces)

    def allgather(self, pieces: Sequence[np.ndarray]) -> List[List[np.ndarray]]:
        """Everyone collects everything (flat model: gather + bcast)."""
        gathered = self.gather(pieces, root=0)
        for piece in gathered:
            self.bcast(piece, root=0)
        return [list(gathered) for _ in range(self.size)]

    def barrier(self) -> None:
        alive = self.alive_ranks()
        if not alive:
            return
        release = max(self.clocks[rank] for rank in alive)
        for rank in alive:
            self.clocks[rank] = release
