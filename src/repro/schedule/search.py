"""Greedy seeded pass-ordering search.

``optimize`` mode runs the rewrite stack in its canonical order, but the
best *order* (and subset) is shape-dependent: on DMA-bound ragged shapes
``merge-transfers`` earns its keep, on RMA-startup-bound ones
``reorder-issues`` does.  :func:`greedy_pass_order` searches orderings
the way the autotuner searches tiles — greedy forward selection under a
simulated-Gflops objective, with a seeded tie-break so results are
reproducible — and returns a :class:`SchedulePolicy` pinning the winning
order (or ``None`` when no ordering beats the recipe).

The evaluator is injectable so unit tests can drive the search with a
synthetic objective; :func:`simulated_evaluator` builds the real one on
top of :class:`~repro.runtime.simulator.PerformanceSimulator`.
"""

from __future__ import annotations

from typing import Callable, Iterable, Optional, Sequence, Tuple

from repro.core.options import SCHEDULE_PASS_NAMES, CompilerOptions, SchedulePolicy

#: evaluate(policy_or_None) -> simulated Gflops (higher is better).
Evaluator = Callable[[Optional[SchedulePolicy]], float]


def _splitmix64(state: int) -> Tuple[int, int]:
    state = (state + 0x9E3779B97F4A7C15) & 0xFFFFFFFFFFFFFFFF
    z = state
    z = ((z ^ (z >> 30)) * 0xBF58476D1CE4E5B9) & 0xFFFFFFFFFFFFFFFF
    z = ((z ^ (z >> 27)) * 0x94D049BB133111EB) & 0xFFFFFFFFFFFFFFFF
    return state, z ^ (z >> 31)


def greedy_pass_order(
    evaluate: Evaluator,
    passes: Sequence[str] = SCHEDULE_PASS_NAMES,
    seed: int = 0,
    min_gain: float = 1e-9,
) -> Optional[SchedulePolicy]:
    """Greedy forward selection of a rewrite ordering.

    Starting from the bare recipe, repeatedly append whichever remaining
    rewrite improves the objective most (seeded tie-break between equal
    gains), stopping when nothing improves.  Returns the winning policy,
    or ``None`` when the recipe itself is best.
    """
    state = seed & 0xFFFFFFFFFFFFFFFF
    best_score = evaluate(None)
    chosen: Tuple[str, ...] = ()
    remaining = list(passes)
    while remaining:
        scored = []
        for name in remaining:
            state, salt = _splitmix64(state)
            policy = SchedulePolicy(mode="optimize", allow=chosen + (name,))
            scored.append((evaluate(policy), salt, name))
        score, _, winner = max(scored)
        if score <= best_score + min_gain:
            break
        best_score = score
        chosen = chosen + (winner,)
        remaining.remove(winner)
    if not chosen:
        return None
    return SchedulePolicy(mode="optimize", allow=chosen)


def simulated_evaluator(
    shape: Tuple[int, int, int],
    options: CompilerOptions,
    arch=None,
    batch: int = 1,
    spec=None,
    service=None,
) -> Evaluator:
    """An evaluator scoring policies by simulated Gflops on one shape."""
    # Lazy: the simulator sits above this package in the import graph.
    from repro.runtime.simulator import PerformanceSimulator
    from repro.sunway.arch import SW26010PRO

    sim = PerformanceSimulator(arch or SW26010PRO, service=service)
    M, N, K = shape

    def evaluate(policy: Optional[SchedulePolicy]) -> float:
        candidate = options.with_(schedule=policy)
        return sim.simulate(
            M, N, K, options=candidate, batch=batch, spec=spec
        ).gflops

    return evaluate
