"""The schedule rewrites and their verified admission protocol.

Four composable rewrites over :class:`~repro.schedule.ir.Timeline`
(modelled on zero-bubble pipeline schedulers, where the per-stage
timeline is a node list rewritten by small passes such as
``merge_consecutive_bw``):

``split-waits``
    Break a multi-statement wait group so work scheduled between the
    fragments (the fused prologue, the prefetch issue) overlaps the
    transfer still in flight.
``reorder-issues``
    Move independent issue groups ahead of the waits in each loop body
    (back-to-back RMA launches, prefetch before the current wait) and
    hoist the inner pipeline's buffer-swap prefix (reset + synch) out
    of the broadcast peel, decollectivizing the barrier away from the
    DMA drain.
``merge-transfers``
    Merge the outer peel's unguarded DMA issues into the chunk's first
    transfer group, so the C/A/B gets share one issue burst.
``retire-waits``
    Drop wait statements that re-wait a counter no intervening issue
    could have re-armed.

Every rewrite mutates the timeline only; admission is the job of
:func:`apply_rewrite`, which rewrites a *clone* of the schedule tree,
lowers it, replays it on the verifier's
:func:`~repro.verify.replay_schedule` machine and re-checks the SPM
budget — the original tree is swapped out only when the candidate is
proven legal.  An illegal or no-op candidate leaves the decomposition
untouched and reports why.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from repro.core.options import SCHEDULE_PASS_NAMES
from repro.errors import CompilationError
from repro.poly.schedule_tree import clone_tree
from repro.schedule.extract import extract_timeline, materialize
from repro.schedule.ir import ScheduleStep, Segment, Timeline


def _is_wait(step: ScheduleStep) -> bool:
    return step.kind in ("dma_wait", "rma_wait")


def _is_compute(step: ScheduleStep) -> bool:
    return step.kind == "compute"


def _issue_only(seg: Segment) -> bool:
    """True when nothing in the segment waits or computes — it can move
    ahead of waits without reordering any dependence."""
    return bool(seg.steps) and not any(
        _is_wait(s) or _is_compute(s) for s in seg.steps
    )


# ---------------------------------------------------------------------------
# The rewrites (Timeline -> changed?)
# ---------------------------------------------------------------------------


def split_waits(tl: Timeline) -> bool:
    """Split the first multi-wait group of each loop body.

    The popped wait lands at the end of the body, directly in front of
    the compute subtree: everything originally scheduled after the
    group (prologue, prefetch issue) now overlaps the second transfer
    while it is still in flight."""
    changed = False
    for name in ("kouter", "kmid"):
        lvl = tl.level(name)
        if lvl is None:
            continue
        for seg in lvl.body:
            if (
                len(seg.steps) >= 2
                and not seg.constraints
                and all(_is_wait(s) for s in seg.steps)
            ):
                last = seg.steps.pop()
                lvl.body.append(Segment([last]))
                changed = True
                break
    return changed


def reorder_issues(tl: Timeline) -> bool:
    """Issue-ahead reordering.

    1. Hoist the inner (RMA) peel's leading buffer-swap prefix — the
       reply-counter reset and the ``synch`` — to the front of the outer
       loop body.  The reset-before-synch-before-issue invariant the
       recipe documents is preserved (the pair moves as a unit and every
       broadcast issue still follows the barrier in program order), but
       the barrier no longer sits *behind* the outer DMA wait: a CPE
       whose transfer drains late no longer holds the whole mesh out of
       its broadcast phase.
    2. In each loop body, stably move every pure-issue segment ahead of
       the waits, so the next transfers are in flight (back to back, on
       the RMA level) before the current ones are waited on.  Parity
       selectors keep the moved issues targeting the other buffer slot,
       which the replay machine re-proves on every candidate.
    """
    changed = False
    kmid = tl.level("kmid")
    kouter = tl.level("kouter")
    if kmid is not None and kouter is not None and kmid.peel:
        seg = kmid.peel[0]
        prefix = 0
        while (
            prefix < len(seg.steps)
            and seg.steps[prefix].kind == "buffer_swap"
        ):
            prefix += 1
        if 0 < prefix < len(seg.steps) and not seg.constraints:
            moved = seg.steps[:prefix]
            del seg.steps[:prefix]
            kouter.body.insert(0, Segment(moved))
            changed = True
    for name in ("kouter", "kmid"):
        lvl = tl.level(name)
        if lvl is None:
            continue
        ahead = [s for s in lvl.body if _issue_only(s)]
        ahead_ids = {id(s) for s in ahead}
        rest = [s for s in lvl.body if id(s) not in ahead_ids]
        new = ahead + rest
        if [id(s) for s in new] != [id(s) for s in lvl.body]:
            lvl.body = new
            changed = True
    return changed


def merge_transfers(tl: Timeline) -> bool:
    """Merge the outer peel's unguarded DMA issues into the chunk's
    first transfer group (after its last issue, before its wait).

    Only the *outer* (DMA) peel is eligible: the inner peel's broadcasts
    source freshly DMA'd tiles and must stay behind their wait.  When
    the whole peel moves, the now-empty top extension dissolves at
    materialization."""
    kouter = tl.level("kouter")
    chunk = tl.level("chunk")
    if kouter is None or chunk is None or not kouter.peel or not chunk.body:
        return False
    movable = [
        seg
        for seg in kouter.peel
        if seg.steps
        and not seg.constraints
        and all(s.kind == "dma_issue" for s in seg.steps)
    ]
    if not movable:
        return False
    target = chunk.body[0]
    issue_positions = [
        i for i, s in enumerate(target.steps) if s.kind == "dma_issue"
    ]
    if not issue_positions:
        return False
    insert_at = issue_positions[-1] + 1
    moved = [s for seg in movable for s in seg.steps]
    target.steps[insert_at:insert_at] = moved
    movable_ids = {id(s) for s in movable}
    kouter.peel = [s for s in kouter.peel if id(s) not in movable_ids]
    return True


def _wait_key(step: ScheduleStep):
    payload = step.stmt.payload
    if step.kind == "dma_wait":
        return ("dma", payload.get("reply"), str(payload.get("reply_slot_expr")))
    spec = payload.get("spec")
    return (
        "rma",
        getattr(spec, "replys", None),
        getattr(spec, "replyr", None),
        str(payload.get("target_expr")),
    )


def _rearms(step: ScheduleStep, key) -> bool:
    """Does this non-wait step re-arm the counter behind ``key``?"""
    if step.kind == "buffer_swap":
        # Resets rewrite counters wholesale; be conservative.
        return key[0] == "rma"
    payload = step.stmt.payload
    if step.kind == "dma_issue":
        spec = payload.get("spec")
        return key[:2] == ("dma", getattr(spec, "reply", None))
    if step.kind == "rma_put":
        spec = payload.get("spec")
        return key[0] == "rma" and key[1] == getattr(spec, "replys", None)
    return False


def retire_waits(tl: Timeline) -> bool:
    """Drop waits that re-wait an already-settled counter.

    Within one stream (peel / body / post of a level), a wait whose
    (counter, slot) key was already waited — with no intervening issue
    or reset that could re-arm it — is a no-op and retires.  The §6
    recipe never emits such waits, so on the pristine timeline this is
    the identity (a property test pins that); it exists to clean up
    after compositions of the other rewrites."""
    changed = False
    for lvl in tl.levels.values():
        for stream in (lvl.peel, lvl.body, lvl.post):
            settled = set()
            for seg in stream:
                kept: List[ScheduleStep] = []
                for step in seg.steps:
                    if _is_wait(step):
                        key = _wait_key(step)
                        if key in settled:
                            changed = True
                            continue
                        settled.add(key)
                    else:
                        settled = {k for k in settled if not _rearms(step, k)}
                    kept.append(step)
                if len(kept) != len(seg.steps):
                    seg.steps = kept
            emptied = [s for s in stream if s.steps]
            if len(emptied) != len(stream):
                stream[:] = emptied
    return changed


@dataclass(frozen=True)
class Rewrite:
    name: str
    summary: str
    fn: Callable[[Timeline], bool]


REWRITES: Dict[str, Rewrite] = {
    r.name: r
    for r in (
        Rewrite(
            "split-waits",
            "split multi-wait groups so later work overlaps the "
            "transfer still in flight",
            split_waits,
        ),
        Rewrite(
            "reorder-issues",
            "move independent issue groups ahead of waits; hoist the "
            "inner buffer swap out of the broadcast peel",
            reorder_issues,
        ),
        Rewrite(
            "merge-transfers",
            "merge the outer peel's DMA issues into the chunk's first "
            "transfer burst",
            merge_transfers,
        ),
        Rewrite(
            "retire-waits",
            "drop waits on counters no intervening issue re-armed",
            retire_waits,
        ),
    )
}

if tuple(REWRITES) != SCHEDULE_PASS_NAMES:  # pragma: no cover - import guard
    raise AssertionError(
        "schedule rewrite registry out of sync with "
        "repro.core.options.SCHEDULE_PASS_NAMES"
    )


# ---------------------------------------------------------------------------
# Verified admission
# ---------------------------------------------------------------------------


@dataclass
class RewriteOutcome:
    """What happened to one rewrite attempt."""

    name: str
    applied: bool
    reason: str = ""
    #: replayed machine legality of the admitted candidate (True only
    #: when ``applied``).
    proven: bool = False
    #: the admitted candidate's lowered program (None unless applied) —
    #: lets the pipeline pass probe bubble occupancy without re-lowering.
    cpe_program: Optional[object] = None


def lower_root(dec, root, dma_specs, rma_specs, arch):
    """Lower an arbitrary schedule-tree root for this decomposition.

    The lowering delegate reads only the decomposition's spec, plan,
    options and arch — never ``dec.root`` — so candidate clones lower
    exactly like the installed tree."""
    # Lazy: core.passes imports this package at module level.
    from repro.codegen.backend import resolve_kernel
    from repro.core.lowering import GemmLowering
    from repro.core.passes import _buffer_decls, _reply_decls
    from repro.poly.astgen import AstGenerator
    from repro.poly.astnodes import CpeProgram

    body = AstGenerator(GemmLowering(dec)).generate(
        root, dec.spec.param_names()
    )
    return CpeProgram(
        buffers=_buffer_decls(dec),
        replies=_reply_decls(dec, dma_specs, rma_specs),
        body=body,
        kernel_name=resolve_kernel(arch, dec.options, dec.plan.kernel_shape).name,
    )


def check_legal(dec, cpe_program, arch) -> Optional[str]:
    """Replay + SPM re-check; ``None`` when legal, else the refusal."""
    from repro.verify import replay_schedule
    from repro.verify.report import PASSED
    from repro.verify.static_checks import check_spm_budget

    result = replay_schedule(cpe_program, dec.plan, dec.spec)
    if result.hazards:
        return f"replay found {len(result.hazards)} hazard(s)"
    if result.discipline:
        return f"replay found {len(result.discipline)} discipline violation(s)"
    if result.deadlock:
        return f"replay deadlocked ({result.deadlock})"
    if not result.completed:
        return "replay did not complete"
    spm = check_spm_budget(arch, dec.plan, cpe_program)
    if spm.status != PASSED:
        return f"SPM slack check failed: {spm.detail}"
    return None


def apply_rewrite(dec, name, dma_specs, rma_specs, arch) -> RewriteOutcome:
    """Apply one rewrite to ``dec`` if and only if it is proven legal.

    Clones the tree, rewrites the clone's timeline, lowers and replays
    it; on success installs the clone as ``dec.root`` (re-pointing the
    named band handles through a pre-rewrite node correspondence, so
    later passes and serde keep working on live nodes)."""
    rewrite = REWRITES.get(name)
    if rewrite is None:
        raise CompilationError(
            f"unknown schedule rewrite {name!r}; known: "
            f"{', '.join(REWRITES)}"
        )
    clone = clone_tree(dec.root)
    # clone_tree preserves child order and walk() is pre-order, so the
    # zipped traversals are aligned node-for-node.
    correspondence = {
        id(orig): copy for orig, copy in zip(dec.root.walk(), clone.walk())
    }
    timeline = extract_timeline(clone)
    if not rewrite.fn(timeline):
        return RewriteOutcome(name, applied=False, reason="no opportunity")
    materialize(timeline)
    candidate = lower_root(dec, clone, dma_specs, rma_specs, arch)
    refusal = check_legal(dec, candidate, arch)
    if refusal is not None:
        return RewriteOutcome(name, applied=False, reason=refusal)
    dec.root = clone
    dec.bands = {
        key: correspondence[id(band)] for key, band in dec.bands.items()
    }
    return RewriteOutcome(
        name, applied=True, proven=True, cpe_program=candidate
    )


def bubble_occupancy(dec, cpe_program, arch) -> float:
    """Timed bubble fraction of one chunk of this lowered candidate.

    Runs the coroutine interpreter (timing-only) on the same chunk
    problem the replay machine verifies (K = 2·k_step) and reports the
    share of total CPE-time spent outside the micro kernel — the
    quantity the rewrites exist to shrink, attributed per pass in
    ``pass_stats``."""
    from repro.runtime.executor import Executor
    from repro.runtime.program import CompiledProgram
    from repro.sunway.mesh import Cluster

    plan, spec = dec.plan, dec.spec
    program = CompiledProgram(
        spec=spec,
        options=dec.options,
        arch=arch,
        plan=plan,
        decomposition=dec,
        cpe_program=cpe_program,
    )
    cluster = Cluster(arch)
    K = 2 * plan.k_step
    cm, cn = plan.chunk_m, plan.chunk_n
    batched = spec.is_batched
    cluster.memory.alloc(spec.a_name, (1, cm, K) if batched else (cm, K))
    cluster.memory.alloc(spec.b_name, (1, K, cn) if batched else (K, cn))
    cluster.memory.alloc(spec.c_name, (1, cm, cn) if batched else (cm, cn))
    params = {spec.m_param: cm, spec.n_param: cn, spec.k_param: K}
    if batched:
        params[spec.batch_param] = 1
    report = Executor(program, cluster, move_data=False).run(params)
    chunk = report.elapsed_seconds - arch.spawn_us * 1e-6
    if chunk <= 0:
        return 0.0
    compute = report.stats.get("compute_seconds", 0.0)
    return max(0.0, 1.0 - compute / (plan.mesh * plan.mesh * chunk))
