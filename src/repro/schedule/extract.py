"""Timeline extraction and materialization.

:func:`extract_timeline` reads the communication structure the §6
builder (:mod:`repro.core.latency_hiding`) left in the schedule tree and
lifts it into the rewritable :class:`~repro.schedule.ir.Timeline`;
:func:`materialize` writes a (possibly rewritten) timeline back into the
same tree, rebuilding the extension nodes and filters in place.

The extractor anchors on *structure*, not statement names, so it stays
correct after rewrites have moved statements around:

* the **mesh band** is the unique band with a ``mesh_row``-bound member;
  its child is the chunk-level extension node;
* within any sequence, the **compute filter** is the unique filter that
  has children — everything before it is pre-compute communication,
  everything after is post-compute;
* descending through a compute filter: an ``ExtensionNode`` child is the
  next level's peel (top extension → peel filters + compute filter →
  band), a ``BandNode`` child is a level whose peel has been dissolved
  (or was never built), a ``MarkNode`` ends the communication nest.

Round-trip invariant: ``materialize(extract_timeline(root))`` leaves the
tree semantically identical — same filters, same order, same extension
statements (the golden timeline tests lock this down).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.errors import CompilationError
from repro.poly.schedule_tree import (
    BandNode,
    ExtensionNode,
    FilterNode,
    ScheduleNode,
    SequenceNode,
)
from repro.schedule.ir import LevelTimeline, ScheduleStep, Segment, Timeline

#: Communication nest levels, outermost first.  ``kouter`` is the A/B
#: DMA pipeline (the paper's level 1), ``kmid`` the RMA broadcast
#: pipeline (level 2); non-RMA variants stop after ``kouter``.
LEVEL_NAMES = ("chunk", "kouter", "kmid")


@dataclass
class _LevelAnchor:
    """Live tree handles for one level (private to this module)."""

    level: str
    #: The per-iteration extension node (for ``chunk``: the only one).
    ext: ExtensionNode
    seq: SequenceNode
    compute_filter: FilterNode
    #: The loop band (None for ``chunk``).
    band: Optional[BandNode] = None
    #: The peel extension in front of the band, when present.
    top_ext: Optional[ExtensionNode] = None
    top_seq: Optional[SequenceNode] = None
    #: The node whose child is this level's top structure — needed to
    #: splice the band back in when an emptied peel dissolves.
    attach: Optional[ScheduleNode] = None


def _compute_filter(seq: SequenceNode) -> FilterNode:
    """The unique filter child that owns a subtree."""
    owners = [c for c in seq.children if isinstance(c, FilterNode) and c.children]
    if len(owners) != 1:
        raise CompilationError(
            f"expected exactly one compute filter in sequence, found "
            f"{len(owners)}"
        )
    return owners[0]


def _segment_of(ext: ExtensionNode, filt: FilterNode) -> Segment:
    steps = [ScheduleStep.of(ext.stmt(name)) for name in filt.statements]
    return Segment(steps, constraints=filt.constraints, label=filt.label)


def _split_filters(ext: ExtensionNode, seq: SequenceNode):
    """(pre-compute segments, compute filter, post-compute segments)."""
    compute = _compute_filter(seq)
    body: List[Segment] = []
    post: List[Segment] = []
    after = False
    for child in seq.children:
        if child is compute:
            after = True
            continue
        if not isinstance(child, FilterNode):
            raise CompilationError("sequence child is not a filter")
        seg = _segment_of(ext, child)
        (post if after else body).append(seg)
    return body, compute, post


def find_mesh_band(root: ScheduleNode) -> BandNode:
    for node in root.walk():
        if isinstance(node, BandNode) and any(
            m.binding == "mesh_row" for m in node.members
        ):
            return node
    raise CompilationError("schedule tree has no mesh band")


def extract_timeline(root: ScheduleNode) -> Timeline:
    """Lift the tree's communication structure into a Timeline."""
    mesh_band = find_mesh_band(root)
    chunk_ext = mesh_band.child
    if not isinstance(chunk_ext, ExtensionNode):
        raise CompilationError(
            "mesh band child is not an extension node — the communication "
            "pass has not run on this tree"
        )
    chunk_seq = chunk_ext.child
    if not isinstance(chunk_seq, SequenceNode):
        raise CompilationError("chunk extension child is not a sequence")

    anchors: List[_LevelAnchor] = []
    levels = {}

    body, compute, post = _split_filters(chunk_ext, chunk_seq)
    anchors.append(_LevelAnchor("chunk", chunk_ext, chunk_seq, compute))
    levels["chunk"] = LevelTimeline("chunk", peel=[], body=body, post=post)

    parent_filter = compute
    for level in LEVEL_NAMES[1:]:
        child = parent_filter.child
        peel: List[Segment] = []
        top_ext: Optional[ExtensionNode] = None
        top_seq: Optional[SequenceNode] = None
        if isinstance(child, ExtensionNode):
            top_ext = child
            top_seq = top_ext.child
            if not isinstance(top_seq, SequenceNode):
                raise CompilationError("peel extension child is not a sequence")
            peel_segs, top_compute, top_post = _split_filters(top_ext, top_seq)
            if top_post:
                raise CompilationError("peel sequence has post-compute filters")
            peel = peel_segs
            band = top_compute.child
        else:
            band = child
        if not isinstance(band, BandNode):
            # A mark or the point band: the communication nest ends here.
            break
        loop_child = band.child
        if not isinstance(loop_child, ExtensionNode):
            break
        loop_seq = loop_child.child
        if not isinstance(loop_seq, SequenceNode):
            raise CompilationError("loop extension child is not a sequence")
        body, compute, post = _split_filters(loop_child, loop_seq)
        anchors.append(
            _LevelAnchor(
                level,
                loop_child,
                loop_seq,
                compute,
                band=band,
                top_ext=top_ext,
                top_seq=top_seq,
                attach=parent_filter,
            )
        )
        levels[level] = LevelTimeline(level, peel=peel, body=body, post=post)
        parent_filter = compute

    return Timeline(levels=levels, anchors=anchors)


def _make_filter(seg: Segment) -> FilterNode:
    return FilterNode(
        seg.step_names(), constraints=seg.constraints, label=seg.label
    )


def _set_stmts(ext: ExtensionNode, segments: List[Segment]) -> None:
    stmts = [step.stmt for seg in segments for step in seg.steps]
    names = [s.name for s in stmts]
    if len(set(names)) != len(names):
        raise CompilationError(
            f"timeline materialization produced duplicate statements: {names}"
        )
    ext.stmts = stmts


def materialize(timeline: Timeline) -> None:
    """Write the timeline back into the tree it was extracted from."""
    anchors = timeline.anchors
    if not anchors:
        raise CompilationError("timeline has no anchors; re-extract first")
    for anchor in anchors:
        lvl = timeline.level(anchor.level)
        if lvl is None:
            raise CompilationError(f"timeline lost level {anchor.level!r}")
        body = [s for s in lvl.body if s.steps]
        post = [s for s in lvl.post if s.steps]
        peel = [s for s in lvl.peel if s.steps]
        _set_stmts(anchor.ext, body + post)
        anchor.seq.children = (
            [_make_filter(s) for s in body]
            + [anchor.compute_filter]
            + [_make_filter(s) for s in post]
        )
        if anchor.level == "chunk":
            if peel:
                raise CompilationError("chunk level cannot carry peel segments")
            continue
        if anchor.top_ext is not None:
            if peel:
                _set_stmts(anchor.top_ext, peel)
                top_compute = _compute_filter(anchor.top_seq)
                anchor.top_seq.children = [
                    _make_filter(s) for s in peel
                ] + [top_compute]
            else:
                # The whole peel moved elsewhere: dissolve the top
                # extension and splice the band straight back in.
                anchor.attach.set_child(anchor.band)
        elif peel:
            raise CompilationError(
                f"level {anchor.level!r} has peel segments but no peel "
                "extension to hold them"
            )
