"""The schedule IR: per-CPE DMA/RMA/compute timelines.

The §6 latency-hiding recipe builds one fixed schedule tree; this module
gives the communication part of that tree a first-class, rewritable
form.  A :class:`Timeline` is the per-CPE execution order of the
communication statements, organised by pipeline level:

``chunk``
    Around the whole k loop nest: the C tile's get/scale before the
    compute subtree, epilogue/put after it.
``kouter``
    The (outer) k DMA pipeline: the peeled first issue in front of the
    loop, then per-iteration waits/prefetch-issues/prologue.
``kmid``
    The inner RMA pipeline (only for RMA variants): the peeled first
    broadcast group, then per-iteration broadcast waits and guarded
    next-slice launches.

Each level holds ordered :class:`Segment` lists — ``peel`` (the top
extension's statements, executed once before the loop), ``body``
(per-iteration statements before the compute subtree) and ``post``
(statements after the compute subtree; only the chunk level has any).
A :class:`Segment` corresponds to one schedule-tree filter and keeps its
guard constraints and label; its :class:`ScheduleStep` entries wrap the
underlying :class:`~repro.poly.schedule_tree.ExtensionStmt` objects and
classify them into the six timeline stages the passes reason about:
``dma_issue``, ``dma_wait``, ``rma_put``, ``rma_wait``, ``compute`` and
``buffer_swap`` (the parity reset + synch that rotates the double
buffers).

``Timeline.dump()`` is deterministic text — the golden files under
``tests/golden/schedule/`` lock the before/after timelines of every
variant, and the confluence property tests compare pass compositions by
dump equality.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.errors import CompilationError
from repro.poly.schedule_tree import ExtensionStmt

#: role (on the ExtensionStmt) -> timeline stage kind.
ROLE_TO_KIND: Dict[str, str] = {
    "dma_issue": "dma_issue",
    "dma_wait": "dma_wait",
    "rma_issue": "rma_put",
    "rma_wait": "rma_wait",
    "rma_reset": "buffer_swap",
    "synch": "buffer_swap",
    "scale_c": "compute",
    "prologue": "compute",
    "epilogue": "compute",
}

#: Every stage kind a step may carry, in canonical order.
STEP_KINDS = (
    "dma_issue",
    "dma_wait",
    "rma_put",
    "rma_wait",
    "compute",
    "buffer_swap",
)


@dataclass
class ScheduleStep:
    """One timeline entry: a communication/compute statement with its
    stage classification.  ``stmt`` is the live ExtensionStmt the
    materializer re-attaches to the tree."""

    name: str
    kind: str
    role: str
    stmt: ExtensionStmt

    @staticmethod
    def of(stmt: ExtensionStmt) -> "ScheduleStep":
        kind = ROLE_TO_KIND.get(stmt.role)
        if kind is None:
            raise CompilationError(
                f"extension statement {stmt.name!r} has role {stmt.role!r}, "
                f"which maps to no timeline stage (known: {sorted(ROLE_TO_KIND)})"
            )
        return ScheduleStep(stmt.name, kind, stmt.role, stmt)


@dataclass
class Segment:
    """An ordered statement group — one schedule-tree filter.

    ``constraints`` are the filter's guard constraints (the
    ``x <= bound-2`` issue guards of Fig. 11); ``label`` its
    documentation label."""

    steps: List[ScheduleStep]
    constraints: Tuple = ()
    label: str = ""

    def step_names(self) -> List[str]:
        return [s.name for s in self.steps]

    def describe(self) -> str:
        body = "; ".join(f"{s.kind} {s.name}" for s in self.steps)
        guard = (
            " if " + " and ".join(str(c) for c in self.constraints)
            if self.constraints
            else ""
        )
        tag = f" <{self.label}>" if self.label else ""
        return f"{guard}{tag}: {body}".lstrip()


@dataclass
class LevelTimeline:
    """The timeline of one pipeline level."""

    level: str
    peel: List[Segment] = field(default_factory=list)
    body: List[Segment] = field(default_factory=list)
    post: List[Segment] = field(default_factory=list)

    def all_segments(self) -> List[Segment]:
        return [*self.peel, *self.body, *self.post]

    def dump_lines(self) -> List[str]:
        lines = [f"{self.level}:"]
        for seg in self.peel:
            lines.append(f"  peel {seg.describe()}")
        for seg in self.body:
            lines.append(f"  body {seg.describe()}")
        lines.append("  -- compute --")
        for seg in self.post:
            lines.append(f"  post {seg.describe()}")
        return lines


@dataclass
class Timeline:
    """The whole per-CPE timeline, outermost level first.

    ``anchors`` is the extractor's private handle back into the schedule
    tree (see :mod:`repro.schedule.extract`); passes must treat it as
    opaque."""

    levels: Dict[str, LevelTimeline]
    anchors: Optional[object] = None

    def level(self, name: str) -> Optional[LevelTimeline]:
        return self.levels.get(name)

    def step_count(self) -> int:
        return sum(
            len(seg.steps)
            for lvl in self.levels.values()
            for seg in lvl.all_segments()
        )

    def dump(self) -> str:
        lines: List[str] = ["timeline:"]
        for lvl in self.levels.values():
            lines.extend("  " + l for l in lvl.dump_lines())
        return "\n".join(lines) + "\n"
