"""First-class schedule IR for the per-CPE DMA/RMA/compute timeline.

The §6 latency-hiding recipe is one fixed point in a space of legal
pipelines; this package makes the space searchable:

* :mod:`repro.schedule.ir` — the timeline IR (steps, segments, levels);
* :mod:`repro.schedule.extract` — lift the recipe's schedule tree into
  a timeline and write rewritten timelines back;
* :mod:`repro.schedule.passes` — the composable rewrites plus the
  clone → rewrite → replay → admit protocol (every candidate is proven
  on the verifier's ``ScheduleMachine`` and re-checked against the SPM
  budget before it replaces the installed tree);
* :mod:`repro.schedule.search` — greedy seeded pass-ordering search.

Selected via ``CompilerOptions.schedule`` / ``--schedule=optimize``;
each admitted rewrite runs as a ``schedule:<name>`` pipeline pass, so
``swgemm passes list``, ``--print-after`` and the cache identity cover
schedule optimization exactly like every other stage.
"""

from repro.schedule.extract import extract_timeline, materialize
from repro.schedule.ir import (
    ROLE_TO_KIND,
    STEP_KINDS,
    LevelTimeline,
    ScheduleStep,
    Segment,
    Timeline,
)
from repro.schedule.passes import (
    REWRITES,
    Rewrite,
    RewriteOutcome,
    apply_rewrite,
    check_legal,
    lower_root,
)
from repro.schedule.search import greedy_pass_order, simulated_evaluator

__all__ = [
    "ROLE_TO_KIND",
    "STEP_KINDS",
    "LevelTimeline",
    "ScheduleStep",
    "Segment",
    "Timeline",
    "extract_timeline",
    "materialize",
    "REWRITES",
    "Rewrite",
    "RewriteOutcome",
    "apply_rewrite",
    "check_legal",
    "lower_root",
    "greedy_pass_order",
    "simulated_evaluator",
]
