"""Distance-vector dependence analysis.

The paper relies on isl to "determine the parallelism and tilability of the
3D loop nest" (§1, §2.2): the initial band gets *coincident* flags on the
outer two loops and a *permutable* flag on the whole band.  This module
reproduces that analysis for the statement class the compiler accepts —
perfectly-nested statements with quasi-affine accesses.

Approach
--------
For every pair of accesses to the same array where at least one is a write,
we characterise the set of dependence *distance vectors*

    { d != 0 : ∃ I, I+d ∈ domain, subscripts(I) = subscripts'(I+d) }

For *uniform* pairs (identical linear parts, possibly different constant
offsets) this is the integer solution set of ``L·d = Δc`` — an affine
family ``p + span(B)`` computed by exact rational elimination.  Each loop
dimension is **coincident** iff every family is identically zero on it; the
band is **permutable** (tilable) iff every lexicographically positive
distance is component-wise non-negative, which we decide exactly for the
axis-aligned families produced by linear-algebra statements and
conservatively otherwise.

Non-uniform pairs fall back to a conservative "carries everything" answer
(with an exact enumeration helper available for the test-suite to
cross-check small instances).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from fractions import Fraction
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Set, Tuple

from repro.errors import PolyhedralError
from repro.poly.affine import AffExpr
from repro.poly.imap import AffineMap
from repro.poly.iset import IntegerSet
from repro.poly.space import Space


@dataclass(frozen=True)
class Access:
    """One array access of a statement."""

    array: str
    map: AffineMap
    is_write: bool


@dataclass
class DistanceFamily:
    """Integer distance vectors ``particular + span(basis)`` (minus 0).

    ``exact`` is False when the family is a conservative over-approximation
    (non-uniform access pair)."""

    particular: Tuple[int, ...]
    basis: Tuple[Tuple[int, ...], ...]
    exact: bool = True
    source: str = ""

    def is_zero_only(self) -> bool:
        return all(v == 0 for v in self.particular) and not self.basis

    def touches_dim(self, j: int) -> bool:
        if self.particular[j] != 0:
            return True
        return any(b[j] != 0 for b in self.basis)


@dataclass
class DependenceSummary:
    """Result of analysing one statement's self-dependences."""

    loop_dims: Tuple[str, ...]
    families: List[DistanceFamily] = field(default_factory=list)
    coincident: Tuple[bool, ...] = ()
    permutable: bool = False
    reduction_dims: Tuple[str, ...] = ()

    def carried_dims(self) -> List[str]:
        return [d for d, c in zip(self.loop_dims, self.coincident) if not c]


# ---------------------------------------------------------------------------
# Exact rational linear algebra (small systems)
# ---------------------------------------------------------------------------


def _solve_linear_system(
    matrix: Sequence[Sequence[int]], rhs: Sequence[int]
) -> Optional[Tuple[List[Fraction], List[List[Fraction]]]]:
    """Solve ``matrix · d = rhs`` over the rationals.

    Returns ``(particular, nullspace_basis)`` or ``None`` if inconsistent.
    """
    rows = [
        [Fraction(v) for v in row] + [Fraction(b)]
        for row, b in zip(matrix, rhs)
    ]
    ncols = len(matrix[0]) if matrix else 0
    pivots: List[int] = []
    r = 0
    for col in range(ncols):
        pivot_row = None
        for i in range(r, len(rows)):
            if rows[i][col] != 0:
                pivot_row = i
                break
        if pivot_row is None:
            continue
        rows[r], rows[pivot_row] = rows[pivot_row], rows[r]
        pivot = rows[r][col]
        rows[r] = [v / pivot for v in rows[r]]
        for i in range(len(rows)):
            if i != r and rows[i][col] != 0:
                factor = rows[i][col]
                rows[i] = [a - factor * b for a, b in zip(rows[i], rows[r])]
        pivots.append(col)
        r += 1
        if r == len(rows):
            break
    # Inconsistency: a zero row with non-zero rhs.
    for row in rows[r:]:
        if all(v == 0 for v in row[:-1]) and row[-1] != 0:
            return None
    particular = [Fraction(0)] * ncols
    for i, col in enumerate(pivots):
        particular[col] = rows[i][-1]
    free_cols = [c for c in range(ncols) if c not in pivots]
    basis: List[List[Fraction]] = []
    for fc in free_cols:
        vec = [Fraction(0)] * ncols
        vec[fc] = Fraction(1)
        for i, col in enumerate(pivots):
            vec[col] = -rows[i][fc]
        basis.append(vec)
    return particular, basis


def _integerize(vec: Sequence[Fraction]) -> Optional[Tuple[int, ...]]:
    """Scale a rational vector to the smallest integer multiple."""
    denom = 1
    for v in vec:
        denom = denom * v.denominator // _gcd(denom, v.denominator)
    scaled = [v * denom for v in vec]
    ints = []
    for v in scaled:
        if v.denominator != 1:
            return None
        ints.append(int(v))
    g = 0
    for v in ints:
        g = _gcd(g, abs(v))
    if g > 1:
        ints = [v // g for v in ints]
    return tuple(ints)


def _gcd(a: int, b: int) -> int:
    while b:
        a, b = b, a % b
    return a


# ---------------------------------------------------------------------------
# Family computation
# ---------------------------------------------------------------------------


def _linear_parts(
    access: AffineMap, loop_dims: Sequence[str]
) -> Optional[Tuple[List[List[int]], List[AffExpr]]]:
    """Split each subscript into (coefficients over loop dims, remainder).

    Returns ``None`` when a subscript contains floor-division terms over
    loop dimensions (non-linear for this analysis)."""
    matrix: List[List[int]] = []
    remainders: List[AffExpr] = []
    for expr in access.exprs:
        for t in expr.divs:
            if t.variables() & set(loop_dims):
                return None
        row = [expr.coefficient(d) for d in loop_dims]
        remainder = expr
        for d in loop_dims:
            remainder = remainder - AffExpr.var(d) * expr.coefficient(d)
        matrix.append(row)
        remainders.append(remainder)
    return matrix, remainders


def dependence_families(
    accesses: Sequence[Access],
    loop_dims: Sequence[str],
) -> List[DistanceFamily]:
    """Distance families for all write/read and write/write pairs."""
    families: List[DistanceFamily] = []
    n = len(loop_dims)
    by_array: Dict[str, List[Access]] = {}
    for a in accesses:
        by_array.setdefault(a.array, []).append(a)
    for array, group in sorted(by_array.items()):
        for a1 in group:
            for a2 in group:
                if not (a1.is_write or a2.is_write):
                    continue
                if a1 is a2 and not a1.is_write:
                    continue
                parts1 = _linear_parts(a1.map, loop_dims)
                parts2 = _linear_parts(a2.map, loop_dims)
                label = f"{array}:{'W' if a1.is_write else 'R'}->" \
                        f"{'W' if a2.is_write else 'R'}"
                if parts1 is None or parts2 is None:
                    families.append(_conservative_family(n, label))
                    continue
                m1, r1 = parts1
                m2, r2 = parts2
                if m1 != m2:
                    families.append(_conservative_family(n, label))
                    continue
                delta: List[int] = []
                uniform = True
                for e1, e2 in zip(r1, r2):
                    diff = e1 - e2
                    if not diff.is_constant():
                        uniform = False
                        break
                    delta.append(diff.constant_value())
                if not uniform:
                    families.append(_conservative_family(n, label))
                    continue
                solution = _solve_linear_system(m1, delta)
                if solution is None:
                    continue  # no dependence at all
                particular, basis = solution
                p_int = _integerize(particular)
                basis_int = []
                ok = p_int is not None
                for b in basis:
                    bi = _integerize(b)
                    if bi is None:
                        ok = False
                        break
                    basis_int.append(bi)
                if not ok:
                    families.append(_conservative_family(n, label))
                    continue
                family = DistanceFamily(p_int, tuple(basis_int), True, label)
                if family.is_zero_only():
                    continue  # only the trivial self-dependence
                families.append(family)
    return families


def _conservative_family(n: int, label: str) -> DistanceFamily:
    """All-dims-touched over-approximation."""
    basis = tuple(
        tuple(1 if i == j else 0 for i in range(n)) for j in range(n)
    )
    return DistanceFamily(tuple([0] * n), basis, False, label)


# ---------------------------------------------------------------------------
# Band attributes
# ---------------------------------------------------------------------------


def _family_permutable(family: DistanceFamily) -> bool:
    """Is every lexicographically positive distance component-wise >= 0?

    Exact for the shapes linear-algebra statements produce:

    * constant distances (empty basis): the lex-positive representative of
      ``{p, -p}`` must be non-negative;
    * pure span families (``p = 0``) with axis-aligned basis: permutable
      iff a single dimension is free (distances ``t·e_j``, whose
      lex-positive half is ``t > 0``).

    Anything else is conservatively non-permutable.
    """
    if not family.exact:
        return False
    p = family.particular
    if not family.basis:
        rep = p if _lex_positive(p) else tuple(-v for v in p)
        return all(v >= 0 for v in rep)
    if any(v != 0 for v in p):
        return False
    axis_dims: Set[int] = set()
    for b in family.basis:
        nonzero = [j for j, v in enumerate(b) if v != 0]
        if len(nonzero) != 1:
            return False
        axis_dims.add(nonzero[0])
    return len(axis_dims) <= 1


def _lex_positive(vec: Sequence[int]) -> bool:
    for v in vec:
        if v > 0:
            return True
        if v < 0:
            return False
    return False


def detect_reductions(
    accesses: Sequence[Access], loop_dims: Sequence[str]
) -> Tuple[str, ...]:
    """Dimensions reduced by an accumulation (read & write through the
    identical access map, with some loop dims absent from the subscripts)."""
    reduced: List[str] = []
    writes = [a for a in accesses if a.is_write]
    reads = [a for a in accesses if not a.is_write]
    for w in writes:
        for r in reads:
            if r.array == w.array and r.map.exprs == w.map.exprs:
                used = w.map.variables()
                for d in loop_dims:
                    if d not in used and d not in reduced:
                        reduced.append(d)
    return tuple(reduced)


def analyze_statement(
    domain: IntegerSet,
    accesses: Sequence[Access],
    loop_dims: Optional[Sequence[str]] = None,
) -> DependenceSummary:
    """Full analysis for one statement: coincidence per dimension,
    permutability of the band and reduction dimensions."""
    dims = tuple(loop_dims if loop_dims is not None else domain.space.dims)
    families = dependence_families(accesses, dims)
    coincident = tuple(
        not any(f.touches_dim(j) for f in families) for j in range(len(dims))
    )
    permutable = all(_family_permutable(f) for f in families)
    reductions = detect_reductions(accesses, dims)
    return DependenceSummary(
        loop_dims=dims,
        families=families,
        coincident=coincident,
        permutable=permutable,
        reduction_dims=reductions,
    )


def enumerate_distances(
    domain: IntegerSet,
    accesses: Sequence[Access],
    params: Mapping[str, int],
    loop_dims: Optional[Sequence[str]] = None,
) -> Set[Tuple[int, ...]]:
    """Brute-force lexicographically-positive distance vectors over a small
    bounded domain.  Test oracle for :func:`dependence_families`."""
    dims = tuple(loop_dims if loop_dims is not None else domain.space.dims)
    points = list(domain.points(params))
    distances: Set[Tuple[int, ...]] = set()
    by_array: Dict[str, List[Access]] = {}
    for a in accesses:
        by_array.setdefault(a.array, []).append(a)
    for group in by_array.values():
        for a1 in group:
            for a2 in group:
                if not (a1.is_write or a2.is_write):
                    continue
                cells1: Dict[Tuple[int, ...], List[Tuple[int, ...]]] = {}
                for pt in points:
                    cells1.setdefault(a1.map.apply(pt, params), []).append(
                        tuple(pt[d] for d in dims)
                    )
                for pt in points:
                    cell = a2.map.apply(pt, params)
                    for src in cells1.get(cell, ()):
                        dst = tuple(pt[d] for d in dims)
                        d = tuple(b - a for a, b in zip(src, dst))
                        if _lex_positive(d):
                            distances.add(d)
    return distances
