"""Schedule trees.

The internal representation of the polyhedral model used throughout the
paper (Grosser, Verdoolaege, Cohen — "Polyhedral AST Generation Is More
Than Scanning Polyhedra").  The node types reproduce §2.2:

``DomainNode``
    Root; a group of integer sets, one per statement.
``BandNode``
    A (partial) schedule: one quasi-affine expression per statement per
    band member.  Members carry the ``coincident`` (parallelizable) and
    band-level ``permutable`` (tilable) attributes that the dependence
    analysis attaches, plus the explicit loop extent our transforms
    derive — which is what the AST generator scans.
``SequenceNode`` / ``FilterNode``
    Ordered execution of filtered statement subsets; filters may also
    carry constraints on ancestor band variables, which is how loop
    peeling (§6.2, Fig. 11) is expressed.
``ExtensionNode``
    Introduces auxiliary statements not covered by the domain — the DMA
    and RMA copy statements of §§4-5 (Fig. 9).
``MarkNode``
    Carries a string for the code generator — used to splice in the
    inline assembly micro kernel (§7.2) and to skip fused prologue
    subtrees (§7.3, Fig. 12a).
``ContextNode``
    Constraints on parameters (e.g. divisibility assumptions).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterator, List, Mapping, Optional, Sequence, Tuple

from repro.errors import ScheduleTreeError
from repro.poly.affine import AffExpr
from repro.poly.imap import AffineMap
from repro.poly.iset import Constraint, IntegerSet

_counter = itertools.count()


class ScheduleNode:
    """Base class of all schedule-tree nodes."""

    kind = "node"

    def __init__(self, children: Optional[List["ScheduleNode"]] = None) -> None:
        self.children: List[ScheduleNode] = list(children or [])

    # -- tree structure -------------------------------------------------

    @property
    def child(self) -> "ScheduleNode":
        """The unique child (raises for sequence nodes with != 1 child)."""
        if len(self.children) != 1:
            raise ScheduleTreeError(
                f"{self.kind} node has {len(self.children)} children, expected 1"
            )
        return self.children[0]

    def set_child(self, node: "ScheduleNode") -> None:
        self.children = [node]

    def walk(self) -> Iterator["ScheduleNode"]:
        """Pre-order traversal."""
        yield self
        for c in self.children:
            yield from c.walk()

    def find_all(self, kind: type) -> List["ScheduleNode"]:
        return [n for n in self.walk() if isinstance(n, kind)]

    def find_mark(self, mark: str) -> Optional["MarkNode"]:
        for n in self.walk():
            if isinstance(n, MarkNode) and n.mark == mark:
                return n
        return None

    def replace_child(self, old: "ScheduleNode", new: "ScheduleNode") -> None:
        for i, c in enumerate(self.children):
            if c is old:
                self.children[i] = new
                return
        raise ScheduleTreeError("replace_child: old child not found")

    # -- display -----------------------------------------------------------

    def _label(self) -> str:
        return self.kind.upper()

    def dump(self, indent: int = 0) -> str:
        """Indented dump resembling the paper's schedule-tree figures."""
        lines = ["  " * indent + self._label()]
        for c in self.children:
            lines.append(c.dump(indent + 1))
        return "\n".join(lines)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<{self.kind} node>"


class DomainNode(ScheduleNode):
    """Root node: one :class:`IntegerSet` per statement."""

    kind = "domain"

    def __init__(
        self,
        statements: Mapping[str, IntegerSet],
        children: Optional[List[ScheduleNode]] = None,
    ) -> None:
        super().__init__(children)
        self.statements: Dict[str, IntegerSet] = dict(statements)

    def statement_names(self) -> List[str]:
        return list(self.statements)

    def domain_of(self, name: str) -> IntegerSet:
        try:
            return self.statements[name]
        except KeyError:
            raise ScheduleTreeError(f"unknown statement {name!r}") from None

    def _label(self) -> str:
        body = "; ".join(str(s) for s in self.statements.values())
        return f"DOMAIN: {body}"


@dataclass
class BandMember:
    """One dimension of a band node.

    Attributes
    ----------
    var:
        The loop-variable name this member becomes in generated code
        (``"it"``, ``"ko"``, ``"Rid"``...).
    schedules:
        Per-statement quasi-affine schedule expression over the original
        statement dimensions (e.g. ``floor(k/32) - 8*floor(k/256)``).
    coincident:
        True when no dependence is carried — the member is parallel.
    extent:
        Half-open loop range ``(lo, hi)`` as affine expressions over
        parameters, derived by the transformation that created the member.
    binding:
        ``None`` for an ordinary loop, ``"mesh_row"`` / ``"mesh_col"``
        for members bound to the CPE mesh (`Rid`/`Cid`, Fig. 4b), or
        ``"batch"`` for the isolated batch dimension (Fig. 3).
    """

    var: str
    schedules: Dict[str, AffExpr]
    coincident: bool = False
    extent: Optional[Tuple[AffExpr, AffExpr]] = None
    binding: Optional[str] = None

    def schedule_for(self, stmt: str) -> AffExpr:
        try:
            return self.schedules[stmt]
        except KeyError:
            raise ScheduleTreeError(
                f"band member {self.var!r} has no schedule for statement {stmt!r}"
            ) from None

    def clone(self) -> "BandMember":
        return BandMember(
            self.var,
            dict(self.schedules),
            self.coincident,
            self.extent,
            self.binding,
        )


class BandNode(ScheduleNode):
    """A nest of loops described as a multi-dimensional schedule."""

    kind = "band"

    def __init__(
        self,
        members: Sequence[BandMember],
        permutable: bool = False,
        children: Optional[List[ScheduleNode]] = None,
    ) -> None:
        super().__init__(children)
        self.members: List[BandMember] = list(members)
        self.permutable = permutable

    @property
    def rank(self) -> int:
        return len(self.members)

    def member_vars(self) -> List[str]:
        return [m.var for m in self.members]

    def statements(self) -> List[str]:
        names: List[str] = []
        for m in self.members:
            for s in m.schedules:
                if s not in names:
                    names.append(s)
        return names

    def _label(self) -> str:
        parts = []
        for m in self.members:
            scheds = "; ".join(f"{s}->{e}" for s, e in sorted(m.schedules.items()))
            flags = []
            if m.coincident:
                flags.append("coincident")
            if m.binding:
                flags.append(m.binding)
            suffix = f" [{', '.join(flags)}]" if flags else ""
            parts.append(f"{m.var}: {scheds}{suffix}")
        tag = "BAND(permutable)" if self.permutable else "BAND"
        return f"{tag}: " + " | ".join(parts)


class SequenceNode(ScheduleNode):
    """Ordered execution of filter children."""

    kind = "sequence"

    def __init__(self, children: Optional[List[ScheduleNode]] = None) -> None:
        super().__init__(children)
        for c in self.children:
            if not isinstance(c, FilterNode):
                raise ScheduleTreeError("sequence children must be filter nodes")

    def append(self, node: "FilterNode") -> None:
        if not isinstance(node, FilterNode):
            raise ScheduleTreeError("sequence children must be filter nodes")
        self.children.append(node)


class FilterNode(ScheduleNode):
    """Restricts execution to a statement subset, optionally under
    constraints on ancestor band variables (used for peeling)."""

    kind = "filter"

    def __init__(
        self,
        statements: Sequence[str],
        children: Optional[List[ScheduleNode]] = None,
        constraints: Sequence[Constraint] = (),
        label: str = "",
    ) -> None:
        super().__init__(children)
        self.statements = tuple(statements)
        self.constraints = tuple(constraints)
        self.label = label

    def _label(self) -> str:
        body = ", ".join(self.statements)
        cons = (
            " : " + " and ".join(str(c) for c in self.constraints)
            if self.constraints
            else ""
        )
        tag = f" <{self.label}>" if self.label else ""
        return f"FILTER{{{body}{cons}}}{tag}"


@dataclass
class ExtensionStmt:
    """An auxiliary statement introduced by an extension node.

    ``relation`` is the affine relation of Fig. 2e / Fig. 9 — from the
    outer schedule dimensions to the promoted footprint; ``role`` names
    the communication primitive the statement will lower to
    (``dma_iget``/``dma_iput``/``rma_row_ibcast``/``rma_col_ibcast``/
    ``reply_wait``/``synch``/``compute``); ``payload`` carries the
    arguments derived by the DMA/RMA passes.
    """

    name: str
    role: str
    relation: Optional[AffineMap] = None
    payload: Dict[str, object] = field(default_factory=dict)

    def clone(self) -> "ExtensionStmt":
        return ExtensionStmt(self.name, self.role, self.relation, dict(self.payload))


class ExtensionNode(ScheduleNode):
    """Introduces statements not covered by the domain node."""

    kind = "extension"

    def __init__(
        self,
        stmts: Sequence[ExtensionStmt],
        children: Optional[List[ScheduleNode]] = None,
    ) -> None:
        super().__init__(children)
        self.stmts: List[ExtensionStmt] = list(stmts)
        names = [s.name for s in self.stmts]
        if len(set(names)) != len(names):
            raise ScheduleTreeError(f"duplicate extension statements: {names}")

    def stmt(self, name: str) -> ExtensionStmt:
        for s in self.stmts:
            if s.name == name:
                return s
        raise ScheduleTreeError(f"extension has no statement {name!r}")

    def _label(self) -> str:
        body = "; ".join(
            f"{s.name}[{s.role}]" + (f" {s.relation}" if s.relation else "")
            for s in self.stmts
        )
        return f"EXTENSION: {body}"


class MarkNode(ScheduleNode):
    """A string marker for the code generator (§7.2)."""

    kind = "mark"

    def __init__(
        self,
        mark: str,
        children: Optional[List[ScheduleNode]] = None,
        payload: Optional[Dict[str, object]] = None,
    ) -> None:
        super().__init__(children)
        self.mark = mark
        self.payload: Dict[str, object] = dict(payload or {})

    def _label(self) -> str:
        return f"MARK: \"{self.mark}\""


class ContextNode(ScheduleNode):
    """Constraints on parameters (divisibility / positivity assumptions)."""

    kind = "context"

    def __init__(
        self,
        constraints: Sequence[Constraint] = (),
        children: Optional[List[ScheduleNode]] = None,
    ) -> None:
        super().__init__(children)
        self.constraints = tuple(constraints)

    def _label(self) -> str:
        body = " and ".join(str(c) for c in self.constraints) or "true"
        return f"CONTEXT: {body}"


# ---------------------------------------------------------------------------
# Utilities
# ---------------------------------------------------------------------------


def clone_tree(node: ScheduleNode) -> ScheduleNode:
    """Deep-copy a schedule tree (band members and extension statements
    are copied; integer sets and affine objects are immutable and shared)."""
    children = [clone_tree(c) for c in node.children]
    if isinstance(node, DomainNode):
        return DomainNode(dict(node.statements), children)
    if isinstance(node, BandNode):
        return BandNode([m.clone() for m in node.members], node.permutable, children)
    if isinstance(node, SequenceNode):
        return SequenceNode(children)
    if isinstance(node, FilterNode):
        return FilterNode(node.statements, children, node.constraints, node.label)
    if isinstance(node, ExtensionNode):
        return ExtensionNode([s.clone() for s in node.stmts], children)
    if isinstance(node, MarkNode):
        return MarkNode(node.mark, children, dict(node.payload))
    if isinstance(node, ContextNode):
        return ContextNode(node.constraints, children)
    raise ScheduleTreeError(f"cannot clone node of kind {node.kind!r}")


def fresh_name(prefix: str) -> str:
    """Globally unique helper-statement name."""
    return f"{prefix}_{next(_counter)}"


def parent_map(root: ScheduleNode) -> Dict[int, ScheduleNode]:
    """Map ``id(child) -> parent`` for an entire tree."""
    parents: Dict[int, ScheduleNode] = {}
    for node in root.walk():
        for c in node.children:
            parents[id(c)] = node
    return parents


def band_ancestors(root: ScheduleNode, target: ScheduleNode) -> List[BandNode]:
    """All band nodes on the path from ``root`` down to ``target``."""
    path: List[BandNode] = []

    def descend(node: ScheduleNode) -> bool:
        if node is target:
            return True
        for c in node.children:
            if isinstance(node, BandNode):
                pass
            if descend(c):
                if isinstance(node, BandNode):
                    path.append(node)
                return True
        return False

    if not descend(root):
        raise ScheduleTreeError("target node not found under root")
    path.reverse()
    return path
