"""Schedule-tree → AST scanner (§7.1).

isl's AST generator walks the schedule tree and produces loops, guards and
statement calls; the paper extends it with a new node type carrying DMA and
RMA statements.  This module reproduces that scanner for the tree shapes
the swgemm pipeline constructs:

* band members become ``for`` loops using the *extents* recorded by the
  transformations (exact under the divisibility context the paper enforces
  with zero padding);
* band members bound to the CPE mesh (``Rid``/``Cid``) become free
  variables of the generated CPE program rather than loops (Fig. 4b);
* filter constraints on a band variable *below* the filter restrict that
  loop's range (loop peeling, Fig. 11); constraints on variables already
  open become ``if`` guards (the ``x < ⌈K/256⌉-1`` issue guards);
* extension statements and marks are lowered through a delegate supplied
  by the caller — the compiler passes a delegate that turns extension
  statements into :class:`~repro.poly.astnodes.CommStmt` and the micro
  kernel mark into a :class:`~repro.poly.astnodes.KernelCall`.

Keeping the scanner generic (and the lowering in the delegate) mirrors the
paper's observation that bridging schedule trees and athread code through
an AST makes the approach portable to other programming models: one only
has to redesign the pretty-print phase.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Protocol, Sequence, Tuple

from repro.errors import CodegenError
from repro.poly.affine import AffExpr, aff_const
from repro.poly.astnodes import (
    AffRef,
    BinExpr,
    Block,
    Expr,
    ForLoop,
    IfStmt,
    IntLit,
    Stmt,
)
from repro.poly.iset import EQ, GE, Constraint
from repro.poly.schedule_tree import (
    BandNode,
    ContextNode,
    DomainNode,
    ExtensionNode,
    ExtensionStmt,
    FilterNode,
    MarkNode,
    ScheduleNode,
    SequenceNode,
)


@dataclass
class ScanContext:
    """State threaded through the scan."""

    open_vars: List[str] = field(default_factory=list)
    active_statements: Tuple[str, ...] = ()
    pending: List[Constraint] = field(default_factory=list)
    extensions: Dict[str, ExtensionStmt] = field(default_factory=dict)
    params: frozenset = frozenset()
    depth: int = 0

    def child(self, **overrides) -> "ScanContext":
        ctx = ScanContext(
            open_vars=list(self.open_vars),
            active_statements=self.active_statements,
            pending=list(self.pending),
            extensions=dict(self.extensions),
            params=self.params,
            depth=self.depth + 1,
        )
        for key, value in overrides.items():
            setattr(ctx, key, value)
        return ctx


class LoweringDelegate(Protocol):
    """Caller-provided lowering of leaf constructs."""

    def lower_extension(self, stmt: ExtensionStmt, ctx: ScanContext) -> List[Stmt]:
        """AST statements for one extension (copy/synch) statement."""

    def lower_compute(self, name: str, ctx: ScanContext) -> List[Stmt]:
        """AST statements for a domain statement at an open leaf."""

    def lower_mark(
        self, mark: MarkNode, ctx: ScanContext
    ) -> Optional[List[Stmt]]:
        """AST statements replacing a marked subtree, or ``None`` to
        descend into the subtree normally."""


@dataclass
class _BoundInfo:
    lo: AffExpr
    hi: AffExpr  # exclusive


class AstGenerator:
    """Scan a schedule tree into a :class:`~repro.poly.astnodes.Block`."""

    def __init__(self, delegate: LoweringDelegate) -> None:
        self.delegate = delegate

    # -- public ----------------------------------------------------------

    def generate(self, root: ScheduleNode, params: Sequence[str] = ()) -> Block:
        """Scan ``root``; ``params`` names the symbolic problem parameters
        (M, N, K, …) so that guard constraints mentioning them are not
        mistaken for constraints on unopened loops."""
        ctx = ScanContext(params=frozenset(params))
        return Block(self._scan(root, ctx))

    # -- scanning -----------------------------------------------------------

    def _scan(self, node: ScheduleNode, ctx: ScanContext) -> List[Stmt]:
        if isinstance(node, (DomainNode, ContextNode)):
            if isinstance(node, DomainNode) and not ctx.active_statements:
                ctx = ctx.child(
                    active_statements=tuple(node.statement_names()), depth=ctx.depth
                )
            return self._scan_children(node, ctx)
        if isinstance(node, BandNode):
            return self._scan_band(node, ctx)
        if isinstance(node, SequenceNode):
            stmts: List[Stmt] = []
            for child in node.children:
                stmts.extend(self._scan(child, ctx))
            return stmts
        if isinstance(node, FilterNode):
            return self._scan_filter(node, ctx)
        if isinstance(node, ExtensionNode):
            new_ctx = ctx.child()
            for stmt in node.stmts:
                if stmt.name in new_ctx.extensions:
                    raise CodegenError(f"extension statement {stmt.name!r} shadowed")
                new_ctx.extensions[stmt.name] = stmt
            return self._scan_children(node, new_ctx)
        if isinstance(node, MarkNode):
            lowered = self.delegate.lower_mark(node, ctx)
            if lowered is not None:
                return lowered
            return self._scan_children(node, ctx)
        raise CodegenError(f"cannot scan node of kind {node.kind!r}")

    def _scan_children(self, node: ScheduleNode, ctx: ScanContext) -> List[Stmt]:
        stmts: List[Stmt] = []
        for child in node.children:
            stmts.extend(self._scan(child, ctx))
        return stmts

    # -- bands -----------------------------------------------------------------

    def _scan_band(self, band: BandNode, ctx: ScanContext) -> List[Stmt]:
        return self._scan_band_member(band, 0, ctx)

    def _scan_band_member(
        self, band: BandNode, index: int, ctx: ScanContext
    ) -> List[Stmt]:
        if index == band.rank:
            if band.children:
                return self._scan_children(band, ctx)
            # Leaf band: emit the active domain statements scalar-style.
            stmts: List[Stmt] = []
            for name in ctx.active_statements:
                if name in ctx.extensions:
                    stmts.extend(self.delegate.lower_extension(ctx.extensions[name], ctx))
                else:
                    stmts.extend(self.delegate.lower_compute(name, ctx))
            return stmts
        member = band.members[index]
        if member.binding in ("mesh_row", "mesh_col"):
            # Spatial dimension: Rid/Cid are per-CPE constants, no loop.
            new_ctx = ctx.child()
            new_ctx.open_vars.append(member.var)
            return self._scan_band_member(band, index + 1, new_ctx)
        if member.extent is None:
            raise CodegenError(f"band member {member.var!r} has no extent")
        bounds = _BoundInfo(member.extent[0], member.extent[1])
        new_ctx = ctx.child()
        consumed: List[Constraint] = []
        for constraint in new_ctx.pending:
            adjusted = _apply_constraint_to_bounds(constraint, member.var, bounds)
            if adjusted:
                consumed.append(constraint)
        for constraint in consumed:
            new_ctx.pending.remove(constraint)
        new_ctx.open_vars.append(member.var)
        body_stmts = self._scan_band_member(band, index + 1, new_ctx)
        loop = ForLoop(
            var=member.var,
            lo=AffRef(bounds.lo),
            hi=AffRef(bounds.hi),
            body=Block(body_stmts),
            annotation=member.binding or "",
        )
        return [loop]

    # -- filters -----------------------------------------------------------------

    def _scan_filter(self, node: FilterNode, ctx: ScanContext) -> List[Stmt]:
        new_ctx = ctx.child(active_statements=tuple(node.statements))
        guards: List[Constraint] = []
        for constraint in node.constraints:
            loop_vars = constraint.variables() - ctx.params
            if loop_vars and loop_vars <= set(ctx.open_vars):
                guards.append(constraint)
            else:
                new_ctx.pending.append(constraint)
        if node.children:
            inner = self._scan_children(node, new_ctx)
        else:
            inner = []
            for name in node.statements:
                if name in new_ctx.extensions:
                    inner.extend(
                        self.delegate.lower_extension(new_ctx.extensions[name], new_ctx)
                    )
                else:
                    inner.extend(self.delegate.lower_compute(name, new_ctx))
        if new_ctx.pending and not node.children:
            raise CodegenError(
                f"filter constraints {[str(c) for c in new_ctx.pending]} were "
                "never consumed by a band"
            )
        if not inner:
            return []
        if guards:
            cond = _constraints_to_expr(guards)
            return [IfStmt(cond, Block(inner))]
        return inner


# ---------------------------------------------------------------------------
# Constraint handling
# ---------------------------------------------------------------------------


def _apply_constraint_to_bounds(
    constraint: Constraint, var: str, bounds: _BoundInfo
) -> bool:
    """Tighten ``bounds`` of loop ``var`` with a peeling constraint.

    Supports the shapes produced by :func:`repro.poly.transforms.peel_eq`
    and :func:`repro.poly.transforms.peel_range`: the constraint expression
    must mention ``var`` with coefficient ±1 and no other not-yet-open loop
    variables.  Returns True when consumed.
    """
    coeff = constraint.expr.coefficient(var)
    if coeff == 0:
        return False
    if abs(coeff) != 1:
        raise CodegenError(
            f"unsupported peeling constraint {constraint} (|coeff| != 1)"
        )
    rest = constraint.expr - AffExpr.var(var) * coeff
    if constraint.kind == EQ:
        # var*coeff + rest == 0  =>  var == -rest/coeff
        value = rest * (-coeff)
        bounds.lo = value
        bounds.hi = value + 1
        return True
    # GE
    if coeff > 0:
        # var >= -rest
        candidate = rest * -1
        bounds.lo = _aff_max(bounds.lo, candidate)
    else:
        # var <= rest  =>  var < rest + 1
        candidate = rest + 1
        bounds.hi = _aff_min(bounds.hi, candidate)
    return True


def _aff_max(a: AffExpr, b: AffExpr) -> AffExpr:
    if a.is_constant() and b.is_constant():
        return a if a.constant_value() >= b.constant_value() else b
    if a == b:
        return a
    if a.is_constant() and a.constant_value() == 0:
        return b  # loop ranges are non-negative by construction
    raise CodegenError(f"cannot compare symbolic bounds max({a}, {b})")


def _aff_min(a: AffExpr, b: AffExpr) -> AffExpr:
    if a.is_constant() and b.is_constant():
        return a if a.constant_value() <= b.constant_value() else b
    if a == b:
        return a
    # Peeling only ever shrinks ranges: ``hi`` was the full extent and the
    # candidate is ``extent - c`` for some c >= 0; prefer the candidate.
    diff = a - b
    if diff.is_constant():
        return b if diff.constant_value() >= 0 else a
    raise CodegenError(f"cannot compare symbolic bounds min({a}, {b})")


def _constraints_to_expr(constraints: Sequence[Constraint]) -> Expr:
    exprs: List[Expr] = []
    for c in constraints:
        op = "==" if c.kind == EQ else ">="
        exprs.append(BinExpr(op, AffRef(c.expr), IntLit(0)))
    result = exprs[0]
    for e in exprs[1:]:
        result = BinExpr("&&", result, e)
    return result
