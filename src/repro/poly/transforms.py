"""Schedule-tree transformations.

The primitives behind the paper's compute-decomposition and communication
passes:

* :func:`tile_band` — classical rectangular tiling (Fig. 2c / Fig. 4a):
  each band member ``e`` splits into a tile loop ``floor(e/T)`` and a
  point loop ``e - T*floor(e/T)``;
* :func:`isolate_member` — split one member into its own band, used to
  isolate the batch dimension (Fig. 3) and the reduced dimension before
  strip-mining (Fig. 6);
* :func:`strip_mine` — strip-mine a single member by a factor (Fig. 6;
  always valid since no permutation is involved, Kelly & Pugh);
* :func:`attach_copies` — wrap a subtree in an extension node + sequence
  with leading/trailing filtered copy statements (Fig. 2e / Fig. 9);
* :func:`insert_mark` — wrap a subtree in a mark node (§7.2);
* peeling helpers (:func:`peel_eq`, :func:`peel_range`) that build the
  filter constraints of the software-pipelined tree (Fig. 11).

All transformations mutate the tree in place (callers own the tree) and
return the newly created nodes for further surgery.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import ScheduleTreeError
from repro.poly.affine import AffExpr, IntLike, aff_const, aff_var
from repro.poly.iset import Constraint, eq, ge, lt
from repro.poly.schedule_tree import (
    BandMember,
    BandNode,
    ExtensionNode,
    ExtensionStmt,
    FilterNode,
    MarkNode,
    ScheduleNode,
    SequenceNode,
)


def _zero_based_extent(member: BandMember) -> AffExpr:
    """The exclusive upper bound of a zero-based member extent."""
    if member.extent is None:
        raise ScheduleTreeError(
            f"band member {member.var!r} has no extent; set it before tiling"
        )
    lo, hi = member.extent
    if not (lo.is_constant() and lo.constant_value() == 0):
        raise ScheduleTreeError(
            f"band member {member.var!r} extent must start at 0, got {lo}"
        )
    return hi


def tile_band(
    band: BandNode,
    sizes: Sequence[int],
    tile_vars: Sequence[str],
    point_vars: Sequence[str],
) -> Tuple[BandNode, BandNode]:
    """Tile every member of ``band`` rectangularly.

    The band is split in place into an outer *tile* band (iterating
    between tiles) and an inner *point* band (iterating within a tile),
    exactly as Fig. 2c.  Extents assume the divisibility the paper
    enforces by zero padding (§8.1): the tile-loop extent is
    ``extent / size`` and the point-loop extent is ``size``.

    Returns ``(outer_band, inner_band)`` where ``outer_band`` *is* the
    original node object (so parents stay valid).
    """
    if not (len(sizes) == len(tile_vars) == len(point_vars) == band.rank):
        raise ScheduleTreeError(
            f"tile_band: got {len(sizes)} sizes for a rank-{band.rank} band"
        )
    outer_members: List[BandMember] = []
    inner_members: List[BandMember] = []
    for member, size, tvar, pvar in zip(band.members, sizes, tile_vars, point_vars):
        if size <= 0:
            raise ScheduleTreeError(f"tile size must be positive, got {size}")
        hi = _zero_based_extent(member)
        outer_scheds = {
            stmt: sched.floordiv(size) for stmt, sched in member.schedules.items()
        }
        inner_scheds = {
            stmt: sched - sched.floordiv(size) * size
            for stmt, sched in member.schedules.items()
        }
        outer_members.append(
            BandMember(
                var=tvar,
                schedules=outer_scheds,
                coincident=member.coincident,
                extent=(aff_const(0), hi.floordiv(size)),
            )
        )
        inner_members.append(
            BandMember(
                var=pvar,
                schedules=inner_scheds,
                coincident=member.coincident,
                extent=(aff_const(0), aff_const(size)),
            )
        )
    inner_band = BandNode(inner_members, band.permutable, band.children)
    band.members = outer_members
    band.children = [inner_band]
    return band, inner_band


def isolate_member(band: BandNode, index: int) -> Tuple[BandNode, BandNode]:
    """Split member ``index`` of ``band`` into its own band above the rest.

    Used to isolate the batch dimension of batched GEMM (Fig. 3) and the
    reduced tile dimension before strip-mining (Fig. 6).  Returns
    ``(isolated_band, remainder_band)``; ``isolated_band`` is the original
    node object.
    """
    if band.rank < 2:
        raise ScheduleTreeError("cannot isolate a member of a rank-<2 band")
    if not 0 <= index < band.rank:
        raise ScheduleTreeError(f"isolate_member: index {index} out of range")
    isolated = band.members[index]
    rest = [m for i, m in enumerate(band.members) if i != index]
    remainder = BandNode(rest, band.permutable, band.children)
    band.members = [isolated]
    band.children = [remainder]
    return band, remainder


def split_band(band: BandNode, count: int) -> Tuple[BandNode, BandNode]:
    """Split a band after its first ``count`` members (in place)."""
    if not 0 < count < band.rank:
        raise ScheduleTreeError(
            f"split_band: cannot split rank-{band.rank} band after {count}"
        )
    lower = BandNode(band.members[count:], band.permutable, band.children)
    band.members = band.members[:count]
    band.children = [lower]
    return band, lower


def strip_mine(
    band: BandNode,
    index: int,
    factor: int,
    outer_var: str,
    inner_var: str,
) -> Tuple[BandNode, BandNode]:
    """Strip-mine member ``index`` (which must be alone or isolated first).

    The member with schedule ``e`` and extent ``E`` becomes an outer member
    ``floor(e/factor)`` with extent ``E/factor`` over an inner member
    ``e - factor*floor(e/factor)`` with extent ``factor`` — Fig. 6 uses
    ``e = floor(k/32)`` and ``factor = 8`` so the inner loop enumerates the
    eight k-slices held across a mesh row/column.

    Strip-mining involves no permutation and is therefore always valid.
    """
    if band.rank != 1:
        raise ScheduleTreeError(
            "strip_mine expects a rank-1 band; call isolate_member first"
        )
    if index != 0:
        raise ScheduleTreeError("strip_mine: rank-1 band only has member 0")
    if factor <= 0:
        raise ScheduleTreeError(f"strip-mine factor must be positive, got {factor}")
    member = band.members[0]
    hi = _zero_based_extent(member)
    outer = BandMember(
        var=outer_var,
        schedules={s: e.floordiv(factor) for s, e in member.schedules.items()},
        coincident=member.coincident,
        extent=(aff_const(0), hi.floordiv(factor)),
    )
    inner = BandMember(
        var=inner_var,
        schedules={
            s: e - e.floordiv(factor) * factor for s, e in member.schedules.items()
        },
        coincident=member.coincident,
        extent=(aff_const(0), aff_const(factor)),
    )
    inner_band = BandNode([inner], band.permutable, band.children)
    band.members = [outer]
    band.children = [inner_band]
    return band, inner_band


# ---------------------------------------------------------------------------
# Extension / copy insertion (Figs. 2e, 9)
# ---------------------------------------------------------------------------


def attach_copies(
    parent: ScheduleNode,
    subtree: ScheduleNode,
    compute_statements: Sequence[str],
    pre_groups: Sequence[Sequence[ExtensionStmt]] = (),
    post_groups: Sequence[Sequence[ExtensionStmt]] = (),
) -> ExtensionNode:
    """Wrap ``subtree`` (a child of ``parent``) with copy statements.

    Builds, in place of ``subtree``::

        EXTENSION: all copy statements
          SEQUENCE:
            FILTER{pre_groups[0]}    # scheduled together, the ⊗ of Fig. 9
            FILTER{pre_groups[1]}
            ...
            FILTER{compute_statements} -> subtree
            FILTER{post_groups[0]}
            ...

    Returns the new extension node.
    """
    all_stmts: List[ExtensionStmt] = []
    filters: List[FilterNode] = []
    for group in pre_groups:
        group = list(group)
        all_stmts.extend(group)
        filters.append(FilterNode([s.name for s in group]))
    filters.append(FilterNode(list(compute_statements), [subtree]))
    for group in post_groups:
        group = list(group)
        all_stmts.extend(group)
        filters.append(FilterNode([s.name for s in group]))
    sequence = SequenceNode(filters)
    extension = ExtensionNode(all_stmts, [sequence])
    parent.replace_child(subtree, extension)
    return extension


def insert_mark(
    parent: ScheduleNode,
    subtree: ScheduleNode,
    mark: str,
    payload: Optional[Dict[str, object]] = None,
) -> MarkNode:
    """Wrap ``subtree`` in a mark node (in place)."""
    node = MarkNode(mark, [subtree], payload)
    parent.replace_child(subtree, node)
    return node


# ---------------------------------------------------------------------------
# Peeling constraints (§6.2)
# ---------------------------------------------------------------------------


def peel_eq(var: str, value: IntLike) -> Constraint:
    """Filter constraint selecting the single iteration ``var == value``."""
    return eq(aff_var(var), value)


def peel_range(var: str, lo: IntLike, hi: IntLike) -> Tuple[Constraint, Constraint]:
    """Filter constraints selecting ``lo <= var < hi``."""
    return (ge(aff_var(var), lo), lt(aff_var(var), hi))


def filtered(
    statements: Sequence[str],
    child: Optional[ScheduleNode] = None,
    constraints: Sequence[Constraint] = (),
    label: str = "",
) -> FilterNode:
    """Convenience constructor for a filter node."""
    return FilterNode(
        statements,
        [child] if child is not None else [],
        constraints,
        label,
    )


def schedule_depth(band: BandNode) -> int:
    """Rank contributed by a band to schedule tuples beneath it."""
    return band.rank


def collect_loop_vars(root: ScheduleNode) -> List[str]:
    """All band-member loop variables in pre-order (debug/test helper)."""
    names: List[str] = []
    for node in root.walk():
        if isinstance(node, BandNode):
            names.extend(node.member_vars())
    return names
