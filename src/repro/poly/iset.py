"""Integer sets over named spaces.

An :class:`IntegerSet` is the conjunction of quasi-affine constraints over
the dimensions of a :class:`~repro.poly.space.Space` — the representation
used by the domain node of a schedule tree, e.g.::

    { S1(i, j, k) : 0 <= i < M and 0 <= j < N and 0 <= k < K }

This reproduction needs two levels of power from integer sets:

1. *exact box reasoning* — after the frontend canonicalises the loop nest,
   every set the compiler manipulates is a (parametric) box; footprints of
   affine accesses over boxes are again boxes, computed exactly by interval
   analysis (:meth:`IntegerSet.bounding_box`);
2. *general membership and bounded enumeration* — used by dependence
   analysis and by the property-based test-suite to cross-check the box
   paths against brute force.

Parameters (``M``, ``N``, ``K``...) are ordinary variable names that are
simply not dimensions of the set's space; they stay symbolic until bound by
a parameter environment.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, List, Mapping, Optional, Tuple

from repro.errors import EmptySetError, NonAffineError, PolyhedralError, SpaceMismatchError
from repro.poly.affine import AffExpr, IntLike, aff_const
from repro.poly.space import Space

EQ = "=="
GE = ">="


@dataclass(frozen=True)
class Constraint:
    """A single constraint ``expr >= 0`` or ``expr == 0``."""

    expr: AffExpr
    kind: str = GE

    def __post_init__(self) -> None:
        if self.kind not in (EQ, GE):
            raise PolyhedralError(f"invalid constraint kind {self.kind!r}")

    def holds(self, env: Mapping[str, int]) -> bool:
        value = self.expr.evaluate(env)
        return value == 0 if self.kind == EQ else value >= 0

    def negated(self) -> "List[Constraint]":
        """Constraints whose disjunction is the negation (GE only)."""
        if self.kind == GE:
            # not(e >= 0)  <=>  -e - 1 >= 0
            return [Constraint(-self.expr - 1, GE)]
        # not(e == 0) is a disjunction; callers must handle both branches.
        return [Constraint(self.expr - 1, GE), Constraint(-self.expr - 1, GE)]

    def substitute(self, bindings: Mapping[str, IntLike]) -> "Constraint":
        return Constraint(self.expr.substitute(bindings), self.kind)

    def variables(self) -> frozenset:
        return self.expr.variables()

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        op = "=" if self.kind == EQ else ">="
        return f"{self.expr} {op} 0"


def ge(expr: IntLike, bound: IntLike = 0) -> Constraint:
    """``expr >= bound``."""
    return Constraint(AffExpr.coerce(expr) - AffExpr.coerce(bound), GE)


def le(expr: IntLike, bound: IntLike) -> Constraint:
    """``expr <= bound``."""
    return Constraint(AffExpr.coerce(bound) - AffExpr.coerce(expr), GE)


def lt(expr: IntLike, bound: IntLike) -> Constraint:
    """``expr < bound``."""
    return Constraint(AffExpr.coerce(bound) - AffExpr.coerce(expr) - 1, GE)


def eq(expr: IntLike, value: IntLike = 0) -> Constraint:
    """``expr == value``."""
    return Constraint(AffExpr.coerce(expr) - AffExpr.coerce(value), EQ)


class IntegerSet:
    """A conjunction of quasi-affine constraints over a named space."""

    __slots__ = ("space", "constraints")

    def __init__(self, space: Space, constraints: Iterable[Constraint] = ()) -> None:
        self.space = space
        # Deduplicate structurally while preserving insertion order.
        seen = set()
        normalised: List[Constraint] = []
        for c in constraints:
            if c not in seen:
                seen.add(c)
                normalised.append(c)
        self.constraints = tuple(normalised)

    # -- construction ----------------------------------------------------

    @staticmethod
    def universe(space: Space) -> "IntegerSet":
        return IntegerSet(space, ())

    def with_constraints(self, extra: Iterable[Constraint]) -> "IntegerSet":
        return IntegerSet(self.space, tuple(self.constraints) + tuple(extra))

    def intersect(self, other: "IntegerSet") -> "IntegerSet":
        self.space.require_same(other.space)
        return self.with_constraints(other.constraints)

    def substitute_params(self, params: Mapping[str, int]) -> "IntegerSet":
        """Bind parameter names to integer values."""
        usable = {
            name: value for name, value in params.items()
            if not self.space.has_dim(name)
        }
        return IntegerSet(
            self.space,
            tuple(c.substitute(usable) for c in self.constraints),
        )

    # -- queries -----------------------------------------------------------

    def parameters(self) -> frozenset:
        """Free names that are not dimensions of the space."""
        names = set()
        for c in self.constraints:
            names |= c.variables()
        return frozenset(n for n in names if not self.space.has_dim(n))

    def contains(self, point: Mapping[str, int], params: Mapping[str, int] = ()) -> bool:
        env: Dict[str, int] = dict(params or {})
        env.update(point)
        missing = [d for d in self.space.dims if d not in env]
        if missing:
            raise SpaceMismatchError(f"point misses dimensions {missing}")
        return all(c.holds(env) for c in self.constraints)

    # -- box reasoning -------------------------------------------------------

    def bounding_box(
        self, params: Mapping[str, int] = ()
    ) -> Dict[str, Tuple[int, int]]:
        """Exact per-dimension inclusive bounds for box-shaped sets.

        Runs interval constraint propagation to a fixed point: each
        constraint is solved for each dimension it mentions linearly, with
        the remaining terms over-approximated by their current interval.
        For sets whose constraints are conjunctions of per-dimension bounds
        (every set this compiler builds) the result is exact.

        Raises :class:`PolyhedralError` if a dimension is unbounded or the
        set is empty.
        """
        params = dict(params or {})
        box: Dict[str, Tuple[Optional[int], Optional[int]]] = {
            d: (None, None) for d in self.space.dims
        }
        grounded = [c.substitute(params) for c in self.constraints]
        for c in grounded:
            free = c.variables() - set(self.space.dims)
            if free:
                raise PolyhedralError(
                    f"unbound parameters {sorted(free)} in bounding_box of {self}"
                )

        def current(dim: str) -> Tuple[int, int]:
            lo, hi = box[dim]
            if lo is None or hi is None:
                raise _Unbounded(dim)
            return (lo, hi)

        changed = True
        iterations = 0
        while changed:
            changed = False
            iterations += 1
            if iterations > 64 + 4 * len(grounded):
                break  # propagation has converged as far as it will
            for c in grounded:
                for dim in self.space.dims:
                    coeff = c.expr.coefficient(dim)
                    if coeff == 0:
                        continue
                    rest = c.expr - AffExpr.var(dim) * coeff
                    try:
                        rest_box = {
                            d: current(d) for d in rest.variables()
                        }
                    except _Unbounded:
                        continue
                    rlo, rhi = rest.interval(rest_box)
                    lo, hi = box[dim]
                    # coeff*dim + rest >= 0  (or == 0)
                    if c.kind == GE:
                        if coeff > 0:
                            # dim >= (-rest)/coeff; the enclosure over all
                            # rest values uses rest's maximum.
                            new_lo = _ceil_div(-rhi, coeff)
                            if lo is None or new_lo > lo:
                                box[dim] = (new_lo, hi)
                                changed = True
                        else:
                            new_hi = _floor_div(rhi, -coeff)
                            lo, hi = box[dim]
                            if hi is None or new_hi < hi:
                                box[dim] = (lo, new_hi)
                                changed = True
                    else:  # EQ: both directions
                        if coeff > 0:
                            new_lo = _ceil_div(-rhi, coeff)
                            new_hi = _floor_div(-rlo, coeff)
                        else:
                            new_lo = _ceil_div(rlo, -coeff)
                            new_hi = _floor_div(rhi, -coeff)
                        lo, hi = box[dim]
                        updated = (
                            new_lo if lo is None or new_lo > lo else lo,
                            new_hi if hi is None or new_hi < hi else hi,
                        )
                        if updated != (lo, hi):
                            box[dim] = updated
                            changed = True
        result: Dict[str, Tuple[int, int]] = {}
        for dim, (lo, hi) in box.items():
            if lo is None or hi is None:
                raise PolyhedralError(
                    f"dimension {dim!r} is unbounded in {self}"
                )
            if lo > hi:
                raise EmptySetError(f"set {self} is empty along {dim!r}")
            result[dim] = (lo, hi)
        return result

    def is_empty(self, params: Mapping[str, int] = ()) -> bool:
        """Emptiness check: box propagation first, enumeration fallback."""
        try:
            box = self.bounding_box(params)
        except EmptySetError:
            return True
        size = 1
        for lo, hi in box.values():
            size *= hi - lo + 1
            if size > 200_000:
                # The box is non-empty and huge; for the conjunctive
                # per-dimension constraints this compiler produces the box
                # is exact, so the set is non-empty.
                return False
        return not any(True for _ in self.points(params, _box=box))

    def points(
        self,
        params: Mapping[str, int] = (),
        _box: Optional[Dict[str, Tuple[int, int]]] = None,
    ) -> Iterator[Dict[str, int]]:
        """Enumerate all integer points (bounded sets only)."""
        if _box is None:
            try:
                _box = self.bounding_box(params)
            except EmptySetError:
                return
        box = _box
        dims = list(self.space.dims)
        ranges = [range(box[d][0], box[d][1] + 1) for d in dims]
        env_params = dict(params or {})
        for combo in itertools.product(*ranges):
            point = dict(zip(dims, combo))
            if self.contains(point, env_params):
                yield point

    def count(self, params: Mapping[str, int] = ()) -> int:
        """Number of integer points (bounded sets only)."""
        return sum(1 for _ in self.points(params))

    # -- structural -----------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, IntegerSet)
            and self.space == other.space
            and set(self.constraints) == set(other.constraints)
        )

    def __hash__(self) -> int:
        return hash((self.space, frozenset(self.constraints)))

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        body = " and ".join(str(c) for c in self.constraints) or "true"
        return f"{{ {self.space} : {body} }}"

    __repr__ = __str__


class _Unbounded(Exception):
    def __init__(self, dim: str) -> None:
        super().__init__(dim)
        self.dim = dim


def _ceil_div(a: int, b: int) -> int:
    """Ceiling division for positive ``b``."""
    return -((-a) // b)


def _floor_div(a: int, b: int) -> int:
    """Floor division for positive ``b``."""
    return a // b


def box_set(
    space: Space,
    bounds: Mapping[str, Tuple[IntLike, IntLike]],
) -> IntegerSet:
    """Build ``{ space : lo_d <= d < hi_d for each dim }``.

    ``bounds`` maps each dimension to a half-open ``(lo, hi)`` pair whose
    entries may be integers or affine expressions in parameters — matching
    the paper's ``0 <= i < M`` style domains.
    """
    constraints: List[Constraint] = []
    for dim in space.dims:
        if dim not in bounds:
            raise SpaceMismatchError(f"missing bounds for dimension {dim!r}")
        lo, hi = bounds[dim]
        constraints.append(ge(AffExpr.var(dim), lo))
        constraints.append(lt(AffExpr.var(dim), hi))
    return IntegerSet(space, constraints)
