"""Multi-dimensional quasi-affine maps (relations).

An :class:`AffineMap` sends points of a domain space to tuples of
quasi-affine expressions — the representation behind

* statement **schedules** (band members such as
  ``S1(i,j,k) -> (floor(i/64), floor(j/64), floor(k/32))``, Fig. 4a);
* **access relations** (``S1(i,j,k) -> A(i,k)``);
* the affine relations attached to **extension nodes** for DMA/RMA
  statements (``(d0,d1,d2) -> readA(d3,d4)``, Fig. 2e).

The map may carry an optional range space, giving the image tuple a name
(an array, or an auxiliary copy statement).  Maps compose, restrict to
integer sets, and — crucially for §4's DMA argument derivation — compute
the exact *box image* of a box domain via interval analysis.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.errors import SpaceMismatchError
from repro.poly.affine import AffExpr, IntLike
from repro.poly.iset import IntegerSet
from repro.poly.space import Space


class AffineMap:
    """A map ``domain_space -> (expr_0, ..., expr_{n-1})``."""

    __slots__ = ("domain_space", "exprs", "range_space")

    def __init__(
        self,
        domain_space: Space,
        exprs: Sequence[IntLike],
        range_space: Optional[Space] = None,
    ) -> None:
        self.domain_space = domain_space
        self.exprs: Tuple[AffExpr, ...] = tuple(AffExpr.coerce(e) for e in exprs)
        if range_space is not None and range_space.rank != len(self.exprs):
            raise SpaceMismatchError(
                f"range space {range_space} has rank {range_space.rank}, "
                f"but map has {len(self.exprs)} output expressions"
            )
        self.range_space = range_space

    # -- constructors -----------------------------------------------------

    @staticmethod
    def identity(space: Space) -> "AffineMap":
        return AffineMap(space, [AffExpr.var(d) for d in space.dims], space)

    @staticmethod
    def access(domain_space: Space, array: Space, exprs: Sequence[IntLike]) -> "AffineMap":
        """An access relation ``stmt -> array[exprs]``."""
        return AffineMap(domain_space, exprs, array)

    # -- queries ------------------------------------------------------------

    @property
    def rank(self) -> int:
        return len(self.exprs)

    def apply(self, point: Mapping[str, int], params: Mapping[str, int] = ()) -> Tuple[int, ...]:
        env: Dict[str, int] = dict(params or {})
        env.update(point)
        return tuple(e.evaluate(env) for e in self.exprs)

    def variables(self) -> frozenset:
        names = set()
        for e in self.exprs:
            names |= e.variables()
        return frozenset(names)

    def parameters(self) -> frozenset:
        return frozenset(
            n for n in self.variables() if not self.domain_space.has_dim(n)
        )

    def is_injective_over(self, domain: IntegerSet, params: Mapping[str, int]) -> bool:
        """Brute-force injectivity check over a bounded domain (test helper)."""
        seen: Dict[Tuple[int, ...], Dict[str, int]] = {}
        for point in domain.points(params):
            image = self.apply(point, params)
            if image in seen and seen[image] != point:
                return False
            seen[image] = point
        return True

    # -- transformation --------------------------------------------------------

    def compose(self, inner: "AffineMap") -> "AffineMap":
        """``self ∘ inner``: apply ``inner`` first.

        ``inner``'s range must match this map's domain (by rank; dimension
        names of ``self.domain_space`` are bound positionally to
        ``inner``'s output expressions).
        """
        if inner.rank != self.domain_space.rank:
            raise SpaceMismatchError(
                f"cannot compose: inner rank {inner.rank} vs domain rank "
                f"{self.domain_space.rank}"
            )
        bindings = dict(zip(self.domain_space.dims, inner.exprs))
        return AffineMap(
            inner.domain_space,
            [e.substitute(bindings) for e in self.exprs],
            self.range_space,
        )

    def substitute(self, bindings: Mapping[str, IntLike]) -> "AffineMap":
        """Substitute variables (domain dims or parameters) in every output."""
        return AffineMap(
            self.domain_space,
            [e.substitute(bindings) for e in self.exprs],
            self.range_space,
        )

    def pullback_env(self, point: Mapping[str, int]) -> Dict[str, int]:
        """Domain point as an environment (convenience)."""
        return dict(point)

    # -- footprint computation ------------------------------------------------

    def box_image(
        self,
        box: Mapping[str, Tuple[int, int]],
        params: Mapping[str, int] = (),
    ) -> List[Tuple[int, int]]:
        """Inclusive interval of each output over a box domain.

        This is the memory-footprint computation of §4: given the set of
        statement instances executed by one CPE for fixed outer schedule
        dimensions (a box), the footprint of an affine access is the box
        image — from which the DMA ``size``/``len``/``strip`` arguments and
        the source coordinates of Eq. (1) fall out.
        """
        env_box: Dict[str, Tuple[int, int]] = {
            name: (value, value) for name, value in dict(params or {}).items()
        }
        env_box.update(box)
        return [e.interval(env_box) for e in self.exprs]

    def image_extents(
        self,
        box: Mapping[str, Tuple[int, int]],
        params: Mapping[str, int] = (),
    ) -> List[int]:
        """Number of integer values covered by each output over ``box``."""
        return [hi - lo + 1 for lo, hi in self.box_image(box, params)]

    # -- structural ------------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, AffineMap)
            and self.domain_space == other.domain_space
            and self.exprs == other.exprs
            and self.range_space == other.range_space
        )

    def __hash__(self) -> int:
        return hash((self.domain_space, self.exprs, self.range_space))

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        target = self.range_space.name if self.range_space else ""
        body = ", ".join(str(e) for e in self.exprs)
        return f"[{self.domain_space} -> {target}({body})]"

    __repr__ = __str__
