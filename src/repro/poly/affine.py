"""Quasi-affine expressions.

The schedule trees in the paper are full of expressions such as
``floor(k/32) - 8*floor(k/256)`` (Fig. 6) or ``i - 64*floor(i/64)``
(Fig. 4).  These are *quasi-affine*: integer linear expressions extended
with floor-division by a positive integer constant.  This module provides
an exact, immutable representation with:

* construction helpers (:func:`aff_var`, :func:`aff_const`);
* ring operations (``+``, ``-``, integer ``*``);
* ``floordiv`` / ``mod`` by positive integer constants;
* substitution of variables by other quasi-affine expressions;
* exact evaluation over integer environments;
* exact *interval analysis* over box environments, the workhorse behind
  loop-extent derivation and DMA footprint computation.

Everything is integer arithmetic — no floating point is involved, matching
isl's exact-arithmetic contract.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, Mapping, Tuple, Union

from repro.errors import NonAffineError

IntLike = Union[int, "AffExpr"]


def _floordiv_interval(lo: int, hi: int, divisor: int) -> Tuple[int, int]:
    """Exact interval of ``floor(x/divisor)`` for ``x`` in ``[lo, hi]``."""
    return (lo // divisor, hi // divisor)


class FloorDiv:
    """An atomic term ``floor(arg / divisor)`` with ``divisor > 0``.

    FloorDiv terms are hashable and interned structurally so that
    ``floor(k/32)`` built twice compares and hashes equal, allowing
    expressions to combine like terms exactly.
    """

    __slots__ = ("arg", "divisor", "_hash")

    def __init__(self, arg: "AffExpr", divisor: int) -> None:
        if not isinstance(divisor, int) or divisor <= 0:
            raise NonAffineError(f"floordiv divisor must be a positive int, got {divisor!r}")
        self.arg = arg
        self.divisor = divisor
        self._hash = hash(("floordiv", arg, divisor))

    def __hash__(self) -> int:
        return self._hash

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, FloorDiv)
            and self.divisor == other.divisor
            and self.arg == other.arg
        )

    def evaluate(self, env: Mapping[str, int]) -> int:
        return self.arg.evaluate(env) // self.divisor

    def interval(self, box: Mapping[str, Tuple[int, int]]) -> Tuple[int, int]:
        lo, hi = self.arg.interval(box)
        return _floordiv_interval(lo, hi, self.divisor)

    def variables(self) -> frozenset:
        return self.arg.variables()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"floor(({self.arg})/{self.divisor})"


class AffExpr:
    """An immutable quasi-affine expression.

    Internally a sum ``const + Σ coeffs[v]·v + Σ divs[t]·t`` where each
    ``t`` is a :class:`FloorDiv`.  Zero coefficients are never stored, so
    structural equality coincides with mathematical equality for the
    normal forms this module produces (like terms always combine).
    """

    __slots__ = ("coeffs", "divs", "const", "_hash")

    def __init__(
        self,
        coeffs: Mapping[str, int] = (),
        divs: Mapping[FloorDiv, int] = (),
        const: int = 0,
    ) -> None:
        self.coeffs: Dict[str, int] = {
            v: c for v, c in dict(coeffs).items() if c != 0
        }
        self.divs: Dict[FloorDiv, int] = {
            t: c for t, c in dict(divs).items() if c != 0
        }
        if not isinstance(const, int):
            raise NonAffineError(f"constant must be int, got {const!r}")
        self.const = const
        self._hash = hash(
            (
                tuple(sorted(self.coeffs.items())),
                tuple(sorted(((hash(t), c) for t, c in self.divs.items()))),
                const,
            )
        )

    # -- constructors ---------------------------------------------------

    @staticmethod
    def var(name: str) -> "AffExpr":
        return AffExpr({name: 1})

    @staticmethod
    def constant(value: int) -> "AffExpr":
        return AffExpr(const=value)

    @staticmethod
    def coerce(value: IntLike) -> "AffExpr":
        if isinstance(value, AffExpr):
            return value
        if isinstance(value, int):
            return AffExpr.constant(value)
        raise NonAffineError(f"cannot coerce {value!r} to an affine expression")

    # -- queries ---------------------------------------------------------

    def is_constant(self) -> bool:
        return not self.coeffs and not self.divs

    def constant_value(self) -> int:
        if not self.is_constant():
            raise NonAffineError(f"{self} is not constant")
        return self.const

    def is_single_var(self) -> bool:
        """True for expressions of the exact form ``1·v``."""
        return (
            len(self.coeffs) == 1
            and not self.divs
            and self.const == 0
            and next(iter(self.coeffs.values())) == 1
        )

    def single_var(self) -> str:
        if not self.is_single_var():
            raise NonAffineError(f"{self} is not a bare variable")
        return next(iter(self.coeffs))

    def variables(self) -> frozenset:
        names = set(self.coeffs)
        for t in self.divs:
            names |= t.variables()
        return frozenset(names)

    def coefficient(self, name: str) -> int:
        return self.coeffs.get(name, 0)

    def has_divs(self) -> bool:
        return bool(self.divs)

    # -- arithmetic -------------------------------------------------------

    def __add__(self, other: IntLike) -> "AffExpr":
        other = AffExpr.coerce(other)
        coeffs = dict(self.coeffs)
        for v, c in other.coeffs.items():
            coeffs[v] = coeffs.get(v, 0) + c
        divs = dict(self.divs)
        for t, c in other.divs.items():
            divs[t] = divs.get(t, 0) + c
        return AffExpr(coeffs, divs, self.const + other.const)

    __radd__ = __add__

    def __neg__(self) -> "AffExpr":
        return self * -1

    def __sub__(self, other: IntLike) -> "AffExpr":
        return self + (-AffExpr.coerce(other))

    def __rsub__(self, other: IntLike) -> "AffExpr":
        return AffExpr.coerce(other) + (-self)

    def __mul__(self, factor: int) -> "AffExpr":
        if isinstance(factor, AffExpr):
            if factor.is_constant():
                factor = factor.const
            elif self.is_constant():
                return factor * self.const
            else:
                raise NonAffineError(
                    f"product of two non-constant expressions: ({self})*({factor})"
                )
        if not isinstance(factor, int):
            raise NonAffineError(f"can only scale by int, got {factor!r}")
        return AffExpr(
            {v: c * factor for v, c in self.coeffs.items()},
            {t: c * factor for t, c in self.divs.items()},
            self.const * factor,
        )

    __rmul__ = __mul__

    def floordiv(self, divisor: int) -> "AffExpr":
        """``floor(self / divisor)`` as a new quasi-affine expression.

        Constants fold; multiples of the divisor distribute exactly
        (``floor((d·e + r)/d) = e + floor(r/d)`` when every coefficient of
        ``e`` is a multiple of ``d``) — this keeps expressions like
        ``floor(256·ko/256)`` in normal form ``ko``.
        """
        if not isinstance(divisor, int) or divisor <= 0:
            raise NonAffineError(f"floordiv divisor must be positive int: {divisor!r}")
        if divisor == 1:
            return self
        if self.is_constant():
            return AffExpr.constant(self.const // divisor)
        # Split off the part whose coefficients are multiples of divisor.
        outer_coeffs: Dict[str, int] = {}
        inner_coeffs: Dict[str, int] = {}
        for v, c in self.coeffs.items():
            if c % divisor == 0:
                outer_coeffs[v] = c // divisor
            else:
                inner_coeffs[v] = c
        outer_divs: Dict[FloorDiv, int] = {}
        inner_divs: Dict[FloorDiv, int] = {}
        for t, c in self.divs.items():
            if c % divisor == 0:
                outer_divs[t] = c // divisor
            else:
                inner_divs[t] = c
        outer_const, inner_const = divmod(self.const, divisor)
        inner = AffExpr(inner_coeffs, inner_divs, inner_const)
        outer = AffExpr(outer_coeffs, outer_divs, outer_const)
        if inner.is_constant():
            return outer + inner.const // divisor
        return outer + AffExpr(divs={FloorDiv(inner, divisor): 1})

    def __floordiv__(self, divisor: int) -> "AffExpr":
        return self.floordiv(divisor)

    def mod(self, divisor: int) -> "AffExpr":
        """``self mod divisor`` as ``self - divisor*floor(self/divisor)``."""
        return self - self.floordiv(divisor) * divisor

    def __mod__(self, divisor: int) -> "AffExpr":
        return self.mod(divisor)

    # -- evaluation / analysis ---------------------------------------------

    def evaluate(self, env: Mapping[str, int]) -> int:
        """Exact integer value under a complete environment."""
        try:
            total = self.const + sum(c * env[v] for v, c in self.coeffs.items())
        except KeyError as exc:
            raise NonAffineError(f"unbound variable {exc.args[0]!r} in {self}") from None
        for t, c in self.divs.items():
            total += c * t.evaluate(env)
        return total

    def interval(self, box: Mapping[str, Tuple[int, int]]) -> Tuple[int, int]:
        """Exact value interval when each variable ranges over an interval.

        ``box`` maps variable names to inclusive ``(lo, hi)`` pairs.  The
        result is the exact min/max for pure linear terms and a sound
        (and, for the monotone expressions our transforms produce, exact)
        enclosure for floor-division terms.
        """
        lo = hi = self.const
        for v, c in self.coeffs.items():
            if v not in box:
                raise NonAffineError(f"unbounded variable {v!r} in interval query")
            vlo, vhi = box[v]
            if vlo > vhi:
                raise NonAffineError(f"empty interval for {v!r}: ({vlo}, {vhi})")
            if c >= 0:
                lo += c * vlo
                hi += c * vhi
            else:
                lo += c * vhi
                hi += c * vlo
        for t, c in self.divs.items():
            tlo, thi = t.interval(box)
            if c >= 0:
                lo += c * tlo
                hi += c * thi
            else:
                lo += c * thi
                hi += c * tlo
        return (lo, hi)

    def substitute(self, bindings: Mapping[str, IntLike]) -> "AffExpr":
        """Replace variables by expressions (or ints), renormalising."""
        result = AffExpr.constant(self.const)
        for v, c in self.coeffs.items():
            replacement = AffExpr.coerce(bindings[v]) if v in bindings else AffExpr.var(v)
            result = result + replacement * c
        for t, c in self.divs.items():
            replaced_arg = t.arg.substitute(bindings)
            result = result + replaced_arg.floordiv(t.divisor) * c
        return result

    def rename(self, mapping: Mapping[str, str]) -> "AffExpr":
        """Rename variables (convenience wrapper over substitution)."""
        return self.substitute({old: AffExpr.var(new) for old, new in mapping.items()})

    # -- structural -------------------------------------------------------

    def __hash__(self) -> int:
        return self._hash

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, AffExpr)
            and self.const == other.const
            and self.coeffs == other.coeffs
            and self.divs == other.divs
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"AffExpr({self})"

    def __str__(self) -> str:
        parts = []
        for v in sorted(self.coeffs):
            c = self.coeffs[v]
            if c == 1:
                parts.append(f"{v}")
            elif c == -1:
                parts.append(f"-{v}")
            else:
                parts.append(f"{c}*{v}")
        for t, c in sorted(self.divs.items(), key=lambda item: str(item[0])):
            if c == 1:
                parts.append(str(t))
            elif c == -1:
                parts.append(f"-({t})")
            else:
                parts.append(f"{c}*({t})")
        if self.const != 0 or not parts:
            parts.append(str(self.const))
        text = " + ".join(parts)
        return text.replace("+ -", "- ")


def aff_var(name: str) -> AffExpr:
    """Shorthand for :meth:`AffExpr.var`."""
    return AffExpr.var(name)


def aff_const(value: int) -> AffExpr:
    """Shorthand for :meth:`AffExpr.constant`."""
    return AffExpr.constant(value)


def aff_sum(terms: Iterable[IntLike]) -> AffExpr:
    """Sum an iterable of expressions/ints."""
    total = aff_const(0)
    for term in terms:
        total = total + AffExpr.coerce(term)
    return total


def lcm(a: int, b: int) -> int:
    """Least common multiple of two positive integers."""
    return a * b // math.gcd(a, b)
