"""Loop AST produced by scanning a schedule tree.

§7.1 of the paper reuses isl's AST generator but must introduce *a new AST
node type* for the DMA/RMA extension statements.  This module defines the
complete AST vocabulary used by both back ends of this reproduction:

* :mod:`repro.codegen.printer` pretty-prints the AST to athread C source
  (the paper's actual output), and
* :mod:`repro.runtime.executor` interprets the same AST against the
  simulated SW26010Pro core group, which is how the reproduction validates
  that the generated program is *correct*, not merely well-formatted.

Expressions are either plain tree nodes (:class:`BinExpr` etc.) or a thin
wrapper over a quasi-affine expression (:class:`AffRef`), which keeps the
schedule arithmetic exact end to end.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple, Union

from repro.errors import ExecutionError
from repro.poly.affine import AffExpr

# ---------------------------------------------------------------------------
# Expressions
# ---------------------------------------------------------------------------


class Expr:
    """Base class for AST expressions."""

    def evaluate(self, env: Mapping[str, object]) -> object:
        raise NotImplementedError


@dataclass(frozen=True)
class IntLit(Expr):
    value: int

    def evaluate(self, env: Mapping[str, object]) -> int:
        return self.value


@dataclass(frozen=True)
class DoubleLit(Expr):
    value: float

    def evaluate(self, env: Mapping[str, object]) -> float:
        return self.value


@dataclass(frozen=True)
class VarRef(Expr):
    name: str

    def evaluate(self, env: Mapping[str, object]) -> object:
        try:
            return env[self.name]
        except KeyError:
            raise ExecutionError(f"unbound variable {self.name!r}") from None


@dataclass(frozen=True)
class AffRef(Expr):
    """A quasi-affine expression used directly as an AST expression."""

    aff: AffExpr

    def evaluate(self, env: Mapping[str, object]) -> int:
        return self.aff.evaluate({k: v for k, v in env.items() if isinstance(v, int)})


@dataclass(frozen=True)
class BinExpr(Expr):
    """Binary operation; ``/`` is flooring integer division (all schedule
    arithmetic in this compiler is over non-negative operands)."""

    op: str
    lhs: Expr
    rhs: Expr

    def evaluate(self, env: Mapping[str, object]) -> object:
        a = self.lhs.evaluate(env)
        b = self.rhs.evaluate(env)
        op = self.op
        if op == "+":
            return a + b
        if op == "-":
            return a - b
        if op == "*":
            return a * b
        if op == "/":
            return a // b
        if op == "%":
            return a % b
        if op == "<":
            return a < b
        if op == "<=":
            return a <= b
        if op == ">":
            return a > b
        if op == ">=":
            return a >= b
        if op == "==":
            return a == b
        if op == "!=":
            return a != b
        if op == "&&":
            return bool(a) and bool(b)
        if op == "||":
            return bool(a) or bool(b)
        if op == "min":
            return min(a, b)
        if op == "max":
            return max(a, b)
        raise ExecutionError(f"unknown binary operator {op!r}")


@dataclass(frozen=True)
class ArrayRef(Expr):
    """A reference to ``array[indices...]``.

    ``memory`` distinguishes ``"main"`` arrays (the matrices in the core
    group's DDR4 memory) from ``"spm"`` buffers (the per-CPE scratch-pad
    tiles such as ``local_A``).  SPM references may carry a leading buffer
    selector index for double buffering.
    """

    array: str
    indices: Tuple[Expr, ...]
    memory: str = "main"

    def evaluate(self, env: Mapping[str, object]) -> object:
        raise ExecutionError(
            "array references are evaluated by the executor, not inline"
        )


@dataclass(frozen=True)
class AddrOf(Expr):
    """``&ref`` — the address argument of a DMA/RMA call."""

    ref: ArrayRef

    def evaluate(self, env: Mapping[str, object]) -> object:
        raise ExecutionError("addresses are resolved by the executor")


@dataclass(frozen=True)
class CallExpr(Expr):
    """A scalar function call (quantization / activation intrinsics)."""

    name: str
    args: Tuple[Expr, ...]

    def evaluate(self, env: Mapping[str, object]) -> object:
        raise ExecutionError("scalar calls are evaluated by the executor")


def aff(expr: AffExpr) -> AffRef:
    return AffRef(expr)


def lit(value: int) -> IntLit:
    return IntLit(value)


# ---------------------------------------------------------------------------
# Statements
# ---------------------------------------------------------------------------


class Stmt:
    """Base class for AST statements."""


@dataclass
class Block(Stmt):
    body: List[Stmt] = field(default_factory=list)

    def append(self, stmt: "Stmt") -> None:
        self.body.append(stmt)


@dataclass
class ForLoop(Stmt):
    """``for (var = lo; var < hi; var += step)``; ``hi`` is exclusive."""

    var: str
    lo: Expr
    hi: Expr
    body: Block
    step: int = 1
    annotation: str = ""  # e.g. "outer k dimension", printed as a comment


@dataclass
class IfStmt(Stmt):
    cond: Expr
    then: Block
    els: Optional[Block] = None


@dataclass
class AssignStmt(Stmt):
    """``target op value`` with op in ``=``, ``+=``, ``*=``."""

    target: Union[ArrayRef, VarRef]
    value: Expr
    op: str = "="


@dataclass
class CommStmt(Stmt):
    """The new AST node type of §7.1: a DMA/RMA/synchronisation statement.

    ``kind`` is one of ``dma_iget``, ``dma_iput``, ``rma_row_ibcast``,
    ``rma_col_ibcast``, ``dma_wait_value``, ``rma_wait_value``, ``synch``,
    ``reply_reset``.  ``args`` carries the structured operands (addresses as
    :class:`AddrOf`, sizes as expressions, reply-counter names as strings);
    the printer renders the exact athread syntax of §§4-5 and the executor
    performs the corresponding simulator operation.
    """

    kind: str
    args: Dict[str, object] = field(default_factory=dict)


@dataclass
class KernelCall(Stmt):
    """Invocation of the inline assembly micro kernel (§7.2).

    ``trans_a``/``trans_b`` select the transposed-operand entry points of
    the kernel family (the SPM tiles are stored in the operands' own
    layouts, kt×mt / nt×kt)."""

    name: str
    c_ref: ArrayRef
    a_ref: ArrayRef
    b_ref: ArrayRef
    mt: int
    nt: int
    kt: int
    alpha: Expr
    trans_a: bool = False
    trans_b: bool = False


@dataclass
class BlockOpStmt(Stmt):
    """A small element-wise operation over an SPM tile.

    Printed as a (SIMD-annotated) loop nest in the CPE C code; executed
    vectorised by the interpreter.  ``op`` is one of:

    * ``"scale"``   — ``dst *= factor``          (the β·C scaling)
    * ``"apply"``   — ``dst = func(dst)``        (prologue/epilogue funcs)
    """

    op: str
    dst: ArrayRef
    shape: Tuple[int, int]
    factor: Optional[Expr] = None
    func: str = ""


@dataclass
class CommentStmt(Stmt):
    text: str


@dataclass
class NaiveComputeStmt(Stmt):
    """The scalar statement body executed when ``--no-use-asm`` bypasses the
    micro kernel: a single assignment inside the point loops, e.g.
    ``local_C[ip][jp] += alpha * local_A[ip][kp] * local_B[kp][jp]``.

    ``loop_vars``/``extents`` describe the enclosing point loops so the
    interpreter may execute the whole box vectorised (the printer still
    emits the scalar loops — on real hardware swgcc would compile them).
    """

    target: ArrayRef
    value: Expr
    loop_vars: Tuple[str, ...] = ()
    extents: Tuple[int, ...] = ()
    trans_a: bool = False
    trans_b: bool = False


# ---------------------------------------------------------------------------
# Program container
# ---------------------------------------------------------------------------


@dataclass
class BufferDecl:
    """One SPM buffer declaration of the CPE code (§6.3)."""

    name: str
    shape: Tuple[int, ...]  # includes the double-buffer count when > 1
    dtype: str = "double"

    @property
    def elements(self) -> int:
        total = 1
        for s in self.shape:
            total *= s
        return total

    @property
    def nbytes(self) -> int:
        width = {"double": 8, "float": 4, "int": 4}[self.dtype]
        return self.elements * width


@dataclass
class ReplyDecl:
    """A DMA/RMA reply counter (§4): one per in-flight message slot."""

    name: str
    count: int = 1  # doubled buffers need two independent counters


@dataclass
class CpeProgram:
    """The complete CPE-side program: SPM buffer plan + body AST."""

    buffers: List[BufferDecl]
    replies: List[ReplyDecl]
    body: Block
    kernel_name: str = "asm_dgemm"

    def spm_bytes(self) -> int:
        return sum(b.nbytes for b in self.buffers)


def walk_stmts(stmt: Stmt):
    """Pre-order traversal over statements (test/debug helper)."""
    yield stmt
    if isinstance(stmt, Block):
        for s in stmt.body:
            yield from walk_stmts(s)
    elif isinstance(stmt, ForLoop):
        yield from walk_stmts(stmt.body)
    elif isinstance(stmt, IfStmt):
        yield from walk_stmts(stmt.then)
        if stmt.els is not None:
            yield from walk_stmts(stmt.els)
