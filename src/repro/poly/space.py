"""Named spaces for polyhedral objects.

A *space* identifies the tuple an integer set or map ranges over.  For a
statement ``S1(i, j, k)`` the space is ``Space("S1", ("i", "j", "k"))``;
for an array ``A[r][c]`` it is ``Space("A", ("r", "c"))``.  Spaces are
immutable and hashable so they can key dictionaries (e.g. the statement
table of a domain node).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Tuple

from repro.errors import SpaceMismatchError


@dataclass(frozen=True)
class Space:
    """An immutable named tuple space.

    Parameters
    ----------
    name:
        Statement or array name (``"S1"``, ``"A"``...).  The anonymous
        space uses an empty name.
    dims:
        Ordered dimension names.  Dimension names must be unique within
        the space.
    """

    name: str
    dims: Tuple[str, ...]

    def __post_init__(self) -> None:
        if len(set(self.dims)) != len(self.dims):
            raise SpaceMismatchError(
                f"duplicate dimension names in space {self.name}: {self.dims}"
            )

    # -- basic queries ------------------------------------------------

    @property
    def rank(self) -> int:
        """Number of dimensions."""
        return len(self.dims)

    def index(self, dim: str) -> int:
        """Position of dimension ``dim`` (raises if absent)."""
        try:
            return self.dims.index(dim)
        except ValueError:
            raise SpaceMismatchError(
                f"dimension {dim!r} not in space {self}"
            ) from None

    def has_dim(self, dim: str) -> bool:
        return dim in self.dims

    def __iter__(self) -> Iterator[str]:
        return iter(self.dims)

    # -- derivation ----------------------------------------------------

    def renamed(self, name: str) -> "Space":
        """Same dimensions under a different tuple name."""
        return Space(name, self.dims)

    def with_dims(self, dims: Tuple[str, ...]) -> "Space":
        """Same name over different dimensions."""
        return Space(self.name, tuple(dims))

    def drop(self, dim: str) -> "Space":
        """Remove one dimension."""
        self.index(dim)
        return Space(self.name, tuple(d for d in self.dims if d != dim))

    def insert(self, position: int, dim: str) -> "Space":
        """Insert a new dimension at ``position``."""
        if dim in self.dims:
            raise SpaceMismatchError(f"dimension {dim!r} already in {self}")
        dims = list(self.dims)
        dims.insert(position, dim)
        return Space(self.name, tuple(dims))

    def require_same(self, other: "Space") -> None:
        """Raise :class:`SpaceMismatchError` unless spaces are identical."""
        if self != other:
            raise SpaceMismatchError(f"space mismatch: {self} vs {other}")

    # -- display -------------------------------------------------------

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.name}({', '.join(self.dims)})"


def anonymous(dims: Tuple[str, ...]) -> Space:
    """An unnamed space, used for schedule tuples."""
    return Space("", tuple(dims))
