"""Mini-isl: a from-scratch polyhedral layer for the swgemm reproduction.

The paper builds its compiler on isl schedule trees (Grosser et al., TOPLAS
2015).  isl itself is a large C library; this package re-implements the
subset the paper's transformations actually exercise, with the same
vocabulary:

* :mod:`repro.poly.space` — named spaces and statement tuples;
* :mod:`repro.poly.affine` — quasi-affine expressions (integer linear
  expressions extended with ``floor(e/d)`` and ``e mod d`` terms);
* :mod:`repro.poly.iset` / :mod:`repro.poly.imap` — integer sets and
  multi-dimensional quasi-affine maps, with exact box (interval) reasoning
  used for memory-footprint computation;
* :mod:`repro.poly.dependences` — distance-vector dependence analysis that
  determines the parallelism and tilability attributes isl attaches to the
  initial band (§2.2 of the paper);
* :mod:`repro.poly.schedule_tree` — the schedule-tree IR with domain, band,
  sequence, filter, extension, mark and context nodes (Fig. 2);
* :mod:`repro.poly.transforms` — tiling, strip-mining, dimension isolation,
  extension insertion and loop peeling (Figs. 4, 6, 9, 11);
* :mod:`repro.poly.astgen` — the schedule-tree → AST scanner, including the
  new AST node type introduced for DMA/RMA extensions (§7.1).
"""

from repro.poly.affine import AffExpr, FloorDiv, aff_const, aff_var
from repro.poly.space import Space
from repro.poly.iset import Constraint, IntegerSet, box_set
from repro.poly.imap import AffineMap
from repro.poly.schedule_tree import (
    BandNode,
    ContextNode,
    DomainNode,
    ExtensionNode,
    FilterNode,
    MarkNode,
    ScheduleNode,
    SequenceNode,
)

__all__ = [
    "AffExpr",
    "FloorDiv",
    "aff_const",
    "aff_var",
    "Space",
    "Constraint",
    "IntegerSet",
    "box_set",
    "AffineMap",
    "ScheduleNode",
    "DomainNode",
    "BandNode",
    "SequenceNode",
    "FilterNode",
    "ExtensionNode",
    "MarkNode",
    "ContextNode",
]
