"""Guarded execution: replaying the static certificate at runtime.

A :class:`CertificateGuard` attaches to the simulated cluster's DMA/RMA
engines and to SPM allocation.  Every observed event — a ``dma_iget``/
``dma_iput`` footprint, an RMA broadcast, the per-CPE buffer allocation
— is checked against the certificate the verifier issued at admission
time.  Any divergence means the static analysis and the executed
program disagree about the kernel's data movement, which is exactly the
class of bug admission control exists to exclude; the guard fails
loudly with :class:`CertificateDivergenceError` instead of letting the
run continue on unproven behaviour.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.errors import CertificateDivergenceError, KernelAdmissionError


class CertificateGuard:
    """Cross-checks observed DMA/RMA/SPM events against a certificate."""

    def __init__(self, certificate: Dict[str, object], strict: bool = True) -> None:
        self.certificate = certificate
        self.strict = strict
        self.events = 0
        self.divergences: List[str] = []
        self._dma: Dict[str, Dict[str, int]] = dict(certificate.get("dma", {}))
        self._rma: Dict[str, Dict[str, int]] = dict(certificate.get("rma", {}))
        self._spm_bytes: Optional[int] = certificate.get("spm_bytes")

    @classmethod
    def from_program(cls, program, strict: bool = True) -> "CertificateGuard":
        """Build a guard from a program's attached verification report.

        Guarded execution refuses programs without a passing report —
        running unverified code in guarded mode would be contradictory."""
        report = getattr(program, "verification", None)
        if report is None:
            raise KernelAdmissionError(
                "guarded execution requires a verified program; this one "
                "carries no VerificationReport (compiled with --no-verify?)"
            )
        if not report.ok or report.certificate is None:
            raise KernelAdmissionError(
                "guarded execution requires a passing VerificationReport",
                report=report,
            )
        return cls(report.certificate, strict=strict)

    # -- event hooks (called by the engines / executor) ---------------------

    def on_dma(self, direction: str, buffer: str, size: int, length: int) -> None:
        self.events += 1
        key = f"{direction}:{buffer}"
        entry = self._dma.get(key)
        if entry is None:
            self._diverge(
                f"DMA {direction} on buffer {buffer!r} has no admitted "
                f"transfer in the certificate (admitted: {sorted(self._dma)})"
            )
        elif int(entry["size"]) != int(size) or int(entry["len"]) != int(length):
            self._diverge(
                f"DMA {direction} on {buffer!r}: observed size={size} "
                f"len={length}, certificate admitted size={entry['size']} "
                f"len={entry['len']}"
            )

    def on_rma(self, kind: str, src: str, dst: str, size: int) -> None:
        self.events += 1
        key = f"{kind}:{src}->{dst}"
        entry = self._rma.get(key)
        if entry is None:
            self._diverge(
                f"RMA {kind} broadcast {src!r} -> {dst!r} has no admitted "
                f"transfer in the certificate (admitted: {sorted(self._rma)})"
            )
        elif int(entry["size"]) != int(size):
            self._diverge(
                f"RMA {kind} broadcast {src!r} -> {dst!r}: observed "
                f"size={size}, certificate admitted size={entry['size']}"
            )

    def on_spm(self, owner: str, used_bytes: int) -> None:
        self.events += 1
        if self._spm_bytes is not None and used_bytes != self._spm_bytes:
            self._diverge(
                f"SPM allocation on {owner}: {used_bytes} B used, "
                f"certificate admitted {self._spm_bytes} B"
            )

    # -- internals ----------------------------------------------------------

    def _diverge(self, message: str) -> None:
        self.divergences.append(message)
        if self.strict:
            raise CertificateDivergenceError(
                f"certificate divergence: {message}"
            )
