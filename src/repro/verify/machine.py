"""A timing-less mesh machine for compile-time schedule verification.

Interprets the generated CPE AST for the *whole* mesh — every CPE as a
cooperative coroutine, round-robin scheduled — tracking only what the
safety checks need: which SPM buffer slots an asynchronous DMA/RMA has
marked in flight, the reply-counter ledger, and the ``synch()`` barrier
with its RMA arming bit.  It mirrors the runtime semantics of
:mod:`repro.runtime.executor` / :mod:`repro.sunway.spm` exactly, minus
data movement and the cost model, which makes the double-buffer hazard
check (§6) and the RMA discipline check (§5) decidable before a kernel
is ever admitted.

The machine runs one *chunk* problem with ``K = 2·k_step`` so both
double-buffer parities (even and odd slots of the peeled/pipelined
schedule) and at least one full steady-state iteration are exercised;
the schedule's control flow does not otherwise depend on the shape, so
this finite run covers the pipelining discipline for every shape.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.poly.astnodes import (
    AffRef,
    ArrayRef,
    BinExpr,
    Block,
    BlockOpStmt,
    CommentStmt,
    CommStmt,
    CpeProgram,
    Expr,
    ForLoop,
    IfStmt,
    IntLit,
    KernelCall,
    NaiveComputeStmt,
    Stmt,
    VarRef,
)

#: Resume-count ceiling: far above any real schedule (a chunk run is a
#: few thousand statements per CPE) but bounds pathological input.
MAX_STEPS = 2_000_000

#: Witnesses retained per category before the machine stops recording.
MAX_WITNESSES = 10


def _is_rma_counter(name: str) -> bool:
    """Mirror of the executor's disarm rule: RMA/broadcast counters."""
    base = name.split("#", 1)[0]
    return base.startswith(("rma", "bcast")) or "bcast" in base


@dataclass
class MachineResult:
    """What one machine run observed."""

    completed: bool = True
    deadlock: Optional[str] = None
    #: Buffer slots read (or freed into a new transfer) while in flight.
    hazards: List[Dict[str, object]] = field(default_factory=list)
    #: RMA discipline violations (unarmed issues, unbalanced counters,
    #: mismatched sender sets, leftover in-flight broadcast data).
    discipline: List[Dict[str, object]] = field(default_factory=list)
    stats: Dict[str, int] = field(default_factory=dict)


class _CpeState:
    """Per-CPE verification state: in-flight map + reply ledger."""

    __slots__ = (
        "rid",
        "cid",
        "inflight",
        "counters",
        "records",
        "waited",
        "armed",
        "env",
    )

    def __init__(self, rid: int, cid: int, env: Dict[str, object]) -> None:
        self.rid = rid
        self.cid = cid
        #: (buffer, slot) -> cause string, exactly like ScratchPadMemory.
        self.inflight: Dict[Tuple[str, int], str] = {}
        #: reply key -> cumulative count since last reset.
        self.counters: Dict[str, int] = {}
        #: reply key -> per-message (buffer, slot) records (None for the
        #: sender-side RMA reply, which marks no local data in flight).
        self.records: Dict[str, List[Optional[Tuple[str, int]]]] = {}
        #: reply key -> highest value ever waited since last reset.
        self.waited: Dict[str, int] = {}
        self.armed = False
        self.env = env


class ScheduleMachine:
    """Run one CPE program across a mesh, recording safety violations.

    Violations are *recorded*, not raised: a broken schedule usually
    trips several related invariants and the report should show the
    first few witnesses of each kind, not die on the first.
    """

    def __init__(
        self,
        program: CpeProgram,
        mesh: int,
        params: Dict[str, int],
    ) -> None:
        self.program = program
        self.mesh = mesh
        self.params = dict(params)
        self.result = MachineResult()
        self._arrived = 0
        self._generation = 0
        #: (generation, kind) -> list of (channel, (rid, cid)) senders.
        self._rma_log: Dict[Tuple[int, str], List[Tuple[int, Tuple[int, int]]]] = {}
        self._stats = {
            "dma_issues": 0,
            "rma_issues": 0,
            "waits": 0,
            "barriers": 0,
            "steps": 0,
        }
        self.states = [
            [
                _CpeState(
                    rid,
                    cid,
                    dict(self.params, Rid=rid, Cid=cid, alpha=1.0, beta=1.0),
                )
                for cid in range(mesh)
            ]
            for rid in range(mesh)
        ]

    # -- driving loop -------------------------------------------------------

    def run(self) -> MachineResult:
        flat = [s for row in self.states for s in row]
        coroutines = [self._exec(state, self.program.body) for state in flat]
        live = list(range(len(flat)))
        steps = 0
        while live:
            progressed = False
            blocked_reasons: List[str] = []
            for index in list(live):
                try:
                    signal = next(coroutines[index])
                except StopIteration:
                    live.remove(index)
                    progressed = True
                    continue
                steps += 1
                if signal == "blocked":
                    state = flat[index]
                    blocked_reasons.append(
                        f"CPE({state.rid},{state.cid}): {state.env.get('__blocked__', 'waiting')}"
                    )
                else:
                    progressed = True
                if steps > MAX_STEPS:
                    self.result.completed = False
                    self.result.deadlock = (
                        f"schedule did not terminate within {MAX_STEPS} steps"
                    )
                    self._finish()
                    return self.result
            if not progressed and live:
                self.result.completed = False
                self.result.deadlock = "; ".join(sorted(set(blocked_reasons))[:8])
                self._finish()
                return self.result
        self._stats["steps"] = steps
        self._finish()
        return self.result

    # -- statement interpretation ------------------------------------------

    def _exec(self, state: _CpeState, stmt: Stmt):
        if isinstance(stmt, Block):
            for inner in stmt.body:
                yield from self._exec(state, inner)
            return
        if isinstance(stmt, ForLoop):
            lo = self._eval(stmt.lo, state.env)
            hi = self._eval(stmt.hi, state.env)
            for value in range(lo, hi, stmt.step):
                state.env[stmt.var] = value
                yield from self._exec(state, stmt.body)
            state.env.pop(stmt.var, None)
            return
        if isinstance(stmt, IfStmt):
            if self._eval(stmt.cond, state.env):
                yield from self._exec(state, stmt.then)
            elif stmt.els is not None:
                yield from self._exec(state, stmt.els)
            return
        if isinstance(stmt, CommStmt):
            yield from self._exec_comm(state, stmt)
            return
        if isinstance(stmt, KernelCall):
            for what, ref in (
                ("kernel C operand", stmt.c_ref),
                ("kernel A operand", stmt.a_ref),
                ("kernel B operand", stmt.b_ref),
            ):
                self._check_read(state, ref, what)
            yield "step"
            return
        if isinstance(stmt, BlockOpStmt):
            self._check_read(state, stmt.dst, f"block op {stmt.op!r}")
            yield "step"
            return
        if isinstance(stmt, NaiveComputeStmt):
            self._check_read(state, stmt.target, "naive compute target")
            for ref in _spm_refs(stmt.value):
                self._check_read(state, ref, "naive compute operand")
            yield "step"
            return
        if isinstance(stmt, CommentStmt):
            return
        # Anything else (AssignStmt over scalars, …) is hazard-neutral.
        yield "step"

    def _exec_comm(self, state: _CpeState, stmt: CommStmt):
        kind = stmt.kind
        args = stmt.args
        if kind == "reply_reset":
            key = self._reply_key(args, state.env)
            self._flag_unconsumed(state, key, at="reply_reset")
            state.counters[key] = 0
            state.records[key] = []
            state.waited[key] = 0
            return
        if kind in ("dma_iget", "dma_iput"):
            slot = self._eval(args["slot"], state.env)
            buffer = str(args["buffer"])
            key = self._reply_key(args, state.env)
            if kind == "dma_iput":
                # A put *reads* the SPM source; mirror DMAEngine.iput's
                # check_readable-then-mark order.
                self._check_slot(state, buffer, slot, "dma_iput source")
            state.inflight[(buffer, slot)] = f"{kind}/{key}"
            state.counters[key] = state.counters.get(key, 0) + 1
            state.records.setdefault(key, []).append((buffer, slot))
            self._stats["dma_issues"] += 1
            yield "step"
            return
        if kind in ("dma_wait_value", "rma_wait_value"):
            key = self._reply_key(args, state.env)
            value = int(args.get("value", 1))
            while state.counters.get(key, 0) < value:
                state.env["__blocked__"] = f"{kind} {key} >= {value}"
                yield "blocked"
            state.env.pop("__blocked__", None)
            self._finish_wait(state, key, value)
            self._stats["waits"] += 1
            yield "step"
            return
        if kind in ("rma_row_ibcast", "rma_col_ibcast"):
            self._issue_rma(state, kind, args)
            self._stats["rma_issues"] += 1
            yield "step"
            return
        if kind == "synch":
            token = self._generation
            self._arrived += 1
            if self._arrived == self.mesh * self.mesh:
                self._arrived = 0
                self._generation += 1
                for row in self.states:
                    for other in row:
                        other.armed = True
            while self._generation <= token:
                state.env["__blocked__"] = "synch"
                yield "blocked"
            state.env.pop("__blocked__", None)
            self._stats["barriers"] += 1
            yield "step"
            return
        yield "step"

    def _issue_rma(self, state: _CpeState, kind: str, args) -> None:
        slot_s = self._eval(args["src_slot"], state.env)
        slot_d = self._eval(args["dst_slot"], state.env)
        reply_slot = self._eval(args["reply_slot"], state.env)
        src = str(args["src_buffer"])
        dst = str(args["dst_buffer"])
        replys = f"{args['replys']}#{reply_slot}"
        replyr = f"{args['replyr']}#{reply_slot}"
        if not state.armed:
            self._record(
                self.result.discipline,
                {
                    "violation": "rma-without-synch",
                    "cpe": (state.rid, state.cid),
                    "kind": kind,
                    "src": (src, slot_s),
                    "detail": (
                        "RMA issued without a preceding synch(); the §5 "
                        "discipline requires re-arming before every launch"
                    ),
                },
            )
        # The broadcast reads its SPM source on the sender.
        self._check_slot(state, src, slot_s, f"{kind} source")
        row_bcast = kind == "rma_row_ibcast"
        channel = state.rid if row_bcast else state.cid
        self._rma_log.setdefault((self._generation, kind), []).append(
            (channel, (state.rid, state.cid))
        )
        if row_bcast:
            receivers = self.states[state.rid]
        else:
            receivers = [row[state.cid] for row in self.states]
        for receiver in receivers:
            receiver.inflight[(dst, slot_d)] = f"rma/{replyr}"
            receiver.counters[replyr] = receiver.counters.get(replyr, 0) + 1
            receiver.records.setdefault(replyr, []).append((dst, slot_d))
        state.counters[replys] = state.counters.get(replys, 0) + 1
        state.records.setdefault(replys, []).append(None)

    # -- mirrored runtime semantics ----------------------------------------

    def _finish_wait(self, state: _CpeState, key: str, value: int) -> None:
        """Mirror of ``AthreadRuntime.finish_wait``: consume the first
        ``value`` records, clearing their in-flight marks; a wait on an
        RMA counter disarms the CPE (a fresh synch() is required before
        the next broadcast)."""
        for record in state.records.get(key, [])[:value]:
            if record is not None:
                state.inflight.pop(record, None)
        state.waited[key] = max(state.waited.get(key, 0), value)
        if _is_rma_counter(key):
            state.armed = False

    def _check_read(self, state: _CpeState, ref: ArrayRef, what: str) -> None:
        if ref.memory != "spm":
            return
        slot = self._eval(ref.indices[0], state.env) if ref.indices else 0
        self._check_slot(state, ref.array, slot, what)

    def _check_slot(self, state: _CpeState, buffer: str, slot: int, what: str) -> None:
        cause = state.inflight.get((buffer, slot))
        if cause is None:
            return
        self._record(
            self.result.hazards,
            {
                "violation": "read-while-in-flight",
                "cpe": (state.rid, state.cid),
                "buffer": buffer,
                "slot": slot,
                "in_flight_cause": cause,
                "read_by": what,
            },
        )

    def _flag_unconsumed(self, state: _CpeState, key: str, at: str) -> None:
        issued = state.counters.get(key, 0)
        waited = state.waited.get(key, 0)
        if issued <= waited:
            return
        sink = (
            self.result.discipline
            if _is_rma_counter(key)
            else self.result.hazards
        )
        self._record(
            sink,
            {
                "violation": "unbalanced-reply-counter",
                "cpe": (state.rid, state.cid),
                "counter": key,
                "issued": issued,
                "waited": waited,
                "at": at,
            },
        )

    def _record(self, sink: List[Dict[str, object]], witness: Dict[str, object]) -> None:
        if len(sink) < MAX_WITNESSES:
            sink.append(witness)

    # -- end-of-run analysis ------------------------------------------------

    def _finish(self) -> None:
        result = self.result
        result.stats = dict(self._stats)
        for row in self.states:
            for state in row:
                for key in sorted(state.counters):
                    self._flag_unconsumed(state, key, at="end-of-program")
                for (buffer, slot), cause in sorted(state.inflight.items()):
                    sink = (
                        result.discipline
                        if cause.startswith("rma/")
                        else result.hazards
                    )
                    self._record(
                        sink,
                        {
                            "violation": "in-flight-at-exit",
                            "cpe": (state.rid, state.cid),
                            "buffer": buffer,
                            "slot": slot,
                            "in_flight_cause": cause,
                        },
                    )
        # Sender-set discipline: within one barrier generation each
        # row/column channel carries at most one broadcast, and either
        # every channel of the mesh participates or none does — a strict
        # subset means some CPEs wait for data that never arrives.
        for (generation, kind), entries in sorted(self._rma_log.items()):
            per_channel: Dict[int, List[Tuple[int, int]]] = {}
            for channel, sender in entries:
                per_channel.setdefault(channel, []).append(sender)
            for channel, senders in sorted(per_channel.items()):
                if len(set(senders)) > 1:
                    self._record(
                        result.discipline,
                        {
                            "violation": "duplicate-sender",
                            "kind": kind,
                            "generation": generation,
                            "channel": channel,
                            "senders": sorted(set(senders)),
                        },
                    )
            if 0 < len(per_channel) < self.mesh:
                self._record(
                    result.discipline,
                    {
                        "violation": "partial-sender-set",
                        "kind": kind,
                        "generation": generation,
                        "channels": sorted(per_channel),
                        "expected_channels": self.mesh,
                    },
                )

    # -- expression evaluation ---------------------------------------------

    def _reply_key(self, args, env) -> str:
        slot = self._eval(args["reply_slot"], env)
        return f"{args['reply']}#{slot}"

    def _eval(self, expr, env) -> int:
        if isinstance(expr, IntLit):
            return expr.value
        if isinstance(expr, (VarRef, AffRef)):
            value = expr.evaluate(
                {k: v for k, v in env.items() if isinstance(v, int)}
                if isinstance(expr, AffRef)
                else env
            )
            return value
        if isinstance(expr, BinExpr):
            return expr.evaluate(env)
        if isinstance(expr, int):
            return expr
        if isinstance(expr, Expr):
            return expr.evaluate(env)
        raise TypeError(f"cannot evaluate {expr!r} statically")


def _spm_refs(expr) -> List[ArrayRef]:
    """All SPM array references inside an expression tree."""
    refs: List[ArrayRef] = []
    stack = [expr]
    while stack:
        node = stack.pop()
        if isinstance(node, ArrayRef):
            if node.memory == "spm":
                refs.append(node)
            stack.extend(node.indices)
        elif isinstance(node, BinExpr):
            stack.extend((node.lhs, node.rhs))
        elif hasattr(node, "args"):
            stack.extend(getattr(node, "args"))
        elif hasattr(node, "ref"):
            stack.append(getattr(node, "ref"))
    return refs
