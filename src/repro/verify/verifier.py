"""The kernel admission verifier: four checks over the lowered program.

``run_checks`` is the single entry point both admission paths share:

* the terminal ``verify`` pass of the default pipeline (the compile-time
  gate — a failing report raises :class:`KernelAdmissionError` before
  the program ever reaches a caller), and
* :func:`verify_program`, which re-derives the DMA/RMA specs from a
  program's decomposition and re-checks it — used by the artifact store
  for report-less disk hits and by ``swgemm verify``.

The four checks and the paper invariants they enforce:

=====================  =====  ==============================================
check                  §      invariant
=====================  =====  ==============================================
``spm-budget``         §6.3   all SPM buffers fit 256 KB per CPE
``dma-bounds``         §4     Eq. 1 coordinates in bounds for every tile
``double-buffer-       §6     no buffer read while an async transfer has
hazards``                     it in flight
``rma-discipline``     §5     balanced reply counters, matched
                              sender/receiver sets, no deadlock
=====================  =====  ==============================================
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.verify.machine import MachineResult, ScheduleMachine
from repro.verify.report import (
    FAILED,
    PASSED,
    VERIFIER_VERSION,
    CheckResult,
    VerificationReport,
    admission_error,
)
from repro.verify.static_checks import check_dma_bounds, check_spm_budget

__all__ = [
    "run_checks",
    "verify_program",
    "admit",
    "build_certificate",
    "machine_params",
    "replay_schedule",
]


def machine_params(spec, plan) -> Dict[str, int]:
    """The concrete chunk problem the schedule machine replays.

    ``K = 2·k_step`` exercises both double-buffer parities and one full
    steady-state iteration of the peeled pipeline; the schedule's
    control flow is otherwise shape-independent."""
    params = {
        spec.m_param: plan.chunk_m,
        spec.n_param: plan.chunk_n,
        spec.k_param: 2 * plan.k_step,
    }
    if spec.is_batched:
        params[spec.batch_param] = 2
    return params


def replay_schedule(cpe_program, plan, spec) -> MachineResult:
    """Replay one lowered program on the :class:`ScheduleMachine`.

    The legality oracle of the schedule rewrite stack
    (:mod:`repro.schedule`): a candidate timeline is admitted only when
    its replay completes on all CPEs with no hazards, no discipline
    violations and no deadlock.  Shares :func:`machine_params` with the
    admission checks, so rewrites are proven on exactly the chunk
    problem the verifier itself replays."""
    machine = ScheduleMachine(cpe_program, plan.mesh, machine_params(spec, plan))
    return machine.run()


def build_certificate(plan, cpe_program, dma_specs, rma_specs) -> Dict[str, object]:
    """The shape-invariant movement summary guarded execution replays.

    Keyed by what the engines observe at runtime — transfer direction
    and buffer names — with the per-message element counts the static
    analysis admitted."""
    return {
        "spm_bytes": cpe_program.spm_bytes(),
        "dma": {
            f"{d.direction}:{d.buffer}": {"size": d.size, "len": d.cols}
            for d in (dma_specs or {}).values()
        },
        "rma": {
            f"{s.kind}:{s.src_buffer}->{s.dst_buffer}": {"size": s.size}
            for s in (rma_specs or {}).values()
        },
    }


def _check_hazards(result: MachineResult, mesh: int) -> CheckResult:
    deadlocked_on_dma = result.deadlock is not None and "dma" in result.deadlock
    if result.hazards or deadlocked_on_dma:
        witness = dict(
            result.hazards[0]
            if result.hazards
            else {"violation": "deadlock", "blocked": result.deadlock}
        )
        witness["total_witnesses"] = len(result.hazards)
        first = witness.get("violation", "hazard")
        return CheckResult(
            name="double-buffer-hazards",
            section="§6",
            status=FAILED,
            detail=(
                f"{len(result.hazards)} hazard(s) in the pipelined "
                f"schedule; first: {first}"
                + ("; schedule deadlocked" if result.deadlock else "")
            ),
            witness=witness,
        )
    return CheckResult(
        name="double-buffer-hazards",
        section="§6",
        status=PASSED,
        detail=(
            f"schedule replayed on all {mesh * mesh} CPEs "
            f"({result.stats.get('dma_issues', 0)} DMA issues, "
            f"{result.stats.get('waits', 0)} waits): no buffer read "
            "while in flight, all DMA reply counters balanced"
        ),
    )


def _check_rma_discipline(
    result: MachineResult, mesh: int, use_rma: bool
) -> CheckResult:
    deadlocked = result.deadlock is not None and "dma" not in result.deadlock
    if result.discipline or deadlocked:
        if result.discipline:
            witness = dict(result.discipline[0])
        else:
            witness = {"violation": "deadlock", "blocked": result.deadlock}
        witness["total_witnesses"] = len(result.discipline)
        return CheckResult(
            name="rma-discipline",
            section="§5",
            status=FAILED,
            detail=(
                f"{len(result.discipline)} discipline violation(s); "
                f"first: {witness.get('violation', 'violation')}"
                + (
                    f"; mesh deadlocked ({result.deadlock})"
                    if result.deadlock
                    else ""
                )
            ),
            witness=witness,
        )
    if not use_rma:
        detail = "no RMA in this variant; reply ledger balanced"
    else:
        detail = (
            f"{result.stats.get('rma_issues', 0)} broadcasts across "
            f"{result.stats.get('barriers', 0)} synch generations: every "
            "reply counter balanced, sender sets complete, no deadlock"
        )
    return CheckResult(
        name="rma-discipline", section="§5", status=PASSED, detail=detail
    )


def run_checks(
    spec,
    arch,
    options,
    plan,
    dma_specs,
    rma_specs,
    cpe_program,
) -> VerificationReport:
    """Run all four checks over one lowered program."""
    checks = [
        check_spm_budget(arch, plan, cpe_program),
        check_dma_bounds(spec, plan, dma_specs),
    ]
    result = replay_schedule(cpe_program, plan, spec)
    checks.append(_check_hazards(result, plan.mesh))
    checks.append(_check_rma_discipline(result, plan.mesh, plan.use_rma))
    report = VerificationReport(
        verifier_version=VERIFIER_VERSION,
        checks=tuple(checks),
        certificate=build_certificate(plan, cpe_program, dma_specs, rma_specs),
    )
    return report


def verify_program(program) -> VerificationReport:
    """Re-verify a compiled program from its own decomposition.

    Used for artifacts loaded from disk (whose attached report, if any,
    predates this process) and by ``swgemm verify``."""
    from repro.core.dma import derive_dma_specs
    from repro.core.rma import derive_rma_specs

    dec = program.decomposition
    dma_specs = derive_dma_specs(dec)
    rma_specs = derive_rma_specs(dec) if program.plan.use_rma else None
    return run_checks(
        program.spec,
        program.arch,
        program.options,
        program.plan,
        dma_specs,
        rma_specs,
        program.cpe_program,
    )


def admit(report: VerificationReport) -> VerificationReport:
    """Raise the structured admission error if the report fails."""
    if not report.ok:
        raise admission_error(report)
    return report
