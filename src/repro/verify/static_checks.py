"""Closed-form safety checks: SPM budget (§6.3) and DMA bounds (§4).

Both checks are *static*: they inspect the lowered program's buffer plan
and the Eq. 1 affine start coordinates, never executing anything.

The DMA-bounds proof is parametric in the problem shape.  A compiled
kernel runs on any ``M = nm·chunk_m``, ``N = nn·chunk_n``,
``K = nk·k_step`` (and any batch count), so the verifier must show that
for *every* chunk-count vector the start interval of each transfer stays
inside the array extents.  The slack of each bound is an affine function
of the chunk counts (the interval endpoints are affine in the box
endpoints, which are affine in the counts), so it suffices to evaluate
the slack at the all-ones base point and to show that its per-count
gradient is non-negative — a finite certificate covering the infinite
shape family, including the ragged edge tiles of non-square and batched
problems (tiles whose owning CPE sits at ``Rid = Cid = mesh − 1`` on the
last chunk are the extreme points of the interval query).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.core.tile_model import spm_reserve_bytes
from repro.verify.report import FAILED, PASSED, CheckResult

#: Chunk-count variables the DMA-bounds proof quantifies over.
DMA_COUNT_VARS = ("nm", "nn", "nk", "nb")

#: The all-ones base point (the smallest admissible problem).
BASE_COUNTS: Dict[str, int] = {v: 1 for v in DMA_COUNT_VARS}


# ---------------------------------------------------------------------------
# Check 1: SPM budget (§6.3)
# ---------------------------------------------------------------------------


def plan_spm_slack(arch, plan) -> int:
    """SPM headroom (bytes) the tile plan leaves; negative = overflow.

    The plan-only core of the spm-budget admission check, shared with the
    autotuner's analytical pruner so infeasible search points are
    rejected by the *same* arithmetic the verifier later enforces —
    without compiling anything.
    """
    return arch.spm_bytes - spm_reserve_bytes(arch) - plan.spm_bytes()


def check_spm_budget(arch, plan, cpe_program) -> CheckResult:
    """The full buffer plan fits one CPE's scratch pad.

    Accounts every declared SPM buffer of the generated code (including
    any fused-epilogue temporaries a backend might add), reserves the
    runtime slice :func:`~repro.core.tile_model.spm_reserve_bytes` keeps
    for stack/reply counters, and cross-checks the AST's declarations
    against the tile plan so the two can never drift apart silently.
    """
    reserve = spm_reserve_bytes(arch)
    usable = arch.spm_bytes - reserve
    buffers = {b.name: b.nbytes for b in cpe_program.buffers}
    total = sum(buffers.values())
    plan_total = plan.spm_bytes()
    if total > usable:
        return CheckResult(
            name="spm-budget",
            section="§6.3",
            status=FAILED,
            detail=(
                f"declared SPM buffers need {total} B but only {usable} B "
                f"are usable ({arch.spm_bytes} B capacity − {reserve} B "
                "runtime reserve)"
            ),
            witness={
                "spm_bytes": total,
                "usable_bytes": usable,
                "capacity_bytes": arch.spm_bytes,
                "reserve_bytes": reserve,
                "buffers": buffers,
            },
        )
    if total != plan_total:
        return CheckResult(
            name="spm-budget",
            section="§6.3",
            status=FAILED,
            detail=(
                f"AST buffer declarations ({total} B) diverge from the "
                f"tile plan ({plan_total} B); the cost model and the "
                "generated code disagree about SPM usage"
            ),
            witness={
                "spm_bytes": total,
                "plan_bytes": plan_total,
                "buffers": buffers,
            },
        )
    return CheckResult(
        name="spm-budget",
        section="§6.3",
        status=PASSED,
        detail=(
            f"{len(buffers)} buffers, {total} B of {usable} B usable "
            f"({reserve} B reserved)"
        ),
    )


# ---------------------------------------------------------------------------
# Check 2: DMA bounds (§4, Eq. 1)
# ---------------------------------------------------------------------------


def count_box(spec, plan, counts: Dict[str, int]) -> Dict[str, Tuple[int, int]]:
    """Inclusive ranges of every loop variable a start coordinate may
    mention, for a problem of ``counts`` chunks per dimension."""
    mesh = plan.mesh - 1
    box = {
        "ic": (0, counts["nm"] - 1),
        "jc": (0, counts["nn"] - 1),
        "Rid": (0, mesh),
        "Cid": (0, mesh),
        "km": (0, mesh),
        "ko": (0, counts["nk"] - 1),
        "ktile": (0, counts["nk"] - 1),
    }
    if spec.is_batched:
        box["b"] = (0, counts["nb"] - 1)
    return box


def problem_dims(spec, plan, counts: Dict[str, int]) -> Dict[str, int]:
    """Array extent of each shape parameter at ``counts`` chunks."""
    return {
        spec.m_param: counts["nm"] * plan.chunk_m,
        spec.n_param: counts["nn"] * plan.chunk_n,
        spec.k_param: counts["nk"] * plan.k_step,
    }


def axis_checks(spec, dspec) -> List[Tuple[str, object, int, Optional[str]]]:
    """The bound obligations of one DMA spec.

    Yields ``(axis, start_expr, extent, dim_param)`` tuples; a ``None``
    ``dim_param`` denotes the batch dimension (extent given directly by
    the batch count)."""
    dims_of = {
        spec.a_name: spec.a_dims(),
        spec.b_name: spec.b_dims(),
        spec.c_name: spec.c_dims(),
    }
    row_param, col_param = dims_of[dspec.array]
    checks: List[Tuple[str, object, int, Optional[str]]] = [
        ("row", dspec.row_expr, dspec.rows, row_param),
        ("col", dspec.col_expr, dspec.cols, col_param),
    ]
    if dspec.batch_expr is not None:
        checks.append(("batch", dspec.batch_expr, 1, None))
    return checks


def axis_slack(
    spec, plan, axis_check, counts: Dict[str, int]
) -> Tuple[int, int, Tuple[int, int], int]:
    """Lower/upper slack of one bound obligation at a concrete count
    vector: ``(lo_slack, hi_slack, (lo, hi), dim)`` where both slacks
    must be ≥ 0 for the transfer to stay in bounds."""
    _, expr, extent, dim_param = axis_check
    box = count_box(spec, plan, counts)
    lo, hi = expr.interval(box)
    if dim_param is None:
        dim = counts["nb"]
    else:
        dim = problem_dims(spec, plan, counts)[dim_param]
    return lo, dim - extent - hi, (lo, hi), dim


def _extreme_tile(expr, box) -> Dict[str, int]:
    """A concrete tile-index assignment attaining the interval maximum
    (the witness edge tile)."""
    env: Dict[str, int] = {}
    try:
        for var in sorted(expr.variables()):
            lo, hi = box[var]
            env[var] = hi if expr.coefficient(var) >= 0 else lo
    except Exception:  # pragma: no cover - non-linear coordinate
        return {}
    return env


def _bounds_failure(
    spec, plan, name: str, dspec, axis_check, counts: Dict[str, int]
) -> Optional[Dict[str, object]]:
    """Witness dict if this obligation is violated at ``counts``."""
    axis, expr, extent, dim_param = axis_check
    lo_slack, hi_slack, (lo, hi), dim = axis_slack(spec, plan, axis_check, counts)
    if lo_slack >= 0 and hi_slack >= 0:
        return None
    box = count_box(spec, plan, counts)
    witness: Dict[str, object] = {
        "transfer": name,
        "array": dspec.array,
        "axis": axis,
        "chunk_counts": {
            k: v for k, v in counts.items() if k != "nb" or spec.is_batched
        },
        "start_range": (lo, hi),
        "tile_extent": extent,
        "array_extent": dim,
        "tile_index": _extreme_tile(expr, box),
    }
    if lo_slack < 0:
        witness["underflow"] = -lo_slack
    if hi_slack < 0:
        witness["overflow"] = -hi_slack
    return witness


def check_dma_bounds(spec, plan, dma_specs) -> CheckResult:
    """Every Eq. 1 start coordinate stays inside its array for every
    tile index of every admissible problem shape."""
    obligations = 0
    for name, dspec in sorted((dma_specs or {}).items()):
        for axis_check in axis_checks(spec, dspec):
            obligations += 1
            # Base point: the smallest problem (one chunk everywhere).
            witness = _bounds_failure(spec, plan, name, dspec, axis_check, BASE_COUNTS)
            if witness is not None:
                return _bounds_failed(witness)
            base_lo, base_hi, _, _ = axis_slack(spec, plan, axis_check, BASE_COUNTS)
            # Per-count gradients: slack is affine in each chunk count,
            # so a non-negative gradient at the base point extends the
            # base certificate to every larger problem; a negative one
            # pins down the first count at which the bound breaks.
            for var in DMA_COUNT_VARS:
                if var == "nb" and not spec.is_batched:
                    continue
                bumped = dict(BASE_COUNTS)
                bumped[var] = 2
                lo2, hi2, _, _ = axis_slack(spec, plan, axis_check, bumped)
                for base, grown, base_value in (
                    (base_lo, lo2, base_lo),
                    (base_hi, hi2, base_hi),
                ):
                    grad = grown - base
                    if grad >= 0:
                        continue
                    steps = base_value // (-grad) + 1
                    failing = dict(BASE_COUNTS)
                    failing[var] = 1 + steps
                    witness = _bounds_failure(
                        spec, plan, name, dspec, axis_check, failing
                    )
                    if witness is not None:
                        return _bounds_failed(witness)
    return CheckResult(
        name="dma-bounds",
        section="§4",
        status=PASSED,
        detail=(
            f"{obligations} bound obligations over {len(dma_specs or {})} "
            "transfers proven for all chunk counts ≥ 1 (base point + "
            "non-negative per-count slack gradients)"
        ),
    )


def _bounds_failed(witness: Dict[str, object]) -> CheckResult:
    return CheckResult(
        name="dma-bounds",
        section="§4",
        status=FAILED,
        detail=(
            f"transfer {witness['transfer']!r} leaves array "
            f"{witness['array']!r} along the {witness['axis']} axis"
        ),
        witness=witness,
    )
