"""Verification reports: the structured output of the admission gate.

A :class:`VerificationReport` is attached to every
:class:`~repro.runtime.program.CompiledProgram` the default pipeline
admits.  It carries one :class:`CheckResult` per safety check (SPM
budget, DMA bounds, double-buffer hazards, RMA discipline) plus the
*certificate* — a shape-invariant summary of the data movement the
static analysis proved safe, which guarded execution replays against
observed DMA/RMA/SPM events.

This module deliberately imports nothing from the compiler or runtime
layers so it can be registered with :mod:`repro.runtime.serde` without
creating an import cycle.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.errors import KernelAdmissionError

#: Bumped whenever a check is added or its semantics change; stored in
#: the report so stale certificates are recognisable after upgrades.
VERIFIER_VERSION = 1

PASSED = "passed"
FAILED = "failed"
SKIPPED = "skipped"


@dataclass(frozen=True)
class CheckResult:
    """Outcome of one safety check over the lowered program."""

    #: Stable check identifier (``spm-budget``, ``dma-bounds``,
    #: ``double-buffer-hazards``, ``rma-discipline``).
    name: str
    #: Paper section whose invariant this check enforces.
    section: str
    #: ``passed`` / ``failed`` / ``skipped``.
    status: str
    #: Human-readable one-liner (what was proven, or what broke).
    detail: str = ""
    #: For failures: the concrete counterexample — buffer names, tile
    #: indices, reply-counter names — as a plain JSON-friendly dict.
    witness: Optional[Dict[str, object]] = None

    @property
    def ok(self) -> bool:
        return self.status != FAILED


@dataclass(frozen=True)
class VerificationReport:
    """Per-check status plus the certificate for guarded execution."""

    verifier_version: int = VERIFIER_VERSION
    checks: Tuple[CheckResult, ...] = ()
    #: Shape-invariant summary of admitted data movement:
    #: ``{"spm_bytes": int, "dma": {...}, "rma": {...}}``.
    certificate: Optional[Dict[str, object]] = None

    @property
    def ok(self) -> bool:
        return all(c.ok for c in self.checks)

    def failed(self) -> List[CheckResult]:
        return [c for c in self.checks if c.status == FAILED]

    def check(self, name: str) -> CheckResult:
        for c in self.checks:
            if c.name == name:
                return c
        raise KeyError(name)

    def summary(self) -> str:
        """One line for snapshots and ``compile`` output."""
        passed = sum(1 for c in self.checks if c.status == PASSED)
        if self.ok:
            return (
                f"{passed}/{len(self.checks)} checks passed "
                f"(verifier v{self.verifier_version})"
            )
        names = ", ".join(c.name for c in self.failed())
        return f"FAILED {names} (verifier v{self.verifier_version})"

    def render(self) -> str:
        """Multi-line report for ``swgemm verify`` / ``--explain-verify``."""
        lines = [f"verification (verifier v{self.verifier_version}):"]
        for c in self.checks:
            lines.append(f"  [{c.status:>7}] {c.name} ({c.section})")
            if c.detail:
                lines.append(f"            {c.detail}")
            if c.witness:
                for k, v in c.witness.items():
                    lines.append(f"            witness {k}: {v}")
        lines.append(
            "  verdict: " + ("ADMITTED" if self.ok else "REJECTED")
        )
        return "\n".join(lines)

    def describe(self) -> Dict[str, object]:
        """JSON-friendly view for ``swgemm verify --json``."""
        return {
            "verifier_version": self.verifier_version,
            "ok": self.ok,
            "checks": [
                {
                    "name": c.name,
                    "section": c.section,
                    "status": c.status,
                    "detail": c.detail,
                    "witness": c.witness,
                }
                for c in self.checks
            ],
        }


def admission_error(report: VerificationReport) -> KernelAdmissionError:
    """Build the structured rejection for a failing report."""
    failed = report.failed()
    first = failed[0]
    witness = ""
    if first.witness:
        parts = ", ".join(f"{k}={v}" for k, v in first.witness.items())
        witness = f" [witness: {parts}]"
    more = f" (+{len(failed) - 1} more failed checks)" if len(failed) > 1 else ""
    return KernelAdmissionError(
        f"kernel rejected at admission: check {first.name!r} ({first.section}) "
        f"failed: {first.detail}{witness}{more}",
        report=report,
    )
