"""Kernel admission control: the static safety verifier (PR 4).

Public surface:

* :func:`run_checks` / :func:`verify_program` — run the four safety
  checks (SPM budget §6.3, DMA bounds §4, double-buffer hazards §6,
  RMA discipline §5) over a lowered program;
* :class:`VerificationReport` / :class:`CheckResult` — the structured
  result attached to every admitted :class:`CompiledProgram`;
* :func:`admit` — raise :class:`repro.errors.KernelAdmissionError` on a
  failing report;
* :class:`CertificateGuard` — runtime cross-checking of the static
  certificate (guarded execution).
"""

from repro.verify.guard import CertificateGuard
from repro.verify.static_checks import plan_spm_slack
from repro.verify.report import (
    FAILED,
    PASSED,
    SKIPPED,
    VERIFIER_VERSION,
    CheckResult,
    VerificationReport,
    admission_error,
)
from repro.verify.verifier import (
    admit,
    build_certificate,
    machine_params,
    replay_schedule,
    run_checks,
    verify_program,
)

__all__ = [
    "CertificateGuard",
    "CheckResult",
    "VerificationReport",
    "VERIFIER_VERSION",
    "PASSED",
    "FAILED",
    "SKIPPED",
    "admission_error",
    "admit",
    "build_certificate",
    "machine_params",
    "plan_spm_slack",
    "replay_schedule",
    "run_checks",
    "verify_program",
]
