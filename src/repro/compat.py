"""Deprecated pre-facade entry points.

Everything here works exactly as before — these are thin shims over the
real implementations — but each use emits a :class:`DeprecationWarning`
with the one-line migration to :mod:`repro.api`:

===============================  ======================================
old entry point                  replacement
===============================  ======================================
``repro.GemmCompiler(...)``      ``repro.api.compile(spec, ...)``
``repro.run_gemm(program, ...)`` ``repro.api.run(program, a, b)``
``KernelService(config)``        ``CompileService(config)`` or the
                                 facade (see
                                 :class:`repro.service.KernelService`)
===============================  ======================================

Internal modules import from the real homes
(:mod:`repro.core.pipeline`, :mod:`repro.runtime.executor`) and never
warn; only the legacy top-level spellings do.
"""

from __future__ import annotations

import warnings

from repro.core.pipeline import GemmCompiler as _GemmCompiler
from repro.runtime.executor import run_gemm as _run_gemm

__all__ = ["GemmCompiler", "run_gemm"]


def _warn(old: str, hint: str, stacklevel: int = 3) -> None:
    warnings.warn(
        f"{old} is deprecated; {hint}",
        DeprecationWarning,
        stacklevel=stacklevel,
    )


class GemmCompiler(_GemmCompiler):
    """Deprecated: use :func:`repro.api.compile` (cached, tuned,
    single-flight) or :class:`repro.core.pipeline.GemmCompiler` when a
    raw uncached pipeline is really wanted."""

    def __init__(self, *args, **kwargs) -> None:
        _warn(
            "repro.GemmCompiler",
            "use repro.api.compile(spec, ...) — it caches, single-flights "
            "and applies tuning records",
        )
        super().__init__(*args, **kwargs)


def run_gemm(*args, **kwargs):
    """Deprecated: use :func:`repro.api.run`."""
    _warn(
        "repro.run_gemm",
        "use repro.api.run(program, a, b) — it returns a structured "
        "GemmResult",
    )
    return _run_gemm(*args, **kwargs)
