"""Command-line interface.

Mirrors the surface described in §8::

    swgemm compile gemm.c -o outdir            # athread C files
    swgemm compile gemm.c --no-use-asm         # bypass the asm kernel
    swgemm compile gemm.c --batch              # batched GEMM
    swgemm run gemm.c -M 1024 -N 1024 -K 1024  # simulate functionally
    swgemm perf -M 4096 -N 4096 -K 4096        # timed simulation vs xMath
    swgemm tree gemm.c                         # dump the schedule tree

the pass-pipeline introspection surface::

    swgemm passes list                         # the variant-aware pipeline
    swgemm compile --print-after all           # IR snapshot after each pass
    swgemm compile --print-after dma-derivation
    swgemm compile --disable-pass latency-hiding   # == the §8.1 ablation
    swgemm compile --dump-ir irdir             # one snapshot file per pass

plus the compilation-service surface::

    swgemm cache stats                         # two-tier cache report
    swgemm cache warmup                        # precompile standard kernels
    swgemm cache clear                         # drop all artifacts
    swgemm --no-cache perf ...                 # bypass the kernel cache

the admission-control surface::

    swgemm verify gemm.c                       # per-check safety report
    swgemm compile --explain-verify            # report alongside codegen
    swgemm run --guarded ...                   # certificate-checked run
    swgemm compile --no-verify                 # escape hatch (bit-exact code)
    swgemm --timeout 10 compile ...            # structured compile deadline

and the autotuning surface::

    swgemm tune -M 576 -N 1024 -K 512          # model-guided search
    swgemm tune --batch-count 256 -M 32 ...    # tune a batched shape class
    swgemm tune --show                         # list stored tuning records
    swgemm run -M 576 -N 1024 -K 512 ...       # steered by matching records

Global flags (``--cache-dir``, ``--no-cache``, ``--timeout``, ``--arch``,
the fault-injection family, ``--debug``) are accepted both before and
after the subcommand: ``swgemm --no-cache perf`` and
``swgemm perf --no-cache`` are the same invocation.

Programs are obtained through :class:`repro.service.CompileService`, so
repeated invocations reuse on-disk artifacts under ``~/.cache/swgemm``
(override with ``$SWGEMM_CACHE_DIR`` or ``--cache-dir``).
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from pathlib import Path

import numpy as np

DEFAULT_GEMM_C = """\
void gemm(int M, int N, int K, double alpha,
          double A[M][K], double B[K][N], double C[M][N]) {
  for (int i = 0; i < M; i++)
    for (int j = 0; j < N; j++)
      for (int k = 0; k < K; k++)
        C[i][j] = C[i][j] + alpha * A[i][k] * B[k][j];
}
"""


def _load_source(path: str) -> str:
    if path == "-":
        return sys.stdin.read()
    return Path(path).read_text()


def _arch_choices() -> "tuple":
    from repro.sunway import arch_names

    return arch_names()


def _arch_from_args(args) -> "ArchSpec":
    from repro.sunway import get_arch

    return get_arch(getattr(args, "arch", "sw26010pro"))


def _parse_micro_kernel(value: str):
    """``--micro-kernel`` spec → ``(TileConfig | None, backend | None)``.

    Accepted forms: ``MTxNTxKT`` (shape on the default backend), a bare
    backend name (``vendor``/``parametric`` at the arch's default
    shape), or ``MTxNTxKT@BACKEND``.
    """
    from repro.codegen.backend import backend_names
    from repro.core.options import TileConfig
    from repro.errors import ConfigurationError

    shape_part, sep, backend = value.partition("@")
    if not sep and shape_part in backend_names():
        return None, shape_part
    try:
        mt, nt, kt = (int(d) for d in shape_part.split("x"))
    except ValueError:
        raise ConfigurationError(
            f"--micro-kernel {value!r}: expected MTxNTxKT, a backend name "
            f"({', '.join(backend_names())}), or MTxNTxKT@BACKEND"
        ) from None
    if backend and backend not in backend_names():
        raise ConfigurationError(
            f"--micro-kernel {value!r}: unknown backend {backend!r} "
            f"(registered: {', '.join(backend_names())})"
        )
    return TileConfig(mt, nt, kt), backend or None


def _add_shared_flags(parser, suppress: bool = False) -> None:
    """The flags every subcommand shares.

    Added twice: on the root parser with their real defaults, and (with
    ``suppress=True``) on a parent parser inherited by every subcommand
    with :data:`argparse.SUPPRESS` defaults — so ``swgemm --no-cache
    perf`` and ``swgemm perf --no-cache`` both parse, and a value given
    after the subcommand overrides one given before it.
    """

    def default(value):
        return argparse.SUPPRESS if suppress else value

    parser.add_argument(
        "--no-cache", action="store_true", default=default(False),
        help="bypass the kernel compilation cache entirely",
    )
    parser.add_argument(
        "--cache-dir", metavar="DIR", default=default(None),
        help="artifact store location (default: $SWGEMM_CACHE_DIR "
        "or ~/.cache/swgemm)",
    )
    parser.add_argument(
        "--arch", choices=_arch_choices(), default=default("sw26010pro"),
        help="target architecture model from the arch registry "
        "(default: sw26010pro)",
    )
    parser.add_argument(
        "--micro-kernel", metavar="SPEC", default=default(None),
        help="micro-kernel request: MTxNTxKT (shape), a backend name "
        "(vendor/parametric), or MTxNTxKT@BACKEND (default: the arch's "
        "contract on the vendor backend)",
    )
    parser.add_argument(
        "--debug", action="store_true", default=default(False),
        help="print full tracebacks instead of one-line errors",
    )
    parser.add_argument(
        "--timeout", type=float, default=default(None), metavar="S",
        help="compile deadline in wall seconds; exceeding it raises a "
        "structured CompileTimeout instead of hanging",
    )
    parser.add_argument(
        "--inject-faults", action="store_true", default=default(False),
        help="enable the deterministic fault-injection plane (chaos preset)",
    )
    parser.add_argument(
        "--fault-rate", type=float, default=default(0.05), metavar="P",
        help="per-transfer fault probability under --inject-faults "
        "(default: 0.05)",
    )
    parser.add_argument(
        "--fault-seed", type=int, default=default(0), metavar="SEED",
        help="seed of the deterministic fault streams (default: 0)",
    )
    parser.add_argument(
        "--max-retries", type=int, default=default(3), metavar="N",
        help="retry budget per transfer before a TransientFaultError "
        "(default: 3)",
    )


def _fault_policies_from_args(args):
    """``(FaultPolicy, RetryPolicy)`` from the global chaos flags, or
    ``(None, None)`` when fault injection is off."""
    from repro.faults import FaultPolicy, RetryPolicy

    if not getattr(args, "inject_faults", False):
        return None, None
    policy = FaultPolicy.chaos(
        seed=getattr(args, "fault_seed", 0),
        rate=getattr(args, "fault_rate", 0.05),
    )
    retry = RetryPolicy(max_retries=getattr(args, "max_retries", 3))
    return policy, retry


def _service_from_args(args) -> "CompileService":
    from repro.service import CompileService, ServiceConfig, default_cache_dir

    if getattr(args, "no_cache", False):
        return CompileService(ServiceConfig(enabled=False))
    cache_dir = (
        Path(args.cache_dir) if getattr(args, "cache_dir", None) else default_cache_dir()
    )
    return CompileService(ServiceConfig(cache_dir=cache_dir))


def _validate_cache_dir(args, write: bool = True) -> None:
    """Fail the cache subcommands with a structured message (not a
    traceback) when an explicit ``--cache-dir`` cannot be used.

    ``write=False`` skips the writability check: inspection commands
    (``cache stats``, ``tune --show``) are valid against a read-only
    legacy store, which :class:`ArtifactStore` explicitly serves."""
    from repro.errors import ConfigurationError

    explicit = getattr(args, "cache_dir", None)
    if not explicit or getattr(args, "no_cache", False):
        return
    path = Path(explicit).expanduser()
    if not path.exists():
        # A missing directory is created on first use; but a dead parent
        # chain (e.g. a path through a regular file) cannot be.
        parent = path.parent
        if parent.exists() and not parent.is_dir():
            raise ConfigurationError(
                f"cannot create cache directory {path}: {parent} is not "
                "a directory"
            )
        return
    if not path.is_dir():
        raise ConfigurationError(f"cache path {path} is not a directory")
    if not os.access(path, os.R_OK | os.X_OK):
        raise ConfigurationError(f"cache directory {path} is not readable")
    if write and not os.access(path, os.W_OK):
        raise ConfigurationError(f"cache directory {path} is not writable")


def _spec_and_options(args):
    from repro.core.options import CompilerOptions
    from repro.frontend import extract_spec

    source = _load_source(args.source) if getattr(args, "source", None) else DEFAULT_GEMM_C
    spec, inferred = extract_spec(source, return_options=True)
    if args.no_use_asm or args.no_rma or args.no_hiding:
        options = CompilerOptions(
            batch=args.batch,
            use_asm=not args.no_use_asm,
            enable_rma=not args.no_rma,
            enable_latency_hiding=not (args.no_hiding or args.no_use_asm),
        )
    else:
        options = inferred
    if getattr(args, "no_verify", False):
        options = options.with_(verify=False)
    options = _apply_micro_kernel(args, options)
    options = _apply_schedule(args, options)
    return spec, options


def _apply_schedule(args, options):
    """Fold ``--schedule`` / ``--schedule-passes`` into an option set.

    ``recipe`` pins the fixed §6 pipeline, ``optimize`` layers the
    replay-proven rewrite stack on top of it, ``off`` is the structured
    spelling of the deprecated ``--no-hiding``.  Reconciliation
    canonicalises the policy (and drops it when it cannot run), so the
    cache key only ever sees the normal form.
    """
    from repro.core.options import SchedulePolicy
    from repro.errors import ConfigurationError

    mode = getattr(args, "schedule", None)
    passes = getattr(args, "schedule_passes", None)
    if passes is not None and mode != "optimize":
        raise ConfigurationError(
            "--schedule-passes only applies to --schedule=optimize"
        )
    if mode is None:
        return options
    if mode == "optimize" and (
        getattr(args, "no_hiding", False) or getattr(args, "no_use_asm", False)
    ):
        raise ConfigurationError(
            "--schedule=optimize rewrites the latency-hiding pipeline and "
            "cannot be combined with --no-hiding / --no-use-asm"
        )
    allow = ()
    if passes:
        allow = tuple(p.strip() for p in passes.split(",") if p.strip())
    policy = SchedulePolicy(mode=mode, allow=allow)
    if mode == "off":
        options = options.with_(enable_latency_hiding=False)
    return options.with_(schedule=policy)


def _apply_micro_kernel(args, options):
    """Fold a ``--micro-kernel`` request into an option set."""
    value = getattr(args, "micro_kernel", None)
    if not value:
        return options
    cfg, backend = _parse_micro_kernel(value)
    if cfg is not None:
        options = options.with_(tile_config=cfg)
    if backend is not None:
        options = options.with_(kernel_backend=backend)
    return options


def _introspection_requested(args) -> bool:
    return bool(
        getattr(args, "print_after", None)
        or getattr(args, "disable_pass", None)
        or getattr(args, "dump_ir", None)
    )


def _build_introspected(args, spec, options) -> "CompiledProgram":
    """Direct (cache-bypassing) compile with pass-level introspection.

    Snapshots live on the compile context, not on cached artifacts, so
    ``--print-after`` / ``--dump-ir`` always run the real pipeline;
    ``--disable-pass`` rides along for the same bit-exact guarantee.
    """
    from repro.core.pipeline import GemmCompiler

    compiler = GemmCompiler(
        _arch_from_args(args), options,
        disable_passes=tuple(args.disable_pass or ()),
    )

    def sink(pass_, header, snapshot):
        print(header)
        print(snapshot, end="")

    program, ctx = compiler.compile_with_context(
        spec, print_after=args.print_after or None, sink=sink,
        timeout_s=getattr(args, "timeout", None),
    )
    if args.dump_ir:
        outdir = Path(args.dump_ir)
        outdir.mkdir(parents=True, exist_ok=True)
        count = 0
        for index, (name, snapshot) in enumerate(ctx.snapshots.items(), 1):
            (outdir / f"{index:02d}-{name}.txt").write_text(snapshot)
            count = index
        if program.plan.double_buffered:
            # Per-pass snapshots show the tree; the artifact set is only
            # complete with the final post-schedule timeline alongside.
            from repro.schedule import extract_timeline

            timeline = extract_timeline(program.tree).dump()
            (outdir / f"{count + 1:02d}-schedule-timeline.txt").write_text(
                timeline
            )
            count += 1
        print(f"wrote {count} IR snapshot(s) to {outdir}")
    return program


def _build_program(args, service=None) -> "CompiledProgram":
    spec, options = _spec_and_options(args)
    if _introspection_requested(args):
        return _build_introspected(args, spec, options)
    fault_policy, retry_policy = _fault_policies_from_args(args)
    if fault_policy is not None:
        options = options.with_(
            fault_policy=fault_policy, retry_policy=retry_policy
        )
    service = service or _service_from_args(args)
    shape_hint = None
    if all(hasattr(args, dim) for dim in ("M", "N", "K")):
        # Commands carrying a concrete shape (run) are steered to a
        # tuned configuration when the shape class has a record.
        shape_hint = (args.M, args.N, args.K)
    return service.get_program(
        spec, _arch_from_args(args), options,
        timeout_s=getattr(args, "timeout", None), shape_hint=shape_hint,
    )


def cmd_compile(args) -> int:
    program = _build_program(args)
    outdir = Path(args.output)
    outdir.mkdir(parents=True, exist_ok=True)
    (outdir / "gemm_cpe.c").write_text(program.cpe_source())
    (outdir / "gemm_mpe.c").write_text(program.mpe_source())
    print(f"wrote {outdir}/gemm_cpe.c and {outdir}/gemm_mpe.c")
    print(f"code generation took {program.codegen_seconds * 1e3:.2f} ms")
    for stat in program.pass_stats:
        print(
            f"  {stat.name:24s} {stat.section:10s} {stat.seconds * 1e3:7.3f} ms"
        )
    print(f"SPM plan: {program.plan.describe()}")
    if getattr(args, "explain_verify", False):
        if getattr(args, "no_verify", False) or program.verification is None:
            # A cached artifact may still carry a report (verified and
            # unverified compiles share one cache entry); the user asked
            # to skip the gate, so do not render it as if it had run.
            print("verification: no report attached (compiled with --no-verify)")
        else:
            print(program.verification.render())
    return 0


def cmd_verify(args) -> int:
    """Run the admission verifier explicitly and report, instead of
    compiling through the gate (which would raise on the first failure)."""
    from repro.core.pipeline import GemmCompiler
    from repro.verify import verify_program

    spec, options = _spec_and_options(args)
    # Compile without the terminal gate so a failing kernel still yields
    # a full report (the gate would abort at the first failed check).
    program = GemmCompiler(
        _arch_from_args(args), options.with_(verify=False)
    ).compile(spec, timeout_s=getattr(args, "timeout", None))
    report = verify_program(program)
    if args.json:
        print(json.dumps(report.describe(), indent=2, sort_keys=True))
    else:
        print(report.render())
    return 0 if report.ok else 1


def cmd_tree(args) -> int:
    program = _build_program(args)
    print(program.tree_dump())
    if program.plan.double_buffered:
        # The tree is the loop structure; the timeline is the per-CPE
        # DMA/RMA/compute pipeline read off it — print both so the dump
        # is complete for double-buffered (schedulable) plans.
        from repro.schedule import extract_timeline

        print("--- schedule timeline ---")
        print(extract_timeline(program.tree).dump(), end="")
    return 0


def cmd_passes_list(args) -> int:
    from repro.core.pipeline import GemmCompiler

    spec, options = _spec_and_options(args)
    compiler = GemmCompiler(
        _arch_from_args(args), options,
        disable_passes=tuple(args.disable_pass or ()),
    )
    passes = compiler.pipeline_for(spec)
    effective = compiler.effective_options(spec)
    print(
        f"pass pipeline for variant {effective.variant_name()!r} "
        f"({len(passes)} passes, id {compiler.pipeline_identity_for(spec)}):"
    )
    for index, pass_ in enumerate(passes, 1):
        print(f"{index:3d}. {pass_.name:24s} {pass_.section:10s} {pass_.summary}")
    return 0


def cmd_run(args) -> int:
    from repro.runtime.executor import run_gemm

    program = _build_program(args)
    rng = np.random.default_rng(args.seed)
    A = rng.standard_normal((args.M, args.K))
    B = rng.standard_normal((args.K, args.N))
    C = np.zeros((args.M, args.N))
    guarded = getattr(args, "guarded", False)
    C, report = run_gemm(
        program, A, B, C, alpha=args.alpha, beta=0.0, guarded=guarded
    )
    reference = args.alpha * (A @ B)
    error = float(np.abs(C - reference).max())
    print(f"max |C - reference| = {error:.3e}")
    if guarded:
        print(
            f"guarded mode: {int(report.stats.get('guard_events', 0))} "
            f"events checked against the certificate, "
            f"{int(report.stats.get('guard_divergences', 0))} divergences"
        )
    print(
        f"simulated time {report.elapsed_seconds * 1e3:.3f} ms "
        f"({report.gflops:.1f} Gflops of useful work)"
    )
    if getattr(args, "inject_faults", False):
        stats = report.stats
        retries = int(stats.get("dma_retries", 0)) + int(stats.get("rma_retries", 0))
        print(
            f"fault plane: seed {args.fault_seed}, rate {args.fault_rate}; "
            f"{retries} transfer retries "
            f"({int(stats.get('dma_retries', 0))} DMA, "
            f"{int(stats.get('rma_retries', 0))} RMA), "
            f"{int(stats.get('lost_replies', 0))} lost replies"
        )
    return 0 if error < 1e-8 else 1


def cmd_perf(args) -> int:
    from repro.runtime.simulator import PerformanceSimulator
    from repro.xmath.perfmodel import xmath_gflops

    sim = PerformanceSimulator(
        _arch_from_args(args), service=_service_from_args(args)
    )
    fault_policy, retry_policy = _fault_policies_from_args(args)
    breakdown = sim.breakdown(
        args.M, args.N, args.K,
        fault_policy=fault_policy, retry_policy=retry_policy,
    )
    for variant, perf in breakdown.items():
        print(f"{variant:>9s}: {perf.gflops:8.1f} Gflops "
              f"({100 * perf.peak_fraction:5.1f}% of peak)")
    lib = xmath_gflops(args.M, args.N, args.K, sim.arch)
    print(f"{'xMath':>9s}: {lib:8.1f} Gflops "
          f"({100 * lib / sim.arch.peak_gflops:5.1f}% of peak)")
    return 0


def cmd_tune(args) -> int:
    from repro import api

    _validate_cache_dir(args, write=not getattr(args, "show", False))
    service = _service_from_args(args)
    if args.show:
        rows = [r.describe() for r in service.tuning_store.records()]
        if args.json:
            print(json.dumps(rows, indent=2, sort_keys=True))
        elif not rows:
            print("no tuning records stored")
        else:
            for row in rows:
                print(
                    f"{row['shape_class']:>16s}  {row['config']:>26s}  "
                    f"{row['best_gflops']:8.1f} Gflops  "
                    f"({row['improvement_pct']:+6.2f}% vs default)  "
                    f"[{row['arch']}, seed {row['seed']}, "
                    f"{row['key'][:12]}]"
                )
        return 0

    if getattr(args, "source", None):
        spec, options = _spec_and_options(args)
    else:
        # No source: let the tuner pick the (possibly batched) default
        # spec for --batch-count, honoring any explicit knob flags.
        spec, options = None, None
        if args.no_use_asm or args.no_rma or args.no_hiding:
            from repro.core.options import CompilerOptions

            options = CompilerOptions.full().with_(
                use_asm=not args.no_use_asm,
                enable_rma=not args.no_rma,
                enable_latency_hiding=not (args.no_hiding or args.no_use_asm),
            )
        if getattr(args, "micro_kernel", None):
            from repro.core.options import CompilerOptions

            options = _apply_micro_kernel(args, options or CompilerOptions.full())
        if getattr(args, "schedule", None):
            from repro.core.options import CompilerOptions

            options = _apply_schedule(args, options or CompilerOptions.full())
    result = api.tune(
        spec,
        shape=(args.M, args.N, args.K, args.batch_count),
        arch=_arch_from_args(args),
        seed=args.seed,
        budget=args.budget,
        options=options,
        service=service,
        full_result=True,
    )
    if args.json:
        print(json.dumps(result.describe(), indent=2, sort_keys=True))
        return 0
    row = result.describe()
    print(
        f"searched {result.candidates_total} candidate(s): "
        f"{result.pruned} pruned analytically, {result.measured} measured, "
        f"{result.resumed} resumed from journal ({result.strategy})"
    )
    print(f"shape class : {row['shape_class']}")
    print(f"best config : {row['config']}")
    print(
        f"best        : {row['best_gflops']:.1f} Gflops "
        f"(default {row['default_gflops']:.1f}, "
        f"{row['improvement_pct']:+.2f}%)"
    )
    print(f"record      : {row['key'][:16]} (search space v{row['space_version']})")
    if service.tuning_store.root is None:
        print("note: cache disabled — record not persisted (--no-cache)")
    return 0


# ---------------------------------------------------------------------------
# Cache subcommand group
# ---------------------------------------------------------------------------


def cmd_cache_stats(args) -> int:
    _validate_cache_dir(args, write=False)
    service = _service_from_args(args)
    report = service.stats()
    if args.json:
        print(json.dumps(report, indent=2, sort_keys=True))
        return 0
    disk = report.get("disk")
    if disk is None:
        print("kernel cache is disabled (--no-cache)")
        return 0
    persistent = report.get("persistent", {})
    print(f"cache dir : {disk['dir']}")
    print(f"artifacts : {disk['artifacts']} ({disk['bytes'] / 1024:.1f} KiB)")
    migrated = f", {disk['migrated']} migrated from flat layout" if disk.get("migrated") else ""
    print(f"shards    : {disk['shards']} (hash-prefix sharded{migrated})")
    per_shard = disk.get("per_shard") or {}
    if per_shard:
        print(
            "per shard : "
            + "  ".join(f"{shard}:{count}" for shard, count in per_shard.items())
        )
    archs = disk.get("archs") or {}
    if archs:
        print(
            "per arch  : "
            + "  ".join(f"{name}:{count}" for name, count in archs.items())
        )
    print("cumulative (all runs against this cache dir):")
    for label, key in (
        ("requests", "requests"),
        ("memory hits", "memory_hits"),
        ("disk hits", "disk_hits"),
        ("compiles", "compiles"),
        ("deduped in flight", "deduped"),
        ("quarantined", "quarantined"),
        ("verified on load", "verified_on_load"),
        ("verify rejected", "verify_rejected"),
        ("tuning hits", "tuning_hits"),
    ):
        print(f"  {label:>18s}: {int(persistent.get(key, 0))}")
    qfiles = int(disk.get("quarantine_files", 0))
    if qfiles:
        print(f"  {'in quarantine dir':>18s}: {qfiles}")
    poison = disk.get("poison_keys") or []
    if poison:
        print(f"  {'poisoned keys':>18s}: {len(poison)}")
        for key in poison:
            print(f"  {'':>18s}  {key[:16]}… (circuit breaker open)")
    seconds = float(persistent.get("compile_seconds", 0.0))
    print(f"  {'compile seconds':>18s}: {seconds:.3f}")
    hits = int(persistent.get("memory_hits", 0)) + int(persistent.get("disk_hits", 0))
    print(f"  {'total cache hits':>18s}: {hits}")
    tuning = report.get("tuning")
    if tuning:
        print("tuning records:")
        print(f"  {'stored':>18s}: {int(tuning.get('records', 0))}")
        print(f"  {'lookups (session)':>18s}: {int(tuning.get('lookups', 0))}")
        print(f"  {'hits (session)':>18s}: {int(tuning.get('hits', 0))}")
    return 0


def cmd_cache_clear(args) -> int:
    _validate_cache_dir(args)
    service = _service_from_args(args)
    removed = service.clear()
    records = service.tuning_store.clear()
    if service.store is not None:
        service.store.bump_persistent_stats({})  # reset timestamp
    print(
        f"removed {removed['disk']} cached artifact(s) and "
        f"{records} tuning record(s)"
    )
    return 0


def cmd_cache_warmup(args) -> int:
    _validate_cache_dir(args)
    service = _service_from_args(args)
    started = time.perf_counter()
    rows = service.warmup(workers=args.workers)
    elapsed = time.perf_counter() - started
    for row in rows:
        print(
            f"{row['variant']:>18s}  {row['source']:>8s}  "
            f"{row['seconds'] * 1e3:8.2f} ms  {row['key'][:12]}"
        )
    compiled = sum(1 for r in rows if r["source"] == "compiled")
    print(
        f"warmed {len(rows)} kernel(s) in {elapsed * 1e3:.1f} ms "
        f"({compiled} compiled, {len(rows) - compiled} already cached)"
    )
    return 0


# ---------------------------------------------------------------------------
# The serving daemon
# ---------------------------------------------------------------------------


def cmd_serve(args) -> int:
    """Run the multi-tenant compilation daemon until drained."""
    import asyncio
    import signal

    from repro.serve import (
        KernelServer,
        OverloadConfig,
        QuotaConfig,
        ServeConfig,
    )
    from repro.service import CompileService, ServiceConfig, default_cache_dir

    _validate_cache_dir(args)
    if getattr(args, "no_cache", False):
        service_config = ServiceConfig(enabled=False, workers=args.workers)
    else:
        cache_dir = (
            Path(args.cache_dir)
            if getattr(args, "cache_dir", None)
            else default_cache_dir()
        )
        service_config = ServiceConfig(
            cache_dir=cache_dir,
            workers=args.workers,
            memory_capacity=args.memory_capacity,
            admission_threshold=args.admission_threshold,
        )
    service = CompileService(service_config)
    quota = (
        None
        if args.no_quotas
        else QuotaConfig(
            capacity=args.quota_capacity, refill_per_s=args.quota_refill
        )
    )
    overload = OverloadConfig(
        max_queue_depth=args.max_queue_depth,
        deadline_default_ms=args.deadline_default_ms,
        brownout_enter_ms=args.brownout_enter_ms,
        brownout_exit_ms=args.brownout_exit_ms,
        brownout_dwell_s=args.brownout_dwell,
    )
    server = KernelServer(
        service,
        ServeConfig(
            socket_path=args.socket,
            host=args.host,
            port=args.port,
            workers=args.workers,
            quota=quota,
            max_requests=args.max_requests,
            isolation=args.isolation,
            journal_dir=args.journal_dir,
            poison_threshold=args.poison_threshold,
            worker_deadline_s=args.worker_deadline,
            memory_budget_mb=args.memory_budget_mb,
            overload=overload if overload.enabled else None,
        ),
    )

    async def _serve() -> None:
        address = await server.start()
        shown = address if isinstance(address, str) else f"{address[0]}:{address[1]}"
        quotas = (
            "off" if quota is None
            else f"{quota.capacity:g} tokens @ {quota.refill_per_s:g}/s per tenant"
        )
        journal = "off" if args.journal_dir is None else args.journal_dir
        guard = (
            "off"
            if not overload.enabled
            else ", ".join(
                part
                for part, on in (
                    (f"depth={args.max_queue_depth}",
                     args.max_queue_depth is not None),
                    (f"deadline={args.deadline_default_ms:g}ms"
                     if args.deadline_default_ms is not None else "",
                     args.deadline_default_ms is not None),
                    (f"brownout@{args.brownout_enter_ms:g}ms"
                     if args.brownout_enter_ms is not None else "",
                     args.brownout_enter_ms is not None),
                )
                if on
            )
        )
        print(
            f"swgemm serve: listening on {shown} "
            f"(workers={args.workers}, quotas={quotas}, "
            f"isolation={args.isolation}, journal={journal}, "
            f"overload={guard})"
        )
        replay = server._replay_remaining
        if replay:
            print(
                f"swgemm serve: replaying {replay} journaled request(s) "
                "from the previous run"
            )
        sys.stdout.flush()
        if args.ready_file:
            # Machine-readable rendezvous for scripts that let the OS
            # pick the port: written only once the listener is live.
            Path(args.ready_file).write_text(
                json.dumps(
                    {
                        "socket": address if isinstance(address, str) else None,
                        "host": None if isinstance(address, str) else address[0],
                        "port": None if isinstance(address, str) else address[1],
                        "pid": os.getpid(),
                    }
                )
            )
        loop = asyncio.get_running_loop()
        if args.warmup:
            loop.run_in_executor(None, service.warmup)
        for signum in (signal.SIGINT, signal.SIGTERM):
            try:
                loop.add_signal_handler(
                    signum,
                    lambda: loop.create_task(server.stop(drain=True)),
                )
            except (NotImplementedError, RuntimeError):
                pass  # non-main thread / platforms without signal support
        await server.serve_until_stopped()

    asyncio.run(_serve())
    counters = server.counters
    recovery = ""
    if args.journal_dir is not None or args.isolation == "process":
        iso = server.isolation.stats() if server.isolation else {}
        recovery = (
            f", {counters['replayed']} replayed, "
            f"{iso.get('restarts', 0)} worker restart(s), "
            f"{len((iso.get('poison') or {}).get('quarantined', []))} "
            "quarantined key(s)"
        )
    print(
        f"swgemm serve: drained and stopped after {counters['requests']} "
        f"request(s) ({counters['quota_rejected']} quota-rejected, "
        f"{counters['errors']} failed{recovery})"
    )
    if args.socket:
        Path(args.socket).unlink(missing_ok=True)
    return 0


# ---------------------------------------------------------------------------
# Entry point
# ---------------------------------------------------------------------------


def build_parser() -> argparse.ArgumentParser:
    from repro import __version__

    parser = argparse.ArgumentParser(
        prog="swgemm",
        description="Automatic GEMM kernel generation for SW26010Pro "
        "(ICPP'22 reproduction on a simulated core group)",
    )
    parser.add_argument(
        "--version", action="version", version=f"%(prog)s {__version__}"
    )
    _add_shared_flags(parser)
    shared = argparse.ArgumentParser(add_help=False)
    _add_shared_flags(shared, suppress=True)
    sub = parser.add_subparsers(dest="command", required=True)

    def add_common(p, with_source=True):
        if with_source:
            p.add_argument("source", nargs="?", help="C input file (- for stdin; "
                           "omit for the canonical naive GEMM)")
        p.add_argument("--batch", action="store_true", help="batched GEMM input")
        p.add_argument("--no-use-asm", action="store_true",
                       help="bypass the inline assembly kernel")
        p.add_argument("--no-rma", action="store_true",
                       help="disable RMA broadcasts")
        p.add_argument("--no-hiding", action="store_true",
                       help="disable memory latency hiding (deprecated: "
                       "use --schedule=off)")
        p.add_argument(
            "--schedule", choices=("recipe", "optimize", "off"),
            default=None, metavar="MODE",
            help="schedule policy: 'recipe' keeps the fixed §6 pipeline "
            "(default), 'optimize' runs the replay-proven schedule rewrite "
            "stack on top of it, 'off' disables latency hiding entirely",
        )
        p.add_argument(
            "--schedule-passes", metavar="LIST", default=None,
            help="comma-separated allow-list of schedule rewrites for "
            "--schedule=optimize (e.g. 'reorder-issues,split-waits'; "
            "default: all, in canonical order)",
        )
        p.add_argument("--no-verify", action="store_true",
                       help="skip the admission verifier (escape hatch; "
                       "generated code is bit-exact either way)")

    def add_introspection(p, with_snapshots=True):
        p.add_argument(
            "--disable-pass", action="append", metavar="PASS",
            help="disable a pipeline pass (repeatable; e.g. latency-hiding, "
            "rma-derivation) — rebuilds the matching ablation pipeline",
        )
        if with_snapshots:
            p.add_argument(
                "--print-after", action="append", metavar="PASS",
                help="print the IR snapshot after the named pass "
                "(repeatable; 'all' prints every pass; bypasses the cache)",
            )
            p.add_argument(
                "--dump-ir", metavar="DIR",
                help="write one numbered IR snapshot file per pass to DIR "
                "(bypasses the cache)",
            )

    p_compile = sub.add_parser(
        "compile", help="generate athread C files", parents=[shared]
    )
    add_common(p_compile)
    add_introspection(p_compile)
    p_compile.add_argument("-o", "--output", default="swgemm_out")
    p_compile.add_argument(
        "--explain-verify", action="store_true",
        help="print the admission verifier's per-check report",
    )
    p_compile.set_defaults(func=cmd_compile)

    p_verify = sub.add_parser(
        "verify", help="run the kernel admission verifier and report",
        parents=[shared],
    )
    add_common(p_verify)
    p_verify.add_argument("--json", action="store_true",
                          help="machine-readable report")
    p_verify.set_defaults(func=cmd_verify)

    p_tree = sub.add_parser(
        "tree", help="dump the final schedule tree", parents=[shared]
    )
    add_common(p_tree)
    add_introspection(p_tree)
    p_tree.set_defaults(func=cmd_tree)

    p_passes = sub.add_parser(
        "passes", help="inspect the compiler's pass pipeline"
    )
    passes_sub = p_passes.add_subparsers(dest="passes_command", required=True)
    p_passes_list = passes_sub.add_parser(
        "list", help="show the variant-aware pass pipeline and its identity",
        parents=[shared],
    )
    add_common(p_passes_list)
    add_introspection(p_passes_list, with_snapshots=False)
    p_passes_list.set_defaults(func=cmd_passes_list)

    p_run = sub.add_parser(
        "run", help="execute functionally on the simulator", parents=[shared]
    )
    add_common(p_run)
    for dim, default in (("M", 512), ("N", 512), ("K", 256)):
        p_run.add_argument(f"-{dim}", type=int, default=default)
    p_run.add_argument("--alpha", type=float, default=1.0)
    p_run.add_argument("--seed", type=int, default=0)
    p_run.add_argument(
        "--guarded", action="store_true",
        help="cross-check every DMA/RMA/SPM event against the admission "
        "certificate (fails loudly on divergence)",
    )
    p_run.set_defaults(func=cmd_run)

    p_perf = sub.add_parser(
        "perf", help="timed simulation vs xMath", parents=[shared]
    )
    for dim, default in (("M", 4096), ("N", 4096), ("K", 4096)):
        p_perf.add_argument(f"-{dim}", type=int, default=default)
    p_perf.set_defaults(func=cmd_perf)

    p_tune = sub.add_parser(
        "tune",
        help="model-guided search of the tile/pipeline space for a shape",
        parents=[shared],
    )
    add_common(p_tune)
    for dim, default in (("M", 1024), ("N", 1024), ("K", 1024)):
        p_tune.add_argument(f"-{dim}", type=int, default=default)
    p_tune.add_argument(
        "--batch-count", type=int, default=1, metavar="B",
        help="tune for a batched problem of B matrices (default: 1)",
    )
    p_tune.add_argument(
        "--seed", type=int, default=0,
        help="search seed; the whole search is a pure function of it "
        "(default: 0)",
    )
    p_tune.add_argument(
        "--budget", type=int, default=20, metavar="N",
        help="maximum simulator measurements (default: 20)",
    )
    p_tune.add_argument(
        "--show", action="store_true",
        help="list the stored tuning records instead of searching",
    )
    p_tune.add_argument("--json", action="store_true",
                        help="machine-readable result")
    p_tune.set_defaults(func=cmd_tune)

    p_serve = sub.add_parser(
        "serve",
        help="run the multi-tenant async compilation daemon",
        parents=[shared],
    )
    p_serve.add_argument(
        "--socket", metavar="PATH",
        help="listen on a unix socket instead of TCP",
    )
    p_serve.add_argument(
        "--host", default="127.0.0.1",
        help="TCP bind address (default: 127.0.0.1)",
    )
    p_serve.add_argument(
        "--port", type=int, default=0,
        help="TCP port; 0 lets the OS pick one (default: 0)",
    )
    p_serve.add_argument(
        "--workers", type=int, default=4,
        help="blocking compiler worker threads (default: 4)",
    )
    p_serve.add_argument(
        "--quota-capacity", type=float, default=60.0, metavar="TOKENS",
        help="per-tenant token-bucket capacity (default: 60)",
    )
    p_serve.add_argument(
        "--quota-refill", type=float, default=30.0, metavar="TOKENS/S",
        help="per-tenant token refill rate (default: 30/s)",
    )
    p_serve.add_argument(
        "--no-quotas", action="store_true",
        help="disable per-tenant quotas entirely",
    )
    p_serve.add_argument(
        "--memory-capacity", type=int, default=64, metavar="N",
        help="hot-tier LRU capacity in kernels (default: 64)",
    )
    p_serve.add_argument(
        "--admission-threshold", type=int, default=2, metavar="N",
        help="accesses before a key is admitted to a full hot tier "
        "(default: 2; 1 = always admit)",
    )
    p_serve.add_argument(
        "--max-requests", type=int, default=None, metavar="N",
        help="drain and exit after N requests (default: run until signalled)",
    )
    p_serve.add_argument(
        "--ready-file", metavar="PATH",
        help="write the bound address as JSON once listening",
    )
    p_serve.add_argument(
        "--warmup", action="store_true",
        help="precompile the standard kernels on boot (at warmup priority)",
    )
    p_serve.add_argument(
        "--isolation", choices=("thread", "process"), default="thread",
        help="where compile jobs run: in-process threads, or recyclable "
        "worker subprocesses with deadlines and poison-key quarantine "
        "(default: thread)",
    )
    p_serve.add_argument(
        "--journal-dir", metavar="DIR",
        help="write-ahead journal directory; accepted requests are "
        "replayed after a crash (default: journaling off)",
    )
    p_serve.add_argument(
        "--poison-threshold", type=int, default=3, metavar="N",
        help="worker crashes/timeouts before a kernel key is "
        "quarantined (default: 3)",
    )
    p_serve.add_argument(
        "--worker-deadline", type=float, default=30.0, metavar="SECONDS",
        help="wall-clock deadline of one isolated compile job; a hung "
        "worker is killed and replaced (default: 30)",
    )
    p_serve.add_argument(
        "--memory-budget-mb", type=float, default=None, metavar="MIB",
        help="peak-RSS budget of one isolated compile job; an "
        "over-budget worker is recycled (default: unlimited)",
    )
    p_serve.add_argument(
        "--max-queue-depth", type=int, default=None, metavar="N",
        help="bound the request queue: interactive arrivals are admitted "
        "up to N queued requests, batch up to 2N/3, warmup up to N/3; "
        "over-watermark arrivals shed lower-priority queued work or are "
        "rejected with a retry-after hint (default: unbounded)",
    )
    p_serve.add_argument(
        "--deadline-default-ms", type=float, default=None, metavar="MS",
        help="end-to-end budget stamped on requests that carry no "
        "deadline of their own; requests whose budget expires while "
        "queued are shed before reaching a worker (default: none)",
    )
    p_serve.add_argument(
        "--brownout-enter-ms", type=float, default=None, metavar="MS",
        help="EWMA queue-wait threshold that enters brownout: compile "
        "misses fast-fail, cache hits and read-only ops keep flowing "
        "(default: brownout off)",
    )
    p_serve.add_argument(
        "--brownout-exit-ms", type=float, default=None, metavar="MS",
        help="EWMA queue-wait threshold that exits brownout; must be "
        "below --brownout-enter-ms (default: half of it)",
    )
    p_serve.add_argument(
        "--brownout-dwell", type=float, default=2.0, metavar="SECONDS",
        help="minimum seconds spent in brownout before an exit is "
        "allowed — the anti-flap leg of the hysteresis (default: 2)",
    )
    p_serve.set_defaults(func=cmd_serve)

    p_cache = sub.add_parser(
        "cache", help="inspect and manage the kernel compilation cache"
    )
    cache_sub = p_cache.add_subparsers(dest="cache_command", required=True)

    p_stats = cache_sub.add_parser(
        "stats", help="two-tier cache report", parents=[shared]
    )
    p_stats.add_argument("--json", action="store_true",
                         help="machine-readable report")
    p_stats.set_defaults(func=cmd_cache_stats)

    p_clear = cache_sub.add_parser(
        "clear", help="remove all cached artifacts", parents=[shared]
    )
    p_clear.set_defaults(func=cmd_cache_clear)

    p_warmup = cache_sub.add_parser(
        "warmup", help="precompile the standard kernel variants",
        parents=[shared],
    )
    p_warmup.add_argument("--workers", type=int, default=None,
                          help="worker threads for independent keys")
    p_warmup.set_defaults(func=cmd_cache_warmup)

    return parser


def main(argv=None) -> int:
    from repro.errors import SwGemmError

    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except SwGemmError as exc:
        if args.debug:
            raise
        print(f"swgemm: error: {exc}", file=sys.stderr)
        return 1
    except FileNotFoundError as exc:
        if args.debug:
            raise
        print(f"swgemm: error: {exc}", file=sys.stderr)
        return 1
    except KeyboardInterrupt:
        return 130
    except BrokenPipeError:
        # Stdout consumer exited early (`swgemm ... | head`).  Detach
        # stdout so the interpreter's exit-time flush does not raise a
        # second time, and report the conventional 128+SIGPIPE status.
        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        return 141
    except OSError as exc:
        # Unreadable cache directories, permission problems and the like
        # are operator errors, not crashes: message + nonzero exit.
        if args.debug:
            raise
        print(f"swgemm: error: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
