"""Command-line interface.

Mirrors the surface described in §8::

    swgemm compile gemm.c -o outdir            # athread C files
    swgemm compile gemm.c --no-use-asm         # bypass the asm kernel
    swgemm compile gemm.c --batch              # batched GEMM
    swgemm run gemm.c -M 1024 -N 1024 -K 1024  # simulate functionally
    swgemm perf -M 4096 -N 4096 -K 4096        # timed simulation vs xMath
    swgemm tree gemm.c                         # dump the schedule tree
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

import numpy as np

DEFAULT_GEMM_C = """\
void gemm(int M, int N, int K, double alpha,
          double A[M][K], double B[K][N], double C[M][N]) {
  for (int i = 0; i < M; i++)
    for (int j = 0; j < N; j++)
      for (int k = 0; k < K; k++)
        C[i][j] = C[i][j] + alpha * A[i][k] * B[k][j];
}
"""


def _load_source(path: str) -> str:
    if path == "-":
        return sys.stdin.read()
    return Path(path).read_text()


def _build_program(args) -> "CompiledProgram":
    from repro.core.options import CompilerOptions
    from repro.frontend import compile_c

    source = _load_source(args.source) if args.source else DEFAULT_GEMM_C
    options = None
    if args.no_use_asm or args.no_rma or args.no_hiding:
        options = CompilerOptions(
            batch=args.batch,
            use_asm=not args.no_use_asm,
            enable_rma=not args.no_rma,
            enable_latency_hiding=not (args.no_hiding or args.no_use_asm),
        )
    return compile_c(source, options=options)


def cmd_compile(args) -> int:
    program = _build_program(args)
    outdir = Path(args.output)
    outdir.mkdir(parents=True, exist_ok=True)
    (outdir / "gemm_cpe.c").write_text(program.cpe_source())
    (outdir / "gemm_mpe.c").write_text(program.mpe_source())
    print(f"wrote {outdir}/gemm_cpe.c and {outdir}/gemm_mpe.c")
    print(f"code generation took {program.codegen_seconds * 1e3:.2f} ms")
    print(f"SPM plan: {program.plan.describe()}")
    return 0


def cmd_tree(args) -> int:
    program = _build_program(args)
    print(program.tree_dump())
    return 0


def cmd_run(args) -> int:
    from repro.runtime.executor import run_gemm

    program = _build_program(args)
    rng = np.random.default_rng(args.seed)
    A = rng.standard_normal((args.M, args.K))
    B = rng.standard_normal((args.K, args.N))
    C = np.zeros((args.M, args.N))
    C, report = run_gemm(program, A, B, C, alpha=args.alpha, beta=0.0)
    reference = args.alpha * (A @ B)
    error = float(np.abs(C - reference).max())
    print(f"max |C - reference| = {error:.3e}")
    print(
        f"simulated time {report.elapsed_seconds * 1e3:.3f} ms "
        f"({report.gflops:.1f} Gflops of useful work)"
    )
    return 0 if error < 1e-8 else 1


def cmd_perf(args) -> int:
    from repro.runtime.simulator import PerformanceSimulator
    from repro.xmath.perfmodel import xmath_gflops

    sim = PerformanceSimulator()
    for variant, perf in sim.breakdown(args.M, args.N, args.K).items():
        print(f"{variant:>9s}: {perf.gflops:8.1f} Gflops "
              f"({100 * perf.peak_fraction:5.1f}% of peak)")
    lib = xmath_gflops(args.M, args.N, args.K, sim.arch)
    print(f"{'xMath':>9s}: {lib:8.1f} Gflops "
          f"({100 * lib / sim.arch.peak_gflops:5.1f}% of peak)")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="swgemm",
        description="Automatic GEMM kernel generation for SW26010Pro "
        "(ICPP'22 reproduction on a simulated core group)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def add_common(p, with_source=True):
        if with_source:
            p.add_argument("source", nargs="?", help="C input file (- for stdin; "
                           "omit for the canonical naive GEMM)")
        p.add_argument("--batch", action="store_true", help="batched GEMM input")
        p.add_argument("--no-use-asm", action="store_true",
                       help="bypass the inline assembly kernel")
        p.add_argument("--no-rma", action="store_true",
                       help="disable RMA broadcasts")
        p.add_argument("--no-hiding", action="store_true",
                       help="disable memory latency hiding")

    p_compile = sub.add_parser("compile", help="generate athread C files")
    add_common(p_compile)
    p_compile.add_argument("-o", "--output", default="swgemm_out")
    p_compile.set_defaults(func=cmd_compile)

    p_tree = sub.add_parser("tree", help="dump the final schedule tree")
    add_common(p_tree)
    p_tree.set_defaults(func=cmd_tree)

    p_run = sub.add_parser("run", help="execute functionally on the simulator")
    add_common(p_run)
    for dim, default in (("M", 512), ("N", 512), ("K", 256)):
        p_run.add_argument(f"-{dim}", type=int, default=default)
    p_run.add_argument("--alpha", type=float, default=1.0)
    p_run.add_argument("--seed", type=int, default=0)
    p_run.set_defaults(func=cmd_run)

    p_perf = sub.add_parser("perf", help="timed simulation vs xMath")
    for dim, default in (("M", 4096), ("N", 4096), ("K", 4096)):
        p_perf.add_argument(f"-{dim}", type=int, default=default)
    p_perf.set_defaults(func=cmd_perf)

    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
