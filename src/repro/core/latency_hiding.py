"""Communication insertion and memory latency hiding (§§4-6).

This pass turns the decomposed band skeleton into the paper's final
schedule tree by inserting extension nodes, sequences and (for the
pipelined variants) the peeling filters of Fig. 11:

* **no hiding** (Fig. 9): every communication statement is scheduled
  together with its wait (the ⊗ grouping) — ``getC``/``get_replyC``
  before the k loops, ``getA``/``getB`` per outer k iteration,
  ``synch``/broadcast/wait per inner k iteration, ``putC`` at the end;

* **two-level hiding** (Figs. 10-11): the ⊕-separable groups are split by
  loop peeling.  The first DMA/RMA issue is peeled in front of its loop,
  each iteration waits for the *current* transfer and issues the *next*
  one (guarded by ``x < bound − 1``), and double buffering gives every
  buffer and reply counter a parity selector.  DMA prefetch for iteration
  ``x+1`` then overlaps the whole inner pipeline of iteration ``x``
  (level 1), and the broadcasts of slice ``l+1`` overlap micro-kernel
  ``l`` (level 2).

The inserted :class:`ExtensionStmt` objects carry structured payloads
(:class:`~repro.core.dma.DmaSpec` / :class:`~repro.core.rma.RmaSpec`,
already rewritten for issue-ahead) that the lowering delegate turns into
``CommStmt`` AST nodes.

Reply-counter resets are always scheduled *before* the ``synch()`` that
precedes an RMA launch group, so no CPE can zero a counter that another
CPE has already bumped — the simulator's coroutine scheduler would turn
such a race into a deadlock, and the test-suite checks it stays absent.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.errors import CompilationError
from repro.core.decomposition import Decomposition
from repro.core.dma import DmaSpec
from repro.core.rma import RmaSpec
from repro.poly.affine import AffExpr, aff_const, aff_var
from repro.poly.imap import AffineMap
from repro.poly.iset import Constraint, le
from repro.poly.schedule_tree import (
    BandNode,
    ExtensionNode,
    ExtensionStmt,
    FilterNode,
    ScheduleNode,
    SequenceNode,
)
from repro.poly.space import Space


def _ext(name: str, role: str, relation: Optional[AffineMap] = None, **payload) -> ExtensionStmt:
    return ExtensionStmt(name, role, relation, dict(payload))


def _dma_relation(spec: DmaSpec, domain_dims: Sequence[str]) -> AffineMap:
    """The Fig. 2e-style affine relation attached for documentation: outer
    schedule dims -> promoted footprint start."""
    domain = Space("sched", tuple(domain_dims))
    target = Space(f"read{spec.array}" if spec.direction == "get" else f"write{spec.array}", ("r", "c"))
    return AffineMap(domain, [spec.row_expr, spec.col_expr], target)


class CommunicationBuilder:
    """Builds the final schedule tree for one decomposition."""

    def __init__(
        self,
        dec: Decomposition,
        dma_specs: Dict[str, DmaSpec],
        rma_specs: Optional[Dict[str, RmaSpec]],
    ) -> None:
        self.dec = dec
        self.plan = dec.plan
        self.dma_specs = dma_specs
        self.rma_specs = rma_specs or {}
        self.hide = dec.plan.double_buffered
        self.stmt = dec.spec.stmt_name
        if self.plan.use_rma and not self.rma_specs:
            raise CompilationError("RMA plan without RMA specs")

    # -- public ------------------------------------------------------------

    def build(self) -> None:
        """Mutate the decomposition's tree in place."""
        if self.plan.use_rma:
            self._wrap_inner_rma()
        self._wrap_k_dma()
        self._wrap_chunk_c()

    # -- level 0: C tile around the whole k loop ---------------------------------

    def _wrap_chunk_c(self) -> None:
        dec = self.dec
        mesh_band = dec.bands["mesh"]
        k_top = dec.bands["kouter" if self.plan.use_rma else "ktile"]
        getC = self.dma_specs["getC"]
        putC = self.dma_specs["putC"]
        dims = ["Rid", "Cid"]
        pre: List[ExtensionStmt] = [
            _ext("getC", "dma_issue", _dma_relation(getC, dims), spec=getC),
            _ext("get_replyC", "dma_wait", None, reply=getC.reply,
                 reply_slot_expr=getC.reply_slot_expr),
        ]
        scale = [
            _ext("scaleC", "scale_c", None, buffer="local_C",
                 shape=(self.plan.mt, self.plan.nt)),
        ]
        post_groups: List[List[ExtensionStmt]] = []
        if dec.spec.epilogue_func:
            post_groups.append([
                _ext("epilogueC", "epilogue", None, buffer="local_C",
                     slot_expr=aff_const(0),
                     shape=(self.plan.mt, self.plan.nt),
                     func=dec.spec.epilogue_func),
            ])
        post_groups.append([
            _ext("putC", "dma_issue", _dma_relation(putC, dims), spec=putC),
            _ext("put_replyC", "dma_wait", None, reply=putC.reply,
                 reply_slot_expr=putC.reply_slot_expr),
        ])
        # Wrap whatever now tops the k loop nest (after the DMA pass ran,
        # that is its extension node rather than the bare band).
        del k_top
        subtree = mesh_band.child
        all_stmts = pre + scale + [s for g in post_groups for s in g]
        filters = [
            FilterNode([s.name for s in pre]),
            FilterNode([s.name for s in scale]),
            FilterNode([self.stmt], [subtree]),
        ]
        for group in post_groups:
            filters.append(FilterNode([s.name for s in group]))
        ext = ExtensionNode(all_stmts, [SequenceNode(filters)])
        mesh_band.set_child(ext)

    # -- level 1: A/B DMA around the (outer) k loop --------------------------------

    def _wrap_k_dma(self) -> None:
        dec = self.dec
        band = dec.bands["kouter" if self.plan.use_rma else "ktile"]
        iter_var = band.members[0].var
        extent_hi = band.members[0].extent[1]
        getA, getB = self.dma_specs["getA"], self.dma_specs["getB"]
        inner_subtree = band.child

        prologue_stmt: List[ExtensionStmt] = []
        if dec.spec.prologue_func:
            slot = getA.slot_expr
            prologue_stmt.append(
                _ext("prologueA", "prologue", None, buffer=getA.buffer,
                     slot_expr=slot, shape=(getA.rows, getA.cols),
                     func=dec.spec.prologue_func)
            )

        if not self.hide:
            # Fig. 9: issue ⊗ wait per iteration, single buffer slot.
            # Both input movements are issued before either is waited on:
            # the A and B transfers take place simultaneously (§6.1).
            groups: List[List[ExtensionStmt]] = [[
                _ext("getA", "dma_issue", _dma_relation(getA, [iter_var]), spec=getA),
                _ext("getB", "dma_issue", _dma_relation(getB, [iter_var]), spec=getB),
                _ext("get_replyA", "dma_wait", None, reply=getA.reply,
                     reply_slot_expr=getA.reply_slot_expr),
                _ext("get_replyB", "dma_wait", None, reply=getB.reply,
                     reply_slot_expr=getB.reply_slot_expr),
            ]]
            if prologue_stmt:
                groups.append(prologue_stmt)
            filters = [FilterNode([s.name for s in g]) for g in groups]
            filters.append(FilterNode([self.stmt], [inner_subtree]))
            ext = ExtensionNode(
                [s for g in groups for s in g], [SequenceNode(filters)]
            )
            band.set_child(ext)
            return

        # Fig. 11: peel the first issue in front of the loop; inside the
        # loop wait for the current slot, then issue the next iteration's
        # prefetch guarded by  iter <= bound - 2.
        first = {iter_var: aff_const(0)}
        ahead = {iter_var: aff_var(iter_var) + 1}
        getA_first, getB_first = getA.substituted(first), getB.substituted(first)
        getA_next, getB_next = getA.substituted(ahead), getB.substituted(ahead)
        guard: Constraint = le(aff_var(iter_var), extent_hi - 2)

        issue_first = [
            _ext("getA_0", "dma_issue", _dma_relation(getA_first, []), spec=getA_first),
            _ext("getB_0", "dma_issue", _dma_relation(getB_first, []), spec=getB_first),
        ]
        wait_cur = [
            _ext("get_replyA", "dma_wait", None, reply=getA.reply,
                 reply_slot_expr=getA.reply_slot_expr),
            _ext("get_replyB", "dma_wait", None, reply=getB.reply,
                 reply_slot_expr=getB.reply_slot_expr),
        ]
        issue_next = [
            _ext("getA_x1", "dma_issue", _dma_relation(getA_next, [iter_var]),
                 spec=getA_next),
            _ext("getB_x1", "dma_issue", _dma_relation(getB_next, [iter_var]),
                 spec=getB_next),
        ]
        loop_filters: List[FilterNode] = [FilterNode([s.name for s in wait_cur])]
        loop_filters.append(
            FilterNode([s.name for s in issue_next], constraints=[guard],
                       label="outer k dimension")
        )
        if prologue_stmt:
            # The quantisation of the freshly waited A slice runs after the
            # next prefetch is in flight — §8.4 notes the prologue makes the
            # pipelined stages heavier, but it need not delay the issue.
            loop_filters.append(FilterNode([s.name for s in prologue_stmt]))
        loop_filters.append(FilterNode([self.stmt], [inner_subtree]))
        loop_ext = ExtensionNode(
            wait_cur + prologue_stmt + issue_next, [SequenceNode(loop_filters)]
        )
        band.set_child(loop_ext)
        top_filters = [
            FilterNode([s.name for s in issue_first]),
            FilterNode([self.stmt], [band]),
        ]
        top_ext = ExtensionNode(issue_first, [SequenceNode(top_filters)])
        # Splice: the parent of `band` must now point at top_ext.
        self._replace_in_parent(band, top_ext)

    # -- level 2: RMA around the inner k loop ------------------------------------

    def _wrap_inner_rma(self) -> None:
        dec = self.dec
        band = dec.bands["kmid"]
        iter_var = band.members[0].var  # "km"
        mesh = self.plan.mesh
        rbA = self.rma_specs["rbcastA"]
        cbB = self.rma_specs["cbcastB"]
        point_subtree = band.child

        if not self.hide:
            group = [
                _ext("rma_reset", "rma_reset", None, specs=[rbA, cbB]),
                _ext("synch", "synch", None),
                _ext("rbcastA", "rma_issue", None, spec=rbA,
                     target_expr=aff_var(iter_var)),
                _ext("cbcastB", "rma_issue", None, spec=cbB,
                     target_expr=aff_var(iter_var)),
                _ext("rbcast_replyA", "rma_wait", None, spec=rbA,
                     target_expr=aff_var(iter_var)),
                _ext("cbcast_replyB", "rma_wait", None, spec=cbB,
                     target_expr=aff_var(iter_var)),
            ]
            filters = [
                FilterNode([s.name for s in group]),
                FilterNode([self.stmt], [point_subtree]),
            ]
            band.set_child(ExtensionNode(group, [SequenceNode(filters)]))
            return

        first = {iter_var: aff_const(0)}
        ahead = {iter_var: aff_var(iter_var) + 1}
        rbA_first, cbB_first = rbA.substituted(first), cbB.substituted(first)
        rbA_next, cbB_next = rbA.substituted(ahead), cbB.substituted(ahead)
        guard = le(aff_var(iter_var), aff_const(mesh - 2))

        issue_first = [
            _ext("rma_reset_0", "rma_reset", None, specs=[rbA_first, cbB_first]),
            _ext("synch_0", "synch", None),
            _ext("rbcastA_0", "rma_issue", None, spec=rbA_first,
                 target_expr=aff_const(0)),
            _ext("cbcastB_0", "rma_issue", None, spec=cbB_first,
                 target_expr=aff_const(0)),
        ]
        wait_cur = [
            _ext("rbcast_replyA", "rma_wait", None, spec=rbA,
                 target_expr=aff_var(iter_var)),
            _ext("cbcast_replyB", "rma_wait", None, spec=cbB,
                 target_expr=aff_var(iter_var)),
        ]
        issue_next = [
            _ext("rma_reset_l1", "rma_reset", None, specs=[rbA_next, cbB_next]),
            _ext("synch_l", "synch", None),
            _ext("rbcastA_l1", "rma_issue", None, spec=rbA_next,
                 target_expr=aff_var(iter_var) + 1),
            _ext("cbcastB_l1", "rma_issue", None, spec=cbB_next,
                 target_expr=aff_var(iter_var) + 1),
        ]
        loop_filters = [
            FilterNode([s.name for s in wait_cur]),
            FilterNode([s.name for s in issue_next], constraints=[guard],
                       label="inner k dimension"),
            FilterNode([self.stmt], [point_subtree]),
        ]
        loop_ext = ExtensionNode(wait_cur + issue_next, [SequenceNode(loop_filters)])
        band.set_child(loop_ext)
        top_filters = [
            FilterNode([s.name for s in issue_first]),
            FilterNode([self.stmt], [band]),
        ]
        top_ext = ExtensionNode(issue_first, [SequenceNode(top_filters)])
        self._replace_in_parent(band, top_ext)

    # -- tree surgery helper ------------------------------------------------------

    def _replace_in_parent(self, node: ScheduleNode, new: ScheduleNode) -> None:
        for candidate in self.dec.root.walk():
            if candidate is new:
                continue
            for i, child in enumerate(candidate.children):
                if child is node:
                    candidate.children[i] = new
                    return
        raise CompilationError("could not locate the node to replace in the tree")


def insert_communication(
    dec: Decomposition,
    dma_specs: Dict[str, DmaSpec],
    rma_specs: Optional[Dict[str, RmaSpec]] = None,
) -> None:
    """Run the pass (mutates ``dec.root``)."""
    CommunicationBuilder(dec, dma_specs, rma_specs).build()
