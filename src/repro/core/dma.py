"""Automating DMA communication (§4).

Derives, for each matrix, the complete argument list of the
``dma_iget``/``dma_iput`` interfaces::

    dma_iget(&local_M[0][0], &M[r][c], X_τ·Y_τ, Y_τ, Y − Y_τ, &reply)

from the polyhedral objects of the decomposition:

* the **footprint box** of the access relation over one CPE's statement
  instances (point loops ranging, outer loop variables symbolic) yields
  the tile extents ``X_τ × Y_τ``, hence ``size`` and ``len``;
* the footprint's **lower-bound expressions** — the access map composed
  with the reconstruction map at point-loop origin — yield the start
  coordinates ``(r, c)`` of Eq. (1) as quasi-affine expressions over
  ``ic, jc, Rid, Cid, ko, …``;
* ``strip`` is the leading dimension minus ``len`` (Fig. 7), symbolic in
  the matrix's column parameter.

The RMA work distribution (§5) enters through one substitution: the slice
loop variable ``km`` is fixed to the *owning* mesh coordinate (``Cid`` for
A, ``Rid`` for B) because each CPE fetches exactly the slice it will later
broadcast.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, List, Mapping, Optional, Tuple

from repro.errors import CompilationError
from repro.core.decomposition import Decomposition
from repro.poly.affine import AffExpr, aff_const, aff_var
from repro.poly.imap import AffineMap


@dataclass(frozen=True)
class DmaSpec:
    """Everything needed to emit/execute one DMA message."""

    array: str  # main-memory array name (A/B/C)
    direction: str  # "get" | "put"
    #: start coordinates in the (row, col) plane of the matrix
    row_expr: AffExpr
    col_expr: AffExpr
    #: batched arrays carry a leading batch coordinate
    batch_expr: Optional[AffExpr]
    rows: int  # X_τ
    cols: int  # Y_τ == len
    #: parameter name of the matrix's column count (strip = ld − cols)
    ld_param: str
    #: SPM destination/source buffer and slot selector
    buffer: str
    slot_expr: AffExpr
    #: reply counter base name and slot selector (counters are arrays when
    #: double buffering is on)
    reply: str
    reply_slot_expr: AffExpr

    @property
    def size(self) -> int:
        return self.rows * self.cols

    def substituted(self, bindings: Mapping[str, AffExpr]) -> "DmaSpec":
        """Issue-ahead rewriting: e.g. ``ko -> ko + 1`` for the software
        pipeline's next-iteration prefetch (§6.1)."""
        return replace(
            self,
            row_expr=self.row_expr.substitute(bindings),
            col_expr=self.col_expr.substitute(bindings),
            batch_expr=(
                self.batch_expr.substitute(bindings) if self.batch_expr else None
            ),
            slot_expr=self.slot_expr.substitute(bindings),
            reply_slot_expr=self.reply_slot_expr.substitute(bindings),
        )


def _point_origin(dec: Decomposition) -> Dict[str, AffExpr]:
    return {var: aff_const(0) for var in ("ip", "jp", "kp")}


def _footprint(
    dec: Decomposition,
    access: AffineMap,
    owner_binding: Mapping[str, AffExpr],
) -> Tuple[List[AffExpr], List[int]]:
    """Start expressions and extents of one access's per-CPE footprint."""
    plan = dec.plan
    # Statement dims in terms of loop variables.
    bindings = dict(dec.reconstruction)
    exprs = [e.substitute(bindings) for e in access.exprs]
    # Fix the slice owner (km -> Cid/Rid) where requested.
    exprs = [e.substitute(dict(owner_binding)) for e in exprs]
    # Extents: range of each subscript over the point loops only.
    point_box = {"ip": (0, plan.mt - 1), "jp": (0, plan.nt - 1), "kp": (0, plan.kt - 1)}
    starts: List[AffExpr] = []
    extents: List[int] = []
    for expr in exprs:
        lo = expr.substitute(_point_origin(dec))
        box = {v: (0, 0) for v in expr.variables() if v not in point_box}
        box.update(point_box)
        lo_val, hi_val = expr.interval(box)
        starts.append(lo)
        extents.append(hi_val - lo_val + 1)
    return starts, extents


def _check_contiguous(
    dec: Decomposition, access: AffineMap, innermost_point: str
) -> None:
    """The last subscript must walk its point dimension with stride 1,
    otherwise a two-level DMA loop (not expressible with the single strip
    argument) would be required."""
    last = access.exprs[-1].substitute(dec.reconstruction)
    if last.coefficient(innermost_point) != 1:
        raise CompilationError(
            f"access {access} is not unit-stride in its last subscript; "
            "the dma strip argument cannot describe it"
        )


def derive_dma_specs(dec: Decomposition) -> Dict[str, DmaSpec]:
    """Build the DMA specs for A (get), B (get), C (get) and C (put)."""
    spec = dec.spec
    plan = dec.plan
    parity = plan.double_buffered

    batched = spec.is_batched
    b_expr = aff_var("b") if batched else None

    def slice_owner(owner: str) -> Dict[str, AffExpr]:
        if plan.use_rma:
            return {"km": aff_var(owner)}
        return {}

    accesses = {a.array: a.map for a in spec.accesses() if not a.is_write}
    write_access = next(a.map for a in spec.accesses() if a.is_write)

    def build(
        array: str,
        access: AffineMap,
        direction: str,
        owner: Optional[str],
        ld_param: str,
        buffer: str,
        iter_var: Optional[str],
        reply: str,
    ) -> DmaSpec:
        owner_binding = slice_owner(owner) if owner else {}
        starts, extents = _footprint(dec, access, owner_binding)
        if batched:
            batch_start, row_start, col_start = starts
            _, rows, cols = extents
        else:
            row_start, col_start = starts
            rows, cols = extents
            batch_start = None
        slot = (
            aff_var(iter_var).mod(2)
            if (parity and iter_var is not None)
            else aff_const(0)
        )
        return DmaSpec(
            array=array,
            direction=direction,
            row_expr=row_start,
            col_expr=col_start,
            batch_expr=batch_start if batched else None,
            rows=rows,
            cols=cols,
            ld_param=ld_param,
            buffer=buffer,
            slot_expr=slot,
            reply=reply,
            reply_slot_expr=slot,
        )

    k_iter = "ko" if plan.use_rma else "ktile"
    specs: Dict[str, DmaSpec] = {}
    # The leading dimension is the column extent of each operand's
    # *storage* layout — which the transpose flags change.
    a_ld = spec.a_dims()[1]
    b_ld = spec.b_dims()[1]
    specs["getA"] = build(
        spec.a_name, accesses[spec.a_name], "get", "Cid",
        a_ld, "local_A_dma", k_iter, "get_replyA",
    )
    specs["getB"] = build(
        spec.b_name, accesses[spec.b_name], "get", "Rid",
        b_ld, "local_B_dma", k_iter, "get_replyB",
    )
    # C is reused across the whole k loop: single slot, no parity.
    specs["getC"] = build(
        spec.c_name, accesses[spec.c_name], "get", None,
        spec.n_param, "local_C", None, "get_replyC",
    )
    specs["putC"] = replace(
        build(
            spec.c_name, write_access, "put", None,
            spec.n_param, "local_C", None, "put_replyC",
        ),
        direction="put",
    )

    # Sanity: footprints must match the buffer plan exactly (tiles are
    # stored in the operands' own layouts, so transposes swap them).
    expect = {
        "getA": (plan.kt, plan.mt) if plan.trans_a else (plan.mt, plan.kt),
        "getB": (plan.nt, plan.kt) if plan.trans_b else (plan.kt, plan.nt),
        "getC": (plan.mt, plan.nt),
        "putC": (plan.mt, plan.nt),
    }
    for name, (er, ec) in expect.items():
        s = specs[name]
        if (s.rows, s.cols) != (er, ec):
            raise CompilationError(
                f"{name} footprint {s.rows}x{s.cols} does not match the "
                f"tile plan's {er}x{ec}"
            )
    _check_contiguous(dec, accesses[spec.a_name], "ip" if spec.trans_a else "kp")
    _check_contiguous(dec, accesses[spec.b_name], "kp" if spec.trans_b else "jp")
    _check_contiguous(dec, accesses[spec.c_name], "jp")
    return specs
