"""Compiler options.

Mirrors the command-line surface described in §8: the compiler generates
athread code for one SW26010Pro cluster by default, ``--batch`` enables the
batched-GEMM path (Fig. 3), ``--no-use-asm`` bypasses the inline assembly
kernel and emits plain loop code.  The additional switches
(``enable_rma`` / ``enable_latency_hiding``) expose the intermediate code
variants of the performance breakdown (§8.1) — the paper's orange and
green bars — and the fusion modes of §7.3.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Optional, Tuple

from repro.errors import ConfigurationError
from repro.faults import FaultPolicy, RetryPolicy
from repro.sunway.arch import ArchSpec, MicroKernelShape

FUSION_MODES = ("none", "prologue", "epilogue")

#: SIMD alignment every tile dimension must respect: the vector kernel
#: processes 8-double rows in 4-wide register groups, so tiles that are
#: not multiples of 4 cannot be register-blocked.
TILE_ALIGN = 4


@dataclass(frozen=True)
class TileConfig:
    """First-class tunable tile/pipeline configuration.

    The paper fixes the micro-kernel shape analytically at the arch's
    contract (§3.1 — 64×64×32 on SW26010Pro); the autotuner
    (:mod:`repro.tune`) instead searches this
    space.  A ``TileConfig`` carries the (X̂, Ŷ, Ẑ) tile sizes plus the
    two pipeline knobs that interact with them:

    * ``buffer_depth`` — SPM slots per input buffer.  ``None`` derives
      the depth from ``enable_latency_hiding`` (2 when hiding, else 1);
      an explicit 1 forces single buffering (and disables hiding during
      option reconciliation), an explicit 2 forces double buffering.
    * ``k_strip`` — the k-strip-mine factor.  ``None`` derives it from
      the RMA mode (mesh size with RMA, 1 without, §5.2); an explicit
      value must match that derivation or the plan is rejected — the
      field exists so search-space points are self-describing.
    """

    mt: int
    nt: int
    kt: int
    buffer_depth: Optional[int] = None
    k_strip: Optional[int] = None

    def __post_init__(self) -> None:
        for name, value in (("mt", self.mt), ("nt", self.nt), ("kt", self.kt)):
            if value <= 0 or value % TILE_ALIGN != 0:
                raise ConfigurationError(
                    f"tile {name}={value} must be a positive multiple of "
                    f"{TILE_ALIGN} (SIMD register blocking)"
                )
        if self.buffer_depth not in (None, 1, 2):
            raise ConfigurationError(
                f"buffer_depth={self.buffer_depth!r} must be None, 1 or 2"
            )
        if self.k_strip is not None and self.k_strip <= 0:
            raise ConfigurationError(
                f"k_strip={self.k_strip!r} must be None or positive"
            )

    def shape(self) -> MicroKernelShape:
        return MicroKernelShape(self.mt, self.nt, self.kt)

    def name(self) -> str:
        parts = [f"{self.mt}x{self.nt}x{self.kt}"]
        if self.buffer_depth is not None:
            parts.append(f"d{self.buffer_depth}")
        if self.k_strip is not None:
            parts.append(f"s{self.k_strip}")
        return "-".join(parts)

    def is_default_for(self, arch: "ArchSpec") -> bool:
        """True when this config pins exactly the arch's analytical
        default with derived pipeline knobs — such configs normalise to
        ``tile_config=None`` in cache keys."""
        mk = arch.micro_kernel
        return (
            (self.mt, self.nt, self.kt) == (mk.mt, mk.nt, mk.kt)
            and self.buffer_depth is None
            and self.k_strip is None
        )

    @staticmethod
    def default_for(arch: "ArchSpec") -> "TileConfig":
        mk = arch.micro_kernel
        return TileConfig(mt=mk.mt, nt=mk.nt, kt=mk.kt)

#: Element-wise functions available for fusion patterns.  ``quant`` is the
#: quantisation prologue over A and ``relu`` the activation epilogue over C
#: used in §8.4; the rest widen test coverage.
ELEMENTWISE_FUNCS = ("quant", "relu", "sigmoid", "tanh", "identity")

#: Schedule policy modes: "recipe" pins the fixed §6 pipeline, "optimize"
#: runs the schedule rewrite stack over it, "off" disables latency hiding
#: entirely (the structured spelling of the legacy ``--no-hiding``).
SCHEDULE_MODES = ("recipe", "optimize", "off")

#: The schedule rewrites, in canonical application order.  Defined here —
#: not in :mod:`repro.schedule` — so option validation needs nothing above
#: this module in the import graph; the rewrite registry in
#: ``repro.schedule.passes`` asserts it stays in sync.
SCHEDULE_PASS_NAMES = (
    "split-waits",
    "reorder-issues",
    "merge-transfers",
    "retire-waits",
)


@dataclass(frozen=True)
class SchedulePolicy:
    """Structured replacement for the boolean ``hiding`` knob sprawl.

    ``mode`` selects between the fixed recipe, the rewrite stack and no
    pipelining at all; ``allow``/``deny`` filter (and, for ``allow``,
    order) the rewrites that run in ``optimize`` mode.  Reconciliation
    (:func:`repro.core.passes.reconcile_options`) canonicalises policies
    so equivalent requests share cache keys: ``recipe`` and ``off``
    collapse into the legacy ``enable_latency_hiding`` bit and
    ``schedule=None``; a surviving ``optimize`` pins its resolved pass
    tuple explicitly.
    """

    mode: str = "recipe"
    #: Ordered allow-list of rewrites; empty means "all, canonical order".
    allow: Tuple[str, ...] = ()
    #: Rewrites removed from the allow set.
    deny: Tuple[str, ...] = ()

    def __post_init__(self) -> None:
        if self.mode not in SCHEDULE_MODES:
            raise ConfigurationError(
                f"unknown schedule mode {self.mode!r}; expected one of "
                f"{SCHEDULE_MODES}"
            )
        # Serde round-trips hand back lists; coerce so policies stay
        # hashable (the simulator's chunk cache keys on options).
        for attr in ("allow", "deny"):
            value = getattr(self, attr)
            if not isinstance(value, tuple):
                object.__setattr__(self, attr, tuple(value))
            for name in getattr(self, attr):
                if name not in SCHEDULE_PASS_NAMES:
                    raise ConfigurationError(
                        f"unknown schedule pass {name!r} in {attr}; "
                        f"known: {', '.join(SCHEDULE_PASS_NAMES)}"
                    )

    def pass_names(self) -> Tuple[str, ...]:
        """The rewrites that actually run, in order."""
        base = self.allow if self.allow else SCHEDULE_PASS_NAMES
        return tuple(name for name in base if name not in self.deny)

    @staticmethod
    def parse(value) -> Optional["SchedulePolicy"]:
        """Coerce a wire/CLI value into a policy.

        Accepts ``None`` (keep the default), a mode string, a mapping
        with ``mode``/``allow``/``deny`` keys, or a ready policy.
        """
        if value is None or isinstance(value, SchedulePolicy):
            return value
        if isinstance(value, str):
            return SchedulePolicy(mode=value)
        if isinstance(value, dict):
            unknown = set(value) - {"mode", "allow", "deny"}
            if unknown:
                raise ConfigurationError(
                    f"unknown schedule policy keys {sorted(unknown)}; "
                    "expected mode/allow/deny"
                )
            return SchedulePolicy(
                mode=value.get("mode", "recipe"),
                allow=tuple(value.get("allow", ()) or ()),
                deny=tuple(value.get("deny", ()) or ()),
            )
        raise ConfigurationError(
            f"cannot interpret {value!r} as a schedule policy; expected a "
            f"mode string {SCHEDULE_MODES}, a mode/allow/deny mapping, or a "
            "SchedulePolicy"
        )


@dataclass(frozen=True)
class CompilerOptions:
    """Immutable option set for one compilation."""

    #: Treat the input as batched GEMM (``--batch``).
    batch: bool = False
    #: Use the vendor inline assembly micro kernel (§7.2); ``False``
    #: corresponds to ``--no-use-asm``.
    use_asm: bool = True
    #: Share input tiles across the mesh with RMA broadcasts (§5).
    enable_rma: bool = True
    #: Two-level software pipelining + double buffering (§6).
    enable_latency_hiding: bool = True
    #: Fusion pattern: "none", "prologue" (quantisation of A) or
    #: "epilogue" (activation of C) — §7.3.
    fusion: str = "none"
    #: Element-wise function used by the fused prologue.
    prologue_func: str = "quant"
    #: Element-wise function used by the fused epilogue.
    epilogue_func: str = "relu"
    #: Tunable tile/pipeline configuration (``None`` = the arch's
    #: analytical default shape with derived pipeline knobs).  Set by the
    #: autotuner (:mod:`repro.tune`) or ``--tile MTxNTxKT`` explicitly.
    tile_config: Optional[TileConfig] = None
    #: Micro-kernel backend generating the compute kernel (``None`` =
    #: the vendor §7.2 contract; ``"parametric"`` = the register-tiled
    #: generator).  Resolved through
    #: :func:`repro.codegen.backend.get_backend`.
    kernel_backend: Optional[str] = None
    #: Fault-injection plane threaded through every entry point that
    #: consumes this option set (``--inject-faults`` / ``--fault-seed``).
    #: Runtime-only: excluded from cache keys, see
    #: :func:`repro.service.keys.cache_key`.
    fault_policy: Optional[FaultPolicy] = None
    #: Recovery behaviour for transient faults (``--max-retries``).
    retry_policy: Optional[RetryPolicy] = None
    #: Run the static safety verifier as the pipeline's terminal pass
    #: (``--no-verify`` disables it — the §8.1 ablation escape hatch).
    #: Normalised away in cache keys: verified and unverified compiles
    #: of the same request produce the same code.
    verify: bool = True
    #: Structured schedule policy (``--schedule``).  ``None`` means the
    #: legacy ``enable_latency_hiding`` bit decides between recipe and
    #: off; reconciliation collapses redundant policies back to ``None``
    #: so old and new spellings share cache keys.  Validation against
    #: ``enable_latency_hiding`` happens in reconciliation, not here —
    #: intermediate ``with_()`` states may be inconsistent.
    schedule: Optional[SchedulePolicy] = None

    def __post_init__(self) -> None:
        if self.fusion not in FUSION_MODES:
            raise ConfigurationError(
                f"unknown fusion mode {self.fusion!r}; expected one of {FUSION_MODES}"
            )
        if self.prologue_func not in ELEMENTWISE_FUNCS:
            raise ConfigurationError(f"unknown prologue func {self.prologue_func!r}")
        if self.epilogue_func not in ELEMENTWISE_FUNCS:
            raise ConfigurationError(f"unknown epilogue func {self.epilogue_func!r}")
        if self.enable_latency_hiding and not self.use_asm:
            # The paper's baseline (red bars) is DMA-only naive code; its
            # pipeline is only meaningful around the fast kernel.  Allowing
            # the combination would be harmless but would not correspond to
            # any measured variant, so reject it loudly.
            raise ConfigurationError(
                "enable_latency_hiding requires use_asm (the breakdown's "
                "baseline variant disables both)"
            )
        if self.kernel_backend is not None:
            # Lazy import: the backend registry lives above this module
            # in the import graph (codegen.backend → tile_model → here).
            from repro.codegen.backend import backend_names

            if self.kernel_backend not in backend_names():
                raise ConfigurationError(
                    f"unknown kernel backend {self.kernel_backend!r}; "
                    f"registered: {', '.join(backend_names())}"
                )

    # -- named variants of the §8.1 breakdown -------------------------------

    @staticmethod
    def baseline() -> "CompilerOptions":
        """Red bars: automatic DMA only, naive CPE loops."""
        return CompilerOptions(
            use_asm=False, enable_rma=False, enable_latency_hiding=False
        )

    @staticmethod
    def with_asm() -> "CompilerOptions":
        """Orange bars: + inline assembly micro kernel."""
        return CompilerOptions(
            use_asm=True, enable_rma=False, enable_latency_hiding=False
        )

    @staticmethod
    def with_rma() -> "CompilerOptions":
        """Green bars: + RMA broadcasts, latency hiding still off."""
        return CompilerOptions(
            use_asm=True, enable_rma=True, enable_latency_hiding=False
        )

    @staticmethod
    def full() -> "CompilerOptions":
        """Cyan bars: every optimisation on."""
        return CompilerOptions()

    def variant_name(self) -> str:
        if not self.use_asm:
            base = "dma-only"
        elif not self.enable_rma:
            base = "+asm"
        elif not self.enable_latency_hiding:
            base = "+rma"
        else:
            base = "+hiding"
        if self.schedule is not None and self.schedule.mode == "optimize":
            passes = self.schedule.pass_names()
            if passes == SCHEDULE_PASS_NAMES:
                base = f"{base}+sched"
            else:
                base = f"{base}+sched[{','.join(passes)}]"
        if self.tile_config is not None:
            base = f"{base}@{self.tile_config.name()}"
        if self.kernel_backend is not None:
            base = f"{base}#{self.kernel_backend}"
        return base

    def with_(self, **overrides) -> "CompilerOptions":
        return replace(self, **overrides)
