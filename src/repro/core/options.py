"""Compiler options.

Mirrors the command-line surface described in §8: the compiler generates
athread code for one SW26010Pro cluster by default, ``--batch`` enables the
batched-GEMM path (Fig. 3), ``--no-use-asm`` bypasses the inline assembly
kernel and emits plain loop code.  The additional switches
(``enable_rma`` / ``enable_latency_hiding``) expose the intermediate code
variants of the performance breakdown (§8.1) — the paper's orange and
green bars — and the fusion modes of §7.3.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Optional, Tuple

from repro.errors import ConfigurationError
from repro.faults import FaultPolicy, RetryPolicy

FUSION_MODES = ("none", "prologue", "epilogue")

#: Element-wise functions available for fusion patterns.  ``quant`` is the
#: quantisation prologue over A and ``relu`` the activation epilogue over C
#: used in §8.4; the rest widen test coverage.
ELEMENTWISE_FUNCS = ("quant", "relu", "sigmoid", "tanh", "identity")


@dataclass(frozen=True)
class CompilerOptions:
    """Immutable option set for one compilation."""

    #: Treat the input as batched GEMM (``--batch``).
    batch: bool = False
    #: Use the vendor inline assembly micro kernel (§7.2); ``False``
    #: corresponds to ``--no-use-asm``.
    use_asm: bool = True
    #: Share input tiles across the mesh with RMA broadcasts (§5).
    enable_rma: bool = True
    #: Two-level software pipelining + double buffering (§6).
    enable_latency_hiding: bool = True
    #: Fusion pattern: "none", "prologue" (quantisation of A) or
    #: "epilogue" (activation of C) — §7.3.
    fusion: str = "none"
    #: Element-wise function used by the fused prologue.
    prologue_func: str = "quant"
    #: Element-wise function used by the fused epilogue.
    epilogue_func: str = "relu"
    #: Fault-injection plane threaded through every entry point that
    #: consumes this option set (``--inject-faults`` / ``--fault-seed``).
    #: Runtime-only: excluded from cache keys, see
    #: :func:`repro.service.keys.cache_key`.
    fault_policy: Optional[FaultPolicy] = None
    #: Recovery behaviour for transient faults (``--max-retries``).
    retry_policy: Optional[RetryPolicy] = None
    #: Run the static safety verifier as the pipeline's terminal pass
    #: (``--no-verify`` disables it — the §8.1 ablation escape hatch).
    #: Normalised away in cache keys: verified and unverified compiles
    #: of the same request produce the same code.
    verify: bool = True

    def __post_init__(self) -> None:
        if self.fusion not in FUSION_MODES:
            raise ConfigurationError(
                f"unknown fusion mode {self.fusion!r}; expected one of {FUSION_MODES}"
            )
        if self.prologue_func not in ELEMENTWISE_FUNCS:
            raise ConfigurationError(f"unknown prologue func {self.prologue_func!r}")
        if self.epilogue_func not in ELEMENTWISE_FUNCS:
            raise ConfigurationError(f"unknown epilogue func {self.epilogue_func!r}")
        if self.enable_latency_hiding and not self.use_asm:
            # The paper's baseline (red bars) is DMA-only naive code; its
            # pipeline is only meaningful around the fast kernel.  Allowing
            # the combination would be harmless but would not correspond to
            # any measured variant, so reject it loudly.
            raise ConfigurationError(
                "enable_latency_hiding requires use_asm (the breakdown's "
                "baseline variant disables both)"
            )

    # -- named variants of the §8.1 breakdown -------------------------------

    @staticmethod
    def baseline() -> "CompilerOptions":
        """Red bars: automatic DMA only, naive CPE loops."""
        return CompilerOptions(
            use_asm=False, enable_rma=False, enable_latency_hiding=False
        )

    @staticmethod
    def with_asm() -> "CompilerOptions":
        """Orange bars: + inline assembly micro kernel."""
        return CompilerOptions(
            use_asm=True, enable_rma=False, enable_latency_hiding=False
        )

    @staticmethod
    def with_rma() -> "CompilerOptions":
        """Green bars: + RMA broadcasts, latency hiding still off."""
        return CompilerOptions(
            use_asm=True, enable_rma=True, enable_latency_hiding=False
        )

    @staticmethod
    def full() -> "CompilerOptions":
        """Cyan bars: every optimisation on."""
        return CompilerOptions()

    def variant_name(self) -> str:
        if not self.use_asm:
            return "dma-only"
        if not self.enable_rma:
            return "+asm"
        if not self.enable_latency_hiding:
            return "+rma"
        return "+hiding"

    def with_(self, **overrides) -> "CompilerOptions":
        return replace(self, **overrides)
