"""Lowering delegate: extension statements and marks → AST nodes.

:class:`repro.poly.astgen.AstGenerator` is generic; everything specific to
the GEMM pipeline — how a ``dma_issue`` payload becomes the athread
``reply = 0; dma_iget(...)`` pair, how the micro-kernel mark becomes a
:class:`~repro.poly.astnodes.KernelCall`, what the ``--no-use-asm`` loop
body looks like — lives here.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.errors import CodegenError
from repro.core.decomposition import Decomposition
from repro.core.dma import DmaSpec
from repro.core.rma import RmaSpec
from repro.codegen.backend import resolve_kernel
from repro.poly.affine import AffExpr, aff_var
from repro.poly.astgen import ScanContext
from repro.poly.astnodes import (
    AffRef,
    ArrayRef,
    BinExpr,
    Block,
    BlockOpStmt,
    CommStmt,
    IfStmt,
    IntLit,
    KernelCall,
    NaiveComputeStmt,
    Stmt,
    VarRef,
)
from repro.poly.schedule_tree import ExtensionStmt, MarkNode

MICRO_KERNEL_MARK = "micro_kernel"


class GemmLowering:
    """The delegate for one compiled GEMM program."""

    def __init__(self, dec: Decomposition) -> None:
        self.dec = dec
        self.spec = dec.spec
        self.plan = dec.plan
        self.options = dec.options
        self.kernel = resolve_kernel(
            _arch_of(dec), dec.options, dec.plan.kernel_shape
        )

    # ------------------------------------------------------------------
    # Extension statements
    # ------------------------------------------------------------------

    def lower_extension(self, stmt: ExtensionStmt, ctx: ScanContext) -> List[Stmt]:
        role = stmt.role
        if role == "dma_issue":
            return self._lower_dma_issue(stmt.payload["spec"])
        if role == "dma_wait":
            return [
                CommStmt(
                    "dma_wait_value",
                    {
                        "reply": stmt.payload["reply"],
                        "reply_slot": AffRef(stmt.payload["reply_slot_expr"]),
                        "value": 1,
                    },
                )
            ]
        if role == "rma_reset":
            out: List[Stmt] = []
            for spec in stmt.payload["specs"]:
                for reply in (spec.replys, spec.replyr):
                    out.append(
                        CommStmt(
                            "reply_reset",
                            {"reply": reply, "reply_slot": AffRef(spec.reply_slot_expr)},
                        )
                    )
            return out
        if role == "synch":
            return [CommStmt("synch", {})]
        if role == "rma_issue":
            return self._lower_rma_issue(
                stmt.payload["spec"], stmt.payload["target_expr"]
            )
        if role == "rma_wait":
            return self._lower_rma_wait(
                stmt.payload["spec"], stmt.payload["target_expr"]
            )
        if role == "scale_c":
            if not self.spec.has_beta:
                return []
            shape = stmt.payload["shape"]
            return [
                BlockOpStmt(
                    "scale",
                    ArrayRef(stmt.payload["buffer"], (IntLit(0),), "spm"),
                    shape,
                    factor=VarRef("beta"),
                )
            ]
        if role in ("prologue", "epilogue"):
            return [
                BlockOpStmt(
                    "apply",
                    ArrayRef(
                        stmt.payload["buffer"],
                        (AffRef(stmt.payload["slot_expr"]),),
                        "spm",
                    ),
                    stmt.payload["shape"],
                    func=stmt.payload["func"],
                )
            ]
        raise CodegenError(f"no lowering for extension role {role!r}")

    def _lower_dma_issue(self, spec: DmaSpec) -> List[Stmt]:
        args: Dict[str, object] = {
            "array": spec.array,
            "row": AffRef(spec.row_expr),
            "col": AffRef(spec.col_expr),
            "batch": AffRef(spec.batch_expr) if spec.batch_expr is not None else None,
            "buffer": spec.buffer,
            "slot": AffRef(spec.slot_expr),
            "size": spec.size,
            "len": spec.cols,
            "rows": spec.rows,
            "ld_param": spec.ld_param,
            "reply": spec.reply,
            "reply_slot": AffRef(spec.reply_slot_expr),
        }
        kind = "dma_iget" if spec.direction == "get" else "dma_iput"
        return [
            CommStmt(
                "reply_reset",
                {"reply": spec.reply, "reply_slot": AffRef(spec.reply_slot_expr)},
            ),
            CommStmt(kind, args),
        ]

    def _lower_rma_issue(self, spec: RmaSpec, target: AffExpr) -> List[Stmt]:
        comm = CommStmt(
            "rma_row_ibcast" if spec.kind == "row" else "rma_col_ibcast",
            {
                "src_buffer": spec.src_buffer,
                "src_slot": AffRef(spec.src_slot_expr),
                "dst_buffer": spec.dst_buffer,
                "dst_slot": AffRef(spec.dst_slot_expr),
                "size": spec.size,
                "replys": spec.replys,
                "replyr": spec.replyr,
                "reply_slot": AffRef(spec.reply_slot_expr),
            },
        )
        owner_is_target = BinExpr("==", VarRef(spec.owner_var), AffRef(target))
        return [IfStmt(owner_is_target, Block([comm]))]

    def _lower_rma_wait(self, spec: RmaSpec, target: AffExpr) -> List[Stmt]:
        wait_recv = CommStmt(
            "rma_wait_value",
            {
                "reply": spec.replyr,
                "reply_slot": AffRef(spec.reply_slot_expr),
                "value": 1,
            },
        )
        wait_send = CommStmt(
            "rma_wait_value",
            {
                "reply": spec.replys,
                "reply_slot": AffRef(spec.reply_slot_expr),
                "value": 1,
            },
        )
        owner_is_target = BinExpr("==", VarRef(spec.owner_var), AffRef(target))
        return [wait_recv, IfStmt(owner_is_target, Block([wait_send]))]

    # ------------------------------------------------------------------
    # Marks (the micro kernel, §7.2)
    # ------------------------------------------------------------------

    def lower_mark(self, mark: MarkNode, ctx: ScanContext) -> Optional[List[Stmt]]:
        if mark.mark != MICRO_KERNEL_MARK:
            return None  # descend normally
        p = mark.payload
        a_ref = ArrayRef(p["a_buffer"], (AffRef(p["a_slot"]),), "spm")
        b_ref = ArrayRef(p["b_buffer"], (AffRef(p["b_slot"]),), "spm")
        c_ref = ArrayRef("local_C", (IntLit(0),), "spm")
        mt, nt, kt = self.plan.mt, self.plan.nt, self.plan.kt
        if self.options.use_asm:
            return [
                KernelCall(
                    name=self.kernel.name,
                    c_ref=c_ref,
                    a_ref=a_ref,
                    b_ref=b_ref,
                    mt=mt,
                    nt=nt,
                    kt=kt,
                    alpha=VarRef("alpha") if self.spec.has_alpha else IntLit(1),
                    trans_a=self.spec.trans_a,
                    trans_b=self.spec.trans_b,
                )
            ]
        # --no-use-asm: a plain scalar loop nest over the point band.  The
        # statement carries its own loops so the interpreter can execute
        # the whole box vectorised while the printer emits scalar C.
        target = ArrayRef(
            "local_C", (IntLit(0), VarRef("ip"), VarRef("jp")), "spm"
        )
        a_idx = ("kp", "ip") if self.spec.trans_a else ("ip", "kp")
        b_idx = ("jp", "kp") if self.spec.trans_b else ("kp", "jp")
        a_elem = ArrayRef(
            p["a_buffer"],
            (AffRef(p["a_slot"]), VarRef(a_idx[0]), VarRef(a_idx[1])),
            "spm",
        )
        b_elem = ArrayRef(
            p["b_buffer"],
            (AffRef(p["b_slot"]), VarRef(b_idx[0]), VarRef(b_idx[1])),
            "spm",
        )
        alpha: object = VarRef("alpha") if self.spec.has_alpha else IntLit(1)
        value = BinExpr("*", BinExpr("*", alpha, a_elem), b_elem)
        return [
            NaiveComputeStmt(
                target=target,
                value=value,
                loop_vars=("ip", "jp", "kp"),
                extents=(mt, nt, kt),
                trans_a=self.spec.trans_a,
                trans_b=self.spec.trans_b,
            )
        ]

    # ------------------------------------------------------------------
    # Leaf compute statements (only reached without a mark — kept for
    # generality and exercised by unit tests of the scanner)
    # ------------------------------------------------------------------

    def lower_compute(self, name: str, ctx: ScanContext) -> List[Stmt]:
        raise CodegenError(
            f"statement {name!r} reached an unmarked leaf; the pipeline "
            "always wraps the point band in a micro-kernel mark"
        )


def _arch_of(dec: Decomposition):
    # ``Decomposition.arch`` is a proper field, populated by ``decompose``
    # when called through the compiler facade; it is only ``None`` for
    # hand-built decompositions, which cannot be lowered.
    if dec.arch is None:
        raise CodegenError("decomposition is missing its architecture reference")
    return dec.arch
