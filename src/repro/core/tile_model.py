"""Analytical tile-size model (§3.1).

The paper avoids auto-tuning: tile sizes are modelled analytically so they
match the shape configuration of the assembly micro kernel, "which fully
considers the memory sizes of SPMs and registers".  This module provides
both directions:

* :func:`plan_for_kernel` — given the kernel shape (the arch's contract,
  or an autotuned/backend-generated one) and the compiler options,
  derive the SPM buffer plan (§6.3's nine buffers when everything is
  enabled) and *prove* it fits the SPM, raising otherwise;
* :func:`search_optimal_shape` — the analytical model itself: enumerate
  feasible power-of-two shapes and score them with a per-inner-iteration
  time model (kernel efficiency, RMA broadcast latency, shared-DMA
  bandwidth, fixed per-iteration overhead).  For the SW26010Pro
  parameters the arg-max is exactly the arch's 64×64×32 contract,
  reproducing the paper's claim that the empirically chosen kernel shape
  is the modelled optimum; other registered archs carry their own
  contracts (see :mod:`repro.sunway.arch`).

The per-iteration model mirrors the structure the timed simulator later
measures: with latency hiding, an inner iteration costs the maximum of the
kernel time, the RMA broadcast time and this CPE's share of the mesh-wide
DMA bandwidth demand.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple

from repro.errors import ConfigurationError, SPMOverflowError
from repro.core.options import CompilerOptions
from repro.sunway.arch import ArchSpec, MicroKernelShape

_DT = 8  # bytes per double

#: SPM bytes reserved for stack, reply counters and scalar locals; the
#: buffer plan may not consume the full physical SPM.
def spm_reserve_bytes(arch: ArchSpec) -> int:
    return min(8 * 1024, arch.spm_bytes // 16)


@dataclass(frozen=True)
class BufferSpec:
    """One SPM buffer of the plan."""

    name: str
    role: str  # "C", "A_dma", "B_dma", "A_bc", "B_bc"
    slots: int  # double-buffer count (1 or 2)
    rows: int
    cols: int
    itemsize: int = _DT

    @property
    def nbytes(self) -> int:
        return self.slots * self.rows * self.cols * self.itemsize

    @property
    def shape(self) -> Tuple[int, ...]:
        if self.slots == 1:
            return (self.rows, self.cols)
        return (self.slots, self.rows, self.cols)


@dataclass(frozen=True)
class TilePlan:
    """Tile sizes + SPM buffer plan for one compilation."""

    mt: int
    nt: int
    kt: int
    mesh: int  # mesh rows == mesh cols
    buffers: Tuple[BufferSpec, ...]
    use_rma: bool
    double_buffered: bool
    #: transposed-operand layouts (tiles stored kt×mt / nt×kt in SPM)
    trans_a: bool = False
    trans_b: bool = False

    @property
    def chunk_m(self) -> int:
        """Rows of C one mesh pass covers (512 on SW26010Pro)."""
        return self.mt * self.mesh

    @property
    def chunk_n(self) -> int:
        return self.nt * self.mesh

    @property
    def k_step(self) -> int:
        """K elements consumed per outer k iteration (256 with RMA:
        the strip-mine factor equals the mesh size; kt without RMA)."""
        return self.kt * self.mesh if self.use_rma else self.kt

    @property
    def strip_factor(self) -> int:
        return self.mesh if self.use_rma else 1

    @property
    def kernel_shape(self) -> MicroKernelShape:
        """The micro-kernel contract this plan was built around — the
        single source of truth for kernel selection after tile selection
        (the arch default may differ under an autotuned config)."""
        return MicroKernelShape(self.mt, self.nt, self.kt)

    def spm_bytes(self) -> int:
        return sum(b.nbytes for b in self.buffers)

    def buffer(self, role: str) -> BufferSpec:
        for b in self.buffers:
            if b.role == role:
                return b
        raise ConfigurationError(f"tile plan has no buffer with role {role!r}")

    def has_buffer(self, role: str) -> bool:
        return any(b.role == role for b in self.buffers)

    def describe(self) -> Dict[str, object]:
        return {
            "tile": f"{self.mt}x{self.nt}x{self.kt}",
            "chunk": f"{self.chunk_m}x{self.chunk_n}x{self.k_step}",
            "buffers": {b.name: b.shape for b in self.buffers},
            "spm_bytes": self.spm_bytes(),
        }


def _build_buffers(
    mt: int,
    nt: int,
    kt: int,
    use_rma: bool,
    double_buffered: bool,
    trans_a: bool = False,
    trans_b: bool = False,
    itemsize: int = _DT,
) -> Tuple[BufferSpec, ...]:
    slots = 2 if double_buffered else 1
    a_rows, a_cols = (kt, mt) if trans_a else (mt, kt)
    b_rows, b_cols = (nt, kt) if trans_b else (kt, nt)
    buffers: List[BufferSpec] = [
        BufferSpec("local_C", "C", 1, mt, nt, itemsize)
    ]
    buffers.append(
        BufferSpec("local_A_dma", "A_dma", slots, a_rows, a_cols, itemsize)
    )
    buffers.append(
        BufferSpec("local_B_dma", "B_dma", slots, b_rows, b_cols, itemsize)
    )
    if use_rma:
        buffers.append(
            BufferSpec("local_A_bc", "A_bc", slots, a_rows, a_cols, itemsize)
        )
        buffers.append(
            BufferSpec("local_B_bc", "B_bc", slots, b_rows, b_cols, itemsize)
        )
    return tuple(buffers)


def plan_for_kernel(
    arch: ArchSpec,
    options: CompilerOptions,
    shape: Optional[MicroKernelShape] = None,
    trans_a: bool = False,
    trans_b: bool = False,
    itemsize: int = _DT,
) -> TilePlan:
    """Derive and validate the SPM buffer plan for a kernel shape.

    With RMA + latency hiding this is the paper's nine-buffer layout
    (§6.3): 1×C, 2×A and 2×B per level for both the DMA and the RMA
    stage.  Raises :class:`SPMOverflowError` if the plan cannot fit the
    SPM (minus a small reserve for stack and reply counters).

    ``shape`` defaults to ``options.tile_config`` when one is set (the
    autotuner path), otherwise to the arch's analytical default.  An
    explicit tile config's pipeline knobs must cohere with the option
    set: a ``buffer_depth`` contradicting the latency-hiding mode or a
    ``k_strip`` contradicting the RMA strip-mine factor is rejected —
    the pruner relies on this to discard inconsistent search points.
    The selected kernel backend must also accept the shape
    (:class:`~repro.errors.ConfigurationError` otherwise), so the
    pruner discards shapes the generator refuses for free.
    """
    cfg = options.tile_config
    if shape is None:
        shape = cfg.shape() if cfg is not None else arch.micro_kernel
    if options.use_asm:
        # Lazy import: codegen.backend sits above this module.
        from repro.codegen.backend import get_backend

        backend = get_backend(options.kernel_backend)
        refusal = backend.supports(shape, arch)
        if refusal is not None:
            raise ConfigurationError(
                f"kernel backend {backend.name!r} refuses {shape} on "
                f"{arch.name}: {refusal}"
            )
    use_rma = options.enable_rma and arch.rma_supported
    if options.enable_rma and not arch.rma_supported:
        raise ConfigurationError(
            f"{arch.name} has no SPM RMA; compile with enable_rma=False"
        )
    double = options.enable_latency_hiding
    if cfg is not None:
        expected_depth = 2 if double else 1
        if cfg.buffer_depth is not None and cfg.buffer_depth != expected_depth:
            raise ConfigurationError(
                f"tile config pins buffer_depth={cfg.buffer_depth} but "
                f"enable_latency_hiding={double} derives depth "
                f"{expected_depth}; reconcile the options first"
            )
        expected_strip = arch.mesh_rows if use_rma else 1
        if cfg.k_strip is not None and cfg.k_strip != expected_strip:
            raise ConfigurationError(
                f"tile config pins k_strip={cfg.k_strip} but the "
                f"{'RMA' if use_rma else 'DMA-only'} pipeline strip-mines "
                f"K by {expected_strip}"
            )
    plan = TilePlan(
        mt=shape.mt,
        nt=shape.nt,
        kt=shape.kt,
        mesh=arch.mesh_rows,
        buffers=_build_buffers(
            shape.mt, shape.nt, shape.kt, use_rma, double, trans_a, trans_b,
            itemsize,
        ),
        use_rma=use_rma,
        double_buffered=double,
        trans_a=trans_a,
        trans_b=trans_b,
    )
    usable = arch.spm_bytes - spm_reserve_bytes(arch)
    if plan.spm_bytes() > usable:
        raise SPMOverflowError(
            f"buffer plan for {shape} needs {plan.spm_bytes()} B but only "
            f"{usable} B of SPM are usable on {arch.name}"
        )
    return plan


# ---------------------------------------------------------------------------
# The analytical model proper
# ---------------------------------------------------------------------------


def kernel_efficiency_model(kt: int, drain: float = 2.0) -> float:
    """Sustained fraction of peak as a function of the reduction depth.

    The micro kernel loads and stores the C register tile once per call
    and pays pipeline fill/drain; both amortise over ``kt`` multiply-add
    sweeps, giving the classic ``kt / (kt + drain)`` shape."""
    return kt / (kt + drain)


def dma_burst_efficiency(run_bytes: int, burst: int = 128) -> float:
    """DDR efficiency of strided DMA whose contiguous runs are shorter
    than the memory burst (the reason the paper aligns matrices to 128
    bytes with ``-faddress_align=128``)."""
    if run_bytes >= burst:
        return 1.0
    return run_bytes / burst


@dataclass(frozen=True)
class ShapeScore:
    shape: MicroKernelShape
    per_iter_s: float
    gflops_per_cpe: float
    feasible: bool
    limiter: str


def score_shape(
    arch: ArchSpec,
    mt: int,
    nt: int,
    kt: int,
    per_iter_overhead_us: float = 1.2,
) -> ShapeScore:
    """Modelled per-CPE throughput of one inner pipeline iteration."""
    shape = MicroKernelShape(mt, nt, kt)
    mesh = arch.mesh_rows
    buffers = _build_buffers(mt, nt, kt, True, True)
    nbytes = sum(b.nbytes for b in buffers)
    usable = arch.spm_bytes - spm_reserve_bytes(arch)
    feasible = nbytes <= usable
    eff = kernel_efficiency_model(kt)
    t_kernel = shape.flops / (arch.cpe_peak_gflops * 1e9 * eff)
    t_kernel += per_iter_overhead_us * 1e-6
    # A row-broadcast and B column-broadcast travel on independent
    # channels and are launched together (§6.1): their latencies overlap.
    t_rma = max(arch.rma_time_s(shape.a_bytes), arch.rma_time_s(shape.b_bytes))
    # Each input tile is DMA-fetched once per mesh row/column, i.e. every
    # CPE's share per kernel is (A+B)/mesh; the channel serves the whole
    # mesh, and short runs (len = kt doubles for A) waste DDR bursts.
    a_eff = dma_burst_efficiency(kt * _DT)
    b_eff = dma_burst_efficiency(nt * _DT)
    dma_bytes = (shape.a_bytes / a_eff + shape.b_bytes / b_eff) / mesh
    t_dma = arch.num_cpes * dma_bytes / (arch.dma_bandwidth_gbs * 1e9)
    per_iter = max(t_kernel, t_rma, t_dma)
    limiter = {t_kernel: "kernel", t_rma: "rma", t_dma: "dma"}[per_iter]
    gflops = shape.flops / per_iter / 1e9
    return ShapeScore(shape, per_iter, gflops, feasible, limiter)


def candidate_shapes(
    arch: ArchSpec, square_only: bool = True
) -> Iterable[Tuple[int, int, int]]:
    """Power-of-two candidates (SIMD-aligned, square C tiles by default —
    the mesh is square, so asymmetric tiles unbalance the two broadcast
    channels)."""
    simd = arch.simd_doubles
    sizes = [simd * (1 << p) for p in range(7)]  # 8..512
    depths = [4 * (1 << p) for p in range(7)]  # 4..256
    for mt in sizes:
        nts = [mt] if square_only else sizes
        for nt in nts:
            for kt in depths:
                yield (mt, nt, kt)


def search_optimal_shape(
    arch: ArchSpec, square_only: bool = True
) -> Tuple[MicroKernelShape, List[ShapeScore]]:
    """Run the analytical model over the candidate space.

    Returns the best feasible shape and all scores (for the ablation
    bench that tabulates the model)."""
    scores = [
        score_shape(arch, mt, nt, kt)
        for mt, nt, kt in candidate_shapes(arch, square_only)
    ]
    feasible = [s for s in scores if s.feasible]
    if not feasible:
        raise ConfigurationError(
            f"no feasible micro-kernel shape fits the {arch.name} SPM"
        )
    best = max(feasible, key=lambda s: (s.gflops_per_cpe, s.shape.kt))
    return best.shape, scores
