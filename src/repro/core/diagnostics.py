"""Structured per-pass diagnostics and timings.

Every pass of the instrumented pipeline (:mod:`repro.core.passes`)
reports what it decided and how long it took through these two small
dataclasses.  They are deliberately dependency-free: both the pass
manager (compile time) and :class:`~repro.runtime.program.CompiledProgram`
(artifact time — a compact ``pass_stats`` block rides along in the
serialized artifact) share them, and :mod:`repro.runtime.serde` registers
them for the disk cache.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

#: Diagnostic categories, in increasing severity.
DIAGNOSTIC_CATEGORIES = ("info", "decision", "warning")


@dataclass(frozen=True)
class PassDiagnostic:
    """One structured message emitted by a pass.

    ``decision`` records a choice the compiler made and why ("RMA
    broadcasts enabled: each DMA'd tile is reused 8x across the mesh"),
    ``warning`` flags something the caller should look at, ``info`` is
    narrative detail.
    """

    pass_name: str
    category: str  # one of DIAGNOSTIC_CATEGORIES
    message: str

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"[{self.pass_name}] {self.category}: {self.message}"


@dataclass(frozen=True)
class PassStat:
    """Wall time and diagnostics of one executed pass.

    The ``seconds`` of every stat in a program sum *exactly* to the
    program's ``codegen_seconds`` — the facade defines the total as this
    sum, so the §8.5 engineering-cost number decomposes per paper stage.
    """

    name: str
    section: str  # paper section the pass reproduces, e.g. "§4"
    seconds: float
    diagnostics: Tuple[PassDiagnostic, ...] = ()

    def describe(self) -> dict:
        return {
            "name": self.name,
            "section": self.section,
            "seconds": self.seconds,
            "diagnostics": [
                {"category": d.category, "message": d.message}
                for d in self.diagnostics
            ],
        }
